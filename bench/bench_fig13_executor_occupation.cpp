// Fig. 13 — executor occupation per stage of CosineSimilarity under stock
// Spark vs DelayStage: with the slack stages delayed, stage 3 gets the
// executors (and the storage bandwidth) immediately.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

namespace {

void occupation(const char* strategy) {
  using namespace ds;
  const auto dag = workloads::cosine_similarity();
  const auto spec = sim::ClusterSpec::paper_prototype();
  obs::Observability obs = bench::make_bench_obs();
  const bench::BenchRun run = bench::run_workload(
      dag, spec, strategy, 42, /*record_occupancy=*/true, &obs);

  std::cout << "--- " << strategy << " (JCT " << fmt(run.result.jct, 1)
            << " s) — executors held per stage, 20 s buckets ---\n";
  std::vector<const metrics::TimeSeries*> series;
  std::vector<std::string> labels;
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    series.push_back(&run.occupancy[static_cast<std::size_t>(s)]);
    labels.push_back(dag.stage(s).name);
  }
  bench::print_series(std::cout, "t (s)", labels, series, 20.0, 36);
  bench::print_interleaving_digest(std::cout, strategy, obs, run.result.jct);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Fig. 13: executor occupation by stage (CosineSimilarity) ===\n"
            << "Paper: under DelayStage, stage 3 uses the executors and\n"
            << "bandwidth alone while stages 1-2 are postponed.\n\n";
  occupation("Spark");
  occupation("DelayStage");
  return 0;
}
