// Fig. 17 (appendix A.3) — worker network throughput and CPU utilization
// for ConnectedComponents and LDA, stock Spark vs DelayStage.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

namespace {

void compare(const ds::dag::JobDag& dag, const char* workload) {
  using namespace ds;
  const auto spec = sim::ClusterSpec::paper_prototype();
  const bench::BenchRun stock = bench::run_workload(dag, spec, "Spark", 42);
  const bench::BenchRun ds_run =
      bench::run_workload(dag, spec, "DelayStage", 42);
  std::cout << "--- " << workload << " (worker 0, 20 s buckets) ---\n";
  bench::print_series(
      std::cout, "t (s)",
      {"Spark net MB/s", "DelayStage net MB/s", "Spark CPU %",
       "DelayStage CPU %"},
      {&stock.worker_net, &ds_run.worker_net, &stock.worker_cpu,
       &ds_run.worker_cpu},
      20.0, 36);
  std::cout << "JCT: Spark " << fmt(stock.result.jct, 1) << " s, DelayStage "
            << fmt(ds_run.result.jct, 1) << " s\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig. 17 (appendix): worker utilization, CC and LDA ===\n\n";
  compare(ds::workloads::connected_components(), "ConnectedComponents");
  compare(ds::workloads::lda(), "LDA");
  return 0;
}
