// Fig. 15 + §5.4 — runtime overhead of the DelayStage calculator (Alg. 1):
// per-workload strategy times and the (roughly linear) scaling of the
// computation time with the number of stages in a job.
#include <benchmark/benchmark.h>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "sim/cluster.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "workloads/workloads.h"

namespace {

using namespace ds;

// §5.4: strategy execution time for the four prototype workloads
// (paper: 58 / 76 / 107 / 164 ms on an m4.large).
void BM_Workload(benchmark::State& state, const dag::JobDag* dag) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(*dag, spec);
  for (auto _ : state) {
    const core::DelayCalculator calc(profile);
    benchmark::DoNotOptimize(calc.compute());
  }
}

// Fig. 15: computation time vs #stages on trace-shaped jobs (4..186 stages).
// Paper: roughly linear, <0.2 s for jobs under 15 stages.
void BM_TraceJobStages(benchmark::State& state) {
  const auto n_stages = static_cast<int>(state.range(0));
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 1;
  topt.min_stages = n_stages;
  topt.max_stages = n_stages;
  topt.chain_fraction = 0.0;
  topt.seed = static_cast<std::uint64_t>(2018 + n_stages);
  const auto jobs = trace::synthetic_trace(topt);
  const auto spec = sim::ClusterSpec::paper_simulation();

  sim::ClusterSpec sub = spec;
  sub.num_workers = 2;  // the replay's per-job sub-cluster
  trace::ReferenceRates ref;
  ref.nic_bw = 0.5 * (sub.nic_bw_min + sub.nic_bw_max);
  ref.disk_bw = sub.disk_bw;
  ref.num_workers = sub.num_workers;
  ref.executors = static_cast<double>(sub.total_executors());
  const dag::JobDag dag = trace::to_job_dag(jobs[0], ref);
  const core::JobProfile profile = core::JobProfile::from(dag, sub);

  Seconds span = 1.0;
  for (const auto& s : jobs[0].stages)
    span += s.read_solo + s.compute_solo + s.write_solo;
  core::CalculatorOptions copt;
  copt.slot = std::max(1.0, span / 150.0);
  copt.step = copt.slot;
  copt.coarse_candidates = 12;
  copt.sweeps = 1;

  for (auto _ : state) {
    const core::DelayCalculator calc(profile, copt);
    benchmark::DoNotOptimize(calc.compute());
  }
  state.counters["stages"] = n_stages;
}

const auto kCc = workloads::connected_components();
const auto kCos = workloads::cosine_similarity();
const auto kLda = workloads::lda();
const auto kTri = workloads::triangle_count();

}  // namespace

BENCHMARK_CAPTURE(BM_Workload, ConnectedComponents, &kCc)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Workload, CosineSimilarity, &kCos)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Workload, LDA, &kLda)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Workload, TriangleCount, &kTri)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceJobStages)
    ->Arg(4)
    ->Arg(8)
    ->Arg(15)
    ->Arg(30)
    ->Arg(60)
    ->Arg(100)
    ->Arg(150)
    ->Arg(186)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
