// Fig. 4 — (a) average CPU and network utilization across machines and
// (b) the utilization of one worker machine, over the 8-day trace replay
// under the stock (Fuxi) scheduler.
#include <iostream>

#include "bench_common.h"
#include "obs/analytics/analytics.h"
#include "trace/replay.h"
#include "trace/synthetic.h"

int main() {
  using namespace ds;
  std::cout << "=== Fig. 4: cluster and per-machine utilization over 8 days ===\n"
            << "Paper: cluster averages fluctuate 20-50% (CPU) / 30-45% (net);\n"
            << "one machine swings 0-98%, below 10% CPU for ~39% of the time.\n\n";

  // 1/10-scale replay: 400 machines at the trace's per-machine load (the
  // full trace is 2.78M jobs on 4000 machines; the replay scales linearly).
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 100000;
  topt.seed = 2018;
  const auto jobs = trace::synthetic_trace(topt);

  trace::ReplayOptions opt;
  opt.strategy = "Fuxi";
  opt.cluster.num_workers = 400;
  opt.seed = 1;
  const trace::ReplayResult r = trace::replay(jobs, opt);

  std::cout << "--- (a) cluster averages (half-day buckets) ---\n";
  bench::print_series(std::cout, "day",
                      {"CPU %", "network %"},
                      {&r.cluster_cpu, &r.cluster_net}, 12 * 3600.0, 16);

  std::cout << "\n--- (b) one worker machine (half-day buckets) ---\n";
  bench::print_series(std::cout, "day",
                      {"CPU %", "network %"},
                      {&r.machine_cpu, &r.machine_net}, 12 * 3600.0, 16);

  const auto mc = r.machine_cpu.summarize();
  const obs::analytics::FleetUtilization f =
      obs::analytics::fleet_utilization(r);
  std::cout << "\ncluster mean CPU: " << fmt(f.cluster_cpu_pct, 1)
            << " %, mean network: " << fmt(f.cluster_net_pct, 1) << " %\n"
            << "machine CPU range: " << fmt(mc.min, 1) << "-" << fmt(mc.max, 1)
            << " %; below 10% for "
            << fmt(obs::analytics::percent_below(r.machine_cpu, 10.0), 1)
            << " % of samples (paper: 39.1 %)\n"
            << "job-allocated resources: CPU " << fmt(f.job_cpu_pct, 1)
            << " % busy / " << fmt(f.job_cpu_idle_pct, 1)
            << " % idle; network " << fmt(f.job_net_pct, 1) << " % busy / "
            << fmt(f.job_net_idle_pct, 1) << " % idle\n";
  return 0;
}
