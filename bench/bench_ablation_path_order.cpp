// Ablation — path-visit order of Alg. 1 on the prototype workloads (the
// paper only compares the orders at trace scale, Fig. 14): descending should
// be the strongest, per §4.1's argument for prioritising the long path.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Ablation: Alg. 1 path order on the prototype workloads ===\n\n";
  const auto spec = sim::ClusterSpec::paper_prototype();
  const std::vector<std::uint64_t> seeds{42, 7, 99};

  TablePrinter t({"workload", "Spark (s)", "descending (s)", "random (s)",
                  "ascending (s)"});
  t.set_precision(1);
  for (const auto& wl : workloads::benchmark_suite()) {
    double jct[4] = {0, 0, 0, 0};
    const char* strategies[] = {"Spark", "DelayStage", "random DelayStage",
                                "ascending DelayStage"};
    for (int i = 0; i < 4; ++i) {
      for (std::uint64_t seed : seeds)
        jct[i] += bench::run_workload(wl.dag, spec, strategies[i], seed)
                      .result.jct /
                  static_cast<double>(seeds.size());
    }
    t.add_row({wl.name, jct[0], jct[1], jct[2], jct[3]});
  }
  t.print(std::cout);
  return 0;
}
