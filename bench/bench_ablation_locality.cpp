// Ablation — §1's contrast: task-level Delay Scheduling (Zaharia et al.,
// locality waits) vs stage-level DelayStage, and the two combined. The
// paper argues the mechanisms are different in kind; here they compose.
#include <iostream>

#include "bench_common.h"
#include "engine/job_run.h"
#include "workloads/workloads.h"

namespace {

using namespace ds;

double run_jct(const dag::JobDag& dag, bool stage_delays,
               Seconds locality_wait, std::uint64_t seed) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);
  engine::RunOptions opt;
  if (stage_delays) {
    auto s = sched::make_strategy("DelayStage");
    opt.plan = s->plan(dag, cluster);
  }
  opt.locality_wait = locality_wait;
  opt.seed = seed;
  engine::JobRun run(cluster, dag, opt);
  run.start();
  sim.run();
  return run.result().jct;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: task-level locality waits vs stage delays ===\n\n";
  TablePrinter t({"workload", "stock (s)", "+locality (s)", "+DelayStage (s)",
                  "both (s)"});
  t.set_precision(1);
  for (const auto& wl : workloads::benchmark_suite()) {
    double v[4] = {0, 0, 0, 0};
    for (std::uint64_t seed : {42ull, 7ull, 99ull}) {
      v[0] += run_jct(wl.dag, false, 0.0, seed) / 3.0;
      v[1] += run_jct(wl.dag, false, 3.0, seed) / 3.0;
      v[2] += run_jct(wl.dag, true, 0.0, seed) / 3.0;
      v[3] += run_jct(wl.dag, true, 3.0, seed) / 3.0;
    }
    t.add_row({wl.name, v[0], v[1], v[2], v[3]});
  }
  t.print(std::cout);
  std::cout << "\n(locality wait 3 s, Spark's default; the paper's §1 point:\n"
               "the two delays answer different questions — where vs when)\n";
  return 0;
}
