// Multi-job scheduler ablation: DelayStage planning vs the no-delay stock
// baseline on ONE shared cluster, swept across arrival intensities. This is
// the service-level version of the paper's single-job comparisons — §6's
// "reducing the average job completion time in the multi-job environment" —
// run through ds::Scheduler, so admission control, residual-capacity
// planning and the ledger all participate.
//
// For each intensity (a Poisson arrival rate; low ≈ idle cluster, high ≈
// saturated queue) the same arrival stream and workload sequence runs
// twice: once with the DelayStage planner on the admission path
// (plan_delays = true) and once submitting every stage immediately
// (plan_delays = false). Everything is simulated time, so the JCT /
// slowdown gains are deterministic — the committed floors in
// tools/bench_baseline.json gate scheduler behaviour, not machine speed.
//
// Writes BENCH_multijob.json (consumed by tools/check_bench.py).
//
//   ./bench_multijob [output.json]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "service/arrivals.h"
#include "service/scheduler.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

using namespace ds;

struct FleetRun {
  Seconds mean_jct = 0;
  Seconds p99_jct = 0;
  double mean_slowdown = 0;
  double p99_slowdown = 0;
  Seconds mean_wait = 0;
  Seconds makespan = 0;
};

struct Intensity {
  std::string name;
  double rate;  // jobs per second
};

FleetRun run_fleet(bool plan_delays, double rate, std::size_t n_jobs,
                   std::uint64_t seed) {
  SchedulerOptions opt;
  opt.cluster = sim::ClusterSpec::paper_prototype();
  opt.seed = seed;
  opt.plan_delays = plan_delays;
  Scheduler sched(opt);

  const auto suite = workloads::benchmark_suite(0.5);
  const auto arrivals = service::poisson_arrivals(n_jobs, rate, seed);
  for (std::size_t i = 0; i < n_jobs; ++i)
    sched.submit_at(arrivals[i], suite[i % suite.size()].dag);
  sched.drain();

  const FleetStats fs = sched.fleet();
  DS_CHECK_MSG(fs.finished == n_jobs, "fleet did not finish cleanly");
  return {fs.mean_jct,      fs.p99_jct,  fs.mean_slowdown,
          fs.p99_slowdown,  fs.mean_wait, fs.makespan};
}

double gain_pct(double baseline, double improved) {
  return 100.0 * (baseline - improved) / baseline;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_multijob.json";
  constexpr std::size_t kJobs = 24;
  constexpr std::uint64_t kSeed = 42;
  // Mean inter-arrival gaps of 250 / 150 / 100 s against per-job service
  // times of ~300-800 s: from light queueing (most jobs admitted on
  // arrival) to a persistent backlog. Below this range jobs barely overlap
  // (nothing to interleave); far above it queueing waits swamp execution
  // and the rebalancer rightly strips the delays — both ends converge to
  // the baseline.
  const std::vector<Intensity> intensities = {
      {"low", 1.0 / 250.0}, {"med", 1.0 / 150.0}, {"high", 1.0 / 100.0}};

  std::cout << "=== Multi-job scheduler: DelayStage vs no-delay baseline ("
            << kJobs << " jobs/run) ===\n\n";
  TablePrinter t({"intensity", "rate (j/s)", "mean JCT ds (s)",
                  "mean JCT naive (s)", "JCT gain %", "p99 slow ds",
                  "p99 slow naive", "slow gain %"});
  t.set_precision(3);

  struct Row {
    Intensity in;
    FleetRun ds_, naive;
    double jct_gain, slow_gain;
  };
  std::vector<Row> rows;
  for (const Intensity& in : intensities) {
    const FleetRun with = run_fleet(true, in.rate, kJobs, kSeed);
    const FleetRun naive = run_fleet(false, in.rate, kJobs, kSeed);
    Row r{in, with, naive, gain_pct(naive.mean_jct, with.mean_jct),
          gain_pct(naive.p99_slowdown, with.p99_slowdown)};
    t.add_row({r.in.name, r.in.rate, r.ds_.mean_jct, r.naive.mean_jct,
               r.jct_gain, r.ds_.p99_slowdown, r.naive.p99_slowdown,
               r.slow_gain});
    rows.push_back(r);
  }
  t.print(std::cout);
  std::cout << "\n(identical Poisson arrivals per intensity; gains are "
               "naive → DelayStage improvements)\n";

  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n  \"multijob\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"intensity\": \"" << r.in.name
         << "\", \"rate_jobs_per_sec\": " << r.in.rate
         << ", \"jobs\": " << kJobs
         << ", \"mean_jct_delaystage_s\": " << r.ds_.mean_jct
         << ", \"mean_jct_naive_s\": " << r.naive.mean_jct
         << ", \"jct_gain_pct\": " << r.jct_gain
         << ", \"p99_slowdown_delaystage\": " << r.ds_.p99_slowdown
         << ", \"p99_slowdown_naive\": " << r.naive.p99_slowdown
         << ", \"slowdown_gain_pct\": " << r.slow_gain
         << ", \"mean_wait_delaystage_s\": " << r.ds_.mean_wait
         << ", \"makespan_delaystage_s\": " << r.ds_.makespan << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
