// Fig. 16 (appendix A.1) — stage execution breakdown for ConnectedComponents
// and TriangleCount: DelayStage delays one stage of CC and several of Tri,
// shortening the longest parallel path by 28.2% / 42.0%.
#include <iostream>

#include "bench_common.h"
#include "dag/paths.h"
#include "workloads/workloads.h"

namespace {

// Span of the longest execution path: max finish over the parallel set
// minus the region's start.
double parallel_span(const ds::dag::JobDag& dag, const ds::engine::JobResult& r) {
  double end = 0, start = 1e18;
  for (ds::dag::StageId s : dag.parallel_stage_set()) {
    end = std::max(end, r.stages[static_cast<std::size_t>(s)].finish);
    start = std::min(start, r.stages[static_cast<std::size_t>(s)].ready);
  }
  return end - start;
}

void breakdown(const ds::dag::JobDag& dag, const char* workload) {
  using namespace ds;
  std::cout << "--- " << workload << " ---\n";
  const auto spec = sim::ClusterSpec::paper_prototype();
  const bench::BenchRun stock = bench::run_workload(dag, spec, "Spark", 42);
  const bench::BenchRun ds_run = bench::run_workload(dag, spec, "DelayStage", 42);
  bench::print_breakdown(std::cout, "Spark", dag, stock.result, stock.plan);
  std::cout << '\n';
  bench::print_breakdown(std::cout, "DelayStage", dag, ds_run.result,
                         ds_run.plan);
  const double a = parallel_span(dag, stock.result);
  const double b = parallel_span(dag, ds_run.result);
  std::cout << "parallel-region span: " << fmt(a, 1) << " s -> " << fmt(b, 1)
            << " s (-" << fmt(100.0 * (a - b) / a, 1) << " %)\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig. 16 (appendix): CC and TriangleCount breakdowns ===\n"
            << "Paper: longest path shortened 28.2% (CC) / 42.0% (Tri).\n\n";
  breakdown(ds::workloads::connected_components(), "ConnectedComponents");
  breakdown(ds::workloads::triangle_count(), "TriangleCount");
  return 0;
}
