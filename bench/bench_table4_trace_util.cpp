// Table 4 — average CPU and network utilization of the cluster when running
// trace jobs with Fuxi and the three DelayStage variants.
#include <iostream>

#include "bench_common.h"
#include "obs/analytics/analytics.h"
#include "trace/replay.h"
#include "trace/synthetic.h"

int main() {
  using namespace ds;
  std::cout << "=== Table 4: trace replay utilization ===\n"
            << "Paper: CPU 36.2% (Fuxi) vs 43.4/42.2/45.4% (random/ascending/\n"
            << "default DelayStage); network 42.7% vs 49.1/48.3/53.3%.\n\n";

  // 1/100-scale replay: 40 machines at trace-like load (the full trace is
  // 2.78M jobs on 4000 machines; everything scales linearly in job count).
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 2500;
  topt.horizon = 2 * 24 * 3600.0;
  topt.seed = 2018;
  const auto jobs = trace::synthetic_trace(topt);

  TablePrinter t({"strategy", "CPU %", "network %"});
  t.set_precision(1);
  std::vector<obs::analytics::FleetUtilization> fleet;
  std::vector<std::string> names;
  for (const char* strategy : {"Fuxi", "random DelayStage",
                               "ascending DelayStage", "DelayStage"}) {
    trace::ReplayOptions opt;
    opt.strategy = strategy;
    opt.cluster.num_workers = 40;
    opt.seed = 7;
    const trace::ReplayResult r = trace::replay(jobs, opt);
    const obs::analytics::FleetUtilization f =
        obs::analytics::fleet_utilization(r);
    t.add_row({std::string(strategy), f.job_cpu_pct, f.job_net_pct});
    fleet.push_back(f);
    names.emplace_back(strategy);
  }
  t.print(std::cout);
  std::cout << "\n--- fleet analytics (idle fractions and delay budget) ---\n";
  TablePrinter d({"strategy", "CPU idle %", "net idle %", "job CPU p50/p90 %",
                  "mean JCT (s)", "mean delay (s)"});
  d.set_precision(1);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto& f = fleet[i];
    d.add_row({names[i], f.job_cpu_idle_pct, f.job_net_idle_pct,
               fmt(f.job_cpu_p50, 1) + " / " + fmt(f.job_cpu_p90, 1),
               f.mean_jct_s, f.mean_planned_delay_s});
  }
  d.print(std::cout);
  return 0;
}
