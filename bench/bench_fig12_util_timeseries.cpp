// Fig. 12 — network throughput and CPU utilization of one worker while
// running CosineSimilarity and TriangleCount, stock Spark vs DelayStage:
// DelayStage fills the idle valleys.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

namespace {

void compare(const ds::dag::JobDag& dag, const char* workload) {
  using namespace ds;
  const auto spec = sim::ClusterSpec::paper_prototype();
  // Trace each run (passive: results are identical to untraced runs) so the
  // span-based interleaving digest can quantify the filled valleys.
  obs::Observability stock_obs = bench::make_bench_obs();
  obs::Observability ds_obs = bench::make_bench_obs();
  const bench::BenchRun stock =
      bench::run_workload(dag, spec, "Spark", 42, false, &stock_obs);
  const bench::BenchRun ds_run =
      bench::run_workload(dag, spec, "DelayStage", 42, false, &ds_obs);

  std::cout << "--- " << workload << " (worker 0, 20 s buckets) ---\n";
  bench::print_series(
      std::cout, "t (s)",
      {"Spark net MB/s", "DelayStage net MB/s", "Spark CPU %",
       "DelayStage CPU %"},
      {&stock.worker_net, &ds_run.worker_net, &stock.worker_cpu,
       &ds_run.worker_cpu},
      20.0, 36);
  std::cout << "JCT: Spark " << fmt(stock.result.jct, 1) << " s, DelayStage "
            << fmt(ds_run.result.jct, 1) << " s\n";
  bench::print_interleaving_digest(std::cout, "Spark", stock_obs,
                                   stock.result.jct);
  bench::print_interleaving_digest(std::cout, "DelayStage", ds_obs,
                                   ds_run.result.jct);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Fig. 12: worker utilization, Spark vs DelayStage ===\n\n";
  compare(ds::workloads::cosine_similarity(), "CosineSimilarity");
  compare(ds::workloads::triangle_count(), "TriangleCount");
  return 0;
}
