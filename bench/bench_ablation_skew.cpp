// Ablation — AggShuffle's dependence on intra-stage task-duration variance
// (§5.2: "the job performance improvement of AggShuffle becomes trivial when
// the stage tasks have nearly homogeneous stage partitions").
#include <iostream>

#include "bench_common.h"
#include "util/units.h"
#include "workloads/workloads.h"

namespace {

ds::dag::JobDag shuffle_chain(double skew) {
  using namespace ds;
  dag::JobDag j("shuffle-chain");
  dag::Stage map;
  map.name = "map";
  map.num_tasks = 40;
  map.input_bytes = 4_GB;
  map.process_rate = 2.0e6;
  map.output_bytes = 12_GB;
  map.task_skew = skew;
  dag::Stage reduce;
  reduce.name = "reduce";
  reduce.num_tasks = 40;
  reduce.input_bytes = 12_GB;
  reduce.process_rate = 12.0e6;
  reduce.output_bytes = 1_GB;
  const auto m = j.add_stage(map);
  const auto r = j.add_stage(reduce);
  j.add_edge(m, r);
  return j;
}

}  // namespace

int main() {
  using namespace ds;
  std::cout << "=== Ablation: AggShuffle gain vs task skew ===\n\n";
  const auto spec = sim::ClusterSpec::paper_prototype();
  TablePrinter t({"task skew", "Spark (s)", "AggShuffle (s)", "gain %"});
  t.set_precision(1);
  for (double skew : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    const auto dag = shuffle_chain(skew);
    double stock = 0, agg = 0;
    for (std::uint64_t seed : {42ull, 7ull, 99ull}) {
      stock += bench::run_workload(dag, spec, "Spark", seed).result.jct / 3.0;
      agg +=
          bench::run_workload(dag, spec, "AggShuffle", seed).result.jct / 3.0;
    }
    t.add_row({fmt(skew, 1), stock, agg, 100.0 * (stock - agg) / stock});
  }
  t.print(std::cout);
  return 0;
}
