// Appendix A.2 — prediction accuracy of the analytical performance model:
// per-stage execution time predicted by the ScheduleEvaluator vs the
// task-granular engine, under stock scheduling. The paper reports 1.6-9.1%
// error for LDA (its most homogeneous workload).
#include <iostream>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/profile.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Appendix A.2: stage-time prediction accuracy ===\n"
            << "Paper: 1.6-9.1% error on LDA.\n\n";

  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const auto& wl : workloads::benchmark_suite()) {
    const bench::BenchRun run = bench::run_workload(wl.dag, spec, "Spark", 42);

    sim::Simulator sim_probe;
    sim::Cluster cluster(sim_probe, spec, 42);
    const core::JobProfile profile =
        core::JobProfile::from_measured(wl.dag, cluster);
    const core::Evaluation model = core::ScheduleEvaluator(profile).evaluate({});

    std::cout << "--- " << wl.name << " ---\n";
    TablePrinter t({"stage", "engine (s)", "model (s)", "error %"});
    t.set_precision(1);
    double worst = 0, sum = 0;
    for (dag::StageId s = 0; s < wl.dag.num_stages(); ++s) {
      const double eng = run.result.stages[static_cast<std::size_t>(s)].finish -
                         run.result.stages[static_cast<std::size_t>(s)].submitted;
      const double mod = model.stages[static_cast<std::size_t>(s)].finish -
                         model.stages[static_cast<std::size_t>(s)].submitted;
      const double err = 100.0 * std::abs(mod - eng) / std::max(eng, 1e-9);
      worst = std::max(worst, err);
      sum += err;
      t.add_row({wl.dag.stage(s).name, eng, mod, err});
    }
    t.print(std::cout);
    std::cout << "mean error " << fmt(sum / wl.dag.num_stages(), 1)
              << " %, worst " << fmt(worst, 1) << " %; JCT engine "
              << fmt(run.result.jct, 1) << " s vs model " << fmt(model.jct, 1)
              << " s ("
              << fmt(100.0 * std::abs(model.jct - run.result.jct) /
                         run.result.jct,
                     1)
              << " %)\n\n";
  }
  return 0;
}
