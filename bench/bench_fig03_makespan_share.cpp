// Fig. 3 — CDF of the proportion of the parallel-stage makespan to the job
// execution time in the trace workload.
#include <iostream>

#include "bench_common.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

int main() {
  using namespace ds;
  std::cout << "=== Fig. 3: parallel-stage makespan / job execution time ===\n"
            << "Paper: >60% share for over 80% of jobs; average 82.3%.\n\n";

  trace::SyntheticTraceOptions opt;
  opt.num_jobs = 20000;
  opt.seed = 2018;
  const auto jobs = trace::synthetic_trace(opt);
  const trace::TraceStats st = trace::analyze(jobs);

  TablePrinter t({"T(parallel)/T(job) %", "CDF %"});
  t.set_precision(1);
  for (double share : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    t.add_row({fmt(share, 0),
               st.parallel_makespan_share.fraction_below(share)});
  }
  t.print(std::cout);

  std::cout << "\naverage share: " << fmt(st.parallel_makespan_share.mean(), 1)
            << " %   (paper: 82.3 %)\n"
            << "jobs with share > 60%: "
            << fmt(100.0 - st.parallel_makespan_share.fraction_below(60.0), 1)
            << " %   (paper: >80 % of jobs)\n";
  return 0;
}
