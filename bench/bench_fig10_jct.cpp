// Fig. 10 — job completion time of the four benchmark workloads under stock
// Spark, AggShuffle and DelayStage (5 runs each, mean ± std).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Fig. 10: JCT of four workloads x three strategies ===\n"
            << "Paper: DelayStage -17.5%..-41.3% vs Spark and -4.2%..-17.4%\n"
            << "vs AggShuffle; ConnectedComponents improves least.\n\n";

  const auto spec = sim::ClusterSpec::paper_prototype();
  const std::vector<std::uint64_t> seeds{42, 7, 99, 2024, 5};
  const char* strategies[] = {"Spark", "AggShuffle", "DelayStage"};

  TablePrinter t({"workload", "Spark (s)", "std", "AggShuffle (s)", "std",
                  "DelayStage (s)", "std", "vs Spark %", "vs AggShuffle %"});
  t.set_precision(1);

  for (const auto& wl : workloads::benchmark_suite()) {
    metrics::Summary sum[3];
    std::vector<double> jcts[3];
    for (int i = 0; i < 3; ++i) {
      for (std::uint64_t seed : seeds)
        jcts[i].push_back(
            bench::run_workload(wl.dag, spec, strategies[i], seed).result.jct);
      sum[i] = metrics::summarize(jcts[i]);
    }
    t.add_row({wl.name, sum[0].mean, sum[0].stddev, sum[1].mean, sum[1].stddev,
               sum[2].mean, sum[2].stddev,
               100.0 * (sum[0].mean - sum[2].mean) / sum[0].mean,
               100.0 * (sum[1].mean - sum[2].mean) / sum[1].mean});
  }
  t.print(std::cout);
  std::cout << "\n(5 seeds per cell; 30-node prototype cluster of §5.1)\n";
  return 0;
}
