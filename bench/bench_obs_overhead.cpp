// Observability overhead micro-benchmark: the same engine simulation timed
// with obs off (null sink — compiled in but disabled), metrics only (live
// registry handles, tracer disabled), flight (metrics + the always-on
// flight-recorder ring), telemetry (metrics + one registry snapshot per
// workload run, the streaming-sink steady state), and full (metrics + span
// tracing). Writes BENCH_obs.json for tools/check_bench.py, which enforces
// both an absolute throughput floor on the off mode and overhead ceilings
// (<3%) on the instrumented modes.
//
//   ./bench_obs_overhead [output.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/job_run.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Mode {
  std::string name;
  double seconds_per_rep = 0;  // min over reps: one rep = the whole suite
  double runs_per_sec = 0;
  double overhead_pct = 0;  // vs the off mode
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ds;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  constexpr std::uint64_t kSeed = 42;
  constexpr int kReps = 7;

  const auto suite = workloads::benchmark_suite();
  const sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();

  // Pre-plan every workload once: the planner's cost is not what this bench
  // measures, and the plan for a given (dag, spec, seed) is deterministic.
  std::vector<engine::SubmissionPlan> plans;
  for (const auto& w : suite) {
    sim::Simulator sim;
    sim::Cluster cluster(sim, spec, kSeed);
    plans.push_back(sched::make_strategy("DelayStage")->plan(w.dag, cluster));
  }

  // One sink per instrumented mode, reused across reps so the steady state
  // (warm rings, resolved cells, interned labels) is what gets timed.
  obs::TracerOptions full_topt;
  full_topt.enabled = true;
  obs::FlightRecorderOptions flight_fopt;
  flight_fopt.enabled = true;
  obs::Observability metrics_only;
  obs::Observability flight_obs(obs::TracerOptions{}, flight_fopt);
  obs::Observability telemetry_obs;
  obs::Observability full(full_topt);
  std::ostringstream telemetry_out;
  obs::TelemetrySink telemetry_sink(telemetry_out);
  std::vector<Mode> modes = {
      {"off"}, {"metrics"}, {"flight"}, {"telemetry"}, {"full"}};
  obs::Observability* sinks[] = {nullptr, &metrics_only, &flight_obs,
                                 &telemetry_obs, &full};
  obs::TelemetrySink* telem[] = {nullptr, nullptr, nullptr, &telemetry_sink,
                                 nullptr};

  auto run_suite = [&](obs::Observability* obs, obs::TelemetrySink* sink) {
    Seconds jct_sum = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      sim::Simulator sim(obs);
      sim::Cluster cluster(sim, spec, kSeed, obs);
      engine::RunOptions opt;
      opt.plan = plans[i];
      opt.seed = kSeed;
      opt.obs = obs;
      opt.flight_job_id = i + 1;
      engine::JobRun run(cluster, suite[i].dag, opt);
      run.start();
      sim.run();
      DS_CHECK(run.finished() && !run.result().failed);
      jct_sum += run.result().jct;
      if (sink != nullptr) sink->snapshot(*obs, sim.now());
    }
    return jct_sum;
  };

  // Interleave the modes across reps so drift (thermal, scheduler) spreads
  // evenly instead of biasing whichever mode runs last; min-of-reps then
  // discards the noise. The simulated JCTs must not depend on the mode —
  // observability is passive by contract.
  std::vector<double> best(modes.size(), 1e300);
  double reference_jct = -1;
  for (int rep = 0; rep < kReps; ++rep) {
    telemetry_out.str("");  // discard last rep's snapshots, keep buffer warm
    for (std::size_t m = 0; m < modes.size(); ++m) {
      const auto t0 = Clock::now();
      const Seconds jct = run_suite(sinks[m], telem[m]);
      const double s = std::chrono::duration<double>(Clock::now() - t0).count();
      best[m] = std::min(best[m], s);
      if (reference_jct < 0) reference_jct = jct;
      DS_CHECK_MSG(jct == reference_jct, "simulation result depends on obs mode");
    }
  }
  for (std::size_t m = 0; m < modes.size(); ++m) {
    modes[m].seconds_per_rep = best[m];
    modes[m].runs_per_sec = static_cast<double>(suite.size()) / best[m];
    modes[m].overhead_pct = 100.0 * (best[m] - best[0]) / best[0];
  }

  TablePrinter t({"mode", "ms/suite", "runs/s", "overhead %"});
  t.set_precision(2);
  for (const auto& m : modes)
    t.add_row({m.name, 1000.0 * m.seconds_per_rep, m.runs_per_sec,
               m.overhead_pct});
  t.print(std::cout);
  std::cout << "traced events: " << full.tracer.recorded() << " ("
            << full.tracer.dropped() << " dropped), flight records: "
            << flight_obs.flight.recorded() << " ("
            << flight_obs.flight.dropped() << " dropped), telemetry snapshots: "
            << telemetry_sink.snapshots() << "\n";

  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n  \"obs\": [\n";
  for (std::size_t m = 0; m < modes.size(); ++m) {
    json << "    {\"mode\": \"" << modes[m].name
         << "\", \"seconds_per_rep\": " << modes[m].seconds_per_rep
         << ", \"runs_per_sec\": " << modes[m].runs_per_sec
         << ", \"overhead_pct\": " << modes[m].overhead_pct << "}"
         << (m + 1 < modes.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
