// Planner/replay throughput micro-benchmark for the parallel DelayStage
// planner. Times DelayCalculator::compute() on the four §5 workloads at
// 1/4/8 threads, and the trace replay's per-job planning fan-out, then
// writes the numbers to BENCH_planner.json (consumed by
// tools/check_bench.py, which fails on >20% regressions vs the committed
// baseline).
//
//   ./bench_planner_throughput [output.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "sim/cluster.h"
#include "trace/replay.h"
#include "trace/synthetic.h"
#include "util/check.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct PlanSample {
  std::string workload;
  int threads = 1;
  double ms_per_plan = 0;
  double evals_per_sec = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t memo_hits = 0;
};

struct ReplaySample {
  int threads = 1;
  std::size_t jobs = 0;
  double jobs_per_sec = 0;
  double mean_jct = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ds;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_planner.json";
  const int thread_counts[] = {1, 4, 8};

  // --- Planner: DelayCalculator::compute() per workload and thread count.
  const auto suite = workloads::benchmark_suite();
  const sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
  std::vector<PlanSample> plans;
  for (const auto& w : suite) {
    const core::JobProfile profile = core::JobProfile::from(w.dag, spec);
    std::vector<Seconds> reference_delay;
    for (int threads : thread_counts) {
      core::CalculatorOptions copt;
      copt.threads = threads;
      const core::DelayCalculator calc(profile, copt);
      // Warm-up plan (first-touch allocation of the thread-local scratch
      // arenas), then the timed repetitions.
      core::DelaySchedule sched = calc.compute();
      constexpr int kReps = 5;
      const auto t0 = Clock::now();
      for (int r = 0; r < kReps; ++r) sched = calc.compute();
      const double ms = ms_since(t0) / kReps;

      if (reference_delay.empty()) reference_delay = sched.delay;
      DS_CHECK_MSG(sched.delay == reference_delay,
                   "planner result depends on thread count");

      PlanSample s;
      s.workload = w.name;
      s.threads = threads;
      s.ms_per_plan = ms;
      s.evaluations = sched.evaluations;
      s.memo_hits = sched.memo_hits;
      s.evals_per_sec = 1000.0 * static_cast<double>(sched.evaluations) / ms;
      plans.push_back(s);
    }
  }

  // --- Replay: per-job planning fan-out over a synthetic trace slice.
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 200;
  topt.seed = 2018;
  const auto jobs = trace::synthetic_trace(topt);
  std::vector<ReplaySample> replays;
  double reference_jct = -1;
  for (int threads : thread_counts) {
    trace::ReplayOptions ropt;
    ropt.strategy = "DelayStage";
    ropt.cluster.num_workers = 40;
    ropt.threads = threads;
    ropt.seed = 7;
    const auto t0 = Clock::now();
    const trace::ReplayResult r = trace::replay(jobs, ropt);
    const double ms = ms_since(t0);

    if (reference_jct < 0) reference_jct = r.mean_jct();
    DS_CHECK_MSG(r.mean_jct() == reference_jct,
                 "replay result depends on thread count");

    ReplaySample s;
    s.threads = threads;
    s.jobs = jobs.size();
    s.jobs_per_sec = 1000.0 * static_cast<double>(jobs.size()) / ms;
    s.mean_jct = r.mean_jct();
    replays.push_back(s);
  }

  // --- Human-readable report.
  std::cout << "=== Planner throughput (DelayCalculator::compute) ===\n";
  TablePrinter pt({"workload", "threads", "ms/plan", "evals", "memo hits",
                   "evals/s"});
  pt.set_precision(1);
  for (const auto& s : plans) {
    pt.add_row({s.workload, static_cast<std::int64_t>(s.threads), s.ms_per_plan,
                static_cast<std::int64_t>(s.evaluations),
                static_cast<std::int64_t>(s.memo_hits), s.evals_per_sec});
  }
  pt.print(std::cout);

  std::cout << "\n=== Trace replay throughput (" << jobs.size()
            << " jobs, DelayStage planning per job) ===\n";
  TablePrinter rt({"threads", "jobs/s", "speedup vs 1T"});
  rt.set_precision(2);
  for (const auto& s : replays)
    rt.add_row({static_cast<std::int64_t>(s.threads), s.jobs_per_sec,
                s.jobs_per_sec / replays.front().jobs_per_sec});
  rt.print(std::cout);

  // --- Machine-readable report for tools/check_bench.py.
  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n  \"planner\": [\n";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto& s = plans[i];
    json << "    {\"workload\": \"" << s.workload << "\", \"threads\": "
         << s.threads << ", \"ms_per_plan\": " << s.ms_per_plan
         << ", \"evaluations\": " << s.evaluations
         << ", \"memo_hits\": " << s.memo_hits
         << ", \"evals_per_sec\": " << s.evals_per_sec << "}"
         << (i + 1 < plans.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"replay\": [\n";
  for (std::size_t i = 0; i < replays.size(); ++i) {
    const auto& s = replays[i];
    json << "    {\"threads\": " << s.threads << ", \"jobs\": " << s.jobs
         << ", \"jobs_per_sec\": " << s.jobs_per_sec
         << ", \"mean_jct\": " << s.mean_jct << "}"
         << (i + 1 < replays.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
