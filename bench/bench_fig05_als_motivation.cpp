// Fig. 5 — CPU utilization and network throughput of one worker node while
// running the ALS job on the three-node stock Spark cluster: the resources
// alternate between saturated and idle.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Fig. 5: one worker running ALS under stock Spark ===\n"
            << "Paper: CPU and network are each either fully used or idle;\n"
            << "network idle ~58 s and CPU idle ~38 s of a 133 s job.\n\n";

  const auto dag = workloads::als();
  const auto spec = sim::ClusterSpec::three_node();
  const bench::BenchRun run = bench::run_workload(dag, spec, "Spark", 42);

  bench::print_series(std::cout, "t (s)",
                      {"CPU util %", "net rx MB/s"},
                      {&run.worker_cpu, &run.worker_net}, 5.0, 40);

  // Idle accounting over the job's run.
  double cpu_idle = 0, net_idle = 0, n = 0;
  for (std::size_t i = 0; i < run.worker_cpu.size(); ++i) {
    if (run.worker_cpu.time(i) > run.result.jct) break;
    cpu_idle += run.worker_cpu.value(i) < 5.0;
    net_idle += run.worker_net.value(i) < 1.0;
    ++n;
  }
  std::cout << "\nJCT: " << fmt(run.result.jct, 1) << " s (paper: ~133 s)\n"
            << "CPU idle:     " << fmt(cpu_idle, 0) << " s of " << fmt(n, 0)
            << " (paper: ~38 s of 133 s)\n"
            << "network idle: " << fmt(net_idle, 0) << " s of " << fmt(n, 0)
            << " (paper: ~58 s of 133 s)\n";
  return 0;
}
