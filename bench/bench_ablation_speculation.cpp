// Ablation — speculative execution (related work: Hopper, Spark's own
// speculation) on clusters with machine-level stragglers, and how it
// composes with DelayStage: the two attack different problems (slow
// machines vs resource interleaving).
#include <iostream>

#include "bench_common.h"
#include "engine/job_run.h"
#include "workloads/workloads.h"

namespace {

using namespace ds;

double run_jct(const dag::JobDag& dag, const sim::ClusterSpec& spec,
               bool stage_delays, bool speculation, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);
  engine::RunOptions opt;
  if (stage_delays) {
    auto s = sched::make_strategy("DelayStage");
    opt.plan = s->plan(dag, cluster);
  }
  opt.speculation = speculation;
  opt.seed = seed;
  engine::JobRun run(cluster, dag, opt);
  run.start();
  sim.run();
  return run.result().jct;
}

}  // namespace

int main() {
  using namespace ds;
  std::cout << "=== Ablation: speculation x DelayStage on a heterogeneous "
               "cluster ===\n\n";
  sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
  spec.node_speed_min = 0.25;  // machine-level stragglers
  spec.node_speed_max = 1.0;

  TablePrinter t({"workload", "stock (s)", "+speculation (s)",
                  "+DelayStage (s)", "both (s)"});
  t.set_precision(1);
  for (const auto& wl : workloads::benchmark_suite()) {
    double v[4] = {0, 0, 0, 0};
    for (std::uint64_t seed : {42ull, 7ull, 99ull}) {
      v[0] += run_jct(wl.dag, spec, false, false, seed) / 3.0;
      v[1] += run_jct(wl.dag, spec, false, true, seed) / 3.0;
      v[2] += run_jct(wl.dag, spec, true, false, seed) / 3.0;
      v[3] += run_jct(wl.dag, spec, true, true, seed) / 3.0;
    }
    t.add_row({wl.name, v[0], v[1], v[2], v[3]});
  }
  t.print(std::cout);
  std::cout << "\n(worker speeds drawn from [0.25, 1.0]; speculation copies a\n"
               "task once it lags 1.5x the stage's median finished time)\n";
  return 0;
}
