// Table 3 — mean (std) of a worker's network throughput and CPU utilization
// for the four workloads under stock Spark and DelayStage.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Table 3: worker utilization mean (std) ===\n"
            << "Paper: DelayStage raises average network throughput by\n"
            << "18.3-81.8% and CPU utilization by 7.2-28.1%, with smaller\n"
            << "standard deviations.\n\n";

  const auto spec = sim::ClusterSpec::paper_prototype();
  TablePrinter t({"workload", "Spark net MB/s", "DS net MB/s", "net gain %",
                  "Spark CPU %", "DS CPU %", "CPU gain %"});
  t.set_precision(1);

  struct Digest {
    std::string name;
    obs::Observability obs = bench::make_bench_obs();
    Seconds jct = 0;
  };
  std::vector<std::unique_ptr<Digest>> digests;  // Observability is immovable

  for (const auto& wl : workloads::benchmark_suite()) {
    auto stock_d = std::make_unique<Digest>();
    auto ds_d = std::make_unique<Digest>();
    const bench::BenchRun stock = bench::run_workload(
        wl.dag, spec, "Spark", 42, /*record_occupancy=*/false, &stock_d->obs);
    const bench::BenchRun ds_run =
        bench::run_workload(wl.dag, spec, "DelayStage", 42,
                            /*record_occupancy=*/false, &ds_d->obs);
    auto cell = [](const metrics::Summary& s) {
      return fmt(s.mean, 1) + " (" + fmt(s.stddev, 1) + ")";
    };
    t.add_row({wl.name, cell(stock.net_summary), cell(ds_run.net_summary),
               100.0 * (ds_run.net_summary.mean - stock.net_summary.mean) /
                   std::max(stock.net_summary.mean, 1e-9),
               cell(stock.cpu_summary), cell(ds_run.cpu_summary),
               100.0 * (ds_run.cpu_summary.mean - stock.cpu_summary.mean) /
                   std::max(stock.cpu_summary.mean, 1e-9)});
    stock_d->name = wl.name + " / Spark";
    stock_d->jct = stock.result.jct;
    ds_d->name = wl.name + " / DelayStage";
    ds_d->jct = ds_run.result.jct;
    digests.push_back(std::move(stock_d));
    digests.push_back(std::move(ds_d));
  }
  t.print(std::cout);

  std::cout << "\n--- span-based interleaving digest (same runs) ---\n";
  for (const auto& d : digests)
    bench::print_interleaving_digest(std::cout, d->name, d->obs, d->jct);
  return 0;
}
