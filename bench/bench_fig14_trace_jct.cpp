// Fig. 14 — JCT CDF of trace jobs replayed under Alibaba Fuxi and the three
// DelayStage path-order variants (descending = default, random, ascending).
#include <iostream>

#include "bench_common.h"
#include "metrics/cdf.h"
#include "trace/replay.h"
#include "trace/synthetic.h"

int main() {
  using namespace ds;
  std::cout << "=== Fig. 14: trace-driven JCT, Fuxi vs DelayStage variants ===\n"
            << "Paper (2.78M jobs): mean JCT 1373 s (Fuxi), 871 s (default),\n"
            << "945 s (random), 996 s (ascending): -36.6/-31.2/-27.5 %.\n\n";

  // 1/100-scale replay: 40 machines at trace-like load (the full trace is
  // 2.78M jobs on 4000 machines; everything scales linearly in job count).
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 2500;
  topt.horizon = 2 * 24 * 3600.0;
  topt.seed = 2018;
  const auto jobs = trace::synthetic_trace(topt);

  const char* strategies[] = {"Fuxi", "DelayStage", "random DelayStage",
                              "ascending DelayStage"};
  metrics::Cdf cdfs[4];
  double means[4] = {0, 0, 0, 0};
  double dedicated[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    trace::ReplayOptions opt;
    opt.strategy = strategies[i];
    opt.cluster.num_workers = 40;
    opt.seed = 7;
    const trace::ReplayResult r = trace::replay(jobs, opt);
    for (const auto& j : r.jobs) cdfs[i].add(j.jct);
    means[i] = r.mean_jct();
    dedicated[i] = r.mean_dedicated();
  }

  TablePrinter t({"CDF %", "Fuxi (s)", "default DS (s)", "random DS (s)",
                  "ascending DS (s)"});
  t.set_precision(0);
  for (double p : {10, 25, 50, 75, 90, 99}) {
    t.add_row({fmt(p, 0), cdfs[0].percentile(p), cdfs[1].percentile(p),
               cdfs[2].percentile(p), cdfs[3].percentile(p)});
  }
  t.print(std::cout);

  std::cout << "\nmean dedicated time (s):";
  for (int i = 0; i < 4; ++i)
    std::cout << "  " << strategies[i] << " " << fmt(dedicated[i], 0);
  std::cout << "\nmean JCT (s):";
  for (int i = 0; i < 4; ++i) std::cout << "  " << strategies[i] << " " << fmt(means[i], 0);
  std::cout << "\nreduction vs Fuxi: default -"
            << fmt(100.0 * (means[0] - means[1]) / means[0], 1)
            << " %, random -" << fmt(100.0 * (means[0] - means[2]) / means[0], 1)
            << " %, ascending -"
            << fmt(100.0 * (means[0] - means[3]) / means[0], 1)
            << " %  (paper: -36.6 / -31.2 / -27.5 %)\n"
            << "(" << jobs.size() << " synthetic trace jobs; the full-trace "
            << "replay scales linearly in job count)\n";
  return 0;
}
