// Fig. 11 — stage execution breakdown for CosineSimilarity and LDA under
// stock Spark, AggShuffle and DelayStage: which stages were delayed and how
// the execution-path spans shrink.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

namespace {

void breakdown(const ds::dag::JobDag& dag, const char* workload) {
  using namespace ds;
  std::cout << "--- " << workload << " ---\n";
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const char* strategy : {"Spark", "AggShuffle", "DelayStage"}) {
    const bench::BenchRun run = bench::run_workload(dag, spec, strategy, 42);
    bench::print_breakdown(std::cout, strategy, dag, run.result, run.plan);
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  std::cout << "=== Fig. 11: stage execution time breakdown ===\n"
            << "Paper: DelayStage delays stages 1-2 of both workloads; the\n"
            << "long path shrinks 29.4% (CosineSimilarity) / 23.8% (LDA);\n"
            << "AggShuffle can lengthen LDA's homogeneous stages 1-2.\n\n";
  breakdown(ds::workloads::cosine_similarity(), "CosineSimilarity");
  breakdown(ds::workloads::lda(), "LDA");
  return 0;
}
