// Event-core and parallel-simulation throughput benchmark.
//
// Three sections, all written to BENCH_sim.json (consumed by
// tools/check_bench.py, which fails on >20% regressions vs the committed
// baseline):
//   * queue  — raw EventQueue churn: self-rescheduling pop+push ticks, and
//     the fabric's cancel+reschedule pattern. Guards the indexed-heap core.
//   * engine — full JobRun ensembles across sim::ShardedRunner at shard
//     counts {1, 2, 8}: aggregate simulated events/s and runs/s. The
//     1-shard row is the single-thread floor check_bench gates on; the
//     multi-shard rows report the parallel speedup (informational — CI
//     containers may have a single core).
//   * replay — trace replay with engine validation: every job's planned
//     schedule re-run through the discrete-event engine, fanned out across
//     shards.
// Determinism is asserted inline: every shard count must produce identical
// results before the numbers are reported.
//
//   ./bench_sim_throughput [output.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "trace/replay.h"
#include "trace/synthetic.h"
#include "util/check.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct QueueSample {
  std::string scenario;
  std::uint64_t events = 0;
  double events_per_sec = 0;
};

struct EngineSample {
  int shards = 1;
  std::size_t runs = 0;
  std::uint64_t events = 0;
  double runs_per_sec = 0;
  double engine_events_per_sec = 0;
  double speedup = 1.0;
};

struct ReplaySample {
  int shards = 1;
  std::size_t jobs = 0;
  double jobs_per_sec = 0;
};

struct TickState {
  ds::sim::Simulator* sim = nullptr;
  long remaining = 0;
};

void tick(TickState* t) {
  if (t->remaining-- <= 0) return;
  t->sim->schedule_after(1.0, [t] { tick(t); });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ds;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sim.json";
  const int shard_counts[] = {1, 2, 8};

  // --- Queue: self-rescheduling tick chain (pop + push per event).
  std::vector<QueueSample> queue;
  {
    constexpr long kEvents = 2'000'000;
    sim::Simulator sim;
    TickState t{&sim, 1000};
    tick(&t);
    sim.run();  // warm-up
    t.remaining = kEvents;
    tick(&t);
    const auto t0 = Clock::now();
    sim.run();
    const double ms = ms_since(t0);
    queue.push_back({"tick_chain", kEvents, 1000.0 * kEvents / ms});
  }
  // --- Queue: cancel + re-push churn (the fabric's reschedule pattern).
  {
    constexpr long kOps = 2'000'000;
    sim::Simulator sim;
    sim.schedule_after(1e15, [] {});
    sim::EventId id = sim.schedule_after(1.0, [] {});
    for (int i = 0; i < 8; ++i) {  // warm slab + free list
      sim.cancel(id);
      id = sim.schedule_after(1.0, [] {});
    }
    const auto t0 = Clock::now();
    for (long i = 0; i < kOps; ++i) {
      sim.cancel(id);
      id = sim.schedule_after(1.0 + static_cast<double>(i), [] {});
    }
    const double ms = ms_since(t0);
    queue.push_back(
        {"cancel_repush", kOps, 1000.0 * kOps / ms});
  }

  // --- Engine: LDA run ensembles across shard counts.
  const auto dag = workloads::lda();
  const auto spec = sim::ClusterSpec::paper_prototype();
  constexpr std::size_t kRuns = 16;
  auto run_one = [&](std::size_t i) -> std::pair<double, std::size_t> {
    sim::Simulator sim;
    sim::Cluster cluster(sim, spec, 42 + i);
    engine::RunOptions opt;
    opt.seed = 42 + i;
    engine::JobRun run(cluster, dag, std::move(opt));
    run.start();
    sim.run();
    return {run.result().jct, sim.events_processed()};
  };

  std::vector<EngineSample> engine;
  std::vector<double> reference_jcts;
  for (int shards : shard_counts) {
    sim::ShardedRunner runner(shards);
    runner.run<std::pair<double, std::size_t>>(2, run_one);  // warm-up
    const auto t0 = Clock::now();
    const auto results =
        runner.run<std::pair<double, std::size_t>>(kRuns, run_one);
    const double ms = ms_since(t0);

    std::vector<double> jcts;
    std::uint64_t events = 0;
    for (const auto& [jct, ev] : results) {
      jcts.push_back(jct);
      events += ev;
    }
    if (reference_jcts.empty()) reference_jcts = jcts;
    DS_CHECK_MSG(jcts == reference_jcts,
                 "engine ensemble result depends on shard count");

    EngineSample s;
    s.shards = shards;
    s.runs = kRuns;
    s.events = events;
    s.runs_per_sec = 1000.0 * static_cast<double>(kRuns) / ms;
    s.engine_events_per_sec = 1000.0 * static_cast<double>(events) / ms;
    s.speedup = engine.empty()
                    ? 1.0
                    : s.engine_events_per_sec / engine.front().engine_events_per_sec;
    engine.push_back(s);
  }

  // --- Replay with engine validation across shard counts.
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 60;
  topt.max_stages = 10;
  topt.max_stage_time = 300;
  topt.seed = 2018;
  const auto jobs = trace::synthetic_trace(topt);
  std::vector<ReplaySample> replays;
  std::vector<Seconds> reference_engine_jcts;
  for (int shards : shard_counts) {
    trace::ReplayOptions ropt;
    ropt.strategy = "DelayStage";
    ropt.threads = 1;
    ropt.engine_validate = true;
    ropt.engine_shards = shards;
    ropt.seed = 7;
    const auto t0 = Clock::now();
    const trace::ReplayResult r = trace::replay(jobs, ropt);
    const double ms = ms_since(t0);

    std::vector<Seconds> ejcts;
    for (const auto& j : r.jobs) ejcts.push_back(j.engine_jct);
    if (reference_engine_jcts.empty()) reference_engine_jcts = ejcts;
    DS_CHECK_MSG(ejcts == reference_engine_jcts,
                 "engine-validated replay depends on shard count");

    replays.push_back(
        {shards, jobs.size(), 1000.0 * static_cast<double>(jobs.size()) / ms});
  }

  // --- Human-readable report.
  std::cout << "=== Event queue churn ===\n";
  TablePrinter qt({"scenario", "events", "events/s"});
  qt.set_precision(0);
  for (const auto& s : queue)
    qt.add_row({s.scenario, static_cast<std::int64_t>(s.events),
                s.events_per_sec});
  qt.print(std::cout);

  std::cout << "\n=== Engine ensembles (" << kRuns << " LDA runs) ===\n";
  TablePrinter et({"shards", "runs/s", "events/s", "speedup vs 1"});
  et.set_precision(2);
  for (const auto& s : engine)
    et.add_row({static_cast<std::int64_t>(s.shards), s.runs_per_sec,
                s.engine_events_per_sec, s.speedup});
  et.print(std::cout);

  std::cout << "\n=== Engine-validated replay (" << jobs.size()
            << " jobs) ===\n";
  TablePrinter rt({"shards", "jobs/s"});
  rt.set_precision(2);
  for (const auto& s : replays)
    rt.add_row({static_cast<std::int64_t>(s.shards), s.jobs_per_sec});
  rt.print(std::cout);

  // --- Machine-readable report for tools/check_bench.py.
  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n  \"queue\": [\n";
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const auto& s = queue[i];
    json << "    {\"scenario\": \"" << s.scenario << "\", \"events\": "
         << s.events << ", \"events_per_sec\": " << s.events_per_sec << "}"
         << (i + 1 < queue.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"engine\": [\n";
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const auto& s = engine[i];
    json << "    {\"shards\": " << s.shards << ", \"runs\": " << s.runs
         << ", \"events\": " << s.events
         << ", \"runs_per_sec\": " << s.runs_per_sec
         << ", \"engine_events_per_sec\": " << s.engine_events_per_sec
         << ", \"speedup_vs_1\": " << s.speedup << "}"
         << (i + 1 < engine.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"engine_replay\": [\n";
  for (std::size_t i = 0; i < replays.size(); ++i) {
    const auto& s = replays[i];
    json << "    {\"shards\": " << s.shards << ", \"jobs\": " << s.jobs
         << ", \"jobs_per_sec\": " << s.jobs_per_sec << "}"
         << (i + 1 < replays.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
