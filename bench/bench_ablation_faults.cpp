// Ablation — failure-domain fault injection: stochastic node crashes (with
// recovery) swept against the scheduling strategy. Reports how much JCT
// degrades and how much work is wasted (killed attempts, invalidated map
// output, stage resubmissions) under stock Spark submission vs DelayStage
// plans. DelayStage keeps less shuffle output materialised early, but also
// compresses the job into a shorter window — this bench quantifies the net
// robustness effect. Emits a human table plus machine-readable JSON lines.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/job_run.h"
#include "sim/faults.h"
#include "workloads/workloads.h"

namespace {

using namespace ds;

struct FaultRun {
  bool completed = false;  // finished successfully (failed/hung otherwise)
  double jct = -1;
  double wasted = 0;
  int crashes = 0;
  int fetch_failures = 0;
  int resubmissions = 0;
  int tasks_rerun = 0;
};

FaultRun run_one(const dag::JobDag& dag, const sim::ClusterSpec& spec,
                 bool stage_delays, double crash_rate, Seconds horizon,
                 std::uint64_t seed) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);
  engine::RunOptions opt;
  if (stage_delays) {
    auto s = sched::make_strategy("DelayStage");
    opt.plan = s->plan(dag, cluster);
  }
  opt.seed = seed;

  sim::FaultPlan plan;
  plan.crash_rate = crash_rate;
  plan.crash_horizon = horizon;
  plan.mean_downtime = 60.0;
  sim::FaultInjector inj(cluster, plan, seed);
  if (crash_rate > 0) opt.faults = &inj;

  engine::JobRun run(cluster, dag, opt);
  if (crash_rate > 0) inj.start();
  run.start();
  while (!run.finished() && sim.step()) {
  }

  FaultRun out;
  if (!run.finished()) return out;  // stranded (all workers down): failed
  const engine::JobResult& r = run.result();
  out.completed = !r.failed;
  out.jct = r.jct;
  out.wasted = r.wasted_seconds();
  out.crashes = r.node_crashes;
  out.fetch_failures = r.fetch_failures;
  out.resubmissions = r.resubmissions();
  out.tasks_rerun = r.tasks_rerun();
  return out;
}

}  // namespace

int main() {
  using namespace ds;
  std::cout << "=== Ablation: node-crash rate x scheduling strategy ===\n\n";
  const sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
  const std::vector<std::uint64_t> seeds = {42, 7, 99};
  const std::vector<double> rates = {0.0, 2e-5, 5e-5, 1e-4, 2e-4};

  TablePrinter t({"workload", "strategy", "crash rate", "runs ok", "mean jct",
                  "degrade %", "wasted s", "crashes", "resubmits"});
  t.set_precision(1);
  std::vector<std::string> json_lines;

  for (const auto& wl : workloads::benchmark_suite()) {
    for (const bool ds_plan : {false, true}) {
      const std::string strategy = ds_plan ? "DelayStage" : "Spark";
      // Healthy baseline per seed; crashes are drawn over 2x the slowest
      // healthy run so recovery tails stay inside the hazard window.
      double healthy_mean = 0, horizon = 0;
      for (const auto seed : seeds) {
        const FaultRun h = run_one(wl.dag, spec, ds_plan, 0.0, 0.0, seed);
        healthy_mean += h.jct / static_cast<double>(seeds.size());
        horizon = std::max(horizon, 2.0 * h.jct);
      }
      for (const double rate : rates) {
        int ok = 0, failed = 0;
        double jct_sum = 0, wasted_sum = 0;
        double crash_sum = 0, resub_sum = 0, fetch_sum = 0, rerun_sum = 0;
        for (const auto seed : seeds) {
          const FaultRun r =
              run_one(wl.dag, spec, ds_plan, rate, horizon, seed);
          if (r.completed) {
            ++ok;
            jct_sum += r.jct;
            wasted_sum += r.wasted;
          } else {
            ++failed;
          }
          crash_sum += r.crashes;
          resub_sum += r.resubmissions;
          fetch_sum += r.fetch_failures;
          rerun_sum += r.tasks_rerun;
        }
        const double mean_jct = ok > 0 ? jct_sum / ok : -1;
        const double mean_wasted = ok > 0 ? wasted_sum / ok : -1;
        const double degrade =
            ok > 0 ? 100.0 * (mean_jct - healthy_mean) / healthy_mean : -1;
        const double n = static_cast<double>(seeds.size());
        char rate_str[32];
        std::snprintf(rate_str, sizeof(rate_str), "%g", rate);
        t.add_row({wl.name, strategy, std::string(rate_str),
                   static_cast<double>(ok), mean_jct, degrade, mean_wasted,
                   crash_sum / n, resub_sum / n});
        json_lines.push_back(
            "{\"workload\":\"" + wl.name + "\",\"strategy\":\"" + strategy +
            "\",\"crash_rate\":" + std::to_string(rate) +
            ",\"runs\":" + std::to_string(seeds.size()) +
            ",\"completed\":" + std::to_string(ok) +
            ",\"failed\":" + std::to_string(failed) +
            ",\"mean_jct_s\":" + std::to_string(mean_jct) +
            ",\"jct_degradation_pct\":" + std::to_string(degrade) +
            ",\"mean_wasted_s\":" + std::to_string(mean_wasted) +
            ",\"mean_crashes\":" + std::to_string(crash_sum / n) +
            ",\"mean_fetch_failures\":" + std::to_string(fetch_sum / n) +
            ",\"mean_resubmissions\":" + std::to_string(resub_sum / n) +
            ",\"mean_tasks_rerun\":" + std::to_string(rerun_sum / n) + "}");
      }
    }
  }
  t.print(std::cout);
  std::cout << "\n(crash rate is per-worker failures/s over a horizon of 2x\n"
               "the healthy JCT; crashed nodes rejoin after an exponential\n"
               "downtime with mean 60 s and lose their shuffle output;\n"
               "'runs ok' counts seeds that completed without a terminal\n"
               "job failure)\n\n";
  std::cout << "--- JSON ---\n";
  for (const auto& line : json_lines) std::cout << line << "\n";
  return 0;
}
