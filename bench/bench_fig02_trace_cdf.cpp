// Fig. 2 — CDF of the number of stages and of parallel stages per job in
// the (synthetic) Alibaba-trace workload, plus the §2.1 headline aggregates.
#include <iostream>

#include "bench_common.h"
#include "trace/stats.h"
#include "trace/synthetic.h"

int main() {
  using namespace ds;
  std::cout << "=== Fig. 2: CDF of #stages / #parallel stages per job ===\n"
            << "Paper: 68.6% of jobs have parallel stages; parallel stages\n"
            << "are 79.1% of all stages; 90% of jobs have <15 stages.\n\n";

  trace::SyntheticTraceOptions opt;
  opt.num_jobs = 20000;
  opt.seed = 2018;
  const auto jobs = trace::synthetic_trace(opt);
  const trace::TraceStats st = trace::analyze(jobs);

  TablePrinter t({"CDF %", "# stages", "# parallel stages"});
  t.set_precision(1);
  for (double p : {10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 100}) {
    t.add_row({fmt(p, 0), st.stages_per_job.percentile(p),
               st.parallel_stages_per_job.percentile(p)});
  }
  t.print(std::cout);

  std::cout << "\njobs analysed:                " << st.total_jobs
            << "\njobs with parallel stages:    "
            << fmt(100.0 * st.parallel_job_fraction(), 1)
            << " %   (paper: 68.6 %)"
            << "\nparallel share of all stages: "
            << fmt(100.0 * st.parallel_stage_fraction(), 1)
            << " %   (paper: 79.1 %)"
            << "\njobs with <15 stages:         "
            << fmt(st.stages_per_job.fraction_below(15.0), 1)
            << " %   (paper: ~90 %)\n";
  return 0;
}
