// Infrastructure micro-benchmark: discrete-event engine throughput — one
// full prototype-cluster job run per iteration (justifies Per.6: measure,
// don't guess, before trusting the simulator for sweep experiments).
#include <benchmark/benchmark.h>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "workloads/workloads.h"

namespace {

using namespace ds;

void BM_EngineRun(benchmark::State& state, const dag::JobDag* dag) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  std::size_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Cluster cluster(sim, spec, 42);
    engine::JobRun run(cluster, *dag, {});
    run.start();
    sim.run();
    events += sim.events_processed();
    benchmark::DoNotOptimize(run.result().jct);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_MaxMinAllocate(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  std::vector<sim::FlowPorts> fp(flows);
  for (std::size_t f = 0; f < flows; ++f)
    fp[f] = {static_cast<int>(f % 30), 30 + static_cast<int>(f % 33), -1};
  std::vector<double> caps(63, 40e6);
  for (auto _ : state) benchmark::DoNotOptimize(sim::max_min_allocate(fp, caps));
}

const auto kLda = workloads::lda();
const auto kTri = workloads::triangle_count();

}  // namespace

BENCHMARK_CAPTURE(BM_EngineRun, LDA, &kLda)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EngineRun, TriangleCount, &kTri)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxMinAllocate)->Arg(100)->Arg(1000)->Arg(3000);

BENCHMARK_MAIN();
