// Ablation — input-scale sensitivity: DelayStage's gain as the workload
// volumes scale (the `scale` parameter of every workload builder).
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Ablation: DelayStage gain vs input scale (TriangleCount) ===\n\n";
  const auto spec = sim::ClusterSpec::paper_prototype();
  TablePrinter t({"scale", "Spark (s)", "DelayStage (s)", "gain %"});
  t.set_precision(1);
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    const auto dag = workloads::triangle_count(scale);
    double stock = 0, ds_jct = 0;
    for (std::uint64_t seed : {42ull, 7ull}) {
      stock += bench::run_workload(dag, spec, "Spark", seed).result.jct / 2.0;
      ds_jct +=
          bench::run_workload(dag, spec, "DelayStage", seed).result.jct / 2.0;
    }
    t.add_row({fmt(scale, 1), stock, ds_jct, 100.0 * (stock - ds_jct) / stock});
  }
  t.print(std::cout);
  std::cout << "\n(gains should persist across scales: the interleaving\n"
               "structure, not the absolute volume, drives the benefit)\n";
  return 0;
}
