// Ablation — multi-job prototype cluster (§6: "our work can be easily
// extended to reducing the average job completion time in the multi-job
// environment"): several workloads arrive staggered on one 30-node cluster;
// each job's plan is computed independently.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "engine/job_run.h"
#include "workloads/workloads.h"

namespace {

using namespace ds;

double mean_jct(const std::string& strategy, std::uint64_t seed) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  const auto suite = workloads::benchmark_suite();
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);

  std::vector<std::unique_ptr<engine::JobRun>> runs;
  std::vector<Seconds> submit;
  Seconds at = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    auto strat = sched::make_strategy(strategy);
    engine::RunOptions opt;
    opt.plan = strat->plan(suite[i].dag, spec);
    opt.seed = seed + i;
    runs.push_back(
        std::make_unique<engine::JobRun>(cluster, suite[i].dag, opt));
    submit.push_back(at);
    at += 120.0;  // staggered arrivals
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    engine::JobRun* r = runs[i].get();
    sim.schedule_at(submit[i], [r] { r->start(); });
  }
  sim.run();

  double sum = 0;
  for (std::size_t i = 0; i < runs.size(); ++i)
    sum += runs[i]->result().jct - submit[i];
  return sum / static_cast<double>(runs.size());
}

}  // namespace

int main() {
  std::cout << "=== Ablation: four jobs sharing the prototype cluster ===\n\n";
  TablePrinter t({"strategy", "mean JCT (s)"});
  t.set_precision(1);
  for (const char* strategy :
       {"Spark", "CriticalPathFirst", "AggShuffle", "DelayStage"}) {
    double sum = 0;
    for (std::uint64_t seed : {42ull, 7ull, 99ull})
      sum += mean_jct(strategy, seed) / 3.0;
    t.add_row({std::string(strategy), sum});
  }
  t.print(std::cout);
  std::cout << "\n(per-job DelayStage plans, staggered arrivals 120 s apart)\n";
  return 0;
}
