// Shared helpers for the per-figure bench binaries. Every bench regenerates
// one table or figure of the paper: it runs the relevant experiment on the
// simulated cluster and prints the rows/series the paper reports.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "engine/job_run.h"
#include "metrics/sampler.h"
#include "metrics/stats.h"
#include "metrics/timeseries.h"
#include "obs/analytics/analytics.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/table.h"

namespace ds::bench {

struct BenchRun {
  engine::JobResult result;
  // Time series of a representative worker (worker 0) over the job's run.
  metrics::TimeSeries worker_cpu;   // percent
  metrics::TimeSeries worker_net;   // MB/s received
  metrics::Summary cpu_summary;     // over [0, jct]
  metrics::Summary net_summary;
  std::vector<metrics::TimeSeries> occupancy;  // per stage, if requested
  engine::SubmissionPlan plan;
};

// Runs one workload under one strategy. Pass an Observability to capture the
// engine's task spans (for span-based interleaving analytics); the obs layer
// is passive, so results are bit-identical with or without it.
inline BenchRun run_workload(const dag::JobDag& dag,
                             const sim::ClusterSpec& spec,
                             const std::string& strategy_name,
                             std::uint64_t seed,
                             bool record_occupancy = false,
                             obs::Observability* obs = nullptr) {
  sim::Simulator sim(obs);
  sim::Cluster cluster(sim, spec, seed, obs);
  auto strategy = sched::make_strategy(strategy_name);

  engine::RunOptions opt;
  opt.plan = strategy->plan(dag, cluster);
  opt.seed = seed;
  opt.record_occupancy = record_occupancy;
  opt.obs = obs;

  metrics::UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  engine::JobRun run(cluster, dag, opt);
  run.start();
  // The sampler keeps the event queue alive; step until the job completes,
  // then stop sampling and drain.
  while (!run.finished() && sim.step()) {
  }
  sampler.stop();
  sim.run();

  BenchRun out;
  out.result = run.result();
  const obs::analytics::WorkerUtilization wu =
      obs::analytics::worker_utilization(sampler, 0, out.result.jct);
  out.worker_cpu = wu.cpu;
  out.worker_net = wu.net;
  out.cpu_summary = wu.cpu_summary;
  out.net_summary = wu.net_summary;
  out.plan = opt.plan;
  if (record_occupancy) {
    for (dag::StageId s = 0; s < dag.num_stages(); ++s)
      out.occupancy.push_back(run.occupancy(s));
  }
  return out;
}

// A tracing Observability for span-based bench analytics; sized generously
// so long runs never drop spans.
inline obs::Observability make_bench_obs() {
  obs::TracerOptions topt;
  topt.enabled = true;
  topt.ring_capacity = std::size_t{1} << 19;
  return obs::Observability(topt);
}

// One-line interleaving digest of a run's task spans (Figs. 5/12): how much
// of the makespan the network and CPU overlap, and the idle fractions left.
inline void print_interleaving_digest(std::ostream& os,
                                      const std::string& strategy,
                                      const obs::Observability& obs,
                                      Seconds jct) {
  const obs::analytics::InterleavingReport rep =
      obs::analytics::interleaving(obs.tracer, jct);
  const auto& c = rep.cluster;
  os << strategy << " interleaving: net busy "
     << fmt(100.0 * c.network.busy_fraction, 1) << " %, CPU busy "
     << fmt(100.0 * c.cpu.busy_fraction, 1) << " %, net x CPU overlap "
     << fmt(100.0 * c.overlap_fraction, 1) << " % of the scarcer resource ("
     << fmt(100.0 * c.interleaving_score, 1) << " % of makespan)\n";
}

// Print a (time, series...) block bucketed to `bucket` seconds, `max_rows`
// rows maximum — the shape of the paper's time-series figures in text form.
inline void print_series(std::ostream& os, const std::string& time_label,
                         const std::vector<std::string>& labels,
                         const std::vector<const metrics::TimeSeries*>& series,
                         Seconds bucket, std::size_t max_rows = 40) {
  std::vector<metrics::TimeSeries> rebucketed;
  rebucketed.reserve(series.size());
  std::size_t rows = 0;
  for (const auto* ts : series) {
    rebucketed.push_back(ts->rebucket(bucket));
    rows = std::max(rows, rebucketed.back().size());
  }
  std::vector<std::string> headers = {time_label};
  headers.insert(headers.end(), labels.begin(), labels.end());
  TablePrinter table(headers);
  table.set_precision(1);
  const std::size_t step = rows <= max_rows ? 1 : (rows + max_rows - 1) / max_rows;
  for (std::size_t r = 0; r < rows; r += step) {
    std::vector<TablePrinter::Cell> row;
    row.emplace_back(rebucketed[0].size() > r ? rebucketed[0].time(r)
                                              : static_cast<double>(r) * bucket);
    for (const auto& ts : rebucketed)
      row.emplace_back(r < ts.size() ? ts.value(r) : 0.0);
    table.add_row(std::move(row));
  }
  table.print(os);
}

// Stage-breakdown rows (Figs. 11/16): per stage, when it was submitted,
// how long the shuffle read ran (grey block) and when it finished.
inline void print_breakdown(std::ostream& os, const std::string& strategy,
                            const dag::JobDag& dag,
                            const engine::JobResult& r,
                            const engine::SubmissionPlan& plan) {
  os << strategy << " (JCT " << fmt(r.jct, 1) << " s):\n";
  TablePrinter t({"stage", "delay x_k", "submitted", "read done", "finish"});
  t.set_precision(1);
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    const auto& sr = r.stages[static_cast<std::size_t>(s)];
    t.add_row({dag.stage(s).name, plan.delay_for(s), sr.submitted,
               sr.last_read_done, sr.finish});
  }
  t.print(os);
}

}  // namespace ds::bench
