// Ablation — sensitivity of DelayStage's gain to the cross-stage contention
// penalty β (DESIGN.md's documented substitution for the non-work-conserving
// behaviour of real networks). At β = 0 the fabric is ideally work-
// conserving and the gain shrinks to pure ordering effects; the default β
// reproduces the paper's gain band.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Ablation: congestion penalty beta vs DelayStage gain ===\n\n";

  TablePrinter t({"beta", "Spark (s)", "DelayStage (s)", "gain %"});
  t.set_precision(1);
  const auto dag = workloads::triangle_count();
  for (double beta : {0.0, 0.3, 0.6, 1.2, 2.0}) {
    sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
    spec.congestion_penalty = beta;
    double stock = 0, ds_jct = 0;
    for (std::uint64_t seed : {42ull, 7ull}) {
      stock += bench::run_workload(dag, spec, "Spark", seed).result.jct / 2.0;
      ds_jct +=
          bench::run_workload(dag, spec, "DelayStage", seed).result.jct / 2.0;
    }
    t.add_row({fmt(beta, 1), stock, ds_jct, 100.0 * (stock - ds_jct) / stock});
  }
  t.print(std::cout);
  std::cout << "\n(TriangleCount, 30-node prototype cluster, 2 seeds)\n";
  return 0;
}
