// Ablation: the drift-closed adaptive loop (DESIGN.md §11) against the
// static planner on a drift-sensitive workload.
//
// Three scenarios, three planning modes each:
//
//   perturbed   the planner's believed profile overstates both network
//               terms 3× (a ≥30% coefficient error); the engine runs the
//               truth. Recurrent submissions let the calibrator learn the
//               lie back out.
//   faults      the profile is accurate but a worker crashes permanently
//               early in every run; the crash snapshot triggers a
//               frozen-prefix replan on the shrunk cluster.
//   accurate    profile matches the cluster, nothing crashes. This row is
//               the identity contract: first-sight calibration is identity
//               and an armed replanner never applies, so both adaptive
//               modes must be bit-identical to static with zero replans.
//
//   static             plan once on the believed profile, reuse verbatim
//   calibrated         AdaptivePlanner plan/observe loop, replanning off
//   calibrated_replan  same loop with the default ReplanPolicy armed
//
// All times are simulated (deterministic), so the JSON gate in
// tools/check_bench.py compares exact model outcomes, not wall clock.
// Writes BENCH_adaptive.json (or argv[1]) for that gate.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive.h"
#include "core/delay_calculator.h"
#include "engine/job_run.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "util/check.h"
#include "util/table.h"
#include "util/units.h"

namespace ds {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  s.task_skew = 0.2;
  return s;
}

// Three parallel branches with sharply mixed resource profiles: the
// DelayStage stagger between the net-heavy fetch and the cpu-heavy branch
// is exactly the decision that drifted coefficients and lost workers
// invalidate, so this shape separates the planning modes.
dag::JobDag fan() {
  dag::JobDag j("fan");
  j.add_stage(mk("src", 6, 600_MB, 60_MBps, 1.2_GB));
  j.add_stage(mk("net-heavy", 6, 1.2_GB, 60_MBps, 100_MB));
  j.add_stage(mk("cpu-heavy", 6, 300_MB, 3_MBps, 100_MB));
  j.add_stage(mk("mid", 6, 600_MB, 12_MBps, 100_MB));
  j.add_stage(mk("join", 6, 300_MB, 30_MBps, 0));
  j.add_edge(0, 1);
  j.add_edge(0, 2);
  j.add_edge(0, 3);
  j.add_edge(1, 4);
  j.add_edge(2, 4);
  j.add_edge(3, 4);
  return j;
}

struct Scenario {
  std::string name;
  bool lie;          // planner believes a 3× faster network
  bool crash;        // one permanent worker crash early in every run
  int recurrences;   // accurate runs once: it measures the identity contract
};

struct Row {
  std::string scenario;
  std::string mode;
  int recurrences = 0;
  double mean_jct = 0;
  double gain_pct = 0;  // vs the static row of the same scenario
  int replans = 0;
};

engine::JobResult run_once(const dag::JobDag& dag, engine::RunOptions opt,
                           bool crash) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  sim::FaultPlan fp;
  std::unique_ptr<sim::FaultInjector> inj;
  if (crash) {
    fp.crashes.push_back({cluster.worker(1), 5.0, -1});
    inj = std::make_unique<sim::FaultInjector>(cluster, fp, opt.seed);
    opt.faults = inj.get();
    inj->start();
  }
  engine::JobRun run(cluster, dag, std::move(opt));
  run.start();
  sim.run();
  const engine::JobResult& r = run.result();
  DS_CHECK_MSG(r.complete(), "bench job failed: " + r.failure_reason);
  return r;
}

Row run_mode(const dag::JobDag& dag, const Scenario& sc,
             const std::string& mode) {
  const auto spec = sim::ClusterSpec::three_node();
  core::JobProfile believed = core::JobProfile::from(dag, spec);
  if (sc.lie) {
    believed.cluster.nic_bw *= 3.0;
    believed.cluster.storage_net_bw *= 3.0;
  }

  Row row;
  row.scenario = sc.name;
  row.mode = mode;
  row.recurrences = sc.recurrences;

  double sum = 0;
  if (mode == "static") {
    const core::DelaySchedule plan = core::DelayCalculator(believed).compute();
    for (int r = 0; r < sc.recurrences; ++r) {
      engine::RunOptions opt;
      opt.seed = 100 + r;
      opt.plan.delay = plan.delay;
      sum += run_once(dag, std::move(opt), sc.crash).jct;
    }
  } else {
    core::AdaptiveOptions aopt;
    aopt.replan.enabled = (mode == "calibrated_replan");  // default policy
    core::AdaptivePlanner planner(believed, aopt);
    for (int r = 0; r < sc.recurrences; ++r) {
      planner.plan();
      engine::RunOptions opt;
      opt.seed = 100 + r;
      planner.arm(opt);
      const engine::JobResult res = run_once(dag, std::move(opt), sc.crash);
      sum += res.jct;
      row.replans += res.replans;
      planner.observe(res);
    }
  }
  row.mean_jct = sum / sc.recurrences;
  return row;
}

}  // namespace
}  // namespace ds

int main(int argc, char** argv) {
  using namespace ds;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_adaptive.json";
  const dag::JobDag dag = fan();

  const std::vector<Scenario> scenarios = {
      {"perturbed", /*lie=*/true, /*crash=*/false, /*recurrences=*/6},
      {"faults", /*lie=*/false, /*crash=*/true, /*recurrences=*/6},
      {"accurate", /*lie=*/false, /*crash=*/false, /*recurrences=*/1},
  };
  const std::vector<std::string> modes = {"static", "calibrated",
                                          "calibrated_replan"};

  std::vector<Row> rows;
  for (const Scenario& sc : scenarios) {
    double static_jct = 0;
    for (const std::string& mode : modes) {
      Row row = run_mode(dag, sc, mode);
      if (mode == "static") static_jct = row.mean_jct;
      row.gain_pct = 100.0 * (static_jct - row.mean_jct) / static_jct;
      rows.push_back(std::move(row));
    }
  }

  // The identity contract is part of the bench's own output validity: if
  // the accurate rows ever diverge from static, the JSON gain/replan gate
  // downstream would be checking a broken build.
  for (const Row& r : rows) {
    if (r.scenario != "accurate") continue;
    DS_CHECK_MSG(r.gain_pct == 0.0,
                 "accurate-profile run diverged from the static plan");
    DS_CHECK_MSG(r.replans == 0, "accurate-profile run applied a replan");
  }

  std::cout << "=== Adaptive planning ablation (fan workload) ===\n";
  TablePrinter t({"scenario", "mode", "runs", "mean JCT (s)", "gain vs static %",
                  "replans"});
  t.set_precision(2);
  for (const Row& r : rows)
    t.add_row({r.scenario, r.mode, static_cast<std::int64_t>(r.recurrences),
               r.mean_jct, r.gain_pct, static_cast<std::int64_t>(r.replans)});
  t.print(std::cout);

  std::ofstream json(out_path);
  json.precision(10);
  json << "{\n  \"adaptive\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"scenario\": \"" << r.scenario << "\", \"mode\": \""
         << r.mode << "\", \"recurrences\": " << r.recurrences
         << ", \"mean_jct\": " << r.mean_jct
         << ", \"gain_pct\": " << r.gain_pct
         << ", \"replans\": " << r.replans << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
