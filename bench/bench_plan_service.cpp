// Plan-as-a-service throughput: plans/sec and per-request latency through
// the PlanService, cold (every request computes a DelayCalculator plan) vs
// warm (recurrent requests served from the sharded PlanCache). Writes
// BENCH_plan_service.json (consumed by tools/check_bench.py, which enforces
// the cold/warm floors and the headline warm-vs-cold speedup gate).
//
// The stream models a recurrent-job service: a pool of distinct workloads
// (the §5 suite at several volume scales), each requested many times. Warm
// hits are DS_CHECKed bit-identical to the cold plans they memoized — the
// speedup must never come from answering a different plan.
//
//   ./bench_plan_service [output.json]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "metrics/stats.h"
#include "sim/cluster.h"
#include "store/plan_service.h"
#include "util/check.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Sample {
  std::string mode;
  std::size_t requests = 0;
  double plans_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
};

Sample measure(const std::string& mode, std::vector<double>& latencies,
               double total_ms, double hit_rate) {
  std::sort(latencies.begin(), latencies.end());
  Sample s;
  s.mode = mode;
  s.requests = latencies.size();
  s.plans_per_sec = 1000.0 * static_cast<double>(latencies.size()) / total_ms;
  s.p50_ms = ds::metrics::percentile(latencies, 50);
  s.p99_ms = ds::metrics::percentile(latencies, 99);
  s.hit_rate = hit_rate;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ds;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_plan_service.json";

  // The workload pool: the benchmark suite at 4 volume scales → 4 × suite
  // distinct signatures, each a genuinely different planning problem.
  constexpr double kScales[] = {0.8, 1.0, 1.2, 1.5};
  std::vector<dag::JobDag> jobs;
  for (const double scale : kScales)
    for (auto& w : workloads::benchmark_suite(scale))
      jobs.push_back(std::move(w.dag));
  const sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
  std::vector<core::JobProfile> profiles;
  profiles.reserve(jobs.size());
  for (const auto& j : jobs)
    profiles.push_back(core::JobProfile::from(j, spec));

  store::PlanServiceOptions sopt;
  store::PlanService service(sopt);

  // --- Cold: every request is a distinct never-seen (signature, bucket), so
  // each one runs the full DelayCalculator. Several passes with the cache
  // invalidated in between keep the sample size honest.
  constexpr int kColdPasses = 4;
  std::vector<double> cold_lat;
  std::vector<core::DelaySchedule> reference;
  double cold_ms = 0;
  for (int pass = 0; pass < kColdPasses; ++pass) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const std::uint64_t sig = core::workload_signature(jobs[i]);
      service.cache().invalidate_signature(sig);
      const auto t0 = Clock::now();
      const auto planned = service.plan(jobs[i], profiles[i]);
      const double ms = ms_since(t0);
      cold_ms += ms;
      cold_lat.push_back(ms);
      DS_CHECK_MSG(!planned.cache_hit, "cold request hit the cache");
      if (pass == 0) reference.push_back(*planned.plan);
    }
  }
  const Sample cold = measure("cold", cold_lat, cold_ms, 0.0);

  // --- Warm: the recurrent stream. The last cold pass left every workload
  // cached; requests round-robin the pool and must all hit.
  const std::size_t kWarmRequests = 20000;
  std::vector<double> warm_lat;
  warm_lat.reserve(kWarmRequests);
  const std::uint64_t hits_before = service.cache().hits();
  double warm_ms = 0;
  for (std::size_t r = 0; r < kWarmRequests; ++r) {
    const std::size_t i = r % jobs.size();
    const auto t0 = Clock::now();
    const auto planned = service.plan(jobs[i], profiles[i]);
    const double ms = ms_since(t0);
    warm_ms += ms;
    warm_lat.push_back(ms);
    DS_CHECK_MSG(planned.cache_hit, "warm request missed the cache");
    // The memoized plan must be the cold plan, bit for bit.
    DS_CHECK_MSG(planned.plan->delay == reference[i].delay,
                 "warm plan differs from the cold plan");
    DS_CHECK_MSG(
        planned.plan->predicted_makespan == reference[i].predicted_makespan,
        "warm plan predicts a different makespan");
  }
  const double warm_hit_rate =
      static_cast<double>(service.cache().hits() - hits_before) /
      static_cast<double>(kWarmRequests);
  const Sample warm = measure("warm", warm_lat, warm_ms, warm_hit_rate);
  const double speedup = warm.plans_per_sec / cold.plans_per_sec;

  // --- Human-readable report.
  std::cout << "=== Plan-as-a-service throughput (" << jobs.size()
            << " distinct workloads) ===\n";
  TablePrinter t({"mode", "requests", "plans/s", "p50 ms", "p99 ms",
                  "hit rate"});
  t.set_precision(3);
  for (const Sample* s : {&cold, &warm})
    t.add_row({s->mode, static_cast<std::int64_t>(s->requests),
               s->plans_per_sec, s->p50_ms, s->p99_ms, s->hit_rate});
  t.print(std::cout);
  std::cout << "\nwarm/cold speedup: " << speedup << "x\n";

  // --- Machine-readable report for tools/check_bench.py.
  std::ofstream json(out_path);
  json.precision(6);
  json << "{\n  \"plan_service\": [\n";
  for (const Sample* s : {&cold, &warm}) {
    json << "    {\"mode\": \"" << s->mode << "\", \"requests\": "
         << s->requests << ", \"plans_per_sec\": " << s->plans_per_sec
         << ", \"p50_ms\": " << s->p50_ms << ", \"p99_ms\": " << s->p99_ms
         << ", \"hit_rate\": " << s->hit_rate << "}"
         << (s == &cold ? "," : "") << "\n";
  }
  json << "  ],\n  \"plan_service_warm_speedup\": " << speedup << "\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
