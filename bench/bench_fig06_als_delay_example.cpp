// Fig. 6 — the motivation example: ALS under stock Spark vs with DelayStage
// postponing parallel stages. The paper's hand-tuned delays cut the JCT from
// 133 s to 104 s (27.8%) and raised network/CPU utilization by 31.3%/40.1%.
#include <iostream>

#include "bench_common.h"
#include "workloads/workloads.h"

int main() {
  using namespace ds;
  std::cout << "=== Fig. 6: ALS timeline, stock Spark vs DelayStage ===\n\n";

  const auto dag = workloads::als();
  const auto spec = sim::ClusterSpec::three_node();

  const bench::BenchRun stock = bench::run_workload(dag, spec, "Spark", 42);
  const bench::BenchRun delayed =
      bench::run_workload(dag, spec, "DelayStage", 42);

  bench::print_breakdown(std::cout, "(a) stock Spark", dag, stock.result,
                         stock.plan);
  std::cout << '\n';
  bench::print_breakdown(std::cout, "(b) DelayStage", dag, delayed.result,
                         delayed.plan);

  const double jct_gain =
      100.0 * (stock.result.jct - delayed.result.jct) / stock.result.jct;
  const double net_gain = 100.0 *
                          (delayed.net_summary.mean - stock.net_summary.mean) /
                          std::max(stock.net_summary.mean, 1e-9);
  const double cpu_gain = 100.0 *
                          (delayed.cpu_summary.mean - stock.cpu_summary.mean) /
                          std::max(stock.cpu_summary.mean, 1e-9);
  std::cout << "\nJCT: " << fmt(stock.result.jct, 1) << " s -> "
            << fmt(delayed.result.jct, 1) << " s  (-" << fmt(jct_gain, 1)
            << " %; paper: 133 -> 104 s, -27.8 %)\n"
            << "avg network throughput: +" << fmt(net_gain, 1)
            << " % (paper: +31.3 %)\n"
            << "avg CPU utilization:    +" << fmt(cpu_gain, 1)
            << " % (paper: +40.1 %)\n";
  return 0;
}
