// What-if explorer: sweep a manual delay for one stage of a workload and
// watch the predicted and simulated JCT respond — the "which stage and how
// much time should we delay" question Alg. 1 answers, by hand.
//
//   ./whatif_delay_explorer [workload] [stage#] [max_delay]
//   workload in {cc, lda, cos, tri}; defaults: cos 1 300
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/evaluator.h"
#include "core/profile.h"
#include "engine/job_run.h"
#include "sim/cluster.h"
#include "util/table.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace ds;
  const std::string which = argc > 1 ? argv[1] : "cos";
  const int stage = argc > 2 ? std::atoi(argv[2]) : 1;
  const double max_delay = argc > 3 ? std::atof(argv[3]) : 300.0;

  dag::JobDag job = which == "cc"    ? workloads::connected_components()
                    : which == "lda" ? workloads::lda()
                    : which == "tri" ? workloads::triangle_count()
                                     : workloads::cosine_similarity();
  if (stage < 1 || stage > job.num_stages()) {
    std::cerr << "stage must be 1.." << job.num_stages() << '\n';
    return 1;
  }
  const auto k = static_cast<dag::StageId>(stage - 1);

  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(job, spec);
  const core::ScheduleEvaluator evaluator(profile);

  std::cout << "sweeping delay of " << job.name() << " " << job.stage(k).name
            << " (model vs engine)\n\n";
  TablePrinter t({"delay x_k (s)", "model JCT (s)", "engine JCT (s)"});
  t.set_precision(1);
  for (double x = 0; x <= max_delay + 1e-9; x += max_delay / 10.0) {
    std::vector<Seconds> delays(static_cast<std::size_t>(job.num_stages()), 0.0);
    delays[static_cast<std::size_t>(k)] = x;

    const double model_jct = evaluator.evaluate(delays).jct;

    sim::Simulator sim;
    sim::Cluster cluster(sim, spec, 42);
    engine::RunOptions opt;
    opt.plan.delay = delays;
    opt.seed = 42;
    engine::JobRun run(cluster, job, opt);
    run.start();
    sim.run();

    t.add_row({x, model_jct, run.result().jct});
  }
  t.print(std::cout);
  std::cout << "\n(the minimum of this curve is what Alg. 1 searches for, "
               "jointly over all parallel stages)\n";
  return 0;
}
