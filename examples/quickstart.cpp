// Quickstart: define a DAG job, let DelayStage compute a stage delay
// schedule, and compare stock Spark scheduling against the delayed schedule
// on the simulated cluster.
//
//   ./quickstart
#include <iostream>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "core/stage_delayer.h"
#include "engine/job_run.h"
#include "sim/cluster.h"
#include "util/units.h"

int main() {
  using namespace ds;

  // 1. Describe a job the way DelayStage's profiler sees it: a DAG of
  //    stages with shuffle volumes and processing rates. Three parallel
  //    source stages funnel into a joiner and a sink.
  dag::JobDag job("quickstart");
  dag::Stage s;
  s.num_tasks = 30;
  s.task_skew = 0.2;

  s.name = "extract-a";
  s.input_bytes = 6_GB;
  s.process_rate = 2.5_MBps;
  s.output_bytes = 2_GB;
  const auto a = job.add_stage(s);

  s.name = "extract-b";
  s.input_bytes = 5_GB;
  const auto b = job.add_stage(s);

  s.name = "extract-c";
  s.num_tasks = 40;
  s.input_bytes = 10_GB;
  s.process_rate = 4.0_MBps;
  s.output_bytes = 4_GB;
  const auto c = job.add_stage(s);

  s.name = "join";
  s.num_tasks = 40;
  s.input_bytes = 6_GB;
  s.process_rate = 2.0_MBps;
  s.output_bytes = 1_GB;
  const auto join = job.add_stage(s);

  s.name = "report";
  s.num_tasks = 20;
  s.input_bytes = 3_GB;
  s.process_rate = 3.0_MBps;
  s.output_bytes = 0.1_GB;
  const auto report = job.add_stage(s);

  job.add_edge(c, join);
  job.add_edge(a, report);
  job.add_edge(b, report);
  job.add_edge(join, report);

  // 2. Profile it against the cluster and run Algorithm 1.
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(job, spec);
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile).compute();

  std::cout << "DelayStage schedule (metrics.properties):\n"
            << core::StageDelayer(schedule).to_properties()
            << "predicted makespan " << schedule.predicted_makespan
            << " s, predicted JCT " << schedule.predicted_jct << " s\n\n";

  // 3. Execute on the simulated 30-node cluster, stock vs delayed.
  auto run = [&](const engine::SubmissionPlan& plan) {
    sim::Simulator sim;
    sim::Cluster cluster(sim, spec, /*seed=*/42);
    engine::RunOptions opt;
    opt.plan = plan;
    opt.seed = 42;
    engine::JobRun r(cluster, job, opt);
    r.start();
    sim.run();
    return r.result().jct;
  };

  const double stock = run({});
  const double delayed = run(core::StageDelayer(schedule).plan());
  std::cout << "stock Spark JCT: " << stock << " s\n"
            << "DelayStage JCT:  " << delayed << " s  ("
            << 100.0 * (stock - delayed) / stock << " % faster)\n";
  return 0;
}
