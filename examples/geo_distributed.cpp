// Example: the paper's §6 future-work scenario — the prototype cluster split
// across two datacenters joined by a thin WAN link. Shuffle traffic between
// sites funnels through the WAN, so stage scheduling matters even more.
//
//   ./geo_distributed [wan_mbps]
#include <cstdlib>
#include <iostream>

#include "engine/job_run.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace ds;
  const double wan_mbps = argc > 1 ? std::strtod(argv[1], nullptr) : 500.0;

  sim::ClusterSpec geo = sim::ClusterSpec::geo_two_sites();
  geo.wan_bw = wan_mbps * 1e6 / 8.0;

  std::cout << "30-node prototype cluster split over 2 sites, WAN "
            << wan_mbps << " Mbps\n\n";

  TablePrinter t({"workload", "LAN Spark (s)", "geo Spark (s)",
                  "geo DelayStage (s)", "geo gain %"});
  t.set_precision(1);
  for (const auto& wl : workloads::benchmark_suite()) {
    auto run = [&](const sim::ClusterSpec& spec, const char* strategy) {
      sim::Simulator sim;
      sim::Cluster cluster(sim, spec, 42);
      auto strat = sched::make_strategy(strategy);
      engine::RunOptions opt;
      opt.plan = strat->plan(wl.dag, cluster);
      opt.seed = 42;
      engine::JobRun jr(cluster, wl.dag, opt);
      jr.start();
      sim.run();
      return jr.result().jct;
    };
    const double lan = run(sim::ClusterSpec::paper_prototype(), "Spark");
    const double geo_stock = run(geo, "Spark");
    const double geo_ds = run(geo, "DelayStage");
    t.add_row({wl.name, lan, geo_stock, geo_ds,
               100.0 * (geo_stock - geo_ds) / geo_stock});
  }
  t.print(std::cout);
  std::cout << "\n(the planner profiles the same cluster spec it runs on;\n"
               "cross-site shuffle funnels through the WAN ports)\n";
  return 0;
}
