// Trace analysis: parse an Alibaba batch_task CSV (or fall back to the
// synthetic trace) and print the §2.1 parallel-stage statistics plus a
// small cluster replay comparing Fuxi with DelayStage. Subcommands come
// from the shared registry in cli_flags.h (delaystage_cli uses the same
// one); `trace` is the default, so the historical bare invocation keeps
// working:
//
//   ./trace_analysis [trace] [batch_task.csv]
//                    [--threads N]                    # 0 = hw concurrency
//                    [--seed N]                       # replay seed
//                    [--adaptive]                     # calibrating replay
//                    [--perturb-network F] [--perturb-compute F]
//                    [--trace-out FILE] [--metrics-out FILE]
//                    [--report-out FILE]              # fleet analytics
//
// --trace-out/--metrics-out capture the per-job planner phases and search
// counters of the replay's DelayStage pass (chrome://tracing loadable).
// --report-out writes per-strategy fleet utilization analytics (mean JCT,
// cluster/job utilization, idle fractions, per-job percentiles, planned
// delay budget) plus per-job rows — CSV when the file ends in .csv, JSON
// otherwise.
//
// --adaptive switches the replay to the closed-loop mode: jobs are planned
// on per-workload calibrated profiles, executed through the discrete-event
// engine, and each run's measured phase spans recalibrate the next
// recurrence. --perturb-network/--perturb-compute (planner believes F × the
// truth; 1.0 = accurate) inject model error to watch the calibration
// converge — the drift ablation of EXPERIMENTS.md.
#include <cstring>
#include <iostream>

#include "cli_flags.h"
#include "obs/analytics/report.h"
#include "trace/alibaba.h"
#include "trace/replay.h"
#include "trace/stats.h"
#include "trace/synthetic.h"
#include "util/table.h"

namespace {

int cmd_trace(int argc, char** argv) {
  using namespace ds;
  const cli::CommonFlags cf = cli::parse_common_flags(argc, argv, 7);
  cli::ObsSink sink(cf);
  const bool adaptive = cli::has_flag(argc, argv, "--adaptive");
  const double perturb_network =
      cli::num_flag(argc, argv, "--perturb-network", 1.0);
  const double perturb_compute =
      cli::num_flag(argc, argv, "--perturb-compute", 1.0);
  const char* trace_file = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "trace") == 0 && trace_file == nullptr)
      continue;  // the (optional) subcommand name, not an operand
    if (std::strcmp(argv[i], "--adaptive") == 0) continue;  // valueless
    if (argv[i][0] == '-') {
      ++i;  // every other flag takes a value
      continue;
    }
    trace_file = argv[i];
  }

  std::vector<trace::TraceJob> jobs;
  if (trace_file != nullptr) {
    trace::AlibabaParseStats pstats;
    jobs = trace::parse_batch_task_file(trace_file, &pstats);
    std::cout << "parsed " << pstats.rows << " rows -> " << jobs.size()
              << " usable jobs (" << pstats.dropped_jobs << " dropped, "
              << pstats.bad_rows << " malformed rows)\n\n";
  } else {
    std::cout << "no trace file given; generating a synthetic trace\n\n";
    trace::SyntheticTraceOptions opt;
    opt.num_jobs = 2000;
    opt.seed = 1;  // the generator seed is fixed; --seed varies the replay
    jobs = trace::synthetic_trace(opt);
  }
  if (jobs.empty()) {
    std::cerr << "no jobs to analyse\n";
    return 1;
  }

  const trace::TraceStats st = trace::analyze(jobs);
  std::cout << "jobs:                        " << st.total_jobs << '\n'
            << "stages:                      " << st.total_stages << '\n'
            << "jobs with parallel stages:   "
            << fmt(100.0 * st.parallel_job_fraction(), 1) << " %\n"
            << "parallel stages overall:     "
            << fmt(100.0 * st.parallel_stage_fraction(), 1) << " %\n"
            << "median stages per job:       "
            << fmt(st.stages_per_job.percentile(50), 1) << '\n';
  if (!st.parallel_makespan_share.empty()) {
    std::cout << "mean parallel makespan share: "
              << fmt(st.parallel_makespan_share.mean(), 1) << " %\n";
  }

  // Replay a sample under both schedulers, aggregating fleet analytics
  // (per-job and per-strategy) as we go.
  std::vector<trace::TraceJob> sample(
      jobs.begin(), jobs.begin() + std::min<std::size_t>(jobs.size(), 300));
  obs::analytics::FleetReport fleet;
  fleet.trace = trace_file != nullptr ? trace_file : "synthetic";
  std::vector<std::string> cols = {"strategy", "mean JCT (s)", "CPU util %",
                                   "net util %"};
  if (adaptive) cols.push_back("mean engine JCT (s)");
  TablePrinter t(cols);
  t.set_precision(1);
  for (const char* strategy : {"Fuxi", "DelayStage"}) {
    trace::ReplayOptions opt;
    opt.strategy = strategy;
    opt.cluster.num_workers = 400;
    cf.apply(opt);
    opt.obs = sink.get();
    opt.adaptive = adaptive;
    opt.perturb_network = perturb_network;
    opt.perturb_compute = perturb_compute;
    if (const Status st = trace::validate(opt); !st.is_ok())
      throw std::runtime_error(st.message());
    const trace::ReplayResult r = trace::replay(sample, opt);
    std::vector<TablePrinter::Cell> row = {std::string(strategy),
                                           r.mean_jct(), r.mean_cpu_util(),
                                           r.mean_net_util()};
    if (adaptive) {
      double engine_sum = 0;
      for (const auto& j : r.jobs) engine_sum += j.engine_jct;
      row.push_back(engine_sum / static_cast<double>(r.jobs.size()));
    }
    t.add_row(std::move(row));
    fleet.strategies.push_back(obs::analytics::fleet_strategy_report(
        strategy, r, /*keep_jobs=*/!cf.report_out.empty()));
  }
  std::cout << '\n';
  t.print(std::cout);
  if (!cf.report_out.empty() &&
      obs::analytics::write_report_file(cf.report_out, fleet))
    std::cout << "# fleet analytics report written to " << cf.report_out
              << '\n';
  sink.flush();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    using namespace ds;
    // `trace` is the default command: `./trace_analysis batch_task.csv`
    // (and the bare invocation) behave exactly as before the registry.
    return cli::dispatch(argc, argv, {cli::std_subcommand("trace", cmd_trace)},
                         /*default_cmd=*/"trace");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
