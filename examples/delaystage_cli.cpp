// Command-line front end: plan and simulate jobs described by spec files.
// Subcommands come from the shared registry in cli_flags.h (trace_analysis
// uses the same one), so both CLIs spell flags and help identically.
//
//   ./delaystage_cli plan <job.spec> [--cluster prototype|three_node]
//                                    [--threads N]   # 0 = hardware concurrency
//                                    [--seed N] [--quantile Q]
//   ./delaystage_cli run  <job.spec> [--strategy Spark|AggShuffle|DelayStage|
//                                      CriticalPathFirst] [--seed N]
//                                    [--quantile Q] [--replan]
//                                    [--fail-rate P] [--max-attempts N]
//                                    [--crash NODE@T | --crash NODE@T@DOWN]
//                                    [--crash-rate R --horizon S]
//                                    [--mean-downtime S]
//   ./delaystage_cli report <job.spec> [--cluster ...] [--seed N]
//                                      [--quantile Q]
//                                      [--report-out FILE] [--strict]
//   ./delaystage_cli demo                 # print a sample spec
//   ./delaystage_cli serve [--store FILE] [--cluster ...] [--threads N]
//                          [--batch N] [--cache-shards N] [--cache-capacity N]
//                          [--quantile Q] [--flight-out FILE]
//                          [--telemetry-out FILE] [--telemetry-period S]
//   ./delaystage_cli sched [--jobs N] [--rate R] [--arrival poisson|trace]
//                          [--trace batch_task.csv] [--jobs-in FILE|-]
//                          [--policy fifo|sjf|hard-first] [--no-delay]
//                          [--max-share F] [--min-slots N] [--interference F]
//                          [--delay-budget S] [--store FILE] [--scale F]
//                          [--cluster ...] [--threads N] [--seed N]
//                          [--quantile Q] [--report-out FILE]
//                          [--fail-rate P] [--max-attempts N]
//                          [--flight-out FILE] [--telemetry-out FILE]
//                          [--telemetry-period S] [--slo RULE]...
//
// Daemon mode: `serve` reads newline-delimited JSON plan requests on stdin
// and answers one JSON object per line on stdout (see store/daemon.h for the
// request schema). Responses carry "cache": "hit" | "miss". --store names
// the persistent profile store (loaded at startup, saved at EOF and on
// {"cmd":"save"}); --batch bounds how many requests are planned concurrently
// per dispatch round.
//
// Scheduler mode: `sched` runs the online multi-job service (ds::Scheduler)
// — a stream of jobs on ONE shared simulated cluster. By default --jobs N
// arrivals are drawn from a Poisson process at --rate jobs/s over the
// benchmark-suite workloads (--scale sizes their datasets); --arrival trace
// replays the inter-arrival gaps and DAGs of an Alibaba batch_task CSV
// (--rate then rescales the gaps, preserving burstiness); --jobs-in reads
// NDJSON submissions (see service/ndjson.h for the v1 schema; `-` = stdin).
// Each finished job prints one NDJSON line on stdout; the fleet summary
// (wait, slowdown, p99 JCT, cache hit rate) goes to stderr, and
// --report-out writes it as JSON. --no-delay disables DelayStage planning
// (the ablation baseline); --policy picks the cross-job ordering.
//
// Adaptive planning: --quantile Q (0 < Q < 1) makes the planner target the
// Q-th quantile of each stage's straggler distribution instead of the
// legacy mean-ish estimate (0 = off, the bit-exact legacy model). --replan
// (run, DelayStage strategies only) arms mid-job replanning: on model drift
// or a node crash the remaining stages' delays are recomputed against the
// live cluster (see engine/replan.h for the policy bounds).
//
// Observability (all commands): --trace-out FILE writes a Chrome
// trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev);
// --metrics-out FILE dumps the metrics registry as JSON; --prom-out FILE
// writes the same registry as a Prometheus text exposition. `plan` traces
// the planner's wall-clock phases plus the predicted stage timeline; `run`
// traces the simulated stage/task lifecycle per worker slot and the
// cluster-utilization counters.
//
// Live observability (sched, serve): --flight-out FILE arms the always-on
// flight recorder — a bounded ring of structured scheduler lifecycle events
// (submit/admit/grant/plan/run/replan/release/finish + queue depth, ledger
// occupancy, cache verdicts, chosen delays) dumped as versioned NDJSON at
// exit and automatically on job failure or invariant violation.
// --telemetry-out FILE streams periodic metric snapshots (NDJSON, one
// registry snapshot per line) every --telemetry-period seconds — simulated
// time for sched (and therefore bit-identical across --threads), wall time
// for serve. --slo p<Q>_<jct|slowdown|queue_wait|plan_latency><=X
// (repeatable, sched only) arms online DDSketch-style quantile tracking per
// priority class; each ok→violated transition emits a structured
// slo_violation flight event. A {"cmd": "stats"} line in --jobs-in answers
// with one live {"ev": "stats"} state line (see service/ndjson.h).
//
// Analytics: `report` plans with the DelayStage calculator, executes the
// schedule, and prints per-stage predicted-vs-actual residuals for the three
// model terms plus per-resource idle/overlap fractions (--strict exits
// nonzero on drift warnings). `run --report-out FILE` attaches the same
// report to any strategy's run; .csv extension selects CSV, else JSON.
//
// Fault flags: --fail-rate (run, sched) aborts each task attempt with
// probability P — a job whose stage exhausts --max-attempts fails, which in
// sched also triggers a flight-recorder auto-dump;
// --crash schedules a worker crash at time T (rejoining after DOWN seconds,
// or staying down); --crash-rate draws Poisson crashes per worker over
// [0, --horizon) with exponential downtimes of mean --mean-downtime
// (negative = crashed workers never return).
//
// Spec format (see dag/serialize.h):
//   job,my-etl
//   stage,<name>,<tasks>,<input_gb>,<rate_mbps>,<output_gb>,<skew>
//   edge,<parent_index>,<child_index>
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "core/adaptive.h"
#include "core/delay_calculator.h"
#include "core/evaluator.h"
#include "core/profile.h"
#include "core/stage_delayer.h"
#include "dag/serialize.h"
#include "engine/job_run.h"
#include "metrics/sampler.h"
#include "obs/analytics/analytics.h"
#include "obs/analytics/report.h"
#include "sched/strategy.h"
#include "service/arrivals.h"
#include "service/ndjson.h"
#include "service/scheduler.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "store/daemon.h"
#include "trace/alibaba.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

constexpr const char* kDemoSpec =
    "job,demo-etl\n"
    "stage,extract-a,30,6.0,2.5,2.0,0.2\n"
    "stage,extract-b,30,5.0,2.5,1.5,0.2\n"
    "stage,transform,40,10.0,4.0,4.0,0.2\n"
    "stage,join,40,4.0,2.0,1.0,0.2\n"
    "stage,report,20,4.5,3.0,0.1,0.2\n"
    "edge,2,3\n"
    "edge,0,4\n"
    "edge,1,4\n"
    "edge,3,4\n";

ds::sim::ClusterSpec cluster_for(const std::string& name) {
  if (name == "three_node") return ds::sim::ClusterSpec::three_node();
  return ds::sim::ClusterSpec::paper_prototype();
}

// "NODE@T" or "NODE@T@DOWNTIME" → a scheduled crash.
ds::sim::NodeCrash parse_crash(const std::string& s) {
  ds::sim::NodeCrash c;
  const auto first = s.find('@');
  if (first == std::string::npos)
    throw std::runtime_error("--crash wants NODE@TIME[@DOWNTIME]: " + s);
  c.node = std::atoi(s.substr(0, first).c_str());
  const auto second = s.find('@', first + 1);
  if (second == std::string::npos) {
    c.at = std::atof(s.substr(first + 1).c_str());
  } else {
    c.at = std::atof(s.substr(first + 1, second - first - 1).c_str());
    c.downtime = std::atof(s.substr(second + 1).c_str());
  }
  return c;
}

// The schedule the planner predicts, rendered onto the trace's stage track
// so plan-time and run-time timelines line up in the same viewer. Consumes
// the timeline the calculator already exported — no re-evaluation.
void trace_predicted_timeline(ds::obs::Tracer* tr,
                              const ds::dag::JobDag& job,
                              const ds::core::DelaySchedule& schedule) {
  using namespace ds;
  if (tr == nullptr) return;
  tr->set_process_name(obs::kJobPid, "predicted stages");
  for (dag::StageId s = 0; s < job.num_stages(); ++s) {
    const auto& t = schedule.predicted_stages[static_cast<std::size_t>(s)];
    const char* name = tr->intern(job.stage(s).name);
    tr->set_thread_name(obs::kJobPid, s, name);
    if (t.submitted > t.ready)
      tr->complete("predicted", "delay", t.ready, t.submitted - t.ready,
                   obs::kJobPid, s, "delay_s", t.submitted - t.ready);
    tr->complete("predicted", "fetch", t.submitted, t.read_done - t.submitted,
                 obs::kJobPid, s);
    tr->complete("predicted", "compute", t.read_done,
                 t.compute_done - t.read_done, obs::kJobPid, s);
    tr->complete("predicted", "write", t.compute_done,
                 t.finish - t.compute_done, obs::kJobPid, s);
  }
}

int cmd_plan(const ds::dag::JobDag& job, const ds::sim::ClusterSpec& spec,
             const ds::cli::CommonFlags& cf, ds::cli::ObsSink& sink) {
  using namespace ds;
  const core::JobProfile profile = core::JobProfile::from(job, spec);
  core::CalculatorOptions copt;
  cf.apply(copt);
  copt.obs = sink.get();
  copt.model.quantile = cf.quantile;
  if (const Status st = core::validate(copt); !st.is_ok())
    throw std::runtime_error(st.message());
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, copt).compute();
  trace_predicted_timeline(obs::tracer(sink.get()), job, schedule);

  std::cout << "# execution paths (descending solo time)\n";
  for (const auto& p : schedule.paths) {
    std::cout << "#  ";
    for (dag::StageId s : p.stages) std::cout << job.stage(s).name << ' ';
    std::cout << '\n';
  }
  std::cout << core::StageDelayer(schedule).to_properties();
  std::cout << "# predicted makespan " << schedule.predicted_makespan
            << " s, predicted JCT " << schedule.predicted_jct << " s\n";
  return 0;
}

void print_drift(const ds::obs::analytics::DriftReport& d) {
  using namespace ds;
  std::cout << "# model drift (predicted vs executed, per Eq. 1 term)\n";
  TablePrinter t({"stage", "term", "predicted s", "actual s", "residual s",
                  "rel err %"});
  t.set_precision(2);
  for (const auto& s : d.stages) {
    const struct {
      const char* name;
      const obs::analytics::TermDrift* td;
    } terms[] = {{"network", &s.network},
                 {"compute", &s.compute},
                 {"write", &s.write},
                 {"duration", &s.duration}};
    for (const auto& [tname, td] : terms) {
      t.add_row({s.name, tname, td->predicted, td->actual, td->residual(),
                 100.0 * td->rel_error});
    }
  }
  t.print(std::cout);
  const struct {
    const char* name;
    const obs::analytics::DriftSummary* ds_;
  } sums[] = {{"network", &d.network},
              {"compute", &d.compute},
              {"write", &d.write},
              {"duration", &d.duration}};
  for (const auto& [name, s] : sums) {
    std::cout << "# " << name << " |rel err|: mean " << fmt(100.0 * s->mean, 1)
              << " %, p50 " << fmt(100.0 * s->p50, 1) << " %, p90 "
              << fmt(100.0 * s->p90, 1) << " %, max " << fmt(100.0 * s->max, 1)
              << " %\n";
  }
  for (const auto& w : d.warnings) std::cout << "WARNING: " << w << '\n';
}

void print_interleaving(const ds::obs::analytics::InterleavingReport& rep) {
  using namespace ds;
  std::cout << "# resource interleaving over " << fmt(rep.horizon, 1)
            << " s (busy fractions of the horizon)\n";
  TablePrinter t({"worker", "net busy %", "cpu busy %", "disk busy %",
                  "net idle %", "cpu idle %", "overlap %", "score %"});
  t.set_precision(1);
  auto row = [&](const std::string& label,
                 const obs::analytics::WorkerInterleaving& w) {
    t.add_row({label, 100.0 * w.network.busy_fraction,
               100.0 * w.cpu.busy_fraction, 100.0 * w.disk.busy_fraction,
               100.0 * w.network.idle_fraction, 100.0 * w.cpu.idle_fraction,
               100.0 * w.overlap_fraction, 100.0 * w.interleaving_score});
  };
  for (const auto& w : rep.workers)
    row("node " + std::to_string(w.pid - obs::kNodePidBase), w);
  row("cluster", rep.cluster);
  t.print(std::cout);
}

int cmd_run(const ds::dag::JobDag& job, const ds::sim::ClusterSpec& spec,
            const std::string& strategy_name, std::uint64_t seed,
            const ds::engine::RunOptions& base_opt, double quantile,
            bool replan, const ds::sim::FaultPlan& faults,
            const std::string& report_out, ds::cli::ObsSink& sink) {
  using namespace ds;
  const bool delaystage =
      strategy_name.find("DelayStage") != std::string::npos;
  if ((replan || quantile > 0) && !delaystage)
    throw std::runtime_error(
        "--replan/--quantile tune the DelayStage planner; strategy '" +
        strategy_name + "' does not plan delays (pick a DelayStage variant)");
  sim::Simulator sim(sink.get());
  sim::Cluster cluster(sim, spec, seed, sink.get());
  engine::RunOptions opt = base_opt;
  opt.seed = seed;
  opt.obs = sink.get();
  std::unique_ptr<core::AdaptivePlanner> adaptive;
  core::JobProfile measured;
  if (replan || quantile > 0) {
    // Plan through the adaptive stack: quantile-aware model (co-optimized
    // with the run's speculation policy) and, with --replan, a live
    // replanner bound to this run.
    measured = core::JobProfile::from_measured(job, cluster);
    core::AdaptiveOptions aopt;
    aopt.calculator.seed = seed;
    aopt.calculator.obs = sink.get();
    aopt.calculator.model.quantile = quantile;
    aopt.calculator = sched::co_optimized(aopt.calculator, opt);
    aopt.replan.enabled = replan;
    if (const Status st = core::validate(aopt.calculator); !st.is_ok())
      throw std::runtime_error(st.message());
    adaptive = std::make_unique<core::AdaptivePlanner>(measured, aopt);
    adaptive->plan();
    adaptive->arm(opt);
  } else {
    auto strategy = sched::make_strategy(strategy_name);
    opt.plan = strategy->plan(job, cluster);
  }
  sim::FaultInjector injector(cluster, faults, seed);
  if (!faults.empty()) opt.faults = &injector;
  engine::JobRun run(cluster, job, opt);
  obs::Tracer* const tr = obs::tracer(sink.get());
  metrics::UtilizationSampler sampler(cluster, 1.0);
  if (tr != nullptr) sampler.start();
  if (!faults.empty()) injector.start();
  run.start();
  while (!run.finished() && sim.step()) {
  }
  if (tr != nullptr) {
    sampler.stop();
    const auto& cpu = sampler.cluster_cpu_util();
    const auto& net = sampler.cluster_net_rx();
    for (std::size_t i = 0; i < cpu.size(); ++i)
      tr->counter("util", "cluster_cpu_pct", cpu.time(i), obs::kJobPid,
                  cpu.value(i));
    for (std::size_t i = 0; i < net.size(); ++i)
      tr->counter("util", "cluster_net_mbps", net.time(i), obs::kJobPid,
                  net.value(i));
  }

  if (!run.finished()) {
    std::cout << strategy_name
              << ": job stranded (every worker crashed for good)\n";
    return 1;
  }
  const auto& r = run.result();
  const bool any_faults = !faults.empty() || opt.task_failure_rate > 0;
  std::vector<std::string> cols = {"stage", "delay", "submitted", "read done",
                                   "finish"};
  if (any_faults) {
    cols.push_back("resubmits");
    cols.push_back("rerun");
    cols.push_back("wasted s");
  }
  TablePrinter t(cols);
  t.set_precision(1);
  for (dag::StageId s = 0; s < job.num_stages(); ++s) {
    const auto& sr = r.stages[static_cast<std::size_t>(s)];
    std::vector<TablePrinter::Cell> row = {job.stage(s).name,
                                           opt.plan.delay_for(s), sr.submitted,
                                           sr.last_read_done, sr.finish};
    if (any_faults) {
      row.push_back(static_cast<std::int64_t>(sr.resubmissions));
      row.push_back(static_cast<std::int64_t>(sr.tasks_rerun));
      row.push_back(sr.wasted_seconds);
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (r.failed) {
    std::cout << strategy_name << " job FAILED at " << fmt(r.failed_at, 1)
              << " s: " << r.failure_reason << '\n';
    return 1;
  }
  std::cout << strategy_name << " JCT: " << fmt(r.jct, 1) << " s\n";
  if (opt.replan.enabled)
    std::cout << "replans applied: " << r.replans << '\n';
  if (any_faults) {
    std::cout << "faults: " << r.node_crashes << " node crash(es), "
              << r.fetch_failures << " fetch failure(s), " << r.resubmissions()
              << " stage resubmission(s), " << r.tasks_rerun()
              << " task(s) rerun, " << fmt(r.wasted_seconds(), 1)
              << " s wasted\n";
  }
  if (!report_out.empty() && tr != nullptr) {
    // Predicted timeline for whatever delays the strategy chose, from the
    // same analytical model the planner scans (profile-from-spec, default
    // slot width).
    const core::JobProfile profile = core::JobProfile::from(job, spec);
    const core::Evaluation ev =
        core::ScheduleEvaluator(profile, core::CalculatorOptions{}.slot)
            .evaluate(opt.plan.delay);
    obs::analytics::JobReport rep;
    rep.job = job.name();
    rep.strategy = strategy_name;
    rep.jct_s = r.jct;
    rep.predicted_makespan_s = ev.parallel_end;
    rep.drift = obs::analytics::model_drift(ev.stages, opt.plan.delay, job, r);
    rep.interleaving = obs::analytics::interleaving(*tr, r.jct);
    if (obs::analytics::write_report_file(report_out, rep))
      std::cout << "# analytics report written to " << report_out << '\n';
  }
  return 0;
}

// Plan with the DelayStage calculator, execute the schedule on the engine,
// and report model drift plus interleaving efficiency — the paper's model
// validation (Figs. 9-11) and overlap studies (Figs. 5/12) for one job.
int cmd_report(const ds::dag::JobDag& job, const ds::sim::ClusterSpec& spec,
               const ds::cli::CommonFlags& cf, const std::string& report_out,
               bool strict, ds::cli::ObsSink& sink) {
  using namespace ds;
  const core::JobProfile profile = core::JobProfile::from(job, spec);
  core::CalculatorOptions copt;
  cf.apply(copt);
  copt.obs = sink.get();
  copt.model.quantile = cf.quantile;
  if (const Status st = core::validate(copt); !st.is_ok())
    throw std::runtime_error(st.message());
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, copt).compute();
  trace_predicted_timeline(obs::tracer(sink.get()), job, schedule);

  sim::Simulator sim(sink.get());
  sim::Cluster cluster(sim, spec, cf.seed, sink.get());
  engine::RunOptions opt;
  opt.plan = core::StageDelayer(schedule).plan();
  opt.seed = cf.seed;
  opt.obs = sink.get();
  engine::JobRun run(cluster, job, opt);
  run.start();
  while (!run.finished() && sim.step()) {
  }
  const auto& r = run.result();
  if (!r.complete()) {
    std::cerr << "report: job did not complete\n";
    return 1;
  }

  obs::analytics::JobReport rep;
  rep.job = job.name();
  rep.strategy = "DelayStage";
  rep.jct_s = r.jct;
  rep.predicted_makespan_s = schedule.predicted_makespan;
  rep.drift = obs::analytics::model_drift(schedule.predicted_stages,
                                          schedule.delay, job, r);
  rep.interleaving =
      obs::analytics::interleaving(*obs::tracer(sink.get()), r.jct);

  std::cout << "# predicted makespan " << fmt(schedule.predicted_makespan, 1)
            << " s, executed JCT " << fmt(r.jct, 1) << " s\n";
  print_drift(rep.drift);
  print_interleaving(rep.interleaving);
  if (!report_out.empty() &&
      obs::analytics::write_report_file(report_out, rep))
    std::cout << "# analytics report written to " << report_out << '\n';
  // --strict turns drift warnings into a nonzero exit (a model-decay gate).
  return strict && !rep.drift.within_bounds() ? 3 : 0;
}

// Plan-as-a-service: NDJSON requests on stdin, responses on stdout, status
// chatter on stderr (so piped clients see clean JSON).
int cmd_serve(int argc, char** argv, const ds::sim::ClusterSpec& spec,
              const ds::cli::CommonFlags& cf, ds::cli::ObsSink& sink) {
  using namespace ds;
  store::DaemonOptions dopt;
  dopt.cluster = spec;
  dopt.threads = cf.threads;
  dopt.batch =
      static_cast<std::size_t>(cli::int_flag(argc, argv, "--batch", 32));
  dopt.service.store_path = cli::flag(argc, argv, "--store", "");
  dopt.service.cache.shards =
      static_cast<std::size_t>(cli::int_flag(argc, argv, "--cache-shards", 16));
  dopt.service.cache.capacity_per_shard = static_cast<std::size_t>(
      cli::int_flag(argc, argv, "--cache-capacity", 64));
  cf.apply(dopt.service.calculator);
  dopt.service.calculator.obs = sink.get();
  dopt.service.calculator.model.quantile = cf.quantile;
  dopt.telemetry = sink.telemetry();
  dopt.telemetry_period = cf.telemetry_period;
  if (const Status st = core::validate(dopt.service.calculator); !st.is_ok())
    throw std::runtime_error(st.message());

  store::PlanDaemon daemon(dopt, sink.get());
  if (!dopt.service.store_path.empty() && !daemon.service().load_info().missing)
    std::cerr << "# profile store: " << daemon.service().load_info().records
              << " workload(s) loaded from " << dopt.service.store_path << '\n';
  const store::DaemonStats st = daemon.serve(std::cin, std::cout);
  if (const Status s = daemon.service().save(); !s.is_ok())
    std::cerr << "warning: " << s.message() << '\n';
  const store::PlanCache& cache = daemon.service().cache();
  std::cerr << "# served " << st.requests << " request(s): " << st.plans
            << " ok, " << st.errors << " error(s); cache " << cache.hits()
            << " hit(s) / " << cache.misses() << " miss(es), "
            << cache.evictions() << " eviction(s)\n";
  return 0;
}

// Online multi-job scheduling: build the arrival stream (Poisson over the
// benchmark suite, trace-driven from an Alibaba CSV, or explicit NDJSON
// submissions), feed it through ds::Scheduler, drain, and report one NDJSON
// row per job (stdout) plus fleet queueing metrics (stderr / --report-out).
int cmd_sched(int argc, char** argv, const ds::sim::ClusterSpec& spec,
              const ds::cli::CommonFlags& cf, ds::cli::ObsSink& sink) {
  using namespace ds;
  SchedulerOptions opt;
  opt.cluster = spec;
  cf.apply(opt);
  opt.obs = sink.get();
  opt.plan.calculator.model.quantile = cf.quantile;
  if (const Status st = service::parse_order_policy(
          cli::flag(argc, argv, "--policy", "fifo"), &opt.policy);
      !st.is_ok())
    throw std::runtime_error(st.message());
  opt.plan_delays = !cli::has_flag(argc, argv, "--no-delay");
  opt.plan.store_path = cli::flag(argc, argv, "--store", "");
  opt.max_share = cli::num_flag(argc, argv, "--max-share", opt.max_share);
  opt.min_slots_per_job = static_cast<int>(
      cli::int_flag(argc, argv, "--min-slots", opt.min_slots_per_job));
  opt.interference =
      cli::num_flag(argc, argv, "--interference", opt.interference);
  opt.delay_budget =
      cli::num_flag(argc, argv, "--delay-budget", opt.delay_budget);
  opt.task_failure_rate = cli::num_flag(argc, argv, "--fail-rate", 0);
  opt.max_attempts =
      static_cast<int>(cli::int_flag(argc, argv, "--max-attempts", 4));
  for (const std::string& spec_text : cf.slo) {
    obs::SloRule rule;
    if (const Status st = obs::parse_slo_rule(spec_text, &rule); !st.is_ok())
      throw std::runtime_error(st.message());
    opt.slo.push_back(rule);
  }
  opt.telemetry = sink.telemetry();
  opt.telemetry_period = cf.telemetry_period;
  if (const Status st = validate(opt); !st.is_ok())
    throw std::runtime_error(st.message());
  Scheduler sched(opt);

  const std::string jobs_in = cli::flag(argc, argv, "--jobs-in", "");
  const std::string arrival = cli::flag(argc, argv, "--arrival", "poisson");
  const std::string trace_file = cli::flag(argc, argv, "--trace", "");
  const auto n =
      static_cast<std::size_t>(cli::int_flag(argc, argv, "--jobs", 20));
  const double rate = cli::num_flag(argc, argv, "--rate", 0.02);
  if (rate <= 0) throw std::runtime_error("--rate must be > 0");

  if (!jobs_in.empty()) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (jobs_in != "-") {
      file.open(jobs_in);
      if (!file) throw std::runtime_error("cannot read " + jobs_in);
      in = &file;
    }
    std::string line;
    Seconds prev = 0;  // absent arrivals ride with the previous job's
    while (std::getline(*in, line)) {
      if (line.empty()) continue;
      service::SchedRequest req;
      if (const Status st = service::parse_sched_request(line, &req);
          !st.is_ok())
        throw std::runtime_error(st.message());
      if (req.kind == service::SchedRequest::Kind::kStats) {
        // Answer in stream order: advance past the preceding submissions'
        // arrival time, then emit one live state line.
        sched.run_until(prev);
        sched.write_stats(std::cout);
        continue;
      }
      prev = req.arrival >= 0 ? req.arrival : prev;
      sched.submit_at(prev, req.dag, req.priority);
    }
  } else if (arrival == "trace" || !trace_file.empty()) {
    if (trace_file.empty())
      throw std::runtime_error("--arrival trace needs --trace batch_task.csv");
    const auto tjobs = trace::parse_batch_task_file(trace_file);
    if (tjobs.empty())
      throw std::runtime_error("no usable jobs in " + trace_file);
    const std::size_t count = std::min(n, tjobs.size());
    auto arrivals = service::trace_arrivals(tjobs, count);
    if (cli::has_flag(argc, argv, "--rate"))
      service::rescale_to_rate(arrivals, rate);
    for (std::size_t i = 0; i < count; ++i)
      sched.submit_at(arrivals[i], trace::to_job_dag(tjobs[i]));
  } else if (arrival == "poisson") {
    const double scale = cli::num_flag(argc, argv, "--scale", 1.0);
    const auto suite = workloads::benchmark_suite(scale);
    const auto arrivals = service::poisson_arrivals(n, rate, cf.seed);
    for (std::size_t i = 0; i < n; ++i)
      sched.submit_at(arrivals[i], suite[i % suite.size()].dag);
  } else {
    throw std::runtime_error("--arrival wants poisson|trace, got '" +
                             arrival + "'");
  }

  sched.drain();

  const FleetStats fs = sched.fleet();
  for (service::JobId id = 1; id <= fs.submitted; ++id)
    service::write_job_status(std::cout, sched.poll(id));
  std::cerr << "# " << fs.finished << "/" << fs.submitted
            << " job(s) finished (" << fs.failed << " failed), policy "
            << service::to_string(opt.policy)
            << (opt.plan_delays ? "" : ", delays off") << '\n'
            << "# makespan " << fmt(fs.makespan, 1) << " s, wait mean "
            << fmt(fs.mean_wait, 1) << " s / max " << fmt(fs.max_wait, 1)
            << " s, JCT mean " << fmt(fs.mean_jct, 1) << " s / p99 "
            << fmt(fs.p99_jct, 1) << " s\n"
            << "# slowdown mean " << fmt(fs.mean_slowdown, 2) << " / p99 "
            << fmt(fs.p99_slowdown, 2) << ", peak slot occupancy "
            << fmt(100.0 * fs.peak_slot_occupancy, 1) << " %, plan cache hit "
            << fmt(100.0 * fs.plan_cache_hit_rate, 1) << " %\n";
  if (!cf.report_out.empty()) {
    std::ofstream out(cf.report_out);
    if (!out) throw std::runtime_error("cannot write " + cf.report_out);
    out << "{\n  \"v\": 1,\n  \"policy\": \""
        << service::to_string(opt.policy) << "\",\n  \"plan_delays\": "
        << (opt.plan_delays ? "true" : "false") << ",\n  \"submitted\": "
        << fs.submitted << ",\n  \"finished\": " << fs.finished
        << ",\n  \"failed\": " << fs.failed << ",\n  \"makespan_s\": "
        << fs.makespan << ",\n  \"mean_wait_s\": " << fs.mean_wait
        << ",\n  \"max_wait_s\": " << fs.max_wait << ",\n  \"mean_jct_s\": "
        << fs.mean_jct << ",\n  \"p99_jct_s\": " << fs.p99_jct
        << ",\n  \"mean_slowdown\": " << fs.mean_slowdown
        << ",\n  \"p99_slowdown\": " << fs.p99_slowdown
        << ",\n  \"peak_slot_occupancy\": " << fs.peak_slot_occupancy
        << ",\n  \"plan_cache_hit_rate\": " << fs.plan_cache_hit_rate
        << ",\n  \"mean_planned_delay_s\": " << fs.mean_planned_delay
        << "\n}\n";
    if (!out) throw std::runtime_error("failed writing " + cf.report_out);
    std::cerr << "# fleet report written to " << cf.report_out << '\n';
  }
  return fs.failed == 0 ? 0 : 1;
}

// ---- subcommand entry points (shared registry in cli_flags.h) ----------

ds::dag::JobDag job_operand(int argc, char** argv) {
  return argc > 2 && argv[2][0] != '-'
             ? ds::dag::load_job_spec_file(argv[2])
             : ds::dag::load_job_spec_text(kDemoSpec);
}

int sub_demo(int, char**) {
  std::cout << kDemoSpec;
  return 0;
}

int sub_plan(int argc, char** argv) {
  using namespace ds;
  const auto spec =
      cluster_for(cli::flag(argc, argv, "--cluster", "prototype"));
  const cli::CommonFlags cf = cli::parse_common_flags(argc, argv);
  cli::ObsSink sink(cf);
  const int rc = cmd_plan(job_operand(argc, argv), spec, cf, sink);
  sink.flush();
  return rc;
}

int sub_run(int argc, char** argv) {
  using namespace ds;
  const auto spec =
      cluster_for(cli::flag(argc, argv, "--cluster", "prototype"));
  const cli::CommonFlags cf = cli::parse_common_flags(argc, argv);
  // `run --report-out` derives its analytics from engine spans, so it needs
  // a live tracer even without --trace-out.
  cli::ObsSink sink(cf, /*force_trace=*/!cf.report_out.empty());
  const std::string strategy =
      cli::flag(argc, argv, "--strategy", "DelayStage");
  engine::RunOptions opt;
  opt.task_failure_rate = cli::num_flag(argc, argv, "--fail-rate", 0);
  opt.max_attempts =
      static_cast<int>(cli::int_flag(argc, argv, "--max-attempts", 4));
  sim::FaultPlan faults;
  for (const auto& c : cli::flags(argc, argv, "--crash"))
    faults.crashes.push_back(parse_crash(c));
  faults.crash_rate = cli::num_flag(argc, argv, "--crash-rate", 0);
  faults.crash_horizon = cli::num_flag(argc, argv, "--horizon", 0);
  faults.mean_downtime = cli::num_flag(argc, argv, "--mean-downtime", -1);
  const int rc = cmd_run(job_operand(argc, argv), spec, strategy, cf.seed,
                         opt, cf.quantile,
                         cli::has_flag(argc, argv, "--replan"), faults,
                         cf.report_out, sink);
  sink.flush();
  return rc;
}

int sub_report(int argc, char** argv) {
  using namespace ds;
  const auto spec =
      cluster_for(cli::flag(argc, argv, "--cluster", "prototype"));
  const cli::CommonFlags cf = cli::parse_common_flags(argc, argv);
  cli::ObsSink sink(cf, /*force_trace=*/true);  // analytics need spans
  const int rc = cmd_report(job_operand(argc, argv), spec, cf, cf.report_out,
                            cli::has_flag(argc, argv, "--strict"), sink);
  sink.flush();
  return rc;
}

int sub_serve(int argc, char** argv) {
  using namespace ds;
  // Daemon mode takes no job spec: jobs arrive inside the requests.
  const auto spec =
      cluster_for(cli::flag(argc, argv, "--cluster", "prototype"));
  const cli::CommonFlags cf = cli::parse_common_flags(argc, argv);
  cli::ObsSink sink(cf);
  const int rc = cmd_serve(argc, argv, spec, cf, sink);
  sink.flush();
  return rc;
}

int sub_sched(int argc, char** argv) {
  using namespace ds;
  const auto spec =
      cluster_for(cli::flag(argc, argv, "--cluster", "prototype"));
  const cli::CommonFlags cf = cli::parse_common_flags(argc, argv);
  // sched telemetry is part of the determinism contract (bit-identical for
  // any --threads), so wall-clock metrics (planner wall latency, tracer
  // drop counters) are excluded from the stream.
  obs::TelemetryOptions topt;
  topt.exclude_prefixes = {"planner.", "tracer."};
  cli::ObsSink sink(cf, /*force_trace=*/false, std::move(topt));
  const int rc = cmd_sched(argc, argv, spec, cf, sink);
  sink.flush();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    using namespace ds;
    return cli::dispatch(argc, argv,
                         {cli::std_subcommand("plan", sub_plan),
                          cli::std_subcommand("run", sub_run),
                          cli::std_subcommand("report", sub_report),
                          cli::std_subcommand("serve", sub_serve),
                          cli::std_subcommand("sched", sub_sched),
                          cli::std_subcommand("demo", sub_demo)});
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
