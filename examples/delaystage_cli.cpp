// Command-line front end: plan and simulate a job described by a spec file.
//
//   ./delaystage_cli plan <job.spec> [--cluster prototype|three_node]
//                                    [--threads N]   # 0 = hardware concurrency
//   ./delaystage_cli run  <job.spec> [--strategy Spark|AggShuffle|DelayStage|
//                                      CriticalPathFirst] [--seed N]
//                                    [--fail-rate P] [--max-attempts N]
//                                    [--crash NODE@T | --crash NODE@T@DOWN]
//                                    [--crash-rate R --horizon S]
//                                    [--mean-downtime S]
//   ./delaystage_cli demo                 # print a sample spec
//
// Fault flags: --fail-rate aborts each task attempt with probability P;
// --crash schedules a worker crash at time T (rejoining after DOWN seconds,
// or staying down); --crash-rate draws Poisson crashes per worker over
// [0, --horizon) with exponential downtimes of mean --mean-downtime
// (negative = crashed workers never return).
//
// Spec format (see dag/serialize.h):
//   job,my-etl
//   stage,<name>,<tasks>,<input_gb>,<rate_mbps>,<output_gb>,<skew>
//   edge,<parent_index>,<child_index>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "core/stage_delayer.h"
#include "dag/serialize.h"
#include "engine/job_run.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "util/table.h"

namespace {

constexpr const char* kDemoSpec =
    "job,demo-etl\n"
    "stage,extract-a,30,6.0,2.5,2.0,0.2\n"
    "stage,extract-b,30,5.0,2.5,1.5,0.2\n"
    "stage,transform,40,10.0,4.0,4.0,0.2\n"
    "stage,join,40,4.0,2.0,1.0,0.2\n"
    "stage,report,20,4.5,3.0,0.1,0.2\n"
    "edge,2,3\n"
    "edge,0,4\n"
    "edge,1,4\n"
    "edge,3,4\n";

ds::sim::ClusterSpec cluster_for(const std::string& name) {
  if (name == "three_node") return ds::sim::ClusterSpec::three_node();
  return ds::sim::ClusterSpec::paper_prototype();
}

std::string flag(int argc, char** argv, const std::string& name,
                 const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i)
    if (name == argv[i]) return argv[i + 1];
  return fallback;
}

// Every occurrence of a repeatable flag, in order.
std::vector<std::string> flags(int argc, char** argv, const std::string& name) {
  std::vector<std::string> out;
  for (int i = 0; i + 1 < argc; ++i)
    if (name == argv[i]) out.push_back(argv[i + 1]);
  return out;
}

// "NODE@T" or "NODE@T@DOWNTIME" → a scheduled crash.
ds::sim::NodeCrash parse_crash(const std::string& s) {
  ds::sim::NodeCrash c;
  const auto first = s.find('@');
  if (first == std::string::npos)
    throw std::runtime_error("--crash wants NODE@TIME[@DOWNTIME]: " + s);
  c.node = std::atoi(s.substr(0, first).c_str());
  const auto second = s.find('@', first + 1);
  if (second == std::string::npos) {
    c.at = std::atof(s.substr(first + 1).c_str());
  } else {
    c.at = std::atof(s.substr(first + 1, second - first - 1).c_str());
    c.downtime = std::atof(s.substr(second + 1).c_str());
  }
  return c;
}

int cmd_plan(const ds::dag::JobDag& job, const ds::sim::ClusterSpec& spec,
             int threads) {
  using namespace ds;
  const core::JobProfile profile = core::JobProfile::from(job, spec);
  core::CalculatorOptions copt;
  copt.threads = threads;
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, copt).compute();

  std::cout << "# execution paths (descending solo time)\n";
  for (const auto& p : schedule.paths) {
    std::cout << "#  ";
    for (dag::StageId s : p.stages) std::cout << job.stage(s).name << ' ';
    std::cout << '\n';
  }
  std::cout << core::StageDelayer(schedule).to_properties();
  std::cout << "# predicted makespan " << schedule.predicted_makespan
            << " s, predicted JCT " << schedule.predicted_jct << " s\n";
  return 0;
}

int cmd_run(const ds::dag::JobDag& job, const ds::sim::ClusterSpec& spec,
            const std::string& strategy_name, std::uint64_t seed,
            const ds::engine::RunOptions& base_opt,
            const ds::sim::FaultPlan& faults) {
  using namespace ds;
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);
  auto strategy = sched::make_strategy(strategy_name);
  engine::RunOptions opt = base_opt;
  opt.plan = strategy->plan(job, cluster);
  opt.seed = seed;
  sim::FaultInjector injector(cluster, faults, seed);
  if (!faults.empty()) opt.faults = &injector;
  engine::JobRun run(cluster, job, opt);
  if (!faults.empty()) injector.start();
  run.start();
  while (!run.finished() && sim.step()) {
  }

  if (!run.finished()) {
    std::cout << strategy_name
              << ": job stranded (every worker crashed for good)\n";
    return 1;
  }
  const auto& r = run.result();
  const bool any_faults = !faults.empty() || opt.task_failure_rate > 0;
  std::vector<std::string> cols = {"stage", "delay", "submitted", "read done",
                                   "finish"};
  if (any_faults) {
    cols.push_back("resubmits");
    cols.push_back("rerun");
    cols.push_back("wasted s");
  }
  TablePrinter t(cols);
  t.set_precision(1);
  for (dag::StageId s = 0; s < job.num_stages(); ++s) {
    const auto& sr = r.stages[static_cast<std::size_t>(s)];
    std::vector<TablePrinter::Cell> row = {job.stage(s).name,
                                           opt.plan.delay_for(s), sr.submitted,
                                           sr.last_read_done, sr.finish};
    if (any_faults) {
      row.push_back(static_cast<std::int64_t>(sr.resubmissions));
      row.push_back(static_cast<std::int64_t>(sr.tasks_rerun));
      row.push_back(sr.wasted_seconds);
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (r.failed) {
    std::cout << strategy_name << " job FAILED at " << fmt(r.failed_at, 1)
              << " s: " << r.failure_reason << '\n';
    return 1;
  }
  std::cout << strategy_name << " JCT: " << fmt(r.jct, 1) << " s\n";
  if (any_faults) {
    std::cout << "faults: " << r.node_crashes << " node crash(es), "
              << r.fetch_failures << " fetch failure(s), " << r.resubmissions()
              << " stage resubmission(s), " << r.tasks_rerun()
              << " task(s) rerun, " << fmt(r.wasted_seconds(), 1)
              << " s wasted\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: delaystage_cli plan|run|demo [job.spec] [flags]\n";
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "demo") {
    std::cout << kDemoSpec;
    return 0;
  }
  try {
    const ds::dag::JobDag job = argc > 2 && argv[2][0] != '-'
                                    ? ds::dag::load_job_spec_file(argv[2])
                                    : ds::dag::load_job_spec_text(kDemoSpec);
    const auto spec = cluster_for(flag(argc, argv, "--cluster", "prototype"));
    if (cmd == "plan") {
      const int threads = std::atoi(flag(argc, argv, "--threads", "1").c_str());
      return cmd_plan(job, spec, threads);
    }
    if (cmd == "run") {
      const std::string strategy = flag(argc, argv, "--strategy", "DelayStage");
      const auto seed = static_cast<std::uint64_t>(
          std::strtoull(flag(argc, argv, "--seed", "42").c_str(), nullptr, 10));
      ds::engine::RunOptions opt;
      opt.task_failure_rate =
          std::atof(flag(argc, argv, "--fail-rate", "0").c_str());
      opt.max_attempts =
          std::atoi(flag(argc, argv, "--max-attempts", "4").c_str());
      ds::sim::FaultPlan faults;
      for (const auto& c : flags(argc, argv, "--crash"))
        faults.crashes.push_back(parse_crash(c));
      faults.crash_rate =
          std::atof(flag(argc, argv, "--crash-rate", "0").c_str());
      faults.crash_horizon =
          std::atof(flag(argc, argv, "--horizon", "0").c_str());
      faults.mean_downtime =
          std::atof(flag(argc, argv, "--mean-downtime", "-1").c_str());
      return cmd_run(job, spec, strategy, seed, opt, faults);
    }
    std::cerr << "unknown command '" << cmd << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
