// Command-line front end: plan and simulate a job described by a spec file.
//
//   ./delaystage_cli plan <job.spec> [--cluster prototype|three_node]
//   ./delaystage_cli run  <job.spec> [--strategy Spark|AggShuffle|DelayStage|
//                                      CriticalPathFirst] [--seed N]
//   ./delaystage_cli demo                 # print a sample spec
//
// Spec format (see dag/serialize.h):
//   job,my-etl
//   stage,<name>,<tasks>,<input_gb>,<rate_mbps>,<output_gb>,<skew>
//   edge,<parent_index>,<child_index>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "core/stage_delayer.h"
#include "dag/serialize.h"
#include "engine/job_run.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/table.h"

namespace {

constexpr const char* kDemoSpec =
    "job,demo-etl\n"
    "stage,extract-a,30,6.0,2.5,2.0,0.2\n"
    "stage,extract-b,30,5.0,2.5,1.5,0.2\n"
    "stage,transform,40,10.0,4.0,4.0,0.2\n"
    "stage,join,40,4.0,2.0,1.0,0.2\n"
    "stage,report,20,4.5,3.0,0.1,0.2\n"
    "edge,2,3\n"
    "edge,0,4\n"
    "edge,1,4\n"
    "edge,3,4\n";

ds::sim::ClusterSpec cluster_for(const std::string& name) {
  if (name == "three_node") return ds::sim::ClusterSpec::three_node();
  return ds::sim::ClusterSpec::paper_prototype();
}

std::string flag(int argc, char** argv, const std::string& name,
                 const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i)
    if (name == argv[i]) return argv[i + 1];
  return fallback;
}

int cmd_plan(const ds::dag::JobDag& job, const ds::sim::ClusterSpec& spec) {
  using namespace ds;
  const core::JobProfile profile = core::JobProfile::from(job, spec);
  const core::DelaySchedule schedule = core::DelayCalculator(profile).compute();

  std::cout << "# execution paths (descending solo time)\n";
  for (const auto& p : schedule.paths) {
    std::cout << "#  ";
    for (dag::StageId s : p.stages) std::cout << job.stage(s).name << ' ';
    std::cout << '\n';
  }
  std::cout << core::StageDelayer(schedule).to_properties();
  std::cout << "# predicted makespan " << schedule.predicted_makespan
            << " s, predicted JCT " << schedule.predicted_jct << " s\n";
  return 0;
}

int cmd_run(const ds::dag::JobDag& job, const ds::sim::ClusterSpec& spec,
            const std::string& strategy_name, std::uint64_t seed) {
  using namespace ds;
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);
  auto strategy = sched::make_strategy(strategy_name);
  engine::RunOptions opt;
  opt.plan = strategy->plan(job, cluster);
  opt.seed = seed;
  engine::JobRun run(cluster, job, opt);
  run.start();
  sim.run();

  const auto& r = run.result();
  TablePrinter t({"stage", "delay", "submitted", "read done", "finish"});
  t.set_precision(1);
  for (dag::StageId s = 0; s < job.num_stages(); ++s) {
    const auto& sr = r.stages[static_cast<std::size_t>(s)];
    t.add_row({job.stage(s).name, opt.plan.delay_for(s), sr.submitted,
               sr.last_read_done, sr.finish});
  }
  t.print(std::cout);
  std::cout << strategy_name << " JCT: " << fmt(r.jct, 1) << " s\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: delaystage_cli plan|run|demo [job.spec] [flags]\n";
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "demo") {
    std::cout << kDemoSpec;
    return 0;
  }
  try {
    const ds::dag::JobDag job = argc > 2 && argv[2][0] != '-'
                                    ? ds::dag::load_job_spec_file(argv[2])
                                    : ds::dag::load_job_spec_text(kDemoSpec);
    const auto spec = cluster_for(flag(argc, argv, "--cluster", "prototype"));
    if (cmd == "plan") return cmd_plan(job, spec);
    if (cmd == "run") {
      const std::string strategy = flag(argc, argv, "--strategy", "DelayStage");
      const auto seed = static_cast<std::uint64_t>(
          std::strtoull(flag(argc, argv, "--seed", "42").c_str(), nullptr, 10));
      return cmd_run(job, spec, strategy, seed);
    }
    std::cerr << "unknown command '" << cmd << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
