// Example: run the paper's four benchmark workloads on the simulated
// 30-node EC2 cluster under the three stage-scheduling strategies and
// report job completion times plus the delays DelayStage chose.
//
//   ./spark_cluster_sim [seed]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "engine/job_run.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

double run_once(const ds::dag::JobDag& dag, const ds::sim::ClusterSpec& spec,
                ds::sched::Strategy& strategy, std::uint64_t seed) {
  ds::sim::Simulator sim;
  ds::sim::Cluster cluster(sim, spec, seed);
  ds::engine::RunOptions opt;
  opt.plan = strategy.plan(dag, cluster);
  opt.seed = seed;
  ds::engine::JobRun run(cluster, dag, opt);
  run.start();
  sim.run();
  return run.result().jct;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const auto spec = ds::sim::ClusterSpec::paper_prototype();
  const char* strategies[] = {"Spark", "AggShuffle", "DelayStage"};

  ds::TablePrinter table({"workload", "Spark", "AggShuffle", "DelayStage",
                          "vs Spark %", "vs AggShuffle %"});
  table.set_precision(1);

  for (const auto& wl : ds::workloads::benchmark_suite()) {
    double jct[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      auto strategy = ds::sched::make_strategy(strategies[i]);
      const auto t0 = std::chrono::steady_clock::now();
      jct[i] = run_once(wl.dag, spec, *strategy, seed);
      const auto dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      std::cerr << wl.name << " / " << strategies[i] << ": jct=" << jct[i]
                << "s (wall " << dt << "s)\n";
    }
    table.add_row({wl.name, jct[0], jct[1], jct[2],
                   100.0 * (jct[0] - jct[2]) / jct[0],
                   100.0 * (jct[1] - jct[2]) / jct[1]});
  }
  table.print(std::cout);

  // Show the schedule DelayStage computed for one workload.
  ds::sched::DelayStageStrategy ds_strategy;
  const auto suite = ds::workloads::benchmark_suite();
  (void)ds_strategy.plan(suite[2].dag, spec);
  std::cout << "\nDelayStage schedule for " << suite[2].name << ":\n";
  const auto& sched = ds_strategy.last_schedule();
  for (std::size_t k = 0; k < sched.delay.size(); ++k) {
    if (sched.delay[k] > 0)
      std::cout << "  delay stage " << (k + 1) << " by " << sched.delay[k] << " s\n";
  }
  std::cout << "  predicted makespan " << sched.predicted_makespan
            << " s, predicted JCT " << sched.predicted_jct << " s\n";
  return 0;
}
