// Shared command-line plumbing for the example CLIs, so delaystage_cli and
// trace_analysis spell and validate
// --threads/--seed/--quantile/--trace-out/--metrics-out/--report-out (plus
// the live-observability flags --flight-out/--prom-out/--telemetry-out/
// --telemetry-period/--slo) identically, and dispatch subcommands through
// one registry.
//
// Subcommand registry: the canonical commands (plan / run / report / trace /
// serve / sched / demo) are declared once here — name, operand synopsis and
// summary — and each binary binds run functions to the subset it implements
// via std_subcommand(), then hands the table to dispatch(). A CLI may name a
// default command (trace_analysis defaults to `trace`) so bare invocations
// keep working.
//
// ObsSink owns the per-invocation obs::Observability: construct it from the
// parsed flags, hand sink.get() to CommonOptions::obs, and call flush() once
// the run finishes to write the Chrome trace (load via chrome://tracing or
// https://ui.perfetto.dev) and the metrics JSON dump.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/options.h"
#include "obs/obs.h"
#include "obs/telemetry.h"

namespace ds::cli {

inline bool has_flag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i)
    if (name == argv[i]) return true;
  return false;
}

inline std::string flag(int argc, char** argv, const std::string& name,
                        const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (name == argv[i]) return argv[i + 1];
  if (has_flag(argc, argv, name))
    throw std::runtime_error(name + " needs a value");
  return fallback;
}

// Every occurrence of a repeatable flag, in order.
inline std::vector<std::string> flags(int argc, char** argv,
                                      const std::string& name) {
  std::vector<std::string> out;
  for (int i = 1; i + 1 < argc; ++i)
    if (name == argv[i]) out.push_back(argv[i + 1]);
  return out;
}

inline long long int_flag(int argc, char** argv, const std::string& name,
                          long long fallback) {
  const std::string s = flag(argc, argv, name, "");
  if (s.empty()) return fallback;
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size())
    throw std::runtime_error(name + " wants an integer, got '" + s + "'");
  return v;
}

inline double num_flag(int argc, char** argv, const std::string& name,
                       double fallback) {
  const std::string s = flag(argc, argv, name, "");
  if (s.empty()) return fallback;
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size())
    throw std::runtime_error(name + " wants a number, got '" + s + "'");
  return v;
}

// The flags every CLI shares. threads/seed feed ds::CommonOptions, quantile
// the planner model; the output paths decide whether an Observability sink
// is created at all.
struct CommonFlags {
  int threads = 1;
  std::uint64_t seed = 42;
  double quantile = 0;      // 0 = legacy mean model; (0,1) = straggler target
  std::string trace_out;    // Chrome trace_event JSON; empty = no tracing
  std::string metrics_out;  // metrics registry JSON; empty = no dump
  std::string report_out;   // analytics report (.csv → CSV, else JSON)
  std::string flight_out;   // flight-recorder NDJSON; empty = recorder off
  std::string prom_out;     // Prometheus text exposition; empty = no dump
  std::string telemetry_out;       // streaming telemetry NDJSON; empty = off
  double telemetry_period = 10.0;  // cadence (sim s for sched, wall s for serve)
  std::vector<std::string> slo;    // raw rule specs ("p99_slowdown<=2.5")

  bool want_obs() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !flight_out.empty() || !prom_out.empty() || !telemetry_out.empty();
  }

  void apply(CommonOptions& opt) const {
    opt.threads = threads;
    opt.seed = seed;
  }
};

inline CommonFlags parse_common_flags(int argc, char** argv,
                                      std::uint64_t default_seed = 42) {
  CommonFlags f;
  f.threads = static_cast<int>(int_flag(argc, argv, "--threads", 1));
  const long long seed = int_flag(
      argc, argv, "--seed", static_cast<long long>(default_seed));
  if (seed < 0) throw std::runtime_error("--seed must be >= 0");
  f.seed = static_cast<std::uint64_t>(seed);
  f.quantile = num_flag(argc, argv, "--quantile", 0);
  if (f.quantile < 0 || f.quantile >= 1)
    throw std::runtime_error("--quantile wants a value in [0, 1)");
  f.trace_out = flag(argc, argv, "--trace-out", "");
  f.metrics_out = flag(argc, argv, "--metrics-out", "");
  f.report_out = flag(argc, argv, "--report-out", "");
  f.flight_out = flag(argc, argv, "--flight-out", "");
  f.prom_out = flag(argc, argv, "--prom-out", "");
  f.telemetry_out = flag(argc, argv, "--telemetry-out", "");
  f.telemetry_period =
      num_flag(argc, argv, "--telemetry-period", f.telemetry_period);
  if (f.telemetry_period <= 0)
    throw std::runtime_error("--telemetry-period must be > 0");
  f.slo = flags(argc, argv, "--slo");
  return f;
}

// One dispatchable subcommand. `run` receives the binary's full argc/argv
// (the subcommand name, when given explicitly, sits at argv[1]).
struct Subcommand {
  std::string name;
  std::string operands;  // synopsis after the name, e.g. "<job.spec> [flags]"
  std::string summary;   // one help line
  int (*run)(int argc, char** argv) = nullptr;
};

// The canonical subcommand surface, declared once so both CLIs spell the
// same names and help text; binaries bind run functions to the subset they
// implement. Unknown names are an error (catches typos at registry setup).
inline Subcommand std_subcommand(const std::string& name,
                                 int (*run)(int, char**)) {
  static const Subcommand kStandard[] = {
      {"plan", "[job.spec] [flags]",
       "compute the DelayStage schedule and print it", nullptr},
      {"run", "[job.spec] [flags]",
       "execute one job on the simulated cluster", nullptr},
      {"report", "[job.spec] [flags]",
       "plan + execute, then print model-drift and interleaving analytics",
       nullptr},
      {"trace", "[batch_task.csv] [flags]",
       "trace statistics plus a Fuxi vs DelayStage replay", nullptr},
      {"serve", "[flags]",
       "plan-as-a-service daemon: NDJSON requests on stdin", nullptr},
      {"sched", "[flags]",
       "online multi-job scheduler: a job stream on one shared cluster",
       nullptr},
      {"demo", "", "print a sample job spec", nullptr},
  };
  for (const Subcommand& c : kStandard) {
    if (c.name == name) {
      Subcommand bound = c;
      bound.run = run;
      return bound;
    }
  }
  throw std::logic_error("std_subcommand: unknown subcommand '" + name + "'");
}

inline void print_usage(std::ostream& os, const std::string& prog,
                        const std::vector<Subcommand>& cmds,
                        const std::string& default_cmd = "") {
  os << "usage: " << prog << " <command> [args]\n\ncommands:\n";
  for (const Subcommand& c : cmds) {
    os << "  " << c.name;
    if (!c.operands.empty()) os << ' ' << c.operands;
    os << "\n      " << c.summary;
    if (c.name == default_cmd) os << " (default)";
    os << '\n';
  }
  os << "\nshared flags: --threads N (0 = hw concurrency), --seed N,\n"
        "  --quantile Q (0 < Q < 1: straggler-quantile planning),\n"
        "  --trace-out FILE, --metrics-out FILE, --report-out FILE,\n"
        "  --flight-out FILE (scheduler audit trail, NDJSON; auto-dumped on\n"
        "    job failure or invariant violation), --prom-out FILE\n"
        "    (Prometheus text exposition of the metrics registry),\n"
        "  --telemetry-out FILE --telemetry-period S (streaming metric\n"
        "    snapshots, one NDJSON line per tick),\n"
        "  --slo p<Q>_<jct|slowdown|queue_wait|plan_latency><=X (repeatable;\n"
        "    sched only — live SLO tracking with violation events)\n";
}

// Routes argv[1] to its subcommand. `help`/`--help`/`-h` print usage. When
// `default_cmd` is set, an argv[1] that is no known command (a file operand,
// a flag, or nothing at all) falls through to that command; otherwise an
// unknown command is an error.
inline int dispatch(int argc, char** argv, const std::vector<Subcommand>& cmds,
                    const std::string& default_cmd = "") {
  const std::string prog = argc > 0 ? argv[0] : "cli";
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_usage(std::cout, prog, cmds, default_cmd);
    return 0;
  }
  for (const Subcommand& c : cmds)
    if (c.name == cmd) return c.run(argc, argv);
  if (!default_cmd.empty()) {
    for (const Subcommand& c : cmds)
      if (c.name == default_cmd) return c.run(argc, argv);
  }
  print_usage(std::cerr, prog, cmds, default_cmd);
  return 2;
}

// Owns the Observability for one CLI invocation. The tracer is enabled only
// when a trace file was requested (or the command needs spans itself, e.g.
// for an analytics report — pass force_trace); metrics handles are live
// whenever the sink exists (a registry dump costs nothing until exported).
class ObsSink {
 public:
  // `telemetry_options` filters what the streaming sink serializes (the
  // sched CLI excludes the wall-clock metric prefixes so its stream stays
  // byte-reproducible across --threads).
  explicit ObsSink(const CommonFlags& f, bool force_trace = false,
                   obs::TelemetryOptions telemetry_options = {})
      : trace_out_(f.trace_out),
        metrics_out_(f.metrics_out),
        flight_out_(f.flight_out),
        prom_out_(f.prom_out) {
    if (f.want_obs() || force_trace) {
      obs::TracerOptions topt;
      topt.enabled = !f.trace_out.empty() || force_trace;
      obs::FlightRecorderOptions fopt;
      fopt.enabled = !f.flight_out.empty();
      fopt.dump_path = f.flight_out;  // anomaly dumps land where --flight-out
      obs_ = std::make_unique<obs::Observability>(topt, fopt);
      // Any DS_CHECK violation from here on dumps the audit trail first.
      if (fopt.enabled) obs::install_crash_dump(&obs_->flight);
      if (!f.telemetry_out.empty()) {
        telemetry_stream_ = std::make_unique<std::ofstream>(f.telemetry_out);
        if (!*telemetry_stream_)
          throw std::runtime_error("cannot write " + f.telemetry_out);
        telemetry_ = std::make_unique<obs::TelemetrySink>(
            *telemetry_stream_, std::move(telemetry_options));
      }
    }
  }

  // nullptr when no observability was requested — zero overhead downstream.
  obs::Observability* get() { return obs_.get(); }

  // nullptr unless --telemetry-out was given.
  obs::TelemetrySink* telemetry() { return telemetry_.get(); }

  // Write whichever outputs were requested; throws on IO failure. Warns once
  // on stderr when the span ring overflowed, so a truncated trace (or an
  // analytics report computed from one) is never silent.
  void flush() {
    if (obs_ == nullptr) return;
    obs_->refresh_derived();  // tracer.dropped_spans / flight.dropped_records
    if (const std::uint64_t lost = obs_->tracer.dropped(); lost > 0) {
      std::cerr << "warning: trace ring overflowed, " << lost
                << " span(s) dropped — raise TracerOptions::ring_capacity "
                   "for a complete timeline\n";
    }
    if (!trace_out_.empty()) {
      std::ofstream out(trace_out_);
      if (!out) throw std::runtime_error("cannot write " + trace_out_);
      obs_->tracer.write_chrome_json(out);
      if (!out) throw std::runtime_error("failed writing " + trace_out_);
    }
    if (!metrics_out_.empty()) {
      std::ofstream out(metrics_out_);
      if (!out) throw std::runtime_error("cannot write " + metrics_out_);
      obs_->metrics.write_json(out);
      if (!out) throw std::runtime_error("failed writing " + metrics_out_);
    }
    if (!prom_out_.empty()) {
      std::ofstream out(prom_out_);
      if (!out) throw std::runtime_error("cannot write " + prom_out_);
      obs_->metrics.write_prometheus(out);
      if (!out) throw std::runtime_error("failed writing " + prom_out_);
    }
    // Final trail overwrite: --flight-out always ends up holding the most
    // recent records (a mid-run anomaly dump is superseded by this fuller
    // one — the anomaly's records are still in the trail unless the ring
    // wrapped past them).
    if (!flight_out_.empty() && !obs_->flight.dump_now("exit"))
      throw std::runtime_error("cannot write " + flight_out_);
  }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  std::string flight_out_;
  std::string prom_out_;
  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<std::ofstream> telemetry_stream_;
  std::unique_ptr<obs::TelemetrySink> telemetry_;
};

}  // namespace ds::cli
