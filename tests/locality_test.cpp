// Task-level delay scheduling (Zaharia et al.) inside the engine: shuffle
// tasks wait briefly for the worker holding their input, then fall back.
#include <gtest/gtest.h>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "util/units.h"

namespace ds::engine {
namespace {

using namespace ds;  // literals

// A single map task concentrates its heavy output on one node; the reduce
// tasks then either read it over loopback (local) or drag it through that
// node's thin NIC egress (remote).
dag::JobDag locality_job() {
  dag::JobDag j("locality");
  dag::Stage map;
  map.name = "map";
  map.num_tasks = 1;
  map.input_bytes = 100_MB;
  map.process_rate = 20_MBps;
  map.output_bytes = 3_GB;  // heavy, single-node shuffle: locality matters
  dag::Stage red;
  red.name = "reduce";
  red.num_tasks = 2;
  red.input_bytes = 3_GB;
  red.process_rate = 50_MBps;
  red.output_bytes = 0;
  j.add_stage(map);
  j.add_stage(red);
  j.add_edge(0, 1);
  return j;
}

JobResult run(Seconds locality_wait, std::uint64_t seed = 7) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), seed);
  RunOptions opt;
  opt.locality_wait = locality_wait;
  opt.seed = seed;
  const dag::JobDag job = locality_job();  // must outlive the run
  JobRun jr(cluster, job, opt);
  jr.start();
  sim.run();
  return jr.result();
}

TEST(LocalityWait, LocalReadsBeatRemoteOnes) {
  const JobResult remote = run(0.0);
  const JobResult local = run(30.0);
  // With a generous wait, reduce tasks land where the map output lives and
  // read a large share over loopback instead of the thin NICs.
  EXPECT_LT(local.jct, remote.jct);
}

TEST(LocalityWait, ReduceTasksLandOnMapNodes) {
  const JobResult r = run(30.0);
  // Collect map output nodes.
  std::set<sim::NodeId> map_nodes;
  for (const auto& t : r.tasks)
    if (t.stage == 0) map_nodes.insert(t.node);
  int local_tasks = 0;
  for (const auto& t : r.tasks)
    if (t.stage == 1 && map_nodes.contains(t.node)) ++local_tasks;
  EXPECT_GE(local_tasks, 1);
}

TEST(LocalityWait, FallbackFiresWhenPreferredNodeIsBusy) {
  // Saturate the preferred node: even with a wait, tasks must eventually
  // run and the job completes not much later than the wait itself.
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  RunOptions opt;
  opt.locality_wait = 5.0;
  opt.seed = 7;
  const dag::JobDag job = locality_job();
  JobRun jr(cluster, job, opt);
  // Hold every slot of every node for 200 s: all tasks queue, then at
  // wait expiry the reduce tasks convert to unpinned requests.
  for (int n = 0; n < 3; ++n)
    for (int k = 0; k < 2; ++k) cluster.executors().request([](sim::NodeId) {}, n);
  sim.schedule_at(200.0, [&] {
    for (int n = 0; n < 3; ++n)
      for (int k = 0; k < 2; ++k) cluster.executors().release(n);
  });
  jr.start();
  sim.run();
  EXPECT_TRUE(jr.finished());
}

TEST(LocalityWait, SourceStagesAreUnaffected) {
  // Source stages have no worker-local input: wait must not delay them.
  const JobResult a = run(0.0);
  const JobResult b = run(30.0);
  EXPECT_DOUBLE_EQ(b.stages[0].first_launch, a.stages[0].first_launch);
}

}  // namespace
}  // namespace ds::engine
