#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dag/paths.h"
#include "util/units.h"

namespace ds::dag {
namespace {

using namespace ds;  // literals

Stage mk(const std::string& name) {
  Stage s;
  s.name = name;
  s.num_tasks = 2;
  s.input_bytes = 100_MB;
  s.process_rate = 10_MBps;
  s.output_bytes = 50_MB;
  return s;
}

// Paper Fig. 7: stages 1..5 (ids 0..4). K = {1,2,3,4}; paths P1={1,3},
// P2={2,3}, P3={4}; stage 5 is sequential.
JobDag fig7() {
  JobDag j("fig7");
  for (int i = 1; i <= 5; ++i) j.add_stage(mk("s" + std::to_string(i)));
  j.add_edge(0, 2);  // 1 -> 3
  j.add_edge(1, 2);  // 2 -> 3
  j.add_edge(2, 4);  // 3 -> 5
  j.add_edge(3, 4);  // 4 -> 5
  return j;
}

std::set<std::vector<StageId>> as_set(const std::vector<ExecutionPath>& ps) {
  std::set<std::vector<StageId>> out;
  for (const auto& p : ps) out.insert(p.stages);
  return out;
}

TEST(Paths, Fig7Decomposition) {
  const JobDag j = fig7();
  const auto paths = execution_paths(j);
  EXPECT_EQ(as_set(paths),
            (std::set<std::vector<StageId>>{{0, 2}, {1, 2}, {3}}));
}

TEST(Paths, PathTimeSumsStageDurations) {
  const JobDag j = fig7();
  // Fig. 7 durations: t1=20, t2=10, t3=30, t4=20 (t5 sequential).
  const std::vector<double> t{20, 10, 30, 20, 10};
  const auto paths = execution_paths(j);
  std::vector<Seconds> times;
  for (const auto& p : paths)
    times.push_back(path_time(p, [&](StageId s) { return t[static_cast<std::size_t>(s)]; }));
  std::sort(times.begin(), times.end());
  EXPECT_EQ(times, (std::vector<Seconds>{20, 40, 50}));
}

TEST(Paths, ChainJobHasNoPaths) {
  JobDag j("chain");
  for (int i = 0; i < 3; ++i) j.add_stage(mk("c"));
  j.add_edge(0, 1);
  j.add_edge(1, 2);
  EXPECT_TRUE(execution_paths(j).empty());
}

TEST(Paths, IndependentStagesBecomeSingletons) {
  JobDag j("fan");
  for (int i = 0; i < 4; ++i) j.add_stage(mk("f"));
  const auto paths = execution_paths(j);
  EXPECT_EQ(as_set(paths),
            (std::set<std::vector<StageId>>{{0}, {1}, {2}, {3}}));
}

TEST(Paths, EveryParallelStageIsCovered) {
  // Layered diamond mesh: dense enough that truncation kicks in with a tiny
  // max_paths, exercising the cover fallback.
  JobDag j("mesh");
  constexpr int kLayers = 6, kWidth = 4;
  for (int l = 0; l < kLayers; ++l)
    for (int w = 0; w < kWidth; ++w) j.add_stage(mk("m"));
  auto id = [&](int l, int w) { return l * kWidth + w; };
  for (int l = 0; l + 1 < kLayers; ++l)
    for (int w = 0; w < kWidth; ++w)
      for (int w2 = 0; w2 < kWidth; ++w2) j.add_edge(id(l, w), id(l + 1, w2));
  const auto k = j.parallel_stage_set();
  for (std::size_t cap : {std::size_t{2}, std::size_t{8}, std::size_t{512}}) {
    const auto paths = execution_paths(j, cap);
    std::set<StageId> covered;
    for (const auto& p : paths)
      for (StageId s : p.stages) covered.insert(s);
    for (StageId s : k)
      EXPECT_TRUE(covered.contains(s)) << "cap=" << cap << " stage " << s;
  }
}

TEST(Paths, PathsFollowDependencyOrder) {
  const JobDag j = fig7();
  for (const auto& p : execution_paths(j)) {
    for (std::size_t i = 0; i + 1 < p.stages.size(); ++i)
      EXPECT_TRUE(j.is_ancestor(p.stages[i], p.stages[i + 1]));
  }
}

TEST(Paths, MaximalChainsOnly) {
  // a -> b -> c all in K (plus an isolated d to make them parallel).
  JobDag j("maximal");
  for (int i = 0; i < 4; ++i) j.add_stage(mk("s"));
  j.add_edge(0, 1);
  j.add_edge(1, 2);
  const auto paths = execution_paths(j);
  // Expect exactly {0,1,2} and {3} — no sub-chains like {1,2}.
  EXPECT_EQ(as_set(paths), (std::set<std::vector<StageId>>{{0, 1, 2}, {3}}));
}

}  // namespace
}  // namespace ds::dag
