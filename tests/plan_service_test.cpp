// Plan-as-a-service: ProfileStore persistence (CRC-checked records, atomic
// save, corrupt-tail recovery), the sharded PlanCache (LRU order, stale
// epochs, drift invalidation), DelaySchedule round-trips, the NDJSON daemon —
// and a multi-thread hammer pinning the bit-exact warm == cold contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/calibration.h"
#include "core/delay_calculator.h"
#include "core/plan_serialize.h"
#include "core/profile.h"
#include "dag/serialize.h"
#include "sim/cluster.h"
#include "store/daemon.h"
#include "store/plan_cache.h"
#include "store/plan_service.h"
#include "store/profile_store.h"
#include "util/json.h"
#include "util/units.h"

namespace ds::store {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out, double skew = 0.2) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  s.task_skew = skew;
  return s;
}

// A diamond whose volumes scale with `variant`, so each variant hashes to a
// distinct workload signature.
dag::JobDag diamond(int variant = 0) {
  const double v = 1.0 + 0.25 * variant;
  dag::JobDag j("diamond");
  j.add_stage(mk("a", 8, Bytes(v * 2_GB), 4_MBps, 1_GB));
  j.add_stage(mk("b", 8, Bytes(v * 1_GB), 2_MBps, 500_MB));
  j.add_stage(mk("c", 8, Bytes(v * 1.5_GB), 3_MBps, 200_MB));
  j.add_edge(0, 1);
  j.add_edge(0, 2);
  return j;
}

void expect_same_plan(const core::DelaySchedule& a,
                      const core::DelaySchedule& b) {
  ASSERT_EQ(a.delay.size(), b.delay.size());
  for (std::size_t i = 0; i < a.delay.size(); ++i)
    EXPECT_EQ(a.delay[i], b.delay[i]) << "delay of stage " << i;
  EXPECT_EQ(a.predicted_makespan, b.predicted_makespan);
  EXPECT_EQ(a.predicted_jct, b.predicted_jct);
  ASSERT_EQ(a.predicted_stages.size(), b.predicted_stages.size());
  for (std::size_t i = 0; i < a.predicted_stages.size(); ++i) {
    EXPECT_EQ(a.predicted_stages[i].ready, b.predicted_stages[i].ready);
    EXPECT_EQ(a.predicted_stages[i].submitted, b.predicted_stages[i].submitted);
    EXPECT_EQ(a.predicted_stages[i].read_done, b.predicted_stages[i].read_done);
    EXPECT_EQ(a.predicted_stages[i].compute_done,
              b.predicted_stages[i].compute_done);
    EXPECT_EQ(a.predicted_stages[i].finish, b.predicted_stages[i].finish);
  }
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "plan_service_test_" + name;
}

// A 2× network observation: with the default EWMA alpha 0.4 the network
// factor jumps 1.0 → 1.4 on the first fold — past any reasonable drift
// threshold.
core::PhaseObservation big_network_obs() {
  core::PhaseObservation obs;
  obs.predicted_network = 10;
  obs.actual_network = 20;
  obs.predicted_compute = 10;
  obs.actual_compute = 10;
  obs.predicted_write = 10;
  obs.actual_write = 10;
  return obs;
}

// ---------- cold-start bit-exactness ----------

TEST(PlanService, ColdPlanBitIdenticalToDirectCalculator) {
  const dag::JobDag job = diamond();
  const auto spec = sim::ClusterSpec::three_node();
  const core::JobProfile profile = core::JobProfile::from(job, spec);
  const core::DelaySchedule direct =
      core::DelayCalculator(profile, core::CalculatorOptions{}).compute();

  PlanServiceOptions opt;
  opt.store_path = temp_path("absent_store.bin");  // never created
  PlanService service(opt);
  EXPECT_TRUE(service.load_info().missing);

  const PlanService::Planned planned = service.plan(job, profile);
  EXPECT_FALSE(planned.cache_hit);
  EXPECT_EQ(planned.epoch, 0u);
  expect_same_plan(*planned.plan, direct);
}

TEST(PlanService, WarmHitReturnsTheColdPlanObject) {
  const dag::JobDag job = diamond();
  const core::JobProfile profile =
      core::JobProfile::from(job, sim::ClusterSpec::three_node());
  PlanService service;

  const PlanService::Planned cold = service.plan(job, profile);
  const PlanService::Planned warm = service.plan(job, profile);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  // Same shared object, so bit-identical by construction.
  EXPECT_EQ(cold.plan.get(), warm.plan.get());
  EXPECT_EQ(service.cache().hits(), 1u);
  EXPECT_EQ(service.cache().misses(), 1u);
}

TEST(PlanService, HammerManyThreadsAllPlansBitIdenticalToCold) {
  constexpr int kJobs = 4;
  constexpr int kThreads = 8;
  constexpr int kIterations = 25;

  std::vector<dag::JobDag> jobs;
  for (int v = 0; v < kJobs; ++v) jobs.push_back(diamond(v));
  const auto spec = sim::ClusterSpec::three_node();
  std::vector<core::JobProfile> profiles;
  std::vector<core::DelaySchedule> reference;
  for (const auto& j : jobs) {
    profiles.push_back(core::JobProfile::from(j, spec));
    reference.push_back(
        core::DelayCalculator(profiles.back(), core::CalculatorOptions{})
            .compute());
  }

  PlanService service;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const int v = (t + i) % kJobs;
        const PlanService::Planned p = service.plan(jobs[v], profiles[v]);
        if (p.plan->delay != reference[v].delay ||
            p.plan->predicted_makespan != reference[v].predicted_makespan)
          ++mismatches[t];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
  // Every request after the per-job cold plan must have been servable from
  // cache; concurrent first-misses may each compute, but never more than one
  // miss per (job, thread-race) — bound it loosely and require real reuse.
  EXPECT_GE(service.cache().hits(),
            static_cast<std::uint64_t>(kThreads * kIterations - kJobs * kThreads));
  EXPECT_EQ(service.cache().size(), static_cast<std::size_t>(kJobs));
}

// ---------- PlanCache mechanics ----------

PlanKey key_of(std::uint64_t sig) {
  PlanKey k;
  k.signature = sig;
  return k;
}

std::shared_ptr<const core::DelaySchedule> dummy_plan(double makespan) {
  core::DelaySchedule s;
  s.predicted_makespan = makespan;
  return std::make_shared<const core::DelaySchedule>(std::move(s));
}

TEST(PlanCache, EvictsTheLeastRecentlyUsedEntry) {
  PlanCache cache(PlanCache::Options{1, 2});
  cache.insert(key_of(1), 0, dummy_plan(1));
  cache.insert(key_of(2), 0, dummy_plan(2));
  ASSERT_NE(cache.find(key_of(1), 0), nullptr);  // touch 1 → 2 is now LRU
  cache.insert(key_of(3), 0, dummy_plan(3));     // evicts 2
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(key_of(2), 0), nullptr);
  ASSERT_NE(cache.find(key_of(1), 0), nullptr);
  ASSERT_NE(cache.find(key_of(3), 0), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, StaleEpochEntriesAreDroppedAndCounted) {
  PlanCache cache(PlanCache::Options{});
  cache.insert(key_of(7), 0, dummy_plan(1));
  EXPECT_EQ(cache.find(key_of(7), 1), nullptr);  // newer epoch → stale
  EXPECT_EQ(cache.stale(), 1u);
  // The stale entry was erased, not just skipped.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key_of(7), 0), nullptr);
}

TEST(PlanCache, InvalidateSignatureDropsAllItsBuckets) {
  PlanCache cache(PlanCache::Options{4, 8});
  PlanKey a = key_of(1);
  PlanKey b = key_of(1);
  b.bucket.workers = 99;  // same workload, different cluster bucket
  cache.insert(a, 0, dummy_plan(1));
  cache.insert(b, 0, dummy_plan(2));
  cache.insert(key_of(2), 0, dummy_plan(3));
  EXPECT_EQ(cache.invalidate_signature(1), 2u);
  EXPECT_EQ(cache.invalidations(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(key_of(2), 0), nullptr);
}

TEST(PlanCache, OptionsDigestSeparatesPlannerConfigs) {
  core::CalculatorOptions a;
  core::CalculatorOptions b;
  EXPECT_EQ(options_digest(a), options_digest(b));
  b.model.quantile = 0.9;
  EXPECT_NE(options_digest(a), options_digest(b));
  // The seed only matters under random path order.
  core::CalculatorOptions c;
  c.seed = 7;
  EXPECT_EQ(options_digest(a), options_digest(c));
}

TEST(PlanCache, BucketQuantizesBandwidthsIntoClasses) {
  core::ClusterProfile a;
  a.num_workers = 3;
  a.executors_per_worker = 2;
  a.nic_bw = 134217728;  // 2^27: dead center of a quarter-octave class
  core::ClusterProfile b = a;
  b.nic_bw = 1.02 * a.nic_bw;  // +2%: stays inside the class
  core::ClusterProfile c = a;
  c.nic_bw = 2 * a.nic_bw;  // an octave up: exactly 4 classes away
  EXPECT_EQ(bucket_of(a), bucket_of(b));
  EXPECT_NE(bucket_of(a), bucket_of(c));
  EXPECT_EQ(bandwidth_class(c.nic_bw), bandwidth_class(a.nic_bw) + 4);
  EXPECT_EQ(bandwidth_class(0), -1);
}

// ---------- drift-driven invalidation ----------

TEST(PlanService, DriftBumpsEpochAndInvalidatesCachedPlans) {
  const dag::JobDag job = diamond();
  const core::JobProfile profile =
      core::JobProfile::from(job, sim::ClusterSpec::three_node());
  PlanService service;

  const PlanService::Planned cold = service.plan(job, profile);
  ASSERT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.epoch, 0u);

  service.observe(cold.signature, big_network_obs());
  EXPECT_EQ(service.profiles().epoch(cold.signature), 1u);
  EXPECT_EQ(service.cache().invalidations(), 1u);

  const PlanService::Planned next = service.plan(job, profile);
  EXPECT_FALSE(next.cache_hit);  // the drifted plan was dropped
  EXPECT_EQ(next.epoch, 1u);
  // The recalibrated model sees a 1.4× slower network, so the new plan must
  // not be the old object.
  EXPECT_NE(next.plan.get(), cold.plan.get());
}

// ---------- ProfileStore persistence ----------

TEST(ProfileStore, SaveLoadRoundTripIsBitExact) {
  const std::string path = temp_path("roundtrip.bin");
  std::remove(path.c_str());

  ProfileStore a;
  core::PhaseObservation obs = big_network_obs();
  a.observe(11, obs);
  a.observe(22, obs);
  a.observe(22, obs);
  obs.actual_write = 3;
  a.observe(33, obs);
  ASSERT_TRUE(a.save(path).is_ok());

  ProfileStore b;
  ProfileStore::LoadInfo info;
  ASSERT_TRUE(b.load(path, &info).is_ok());
  EXPECT_FALSE(info.missing);
  EXPECT_FALSE(info.truncated);
  EXPECT_EQ(info.records, 3u);
  EXPECT_EQ(b.workloads(), 3u);

  for (const std::uint64_t sig : {11ull, 22ull, 33ull}) {
    const WorkloadStats sa = a.stats(sig);
    const WorkloadStats sb = b.stats(sig);
    EXPECT_EQ(sa.factors.network, sb.factors.network);
    EXPECT_EQ(sa.factors.compute, sb.factors.compute);
    EXPECT_EQ(sa.factors.write, sb.factors.write);
    EXPECT_EQ(sa.factors.observations, sb.factors.observations);
    EXPECT_EQ(sa.epoch, sb.epoch);
    EXPECT_EQ(sa.runs, sb.runs);
    EXPECT_EQ(sa.window.actual_network, sb.window.actual_network);
    EXPECT_EQ(sa.totals.actual_network, sb.totals.actual_network);
  }
  std::remove(path.c_str());
}

TEST(ProfileStore, MissingFileIsACleanColdStart) {
  ProfileStore s;
  ProfileStore::LoadInfo info;
  ASSERT_TRUE(s.load(temp_path("never_written.bin"), &info).is_ok());
  EXPECT_TRUE(info.missing);
  EXPECT_EQ(s.workloads(), 0u);
  EXPECT_TRUE(s.factors(123).is_identity());
}

TEST(ProfileStore, BadMagicIsAStatusErrorNotACrash) {
  const std::string path = temp_path("not_a_store.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a profile store";
  }
  ProfileStore s;
  const Status st = s.load(path);
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("bad magic"), std::string::npos);
  EXPECT_EQ(s.workloads(), 0u);

  // The service built on that path warns and runs cold — still plans.
  PlanServiceOptions opt;
  opt.store_path = path;
  PlanService service(opt);
  EXPECT_TRUE(service.load_info().missing);
  const dag::JobDag job = diamond();
  const core::JobProfile profile =
      core::JobProfile::from(job, sim::ClusterSpec::three_node());
  const core::DelaySchedule direct =
      core::DelayCalculator(profile, core::CalculatorOptions{}).compute();
  expect_same_plan(*service.plan(job, profile).plan, direct);
  std::remove(path.c_str());
}

TEST(ProfileStore, CorruptTailKeepsTheValidPrefix) {
  const std::string path = temp_path("corrupt_tail.bin");
  ProfileStore a;
  a.observe(11, big_network_obs());
  a.observe(22, big_network_obs());
  a.observe(33, big_network_obs());
  ASSERT_TRUE(a.save(path).is_ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  // Truncate mid-way through the third record.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 40));
  }
  ProfileStore b;
  ProfileStore::LoadInfo info;
  ASSERT_TRUE(b.load(path, &info).is_ok());
  EXPECT_TRUE(info.truncated);
  EXPECT_EQ(info.records, 2u);
  EXPECT_EQ(b.workloads(), 2u);

  // Flip a payload byte of the last record: the CRC rejects it.
  {
    std::string flipped = bytes;
    flipped[flipped.size() - 20] ^= 0x5a;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  ProfileStore c;
  ASSERT_TRUE(c.load(path, &info).is_ok());
  EXPECT_TRUE(info.truncated);
  EXPECT_EQ(info.records, 2u);
  EXPECT_EQ(info.discarded, 1u);
  std::remove(path.c_str());
}

TEST(ProfileStore, PlanServicePersistsCalibrationAcrossProcesses) {
  const std::string path = temp_path("service_store.bin");
  std::remove(path.c_str());
  const dag::JobDag job = diamond();
  const core::JobProfile profile =
      core::JobProfile::from(job, sim::ClusterSpec::three_node());

  core::CalibrationFactors saved;
  {
    PlanServiceOptions opt;
    opt.store_path = path;
    PlanService first(opt);
    const auto planned = first.plan(job, profile);
    first.observe(planned.signature, big_network_obs());
    saved = first.profiles().factors(planned.signature);
    ASSERT_TRUE(first.save().is_ok());
  }
  {
    PlanServiceOptions opt;
    opt.store_path = path;
    PlanService second(opt);  // a "new process" restoring the store
    EXPECT_FALSE(second.load_info().missing);
    const core::CalibrationFactors restored =
        second.profiles().factors(core::workload_signature(job));
    EXPECT_EQ(restored.network, saved.network);
    EXPECT_EQ(restored.compute, saved.compute);
    EXPECT_EQ(restored.write, saved.write);
    EXPECT_EQ(restored.observations, saved.observations);
    EXPECT_EQ(second.profiles().epoch(core::workload_signature(job)), 1u);
  }
  std::remove(path.c_str());
}

TEST(ModelCalibrator, SnapshotRestoreIsBitExact) {
  core::ModelCalibrator a;
  a.observe(5, big_network_obs());
  a.observe(9, big_network_obs());
  core::ModelCalibrator b;
  for (const auto& [sig, f] : a.snapshot()) b.restore(sig, f);
  for (const std::uint64_t sig : {5ull, 9ull}) {
    EXPECT_EQ(a.factors(sig).network, b.factors(sig).network);
    EXPECT_EQ(a.factors(sig).compute, b.factors(sig).compute);
    EXPECT_EQ(a.factors(sig).write, b.factors(sig).write);
    EXPECT_EQ(a.factors(sig).observations, b.factors(sig).observations);
  }
}

// ---------- DelaySchedule round-trip ----------

TEST(PlanSerialize, RoundTripIsBitExact) {
  const dag::JobDag job = diamond();
  const core::JobProfile profile =
      core::JobProfile::from(job, sim::ClusterSpec::three_node());
  const core::DelaySchedule plan =
      core::DelayCalculator(profile, core::CalculatorOptions{}).compute();

  const std::string text = core::save_plan_text(plan);
  core::DelaySchedule loaded;
  ASSERT_TRUE(core::load_plan_text(text, &loaded).is_ok());
  expect_same_plan(loaded, plan);
  EXPECT_EQ(loaded.evaluations, plan.evaluations);
  EXPECT_EQ(loaded.memo_hits, plan.memo_hits);
}

TEST(PlanSerialize, VersionMismatchIsAStatusErrorNotACrash) {
  core::DelaySchedule out;
  out.predicted_makespan = 42;  // must stay untouched on failure
  const Status st = core::load_plan_text("plan,v9\nmakespan,1\n", &out);
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("version"), std::string::npos);
  EXPECT_EQ(out.predicted_makespan, 42);

  EXPECT_FALSE(core::load_plan_text("", &out).is_ok());
  EXPECT_FALSE(core::load_plan_text("plan,v1\nnonsense,1,2\n", &out).is_ok());
}

// ---------- the NDJSON daemon ----------

std::string plan_request(int id, const dag::JobDag& job) {
  std::ostringstream os;
  os << "{\"id\": " << id << ", \"spec\": ";
  json::write_string(os, dag::save_job_spec_text(job));
  os << ", \"cluster\": \"three_node\"}";
  return os.str();
}

TEST(PlanDaemon, ServesHitsAfterTheColdMiss) {
  PlanDaemon daemon(DaemonOptions{});
  const dag::JobDag job = diamond();
  bool err = true;
  const std::string first = daemon.handle_line(plan_request(1, job), &err);
  EXPECT_FALSE(err);
  EXPECT_NE(first.find("\"cache\": \"miss\""), std::string::npos);
  const std::string second = daemon.handle_line(plan_request(2, job), &err);
  EXPECT_FALSE(err);
  EXPECT_NE(second.find("\"cache\": \"hit\""), std::string::npos);
  EXPECT_NE(second.find("\"id\": 2"), std::string::npos);
  // The embedded plan JSON must be byte-identical between hit and miss.
  const auto plan_of = [](const std::string& s) {
    return s.substr(s.find("\"plan\":"));
  };
  EXPECT_EQ(plan_of(first), plan_of(second));
}

TEST(PlanDaemon, MalformedLinesGetErrorResponsesNotCrashes) {
  PlanDaemon daemon(DaemonOptions{});
  bool err = false;
  EXPECT_NE(daemon.handle_line("{oops", &err).find("\"error\""),
            std::string::npos);
  EXPECT_TRUE(err);
  EXPECT_NE(daemon.handle_line("{\"id\": 1}", &err).find("\"error\""),
            std::string::npos);
  EXPECT_TRUE(err);
  EXPECT_NE(
      daemon.handle_line("{\"id\": 1, \"spec\": \"job\"}", &err).find("error"),
      std::string::npos);
  EXPECT_TRUE(err);
  EXPECT_NE(daemon.handle_line("{\"cmd\": \"nope\"}", &err).find("error"),
            std::string::npos);
  EXPECT_TRUE(err);
}

TEST(PlanDaemon, ServeKeepsResponseOrderAcrossABatch) {
  DaemonOptions dopt;
  dopt.threads = 4;
  dopt.batch = 8;
  PlanDaemon daemon(dopt);
  std::ostringstream requests;
  for (int i = 0; i < 6; ++i)
    requests << plan_request(i, diamond(i % 3)) << "\n";
  requests << "{\"cmd\": \"stats\", \"id\": 6}\n";
  std::istringstream in(requests.str());
  std::ostringstream out;
  const DaemonStats stats = daemon.serve(in, out);
  EXPECT_EQ(stats.requests, 7u);
  EXPECT_EQ(stats.errors, 0u);

  std::istringstream lines(out.str());
  std::string line;
  int expected = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"id\": " + std::to_string(expected)),
              std::string::npos)
        << line;
    ++expected;
  }
  EXPECT_EQ(expected, 7);
}

}  // namespace
}  // namespace ds::store
