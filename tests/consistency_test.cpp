// Cross-module property sweeps: the planner's analytical model and the
// task-granular engine must stay mutually consistent on arbitrary volumetric
// jobs — the whole method rests on the model ranking schedules the way the
// engine realises them (Appendix A.2).
#include <gtest/gtest.h>

#include "core/delay_calculator.h"
#include "core/evaluator.h"
#include "core/profile.h"
#include "engine/job_run.h"
#include "sim/cluster.h"
#include "util/rng.h"

namespace ds {
namespace {

// Random layered volumetric DAG (prototype-cluster scale).
dag::JobDag random_job(std::uint64_t seed) {
  Rng rng(seed);
  dag::JobDag j("rand" + std::to_string(seed));
  const int layers = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<std::vector<dag::StageId>> ids(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    const int width = static_cast<int>(rng.uniform_int(1, 3));
    for (int w = 0; w < width; ++w) {
      dag::Stage s;
      s.name = "s" + std::to_string(l) + "_" + std::to_string(w);
      s.num_tasks = static_cast<int>(rng.uniform_int(8, 40));
      s.input_bytes = rng.uniform(1.0, 8.0) * 1e9;
      s.process_rate = rng.uniform(1.5, 4.0) * 1e6;
      s.output_bytes = rng.uniform(0.2, 3.0) * 1e9;
      s.task_skew = rng.uniform(0.0, 0.25);
      ids[static_cast<std::size_t>(l)].push_back(j.add_stage(s));
    }
    if (l > 0) {
      for (dag::StageId c : ids[static_cast<std::size_t>(l)]) {
        const auto& prev = ids[static_cast<std::size_t>(l - 1)];
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1));
        j.add_edge(prev[pick], c);
      }
    }
  }
  return j;
}

double engine_jct(const dag::JobDag& dag, const std::vector<Seconds>& delay,
                  std::uint64_t seed) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::paper_prototype(), seed);
  engine::RunOptions opt;
  opt.plan.delay = delay;
  opt.seed = seed;
  engine::JobRun run(cluster, dag, opt);
  run.start();
  sim.run();
  return run.result().jct;
}

class ModelEngineConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelEngineConsistency, StockPredictionWithinTolerance) {
  const dag::JobDag j = random_job(GetParam());
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile p = core::JobProfile::from(j, spec);
  const double model = core::ScheduleEvaluator(p).evaluate({}).jct;
  const double engine = engine_jct(j, {}, 42);
  // Uncalibrated random jobs: the model must stay in the right ballpark
  // (the calibrated workloads are held to ~10%, see bench_model_accuracy).
  EXPECT_GT(engine, 0);
  EXPECT_LT(std::abs(model - engine) / engine, 0.45)
      << "model " << model << " engine " << engine;
}

TEST_P(ModelEngineConsistency, ChosenDelaysDoNotBackfireOnTheEngine) {
  const dag::JobDag j = random_job(GetParam());
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile p = core::JobProfile::from(j, spec);
  const core::DelaySchedule sched = core::DelayCalculator(p).compute();
  const double stock = engine_jct(j, {}, 42);
  const double delayed = engine_jct(j, sched.delay, 42);
  // The planner may not always win on an uncalibrated job, but it must
  // never meaningfully hurt.
  EXPECT_LT(delayed, stock * 1.10)
      << "stock " << stock << " delayed " << delayed;
}

INSTANTIATE_TEST_SUITE_P(RandomJobs, ModelEngineConsistency,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110));

TEST(FabricStress, ManyRandomFlowsConserveBytesAndTerminate) {
  Rng rng(99);
  sim::Simulator sim;
  std::vector<BytesPerSec> nic(20);
  for (auto& b : nic) b = rng.uniform(10e6, 60e6);
  sim::NetworkFabric net(sim, std::move(nic), 1e9, /*group_penalty=*/0.8);
  double total = 0;
  int completions = 0;
  constexpr int kFlows = 400;
  for (int i = 0; i < kFlows; ++i) {
    const auto src = static_cast<sim::NodeId>(rng.uniform_int(0, 19));
    const auto dst = static_cast<sim::NodeId>(rng.uniform_int(0, 19));
    const double bytes = rng.uniform(1e5, 5e8);
    total += bytes;
    const Seconds at = rng.uniform(0.0, 30.0);
    sim.schedule_at(at, [&, src, dst, bytes, i] {
      net.start_flow({src, dst, bytes, i % 7, [&] { ++completions; }});
    });
  }
  sim.run();
  net.sync();
  EXPECT_EQ(completions, kFlows);
  EXPECT_NEAR(net.total_delivered(), total, total * 1e-6);
  EXPECT_EQ(net.active_flows(), 0u);
}

}  // namespace
}  // namespace ds
