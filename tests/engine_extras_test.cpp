#include <gtest/gtest.h>

#include "engine/job_run.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/units.h"
#include "workloads/workloads.h"

namespace ds::engine {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out, double skew = 0.0) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  s.task_skew = skew;
  return s;
}

dag::JobDag chain_job() {
  dag::JobDag j("chain");
  j.add_stage(mk("map", 6, 600_MB, 10_MBps, 300_MB));
  j.add_stage(mk("reduce", 6, 300_MB, 10_MBps, 50_MB));
  j.add_edge(0, 1);
  return j;
}

JobResult run(const dag::JobDag& dag, RunOptions opt = {},
              sim::ClusterSpec spec = sim::ClusterSpec::three_node()) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, 7);
  JobRun jr(cluster, dag, std::move(opt));
  jr.start();
  sim.run();
  EXPECT_TRUE(jr.finished());
  return jr.result();
}

// ---------- fault injection ----------

TEST(FaultInjection, NoFailuresMeansSingleAttempts) {
  const JobResult r = run(chain_job());
  for (const auto& t : r.tasks) EXPECT_EQ(t.attempts, 1);
}

TEST(FaultInjection, FailuresRetryAndStillComplete) {
  RunOptions opt;
  opt.task_failure_rate = 0.5;
  opt.seed = 3;
  const JobResult r = run(chain_job(), opt);
  int retries = 0;
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.attempts, 1);
    EXPECT_LE(t.attempts, opt.max_attempts);
    EXPECT_GE(t.finish, t.read_done);
    retries += t.attempts - 1;
  }
  EXPECT_GT(retries, 0);  // at 50% failure rate some task must have retried
}

TEST(FaultInjection, FailuresProlongTheJob) {
  RunOptions healthy;
  healthy.seed = 3;
  RunOptions faulty;
  faulty.seed = 3;
  faulty.task_failure_rate = 0.3;
  const JobResult r = run(chain_job(), faulty);
  ASSERT_FALSE(r.failed);  // this seed's aborts stay under max_attempts
  EXPECT_GT(r.jct, run(chain_job(), healthy).jct);
  EXPECT_GT(r.wasted_seconds(), 0.0);  // aborted attempts burned real time
}

TEST(FaultInjection, ExhaustedAttemptsFailTheJobTerminally) {
  // No "final attempt always succeeds" fiction: a task whose attempts abort
  // max_attempts times aborts the whole job, Spark-style.
  RunOptions opt;
  opt.task_failure_rate = 0.95;
  opt.max_attempts = 2;
  opt.seed = 9;
  const JobResult r = run(chain_job(), opt);
  ASSERT_TRUE(r.failed);
  EXPECT_FALSE(r.complete());
  EXPECT_LT(r.jct, 0);
  EXPECT_GT(r.failed_at, 0);
  EXPECT_NE(r.failure_reason.find("max_attempts"), std::string::npos);
  for (const auto& t : r.tasks) EXPECT_LE(t.attempts, 2);
}

TEST(FaultInjection, DeterministicAcrossRuns) {
  RunOptions opt;
  opt.task_failure_rate = 0.4;
  opt.seed = 11;
  const JobResult a = run(chain_job(), opt);
  const JobResult b = run(chain_job(), opt);
  EXPECT_DOUBLE_EQ(a.jct, b.jct);
  for (std::size_t i = 0; i < a.tasks.size(); ++i)
    EXPECT_EQ(a.tasks[i].attempts, b.tasks[i].attempts);
}

TEST(FaultInjection, RejectsInvalidConfigs) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  const dag::JobDag j = chain_job();
  RunOptions bad;
  bad.task_failure_rate = 1.5;
  EXPECT_THROW(JobRun(cluster, j, bad), CheckError);
  RunOptions agg;
  agg.task_failure_rate = 0.2;
  agg.plan.pipelined_shuffle = true;
  EXPECT_THROW(JobRun(cluster, j, agg), CheckError);
  sim::FaultInjector inj(cluster, {}, 1);
  RunOptions crashy;
  crashy.faults = &inj;
  crashy.plan.pipelined_shuffle = true;
  EXPECT_THROW(JobRun(cluster, j, crashy), CheckError);
  RunOptions neg;
  neg.max_stage_resubmissions = -1;
  EXPECT_THROW(JobRun(cluster, j, neg), CheckError);
}

// ---------- priority scheduling ----------

TEST(Priority, LowerPriorityValueWinsContendedSlots) {
  // Two parallel 6-task stages on 6 slots; priorities flipped so stage b
  // (submitted second) runs first.
  dag::JobDag j("pri");
  j.add_stage(mk("a", 6, 300_MB, 10_MBps, 0));
  j.add_stage(mk("b", 6, 300_MB, 10_MBps, 0));
  RunOptions opt;
  opt.plan.priority = {5, 1};
  const JobResult r = run(j, opt);
  EXPECT_LT(r.stages[1].finish, r.stages[0].finish);
}

TEST(Priority, DefaultZeroKeepsFifo) {
  dag::JobDag j("fifo");
  j.add_stage(mk("a", 6, 300_MB, 10_MBps, 0));
  j.add_stage(mk("b", 6, 300_MB, 10_MBps, 0));
  const JobResult r = run(j);
  EXPECT_LE(r.stages[0].first_launch, r.stages[1].first_launch);
}

TEST(Priority, CriticalPathFirstPrioritisesTheLongPath) {
  const auto dag = workloads::cosine_similarity();
  const auto spec = sim::ClusterSpec::paper_prototype();
  sched::CriticalPathFirstStrategy cpf;
  const auto plan = cpf.plan(dag, spec);
  // Stage 3 heads the long path {3,4}: it must outrank the slack stages.
  EXPECT_LT(plan.priority_for(2), plan.priority_for(0));
  EXPECT_LT(plan.priority_for(2), plan.priority_for(1));
  for (dag::StageId s = 0; s < dag.num_stages(); ++s)
    EXPECT_DOUBLE_EQ(plan.delay_for(s), 0.0);
}

TEST(Priority, CriticalPathFirstRegisteredInFactory) {
  const auto s = sched::make_strategy("CriticalPathFirst");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "CriticalPathFirst");
}

// ---------- multi-job execution (paper §6 extension) ----------

TEST(MultiJob, TwoJobsShareOneClusterAndBothFinish) {
  const dag::JobDag j1 = chain_job();
  const dag::JobDag j2 = chain_job();
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);

  RunOptions o1;
  o1.seed = 1;
  RunOptions o2;
  o2.seed = 2;
  JobRun a(cluster, j1, o1);
  JobRun b(cluster, j2, o2);
  a.start();
  sim.schedule_at(10.0, [&] { b.start(); });
  sim.run();

  ASSERT_TRUE(a.finished());
  ASSERT_TRUE(b.finished());
  // Contention: each job slower than it would be alone.
  sim::Simulator solo_sim;
  sim::Cluster solo_cluster(solo_sim, sim::ClusterSpec::three_node(), 7);
  JobRun solo(solo_cluster, j1, o1);
  solo.start();
  solo_sim.run();
  EXPECT_GT(a.result().jct, solo.result().jct);
}

TEST(MultiJob, DelayStagePlansHelpEachJobUnderContention) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  const auto w1 = workloads::cosine_similarity();
  const auto w2 = workloads::lda();

  auto run_pair = [&](bool use_ds) {
    sim::Simulator sim;
    sim::Cluster cluster(sim, spec, 42);
    RunOptions o1, o2;
    o1.seed = 1;
    o2.seed = 2;
    if (use_ds) {
      sched::DelayStageStrategy ds;
      o1.plan = ds.plan(w1, spec);
      o2.plan = ds.plan(w2, spec);
    }
    JobRun a(cluster, w1, o1);
    JobRun b(cluster, w2, o2);
    a.start();
    sim.schedule_at(60.0, [&] { b.start(); });
    sim.run();
    return std::max(a.result().jct, b.result().jct);
  };
  // DelayStage plans computed per job still help when jobs share a cluster.
  EXPECT_LT(run_pair(true), run_pair(false) * 1.05);
}

}  // namespace
}  // namespace ds::engine
