// Drift-closed-loop adaptive planning: mid-job replanning under crashes,
// the ReplanPolicy thrash guards, the calibration feedback loop, and the
// bit-identity contract when adaptation never fires (ctest label: faults).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/adaptive.h"
#include "core/calibration.h"
#include "core/delay_calculator.h"
#include "engine/job_run.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "util/check.h"
#include "util/units.h"

namespace ds::core {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  s.task_skew = 0.2;
  return s;
}

// Two parallel branches joining — parallel stages, so DelayStage actually
// plans nonzero delays and a replan has something to move.
dag::JobDag diamond() {
  dag::JobDag j("diamond");
  j.add_stage(mk("src", 6, 900_MB, 30_MBps, 900_MB));
  j.add_stage(mk("left", 6, 900_MB, 6_MBps, 300_MB));
  j.add_stage(mk("right", 6, 900_MB, 60_MBps, 300_MB));
  j.add_stage(mk("join", 6, 600_MB, 30_MBps, 0));
  j.add_edge(0, 1);
  j.add_edge(0, 2);
  j.add_edge(1, 3);
  j.add_edge(2, 3);
  return j;
}

// Three parallel branches with mixed resource profiles: the planner delays
// the cpu-heavy branch to interleave with the net-heavy fetch, and that
// stagger is sharply sensitive to the worker count — losing a node makes
// the original delays stale enough for a replan to win.
dag::JobDag fan() {
  dag::JobDag j("fan");
  j.add_stage(mk("src", 6, 600_MB, 60_MBps, 1.2_GB));
  j.add_stage(mk("net-heavy", 6, 1.2_GB, 60_MBps, 100_MB));
  j.add_stage(mk("cpu-heavy", 6, 300_MB, 3_MBps, 100_MB));
  j.add_stage(mk("mid", 6, 600_MB, 12_MBps, 100_MB));
  j.add_stage(mk("join", 6, 300_MB, 30_MBps, 0));
  j.add_edge(0, 1);
  j.add_edge(0, 2);
  j.add_edge(0, 3);
  j.add_edge(1, 4);
  j.add_edge(2, 4);
  j.add_edge(3, 4);
  return j;
}

dag::JobDag chain(int stages) {
  dag::JobDag j("chain");
  for (int i = 0; i < stages; ++i)
    j.add_stage(mk("s" + std::to_string(i), 4, 300_MB, 30_MBps, 300_MB));
  for (int i = 0; i + 1 < stages; ++i) j.add_edge(i, i + 1);
  return j;
}

engine::JobResult run_to_completion(sim::Cluster& cluster,
                                    const dag::JobDag& dag,
                                    engine::RunOptions opt) {
  engine::JobRun run(cluster, dag, std::move(opt));
  run.start();
  cluster.sim().run();
  EXPECT_TRUE(run.finished());
  return run.result();
}

// ---------- crash-triggered replanning ----------

TEST(AdaptiveReplan, CrashTriggersReplanAndJobCompletes) {
  const dag::JobDag dag = fan();
  const auto spec = sim::ClusterSpec::three_node();

  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, 7);
  const JobProfile profile = JobProfile::from(dag, spec);

  AdaptiveOptions aopt;
  aopt.replan.enabled = true;
  aopt.replan.cooldown = 0.0;
  aopt.replan.min_expected_gain = 0.0;
  aopt.replan.trigger_rel_error = 1e9;  // isolate the crash trigger
  AdaptivePlanner planner(profile, aopt);
  planner.plan();

  engine::RunOptions opt;
  opt.seed = 3;
  planner.arm(opt);

  // Kill a worker permanently, early — while downstream stages are still
  // pending, so the crash trigger finds delays it is allowed to rewrite.
  sim::FaultPlan fp;
  fp.crashes.push_back({cluster.worker(1), 5.0, -1});
  sim::FaultInjector inj(cluster, fp, opt.seed);
  opt.faults = &inj;
  inj.start();

  engine::JobRun run(cluster, dag, std::move(opt));
  run.start();
  sim.run();
  ASSERT_TRUE(run.finished());
  const engine::JobResult& r = run.result();
  EXPECT_TRUE(r.complete()) << r.failure_reason;
  EXPECT_GE(r.node_crashes, 1);
  // The crash snapshot reached the planner and the frozen-prefix replan was
  // adopted (the shrunk cluster makes the original delays stale).
  EXPECT_GE(r.replans, 1);
  EXPECT_LE(r.replans, aopt.replan.max_replans);
}

TEST(AdaptiveReplan, EngineRejectsArmedPolicyWithoutReplanner) {
  const dag::JobDag dag = chain(2);
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  engine::RunOptions opt;
  opt.replan.enabled = true;  // no replanner installed
  EXPECT_THROW(engine::JobRun(cluster, dag, std::move(opt)), CheckError);
}

// ---------- thrash guards ----------

TEST(AdaptiveReplan, MaxReplansCapsApplications) {
  // Every stage finish triggers drift (tiny predictions), and the replanner
  // always offers an "infinitely better" plan — applications must still stop
  // at max_replans.
  const dag::JobDag dag = chain(6);
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  engine::RunOptions opt;
  opt.seed = 3;
  opt.replan.enabled = true;
  opt.replan.max_replans = 2;
  opt.replan.cooldown = 0.0;
  opt.replan.min_expected_gain = 0.0;
  opt.replan.trigger_rel_error = 0.0;
  opt.predicted_durations.assign(6, 1e-6);  // everything "drifts"
  int calls = 0;
  opt.replanner = [&](const engine::ReplanRequest& req) {
    ++calls;
    engine::ReplanDecision d;
    d.apply = true;
    d.delay = req.plan->delay;
    d.delay.resize(6, 0.0);
    d.expected_gain = 1e9;
    return d;
  };
  const engine::JobResult r = run_to_completion(cluster, dag, std::move(opt));
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.replans, 2);
  // The cap gates *invocations* too: once spent, the planner is never
  // consulted again even though later stages keep drifting.
  EXPECT_EQ(calls, 2);
}

TEST(AdaptiveReplan, CooldownCapsAttemptRate) {
  // Same drifting chain, but one replan attempt per (huge) cooldown window:
  // the planner is invoked exactly once, even though it declined to apply.
  const dag::JobDag dag = chain(6);
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  engine::RunOptions opt;
  opt.seed = 3;
  opt.replan.enabled = true;
  opt.replan.max_replans = 100;
  opt.replan.cooldown = 1e9;
  opt.replan.trigger_rel_error = 0.0;
  opt.predicted_durations.assign(6, 1e-6);
  int calls = 0;
  opt.replanner = [&](const engine::ReplanRequest&) {
    ++calls;
    return engine::ReplanDecision{};  // decline — still an attempt
  };
  const engine::JobResult r = run_to_completion(cluster, dag, std::move(opt));
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.replans, 0);  // declined decisions apply nothing
}

// ---------- the calibration loop ----------

TEST(AdaptiveLoop, RecurrencesLearnThePerturbation) {
  // The planner's profile believes the network is 3× faster than the cluster
  // it runs on; recurrent observed runs must push the network factor up.
  const dag::JobDag dag = diamond();
  const auto spec = sim::ClusterSpec::three_node();
  JobProfile lying = JobProfile::from(dag, spec);
  lying.cluster.nic_bw *= 3.0;
  lying.cluster.storage_net_bw = 0;  // keep the lie on one term

  AdaptivePlanner planner(lying);
  for (int rec = 0; rec < 3; ++rec) {
    planner.plan();
    sim::Simulator sim;
    sim::Cluster cluster(sim, spec, 7);
    engine::RunOptions opt;
    opt.seed = 11;
    planner.arm(opt);
    const engine::JobResult r =
        run_to_completion(cluster, dag, std::move(opt));
    ASSERT_TRUE(r.complete());
    planner.observe(r);
  }
  const CalibrationFactors f = planner.factors();
  EXPECT_GT(f.observations, 0);
  EXPECT_GT(f.network, 1.2)
      << "observed fetches run ~3× the prediction; the factor must rise";
  // A later plan on the corrected profile predicts a slower (more truthful)
  // job than the lying profile did.
  const Seconds lied = DelayCalculator(lying).compute().predicted_makespan;
  const Seconds corrected = planner.plan().predicted_makespan;
  EXPECT_GT(corrected, lied);
}

// ---------- bit-identity when adaptation never fires ----------

TEST(AdaptiveLoop, DisabledAdaptationIsBitIdenticalToPlainPlanning) {
  const dag::JobDag dag = diamond();
  const auto spec = sim::ClusterSpec::three_node();
  const JobProfile profile = JobProfile::from(dag, spec);

  // Plain pre-adaptive pipeline.
  const DelaySchedule plain = DelayCalculator(profile).compute();
  sim::Simulator sim_a;
  sim::Cluster cluster_a(sim_a, spec, 7);
  engine::RunOptions oa;
  oa.seed = 11;
  oa.plan.delay = plain.delay;
  const engine::JobResult ra =
      run_to_completion(cluster_a, dag, std::move(oa));

  // Adaptive stack, identity calibration, replanning off.
  AdaptivePlanner planner(profile);
  const DelaySchedule& adaptive = planner.plan();
  ASSERT_EQ(adaptive.delay.size(), plain.delay.size());
  for (std::size_t i = 0; i < plain.delay.size(); ++i)
    EXPECT_EQ(adaptive.delay[i], plain.delay[i]);
  sim::Simulator sim_b;
  sim::Cluster cluster_b(sim_b, spec, 7);
  engine::RunOptions ob;
  ob.seed = 11;
  planner.arm(ob);
  const engine::JobResult rb =
      run_to_completion(cluster_b, dag, std::move(ob));

  EXPECT_EQ(ra.jct, rb.jct);  // bit-identical, not approximately equal
  EXPECT_EQ(rb.replans, 0);
  ASSERT_EQ(ra.stages.size(), rb.stages.size());
  for (std::size_t i = 0; i < ra.stages.size(); ++i) {
    EXPECT_EQ(ra.stages[i].submitted, rb.stages[i].submitted);
    EXPECT_EQ(ra.stages[i].finish, rb.stages[i].finish);
  }
}

TEST(AdaptiveLoop, ArmedButUntriggeredReplanningIsBitIdenticalToo) {
  // Replanning enabled with an untriggerable threshold: the run must be
  // bit-identical to one with the feature absent (zero replans when the
  // profile is accurate enough to stay under the drift bar).
  const dag::JobDag dag = diamond();
  const auto spec = sim::ClusterSpec::three_node();
  const JobProfile profile = JobProfile::from(dag, spec);

  const DelaySchedule plain = DelayCalculator(profile).compute();
  sim::Simulator sim_a;
  sim::Cluster cluster_a(sim_a, spec, 7);
  engine::RunOptions oa;
  oa.seed = 11;
  oa.plan.delay = plain.delay;
  const engine::JobResult ra =
      run_to_completion(cluster_a, dag, std::move(oa));

  AdaptiveOptions aopt;
  aopt.replan.enabled = true;
  aopt.replan.trigger_rel_error = 1e9;  // drift can never fire; no crashes
  AdaptivePlanner planner(profile, aopt);
  planner.plan();
  sim::Simulator sim_b;
  sim::Cluster cluster_b(sim_b, spec, 7);
  engine::RunOptions ob;
  ob.seed = 11;
  planner.arm(ob);
  const engine::JobResult rb =
      run_to_completion(cluster_b, dag, std::move(ob));

  EXPECT_EQ(ra.jct, rb.jct);
  EXPECT_EQ(rb.replans, 0);
}

}  // namespace
}  // namespace ds::core
