#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ds {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(6), 6);
  EXPECT_EQ(ThreadPool::resolve_threads(-3),
            ThreadPool::resolve_threads(0));
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(4);
  pool.parallel_for(ran.size(),
                    [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PerIndexSlotsMatchSequential) {
  // The contract the planner relies on: results written to per-index slots
  // followed by an index-order reduction are identical for every pool size.
  auto f = [](std::size_t i) { return static_cast<double>(i * i) + 0.5; };
  std::vector<double> expect(257);
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] = f(i);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<double> got(expect.size(), -1.0);
    pool.parallel_for(got.size(), [&](std::size_t i) { got[i] = f(i); });
    EXPECT_EQ(got, expect) << "pool size " << threads;
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The planner nests fan-outs (parallel restarts each scanning a candidate
  // grid). The caller participates in draining its own loop, so nesting on
  // one pool must always make progress, even with more tasks than workers.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Remaining indices were still consumed; the pool is reusable.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace ds
