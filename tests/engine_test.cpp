#include <gtest/gtest.h>

#include <algorithm>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/units.h"
#include "workloads/workloads.h"

namespace ds::engine {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out, double skew = 0.0) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  s.task_skew = skew;
  return s;
}

// Two-stage chain: a source reading from HDFS feeding one shuffle stage.
dag::JobDag chain_job(double skew = 0.0) {
  dag::JobDag j("chain");
  j.add_stage(mk("map", 6, 600_MB, 10_MBps, 300_MB, skew));
  j.add_stage(mk("reduce", 6, 300_MB, 10_MBps, 50_MB, skew));
  j.add_edge(0, 1);
  return j;
}

JobResult run(const dag::JobDag& dag, RunOptions opt = {},
              sim::ClusterSpec spec = sim::ClusterSpec::three_node(),
              std::uint64_t cluster_seed = 7) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, cluster_seed);
  JobRun jr(cluster, dag, std::move(opt));
  jr.start();
  sim.run();
  EXPECT_TRUE(jr.finished());
  return jr.result();
}

TEST(JobRun, CompletesAndRecordsAllTasks) {
  const dag::JobDag j = chain_job();
  const JobResult r = run(j);
  EXPECT_GT(r.jct, 0);
  ASSERT_EQ(r.tasks.size(), 12u);
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.launch, 0);
    EXPECT_GE(t.read_done, t.launch);
    EXPECT_GE(t.compute_done, t.read_done);
    EXPECT_GE(t.finish, t.compute_done);
    EXPECT_GE(t.node, 0);
  }
}

TEST(JobRun, StageRecordsAreConsistent) {
  const dag::JobDag j = chain_job();
  const JobResult r = run(j);
  for (const auto& s : r.stages) {
    EXPECT_GE(s.submitted, s.ready);
    EXPECT_GE(s.first_launch, s.submitted);
    EXPECT_GE(s.last_read_done, s.first_launch);
    EXPECT_GE(s.finish, s.last_read_done);
  }
  EXPECT_DOUBLE_EQ(r.jct, r.stages[1].finish);
}

TEST(JobRun, ChildWaitsForParent) {
  const dag::JobDag j = chain_job();
  const JobResult r = run(j);
  EXPECT_DOUBLE_EQ(r.stages[1].ready, r.stages[0].finish);
  EXPECT_GE(r.stages[1].first_launch, r.stages[0].finish);
}

TEST(JobRun, DelayPostponesSubmissionExactly) {
  const dag::JobDag j = chain_job();
  RunOptions opt;
  opt.plan.delay = {40.0, 25.0};
  const JobResult r = run(j, opt);
  EXPECT_NEAR(r.stages[0].submitted - r.stages[0].ready, 40.0, 1e-9);
  EXPECT_NEAR(r.stages[1].submitted - r.stages[1].ready, 25.0, 1e-9);
}

TEST(JobRun, DelayOnChainShiftsJctByTheDelay) {
  const dag::JobDag j = chain_job();
  const JobResult base = run(j);
  RunOptions opt;
  opt.plan.delay = {30.0, 0.0};
  const JobResult delayed = run(j, opt);
  EXPECT_NEAR(delayed.jct, base.jct + 30.0, 1.0);
}

TEST(JobRun, HomogeneousTasksFinishTogether) {
  dag::JobDag j("homog");
  j.add_stage(mk("only", 6, 600_MB, 10_MBps, 0, /*skew=*/0.0));
  const JobResult r = run(j);
  Seconds lo = 1e18, hi = 0;
  for (const auto& t : r.tasks) {
    lo = std::min(lo, t.finish);
    hi = std::max(hi, t.finish);
  }
  EXPECT_NEAR(lo, hi, 1.0);
}

TEST(JobRun, SkewSpreadsTaskDurations) {
  dag::JobDag j("skewed");
  j.add_stage(mk("only", 6, 600_MB, 10_MBps, 0, /*skew=*/0.5));
  const JobResult r = run(j);
  Seconds lo = 1e18, hi = 0;
  for (const auto& t : r.tasks) {
    lo = std::min(lo, t.finish - t.read_done);
    hi = std::max(hi, t.finish - t.read_done);
  }
  EXPECT_GT(hi, 1.5 * lo);
}

TEST(JobRun, SameSeedIsDeterministic) {
  const dag::JobDag j = chain_job(0.3);
  RunOptions a;
  a.seed = 5;
  RunOptions b;
  b.seed = 5;
  EXPECT_DOUBLE_EQ(run(j, a).jct, run(j, b).jct);
}

TEST(JobRun, DifferentSeedChangesSkewedRun) {
  const dag::JobDag j = chain_job(0.3);
  RunOptions a;
  a.seed = 5;
  RunOptions b;
  b.seed = 6;
  EXPECT_NE(run(j, a).jct, run(j, b).jct);
}

TEST(JobRun, SoloSourceReadGatedByStorageEgress) {
  // One single-task stage reading 100 MB from the lone storage node; no
  // compute, no write: duration ≈ volume / storage egress.
  dag::JobDag j("readonly");
  j.add_stage(mk("read", 1, 100_MB, 0, 0));
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  JobRun jr(cluster, j, {});
  jr.start();
  sim.run();
  const Seconds expected =
      100e6 / std::min(cluster.nic_bw(cluster.storage_node(0)),
                       cluster.nic_bw(jr.result().tasks[0].node));
  EXPECT_NEAR(jr.result().jct, expected, 0.5);
}

TEST(JobRun, ParallelStagesOverlapInStockPlan) {
  dag::JobDag j("par");
  j.add_stage(mk("a", 4, 400_MB, 5_MBps, 100_MB));
  j.add_stage(mk("b", 4, 400_MB, 5_MBps, 100_MB));
  const JobResult r = run(j);
  // Both submitted at t=0 and their executions overlap.
  EXPECT_DOUBLE_EQ(r.stages[0].submitted, 0.0);
  EXPECT_DOUBLE_EQ(r.stages[1].submitted, 0.0);
  EXPECT_LT(r.stages[0].first_launch, r.stages[1].finish);
  EXPECT_LT(r.stages[1].first_launch, r.stages[0].finish);
}

// A shuffle-heavy chain where AggShuffle's mechanism matters: small source
// read, long skew-spread map computes, and a large shuffle to the reducer.
dag::JobDag shuffle_heavy(double skew) {
  dag::JobDag j("shuffle-heavy");
  j.add_stage(mk("map", 6, 600_MB, 5_MBps, 3_GB, skew));
  j.add_stage(mk("reduce", 6, 3_GB, 50_MBps, 0, 0.0));
  j.add_edge(0, 1);
  return j;
}

TEST(JobRun, AggShuffleHelpsSkewedParent) {
  // Strongly skewed map stage: eager pushes overlap the stragglers' compute,
  // shortening the reduce stage's fetch.
  dag::JobDag j = shuffle_heavy(/*skew=*/0.6);
  RunOptions stock;
  stock.seed = 3;
  RunOptions agg;
  agg.seed = 3;
  agg.plan.pipelined_shuffle = true;
  const Seconds jct_stock = run(j, stock).jct;
  const Seconds jct_agg = run(j, agg).jct;
  EXPECT_LT(jct_agg, jct_stock);
}

TEST(JobRun, AggShuffleNeutralOnHomogeneousParent) {
  dag::JobDag j = shuffle_heavy(/*skew=*/0.0);
  RunOptions stock;
  RunOptions agg;
  agg.plan.pipelined_shuffle = true;
  const Seconds jct_stock = run(j, stock).jct;
  const Seconds jct_agg = run(j, agg).jct;
  // No variance to exploit: within a few percent either way.
  EXPECT_NEAR(jct_agg, jct_stock, 0.1 * jct_stock);
}

TEST(JobRun, OccupancyTracksHeldSlots) {
  dag::JobDag j = chain_job();
  RunOptions opt;
  opt.record_occupancy = true;
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  JobRun jr(cluster, j, opt);
  jr.start();
  sim.run();
  const auto& occ0 = jr.occupancy(0);
  ASSERT_FALSE(occ0.empty());
  double peak = 0;
  for (std::size_t i = 0; i < occ0.size(); ++i) peak = std::max(peak, occ0.value(i));
  EXPECT_GT(peak, 0);
  EXPECT_LE(peak, cluster.executors().total_slots());
}

TEST(JobRun, ResultBeforeFinishThrows) {
  dag::JobDag j = chain_job();
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  JobRun jr(cluster, j, {});
  EXPECT_THROW(jr.result(), CheckError);
  jr.start();
  EXPECT_THROW(jr.start(), CheckError);  // double start
  sim.run();
  EXPECT_NO_THROW(jr.result());
}

TEST(JobRun, BenchmarkWorkloadsCompleteOnPrototypeCluster) {
  for (const auto& wl : workloads::benchmark_suite()) {
    const JobResult r =
        run(wl.dag, {}, sim::ClusterSpec::paper_prototype(), 42);
    EXPECT_GT(r.jct, 100.0) << wl.name;
    EXPECT_LT(r.jct, 3000.0) << wl.name;
  }
}

}  // namespace
}  // namespace ds::engine
