#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace ds {
namespace {

TEST(Units, LiteralConversions) {
  EXPECT_DOUBLE_EQ(1_KB, 1e3);
  EXPECT_DOUBLE_EQ(10_MB, 1e7);
  EXPECT_DOUBLE_EQ(3_GB, 3e9);
  EXPECT_DOUBLE_EQ(100_Mbps, 100e6 / 8.0);
  EXPECT_DOUBLE_EQ(2_Gbps, 2e9 / 8.0);
  EXPECT_DOUBLE_EQ(80_MBps, 80e6);
  EXPECT_DOUBLE_EQ(to_MB(5_MB), 5.0);
  EXPECT_DOUBLE_EQ(to_Mbps(100_Mbps), 100.0);
  EXPECT_DOUBLE_EQ(to_MBps(32.9_MBps), 32.9);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_NO_THROW(DS_CHECK(1 + 1 == 2));
  try {
    DS_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBoundsAndMean) {
  Rng r(7);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.uniform(2.0, 4.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 4.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(5, 8);
    ASSERT_GE(v, 5);
    ASSERT_LE(v, 8);
    lo |= (v == 5);
    hi |= (v == 8);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, ss = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(10.0, 3.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / kN;
  const double var = ss / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(19);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng a(99);
  Rng c1 = a.fork();
  Rng a2(99);
  Rng c2 = a2.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("12345", v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(parse_u64("12x", v));
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("-3", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("-1e3", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Table, AlignsAndFormats) {
  TablePrinter t({"name", "jct"});
  t.set_precision(1);
  t.add_row({std::string("TriangleCount"), 780.25});
  t.add_row({std::string("LDA"), std::int64_t{420}});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("TriangleCount"), std::string::npos);
  EXPECT_NE(s.find("780.2"), std::string::npos);  // 780.25 at 1 digit (half-to-even)
  EXPECT_NE(s.find("420"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsMisshapenRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), CheckError);
}

TEST(Csv, QuotesSpecialCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

}  // namespace
}  // namespace ds
