// Invariants of the derived-analytics layer: interleaving timeline algebra,
// model-drift residuals, fleet aggregation, and the pinned report schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "core/stage_delayer.h"
#include "engine/job_run.h"
#include "obs/analytics/analytics.h"
#include "obs/analytics/report.h"
#include "obs/obs.h"
#include "sim/cluster.h"
#include "trace/replay.h"
#include "trace/synthetic.h"
#include "workloads/workloads.h"

namespace ds {
namespace {

using obs::analytics::DriftReport;
using obs::analytics::InterleavingReport;
using obs::analytics::WorkerInterleaving;

obs::TraceEvent task_span(const char* name, double start_s, double end_s,
                          std::int32_t pid) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = "task";
  ev.phase = 'X';
  ev.ts_us = start_s * 1e6;
  ev.dur_us = (end_s - start_s) * 1e6;
  ev.pid = pid;
  ev.tid = 0;
  return ev;
}

void expect_timeline_invariants(const WorkerInterleaving& w, Seconds horizon) {
  for (const auto* tl : {&w.network, &w.cpu, &w.disk}) {
    EXPECT_NEAR(tl->busy_seconds + tl->idle_seconds, horizon, 1e-9);
    EXPECT_GE(tl->busy_seconds, 0.0);
    EXPECT_GE(tl->idle_seconds, -1e-9);
    EXPECT_NEAR(tl->busy_fraction + tl->idle_fraction, 1.0, 1e-12);
    // Merged timeline is disjoint and ascending.
    for (std::size_t i = 0; i + 1 < tl->busy.size(); ++i)
      EXPECT_LT(tl->busy[i].end, tl->busy[i + 1].start);
  }
  EXPECT_LE(w.net_cpu_overlap,
            std::min(w.network.busy_seconds, w.cpu.busy_seconds) + 1e-9);
  EXPECT_GE(w.net_cpu_overlap, 0.0);
  EXPECT_LE(w.interleaving_score, 1.0 + 1e-12);
}

TEST(Interleaving, HandComputedOverlapAndFractions) {
  const std::int32_t pid = obs::kNodePidBase;
  std::vector<obs::TraceEvent> events = {
      task_span("fetch", 0, 10, pid),
      task_span("compute", 5, 15, pid),
      task_span("write", 15, 16, pid),
  };
  const InterleavingReport rep =
      obs::analytics::interleaving_from_spans(events, 20.0);
  ASSERT_EQ(rep.workers.size(), 1u);
  const WorkerInterleaving& w = rep.workers[0];
  EXPECT_EQ(w.pid, pid);
  EXPECT_DOUBLE_EQ(rep.horizon, 20.0);
  EXPECT_DOUBLE_EQ(w.network.busy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(w.network.idle_seconds, 10.0);
  EXPECT_DOUBLE_EQ(w.cpu.busy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(w.disk.busy_seconds, 1.0);
  EXPECT_DOUBLE_EQ(w.net_cpu_overlap, 5.0);     // [5, 10)
  EXPECT_DOUBLE_EQ(w.overlap_fraction, 0.5);    // 5 / min(10, 10)
  EXPECT_DOUBLE_EQ(w.interleaving_score, 0.25); // 5 / 20
  expect_timeline_invariants(w, rep.horizon);
  expect_timeline_invariants(rep.cluster, rep.horizon);
}

TEST(Interleaving, MergesOverlapsClipsAndCountsKilledSpans) {
  const std::int32_t pid = obs::kNodePidBase + 3;
  std::vector<obs::TraceEvent> events = {
      task_span("fetch", 0, 5, pid),
      task_span("fetch (killed)", 3, 8, pid),  // overlaps → merged [0, 8)
      task_span("compute", 9, 30, pid),        // clipped at horizon 10
      task_span("unrelated", 0, 10, pid),      // unknown name → ignored
  };
  // Non-task categories and planner-track pids are ignored.
  obs::TraceEvent stage = task_span("fetch", 0, 10, obs::kJobPid);
  events.push_back(stage);
  obs::TraceEvent planner = task_span("fetch", 0, 10, obs::kPlannerPid);
  events.push_back(planner);
  obs::TraceEvent other_cat = task_span("fetch", 0, 10, pid);
  other_cat.cat = "stage";
  events.push_back(other_cat);

  const InterleavingReport rep =
      obs::analytics::interleaving_from_spans(events, 10.0);
  ASSERT_EQ(rep.workers.size(), 1u);
  const WorkerInterleaving& w = rep.workers[0];
  EXPECT_DOUBLE_EQ(w.network.busy_seconds, 8.0);
  ASSERT_EQ(w.network.busy.size(), 1u);
  EXPECT_DOUBLE_EQ(w.cpu.busy_seconds, 1.0);  // [9, 10)
  EXPECT_DOUBLE_EQ(w.disk.busy_seconds, 0.0);
  expect_timeline_invariants(w, rep.horizon);
}

TEST(Interleaving, DefaultHorizonIsLastSpanEnd) {
  std::vector<obs::TraceEvent> events = {
      task_span("fetch", 0, 4, obs::kNodePidBase),
      task_span("compute", 2, 7, obs::kNodePidBase),
  };
  const InterleavingReport rep =
      obs::analytics::interleaving_from_spans(events);
  EXPECT_DOUBLE_EQ(rep.horizon, 7.0);
}

// Synthesize an engine JobResult that executes the planner's predicted
// timeline exactly.
engine::JobResult result_from_timeline(
    const std::vector<core::StageTimeline>& stages) {
  engine::JobResult r;
  r.jct = 0;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    engine::StageRecord rec;
    rec.stage = static_cast<dag::StageId>(i);
    rec.ready = stages[i].ready;
    rec.submitted = stages[i].submitted;
    rec.last_read_done = stages[i].read_done;
    rec.last_compute_done = stages[i].compute_done;
    rec.finish = stages[i].finish;
    r.jct = std::max(r.jct, rec.finish);
    r.stages.push_back(rec);
  }
  return r;
}

TEST(Drift, ZeroResidualsWhenActualsMatchTheModel) {
  const dag::JobDag dag = workloads::cosine_similarity();
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(dag, spec);
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, {}).compute();
  ASSERT_EQ(schedule.predicted_stages.size(),
            static_cast<std::size_t>(dag.num_stages()));

  const engine::JobResult actual =
      result_from_timeline(schedule.predicted_stages);
  const DriftReport rep = obs::analytics::model_drift(
      schedule.predicted_stages, schedule.delay, dag, actual);
  ASSERT_EQ(rep.stages.size(), actual.stages.size());
  for (const auto& s : rep.stages) {
    EXPECT_DOUBLE_EQ(s.network.residual(), 0.0);
    EXPECT_DOUBLE_EQ(s.compute.residual(), 0.0);
    EXPECT_DOUBLE_EQ(s.write.residual(), 0.0);
    EXPECT_DOUBLE_EQ(s.duration.residual(), 0.0);
    EXPECT_DOUBLE_EQ(s.duration.rel_error, 0.0);
  }
  EXPECT_DOUBLE_EQ(rep.network.max, 0.0);
  EXPECT_DOUBLE_EQ(rep.compute.max, 0.0);
  EXPECT_DOUBLE_EQ(rep.write.max, 0.0);
  EXPECT_TRUE(rep.within_bounds());
}

TEST(Drift, WarnsWhenActualsDriftPastThresholds) {
  const dag::JobDag dag = workloads::cosine_similarity();
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(dag, spec);
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, {}).compute();

  engine::JobResult actual = result_from_timeline(schedule.predicted_stages);
  // Double every stage's network phase: shifts read_done/compute_done/finish.
  for (auto& rec : actual.stages) {
    const Seconds net = rec.last_read_done - rec.submitted;
    rec.last_read_done += net;
    rec.last_compute_done += net;
    rec.finish += net;
  }
  const DriftReport rep = obs::analytics::model_drift(
      schedule.predicted_stages, schedule.delay, dag, actual);
  EXPECT_FALSE(rep.within_bounds());
  bool network_warning = false;
  for (const auto& w : rep.warnings)
    network_warning = network_warning || w.find("network term") == 0;
  EXPECT_TRUE(network_warning);
  EXPECT_GT(rep.network.p90, 0.0);
  // Compute durations were only shifted, not stretched.
  EXPECT_DOUBLE_EQ(rep.compute.max, 0.0);
}

TEST(Drift, SkipsUnfinishedStages) {
  const dag::JobDag dag = workloads::cosine_similarity();
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(dag, spec);
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, {}).compute();

  engine::JobResult actual = result_from_timeline(schedule.predicted_stages);
  actual.stages.back().finish = -1;  // never ran
  const DriftReport rep = obs::analytics::model_drift(
      schedule.predicted_stages, schedule.delay, dag, actual);
  EXPECT_EQ(rep.stages.size(), actual.stages.size() - 1);
}

TEST(PredictedStages, ExportMatchesFreshEvaluation) {
  const dag::JobDag dag = workloads::triangle_count();
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(dag, spec);
  core::CalculatorOptions copt;
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, copt).compute();

  const core::Evaluation ev =
      core::ScheduleEvaluator(profile, copt.slot).evaluate(schedule.delay);
  EXPECT_DOUBLE_EQ(schedule.predicted_makespan, ev.parallel_end);
  EXPECT_DOUBLE_EQ(schedule.predicted_jct, ev.jct);
  ASSERT_EQ(schedule.predicted_stages.size(), ev.stages.size());
  for (std::size_t i = 0; i < ev.stages.size(); ++i) {
    EXPECT_DOUBLE_EQ(schedule.predicted_stages[i].ready, ev.stages[i].ready);
    EXPECT_DOUBLE_EQ(schedule.predicted_stages[i].submitted,
                     ev.stages[i].submitted);
    EXPECT_DOUBLE_EQ(schedule.predicted_stages[i].read_done,
                     ev.stages[i].read_done);
    EXPECT_DOUBLE_EQ(schedule.predicted_stages[i].compute_done,
                     ev.stages[i].compute_done);
    EXPECT_DOUBLE_EQ(schedule.predicted_stages[i].finish,
                     ev.stages[i].finish);
  }
}

TEST(EndToEnd, EngineRunYieldsDriftAndInterleavingReports) {
  const dag::JobDag dag = workloads::cosine_similarity();
  const auto spec = sim::ClusterSpec::paper_prototype();
  const core::JobProfile profile = core::JobProfile::from(dag, spec);
  const core::DelaySchedule schedule =
      core::DelayCalculator(profile, {}).compute();

  obs::TracerOptions topt;
  topt.enabled = true;
  topt.ring_capacity = std::size_t{1} << 18;
  obs::Observability o(topt);
  sim::Simulator sim(&o);
  sim::Cluster cluster(sim, spec, 42, &o);
  engine::RunOptions opt;
  opt.plan = core::StageDelayer(schedule).plan();
  opt.seed = 42;
  opt.obs = &o;
  engine::JobRun run(cluster, dag, opt);
  run.start();
  while (!run.finished() && sim.step()) {
  }
  const engine::JobResult& r = run.result();
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(o.tracer.dropped(), 0u);

  const DriftReport drift = obs::analytics::model_drift(
      schedule.predicted_stages, schedule.delay, dag, r);
  EXPECT_EQ(drift.stages.size(), static_cast<std::size_t>(dag.num_stages()));
  for (const auto& s : drift.stages) {
    EXPECT_GT(s.duration.actual, 0.0);
    EXPECT_GT(s.duration.predicted, 0.0);
  }

  const InterleavingReport il = obs::analytics::interleaving(o.tracer, r.jct);
  EXPECT_DOUBLE_EQ(il.horizon, r.jct);
  ASSERT_FALSE(il.workers.empty());
  for (const auto& w : il.workers) expect_timeline_invariants(w, il.horizon);
  expect_timeline_invariants(il.cluster, il.horizon);
  EXPECT_GT(il.cluster.network.busy_seconds, 0.0);
  EXPECT_GT(il.cluster.cpu.busy_seconds, 0.0);
  EXPECT_GT(il.cluster.net_cpu_overlap, 0.0);
}

TEST(Fleet, AggregationMatchesReplayResult) {
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 60;
  topt.seed = 5;
  const auto jobs = trace::synthetic_trace(topt);

  trace::ReplayOptions opt;
  opt.strategy = "DelayStage";
  opt.cluster.num_workers = 40;
  opt.seed = 7;
  const trace::ReplayResult r = trace::replay(jobs, opt);
  const obs::analytics::FleetUtilization f =
      obs::analytics::fleet_utilization(r);
  EXPECT_EQ(f.jobs, r.jobs.size());
  EXPECT_DOUBLE_EQ(f.mean_jct_s, r.mean_jct());
  EXPECT_DOUBLE_EQ(f.mean_dedicated_s, r.mean_dedicated());
  EXPECT_DOUBLE_EQ(f.cluster_cpu_pct, r.mean_cpu_util());
  EXPECT_DOUBLE_EQ(f.cluster_net_pct, r.mean_net_util());
  EXPECT_DOUBLE_EQ(f.job_cpu_pct, r.mean_job_cpu_util());
  EXPECT_DOUBLE_EQ(f.job_net_pct, r.mean_job_net_util());
  EXPECT_NEAR(f.job_cpu_pct + f.job_cpu_idle_pct, 100.0, 1e-9);
  EXPECT_GE(f.job_cpu_p90, f.job_cpu_p50);
  // The planner injected real stagger somewhere in 60 jobs.
  EXPECT_GT(f.mean_planned_delay_s, 0.0);

  trace::ReplayOptions fuxi = opt;
  fuxi.strategy = "Fuxi";
  const obs::analytics::FleetUtilization f0 =
      obs::analytics::fleet_utilization(trace::replay(jobs, fuxi));
  EXPECT_DOUBLE_EQ(f0.mean_planned_delay_s, 0.0);
}

TEST(PercentBelow, HandComputed) {
  metrics::TimeSeries s;
  EXPECT_DOUBLE_EQ(obs::analytics::percent_below(s, 10.0), 0.0);
  for (double v : {5.0, 10.0, 15.0, 3.0}) s.push(s.size(), v);
  // Strictly below: 5 and 3 of four samples.
  EXPECT_DOUBLE_EQ(obs::analytics::percent_below(s, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(obs::analytics::percent_below(s, 100.0), 100.0);
}

// --- report schema -----------------------------------------------------------

obs::analytics::JobReport tiny_report() {
  using namespace obs::analytics;
  JobReport rep;
  rep.job = "tiny";
  rep.strategy = "DelayStage";
  rep.jct_s = 20;
  rep.predicted_makespan_s = 18;

  StageDrift s;
  s.stage = 0;
  s.name = "map";
  s.delay = 2;
  s.network = {4, 5, 0.1};
  s.compute = {8, 8, 0.0};
  s.write = {1, 1, 0.0};
  s.duration = {13, 14, 0.1};
  rep.drift.stages.push_back(s);
  rep.drift.duration.count = 1;
  rep.drift.duration.mean = 0.1;

  std::vector<obs::TraceEvent> events = {
      task_span("fetch", 0, 10, obs::kNodePidBase),
      task_span("compute", 5, 15, obs::kNodePidBase),
  };
  rep.interleaving = interleaving_from_spans(events, 20.0);
  return rep;
}

void expect_balanced(const std::string& text) {
  int braces = 0, brackets = 0;
  for (char c : text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportSchema, JobJsonHasPinnedKeysAndBalancedBraces) {
  std::ostringstream os;
  obs::analytics::write_json(os, tiny_report());
  const std::string json = os.str();
  for (const char* key :
       {"\"job\"", "\"strategy\"", "\"jct_s\"", "\"predicted_makespan_s\"",
        "\"drift\"", "\"stages\"", "\"network\"", "\"compute\"", "\"write\"",
        "\"duration\"", "\"predicted_s\"", "\"actual_s\"", "\"residual_s\"",
        "\"rel_error\"", "\"warnings\"", "\"interleaving\"", "\"horizon_s\"",
        "\"workers\"", "\"cluster\"", "\"busy_s\"", "\"idle_s\"",
        "\"busy_fraction\"", "\"idle_fraction\"", "\"overlap_s\"",
        "\"overlap_fraction\"", "\"interleaving_score\"", "\"delay_s\"",
        "\"p50\"", "\"p90\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  expect_balanced(json);
}

TEST(ReportSchema, FleetJsonHasPinnedKeysAndBalancedBraces) {
  obs::analytics::FleetReport fleet;
  fleet.trace = "synthetic";
  obs::analytics::FleetStrategyReport s;
  s.strategy = "Fuxi";
  s.util.jobs = 2;
  s.util.mean_jct_s = 10;
  s.jobs.push_back({0, 10, 8, 40, 30, 0});
  fleet.strategies.push_back(s);

  std::ostringstream os;
  obs::analytics::write_json(os, fleet);
  const std::string json = os.str();
  for (const char* key :
       {"\"trace\"", "\"strategies\"", "\"jobs\"", "\"mean_jct_s\"",
        "\"mean_dedicated_s\"", "\"cluster_cpu_pct\"", "\"job_cpu_pct\"",
        "\"job_cpu_idle_pct\"", "\"job_net_idle_pct\"", "\"job_cpu_p90\"",
        "\"mean_planned_delay_s\"", "\"jobs_detail\"", "\"planned_delay_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  expect_balanced(json);
}

TEST(ReportSchema, CsvSectionsAndHeaders) {
  std::ostringstream os;
  obs::analytics::write_csv(os, tiny_report());
  const std::string csv = os.str();
  EXPECT_EQ(csv.find("# drift\n"), 0u);
  EXPECT_NE(
      csv.find("job,strategy,stage,name,delay_s,term,predicted_s,actual_s,"
               "residual_s,rel_error\n"),
      std::string::npos);
  EXPECT_NE(csv.find("# interleaving\n"), std::string::npos);
  EXPECT_NE(csv.find("tiny,DelayStage,0,map,2,network,4,5,1,0.1"),
            std::string::npos);
}

TEST(ReportSchema, FilePickerUsesExtension) {
  const std::string base = ::testing::TempDir() + "analytics_report_test";
  const std::string csv_path = base + ".csv";
  const std::string json_path = base + ".json";
  ASSERT_TRUE(obs::analytics::write_report_file(csv_path, tiny_report()));
  ASSERT_TRUE(obs::analytics::write_report_file(json_path, tiny_report()));
  std::ifstream csv(csv_path), json(json_path);
  std::string csv_first, json_first;
  std::getline(csv, csv_first);
  std::getline(json, json_first);
  EXPECT_EQ(csv_first, "# drift");
  EXPECT_EQ(json_first, "{");
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

}  // namespace
}  // namespace ds
