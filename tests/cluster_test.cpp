#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "util/check.h"
#include "util/units.h"

namespace ds::sim {
namespace {

using namespace ds;  // literals

TEST(ClusterSpec, PaperPrototypeMatchesSection51) {
  const auto s = ClusterSpec::paper_prototype();
  EXPECT_EQ(s.num_workers, 30);
  EXPECT_EQ(s.executors_per_worker, 2);
  EXPECT_EQ(s.total_executors(), 60);
  EXPECT_EQ(s.num_storage_nodes, 3);
  EXPECT_DOUBLE_EQ(s.nic_bw_min, 100_Mbps);
  EXPECT_DOUBLE_EQ(s.nic_bw_max, 480_Mbps);
}

TEST(ClusterSpec, PaperSimulationMatchesSection53) {
  const auto s = ClusterSpec::paper_simulation();
  EXPECT_EQ(s.num_workers, 4000);
  EXPECT_DOUBLE_EQ(s.nic_bw_min, 100_Mbps);
  EXPECT_DOUBLE_EQ(s.nic_bw_max, 2.0_Gbps);
  EXPECT_DOUBLE_EQ(s.disk_bw, 80_MBps);
}

TEST(Cluster, NodeNumberingWorkersThenStorage) {
  Simulator sim;
  Cluster c(sim, ClusterSpec::three_node(), /*seed=*/1);
  EXPECT_EQ(c.num_workers(), 3);
  EXPECT_EQ(c.num_storage_nodes(), 1);
  EXPECT_EQ(c.worker(0), 0);
  EXPECT_EQ(c.worker(2), 2);
  EXPECT_EQ(c.storage_node(0), 3);
  EXPECT_TRUE(c.is_worker(2));
  EXPECT_FALSE(c.is_worker(3));
  EXPECT_THROW(c.worker(3), CheckError);
  EXPECT_THROW(c.storage_node(1), CheckError);
}

TEST(Cluster, NicBandwidthDrawnWithinSpecRange) {
  Simulator sim;
  const auto spec = ClusterSpec::paper_prototype();
  Cluster c(sim, spec, 42);
  for (int n = 0; n < c.total_nodes(); ++n) {
    EXPECT_GE(c.nic_bw(n), spec.nic_bw_min);
    EXPECT_LE(c.nic_bw(n), spec.nic_bw_max);
  }
}

TEST(Cluster, NicDrawIsSeedDeterministic) {
  Simulator s1, s2, s3;
  Cluster a(s1, ClusterSpec::paper_prototype(), 7);
  Cluster b(s2, ClusterSpec::paper_prototype(), 7);
  Cluster c(s3, ClusterSpec::paper_prototype(), 8);
  bool any_diff = false;
  for (int n = 0; n < a.total_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(a.nic_bw(n), b.nic_bw(n));
    any_diff |= (a.nic_bw(n) != c.nic_bw(n));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Cluster, ExecutorPoolSizedForWorkersOnly) {
  Simulator sim;
  Cluster c(sim, ClusterSpec::paper_prototype(), 1);
  EXPECT_EQ(c.executors().num_nodes(), 30);
  EXPECT_EQ(c.executors().total_slots(), 60);
}

TEST(Cluster, ComputeAccountingBracketsAndBounds) {
  Simulator sim;
  Cluster c(sim, ClusterSpec::three_node(), 1);
  EXPECT_EQ(c.computing(0), 0);
  c.begin_compute(0);
  c.begin_compute(0);
  EXPECT_EQ(c.computing(0), 2);
  EXPECT_THROW(c.begin_compute(0), CheckError);  // only 2 executors
  c.end_compute(0);
  c.end_compute(0);
  EXPECT_THROW(c.end_compute(0), CheckError);
  EXPECT_THROW(c.begin_compute(c.storage_node(0)), CheckError);
}

TEST(Cluster, DisksExistForAllNodesIncludingStorage) {
  Simulator sim;
  Cluster c(sim, ClusterSpec::paper_prototype(), 1);
  EXPECT_DOUBLE_EQ(c.disk(0).capacity(), c.spec().disk_bw);
  EXPECT_DOUBLE_EQ(c.disk(c.storage_node(2)).capacity(), c.spec().disk_bw);
}

}  // namespace
}  // namespace ds::sim
