#include <gtest/gtest.h>

#include <map>

#include "trace/alibaba.h"
#include "trace/stats.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "util/check.h"

namespace ds::trace {
namespace {

TraceJob two_stage_job() {
  TraceJob j;
  j.name = "j";
  TraceStage a;
  a.name = "M1";
  a.num_tasks = 10;
  a.read_solo = 20;
  a.compute_solo = 60;
  a.write_solo = 5;
  TraceStage b = a;
  b.name = "R2_1";
  b.parents = {0};
  j.stages = {a, b};
  return j;
}

TEST(TraceConversion, PreservesPhaseTimesThroughReferenceRates) {
  const TraceJob tj = two_stage_job();
  const ReferenceRates ref;
  const dag::JobDag j = to_job_dag(tj, ref);
  ASSERT_EQ(j.num_stages(), 2);
  // A 10-task stage can reach 10 NICs/disks at most: volumes are sized so
  // that running alone it drains in exactly the recorded solo times.
  const double net_capacity = 10 * ref.nic_bw;
  const double disk_capacity = 10 * ref.disk_bw;
  EXPECT_DOUBLE_EQ(j.stage(0).input_bytes / net_capacity, 20.0);
  EXPECT_DOUBLE_EQ(j.stage(0).output_bytes / disk_capacity, 5.0);
  // Compute work / usable executors == compute_solo.
  const double execs = std::min(10.0, ref.executors);
  EXPECT_NEAR(j.stage(0).input_bytes / j.stage(0).process_rate / execs, 60.0,
              1e-6);
  EXPECT_EQ(j.parents(1), (std::vector<dag::StageId>{0}));
}

TEST(TraceConversion, ComputeOnlyStageGetsPlaceholderVolume) {
  TraceJob tj;
  tj.name = "c";
  TraceStage s;
  s.name = "M1";
  s.num_tasks = 4;
  s.compute_solo = 100;
  tj.stages = {s};
  const dag::JobDag j = to_job_dag(tj);
  EXPECT_GT(j.stage(0).input_bytes, 0);
  EXPECT_GT(j.stage(0).process_rate, 0);
}

TEST(AlibabaParser, DecodesDagTaskNames) {
  const std::string csv =
      "M1,10,job_a,A,Terminated,100,200,100,0.5\n"
      "M2,5,job_a,A,Terminated,100,180,100,0.5\n"
      "R3_1_2,8,job_a,A,Terminated,200,300,100,0.5\n"
      "J4_3,2,job_a,A,Terminated,300,350,100,0.5\n";
  AlibabaParseStats st;
  const auto jobs = parse_batch_task_text(csv, &st);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(st.rows, 4u);
  EXPECT_EQ(st.bad_rows, 0u);
  const TraceJob& j = jobs[0];
  ASSERT_EQ(j.stages.size(), 4u);
  EXPECT_DOUBLE_EQ(j.submit_time, 100.0);
  EXPECT_TRUE(j.stages[0].parents.empty());
  EXPECT_EQ(j.stages[2].parents, (std::vector<int>{0, 1}));
  EXPECT_EQ(j.stages[3].parents, (std::vector<int>{2}));
  EXPECT_EQ(j.stages[2].num_tasks, 8);
  // Duration 100 s split into read/compute/write.
  EXPECT_NEAR(j.stages[2].read_solo + j.stages[2].compute_solo +
                  j.stages[2].write_solo,
              100.0, 1e-9);
}

TEST(AlibabaParser, KeepsIndependentTasksAsParentlessStages) {
  const std::string csv = "task_NKJzSmvg,3,job_b,A,Terminated,50,90,100,0.5\n";
  const auto jobs = parse_batch_task_text(csv);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].stages[0].parents.empty());
}

TEST(AlibabaParser, DropsIncompleteJobs) {
  const std::string csv =
      "M1,1,job_a,A,Terminated,100,200,100,0.5\n"
      "M1,1,job_b,A,Failed,0,0,100,0.5\n";  // no timestamps
  AlibabaParseStats st;
  const auto jobs = parse_batch_task_text(csv, &st);
  EXPECT_EQ(jobs.size(), 1u);
  EXPECT_EQ(st.jobs, 2u);
  EXPECT_EQ(st.dropped_jobs, 1u);
}

TEST(AlibabaParser, DropsCyclicAndDanglingJobs) {
  const std::string cyc =
      "M1_2,1,job_c,A,Terminated,10,20,100,0.5\n"
      "M2_1,1,job_c,A,Terminated,10,20,100,0.5\n";
  EXPECT_TRUE(parse_batch_task_text(cyc).empty());
  const std::string dangling = "R2_9,1,job_d,A,Terminated,10,20,100,0.5\n";
  EXPECT_TRUE(parse_batch_task_text(dangling).empty());
}

TEST(AlibabaParser, CountsMalformedRows) {
  const std::string csv =
      "garbage\n"
      "M1,1,job_a,A,Terminated,100,xyz,100,0.5\n"
      "M1,1,job_ok,A,Terminated,100,200,100,0.5\n";
  AlibabaParseStats st;
  const auto jobs = parse_batch_task_text(csv, &st);
  EXPECT_EQ(jobs.size(), 1u);
  EXPECT_EQ(st.bad_rows, 2u);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticTraceOptions opt;
  opt.num_jobs = 50;
  opt.seed = 9;
  const auto a = synthetic_trace(opt);
  const auto b = synthetic_trace(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stages.size(), b[i].stages.size());
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(Synthetic, MatchesPaperHeadlineStatistics) {
  SyntheticTraceOptions opt;
  opt.num_jobs = 2000;
  opt.seed = 3;
  const auto jobs = synthetic_trace(opt);
  const TraceStats st = analyze(jobs);
  // §2.1: 68.6% of jobs have parallel stages; parallel stages ≈79% of all
  // stages; 90% of jobs < 15 stages (Fig. 2); makespan share ≈82% (Fig. 3).
  EXPECT_NEAR(st.parallel_job_fraction(), 0.686, 0.06);
  EXPECT_NEAR(st.parallel_stage_fraction(), 0.79, 0.12);
  EXPECT_LT(st.stages_per_job.percentile(90), 16.0);
  EXPECT_GT(st.parallel_makespan_share.mean(), 60.0);
}

TEST(Synthetic, StageTimesWithinConfiguredRange) {
  SyntheticTraceOptions opt;
  opt.num_jobs = 100;
  opt.seed = 5;
  for (const auto& j : synthetic_trace(opt)) {
    for (const auto& s : j.stages) {
      const Seconds d = s.read_solo + s.compute_solo + s.write_solo;
      EXPECT_GE(d, opt.min_stage_time - 1e-6);
      EXPECT_LE(d, opt.max_stage_time + 1e-6);
      EXPECT_GT(s.compute_solo, 0);
    }
    EXPECT_GE(j.submit_time, 0);
    EXPECT_LE(j.submit_time, opt.horizon);
  }
}

TEST(Synthetic, SubmissionsSorted) {
  SyntheticTraceOptions opt;
  opt.num_jobs = 200;
  opt.seed = 1;
  const auto jobs = synthetic_trace(opt);
  for (std::size_t i = 1; i < jobs.size(); ++i)
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
}

TEST(Stats, ChainJobHasNoParallelShare) {
  TraceJob j;
  j.name = "chain";
  for (int i = 0; i < 3; ++i) {
    TraceStage s;
    s.name = "s";
    s.compute_solo = 50;
    if (i > 0) s.parents = {i - 1};
    j.stages.push_back(s);
  }
  const TraceStats st = analyze({j});
  EXPECT_EQ(st.jobs_with_parallel_stages, 0u);
  EXPECT_DOUBLE_EQ(critical_path_time(j), 150.0);
  EXPECT_DOUBLE_EQ(parallel_region_time(j), 0.0);
}

TEST(Stats, DiamondJobSplitsMakespan) {
  // a -> {b, c} -> d: K = {b, c}; critical path a + max(b,c) + d.
  TraceJob j;
  j.name = "diamond";
  auto mk = [](Seconds t) {
    TraceStage s;
    s.name = "s";
    s.compute_solo = t;
    return s;
  };
  j.stages = {mk(10), mk(40), mk(60), mk(20)};
  j.stages[1].parents = {0};
  j.stages[2].parents = {0};
  j.stages[3].parents = {1, 2};
  EXPECT_DOUBLE_EQ(critical_path_time(j), 90.0);
  EXPECT_DOUBLE_EQ(parallel_region_time(j), 60.0);
  const TraceStats st = analyze({j});
  EXPECT_EQ(st.total_parallel_stages, 2u);
  EXPECT_NEAR(st.parallel_makespan_share.mean(), 100.0 * 60 / 90, 1e-6);
}

TEST(AlibabaWriter, RoundTripsSyntheticTrace) {
  SyntheticTraceOptions opt;
  opt.num_jobs = 40;
  opt.seed = 77;
  const auto jobs = synthetic_trace(opt);
  AlibabaParseStats st;
  const auto back = parse_batch_task_text(write_batch_task_text(jobs), &st);
  EXPECT_EQ(st.dropped_jobs, 0u);
  ASSERT_EQ(back.size(), jobs.size());
  // Jobs come back keyed by name; compare structure per name.
  std::map<std::string, const TraceJob*> by_name;
  for (const auto& j : back) by_name[j.name] = &j;
  for (const auto& j : jobs) {
    ASSERT_TRUE(by_name.count(j.name)) << j.name;
    const TraceJob& b = *by_name[j.name];
    ASSERT_EQ(b.stages.size(), j.stages.size()) << j.name;
    EXPECT_NEAR(b.submit_time, j.submit_time, 1e-6);
    for (std::size_t k = 0; k < j.stages.size(); ++k) {
      EXPECT_EQ(b.stages[k].parents, j.stages[k].parents) << j.name;
      EXPECT_EQ(b.stages[k].num_tasks, j.stages[k].num_tasks);
      const Seconds dj = j.stages[k].read_solo + j.stages[k].compute_solo +
                         j.stages[k].write_solo;
      const Seconds db = b.stages[k].read_solo + b.stages[k].compute_solo +
                         b.stages[k].write_solo;
      EXPECT_NEAR(db, dj, 1e-6);
    }
  }
}

}  // namespace
}  // namespace ds::trace
