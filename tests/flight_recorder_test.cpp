// Flight recorder, streaming telemetry and SLO tracking — the live
// observability surface:
//  * the ring keeps the newest records and counts what it overwrote;
//  * dumps are versioned NDJSON every line of which parses and carries the
//    v1 schema;
//  * the DS_CHECK failure hook and terminal job failures auto-dump the
//    trail (the crash-forensics path);
//  * SLO rules parse, track quantiles per priority class, and raise
//    structured slo_violation events exactly on ok→violated transitions;
//  * the full sched stack (flight + telemetry + SLO) is bit-identical for
//    any planner thread count — the determinism contract the CLI documents.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "dag/serialize.h"
#include "service/scheduler.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/json.h"
#include "workloads/workloads.h"

namespace ds {
namespace {

obs::FlightRecorderOptions enabled_options(std::size_t capacity = 1 << 10) {
  obs::FlightRecorderOptions fopt;
  fopt.enabled = true;
  fopt.capacity = capacity;
  return fopt;
}

// A temp path that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  std::string slurp() const {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

 private:
  std::string path_;
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

// --- ring semantics --------------------------------------------------------

TEST(FlightRecorder, DisabledRecorderIsInert) {
  obs::FlightRecorder rec;  // default: disabled
  obs::FlightRecord r;
  r.kind = obs::FlightKind::kSubmit;
  rec.record(r);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_FALSE(rec.dump_now("nothing"));
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestRecords) {
  obs::FlightRecorder rec(enabled_options(/*capacity=*/8));
  for (int i = 0; i < 20; ++i) {
    obs::FlightRecord r;
    r.t = static_cast<double>(i);
    r.kind = obs::FlightKind::kMark;
    r.value = static_cast<double>(i);
    rec.record(r);
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  EXPECT_EQ(rec.size(), 8u);
  const auto trail = rec.snapshot();
  ASSERT_EQ(trail.size(), 8u);
  for (std::size_t i = 0; i < trail.size(); ++i) {
    EXPECT_DOUBLE_EQ(trail[i].value, 12.0 + static_cast<double>(i));
    EXPECT_EQ(trail[i].seq, 12u + i);  // seq survives the wrap
  }
}

TEST(FlightRecorder, InternDeduplicatesAndOutlivesCalls) {
  obs::FlightRecorder rec(enabled_options());
  const char* a = rec.intern(std::string("job-") + "7");
  const char* b = rec.intern("job-7");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "job-7");
}

// --- NDJSON schema ---------------------------------------------------------

TEST(FlightRecorder, NdjsonLinesCarryTheV1Schema) {
  obs::FlightRecorder rec(enabled_options());
  obs::FlightRecord submit;
  submit.t = 1.5;
  submit.kind = obs::FlightKind::kSubmit;
  submit.job = 3;
  submit.priority = 1;
  submit.queue_depth = 2;
  submit.occupancy = 0.25;
  submit.value = 10.0;
  rec.record(submit);
  obs::FlightRecord plan;
  plan.t = 2.0;
  plan.kind = obs::FlightKind::kPlan;
  plan.job = 3;
  plan.stage = 4;
  plan.label = rec.intern("lda");
  plan.cache = 1;
  rec.record(plan);

  std::ostringstream os;
  rec.write_ndjson(os);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);

  json::Value v;
  ASSERT_TRUE(json::parse(lines[0], &v).is_ok()) << lines[0];
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("v")->int_or(0), 1);
  EXPECT_EQ(v.find("ev")->str_or(""), "submit");
  EXPECT_EQ(v.find("job")->int_or(0), 3);
  EXPECT_EQ(v.find("priority")->int_or(-1), 1);
  EXPECT_DOUBLE_EQ(v.find("t")->num_or(0), 1.5);
  EXPECT_DOUBLE_EQ(v.find("queue_depth")->num_or(-1), 2.0);
  EXPECT_DOUBLE_EQ(v.find("occupancy")->num_or(-1), 0.25);
  EXPECT_EQ(v.find("seq")->int_or(-1), 0);

  ASSERT_TRUE(json::parse(lines[1], &v).is_ok()) << lines[1];
  EXPECT_EQ(v.find("ev")->str_or(""), "plan");
  EXPECT_EQ(v.find("stage")->int_or(-1), 4);
  EXPECT_EQ(v.find("label")->str_or(""), "lda");
  EXPECT_EQ(v.find("cache")->str_or(""), "hit");
}

TEST(FlightRecorder, EveryKindHasAStableSpelling) {
  for (int k = 0; k <= static_cast<int>(obs::FlightKind::kMark); ++k) {
    const char* s = obs::to_string(static_cast<obs::FlightKind>(k));
    ASSERT_NE(s, nullptr);
    EXPECT_GT(std::string(s).size(), 0u);
  }
  EXPECT_STREQ(obs::to_string(obs::FlightKind::kSloViolation),
               "slo_violation");
}

// --- crash / anomaly dumps -------------------------------------------------

TEST(FlightRecorder, DumpNowWritesHeaderPlusTrail) {
  TempFile out("flight_dump.ndjson");
  obs::FlightRecorderOptions fopt = enabled_options();
  fopt.dump_path = out.path();
  obs::FlightRecorder rec(fopt);
  obs::FlightRecord r;
  r.kind = obs::FlightKind::kAdmit;
  r.job = 1;
  rec.record(r);

  ASSERT_TRUE(rec.dump_now("unit-test"));
  const auto lines = lines_of(out.slurp());
  ASSERT_EQ(lines.size(), 2u);
  json::Value v;
  ASSERT_TRUE(json::parse(lines[0], &v).is_ok());
  EXPECT_EQ(v.find("ev")->str_or(""), "dump");
  EXPECT_EQ(v.find("reason")->str_or(""), "unit-test");
  EXPECT_EQ(v.find("recorded")->int_or(0), 1);
  ASSERT_TRUE(json::parse(lines[1], &v).is_ok());
  EXPECT_EQ(v.find("ev")->str_or(""), "admit");
}

TEST(FlightRecorder, CheckFailureTriggersTheCrashDump) {
  TempFile out("flight_crash.ndjson");
  obs::FlightRecorderOptions fopt = enabled_options();
  fopt.dump_path = out.path();
  obs::FlightRecorder rec(fopt);
  obs::install_crash_dump(&rec);
  obs::FlightRecord r;
  r.kind = obs::FlightKind::kGrant;
  r.job = 9;
  rec.record(r);

  EXPECT_THROW([] { DS_CHECK_MSG(false, "injected invariant violation"); }(),
               CheckError);
  obs::install_crash_dump(nullptr);

  const auto lines = lines_of(out.slurp());
  ASSERT_GE(lines.size(), 2u);
  json::Value v;
  ASSERT_TRUE(json::parse(lines[0], &v).is_ok());
  EXPECT_EQ(v.find("ev")->str_or(""), "dump");
  EXPECT_NE(v.find("reason")->str_or("").find("injected invariant"),
            std::string::npos);
}

TEST(FlightRecorder, JobFailureAutoDumpsThroughTheScheduler) {
  TempFile out("flight_fail.ndjson");
  obs::FlightRecorderOptions fopt = enabled_options();
  fopt.dump_path = out.path();
  obs::Observability obs(obs::TracerOptions{}, fopt);

  SchedulerOptions opt;
  opt.cluster = sim::ClusterSpec::paper_prototype();
  opt.cluster.num_workers = 6;
  opt.seed = 7;
  opt.obs = &obs;
  opt.task_failure_rate = 0.9;  // virtually guarantees exhausted attempts
  opt.max_attempts = 2;
  Scheduler sched(opt);
  sched.submit(workloads::lda(0.25));
  sched.drain();

  const FleetStats fs = sched.fleet();
  ASSERT_EQ(fs.failed, 1u) << "fault injection should fail the job";
  const auto lines = lines_of(out.slurp());
  ASSERT_GE(lines.size(), 2u);
  json::Value v;
  ASSERT_TRUE(json::parse(lines[0], &v).is_ok());
  EXPECT_EQ(v.find("ev")->str_or(""), "dump");
  EXPECT_NE(v.find("reason")->str_or("").find("job_failed"),
            std::string::npos);
  // The trail must contain the terminal fail event itself.
  bool saw_fail = false;
  for (const auto& line : lines) {
    ASSERT_TRUE(json::parse(line, &v).is_ok()) << line;
    if (v.find("ev")->str_or("") == "fail") saw_fail = true;
  }
  EXPECT_TRUE(saw_fail);
}

// --- SLO rules -------------------------------------------------------------

TEST(SloRules, ParseAcceptsTheDocumentedGrammar) {
  obs::SloRule r;
  ASSERT_TRUE(obs::parse_slo_rule("p99_slowdown<=2.5", &r).is_ok());
  EXPECT_EQ(r.metric, obs::SloMetric::kSlowdown);
  EXPECT_DOUBLE_EQ(r.quantile, 0.99);
  EXPECT_DOUBLE_EQ(r.threshold, 2.5);
  EXPECT_EQ(r.spec, "p99_slowdown<=2.5");

  ASSERT_TRUE(obs::parse_slo_rule("p50_jct<=120", &r).is_ok());
  EXPECT_EQ(r.metric, obs::SloMetric::kJct);
  EXPECT_DOUBLE_EQ(r.quantile, 0.50);

  ASSERT_TRUE(obs::parse_slo_rule("p99.9_queue_wait<=30", &r).is_ok());
  EXPECT_EQ(r.metric, obs::SloMetric::kQueueWait);
  EXPECT_NEAR(r.quantile, 0.999, 1e-12);

  ASSERT_TRUE(obs::parse_slo_rule("p90_plan_latency<=0.5", &r).is_ok());
  EXPECT_EQ(r.metric, obs::SloMetric::kPlanLatency);

  for (const char* bad :
       {"", "p99_slowdown", "p99_slowdown<=", "p0_jct<=1", "p100_jct<=1",
        "q99_jct<=1", "p99_widgets<=1", "p99_jct<=-4", "p99_jct<=nope"}) {
    EXPECT_FALSE(obs::parse_slo_rule(bad, &r).is_ok()) << bad;
  }
}

TEST(SloTracker, ViolationFiresOnceOnTheTransition) {
  obs::FlightRecorder rec(enabled_options());
  obs::Observability obs;
  obs::SloOptions sopt;
  obs::SloRule rule;
  ASSERT_TRUE(obs::parse_slo_rule("p50_jct<=10", &rule).is_ok());
  sopt.rules.push_back(rule);
  obs::SloTracker tracker(sopt, &obs, &rec);

  tracker.observe_finish(/*priority=*/0, /*jct=*/5.0, /*slowdown=*/1.0);
  tracker.evaluate(1.0);
  EXPECT_FALSE(tracker.violated(0));
  EXPECT_EQ(tracker.violations(), 0u);

  // Push the median over the threshold: three slow completions.
  for (int i = 0; i < 3; ++i)
    tracker.observe_finish(0, 100.0, 10.0);
  tracker.evaluate(2.0);
  EXPECT_TRUE(tracker.violated(0));
  EXPECT_EQ(tracker.violations(), 1u);
  tracker.evaluate(3.0);  // still violated: no second event
  EXPECT_EQ(tracker.violations(), 1u);
  EXPECT_EQ(obs.metrics.counter("slo.violations").value(), 1u);
  EXPECT_GT(obs.metrics.gauge("slo.p50_jct<=10").value(), 10.0);

  const auto trail = rec.snapshot();
  int slo_events = 0;
  for (const auto& r : trail)
    if (r.kind == obs::FlightKind::kSloViolation) {
      ++slo_events;
      EXPECT_GT(r.value, 10.0);
      EXPECT_DOUBLE_EQ(r.aux, 10.0);
      EXPECT_STREQ(r.label, "p50_jct<=10");
    }
  EXPECT_EQ(slo_events, 1);

  std::ostringstream os;
  tracker.write_ndjson(os, 3.0);
  json::Value v;
  ASSERT_TRUE(json::parse(os.str(), &v).is_ok()) << os.str();
  EXPECT_EQ(v.find("ev")->str_or(""), "slo");
  EXPECT_EQ(v.find("violations")->int_or(0), 1);
}

TEST(SloTracker, SketchesMergeAcrossPriorityClasses) {
  obs::SloOptions sopt;  // no rules: tracker still answers queries
  obs::SloTracker tracker(sopt, nullptr, nullptr);
  tracker.observe_finish(0, 10.0, 1.0);
  tracker.observe_finish(1, 20.0, 2.0);
  tracker.observe_finish(2, 30.0, 3.0);
  const obs::QuantileSketch jct = tracker.merged(obs::SloMetric::kJct);
  EXPECT_EQ(jct.count(), 3u);
  EXPECT_DOUBLE_EQ(jct.min(), 10.0);
  EXPECT_DOUBLE_EQ(jct.max(), 30.0);
}

// --- full-stack determinism ------------------------------------------------

struct ObsOutputs {
  std::string flight;
  std::string telemetry;
  std::string stats;
};

// The whole live-observability surface for one fleet run: flight trail,
// telemetry stream (wall-clock prefixes excluded, like the sched CLI), and
// the stats line.
ObsOutputs run_fleet_with_obs(int threads) {
  obs::Observability obs(obs::TracerOptions{}, enabled_options());
  std::ostringstream telemetry_out;
  obs::TelemetryOptions topt;
  topt.exclude_prefixes = {"planner.", "tracer."};
  obs::TelemetrySink telemetry(telemetry_out, topt);

  SchedulerOptions opt;
  opt.cluster = sim::ClusterSpec::paper_prototype();
  opt.cluster.num_workers = 6;
  opt.seed = 7;
  opt.threads = threads;
  opt.obs = &obs;
  opt.telemetry = &telemetry;
  opt.telemetry_period = 25.0;
  obs::SloRule rule;
  DS_CHECK(obs::parse_slo_rule("p99_slowdown<=1.5", &rule).is_ok());
  opt.slo.push_back(rule);
  Scheduler sched(opt);

  const auto suite = workloads::benchmark_suite(0.25);
  for (std::size_t i = 0; i < 6; ++i)
    sched.submit_at(30.0 * static_cast<double>(i), suite[i % suite.size()].dag,
                    static_cast<int>(i % 2));
  sched.drain();

  ObsOutputs out;
  std::ostringstream flight_os;
  obs.flight.write_ndjson(flight_os);
  out.flight = flight_os.str();
  out.telemetry = telemetry_out.str();
  std::ostringstream stats_os;
  sched.write_stats(stats_os);
  out.stats = stats_os.str();
  return out;
}

TEST(ObsDeterminism, FlightTelemetryAndStatsAreBitIdenticalAcrossThreads) {
  const ObsOutputs ref = run_fleet_with_obs(1);
  EXPECT_FALSE(ref.flight.empty());
  EXPECT_FALSE(ref.telemetry.empty());
  // Every line of every stream parses as v1 NDJSON.
  json::Value v;
  for (const auto& line : lines_of(ref.flight + ref.telemetry + ref.stats)) {
    ASSERT_TRUE(json::parse(line, &v).is_ok()) << line;
    EXPECT_EQ(v.find("v")->int_or(0), 1) << line;
  }
  for (const int threads : {2, 8}) {
    const ObsOutputs alt = run_fleet_with_obs(threads);
    EXPECT_EQ(ref.flight, alt.flight) << "threads=" << threads;
    EXPECT_EQ(ref.telemetry, alt.telemetry) << "threads=" << threads;
    EXPECT_EQ(ref.stats, alt.stats) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ds
