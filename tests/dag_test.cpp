#include <gtest/gtest.h>

#include <algorithm>

#include "dag/job.h"
#include "util/check.h"
#include "util/units.h"

namespace ds::dag {
namespace {

using namespace ds;  // literals

Stage mk(const std::string& name) {
  Stage s;
  s.name = name;
  s.num_tasks = 4;
  s.input_bytes = 1_GB;
  s.process_rate = 50_MBps;
  s.output_bytes = 500_MB;
  return s;
}

// The ALS job of paper Fig. 1: six stages; 1 || 2; 3 || {1, 2, 4}.
JobDag als_shape() {
  JobDag j("als");
  for (int i = 1; i <= 6; ++i) j.add_stage(mk("s" + std::to_string(i)));
  j.add_edge(0, 3);  // 1 -> 4
  j.add_edge(1, 3);  // 2 -> 4
  j.add_edge(2, 4);  // 3 -> 5
  j.add_edge(3, 4);  // 4 -> 5
  j.add_edge(4, 5);  // 5 -> 6
  return j;
}

TEST(JobDag, TopoOrderRespectsEdges) {
  const JobDag j = als_shape();
  const auto topo = j.topo_order();
  ASSERT_EQ(topo.size(), 6u);
  auto pos = [&](StageId s) {
    return std::find(topo.begin(), topo.end(), s) - topo.begin();
  };
  EXPECT_LT(pos(0), pos(3));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(3), pos(4));
  EXPECT_LT(pos(2), pos(4));
  EXPECT_LT(pos(4), pos(5));
}

TEST(JobDag, DetectsCycle) {
  JobDag j("cyclic");
  j.add_stage(mk("a"));
  j.add_stage(mk("b"));
  j.add_edge(0, 1);
  j.add_edge(1, 0);
  EXPECT_THROW(j.topo_order(), CheckError);
}

TEST(JobDag, AncestorRelationIsTransitive) {
  const JobDag j = als_shape();
  EXPECT_TRUE(j.is_ancestor(0, 3));
  EXPECT_TRUE(j.is_ancestor(0, 4));
  EXPECT_TRUE(j.is_ancestor(0, 5));
  EXPECT_TRUE(j.is_ancestor(2, 5));
  EXPECT_FALSE(j.is_ancestor(3, 0));
  EXPECT_FALSE(j.is_ancestor(0, 1));
  EXPECT_FALSE(j.is_ancestor(0, 2));
}

TEST(JobDag, ParallelRelationMatchesFig1) {
  const JobDag j = als_shape();
  // "Stage 1 runs in parallel with Stage 2, and Stage 3 is executed in
  // parallel with Stage 1, Stage 2, and Stage 4."
  EXPECT_TRUE(j.can_run_in_parallel(0, 1));
  EXPECT_TRUE(j.can_run_in_parallel(2, 0));
  EXPECT_TRUE(j.can_run_in_parallel(2, 1));
  EXPECT_TRUE(j.can_run_in_parallel(2, 3));
  EXPECT_FALSE(j.can_run_in_parallel(0, 3));
  EXPECT_FALSE(j.can_run_in_parallel(4, 2));
  EXPECT_FALSE(j.can_run_in_parallel(3, 3));
}

TEST(JobDag, ParallelStageSetAndSequentialComplement) {
  const JobDag j = als_shape();
  EXPECT_EQ(j.parallel_stage_set(), (std::vector<StageId>{0, 1, 2, 3}));
  EXPECT_EQ(j.sequential_stages(), (std::vector<StageId>{4, 5}));
}

TEST(JobDag, PureChainHasNoParallelStages) {
  JobDag j("chain");
  for (int i = 0; i < 4; ++i) j.add_stage(mk("c" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) j.add_edge(i, i + 1);
  EXPECT_TRUE(j.parallel_stage_set().empty());
  EXPECT_EQ(j.sequential_stages().size(), 4u);
}

TEST(JobDag, SourcesAndSinks) {
  const JobDag j = als_shape();
  EXPECT_EQ(j.sources(), (std::vector<StageId>{0, 1, 2}));
  EXPECT_EQ(j.sinks(), (std::vector<StageId>{5}));
}

TEST(JobDag, DuplicateEdgesIgnored) {
  JobDag j("dup");
  j.add_stage(mk("a"));
  j.add_stage(mk("b"));
  j.add_edge(0, 1);
  j.add_edge(0, 1);
  EXPECT_EQ(j.children(0).size(), 1u);
  EXPECT_EQ(j.parents(1).size(), 1u);
}

TEST(JobDag, RejectsInvalidConstruction) {
  JobDag j("bad");
  j.add_stage(mk("a"));
  EXPECT_THROW(j.add_edge(0, 0), CheckError);
  EXPECT_THROW(j.add_edge(0, 7), CheckError);
  Stage s = mk("zero-tasks");
  s.num_tasks = 0;
  EXPECT_THROW(j.add_stage(s), CheckError);
}

TEST(Stage, DerivedPerTaskQuantities) {
  Stage s = mk("x");
  s.num_tasks = 8;
  s.input_bytes = 4_GB;
  s.output_bytes = 2_GB;
  s.process_rate = 100_MBps;
  EXPECT_DOUBLE_EQ(s.input_per_task(), 500e6);
  EXPECT_DOUBLE_EQ(s.output_per_task(), 250e6);
  EXPECT_DOUBLE_EQ(s.compute_per_task(), 5.0);
}

TEST(JobDag, GrowingDagInvalidatesAnalysis) {
  JobDag j("grow");
  j.add_stage(mk("a"));
  j.add_stage(mk("b"));
  EXPECT_EQ(j.parallel_stage_set().size(), 2u);  // two isolated stages
  j.add_edge(0, 1);                              // now a chain
  EXPECT_TRUE(j.parallel_stage_set().empty());
}

}  // namespace
}  // namespace ds::dag
