#include <gtest/gtest.h>

#include "trace/replay.h"
#include "trace/synthetic.h"

namespace ds::trace {
namespace {

TraceJob simple_job(Seconds submit, Seconds compute = 100) {
  TraceJob j;
  j.name = "j" + std::to_string(static_cast<int>(submit));
  j.submit_time = submit;
  TraceStage a;
  a.name = "M1";
  a.num_tasks = 50;
  a.read_solo = 20;
  a.compute_solo = compute;
  a.write_solo = 5;
  TraceStage b = a;
  b.name = "R2_1";
  b.parents = {0};
  j.stages = {a, b};
  return j;
}

TEST(Replay, LoneJobRunsAtDedicatedSpeed) {
  ReplayOptions opt;
  opt.seed = 1;
  const ReplayResult r = replay({simple_job(0)}, opt);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_NEAR(r.jobs[0].jct, r.jobs[0].dedicated_time, 1e-6);
  EXPECT_GT(r.jobs[0].dedicated_time, 200.0);  // two stages of ~125 s
}

// A cluster small enough that two concurrent jobs saturate it.
ReplayOptions tiny_cluster() {
  ReplayOptions opt;
  opt.cluster.num_workers = 2;
  opt.cluster.executors_per_worker = 2;
  opt.machines_per_job = 2;
  return opt;
}

TEST(Replay, OverlappingJobsDilateEachOtherWhenSaturated) {
  const auto jobs = std::vector<TraceJob>{simple_job(0), simple_job(0)};
  ReplayOptions opt = tiny_cluster();
  opt.seed = 1;
  const ReplayResult r = replay(jobs, opt);
  // Two identical jobs saturating the cluster: both dilate noticeably and
  // never beat their dedicated times.
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.jct, j.dedicated_time - 1e-6);
    EXPECT_GT(j.jct, 1.2 * j.dedicated_time);
    EXPECT_LE(j.jct, 2.0 * j.dedicated_time + 1e-3);
  }
}

TEST(Replay, UnderloadedClusterDoesNotDilate) {
  // The default 4000-machine cluster barely notices two small jobs.
  const auto jobs = std::vector<TraceJob>{simple_job(0), simple_job(0)};
  ReplayOptions opt;
  opt.seed = 1;
  const ReplayResult r = replay(jobs, opt);
  for (const auto& j : r.jobs) EXPECT_NEAR(j.jct, j.dedicated_time, 1e-3);
}

TEST(Replay, DisjointJobsDoNotInterfere) {
  const auto jobs = std::vector<TraceJob>{simple_job(0), simple_job(5000)};
  ReplayOptions opt;
  opt.seed = 1;
  const ReplayResult r = replay(jobs, opt);
  for (const auto& j : r.jobs) EXPECT_NEAR(j.jct, j.dedicated_time, 1e-6);
}

TEST(Replay, PartialOverlapDilatesOnlyTheSharedWindow) {
  // Job B arrives partway through job A's run on a saturated cluster.
  const auto jobs = std::vector<TraceJob>{simple_job(0), simple_job(125)};
  ReplayOptions opt = tiny_cluster();
  opt.seed = 1;
  const ReplayResult r = replay(jobs, opt);
  const double rd = r.jobs[0].dedicated_time;
  ASSERT_GT(rd, 125.0);
  // A runs solo for 125 s, then shares: somewhere between no dilation and
  // full 2× dilation of the remainder.
  EXPECT_GT(r.jobs[0].jct, rd);
  EXPECT_LE(r.jobs[0].jct, 125.0 + 2.0 * (rd - 125.0) + 1.0);
}

TEST(Replay, UtilizationSeriesBounded) {
  SyntheticTraceOptions sopt;
  sopt.num_jobs = 80;
  sopt.horizon = 24 * 3600;
  sopt.seed = 11;
  const auto jobs = synthetic_trace(sopt);
  ReplayOptions opt;
  opt.seed = 2;
  const ReplayResult r = replay(jobs, opt);
  for (const auto& ts : {&r.cluster_cpu, &r.cluster_net, &r.machine_cpu,
                         &r.machine_net}) {
    ASSERT_FALSE(ts->empty());
    EXPECT_GE(ts->summarize().min, 0.0);
    EXPECT_LE(ts->summarize().max, 100.0 + 1e-9);
  }
  for (const auto& j : r.jobs) {
    EXPECT_GT(j.jct, 0);
    EXPECT_GE(j.jct, j.dedicated_time - 1e-6);  // sharing never speeds up
  }
}

TEST(Replay, DelayStageReducesMeanJctVsFuxi) {
  SyntheticTraceOptions sopt;
  sopt.num_jobs = 60;
  sopt.horizon = 12 * 3600;
  sopt.seed = 21;
  const auto jobs = synthetic_trace(sopt);

  ReplayOptions fuxi;
  fuxi.strategy = "Fuxi";
  fuxi.seed = 3;
  ReplayOptions ds;
  ds.strategy = "DelayStage";
  ds.seed = 3;
  const double jct_fuxi = replay(jobs, fuxi).mean_jct();
  const double jct_ds = replay(jobs, ds).mean_jct();
  EXPECT_LT(jct_ds, jct_fuxi);
}

TEST(Replay, DelayStageRaisesUtilization) {
  SyntheticTraceOptions sopt;
  sopt.num_jobs = 60;
  sopt.horizon = 12 * 3600;
  sopt.seed = 23;
  const auto jobs = synthetic_trace(sopt);
  ReplayOptions fuxi;
  fuxi.seed = 3;
  ReplayOptions ds;
  ds.strategy = "DelayStage";
  ds.seed = 3;
  const ReplayResult rf = replay(jobs, fuxi);
  const ReplayResult rd = replay(jobs, ds);
  EXPECT_GT(rd.mean_cpu_util(), rf.mean_cpu_util() * 0.95);
}

TEST(Replay, AllVariantsComplete) {
  SyntheticTraceOptions sopt;
  sopt.num_jobs = 30;
  sopt.seed = 31;
  const auto jobs = synthetic_trace(sopt);
  for (const char* strat : {"Fuxi", "DelayStage", "random DelayStage",
                            "ascending DelayStage"}) {
    ReplayOptions opt;
    opt.strategy = strat;
    opt.seed = 4;
    const ReplayResult r = replay(jobs, opt);
    EXPECT_EQ(r.jobs.size(), jobs.size()) << strat;
    EXPECT_GT(r.mean_jct(), 0) << strat;
  }
}

}  // namespace
}  // namespace ds::trace
