// ds::CommonOptions: the one place 0-means-auto thread counts are resolved,
// plus the back-compat option spellings (inherited threads/seed fields and
// the legacy trailing-seed overloads).
#include <gtest/gtest.h>

#include <thread>

#include "core/delay_calculator.h"
#include "core/options.h"
#include "core/profile.h"
#include "sim/cluster.h"
#include "trace/replay.h"
#include "trace/synthetic.h"
#include "workloads/workloads.h"

namespace ds {
namespace {

TEST(CommonOptions, ResolvedThreadsNormalizesZeroAndNegative) {
  CommonOptions opt;
  opt.threads = 5;
  EXPECT_EQ(opt.resolved_threads(), 5);
  const int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  opt.threads = 0;
  EXPECT_EQ(opt.resolved_threads(), hw);
  opt.threads = -3;
  EXPECT_EQ(opt.resolved_threads(), hw);
}

TEST(CommonOptions, DerivedStructsInheritTheSharedFields) {
  // The pre-refactor spellings must keep compiling: threads/seed now live in
  // the CommonOptions base, and common() exposes the base for shared helpers.
  core::CalculatorOptions copt;
  copt.threads = 3;
  copt.seed = 9;
  copt.obs = nullptr;
  EXPECT_EQ(copt.common().threads, 3);
  EXPECT_EQ(copt.common().seed, 9u);
  copt.common().threads = 4;
  EXPECT_EQ(copt.threads, 4);

  trace::ReplayOptions ropt;
  ropt.threads = 2;
  EXPECT_EQ(ropt.resolved_threads(), 2);
  trace::SyntheticTraceOptions topt;
  topt.seed = 77;
  EXPECT_EQ(topt.common().seed, 77u);
}

TEST(CommonOptions, SyntheticTraceLegacySeedOverloadMatches) {
  trace::SyntheticTraceOptions opt;
  opt.num_jobs = 50;
  opt.seed = 123;
  const auto via_options = trace::synthetic_trace(opt);
  const auto via_legacy = trace::synthetic_trace(opt, 123);
  ASSERT_EQ(via_options.size(), via_legacy.size());
  for (std::size_t i = 0; i < via_options.size(); ++i) {
    EXPECT_EQ(via_options[i].submit_time, via_legacy[i].submit_time);
    ASSERT_EQ(via_options[i].stages.size(), via_legacy[i].stages.size());
  }
  // And the trailing seed must win over whatever the struct carries.
  opt.seed = 1;
  const auto overridden = trace::synthetic_trace(opt, 123);
  EXPECT_EQ(overridden[0].submit_time, via_options[0].submit_time);
}

TEST(CommonOptions, ReplayLegacySeedOverloadMatches) {
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 30;
  topt.seed = 5;
  const auto jobs = trace::synthetic_trace(topt);
  trace::ReplayOptions ropt;
  ropt.cluster.num_workers = 20;
  ropt.seed = 11;
  const auto via_options = trace::replay(jobs, ropt);
  const auto via_legacy = trace::replay(jobs, ropt, 11);
  EXPECT_EQ(via_options.mean_jct(), via_legacy.mean_jct());
  EXPECT_EQ(via_options.mean_cpu_util(), via_legacy.mean_cpu_util());
}

TEST(CommonOptions, PlannerAutoThreadsMatchesSingleThread) {
  const dag::JobDag dag = workloads::cosine_similarity();
  const core::JobProfile profile =
      core::JobProfile::from(dag, sim::ClusterSpec::paper_prototype());
  core::CalculatorOptions one;
  one.threads = 1;
  core::CalculatorOptions moar;
  moar.threads = 0;  // auto — resolved inside the planner via CommonOptions
  const auto a = core::DelayCalculator(profile, one).compute();
  const auto b = core::DelayCalculator(profile, moar).compute();
  EXPECT_EQ(a.delay, b.delay);  // planner is bit-identical across pool sizes
}

}  // namespace
}  // namespace ds
