// ds::CommonOptions: the one place 0-means-auto thread counts are resolved,
// plus the back-compat option spellings (inherited threads/seed fields). The
// legacy trailing-seed overloads are [[deprecated]] and no longer called
// anywhere in the repo — the tests below pin the CommonOptions-only
// signatures they collapsed into.
#include <gtest/gtest.h>

#include <thread>

#include "core/delay_calculator.h"
#include "core/options.h"
#include "core/profile.h"
#include "sim/cluster.h"
#include "trace/replay.h"
#include "trace/synthetic.h"
#include "workloads/workloads.h"

namespace ds {
namespace {

TEST(CommonOptions, ResolvedThreadsNormalizesZeroAndNegative) {
  CommonOptions opt;
  opt.threads = 5;
  EXPECT_EQ(opt.resolved_threads(), 5);
  const int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  opt.threads = 0;
  EXPECT_EQ(opt.resolved_threads(), hw);
  opt.threads = -3;
  EXPECT_EQ(opt.resolved_threads(), hw);
}

TEST(CommonOptions, DerivedStructsInheritTheSharedFields) {
  // The pre-refactor spellings must keep compiling: threads/seed now live in
  // the CommonOptions base, and common() exposes the base for shared helpers.
  core::CalculatorOptions copt;
  copt.threads = 3;
  copt.seed = 9;
  copt.obs = nullptr;
  EXPECT_EQ(copt.common().threads, 3);
  EXPECT_EQ(copt.common().seed, 9u);
  copt.common().threads = 4;
  EXPECT_EQ(copt.threads, 4);

  trace::ReplayOptions ropt;
  ropt.threads = 2;
  EXPECT_EQ(ropt.resolved_threads(), 2);
  trace::SyntheticTraceOptions topt;
  topt.seed = 77;
  EXPECT_EQ(topt.common().seed, 77u);
}

TEST(CommonOptions, SyntheticTraceSeedLivesInOptions) {
  trace::SyntheticTraceOptions opt;
  opt.num_jobs = 50;
  opt.seed = 123;
  const auto a = trace::synthetic_trace(opt);
  const auto b = trace::synthetic_trace(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    ASSERT_EQ(a[i].stages.size(), b[i].stages.size());
  }
  // A different seed in the options struct must change the draw.
  opt.seed = 1;
  const auto other = trace::synthetic_trace(opt);
  EXPECT_NE(other[0].submit_time, a[0].submit_time);
}

TEST(CommonOptions, ReplaySeedLivesInOptions) {
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 30;
  topt.seed = 5;
  const auto jobs = trace::synthetic_trace(topt);
  trace::ReplayOptions ropt;
  ropt.cluster.num_workers = 20;
  ropt.seed = 11;
  const auto a = trace::replay(jobs, ropt);
  const auto b = trace::replay(jobs, ropt);
  EXPECT_EQ(a.mean_jct(), b.mean_jct());
  EXPECT_EQ(a.mean_cpu_util(), b.mean_cpu_util());
}

TEST(CommonOptions, PlannerAutoThreadsMatchesSingleThread) {
  const dag::JobDag dag = workloads::cosine_similarity();
  const core::JobProfile profile =
      core::JobProfile::from(dag, sim::ClusterSpec::paper_prototype());
  core::CalculatorOptions one;
  one.threads = 1;
  core::CalculatorOptions moar;
  moar.threads = 0;  // auto — resolved inside the planner via CommonOptions
  const auto a = core::DelayCalculator(profile, one).compute();
  const auto b = core::DelayCalculator(profile, moar).compute();
  EXPECT_EQ(a.delay, b.delay);  // planner is bit-identical across pool sizes
}

}  // namespace
}  // namespace ds
