// Observability layer: registry correctness under concurrency, histogram vs
// the exact metrics::Cdf, tracer ring-buffer semantics, Chrome-JSON export,
// and — most importantly — the passivity contract: enabling observability
// must not change a simulation result bit.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "engine/job_run.h"
#include "metrics/cdf.h"
#include "obs/obs.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/thread_pool.h"
#include "workloads/workloads.h"

namespace ds {
namespace {

// --- MetricsRegistry -------------------------------------------------------

TEST(Registry, DisabledHandlesAreInertAndCheap) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  EXPECT_FALSE(c.enabled());
  c.inc();
  g.set(5);
  h.observe(1.0);  // must not crash
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);

  obs::Observability* null_obs = nullptr;
  EXPECT_FALSE(obs::counter(null_obs, "x").enabled());
  EXPECT_EQ(obs::tracer(null_obs), nullptr);
}

TEST(Registry, HandlesAliasTheSameCell) {
  obs::MetricsRegistry reg;
  obs::Counter a = reg.counter("jobs");
  obs::Counter b = reg.counter("jobs");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(reg.counter("jobs").value(), 7u);
  EXPECT_EQ(reg.find_counter("jobs").value(), 7u);
  EXPECT_FALSE(reg.find_counter("absent").enabled());
}

TEST(Registry, ConcurrentUpdatesAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter c = reg.counter("n");
  obs::Gauge g = reg.gauge("g");
  obs::Histogram h = reg.histogram("h", obs::linear_buckets(10.0, 10));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kPerThread; ++i) {
      c.inc();
      g.add(1.0);
      h.observe(static_cast<double>(i % 100));
    }
    (void)t;
  });
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // sum of 0..99, kThreads*100 times over
  EXPECT_DOUBLE_EQ(h.sum(), 4950.0 * kThreads * kPerThread / 100.0);
}

TEST(Histogram, AgreesWithExactCdfWithinABucket) {
  obs::MetricsRegistry reg;
  const double kWidth = 1.0;
  obs::Histogram h = reg.histogram("h", obs::linear_buckets(kWidth, 200));
  metrics::Cdf exact;
  // A deterministic skewed sample set in (0, 200).
  for (int i = 0; i < 5000; ++i) {
    const double v = 200.0 * (i / 5000.0) * (i / 5000.0);
    h.observe(v);
    exact.add(v);
  }
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
    EXPECT_NEAR(h.percentile(p), exact.percentile(p), kWidth)
        << "percentile " << p;
  }
  for (double v : {10.0, 50.0, 120.0, 180.0}) {
    EXPECT_NEAR(h.fraction_below(v), exact.fraction_below(v), 1.0)
        << "fraction below " << v;
  }
  // The CDF export covers [~0%, 100%] monotonically.
  const auto pts = h.points(20);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.back().cum_percent, 100.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].cum_percent, pts[i - 1].cum_percent);
    EXPECT_GE(pts[i].value, pts[i - 1].value);
  }
}

TEST(Registry, JsonDumpIsWellFormedAndSorted) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("z.level").set(1.5);
  reg.histogram("lat", obs::linear_buckets(1.0, 4)).observe(2.5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string s = os.str();
  EXPECT_LT(s.find("\"a.count\""), s.find("\"b.count\""));  // sorted
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"le\": \"inf\""), std::string::npos);  // overflow bucket
  // Crude but effective structural check: braces/brackets balance.
  int depth = 0;
  for (char ch : s) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Registry, SnapshotCopiesTheLiveState) {
  obs::MetricsRegistry reg;
  reg.counter("jobs").inc(3);
  reg.gauge("depth").set(2.5);
  obs::Histogram h = reg.histogram("lat", obs::linear_buckets(1.0, 10));
  h.observe(0.5);
  h.observe(4.5);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "jobs");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "depth");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat");
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 5.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].mean, 2.5);
}

TEST(Registry, PrometheusExpositionIsWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("sched.jobs_submitted").inc(4);
  reg.gauge("sched.queue_depth").set(1);
  reg.histogram("sched.wait", obs::linear_buckets(1.0, 2)).observe(0.5);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string s = os.str();
  // Dots become underscores, counters grow a _total suffix, histograms get
  // cumulative buckets with the +Inf terminator plus _sum/_count.
  EXPECT_NE(s.find("# TYPE sched_jobs_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(s.find("sched_jobs_submitted_total 4"), std::string::npos);
  EXPECT_NE(s.find("# TYPE sched_queue_depth gauge"), std::string::npos);
  EXPECT_NE(s.find("sched_wait_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(s.find("sched_wait_sum 0.5"), std::string::npos);
  EXPECT_NE(s.find("sched_wait_count 1"), std::string::npos);
}

TEST(Obs, RefreshDerivedPublishesDropCounters) {
  obs::TracerOptions topt;
  topt.enabled = true;
  topt.ring_capacity = 4;
  obs::FlightRecorderOptions fopt;
  fopt.enabled = true;
  fopt.capacity = 4;
  obs::Observability obs(topt, fopt);
  for (int i = 0; i < 10; ++i) {
    obs.tracer.instant("t", "e", static_cast<double>(i), 0, 0);
    obs::FlightRecord r;
    r.kind = obs::FlightKind::kMark;
    obs.flight.record(r);
  }
  obs.refresh_derived();
  EXPECT_EQ(obs.metrics.counter("tracer.dropped_spans").value(), 6u);
  EXPECT_EQ(obs.metrics.counter("flight.dropped_records").value(), 6u);
  // Idempotent: a second refresh with no new drops adds nothing.
  obs.refresh_derived();
  EXPECT_EQ(obs.metrics.counter("tracer.dropped_spans").value(), 6u);
}

// --- Tracer ----------------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer tr;  // default: disabled
  tr.instant("t", "e", 1.0, 0, 0);
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Tracer, RingWrapsKeepingTheNewestEvents) {
  obs::TracerOptions topt;
  topt.enabled = true;
  topt.ring_capacity = 8;
  obs::Tracer tr(topt);
  for (int i = 0; i < 20; ++i)
    tr.instant("t", "e", static_cast<double>(i), 0, 0, "i",
               static_cast<double>(i));
  EXPECT_EQ(tr.recorded(), 8u);
  EXPECT_EQ(tr.dropped(), 12u);
  const auto evs = tr.snapshot();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_DOUBLE_EQ(evs[i].arg_value, 12.0 + static_cast<double>(i));
  }
}

TEST(Tracer, ChromeJsonGolden) {
  obs::TracerOptions topt;
  topt.enabled = true;
  obs::Tracer tr(topt);
  tr.set_process_name(0, "proc \"zero\"");  // exercises escaping
  tr.set_thread_name(0, 1, "lane");
  tr.complete("cat", "span", 1.5, 0.25, 0, 1, "stage", 3);
  tr.instant("cat", "mark", 2.0, 0, 1);
  tr.counter("cat", "ctr", 2.5, 0, 42.5);
  std::ostringstream os;
  tr.write_chrome_json(os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":[\n"
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"proc \\\"zero\\\"\"}},\n"
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":1,"
            "\"args\":{\"name\":\"lane\"}},\n"
            "{\"ph\":\"X\",\"name\":\"span\",\"cat\":\"cat\",\"ts\":1500000,"
            "\"dur\":250000,\"pid\":0,\"tid\":1,\"args\":{\"stage\":3}},\n"
            "{\"ph\":\"i\",\"name\":\"mark\",\"cat\":\"cat\",\"ts\":2000000,"
            "\"s\":\"t\",\"pid\":0,\"tid\":1},\n"
            "{\"ph\":\"C\",\"name\":\"ctr\",\"cat\":\"cat\",\"ts\":2500000,"
            "\"pid\":0,\"tid\":0,\"args\":{\"value\":42.5}}\n"
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":0}}\n");
}

TEST(Tracer, InternDeduplicatesAndOutlivesCalls) {
  obs::TracerOptions topt;
  topt.enabled = true;
  obs::Tracer tr(topt);
  const char* a = tr.intern(std::string("stage-") + "7");
  const char* b = tr.intern("stage-7");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "stage-7");
}

// --- Engine integration ----------------------------------------------------

engine::JobResult run_workload(obs::Observability* obs) {
  const dag::JobDag dag = workloads::als();
  sim::Simulator sim(obs);
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 42, obs);
  engine::RunOptions opt;
  opt.plan = sched::make_strategy("DelayStage")->plan(dag, cluster);
  opt.seed = 42;
  opt.obs = obs;
  engine::JobRun run(cluster, dag, opt);
  run.start();
  sim.run();
  EXPECT_TRUE(run.finished());
  return run.result();
}

TEST(ObsEngine, ObservabilityIsPassive) {
  const engine::JobResult off = run_workload(nullptr);
  obs::TracerOptions topt;
  topt.enabled = true;
  obs::Observability full(topt);
  const engine::JobResult on = run_workload(&full);
  // Bit-identical: observability must never influence the simulation.
  ASSERT_EQ(off.stages.size(), on.stages.size());
  EXPECT_EQ(off.jct, on.jct);
  for (std::size_t s = 0; s < off.stages.size(); ++s) {
    EXPECT_EQ(off.stages[s].submitted, on.stages[s].submitted);
    EXPECT_EQ(off.stages[s].last_read_done, on.stages[s].last_read_done);
    EXPECT_EQ(off.stages[s].finish, on.stages[s].finish);
  }
  EXPECT_GT(full.tracer.recorded(), 0u);
  EXPECT_GT(full.metrics.counter("engine.tasks_finished").value(), 0u);
  EXPECT_EQ(full.metrics.counter("engine.tasks_finished").value(),
            full.metrics.counter("engine.tasks_launched").value());
}

TEST(ObsEngine, TaskSpansDoNotOverlapWithinASlotLane) {
  obs::TracerOptions topt;
  topt.enabled = true;
  topt.ring_capacity = std::size_t{1} << 18;  // keep everything
  obs::Observability full(topt);
  run_workload(&full);
  EXPECT_EQ(full.tracer.dropped(), 0u);
  // Group the task phase spans by (worker pid, slot lane): phases on one
  // executor slot must tile without overlap — that is what makes the trace a
  // faithful per-slot occupancy timeline (Fig. 12/13).
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<obs::TraceEvent>>
      lanes;
  for (const auto& ev : full.tracer.snapshot()) {
    if (ev.phase == 'X' && ev.pid >= obs::kNodePidBase &&
        ev.pid < obs::kPlannerPid)
      lanes[{ev.pid, ev.tid}].push_back(ev);
  }
  ASSERT_FALSE(lanes.empty());
  for (const auto& [key, evs] : lanes) {
    for (std::size_t i = 1; i < evs.size(); ++i) {
      EXPECT_GE(evs[i].ts_us, evs[i - 1].ts_us + evs[i - 1].dur_us - 1e-3)
          << "overlap on worker pid " << key.first << " lane " << key.second;
    }
  }
}

TEST(ObsPlanner, SearchCountersMatchTheSchedule) {
  obs::Observability obs;
  const dag::JobDag dag = workloads::cosine_similarity();
  const core::JobProfile profile =
      core::JobProfile::from(dag, sim::ClusterSpec::paper_prototype());
  core::CalculatorOptions copt;
  copt.obs = &obs;
  const core::DelaySchedule sched = core::DelayCalculator(profile, copt).compute();
  EXPECT_EQ(obs.metrics.counter("planner.evaluations").value(),
            sched.evaluations);
  EXPECT_EQ(obs.metrics.counter("planner.memo_hits").value(), sched.memo_hits);
  EXPECT_EQ(obs.metrics.counter("planner.runs").value(), 1u);
}

}  // namespace
}  // namespace ds
