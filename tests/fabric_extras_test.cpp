// Focused tests for the fabric's cross-stage contention penalty and the
// executor pool's priority/pinning interplay.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster.h"
#include "sim/executor_pool.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ds::sim {
namespace {

TEST(GroupPenalty, SameGroupFlowsPayNoPenalty) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0, /*group_penalty=*/1.0);
  double a = -1, b = -1;
  net.start_flow({0, 1, 100.0, /*group=*/3, [&] { a = sim.now(); }});
  net.start_flow({0, 1, 100.0, /*group=*/3, [&] { b = sim.now(); }});
  sim.run();
  // One group: the 100 B/s egress splits 50/50, no efficiency loss.
  EXPECT_NEAR(a, 2.0, 1e-6);
  EXPECT_NEAR(b, 2.0, 1e-6);
}

TEST(GroupPenalty, DistinctGroupsLoseAggregateCapacity) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0, /*group_penalty=*/1.0);
  double a = -1, b = -1;
  net.start_flow({0, 1, 100.0, /*group=*/1, [&] { a = sim.now(); }});
  net.start_flow({0, 1, 100.0, /*group=*/2, [&] { b = sim.now(); }});
  sim.run();
  // Two groups: capacity 100 / (1 + ln 2) ≈ 59.07, split 50/50.
  const double expect = 200.0 / (100.0 / (1.0 + std::log(2.0)));
  EXPECT_NEAR(a, expect, 1e-6);
  EXPECT_NEAR(b, expect, 1e-6);
}

TEST(GroupPenalty, AnonymousFlowsAreOneGroup) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0, /*group_penalty=*/1.0);
  double a = -1;
  net.start_flow({.src = 0, .dst = 1, .bytes = 100.0,
                  .on_complete = [&] { a = sim.now(); }});
  net.start_flow({.src = 0, .dst = 1, .bytes = 100.0});
  sim.run();
  EXPECT_NEAR(a, 2.0, 1e-6);  // both group -1: no penalty
}

TEST(GroupPenalty, PenaltyLiftsWhenAGroupDrains) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0, /*group_penalty=*/1.0);
  double small = -1, big = -1;
  const double eff2 = 100.0 / (1.0 + std::log(2.0));  // ≈ 59.07
  net.start_flow({0, 1, 59.07 / 2.0, 1, [&] { small = sim.now(); }});
  net.start_flow({0, 1, 1000.0, 2, [&] { big = sim.now(); }});
  sim.run();
  // Small flow: half of eff2 -> done at t = 1. Big flow: ~29.5 B done at
  // t = 1, then full 100 B/s alone.
  EXPECT_NEAR(small, 1.0, 1e-3);
  EXPECT_NEAR(big, 1.0 + (1000.0 - eff2 / 2.0) / 100.0, 0.05);
}

TEST(GroupPenalty, ZeroBetaIsWorkConserving) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0, /*group_penalty=*/0.0);
  double a = -1;
  net.start_flow({0, 1, 100.0, 1, [&] { a = sim.now(); }});
  net.start_flow({0, 1, 100.0, 2, nullptr});
  sim.run_until(2.0);
  EXPECT_NEAR(a, 2.0, 1e-6);
}

TEST(ExecutorPoolPriority, PriorityBeatsArrivalOrder) {
  Simulator sim;
  ExecutorPool pool(sim, {1});
  std::vector<int> order;
  pool.request([&](NodeId) { order.push_back(0); });  // takes the slot
  pool.request([&](NodeId) { order.push_back(1); }, -1, /*priority=*/5);
  pool.request([&](NodeId) { order.push_back(2); }, -1, /*priority=*/1);
  sim.run();
  pool.release(0);
  sim.run();
  pool.release(0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(ExecutorPoolPriority, FifoWithinALevel) {
  Simulator sim;
  ExecutorPool pool(sim, {1});
  std::vector<int> order;
  pool.request([&](NodeId) { order.push_back(0); });
  for (int i = 1; i <= 3; ++i)
    pool.request([&order, i](NodeId) { order.push_back(i); }, -1, 2);
  for (int i = 0; i < 4; ++i) {
    sim.run();
    if (pool.busy(0) > 0) pool.release(0);
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ExecutorPoolPriority, PinnedHighPriorityWaitsButUnpinnedFlows) {
  Simulator sim;
  ExecutorPool pool(sim, {1, 1});
  std::vector<std::string> order;
  pool.request([&](NodeId) { order.push_back("hog"); }, 1);
  pool.request([&](NodeId) { order.push_back("pinned"); }, 1, /*priority=*/0);
  pool.request([&](NodeId) { order.push_back("free"); }, -1, /*priority=*/9);
  sim.run();
  // The pinned waiter cannot take node 0; the low-priority unpinned one can.
  EXPECT_EQ(order, (std::vector<std::string>{"hog", "free"}));
  pool.release(1);
  sim.run();
  EXPECT_EQ(order.back(), "pinned");
}

TEST(GeoAndGroups, WanPortCarriesThePenaltyToo) {
  Simulator sim;
  // Fat NICs, thin WAN; two distinct groups crossing the same WAN pipe.
  NetworkFabric net(sim, {1000.0, 1000.0, 1000.0, 1000.0}, 1e6,
                    /*group_penalty=*/1.0, {0, 0, 1, 1}, /*wan_bw=*/40.0);
  double a = -1;
  net.start_flow({0, 2, 40.0, 1, [&] { a = sim.now(); }});
  net.start_flow({1, 3, 40.0, 2, nullptr});
  sim.run_until(10.0);
  // WAN 40 / (1 + ln 2) ≈ 23.6 total, ≈ 11.8 B/s each -> 40 B in ≈ 3.39 s.
  EXPECT_NEAR(a, 2.0 * (1.0 + std::log(2.0)), 0.05);
}

}  // namespace
}  // namespace ds::sim
