#include <gtest/gtest.h>

#include <vector>

#include "sim/executor_pool.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace ds::sim {
namespace {

TEST(ExecutorPool, GrantsUpToCapacity) {
  Simulator sim;
  ExecutorPool pool(sim, {2});
  std::vector<NodeId> granted;
  for (int i = 0; i < 3; ++i)
    pool.request([&](NodeId n) { granted.push_back(n); });
  sim.run();
  EXPECT_EQ(granted.size(), 2u);
  EXPECT_EQ(pool.busy(0), 2);
  EXPECT_EQ(pool.queued(), 1u);
}

TEST(ExecutorPool, ReleaseFeedsWaitersFifo) {
  Simulator sim;
  ExecutorPool pool(sim, {1});
  std::vector<int> order;
  pool.request([&](NodeId) { order.push_back(0); });
  pool.request([&](NodeId) { order.push_back(1); });
  pool.request([&](NodeId) { order.push_back(2); });
  sim.run();
  ASSERT_EQ(order, (std::vector<int>{0}));
  pool.release(0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  pool.release(0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ExecutorPool, BalancedPlacementPicksFreestNode) {
  Simulator sim;
  ExecutorPool pool(sim, {2, 2});
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) pool.request([&](NodeId n) { nodes.push_back(n); });
  sim.run();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(pool.busy(0), 2);
  EXPECT_EQ(pool.busy(1), 2);
  // Alternates because the freest node flips after each grant.
  EXPECT_NE(nodes[0], nodes[1]);
}

TEST(ExecutorPool, PinnedRequestWaitsForItsNode) {
  Simulator sim;
  ExecutorPool pool(sim, {1, 1});
  NodeId pinned_got = -1;
  NodeId free_got = -1;
  pool.request([&](NodeId n) { pinned_got = n; }, /*pinned_node=*/1);
  pool.request([&](NodeId n) { pinned_got = n; }, 1);  // queued: node 1 full
  pool.request([&](NodeId n) { free_got = n; });
  sim.run();
  EXPECT_EQ(pinned_got, 1);
  EXPECT_EQ(free_got, 0);  // unpinned waiter overtakes the stuck pinned one
  EXPECT_EQ(pool.queued(), 1u);
}

TEST(ExecutorPool, CancelRemovesQueuedRequest) {
  Simulator sim;
  ExecutorPool pool(sim, {1});
  bool fired = false;
  pool.request([](NodeId) {});
  const SlotRequestId id = pool.request([&](NodeId) { fired = true; });
  sim.run();
  pool.cancel(id);
  pool.release(0);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(ExecutorPool, GrantedCallbackMayRequestAgain) {
  Simulator sim;
  ExecutorPool pool(sim, {1});
  int grants = 0;
  std::function<void(NodeId)> cb = [&](NodeId n) {
    ++grants;
    if (grants < 3) {
      pool.release(n);
      pool.request(cb);
    }
  };
  pool.request(cb);
  sim.run();
  EXPECT_EQ(grants, 3);
}

TEST(ExecutorPool, CountsStayConsistent) {
  Simulator sim;
  ExecutorPool pool(sim, {2, 3});
  EXPECT_EQ(pool.total_slots(), 5);
  for (int i = 0; i < 5; ++i) pool.request([](NodeId) {});
  sim.run();
  EXPECT_EQ(pool.total_busy(), 5);
  pool.release(0);
  pool.release(1);
  sim.run();
  EXPECT_EQ(pool.total_busy(), 3);
}

TEST(ExecutorPool, ReleaseWithoutBusyThrows) {
  Simulator sim;
  ExecutorPool pool(sim, {1});
  EXPECT_THROW(pool.release(0), CheckError);
}

}  // namespace
}  // namespace ds::sim
