#include <gtest/gtest.h>

#include <set>

#include "dag/paths.h"
#include "workloads/workloads.h"

namespace ds::workloads {
namespace {

TEST(Workloads, StageCountsMatchThePaper) {
  EXPECT_EQ(als().num_stages(), 6);                   // Fig. 1
  EXPECT_EQ(connected_components().num_stages(), 5);  // Table 2 / §5.1
  EXPECT_EQ(cosine_similarity().num_stages(), 5);
  EXPECT_EQ(lda().num_stages(), 5);
  EXPECT_EQ(triangle_count().num_stages(), 11);
}

TEST(Workloads, AlsParallelStructureMatchesFig1) {
  const auto j = als();
  // Stage 1 || Stage 2; Stage 3 || {1, 2, 4}.
  EXPECT_TRUE(j.can_run_in_parallel(0, 1));
  EXPECT_TRUE(j.can_run_in_parallel(2, 0));
  EXPECT_TRUE(j.can_run_in_parallel(2, 1));
  EXPECT_TRUE(j.can_run_in_parallel(2, 3));
  EXPECT_EQ(j.parallel_stage_set(), (std::vector<dag::StageId>{0, 1, 2, 3}));
}

TEST(Workloads, LdaPathsMatchFig11) {
  const auto j = lda();
  // "The three execution paths in LDA are {Stage 1}, {Stage 2, Stage 3},
  // and {Stage 4}, and the execution of the last Stage 5 is blocked."
  const auto paths = dag::execution_paths(j);
  std::set<std::vector<dag::StageId>> got;
  for (const auto& p : paths) got.insert(p.stages);
  EXPECT_EQ(got, (std::set<std::vector<dag::StageId>>{{0}, {1, 2}, {3}}));
  EXPECT_EQ(j.sequential_stages(), (std::vector<dag::StageId>{4}));
}

TEST(Workloads, ConnectedComponentsHasDominantSequentialTail) {
  const auto j = connected_components();
  const auto seq = j.sequential_stages();
  EXPECT_EQ(seq, (std::vector<dag::StageId>{3, 4}));
}

TEST(Workloads, TriangleCountHasWideParallelRegion) {
  const auto j = triangle_count();
  EXPECT_EQ(j.parallel_stage_set().size(), 9u);
  EXPECT_EQ(j.sequential_stages(), (std::vector<dag::StageId>{9, 10}));
  EXPECT_EQ(j.sources().size(), 4u);
}

TEST(Workloads, LdaIsNearlyHomogeneous) {
  const auto j = lda();
  for (dag::StageId s = 0; s < j.num_stages(); ++s)
    EXPECT_LE(j.stage(s).task_skew, 0.05);
  // Graph workloads are visibly skewed.
  EXPECT_GT(triangle_count().stage(0).task_skew, 0.1);
}

TEST(Workloads, ScaleMultipliesVolumesOnly) {
  const auto base = cosine_similarity(1.0);
  const auto big = cosine_similarity(2.0);
  for (dag::StageId s = 0; s < base.num_stages(); ++s) {
    EXPECT_DOUBLE_EQ(big.stage(s).input_bytes, 2 * base.stage(s).input_bytes);
    EXPECT_DOUBLE_EQ(big.stage(s).output_bytes, 2 * base.stage(s).output_bytes);
    EXPECT_DOUBLE_EQ(big.stage(s).process_rate, base.stage(s).process_rate);
    EXPECT_EQ(big.stage(s).num_tasks, base.stage(s).num_tasks);
  }
}

TEST(Workloads, InputVolumesTrackTable2) {
  // Table 2: ConnectedComponents 10 GB, CosineSimilarity 30 GB.
  EXPECT_NEAR(to_GB(connected_components().total_input_bytes()), 15.6, 6.0);
  EXPECT_NEAR(to_GB(cosine_similarity().total_input_bytes()), 33.0, 8.0);
}

TEST(Workloads, SuiteHasPaperOrder) {
  const auto suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "ConnectedComponents");
  EXPECT_EQ(suite[1].name, "LDA");
  EXPECT_EQ(suite[2].name, "CosineSimilarity");
  EXPECT_EQ(suite[3].name, "TriangleCount");
  for (const auto& wl : suite) EXPECT_EQ(wl.dag.name(), wl.name);
}

TEST(Workloads, AllDagsAreAcyclicAndConnectedEnough) {
  for (const auto& wl : benchmark_suite()) {
    EXPECT_NO_THROW(wl.dag.topo_order()) << wl.name;
    EXPECT_EQ(wl.dag.sinks().size(), 1u) << wl.name;
  }
  EXPECT_NO_THROW(als().topo_order());
}

}  // namespace
}  // namespace ds::workloads
