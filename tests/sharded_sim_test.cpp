// Determinism and safety of the parallel simulation layer (sim/sharded.h):
//
//  * ShardedRunner ensembles must be bit-identical to the sequential loop
//    for every thread count — each index is an independent world and the
//    merge is positional.
//  * ShardedSimulation's conservative time-window protocol must deliver
//    cross-shard events at exactly the requested times, in (time, from,
//    seq) order, for any shard/thread combination — and must reject posts
//    below the lookahead horizon.
//  * The replay engine-validation fan-out must produce identical
//    ReplayJobResult streams for shard counts {1, 2, 8}.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "trace/replay.h"
#include "trace/synthetic.h"
#include "util/check.h"
#include "workloads/workloads.h"

namespace ds {
namespace {

// Full fingerprint of one engine run: every field that downstream analytics
// read. Exact double comparison is intentional — the parallel paths must be
// bit-identical to the sequential one, not merely close.
using StageKey = std::tuple<double, double, double, double, double, double>;
struct RunPrint {
  double jct = 0;
  std::vector<StageKey> stages;
  bool operator==(const RunPrint&) const = default;
};

RunPrint run_engine_once(std::uint64_t seed) {
  const auto dag = workloads::lda();
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::paper_prototype(), seed);
  engine::RunOptions opt;
  opt.seed = seed;
  engine::JobRun run(cluster, dag, std::move(opt));
  run.start();
  sim.run();
  RunPrint p;
  p.jct = run.result().jct;
  for (const auto& s : run.result().stages) {
    p.stages.emplace_back(s.ready, s.submitted, s.first_launch,
                          s.last_read_done, s.last_compute_done, s.finish);
  }
  return p;
}

TEST(ShardedRunner, EnsembleBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kRuns = 8;
  std::vector<RunPrint> sequential(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) sequential[i] = run_engine_once(100 + i);

  for (int threads : {1, 2, 8}) {
    sim::ShardedRunner runner(threads);
    const auto parallel = runner.run<RunPrint>(
        kRuns, [](std::size_t i) { return run_engine_once(100 + i); });
    ASSERT_EQ(parallel.size(), kRuns);
    for (std::size_t i = 0; i < kRuns; ++i) {
      EXPECT_EQ(parallel[i], sequential[i])
          << "run " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(ShardedSimulation, CrossShardDeliveryAtExactTimes) {
  std::vector<std::vector<double>> reference;
  for (int threads : {1, 2, 8}) {
    sim::ShardedSimulation::Options opt;
    opt.shards = 4;
    opt.threads = threads;
    opt.lookahead = 0.5;
    sim::ShardedSimulation ss(opt);

    // Shard s=0..3 fires a local event at t=s, which posts a message to
    // shard (s+1)%4 one lookahead later; each receipt reposts until t > 10.
    std::vector<std::vector<double>> received(4);
    struct Hop {
      sim::ShardedSimulation* ss;
      std::vector<std::vector<double>>* received;
      int shard = 0;
    };
    std::vector<Hop> hops;
    for (int s = 0; s < 4; ++s) hops.push_back({&ss, &received, s});

    // EventFn-sized relay: capture one pointer.
    struct Relay {
      static void arrive(Hop* h) {
        const double now = h->ss->shard(h->shard).now();
        (*h->received)[static_cast<std::size_t>(h->shard)].push_back(now);
        if (now > 10.0) return;
        Hop* next = h - h->shard + (h->shard + 1) % 4;
        h->ss->post(h->shard, next->shard, now + h->ss->lookahead(),
                    [next] { arrive(next); });
      }
    };
    for (int s = 0; s < 4; ++s) {
      Hop* h = &hops[static_cast<std::size_t>(s)];
      ss.shard(s).schedule_at(static_cast<double>(s), [h] { Relay::arrive(h); });
    }
    ss.run();

    // Each chain hops forward by exactly one lookahead; receipt times are
    // fully determined, independent of threads.
    for (int s = 0; s < 4; ++s) {
      const auto& r = received[static_cast<std::size_t>(s)];
      ASSERT_FALSE(r.empty());
      for (std::size_t k = 1; k < r.size(); ++k) {
        EXPECT_GT(r[k], r[k - 1]);
      }
      for (double t : r) {
        // t = origin + k * lookahead for integer k and origin in {0,1,2,3}.
        const double frac = t - static_cast<long>(t / 0.5) * 0.5;
        EXPECT_NEAR(std::min(frac, 0.5 - frac), 0.0, 1e-9);
      }
    }
    // Thread-count invariance: compare against the single-thread reference.
    if (threads == 1) {
      reference = received;
    } else {
      EXPECT_EQ(received, reference) << "delivery diverged at " << threads
                                     << " threads";
    }
  }
}

TEST(ShardedSimulation, EqualTimeMessagesDrainInFromShardOrder) {
  sim::ShardedSimulation::Options opt;
  opt.shards = 3;
  opt.threads = 1;
  opt.lookahead = 1.0;
  sim::ShardedSimulation ss(opt);

  // Shards 2 and 1 both post to shard 0 for the same instant; the (time,
  // from, seq) barrier order must fire shard 1's message first regardless
  // of posting order.
  static std::vector<int> order;
  order.clear();
  ss.post(2, 0, 5.0, [] { order.push_back(2); });
  ss.post(1, 0, 5.0, [] { order.push_back(1); });
  ss.post(1, 0, 5.0, [] { order.push_back(11); });
  ss.run();
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
  EXPECT_DOUBLE_EQ(ss.shard(0).now(), 5.0 + 1.0);  // ran one full window
}

TEST(ShardedSimulation, PostBelowLookaheadHorizonIsRejected) {
  sim::ShardedSimulation::Options opt;
  opt.shards = 2;
  opt.threads = 1;
  opt.lookahead = 1.0;
  sim::ShardedSimulation ss(opt);
  static bool threw;
  threw = false;
  sim::ShardedSimulation* ssp = &ss;
  ss.shard(0).schedule_at(1.0, [ssp] {
    // In-window post with t < now + lookahead must fail the safety check.
    try {
      ssp->post(0, 1, ssp->shard(0).now() + 0.25, [] {});
    } catch (const CheckError&) {
      threw = true;
    }
  });
  ss.run();
  EXPECT_TRUE(threw);
}

TEST(ShardedSimulation, WindowsAdvanceIdleShardsToGlobalTime) {
  sim::ShardedSimulation::Options opt;
  opt.shards = 2;
  opt.threads = 1;
  opt.lookahead = 0.1;
  sim::ShardedSimulation ss(opt);
  ss.shard(0).schedule_at(3.0, [] {});
  ss.run_until(7.0);
  EXPECT_DOUBLE_EQ(ss.shard(0).now(), 7.0);
  EXPECT_DOUBLE_EQ(ss.shard(1).now(), 7.0);
  EXPECT_EQ(ss.events_processed(), 1u);
}

TEST(ReplayEngineValidation, IdenticalAcrossShardCounts) {
  trace::SyntheticTraceOptions sopt;
  sopt.num_jobs = 12;
  sopt.horizon = 4000;
  sopt.max_stages = 8;
  sopt.max_stage_time = 120;
  sopt.seed = 7;
  const auto jobs = trace::synthetic_trace(sopt);
  trace::ReplayOptions opt;
  opt.strategy = "DelayStage";
  opt.threads = 1;
  opt.engine_validate = true;

  std::vector<trace::ReplayJobResult> reference;
  for (int shards : {1, 2, 8}) {
    opt.engine_shards = shards;
    const auto res = trace::replay(jobs, opt);
    ASSERT_EQ(res.jobs.size(), jobs.size());
    for (const auto& j : res.jobs) EXPECT_GT(j.engine_jct, 0.0);
    if (shards == 1) {
      reference = res.jobs;
      continue;
    }
    for (std::size_t i = 0; i < res.jobs.size(); ++i) {
      // Bit-exact across shard counts: same seeds, same per-index worlds.
      EXPECT_EQ(res.jobs[i].engine_jct, reference[i].engine_jct);
      EXPECT_EQ(res.jobs[i].jct, reference[i].jct);
      EXPECT_EQ(res.jobs[i].dedicated_time, reference[i].dedicated_time);
      EXPECT_EQ(res.jobs[i].planned_delay, reference[i].planned_delay);
    }
  }
}

}  // namespace
}  // namespace ds
