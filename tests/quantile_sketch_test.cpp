// QuantileSketch: relative-accuracy guarantee against exact sample
// quantiles, exact (bit-identical) merge associativity / commutativity /
// partition invariance — the property the online SLO tracker's
// thread-count determinism rests on — plus zero/edge handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/quantile_sketch.h"
#include "util/check.h"

namespace ds {
namespace {

// Deterministic pseudo-random stream (splitmix64), no <random> engine drift.
class Splitmix {
 public:
  explicit Splitmix(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double uniform() {  // in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(std::max<double>(
      1.0, std::ceil(q * static_cast<double>(xs.size()))));
  return xs[rank - 1];
}

TEST(QuantileSketch, EmptyAndSingleValue) {
  obs::QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);

  s.observe(42.0);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.count(), 1u);
  // One sample: every quantile is that sample (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(QuantileSketch, ZeroAndNegativeLandInZeroBucket) {
  obs::QuantileSketch s;
  s.observe(0.0);
  s.observe(-3.5);
  s.observe(1e-12);  // below the tracked range
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.zero_count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  // All mass in the zero bucket: quantiles clamp into [min, max].
  EXPECT_LE(s.quantile(0.99), s.max());
  EXPECT_GE(s.quantile(0.01), s.min());
}

TEST(QuantileSketch, RelativeAccuracyHoldsOnSkewedSamples) {
  const double kAlpha = 0.01;
  obs::QuantileSketch s(kAlpha);
  Splitmix rng(7);
  std::vector<double> xs;
  // Heavy-tailed: mix of ~1s JCTs and rare 1000s stragglers.
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    const double v = u < 0.95 ? 0.5 + 2.0 * rng.uniform()
                              : 100.0 + 900.0 * rng.uniform();
    xs.push_back(v);
    s.observe(v);
  }
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(xs, q);
    const double est = s.quantile(q);
    // 3α slack: α from the bucket width, and up to 2α more when nearest-rank
    // ties in a dense region land the exact quantile at a bucket edge.
    EXPECT_NEAR(est, exact, 3 * kAlpha * exact) << "q=" << q;
  }
  EXPECT_EQ(s.count(), xs.size());
}

TEST(QuantileSketch, MergeIsExactlyAssociativeAndCommutative) {
  Splitmix rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(0.1 + 50.0 * rng.uniform());

  obs::QuantileSketch a, b, c;
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).observe(xs[i]);

  // (a ⊕ b) ⊕ c
  obs::QuantileSketch ab = a;
  ab.merge(b);
  obs::QuantileSketch ab_c = ab;
  ab_c.merge(c);
  // a ⊕ (b ⊕ c)
  obs::QuantileSketch bc = b;
  bc.merge(c);
  obs::QuantileSketch a_bc = a;
  a_bc.merge(bc);
  // c ⊕ b ⊕ a (commuted)
  obs::QuantileSketch cba = c;
  cba.merge(b);
  cba.merge(a);

  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double ref = ab_c.quantile(q);
    // Bit-identical, not approximately equal: integer counts add exactly.
    EXPECT_EQ(ref, a_bc.quantile(q)) << "q=" << q;
    EXPECT_EQ(ref, cba.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(ab_c.count(), xs.size());
  EXPECT_EQ(ab_c.min(), a_bc.min());
  EXPECT_EQ(ab_c.max(), cba.max());
}

TEST(QuantileSketch, AnyPartitionMatchesTheSingleStreamBitForBit) {
  Splitmix rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(0.01 + 1000.0 * rng.uniform());

  obs::QuantileSketch whole;
  for (const double v : xs) whole.observe(v);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    std::vector<obs::QuantileSketch> parts(shards);
    for (std::size_t i = 0; i < xs.size(); ++i)
      parts[i % shards].observe(xs[i]);
    obs::QuantileSketch merged;
    for (const auto& p : parts) merged.merge(p);
    EXPECT_EQ(merged.count(), whole.count());
    for (const double q : {0.5, 0.9, 0.99})
      EXPECT_EQ(merged.quantile(q), whole.quantile(q))
          << "shards=" << shards << " q=" << q;
  }
}

TEST(QuantileSketch, MergeRejectsMismatchedAccuracy) {
  obs::QuantileSketch a(0.01);
  obs::QuantileSketch b(0.02);
  EXPECT_THROW(a.merge(b), CheckError);
}

TEST(QuantileSketch, SaturatesAboveTrackedRangeButKeepsCounts) {
  obs::QuantileSketch s;
  s.observe(1e12);  // beyond kMaxTracked
  s.observe(1.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.max(), 1e12);
  EXPECT_LE(s.quantile(1.0), 1e12);  // clamped to the observed max
}

}  // namespace
}  // namespace ds
