#include <gtest/gtest.h>

#include "dag/serialize.h"
#include "util/check.h"
#include "util/units.h"
#include "workloads/workloads.h"

namespace ds::dag {
namespace {

constexpr const char* kSpec =
    "# demo job\n"
    "job,demo\n"
    "stage,extract,30,6.0,2.5,2.0,0.2\n"
    "stage,transform,40,10.0,4.0,4.0,0.0\n"
    "stage,report,20,4.0,3.0,0.1,0.2\n"
    "edge,0,2\n"
    "edge,1,2\n";

TEST(JobSpec, ParsesStagesAndEdges) {
  const JobDag j = load_job_spec_text(kSpec);
  EXPECT_EQ(j.name(), "demo");
  ASSERT_EQ(j.num_stages(), 3);
  EXPECT_EQ(j.stage(0).name, "extract");
  EXPECT_EQ(j.stage(0).num_tasks, 30);
  EXPECT_DOUBLE_EQ(j.stage(0).input_bytes, 6e9);
  EXPECT_DOUBLE_EQ(j.stage(0).process_rate, 2.5e6);
  EXPECT_DOUBLE_EQ(j.stage(0).output_bytes, 2e9);
  EXPECT_DOUBLE_EQ(j.stage(0).task_skew, 0.2);
  EXPECT_EQ(j.parents(2), (std::vector<StageId>{0, 1}));
}

TEST(JobSpec, RoundTripsThroughSave) {
  const JobDag original = workloads::triangle_count();
  const JobDag back = load_job_spec_text(save_job_spec_text(original));
  ASSERT_EQ(back.num_stages(), original.num_stages());
  EXPECT_EQ(back.name(), original.name());
  for (StageId s = 0; s < original.num_stages(); ++s) {
    EXPECT_EQ(back.stage(s).name, original.stage(s).name);
    EXPECT_EQ(back.stage(s).num_tasks, original.stage(s).num_tasks);
    EXPECT_NEAR(back.stage(s).input_bytes, original.stage(s).input_bytes, 1.0);
    EXPECT_NEAR(back.stage(s).process_rate, original.stage(s).process_rate, 1.0);
    EXPECT_EQ(back.children(s), original.children(s));
  }
}

TEST(JobSpec, RejectsMalformedInput) {
  EXPECT_THROW(load_job_spec_text("stage,x\n"), CheckError);
  EXPECT_THROW(load_job_spec_text("stage,x,0,1,1,1,0\n"), CheckError);  // 0 tasks
  EXPECT_THROW(load_job_spec_text("bogus,1,2\n"), CheckError);
  EXPECT_THROW(load_job_spec_text("edge,0,1\n"), CheckError);  // unknown stages
  EXPECT_THROW(
      load_job_spec_text("stage,a,1,1,1,1,0\nstage,b,1,1,1,1,0\n"
                         "edge,0,1\nedge,1,0\n"),
      CheckError);  // cycle
}

TEST(JobSpec, CommentsAndBlankLinesIgnored) {
  const JobDag j = load_job_spec_text(
      "\n# header\n\nstage,only,4,1.0,1.0,0.5,0\n\n# trailing\n");
  EXPECT_EQ(j.num_stages(), 1);
}

TEST(JobSpec, MissingFileThrows) {
  EXPECT_THROW(load_job_spec_file("/nonexistent/job.spec"), CheckError);
}

}  // namespace
}  // namespace ds::dag
