#include "util/inline_function.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ds::util {
namespace {

using Fn = InlineFunction<int(int), 40>;

TEST(InlineFunction, CallsInlineCallable) {
  int base = 10;
  Fn f = [&base](int x) { return base + x; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(5), 15);
}

TEST(InlineFunction, EmptyAndNullptrAreFalsy) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [](int x) { return x; };
  EXPECT_TRUE(static_cast<bool>(f));
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, SmallCaptureDoesNotAllocate) {
  const std::size_t before = inline_function_heap_allocs();
  long a = 1, b = 2, c = 3, d = 4;  // 32 bytes: fits the 40-byte buffer
  Fn f = [a, b, c, d](int x) { return static_cast<int>(a + b + c + d) + x; };
  EXPECT_EQ(f(0), 10);
  Fn g = std::move(f);
  EXPECT_EQ(g(1), 11);
  EXPECT_EQ(inline_function_heap_allocs(), before);
}

TEST(InlineFunction, LargeCaptureFallsBackToHeap) {
  const std::size_t before = inline_function_heap_allocs();
  struct Big {
    long v[8] = {1, 2, 3, 4, 5, 6, 7, 8};  // 64 bytes: exceeds the buffer
  } big;
  Fn f = [big](int x) { return static_cast<int>(big.v[7]) + x; };
  EXPECT_EQ(f(2), 10);
  EXPECT_EQ(inline_function_heap_allocs(), before + 1);
  Fn g = std::move(f);  // moving a heap-backed callable just moves the pointer
  EXPECT_EQ(g(0), 8);
  EXPECT_EQ(inline_function_heap_allocs(), before + 1);
}

TEST(InlineFunction, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(7);
  InlineFunction<int(), 40> f = [q = std::move(p)] { return *q; };
  EXPECT_EQ(f(), 7);
  InlineFunction<int(), 40> g = std::move(f);
  EXPECT_EQ(g(), 7);
}

TEST(InlineFunction, MovedFromIsEmpty) {
  Fn f = [](int x) { return x * 2; };
  Fn g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(21), 42);
}

TEST(InlineFunction, MoveAssignDestroysPrevious) {
  auto counter = std::make_shared<int>(0);
  struct Bump {
    std::shared_ptr<int> c;
    explicit Bump(std::shared_ptr<int> p) : c(std::move(p)) {}
    Bump(Bump&& o) noexcept = default;
    ~Bump() {
      if (c) ++*c;
    }
    int operator()(int x) const { return x; }
  };
  Fn f{Bump(counter)};
  const int destroyed_before = *counter;
  f = [](int x) { return x + 1; };
  EXPECT_GT(*counter, destroyed_before);  // previous target was destroyed
  EXPECT_EQ(f(1), 2);
}

TEST(InlineFunction, CapacityIsAdvertised) {
  EXPECT_EQ(Fn::capacity(), 40u);
}

TEST(InlineFunction, DestructorRunsCaptures) {
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  {
    InlineFunction<int(), 40> f = [p = std::move(alive)] { return *p; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace ds::util
