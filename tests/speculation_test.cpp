// Speculative execution against machine-level stragglers (slow nodes).
#include <gtest/gtest.h>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/units.h"

namespace ds::engine {
namespace {

using namespace ds;  // literals

// One wide compute-bound stage: perfectly even partitions, so any straggling
// comes from the machine it runs on, not the data.
dag::JobDag wide_job() {
  dag::JobDag j("wide");
  dag::Stage s;
  s.name = "crunch";
  s.num_tasks = 30;
  s.input_bytes = 1.5_GB;       // 50 MB/task: the read is cheap...
  s.process_rate = 1.25_MBps;   // ...and the compute (~40 s/task) dominates
  s.output_bytes = 50_MB;
  s.task_skew = 0.0;
  j.add_stage(s);
  return j;
}

sim::ClusterSpec heterogeneous() {
  sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
  spec.node_speed_min = 0.15;  // a 7×-slow machine is a brutal straggler
  spec.node_speed_max = 1.0;
  return spec;
}

struct Outcome {
  Seconds jct;
  int speculations;
  int total_attempts;
};

Outcome run(const sim::ClusterSpec& spec, bool speculate,
            std::uint64_t seed = 42) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);
  RunOptions opt;
  opt.speculation = speculate;
  opt.seed = seed;
  const dag::JobDag job = wide_job();
  JobRun jr(cluster, job, opt);
  jr.start();
  sim.run();
  // Resource hygiene: everything granted was returned.
  EXPECT_EQ(cluster.executors().total_busy(), 0);
  EXPECT_EQ(cluster.fabric().active_flows(), 0u);
  for (int n = 0; n < cluster.num_workers(); ++n)
    EXPECT_EQ(cluster.computing(n), 0);
  Outcome o{jr.result().jct, jr.speculative_attempts(), 0};
  for (const auto& t : jr.result().tasks) o.total_attempts += t.attempts;
  return o;
}

TEST(Speculation, ClusterSpeedsAreDrawnFromTheSpec) {
  sim::Simulator sim;
  sim::Cluster c(sim, heterogeneous(), 42);
  double lo = 10, hi = 0;
  for (int n = 0; n < c.num_workers(); ++n) {
    lo = std::min(lo, c.speed(n));
    hi = std::max(hi, c.speed(n));
  }
  EXPECT_GE(lo, 0.15);
  EXPECT_LE(hi, 1.0);
  EXPECT_GT(hi - lo, 0.3);  // genuine heterogeneity
  // Homogeneous default:
  sim::Simulator sim2;
  sim::Cluster h(sim2, sim::ClusterSpec::paper_prototype(), 42);
  for (int n = 0; n < h.num_workers(); ++n) EXPECT_DOUBLE_EQ(h.speed(n), 1.0);
}

TEST(Speculation, RescuesMachineLevelStragglers) {
  const auto spec = heterogeneous();
  const Outcome off = run(spec, false);
  const Outcome on = run(spec, true);
  EXPECT_GT(on.speculations, 0);
  EXPECT_LT(on.jct, off.jct);  // copies on faster nodes beat the slow ones
}

TEST(Speculation, QuietOnHomogeneousClusters) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  const Outcome off = run(spec, false);
  const Outcome on = run(spec, true);
  // Even partitions on even machines: nothing lags 1.5× the median.
  EXPECT_EQ(on.speculations, 0);
  EXPECT_DOUBLE_EQ(on.jct, off.jct);
}

TEST(Speculation, AttemptAccountingIsConsistent) {
  const Outcome on = run(heterogeneous(), true);
  // 30 primary attempts plus one per launched copy (copies that were still
  // queued when the primary won never became attempts).
  EXPECT_GE(on.total_attempts, 30);
  EXPECT_LE(on.total_attempts, 30 + on.speculations);
}

TEST(Speculation, DeterministicForSeed) {
  const Outcome a = run(heterogeneous(), true, 9);
  const Outcome b = run(heterogeneous(), true, 9);
  EXPECT_DOUBLE_EQ(a.jct, b.jct);
  EXPECT_EQ(a.speculations, b.speculations);
}

TEST(Speculation, RejectsIncompatibleModes) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::paper_prototype(), 1);
  const dag::JobDag job = wide_job();
  RunOptions agg;
  agg.speculation = true;
  agg.plan.pipelined_shuffle = true;
  EXPECT_THROW(JobRun(cluster, job, agg), CheckError);
  RunOptions bad;
  bad.speculation = true;
  bad.speculation_threshold = 0.9;
  EXPECT_THROW(JobRun(cluster, job, bad), CheckError);
}

TEST(Speculation, ComposesWithTaskFaults) {
  // Speculation and task-abort fault injection used to be mutually
  // exclusive; now copies and retries coexist: an aborted copy clears the
  // way for a fresh one, an aborted primary leaves the task to its copy.
  sim::Simulator sim;
  sim::Cluster cluster(sim, heterogeneous(), 42);
  RunOptions opt;
  opt.speculation = true;
  opt.task_failure_rate = 0.2;
  opt.seed = 42;
  const dag::JobDag job = wide_job();
  JobRun jr(cluster, job, opt);
  jr.start();
  sim.run();
  ASSERT_TRUE(jr.finished());
  ASSERT_FALSE(jr.result().failed);
  EXPECT_EQ(cluster.executors().total_busy(), 0);
  EXPECT_EQ(cluster.fabric().active_flows(), 0u);
  EXPECT_GT(jr.speculative_attempts(), 0);
  int retries = 0;
  for (const auto& t : jr.result().tasks) retries += t.attempts - 1;
  EXPECT_GT(retries, 0);
  EXPECT_GT(jr.result().wasted_seconds(), 0.0);
}

TEST(Speculation, SlowNodesStretchComputeWithoutSpeculation) {
  // Sanity on the speed model itself: the same job is slower on a cluster
  // whose machines are uniformly half speed.
  sim::ClusterSpec slow = sim::ClusterSpec::paper_prototype();
  slow.node_speed_min = slow.node_speed_max = 0.5;
  const Outcome fast = run(sim::ClusterSpec::paper_prototype(), false);
  const Outcome half = run(slow, false);
  EXPECT_GT(half.jct, 1.3 * fast.jct);
}

}  // namespace
}  // namespace ds::engine
