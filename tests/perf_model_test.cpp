#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/perf_model.h"
#include "core/profile.h"
#include "util/check.h"
#include "sim/cluster.h"
#include "util/units.h"

namespace ds::core {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out, double skew = 0.0) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  s.task_skew = skew;
  return s;
}

// Round-number cluster for hand-checkable arithmetic.
sim::ClusterSpec toy_spec() {
  sim::ClusterSpec s;
  s.num_workers = 10;
  s.executors_per_worker = 2;
  s.nic_bw_min = 10.0e6;  // exactly 10 MB/s per NIC (field is bytes/s)
  s.nic_bw_max = 10.0e6;
  s.disk_bw = 50_MBps;
  s.loopback_bw = 1000_MBps;
  s.num_storage_nodes = 2;
  s.congestion_penalty = 0.0;
  return s;
}

TEST(PerfModel, WorkTermsMatchEq1) {
  dag::JobDag j("m");
  j.add_stage(mk("src", 20, 1_GB, 5_MBps, 200_MB));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const PerfModel m(p);
  EXPECT_DOUBLE_EQ(m.read_work(0), 1e9);
  EXPECT_DOUBLE_EQ(m.compute_work(0), 1e9 / 5e6);  // Σs / R_k (executor-secs)
  EXPECT_DOUBLE_EQ(m.write_work(0), 2e8);
  EXPECT_DOUBLE_EQ(m.write_rate_alone(), 10 * 50e6);
}

TEST(PerfModel, SourceReadGatedByStorageTier) {
  dag::JobDag j("m");
  j.add_stage(mk("src", 20, 1_GB, 5_MBps, 200_MB));
  j.add_stage(mk("red", 20, 200_MB, 5_MBps, 0));
  j.add_edge(0, 1);
  const JobProfile p = JobProfile::from(j, toy_spec());
  const PerfModel m(p);
  // Source: min(10 workers, 2 storage nodes) × 10 MB/s.
  EXPECT_DOUBLE_EQ(m.read_rate_alone(0), 2 * 10e6);
  // Shuffle: workers' aggregate.
  EXPECT_DOUBLE_EQ(m.read_rate_alone(1), 10 * 10e6);
}

TEST(PerfModel, UsableExecutorsCappedByTasksAndCluster) {
  dag::JobDag j("m");
  j.add_stage(mk("small", 4, 1_GB, 5_MBps, 0));
  j.add_stage(mk("big", 100, 1_GB, 5_MBps, 0));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const PerfModel m(p);
  EXPECT_DOUBLE_EQ(m.usable_executors(0), 4.0);
  EXPECT_DOUBLE_EQ(m.usable_executors(1), 20.0);  // cluster has 20 slots
}

TEST(PerfModel, StragglerFactorGrowsWithSkewAndTasks) {
  dag::JobDag j("m");
  j.add_stage(mk("flat", 40, 1_GB, 5_MBps, 0, 0.0));
  j.add_stage(mk("skew", 40, 1_GB, 5_MBps, 0, 0.3));
  j.add_stage(mk("skew-few", 4, 1_GB, 5_MBps, 0, 0.3));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const PerfModel m(p);
  EXPECT_DOUBLE_EQ(m.straggler_factor(0), 1.0);
  EXPECT_GT(m.straggler_factor(1), 1.3);
  EXPECT_GT(m.straggler_factor(1), m.straggler_factor(2));
  // The tail is the largest task's compute time.
  EXPECT_NEAR(m.straggler_tail(1),
              m.compute_work(1) / 40 * m.straggler_factor(1), 1e-9);
}

TEST(PerfModel, SoloTimeSumsPhases) {
  dag::JobDag j("m");
  j.add_stage(mk("src", 20, 1_GB, 5_MBps, 200_MB));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const PerfModel m(p);
  const PhaseTimes t = m.stage_phases(0, Shares{});
  EXPECT_DOUBLE_EQ(t.read, 1e9 / (2 * 10e6));
  EXPECT_DOUBLE_EQ(t.compute, (1e9 / 5e6) / 20.0);
  EXPECT_DOUBLE_EQ(t.write, 2e8 / (10 * 50e6));
  EXPECT_DOUBLE_EQ(m.solo_time(0), t.total());
}

TEST(PerfModel, SharesSlowEveryPhase) {
  dag::JobDag j("m");
  j.add_stage(mk("src", 20, 1_GB, 5_MBps, 200_MB));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const PerfModel m(p);
  Shares two;
  two.network = 2;
  two.cpu = 2;
  two.disk = 2;
  const PhaseTimes solo = m.stage_phases(0, Shares{});
  const PhaseTimes shared = m.stage_phases(0, two);
  EXPECT_DOUBLE_EQ(shared.read, 2 * solo.read);
  EXPECT_DOUBLE_EQ(shared.compute, 2 * solo.compute);
  EXPECT_DOUBLE_EQ(shared.write, 2 * solo.write);
}

TEST(Evaluator, SingleStageMatchesSoloPhases) {
  dag::JobDag j("m");
  j.add_stage(mk("src", 20, 1_GB, 5_MBps, 200_MB));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const ScheduleEvaluator ev(p);
  const Evaluation e = ev.evaluate({});
  const PerfModel m(p);
  // Slot quantisation rounds up and the read tail crawls on one NIC;
  // allow several slots of slack.
  EXPECT_NEAR(e.jct, m.solo_time(0), 6.0);
  EXPECT_GE(e.stages[0].read_done, 0);
  EXPECT_GE(e.stages[0].finish, e.stages[0].read_done);
}

TEST(Evaluator, ChainChildStartsAtParentFinish) {
  dag::JobDag j("m");
  j.add_stage(mk("src", 20, 1_GB, 5_MBps, 200_MB));
  j.add_stage(mk("red", 20, 200_MB, 5_MBps, 0));
  j.add_edge(0, 1);
  const JobProfile p = JobProfile::from(j, toy_spec());
  const ScheduleEvaluator ev(p);
  const Evaluation e = ev.evaluate({});
  EXPECT_DOUBLE_EQ(e.stages[1].ready, e.stages[0].finish);
  EXPECT_GE(e.stages[1].finish, e.stages[1].submitted);
}

TEST(Evaluator, DelayQuantisedToSlotGrid) {
  dag::JobDag j("m");
  j.add_stage(mk("src", 20, 1_GB, 5_MBps, 200_MB));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const ScheduleEvaluator ev(p, /*slot=*/1.0);
  const Evaluation e = ev.evaluate({17.0});
  EXPECT_NEAR(e.stages[0].submitted, 17.0, 1.0);
  EXPECT_THROW(ev.evaluate({-3.0}), ds::CheckError);
}

TEST(Evaluator, TwoIdenticalParallelStagesSlowEachOther) {
  dag::JobDag j("m");
  j.add_stage(mk("a", 10, 1_GB, 5_MBps, 0));
  j.add_stage(mk("b", 10, 1_GB, 5_MBps, 0));
  const JobProfile p = JobProfile::from(j, toy_spec());
  const ScheduleEvaluator ev(p);

  dag::JobDag solo("s");
  solo.add_stage(mk("a", 10, 1_GB, 5_MBps, 0));
  const JobProfile ps = JobProfile::from(solo, toy_spec());
  const ScheduleEvaluator evs(ps);

  EXPECT_GT(ev.evaluate({}).stages[0].finish, evs.evaluate({}).stages[0].finish);
}

TEST(Evaluator, ParallelEndIsMaxOverParallelSet) {
  dag::JobDag j("m");
  j.add_stage(mk("a", 10, 1_GB, 5_MBps, 100_MB));
  j.add_stage(mk("b", 10, 500_MB, 5_MBps, 100_MB));
  j.add_stage(mk("tail", 10, 200_MB, 5_MBps, 0));
  j.add_edge(0, 2);
  j.add_edge(1, 2);
  const JobProfile p = JobProfile::from(j, toy_spec());
  const Evaluation e = ScheduleEvaluator(p).evaluate({});
  EXPECT_DOUBLE_EQ(e.parallel_end,
                   std::max(e.stages[0].finish, e.stages[1].finish));
  EXPECT_GT(e.jct, e.parallel_end);  // the sequential tail runs after
}

TEST(Evaluator, ZeroWorkStagesFinishImmediately) {
  dag::JobDag j("m");
  j.add_stage(mk("noop", 1, 0, 0, 0));
  j.add_stage(mk("noop2", 1, 0, 0, 0));
  j.add_edge(0, 1);
  const JobProfile p = JobProfile::from(j, toy_spec());
  const Evaluation e = ScheduleEvaluator(p).evaluate({});
  EXPECT_DOUBLE_EQ(e.jct, 0.0);
}

}  // namespace
}  // namespace ds::core
