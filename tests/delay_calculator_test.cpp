#include <gtest/gtest.h>

#include <set>

#include "core/delay_calculator.h"
#include "core/stage_delayer.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"
#include "workloads/workloads.h"

namespace ds::core {
namespace {

using namespace ds;  // literals

// Random layered volumetric DAG for property sweeps.
dag::JobDag random_job(std::uint64_t seed) {
  Rng rng(seed);
  dag::JobDag j("rand" + std::to_string(seed));
  const int layers = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<std::vector<dag::StageId>> layer_ids(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    const int width = static_cast<int>(rng.uniform_int(1, 3));
    for (int w = 0; w < width; ++w) {
      dag::Stage s;
      s.name = "s";
      s.num_tasks = static_cast<int>(rng.uniform_int(8, 40));
      s.input_bytes = rng.uniform(0.5, 6.0) * 1e9;
      s.process_rate = rng.uniform(1.0, 4.0) * 1e6;
      s.output_bytes = rng.uniform(0.1, 2.0) * 1e9;
      s.task_skew = rng.uniform(0.0, 0.3);
      layer_ids[static_cast<std::size_t>(l)].push_back(j.add_stage(s));
    }
    if (l > 0) {
      for (dag::StageId c : layer_ids[static_cast<std::size_t>(l)]) {
        // Each stage gets at least one parent from the previous layer.
        const auto& prev = layer_ids[static_cast<std::size_t>(l - 1)];
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1));
        j.add_edge(prev[pick], c);
        if (rng.chance(0.4) && prev.size() > 1)
          j.add_edge(prev[(pick + 1) % prev.size()], c);
      }
    }
  }
  return j;
}

class CalculatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalculatorProperty, ConstraintsAndImprovementHold) {
  const dag::JobDag j = random_job(GetParam());
  const auto spec = sim::ClusterSpec::paper_prototype();
  const JobProfile p = JobProfile::from(j, spec);
  const DelayCalculator calc(p);
  const DelaySchedule sched = calc.compute();

  // Constraint (5): x_k >= 0; sequential stages never delayed.
  ASSERT_EQ(sched.delay.size(), static_cast<std::size_t>(j.num_stages()));
  const auto k_set = j.parallel_stage_set();
  const std::set<dag::StageId> k(k_set.begin(), k_set.end());
  for (dag::StageId s = 0; s < j.num_stages(); ++s) {
    EXPECT_GE(sched.delay[static_cast<std::size_t>(s)], 0.0);
    if (!k.contains(s))
      EXPECT_DOUBLE_EQ(sched.delay[static_cast<std::size_t>(s)], 0.0);
  }

  // Greedy never worsens the model makespan relative to stock.
  const ScheduleEvaluator ev(p);
  const Evaluation stock = ev.evaluate({});
  EXPECT_LE(sched.predicted_makespan, stock.parallel_end + 1e-6);

  // Delays bounded by the initial makespan (u_k = T_max, line 10).
  for (Seconds d : sched.delay) EXPECT_LE(d, stock.parallel_end + 1e-6);

  // Dependency constraints (6)-(7) hold by construction: delays are relative
  // to readiness; verify via the evaluator's timelines.
  const Evaluation e = ev.evaluate(sched.delay);
  for (dag::StageId s = 0; s < j.num_stages(); ++s) {
    for (dag::StageId par : j.parents(s)) {
      EXPECT_GE(e.stages[static_cast<std::size_t>(s)].submitted,
                e.stages[static_cast<std::size_t>(par)].finish - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, CalculatorProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(DelayCalculator, ImprovesEveryBenchmarkWorkloadInModel) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const auto& wl : workloads::benchmark_suite()) {
    const JobProfile p = JobProfile::from(wl.dag, spec);
    const DelaySchedule sched = DelayCalculator(p).compute();
    const Evaluation stock = ScheduleEvaluator(p).evaluate({});
    EXPECT_LT(sched.predicted_makespan, stock.parallel_end) << wl.name;
    EXPECT_LT(sched.predicted_jct, stock.jct) << wl.name;
    // At least one stage actually delayed.
    bool any = false;
    for (Seconds d : sched.delay) any |= d > 0;
    EXPECT_TRUE(any) << wl.name;
  }
}

TEST(DelayCalculator, ChainJobNeedsNoDelays) {
  dag::JobDag j("chain");
  for (int i = 0; i < 3; ++i) {
    dag::Stage s;
    s.name = "c";
    s.num_tasks = 10;
    s.input_bytes = 1_GB;
    s.process_rate = 2_MBps;
    s.output_bytes = 500_MB;
    j.add_stage(s);
  }
  j.add_edge(0, 1);
  j.add_edge(1, 2);
  const JobProfile p = JobProfile::from(j, sim::ClusterSpec::paper_prototype());
  const DelaySchedule sched = DelayCalculator(p).compute();
  for (Seconds d : sched.delay) EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_TRUE(sched.paths.empty());
}

TEST(DelayCalculator, AllPathOrdersProduceValidSchedules) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  const dag::JobDag j = workloads::triangle_count();
  const JobProfile p = JobProfile::from(j, spec);
  const Evaluation stock = ScheduleEvaluator(p).evaluate({});
  for (PathOrder order : {PathOrder::kDescending, PathOrder::kRandom,
                          PathOrder::kAscending}) {
    CalculatorOptions opt;
    opt.order = order;
    const DelaySchedule sched = DelayCalculator(p, opt).compute();
    EXPECT_LE(sched.predicted_makespan, stock.parallel_end + 1e-6)
        << to_string(order);
  }
}

TEST(DelayCalculator, ExhaustiveScanAtLeastAsGoodAsItsOwnBaseline) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  const dag::JobDag j = workloads::lda();
  const JobProfile p = JobProfile::from(j, spec);
  CalculatorOptions opt;
  opt.coarse_to_fine = false;
  opt.step = 10.0;  // keep the exhaustive scan affordable
  const DelaySchedule sched = DelayCalculator(p, opt).compute();
  const Evaluation stock = ScheduleEvaluator(p).evaluate({});
  EXPECT_LE(sched.predicted_makespan, stock.parallel_end + 1e-6);
}

TEST(StageDelayer, PropertiesRoundTrip) {
  DelaySchedule s;
  s.delay = {0.0, 110.5, 0.0, 42.0};
  const StageDelayer delayer(s);
  const std::string text = delayer.to_properties();
  EXPECT_NE(text.find("spark.delaystage.stage.1=110.5"), std::string::npos);
  const DelaySchedule back = StageDelayer::from_properties(text);
  ASSERT_EQ(back.delay.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(back.delay[i], s.delay[i]);
}

TEST(StageDelayer, FromPropertiesIgnoresCommentsAndForeignKeys) {
  const std::string text =
      "# DelayStage schedule\n"
      "spark.executor.memory=2g\n"
      "spark.delaystage.stage.2=17\n"
      "\n";
  const DelaySchedule s = StageDelayer::from_properties(text);
  ASSERT_EQ(s.delay.size(), 3u);
  EXPECT_DOUBLE_EQ(s.delay[2], 17.0);
  EXPECT_DOUBLE_EQ(s.delay[0], 0.0);
}

TEST(StageDelayer, RejectsMalformedProperties) {
  EXPECT_THROW(StageDelayer::from_properties("spark.delaystage.stage.x=3\n"),
               CheckError);
  EXPECT_THROW(StageDelayer::from_properties("spark.delaystage.stage.1=abc\n"),
               CheckError);
  EXPECT_THROW(StageDelayer::from_properties("spark.delaystage.stage.1=-5\n"),
               CheckError);
}

TEST(StageDelayer, PlanCarriesDelays) {
  DelaySchedule s;
  s.delay = {5.0, 0.0};
  const engine::SubmissionPlan plan = StageDelayer(s).plan();
  EXPECT_DOUBLE_EQ(plan.delay_for(0), 5.0);
  EXPECT_DOUBLE_EQ(plan.delay_for(1), 0.0);
  EXPECT_DOUBLE_EQ(plan.delay_for(7), 0.0);  // out of range -> 0
  EXPECT_FALSE(plan.pipelined_shuffle);
}

}  // namespace
}  // namespace ds::core
