#include <gtest/gtest.h>

#include "engine/job_run.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "workloads/workloads.h"

namespace ds::sched {
namespace {

double run_jct(const dag::JobDag& dag, const sim::ClusterSpec& spec,
               Strategy& strategy, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, seed);
  engine::RunOptions opt;
  opt.plan = strategy.plan(dag, cluster);
  opt.seed = seed;
  engine::JobRun run(cluster, dag, opt);
  run.start();
  sim.run();
  return run.result().jct;
}

TEST(Strategy, FactoryKnowsTheLineup) {
  for (const char* name :
       {"Spark", "AggShuffle", "Fuxi", "DelayStage", "random DelayStage",
        "ascending DelayStage"}) {
    const auto s = make_strategy(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_THROW(make_strategy("Quincy"), CheckError);
}

TEST(Strategy, StockSparkAndFuxiAreZeroDelay) {
  const auto dag = workloads::lda();
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const char* name : {"Spark", "Fuxi"}) {
    const auto plan = make_strategy(name)->plan(dag, spec);
    for (dag::StageId s = 0; s < dag.num_stages(); ++s)
      EXPECT_DOUBLE_EQ(plan.delay_for(s), 0.0);
    EXPECT_FALSE(plan.pipelined_shuffle);
  }
}

TEST(Strategy, AggShufflePipelinesWithoutDelays) {
  const auto dag = workloads::lda();
  const auto plan = make_strategy("AggShuffle")
                        ->plan(dag, sim::ClusterSpec::paper_prototype());
  EXPECT_TRUE(plan.pipelined_shuffle);
  for (dag::StageId s = 0; s < dag.num_stages(); ++s)
    EXPECT_DOUBLE_EQ(plan.delay_for(s), 0.0);
}

TEST(Strategy, DelayStageDelaysSomething) {
  DelayStageStrategy strategy;
  const auto dag = workloads::cosine_similarity();
  const auto plan = strategy.plan(dag, sim::ClusterSpec::paper_prototype());
  double total = 0;
  for (dag::StageId s = 0; s < dag.num_stages(); ++s)
    total += plan.delay_for(s);
  EXPECT_GT(total, 0.0);
  EXPECT_FALSE(plan.pipelined_shuffle);
  EXPECT_GT(strategy.last_schedule().predicted_jct, 0.0);
}

// The headline property (Fig. 10): DelayStage beats stock Spark on every
// benchmark workload, on the engine, across seeds.
class Fig10Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fig10Property, DelayStageBeatsStockSpark) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const auto& wl : workloads::benchmark_suite()) {
    StockSparkStrategy stock;
    DelayStageStrategy ds;
    const double jct_stock = run_jct(wl.dag, spec, stock, GetParam());
    const double jct_ds = run_jct(wl.dag, spec, ds, GetParam());
    EXPECT_LT(jct_ds, jct_stock * 1.02) << wl.name << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig10Property, ::testing::Values(42, 7, 99));

}  // namespace
}  // namespace ds::sched
