#include <gtest/gtest.h>

#include "sim/fair_queue.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace ds::sim {
namespace {

TEST(FairQueue, SingleClaimTakesVolumeOverCapacity) {
  Simulator sim;
  FairQueue q(sim, 100.0);  // 100 B/s
  double done_at = -1;
  q.submit(1000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 10.0, 1e-6);
}

TEST(FairQueue, TwoClaimsShareEqually) {
  Simulator sim;
  FairQueue q(sim, 100.0);
  double a = -1, b = -1;
  q.submit(1000.0, [&] { a = sim.now(); });
  q.submit(1000.0, [&] { b = sim.now(); });
  sim.run();
  EXPECT_NEAR(a, 20.0, 1e-6);
  EXPECT_NEAR(b, 20.0, 1e-6);
}

TEST(FairQueue, StaggeredArrivalsSplitBandwidthFromArrival) {
  Simulator sim;
  FairQueue q(sim, 100.0);
  double a = -1, b = -1;
  q.submit(1000.0, [&] { a = sim.now(); });
  sim.schedule_at(5.0, [&] { q.submit(500.0, [&] { b = sim.now(); }); });
  sim.run();
  // A: 500 B alone by t=5, then 50 B/s -> t=15. B: 500 B at 50 B/s -> t=15.
  EXPECT_NEAR(a, 15.0, 1e-6);
  EXPECT_NEAR(b, 15.0, 1e-6);
}

TEST(FairQueue, UnequalVolumesFinishAtDifferentTimes) {
  Simulator sim;
  FairQueue q(sim, 100.0);
  double small = -1, large = -1;
  q.submit(200.0, [&] { small = sim.now(); });
  q.submit(1000.0, [&] { large = sim.now(); });
  sim.run();
  // Shared 50/50 until small done at t=4 (200/50); large then has 800 left
  // at full rate: 4 + 800/100 = 12.
  EXPECT_NEAR(small, 4.0, 1e-6);
  EXPECT_NEAR(large, 12.0, 1e-6);
}

TEST(FairQueue, ZeroVolumeCompletesImmediately) {
  Simulator sim;
  FairQueue q(sim, 100.0);
  double at = -1;
  q.submit(0.0, [&] { at = sim.now(); });
  sim.run();
  EXPECT_NEAR(at, 0.0, 1e-9);
}

TEST(FairQueue, CancelDropsClaimAndRestoresBandwidth) {
  Simulator sim;
  FairQueue q(sim, 100.0);
  double a = -1;
  bool b_fired = false;
  q.submit(1000.0, [&] { a = sim.now(); });
  const ClaimId bid = q.submit(1000.0, [&] { b_fired = true; });
  sim.schedule_at(4.0, [&] { q.cancel(bid); });
  sim.run();
  EXPECT_FALSE(b_fired);
  // A: 4s at 50 B/s = 200, then 800 at 100 B/s -> t=12.
  EXPECT_NEAR(a, 12.0, 1e-6);
}

TEST(FairQueue, CompletionCallbackMaySubmitMore) {
  Simulator sim;
  FairQueue q(sim, 100.0);
  double second_done = -1;
  q.submit(500.0, [&] { q.submit(500.0, [&] { second_done = sim.now(); }); });
  sim.run();
  EXPECT_NEAR(second_done, 10.0, 1e-6);
}

TEST(FairQueue, ServicedAccounting) {
  Simulator sim;
  FairQueue q(sim, 100.0);
  q.submit(300.0, nullptr);
  q.submit(700.0, nullptr);
  sim.run();
  q.sync();
  EXPECT_NEAR(q.total_serviced(), 1000.0, 1e-3);
  EXPECT_EQ(q.active(), 0u);
}

TEST(FairQueue, ShareReflectsActiveClaims) {
  Simulator sim;
  FairQueue q(sim, 90.0);
  q.submit(1e6, nullptr);
  q.submit(1e6, nullptr);
  q.submit(1e6, nullptr);
  EXPECT_NEAR(q.share(), 30.0, 1e-9);
  EXPECT_EQ(q.active(), 3u);
  EXPECT_NEAR(q.current_rate(), 90.0, 1e-9);
}

TEST(FairQueue, RejectsInvalidArguments) {
  Simulator sim;
  EXPECT_THROW(FairQueue(sim, 0.0), CheckError);
  FairQueue q(sim, 1.0);
  EXPECT_THROW(q.submit(-1.0, nullptr), CheckError);
}

}  // namespace
}  // namespace ds::sim
