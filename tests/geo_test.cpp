#include <gtest/gtest.h>

#include "engine/job_run.h"
#include "sched/strategy.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/units.h"
#include "workloads/workloads.h"

namespace ds::sim {
namespace {

using namespace ds;  // literals

TEST(GeoFabric, CrossSiteFlowsShareTheWanPipe) {
  Simulator sim;
  // Two sites of one node each, fat NICs, thin WAN: the WAN binds.
  NetworkFabric net(sim, {100.0, 100.0, 100.0, 100.0}, 1000.0,
                    /*group_penalty=*/0.0, /*site_of=*/{0, 1, 0, 1},
                    /*wan_bw=*/20.0);
  double a = -1, b = -1;
  net.start_flow({.src = 0, .dst = 1, .bytes = 100.0,
                  .on_complete = [&] { a = sim.now(); }});
  net.start_flow({.src = 2, .dst = 3, .bytes = 100.0,
                  .on_complete = [&] { b = sim.now(); }});
  sim.run();
  // Two flows share the 20 B/s site-0 -> site-1 WAN port: 10 B/s each.
  EXPECT_NEAR(a, 10.0, 1e-6);
  EXPECT_NEAR(b, 10.0, 1e-6);
}

TEST(GeoFabric, IntraSiteFlowsBypassTheWan) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0, 100.0, 100.0}, 1000.0, 0.0,
                    {0, 1, 0, 1}, 20.0);
  double local = -1;
  net.start_flow({.src = 0, .dst = 2, .bytes = 1000.0,
                  .on_complete = [&] { local = sim.now(); }});
  sim.run();
  EXPECT_NEAR(local, 10.0, 1e-6);  // full NIC speed, no WAN involvement
}

TEST(GeoFabric, WanDirectionsAreIndependent) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0, 0.0, {0, 1}, 20.0);
  double fwd = -1, rev = -1;
  net.start_flow({.src = 0, .dst = 1, .bytes = 200.0,
                  .on_complete = [&] { fwd = sim.now(); }});
  net.start_flow({.src = 1, .dst = 0, .bytes = 200.0,
                  .on_complete = [&] { rev = sim.now(); }});
  sim.run();
  // Opposite directions use distinct WAN ports: both run at 20 B/s.
  EXPECT_NEAR(fwd, 10.0, 1e-6);
  EXPECT_NEAR(rev, 10.0, 1e-6);
}

TEST(GeoFabric, RejectsMultiSiteWithoutWanCapacity) {
  Simulator sim;
  EXPECT_THROW(NetworkFabric(sim, {100.0, 100.0}, 1000.0, 0.0, {0, 1}, 0.0),
               CheckError);
  EXPECT_THROW(NetworkFabric(sim, {100.0, 100.0}, 1000.0, 0.0, {0}, 10.0),
               CheckError);
}

TEST(GeoCluster, SpecAndSiteLayout) {
  Simulator sim;
  const auto spec = ClusterSpec::geo_two_sites();
  EXPECT_EQ(spec.num_sites, 2);
  EXPECT_GT(spec.wan_bw, 0);
  Cluster c(sim, spec, 1);
  int site0 = 0, site1 = 0;
  for (int n = 0; n < c.total_nodes(); ++n)
    (c.site_of(n) == 0 ? site0 : site1)++;
  EXPECT_NEAR(site0, site1, 1);  // round-robin split
}

TEST(GeoCluster, WanSlowsJobsAndDelayStageStillHelps) {
  const auto dag = ds::workloads::cosine_similarity();
  auto run = [&](const ClusterSpec& spec, const char* strategy) {
    Simulator sim;
    Cluster cluster(sim, spec, 42);
    auto strat = sched::make_strategy(strategy);
    engine::RunOptions opt;
    opt.plan = strat->plan(dag, spec);
    opt.seed = 42;
    engine::JobRun jr(cluster, dag, opt);
    jr.start();
    sim.run();
    return jr.result().jct;
  };
  const double lan_stock = run(ClusterSpec::paper_prototype(), "Spark");
  const double wan_stock = run(ClusterSpec::geo_two_sites(), "Spark");
  EXPECT_GT(wan_stock, lan_stock);  // the thin WAN pipe hurts
  const double wan_ds = run(ClusterSpec::geo_two_sites(), "DelayStage");
  EXPECT_LT(wan_ds, wan_stock * 1.02);  // DelayStage never worse
}

}  // namespace
}  // namespace ds::sim
