// Determinism and equivalence suite for the parallel planner: thread-count
// invariance of the calculator and the trace replay, scratch-arena reuse,
// fast-forward bit-exactness, memoized duplicate elimination, and the
// incremental scan against per-candidate scoring.
#include <gtest/gtest.h>

#include <vector>

#include "core/delay_calculator.h"
#include "core/evaluator.h"
#include "core/profile.h"
#include "sim/cluster.h"
#include "trace/replay.h"
#include "trace/synthetic.h"
#include "util/thread_pool.h"
#include "workloads/workloads.h"

namespace ds::core {
namespace {

using namespace ds;  // literals

void expect_same_evaluation(const Evaluation& a, const Evaluation& b) {
  // Bit-exact, not approximate: the paths under test promise the identical
  // arithmetic, so every double must match exactly.
  EXPECT_EQ(a.jct, b.jct);
  EXPECT_EQ(a.parallel_end, b.parallel_end);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].ready, b.stages[s].ready) << "stage " << s;
    EXPECT_EQ(a.stages[s].submitted, b.stages[s].submitted) << "stage " << s;
    EXPECT_EQ(a.stages[s].read_done, b.stages[s].read_done) << "stage " << s;
    EXPECT_EQ(a.stages[s].compute_done, b.stages[s].compute_done)
        << "stage " << s;
    EXPECT_EQ(a.stages[s].finish, b.stages[s].finish) << "stage " << s;
  }
}

// A few delay vectors with different shapes per workload: no delays, a
// uniform stagger, and an alternating one.
std::vector<std::vector<Seconds>> probe_delays(std::size_t n) {
  std::vector<std::vector<Seconds>> out;
  out.emplace_back(n, 0.0);
  out.emplace_back(n, 25.0);
  std::vector<Seconds> alt(n, 0.0);
  for (std::size_t i = 1; i < n; i += 2)
    alt[i] = 10.0 * static_cast<double>(i);
  out.push_back(std::move(alt));
  return out;
}

TEST(PlannerParallel, ComputeIsBitIdenticalAcrossThreadCounts) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const auto& w : workloads::benchmark_suite()) {
    const JobProfile profile = JobProfile::from(w.dag, spec);
    CalculatorOptions one;
    one.threads = 1;
    const DelaySchedule a = DelayCalculator(profile, one).compute();
    for (int threads : {4, 8}) {
      CalculatorOptions many = one;
      many.threads = threads;
      const DelaySchedule b = DelayCalculator(profile, many).compute();
      EXPECT_EQ(a.delay, b.delay) << w.name << " @" << threads;
      EXPECT_EQ(a.predicted_makespan, b.predicted_makespan) << w.name;
      EXPECT_EQ(a.predicted_jct, b.predicted_jct) << w.name;
    }
  }
}

TEST(PlannerParallel, ReplayIsBitIdenticalAcrossThreadCounts) {
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 40;
  topt.seed = 11;
  const auto jobs = trace::synthetic_trace(topt);
  trace::ReplayOptions ropt;
  ropt.strategy = "DelayStage";
  ropt.cluster.num_workers = 40;
  ropt.seed = 3;
  ropt.threads = 1;
  const trace::ReplayResult a = trace::replay(jobs, ropt);
  ropt.threads = 8;
  const trace::ReplayResult b = trace::replay(jobs, ropt);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish) << "job " << i;
    EXPECT_EQ(a.jobs[i].jct, b.jobs[i].jct) << "job " << i;
    EXPECT_EQ(a.jobs[i].dedicated_time, b.jobs[i].dedicated_time)
        << "job " << i;
  }
}

TEST(PlannerParallel, ReusedScratchMatchesFreshArena) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const auto& w : workloads::benchmark_suite()) {
    const JobProfile profile = JobProfile::from(w.dag, spec);
    const ScheduleEvaluator eval(profile);
    EvalScratch warm;  // reused across every evaluation below
    for (const auto& delay :
         probe_delays(static_cast<std::size_t>(w.dag.num_stages()))) {
      const Evaluation reused = eval.evaluate(delay, warm);
      EvalScratch fresh;
      const Evaluation cold = eval.evaluate(delay, fresh);
      expect_same_evaluation(reused, cold);
    }
  }
}

TEST(PlannerParallel, FastForwardMatchesNaiveMarch) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const auto& w : workloads::benchmark_suite()) {
    const JobProfile profile = JobProfile::from(w.dag, spec);
    ScheduleEvaluator fast(profile);
    ScheduleEvaluator naive(profile);
    naive.set_fast_forward(false);
    for (const auto& delay :
         probe_delays(static_cast<std::size_t>(w.dag.num_stages()))) {
      expect_same_evaluation(fast.evaluate(delay), naive.evaluate(delay));
    }
    // The fast path must actually have skipped work to count as exercised.
    EXPECT_GT(fast.slots_skipped(), 0u) << w.name;
    EXPECT_EQ(naive.slots_skipped(), 0u) << w.name;
  }
}

TEST(PlannerParallel, MemoEliminatesDuplicateEvaluationsUnchangedResult) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  for (const auto& w : workloads::benchmark_suite()) {
    const JobProfile profile = JobProfile::from(w.dag, spec);
    CalculatorOptions plain;
    plain.memoize = false;
    const DelaySchedule a = DelayCalculator(profile, plain).compute();
    CalculatorOptions memo = plain;
    memo.memoize = true;
    const DelaySchedule b = DelayCalculator(profile, memo).compute();
    // Identical plan, strictly less simulation: Alg. 1 re-baselines at x = 0
    // and re-visits coarse grid points, and the memo answers those hits.
    EXPECT_EQ(a.delay, b.delay) << w.name;
    EXPECT_EQ(a.predicted_makespan, b.predicted_makespan) << w.name;
    EXPECT_EQ(a.predicted_jct, b.predicted_jct) << w.name;
    EXPECT_GT(b.memo_hits, 0u) << w.name;
    EXPECT_LT(b.evaluations, a.evaluations) << w.name;
    EXPECT_EQ(a.memo_hits, 0u) << w.name;
  }
}

TEST(PlannerParallel, ScanMatchesPerCandidateScore) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  ThreadPool pool(4);
  for (const auto& w : workloads::benchmark_suite()) {
    const JobProfile profile = JobProfile::from(w.dag, spec);
    const ScheduleEvaluator eval(profile);
    const auto n = static_cast<std::size_t>(w.dag.num_stages());
    // Candidate grid including x = 0 (the bypass path) and large offsets.
    const std::vector<Seconds> xs = {0.0, 3.0, 17.0, 60.0, 155.0, 400.0};
    for (dag::StageId k = 0; k < w.dag.num_stages(); ++k) {
      for (bool pooled : {false, true}) {
        std::vector<Seconds> delay(n, 0.0);
        delay[static_cast<std::size_t>(2 * k) % n] = 12.0;  // vary the base
        std::vector<Score> scanned;
        eval.scan(delay, k, xs, scanned, nullptr, pooled ? &pool : nullptr);
        ASSERT_EQ(scanned.size(), xs.size());
        EvalScratch scratch;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          delay[static_cast<std::size_t>(k)] = xs[i];
          const Score direct = eval.score(delay, scratch);
          EXPECT_EQ(scanned[i].makespan, direct.makespan)
              << w.name << " stage " << k << " x=" << xs[i];
          EXPECT_EQ(scanned[i].jct, direct.jct)
              << w.name << " stage " << k << " x=" << xs[i];
        }
      }
    }
  }
}

}  // namespace
}  // namespace ds::core
