#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/check.h"

namespace ds::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  sim.cancel(id);  // double-cancel is a no-op
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(424242);
  EXPECT_DOUBLE_EQ(sim.run(), 0.0);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  EXPECT_FALSE(sim.run_until(10.0));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilFiresOnlyEarlierEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(5); });
  EXPECT_TRUE(sim.run_until(2.0));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, EventsMayScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 3) sim.schedule_after(2.0, tick);
  };
  sim.schedule_at(1.0, tick);
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
  EXPECT_DOUBLE_EQ(times[2], 5.0);
}

TEST(Simulator, RejectsSchedulingIntoPast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), CheckError);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  double at = -1;
  sim.schedule_at(4.0, [&] { sim.schedule_after(0.0, [&] { at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(at, 4.0);
}

// --- indexed-heap core: exact size, true removal, generation safety ---

TEST(EventQueue, SizeIsExactThroughCancel) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.push(i, [] {}));
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  // Cancelled entries are really gone, not tombstoned.
  EXPECT_EQ(q.size(), 50u);
  SimTime t = 0;
  std::size_t popped = 0;
  while (!q.empty()) {
    (void)q.pop(t);
    ++popped;
  }
  EXPECT_EQ(popped, 50u);
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsRejected) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  // The slot is recycled with a bumped generation: the old handle must not
  // cancel the new occupant.
  const EventId b = q.push(2.0, [] {});
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(b));
}

TEST(EventQueue, CancelledTiesPreserveInsertionOrderOfSurvivors) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(sim.schedule_at(1.0, [&, i] { order.push_back(i); }));
  for (int i = 1; i < 10; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(EventQueue, MillionEventChurnDoesNotGrowMemory) {
  // Regression for the old lazy-deletion queue, where every cancel left a
  // tombstone in the heap and an entry in the side map: a reschedule-heavy
  // workload (the fabric cancels ~half of all pushes) grew without bound.
  // With true removal the slab stays bounded by the live watermark.
  EventQueue q;
  constexpr int kChurn = 1'000'000;
  constexpr int kLive = 64;
  std::vector<EventId> live;
  double t = 0;
  for (int i = 0; i < kLive; ++i) live.push_back(q.push(t += 1.0, [] {}));
  const std::size_t high_water = q.slab_capacity();
  std::size_t replaced = 0;
  for (int i = 0; i < kChurn; ++i) {
    const std::size_t victim = static_cast<std::size_t>(i) % live.size();
    EXPECT_TRUE(q.cancel(live[victim]));
    live[victim] = q.push(t += 1.0, [] {});
    ++replaced;
  }
  EXPECT_EQ(replaced, static_cast<std::size_t>(kChurn));
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kLive));
  // cancel-then-push reuses the freed slot: zero slab growth over 1M events.
  EXPECT_EQ(q.slab_capacity(), high_water);
}

}  // namespace
}  // namespace ds::sim
