#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/check.h"

namespace ds::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  sim.cancel(id);  // double-cancel is a no-op
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(424242);
  EXPECT_DOUBLE_EQ(sim.run(), 0.0);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  EXPECT_FALSE(sim.run_until(10.0));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilFiresOnlyEarlierEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(5); });
  EXPECT_TRUE(sim.run_until(2.0));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Simulator, EventsMayScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 3) sim.schedule_after(2.0, tick);
  };
  sim.schedule_at(1.0, tick);
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
  EXPECT_DOUBLE_EQ(times[2], 5.0);
}

TEST(Simulator, RejectsSchedulingIntoPast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), CheckError);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  double at = -1;
  sim.schedule_at(4.0, [&] { sim.schedule_after(0.0, [&] { at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(at, 4.0);
}

}  // namespace
}  // namespace ds::sim
