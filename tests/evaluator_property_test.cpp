// Property suites for the planner's model: slot-width robustness, delay
// monotonicity, straggler monotonicity, and calculator option behaviour.
#include <gtest/gtest.h>

#include "core/delay_calculator.h"
#include "core/evaluator.h"
#include "core/profile.h"
#include "sim/cluster.h"
#include "util/units.h"
#include "workloads/workloads.h"

namespace ds::core {
namespace {

using namespace ds;  // literals

class SlotWidth : public ::testing::TestWithParam<double> {};

TEST_P(SlotWidth, EvaluationIsStableAcrossSlotWidths) {
  const auto dag = workloads::cosine_similarity();
  const JobProfile p = JobProfile::from(dag, sim::ClusterSpec::paper_prototype());
  const double base = ScheduleEvaluator(p, 1.0).evaluate({}).jct;
  const double other = ScheduleEvaluator(p, GetParam()).evaluate({}).jct;
  // Coarser slots quantise transitions but must not change the physics.
  EXPECT_NEAR(other, base, base * 0.08 + 3 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Widths, SlotWidth, ::testing::Values(0.5, 2.0, 5.0));

TEST(EvaluatorProperty, DelayingAChainStageShiftsTheJct) {
  // A pure chain has no interleaving opportunity: delaying any stage moves
  // the JCT by exactly the delay (slot-quantised).
  dag::JobDag j("chain");
  for (int i = 0; i < 3; ++i) {
    dag::Stage s;
    s.name = "c";
    s.num_tasks = 10;
    s.input_bytes = 1_GB;
    s.process_rate = 2_MBps;
    s.output_bytes = 200_MB;
    j.add_stage(s);
  }
  j.add_edge(0, 1);
  j.add_edge(1, 2);
  const JobProfile p = JobProfile::from(j, sim::ClusterSpec::paper_prototype());
  const ScheduleEvaluator ev(p);
  const double base = ev.evaluate({}).jct;
  for (double d : {10.0, 50.0, 200.0}) {
    EXPECT_NEAR(ev.evaluate({0, d, 0}).jct, base + d, 2.0) << "delay " << d;
  }
}

TEST(EvaluatorProperty, MoreSkewNeverShortensAStage) {
  const auto spec = sim::ClusterSpec::paper_prototype();
  double last = 0;
  for (double skew : {0.0, 0.1, 0.3, 0.5}) {
    dag::JobDag j("skew");
    dag::Stage s;
    s.name = "s";
    s.num_tasks = 40;
    s.input_bytes = 8_GB;
    s.process_rate = 3_MBps;
    s.output_bytes = 1_GB;
    s.task_skew = skew;
    j.add_stage(s);
    const JobProfile p = JobProfile::from(j, spec);
    const double jct = ScheduleEvaluator(p).evaluate({}).jct;
    EXPECT_GE(jct, last - 1e-9) << "skew " << skew;
    last = jct;
  }
}

TEST(EvaluatorProperty, ClusterSizeScalesSensibly) {
  // Strict monotonicity does not hold (slot queueing can stagger stages
  // into serendipitously better schedules), but an undersized cluster must
  // be clearly slower, and growth must never cost more than a few percent.
  const auto dag = workloads::lda();
  std::vector<double> jct;
  for (int workers : {5, 10, 20, 30, 60}) {
    sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
    spec.num_workers = workers;
    spec.congestion_penalty = 0.0;
    const JobProfile p = JobProfile::from(dag, spec);
    jct.push_back(ScheduleEvaluator(p).evaluate({}).jct);
  }
  EXPECT_GT(jct.front(), 1.3 * jct.back());  // 5 workers ≫ 60 workers
  for (std::size_t i = 1; i < jct.size(); ++i)
    EXPECT_LE(jct[i], jct[i - 1] * 1.10) << "step " << i;
}

TEST(EvaluatorProperty, CongestionPenaltyOnlyHurts) {
  const auto dag = workloads::triangle_count();
  double last = 0;
  for (double beta : {0.0, 0.5, 1.2, 2.0}) {
    sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
    spec.congestion_penalty = beta;
    const JobProfile p = JobProfile::from(dag, spec);
    const double jct = ScheduleEvaluator(p).evaluate({}).jct;
    EXPECT_GE(jct, last - 1e-9) << "beta " << beta;
    last = jct;
  }
}

TEST(CalculatorOptions, MoreSweepsNeverWorsenTheModelScore) {
  const auto dag = workloads::cosine_similarity();
  const JobProfile p = JobProfile::from(dag, sim::ClusterSpec::paper_prototype());
  CalculatorOptions one;
  one.sweeps = 1;
  CalculatorOptions three;
  three.sweeps = 3;
  const Seconds m1 = DelayCalculator(p, one).compute().predicted_makespan;
  const Seconds m3 = DelayCalculator(p, three).compute().predicted_makespan;
  EXPECT_LE(m3, m1 + 1e-6);
}

TEST(CalculatorOptions, RandomOrderIsSeedDeterministic) {
  const auto dag = workloads::triangle_count();
  const JobProfile p = JobProfile::from(dag, sim::ClusterSpec::paper_prototype());
  CalculatorOptions a;
  a.order = PathOrder::kRandom;
  a.seed = 5;
  CalculatorOptions b = a;
  const auto da = DelayCalculator(p, a).compute().delay;
  const auto db = DelayCalculator(p, b).compute().delay;
  EXPECT_EQ(da, db);
}

TEST(CalculatorOptions, CoarseStepBoundsCandidateGrid) {
  const auto dag = workloads::lda();
  const JobProfile p = JobProfile::from(dag, sim::ClusterSpec::paper_prototype());
  CalculatorOptions coarse;
  coarse.step = 20.0;
  const auto sched = DelayCalculator(p, coarse).compute();
  // The refine grid runs at `step`, so every delay is a multiple of it
  // (up to float noise).
  for (Seconds d : sched.delay) {
    const double rem = std::fmod(d, 20.0);
    EXPECT_TRUE(rem < 1e-6 || rem > 20.0 - 1e-6) << d;
  }
}

TEST(PathsApi, PathTimeAndMaxPathsInterface) {
  const auto dag = workloads::triangle_count();
  const auto one = dag::execution_paths(dag, 1);
  // Even with the enumeration capped to a single path, coverage is restored
  // by the fallback: every parallel stage appears somewhere.
  std::set<dag::StageId> covered;
  for (const auto& p : one)
    for (dag::StageId s : p.stages) covered.insert(s);
  for (dag::StageId s : dag.parallel_stage_set()) EXPECT_TRUE(covered.contains(s));
}

}  // namespace
}  // namespace ds::core
