// Failure-domain fault injection: node crashes, fetch-failure recovery, and
// their interaction with the scheduling engine (ctest label: faults).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "util/check.h"
#include "util/units.h"

namespace ds::engine {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  return s;
}

// map → reduce with a long, network-bound shuffle read: plenty of time for a
// crash to land while the children are mid-fetch.
dag::JobDag chain_job() {
  dag::JobDag j("chain");
  j.add_stage(mk("map", 6, 600_MB, 50_MBps, 600_MB));
  j.add_stage(mk("reduce", 6, 600_MB, 100_MBps, 0));
  j.add_edge(0, 1);
  return j;
}

struct RunOutput {
  JobResult result;
  int injected = 0;
  int recoveries = 0;
  bool finished = true;
  std::vector<metrics::TimeSeries> occupancy;
};

RunOutput run_with_faults(const dag::JobDag& dag, const sim::FaultPlan& plan,
                          RunOptions opt = {},
                          sim::ClusterSpec spec = sim::ClusterSpec::three_node(),
                          std::uint64_t cluster_seed = 7) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, spec, cluster_seed);
  sim::FaultInjector inj(cluster, plan, opt.seed);
  opt.faults = &inj;
  JobRun jr(cluster, dag, opt);
  inj.start();
  jr.start();
  sim.run();
  RunOutput out;
  out.finished = jr.finished();
  out.injected = inj.crashes_injected();
  out.recoveries = inj.recoveries();
  if (jr.finished()) out.result = jr.result();
  if (opt.record_occupancy && jr.finished()) {
    for (dag::StageId s = 0; s < dag.num_stages(); ++s)
      out.occupancy.push_back(jr.occupancy(s));
  }
  // Resource hygiene: a terminal job holds nothing, crashed or not.
  EXPECT_EQ(cluster.executors().total_busy(), 0);
  EXPECT_EQ(cluster.fabric().active_flows(), 0u);
  return out;
}

JobResult run_healthy(const dag::JobDag& dag, RunOptions opt = {}) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  JobRun jr(cluster, dag, std::move(opt));
  jr.start();
  sim.run();
  EXPECT_TRUE(jr.finished());
  return jr.result();
}

// ---------- FaultPlan / FaultInjector mechanics ----------

TEST(FaultPlan, RejectsMalformedPlans) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  {
    sim::FaultPlan p;
    p.crashes.push_back({cluster.storage_node(0), 10.0, -1});
    EXPECT_THROW(sim::FaultInjector(cluster, p, 1), CheckError);
  }
  {
    sim::FaultPlan p;
    p.degradations.push_back({0, 10.0, 5.0, 0.5});  // until < from
    EXPECT_THROW(sim::FaultInjector(cluster, p, 1), CheckError);
  }
  {
    sim::FaultPlan p;
    p.degradations.push_back({0, 0.0, 5.0, 0.0});  // factor must be > 0
    EXPECT_THROW(sim::FaultInjector(cluster, p, 1), CheckError);
  }
  {
    sim::FaultPlan p;
    p.crash_rate = 1e-3;  // no horizon
    EXPECT_THROW(sim::FaultInjector(cluster, p, 1), CheckError);
  }
}

TEST(FaultPlan, StochasticExpansionIsDeterministic) {
  sim::FaultPlan p;
  p.crash_rate = 5e-3;
  p.crash_horizon = 2000.0;
  p.mean_downtime = 50.0;
  auto expand = [&] {
    sim::Simulator sim;
    sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
    sim::FaultInjector inj(cluster, p, 99);
    inj.start();
    sim.run();
    return std::make_pair(inj.crashes_injected(), inj.recoveries());
  };
  const auto a = expand();
  const auto b = expand();
  EXPECT_GT(a.first, 0);
  EXPECT_EQ(a, b);
}

TEST(FaultPlan, CrashForfeitsSlotsAndRecoveryRestoresThem) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
  sim::FaultPlan p;
  p.crashes.push_back({cluster.worker(1), 5.0, 20.0});
  sim::FaultInjector inj(cluster, p, 1);
  inj.start();
  auto& pool = cluster.executors();
  sim.schedule_at(6.0, [&] {
    EXPECT_FALSE(inj.alive(cluster.worker(1)));
    EXPECT_TRUE(pool.offline(cluster.worker(1)));
    EXPECT_EQ(pool.free_slots(cluster.worker(1)), 0);
  });
  sim.schedule_at(26.0, [&] {
    EXPECT_TRUE(inj.alive(cluster.worker(1)));
    EXPECT_FALSE(pool.offline(cluster.worker(1)));
    EXPECT_GT(pool.free_slots(cluster.worker(1)), 0);
  });
  sim.run();
  EXPECT_EQ(inj.crashes_injected(), 1);
  EXPECT_EQ(inj.recoveries(), 1);
}

TEST(FaultPlan, LinkDegradationSlowsTransfers) {
  auto transfer_time = [](double factor) {
    sim::Simulator sim;
    sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
    sim::FaultPlan p;
    if (factor < 1.0) {
      // Degrade both endpoints so the bottleneck scales by `factor` no
      // matter which NIC the cluster seed made slower.
      p.degradations.push_back({0, 0.0, 1e6, factor});
      p.degradations.push_back({1, 0.0, 1e6, factor});
    }
    sim::FaultInjector inj(cluster, p, 1);
    inj.start();
    Seconds done = -1;
    cluster.fabric().start_flow(
        {0, 1, 100_MB, -1, [&] { done = sim.now(); }});
    sim.run();
    return done;
  };
  const Seconds full = transfer_time(1.0);
  const Seconds half = transfer_time(0.5);
  EXPECT_GT(full, 0);
  EXPECT_GT(half, 1.9 * full);
  EXPECT_LT(half, 2.1 * full);
}

// ---------- fetch-failure recovery (the tentpole scenario) ----------

// Crash a worker after the map stage finished: its stored map output dies
// with it, the mid-shuffle reduce tasks take fetch failures, and exactly the
// lost map tasks re-run before the reduce can complete.
TEST(FetchFailure, CrashAfterMapRerunsOnlyLostParentTasks) {
  const dag::JobDag dag = chain_job();
  RunOptions opt;
  opt.seed = 3;
  const JobResult healthy = run_healthy(dag, opt);
  const Seconds map_fin = healthy.stages[0].finish;
  ASSERT_GT(map_fin, 0);
  const sim::NodeId victim = healthy.tasks[0].node;  // hosted map output

  sim::FaultPlan plan;
  plan.crashes.push_back({victim, map_fin + 1.0, -1});  // permanent
  RunOptions fopt;
  fopt.seed = 3;
  fopt.record_occupancy = true;
  const RunOutput out = run_with_faults(dag, plan, fopt);
  ASSERT_TRUE(out.finished);
  const JobResult& r = out.result;
  ASSERT_FALSE(r.failed);

  EXPECT_EQ(r.node_crashes, 1);
  EXPECT_GE(r.fetch_failures, 1);  // reduce was mid-fetch from the victim

  // The map stage was resubmitted once, re-running exactly the tasks whose
  // output lived on the victim (placement replays the healthy run up to the
  // crash: same seeds, same event sequence).
  int lost = 0;
  for (const auto& t : healthy.tasks)
    if (t.stage == 0 && t.node == victim) ++lost;
  ASSERT_GT(lost, 0);
  EXPECT_EQ(r.stages[0].resubmissions, 1);
  EXPECT_EQ(r.stages[0].tasks_rerun, lost);
  EXPECT_EQ(r.resubmissions(), 1);  // the reduce stage never resubmits
  for (const auto& t : r.tasks) {
    if (t.stage != 0) continue;
    const bool was_on_victim = healthy.tasks[static_cast<std::size_t>(
                                                 t.index)].node == victim;
    EXPECT_EQ(t.attempts, was_on_victim ? 2 : 1)
        << "map task " << t.index << " re-ran unexpectedly";
    EXPECT_NE(t.node, victim);  // nothing can finish on a dead node
  }

  // Recovery costs real time and is accounted for.
  EXPECT_GT(r.jct, healthy.jct);
  EXPECT_GT(r.wasted_seconds(), 0.0);
  EXPECT_GT(r.stages[0].recovery_seconds, 0.0);
  EXPECT_GT(r.tasks_rerun(), 0);

  // Occupancy stays sane through crash and recovery: per-sample totals
  // within the pool's capacity, and never negative.
  const int total_slots = sim::ClusterSpec::three_node().total_executors();
  ASSERT_EQ(out.occupancy.size(), 2u);
  for (std::size_t i = 0; i < out.occupancy[0].size(); ++i) {
    const double total =
        out.occupancy[0].value(i) + out.occupancy[1].value(i);
    EXPECT_GE(out.occupancy[0].value(i), 0.0);
    EXPECT_GE(out.occupancy[1].value(i), 0.0);
    EXPECT_LE(total, static_cast<double>(total_slots));
  }
}

TEST(FetchFailure, ResubmissionCapFailsTheJob) {
  const dag::JobDag dag = chain_job();
  RunOptions opt;
  opt.seed = 3;
  const JobResult healthy = run_healthy(dag, opt);
  sim::FaultPlan plan;
  plan.crashes.push_back({healthy.tasks[0].node,
                          healthy.stages[0].finish + 1.0, -1});
  RunOptions fopt;
  fopt.seed = 3;
  fopt.max_stage_resubmissions = 0;  // any reopening is one too many
  const RunOutput out = run_with_faults(dag, plan, fopt);
  ASSERT_TRUE(out.finished);
  ASSERT_TRUE(out.result.failed);
  EXPECT_FALSE(out.result.complete());
  EXPECT_NE(out.result.failure_reason.find("max_stage_resubmissions"),
            std::string::npos);
}

TEST(FetchFailure, CrashBeforeMapFinishesRerunsWithoutResubmission) {
  // A crash while the producing stage is still running re-runs its lost
  // tasks inside the same stage attempt: tasks_rerun counts, but no
  // stage-level resubmission is recorded (the stage never finished).
  const dag::JobDag dag = chain_job();
  RunOptions opt;
  opt.seed = 3;
  const JobResult healthy = run_healthy(dag, opt);
  sim::FaultPlan plan;
  plan.crashes.push_back(
      {healthy.tasks[0].node, healthy.stages[0].finish * 0.6, -1});
  RunOptions fopt;
  fopt.seed = 3;
  const RunOutput out = run_with_faults(dag, plan, fopt);
  ASSERT_TRUE(out.finished);
  ASSERT_FALSE(out.result.failed);
  EXPECT_EQ(out.result.resubmissions(), 0);
  EXPECT_GT(out.result.jct, healthy.jct);
}

TEST(FetchFailure, RecoveredNodeRejoinsAndJobCompletes) {
  const dag::JobDag dag = chain_job();
  RunOptions opt;
  opt.seed = 3;
  const JobResult healthy = run_healthy(dag, opt);
  sim::FaultPlan plan;
  plan.crashes.push_back(
      {healthy.tasks[0].node, healthy.stages[0].finish * 0.5, 10.0});
  RunOptions fopt;
  fopt.seed = 3;
  const RunOutput out = run_with_faults(dag, plan, fopt);
  ASSERT_TRUE(out.finished);
  ASSERT_FALSE(out.result.failed);
  EXPECT_EQ(out.recoveries, 1);
}

TEST(FetchFailure, LosingEveryWorkerPermanentlyStrandsTheJob) {
  // All slots gone forever: the simulation drains with the job unfinished —
  // callers must treat a non-finished run as failed/hung.
  const dag::JobDag dag = chain_job();
  sim::FaultPlan plan;
  const auto spec = sim::ClusterSpec::three_node();
  for (int w = 0; w < spec.num_workers; ++w)
    plan.crashes.push_back({w, 5.0, -1});
  RunOptions fopt;
  fopt.seed = 3;
  const RunOutput out = run_with_faults(dag, plan, fopt);
  EXPECT_FALSE(out.finished);
  EXPECT_EQ(out.injected, spec.num_workers);
}

// ---------- determinism ----------

TEST(FaultDeterminism, ExpansionIsBitReproducibleFromTheSeed) {
  // The injector's RNG is derived from CommonOptions::seed XOR a fixed salt
  // (sim::kFaultSeedSalt), so the stochastic crash schedule is a pure
  // function of (plan, seed): same seed → bit-identical expansion, different
  // seed → a decorrelated one.
  sim::FaultPlan p;
  p.crash_rate = 5e-3;
  p.crash_horizon = 2000.0;
  p.mean_downtime = 50.0;
  auto expand = [&](std::uint64_t seed) {
    sim::Simulator sim;
    sim::Cluster cluster(sim, sim::ClusterSpec::three_node(), 7);
    sim::FaultInjector inj(cluster, p, seed);
    inj.start();
    return inj.expanded_crashes();
  };
  const auto a = expand(99);
  const auto b = expand(99);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    // Bit-level equality, not approximate: the schedule must replay exactly.
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].downtime, b[i].downtime);
  }
  const auto c = expand(100);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].node != c[i].node || a[i].at != c[i].at ||
              a[i].downtime != c[i].downtime;
  EXPECT_TRUE(differs) << "different seeds produced the same crash schedule";
}

TEST(FaultDeterminism, SaltDecorrelatesInjectorFromEngineRng) {
  // The salt keeps the injector's draws off the engine's Rng(seed) stream:
  // an injector seeded with `seed` must not replay the raw-seed stream.
  EXPECT_NE(sim::kFaultSeedSalt, 0u);
  EXPECT_EQ(sim::kFaultSeedSalt, 0xFA'17'5E'ED'0D'15'EA'5Eull);
}

TEST(FaultDeterminism, SameSeedAndPlanGiveIdenticalResults) {
  const dag::JobDag dag = chain_job();
  sim::FaultPlan plan;
  plan.crash_rate = 2e-4;
  plan.crash_horizon = 2000.0;
  plan.mean_downtime = 40.0;
  RunOptions opt;
  opt.seed = 17;
  opt.max_attempts = 16;  // stay clear of terminal failure for this seed

  auto once = [&] { return run_with_faults(dag, plan, opt); };
  const RunOutput a = once();
  const RunOutput b = once();
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.result.failed, b.result.failed);
  EXPECT_DOUBLE_EQ(a.result.jct, b.result.jct);
  EXPECT_EQ(a.result.node_crashes, b.result.node_crashes);
  EXPECT_EQ(a.result.fetch_failures, b.result.fetch_failures);
  ASSERT_EQ(a.result.tasks.size(), b.result.tasks.size());
  for (std::size_t i = 0; i < a.result.tasks.size(); ++i) {
    const auto& x = a.result.tasks[i];
    const auto& y = b.result.tasks[i];
    EXPECT_EQ(x.node, y.node);
    EXPECT_EQ(x.attempts, y.attempts);
    EXPECT_DOUBLE_EQ(x.launch, y.launch);
    EXPECT_DOUBLE_EQ(x.read_done, y.read_done);
    EXPECT_DOUBLE_EQ(x.compute_done, y.compute_done);
    EXPECT_DOUBLE_EQ(x.finish, y.finish);
  }
  ASSERT_EQ(a.result.stages.size(), b.result.stages.size());
  for (std::size_t i = 0; i < a.result.stages.size(); ++i) {
    const auto& x = a.result.stages[i];
    const auto& y = b.result.stages[i];
    EXPECT_EQ(x.resubmissions, y.resubmissions);
    EXPECT_EQ(x.tasks_rerun, y.tasks_rerun);
    EXPECT_DOUBLE_EQ(x.wasted_seconds, y.wasted_seconds);
    EXPECT_DOUBLE_EQ(x.recovery_seconds, y.recovery_seconds);
    EXPECT_DOUBLE_EQ(x.finish, y.finish);
  }
}

TEST(FaultDeterminism, HoldsUnderSpeculationToo) {
  // The previously CHECK-ed speculation × fault-injection combination now
  // runs — and stays deterministic.
  dag::JobDag j("wide");
  j.add_stage(mk("crunch", 30, 1.5_GB, 1.25_MBps, 50_MB));
  sim::ClusterSpec spec = sim::ClusterSpec::paper_prototype();
  spec.node_speed_min = 0.15;  // stragglers, so speculation actually fires

  sim::FaultPlan plan;
  plan.crash_rate = 1e-4;
  plan.crash_horizon = 1500.0;
  plan.mean_downtime = 60.0;
  RunOptions opt;
  opt.seed = 5;
  opt.speculation = true;

  auto once = [&] { return run_with_faults(j, plan, opt, spec, 42); };
  const RunOutput a = once();
  const RunOutput b = once();
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.result.failed, b.result.failed);
  EXPECT_DOUBLE_EQ(a.result.jct, b.result.jct);
  EXPECT_EQ(a.result.fetch_failures, b.result.fetch_failures);
  ASSERT_EQ(a.result.tasks.size(), b.result.tasks.size());
  for (std::size_t i = 0; i < a.result.tasks.size(); ++i) {
    EXPECT_EQ(a.result.tasks[i].attempts, b.result.tasks[i].attempts);
    EXPECT_DOUBLE_EQ(a.result.tasks[i].finish, b.result.tasks[i].finish);
  }
}

}  // namespace
}  // namespace ds::engine
