#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "sim/network.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace ds::sim {
namespace {

using Ports = std::vector<FlowPorts>;

TEST(MaxMin, SingleFlowGetsBottleneckCapacity) {
  const auto r = max_min_allocate(Ports{{0, 1, -1}}, {100.0, 40.0});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 40.0, 1e-9);
}

TEST(MaxMin, EqualShareOnSharedPort) {
  const auto r = max_min_allocate(Ports{{0, -1, -1}, {0, -1, -1}, {0, -1, -1}}, {90.0});
  for (double v : r) EXPECT_NEAR(v, 30.0, 1e-9);
}

TEST(MaxMin, WaterFillingReallocatesLeftoverCapacity) {
  // f0 crosses both ports; f1 only port 1 (large). f0 bottlenecked at port 0,
  // f1 then soaks up the rest of port 1.
  const auto r = max_min_allocate(Ports{{0, 1, -1}, {1, -1, -1}}, {10.0, 100.0});
  EXPECT_NEAR(r[0], 10.0, 1e-9);
  EXPECT_NEAR(r[1], 90.0, 1e-9);
}

TEST(MaxMin, ClassicThreeFlowExample) {
  // Two unit-capacity links; f0 uses both, f1 link A, f2 link B.
  // Max-min: everyone 0.5.
  const auto r = max_min_allocate(Ports{{0, 1, -1}, {0, -1, -1}, {1, -1, -1}}, {1.0, 1.0});
  for (double v : r) EXPECT_NEAR(v, 0.5, 1e-9);
}

TEST(MaxMin, AllocationsRespectAllPortCapacities) {
  // Randomized-ish fixed scenario: verify feasibility and efficiency.
  const Ports fp{{0, 3, -1}, {0, 4, -1}, {1, 3, -1}, {2, 4, -1}, {1, -1, -1}, {2, 3, -1}};
  const std::vector<double> caps{50, 80, 60, 45, 70};
  const auto r = max_min_allocate(fp, caps);
  std::vector<double> used(caps.size(), 0.0);
  for (std::size_t f = 0; f < fp.size(); ++f) {
    EXPECT_GE(r[f], 0.0);
    for (int p : fp[f])
      if (p >= 0) used[static_cast<std::size_t>(p)] += r[f];
  }
  for (std::size_t p = 0; p < caps.size(); ++p)
    EXPECT_LE(used[p], caps[p] + 1e-6);
  // Pareto efficiency: every flow crosses at least one saturated port.
  for (std::size_t f = 0; f < fp.size(); ++f) {
    bool bottlenecked = false;
    for (int p : fp[f])
      if (p >= 0 && used[static_cast<std::size_t>(p)] >= caps[static_cast<std::size_t>(p)] - 1e-6)
        bottlenecked = true;
    EXPECT_TRUE(bottlenecked) << "flow " << f << " could be increased";
  }
}

TEST(Fabric, SingleFlowDurationMatchesBandwidth) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 50.0}, 1000.0);
  double done = -1;
  net.start_flow({.src = 0, .dst = 1, .bytes = 500.0, .on_complete = [&] { done = sim.now(); }});
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-6);  // bottleneck = dst 50 B/s
}

TEST(Fabric, IncastSharesDestinationIngress) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0, 100.0, 90.0}, 1000.0);
  std::vector<double> done(3, -1);
  for (int s = 0; s < 3; ++s)
    net.start_flow({.src = s, .dst = 3, .bytes = 300.0, .on_complete = [&, s] { done[static_cast<std::size_t>(s)] = sim.now(); }});
  sim.run();
  for (double d : done) EXPECT_NEAR(d, 10.0, 1e-6);  // 90/3 = 30 B/s each
}

TEST(Fabric, LoopbackFlowsBypassNic) {
  Simulator sim;
  NetworkFabric net(sim, {10.0, 10.0}, 1000.0);
  double local = -1, remote = -1;
  net.start_flow({.src = 0, .dst = 0, .bytes = 1000.0, .on_complete = [&] { local = sim.now(); }});
  net.start_flow({.src = 0, .dst = 1, .bytes = 100.0, .on_complete = [&] { remote = sim.now(); }});
  sim.run();
  EXPECT_NEAR(local, 1.0, 1e-6);    // 1000 B at 1000 B/s loopback
  EXPECT_NEAR(remote, 10.0, 1e-6);  // NIC unaffected by loopback traffic
}

TEST(Fabric, CompletionFreesBandwidthForRemainingFlows) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0, 100.0}, 1000.0);
  // Two flows into node 2: share 50 each. First carries 250 B (done t=5),
  // second 750 B: 250 at t=5 then 500 at 100 B/s -> t=10.
  double a = -1, b = -1;
  net.start_flow({.src = 0, .dst = 2, .bytes = 250.0, .on_complete = [&] { a = sim.now(); }});
  net.start_flow({.src = 1, .dst = 2, .bytes = 750.0, .on_complete = [&] { b = sim.now(); }});
  sim.run();
  EXPECT_NEAR(a, 5.0, 1e-6);
  EXPECT_NEAR(b, 10.0, 1e-6);
}

TEST(Fabric, RatesVisibleForMetrics) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 60.0}, 1000.0);
  net.start_flow({.src = 0, .dst = 1, .bytes = 1e6});
  sim.run_until(1.0);
  EXPECT_NEAR(net.node_rx_rate(1), 60.0, 1e-9);
  EXPECT_NEAR(net.node_tx_rate(0), 60.0, 1e-9);
  EXPECT_NEAR(net.node_rx_rate(0), 0.0, 1e-9);
  EXPECT_EQ(net.active_flows(), 1u);
}

TEST(Fabric, DeliveredBytesConserved) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0, 100.0}, 1000.0);
  const double volumes[] = {123.0, 4567.0, 89.0, 1000.0};
  double total = 0;
  int i = 0;
  for (double v : volumes) {
    net.start_flow({.src = i % 3, .dst = (i + 1) % 3, .bytes = v});
    total += v;
    ++i;
  }
  sim.run();
  net.sync();
  EXPECT_NEAR(net.total_delivered(), total, 1e-3);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(Fabric, CancelStopsFlowWithoutCallback) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0);
  bool fired = false;
  const FlowId id = net.start_flow({.src = 0, .dst = 1, .bytes = 1e6, .on_complete = [&] { fired = true; }});
  sim.schedule_at(2.0, [&] { net.cancel(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(Fabric, ChainedFlowsFromCompletionCallback) {
  Simulator sim;
  NetworkFabric net(sim, {100.0, 100.0}, 1000.0);
  double second = -1;
  net.start_flow({.src = 0, .dst = 1, .bytes = 500.0, .on_complete = [&] {
                    net.start_flow({.src = 1, .dst = 0, .bytes = 500.0,
                                    .on_complete = [&] { second = sim.now(); }});
                  }});
  sim.run();
  EXPECT_NEAR(second, 10.0, 1e-6);
}

TEST(Fabric, RejectsBadFlows) {
  Simulator sim;
  NetworkFabric net(sim, {100.0}, 1000.0);
  EXPECT_THROW(net.start_flow({.src = 0, .dst = 5, .bytes = 1.0}), CheckError);
  EXPECT_THROW(net.start_flow({.src = -1, .dst = 0, .bytes = 1.0}), CheckError);
  EXPECT_THROW(net.start_flow({.src = 0, .dst = 0, .bytes = -1.0}), CheckError);
}

}  // namespace
}  // namespace ds::sim
