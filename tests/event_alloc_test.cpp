// Steady-state allocation regression tests for the event core and the fluid
// resources built on it. The whole point of the slab + inline-callback
// design is that scheduling, cancelling and firing events — and starting,
// finishing and cancelling flows/claims — allocates NOTHING once the arenas
// reach their high-water mark. These tests count every global operator
// new/delete (including the aligned forms the alignas(64) slab nodes use)
// and assert the steady-state delta is exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "engine/job_run.h"
#include "sim/cluster.h"
#include "sim/fair_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/inline_function.h"
#include "workloads/workloads.h"

namespace {

std::atomic<std::size_t> g_allocs{0};

std::size_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : align) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ds::sim {
namespace {

struct Tick {
  Simulator* sim = nullptr;
  int remaining = 0;
};

void tick(Tick* t) {
  if (t->remaining-- <= 0) return;
  t->sim->schedule_after(1.0, [t] { tick(t); });
}

TEST(EventAlloc, SteadyEventChurnAllocatesNothing) {
  Simulator sim;
  Tick t{&sim, 1000};
  tick(&t);
  sim.run();  // warm-up: slab + heap reach their high-water mark
  t.remaining = 10000;
  tick(&t);
  const std::size_t before = alloc_count();
  sim.run();
  EXPECT_EQ(alloc_count() - before, 0u) << "event schedule/fire allocated";
}

TEST(EventAlloc, CancelRescheduleChurnAllocatesNothing) {
  Simulator sim;
  sim.schedule_after(1e12, [] {});  // keep the queue non-empty
  // Warm up the slab, heap AND free list (the first cancel grows the free
  // list), then cancel+reschedule like the fabric does.
  EventId id = sim.schedule_after(1.0, [] {});
  for (int i = 0; i < 4; ++i) {
    sim.cancel(id);
    id = sim.schedule_after(1.0, [] {});
  }
  const std::size_t before = alloc_count();
  for (int i = 0; i < 10000; ++i) {
    sim.cancel(id);
    id = sim.schedule_after(1.0 + i, [] {});
  }
  EXPECT_EQ(alloc_count() - before, 0u) << "cancel/reschedule allocated";
}

struct FlowLoop {
  NetworkFabric* fabric = nullptr;
  int remaining = 0;
  int next = 0;
};

void launch_flow(FlowLoop* fl) {
  if (fl->remaining-- <= 0) return;
  FlowSpec s;
  s.src = fl->next % 4;
  s.dst = (fl->next + 1) % 4;
  s.group = fl->next % 3;
  s.bytes = 1e6 + 1e5 * (fl->next % 7);
  s.on_complete = [fl] { launch_flow(fl); };
  ++fl->next;
  fl->fabric->start_flow(std::move(s));
}

TEST(EventAlloc, SteadyFlowChurnAllocatesNothing) {
  Simulator sim;
  NetworkFabric fabric(sim, {40e6, 40e6, 40e6, 40e6}, 400e6,
                       /*group_penalty=*/0.3);
  FlowLoop fl{&fabric, 500, 0};
  for (int i = 0; i < 8; ++i) launch_flow(&fl);  // 8 concurrent flows
  sim.run();  // warm-up: flow slab + max-min scratch arenas sized
  fl.remaining = 5000;
  for (int i = 0; i < 8; ++i) launch_flow(&fl);
  const std::size_t before = alloc_count();
  sim.run();
  EXPECT_EQ(alloc_count() - before, 0u) << "flow start/finish allocated";
}

struct ClaimLoop {
  FairQueue* disk = nullptr;
  int remaining = 0;
  int next = 0;
};

void submit_claim(ClaimLoop* cl) {
  if (cl->remaining-- <= 0) return;
  const Bytes volume = 1e5 + 1e4 * (cl->next++ % 5);
  cl->disk->submit(volume, [cl] { submit_claim(cl); });
}

TEST(EventAlloc, SteadyClaimChurnAllocatesNothing) {
  Simulator sim;
  FairQueue disk(sim, 100e6);
  ClaimLoop cl{&disk, 200, 0};
  for (int i = 0; i < 6; ++i) submit_claim(&cl);
  sim.run();
  cl.remaining = 5000;
  for (int i = 0; i < 6; ++i) submit_claim(&cl);
  const std::size_t before = alloc_count();
  sim.run();
  EXPECT_EQ(alloc_count() - before, 0u) << "claim submit/finish allocated";
}

TEST(EventAlloc, EngineCallbacksAllFitInline) {
  // A full job run must never hit the InlineFunction heap fallback: every
  // scheduling/completion lambda in the engine fits the 40-byte buffer.
  const auto dag = workloads::lda();
  const std::size_t before = util::inline_function_heap_allocs();
  Simulator sim;
  Cluster cluster(sim, ClusterSpec::paper_prototype(), 42);
  engine::JobRun run(cluster, dag, {});
  run.start();
  sim.run();
  ASSERT_TRUE(run.finished());
  EXPECT_EQ(util::inline_function_heap_allocs() - before, 0u)
      << "an engine callback spilled to the heap — shrink its captures";
}

}  // namespace
}  // namespace ds::sim
