// Adaptive (calibrating) trace replay: determinism across thread counts,
// calibration convergence under injected model error, and the validated
// ReplayOptions error path (ctest label: concurrency).
#include <gtest/gtest.h>

#include <vector>

#include "trace/replay.h"
#include "trace/synthetic.h"
#include "util/check.h"

namespace ds::trace {
namespace {

std::vector<TraceJob> small_trace(int jobs) {
  SyntheticTraceOptions opt;
  opt.num_jobs = jobs;
  opt.seed = 1;
  return synthetic_trace(opt);
}

// Recurrent workloads: the same job shapes resubmitted over time, which is
// what per-signature calibration feeds on (synthetic jobs are all unique).
std::vector<TraceJob> recurrent_trace(int base, int recurrences) {
  const auto bases = small_trace(base);
  std::vector<TraceJob> out;
  for (int r = 0; r < recurrences; ++r) {
    for (TraceJob j : bases) {
      j.submit_time += r * 5000.0;
      out.push_back(std::move(j));
    }
  }
  return out;
}

ReplayOptions adaptive_options(int threads) {
  ReplayOptions opt;
  opt.strategy = "DelayStage";
  opt.adaptive = true;
  opt.perturb_network = 0.6;  // planner believes 60% of the real bandwidth
  opt.perturb_compute = 1.4;
  opt.seed = 7;
  opt.threads = threads;
  opt.coarse_candidates = 6;
  opt.evaluator_slots = 60;
  return opt;
}

TEST(AdaptiveReplay, DeterministicForAnyThreadCount) {
  const auto jobs = recurrent_trace(8, 3);
  const ReplayResult a = replay(jobs, adaptive_options(1));
  const ReplayResult b = replay(jobs, adaptive_options(8));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    // Bit-identical, not approximately equal: the adaptive pass is strictly
    // sequential in arrival order, so `threads` cannot reorder observations.
    EXPECT_EQ(a.jobs[i].jct, b.jobs[i].jct) << "job " << i;
    EXPECT_EQ(a.jobs[i].dedicated_time, b.jobs[i].dedicated_time);
    EXPECT_EQ(a.jobs[i].engine_jct, b.jobs[i].engine_jct);
    EXPECT_EQ(a.jobs[i].planned_delay, b.jobs[i].planned_delay);
    EXPECT_EQ(a.jobs[i].calibration.network, b.jobs[i].calibration.network);
    EXPECT_EQ(a.jobs[i].calibration.compute, b.jobs[i].calibration.compute);
    EXPECT_EQ(a.jobs[i].calibration.write, b.jobs[i].calibration.write);
  }
  EXPECT_EQ(replay(jobs, adaptive_options(1)).mean_jct(), a.mean_jct());
}

TEST(AdaptiveReplay, RunsTheEngineAndCalibrates) {
  const auto jobs = recurrent_trace(8, 3);
  const ReplayResult r = replay(jobs, adaptive_options(1));
  int with_engine = 0, with_factors = 0;
  for (const auto& j : r.jobs) {
    if (j.engine_jct > 0) ++with_engine;
    if (!j.calibration.is_identity()) ++with_factors;
  }
  // Every job gets a ground-truth engine run; recurrent workloads (the
  // synthetic trace repeats shapes) plan on non-identity factors.
  EXPECT_EQ(with_engine, static_cast<int>(r.jobs.size()));
  EXPECT_GT(with_factors, 0);
}

TEST(AdaptiveReplay, NonAdaptiveReplayIgnoresCalibrationFields) {
  const auto jobs = small_trace(12);
  ReplayOptions opt;
  opt.strategy = "DelayStage";
  opt.seed = 7;
  opt.coarse_candidates = 6;
  opt.evaluator_slots = 60;
  const ReplayResult r = replay(jobs, opt);
  for (const auto& j : r.jobs) {
    EXPECT_TRUE(j.calibration.is_identity());
    EXPECT_EQ(j.engine_jct, 0.0);
  }
}

TEST(ReplayValidation, BadOptionCombosAreExplainedNotClamped) {
  EXPECT_TRUE(validate(ReplayOptions{}).is_ok());
  {
    ReplayOptions o;
    o.machines_per_job = 0;
    const Status st = validate(o);
    ASSERT_FALSE(st.is_ok());
    EXPECT_NE(st.message().find("machines_per_job"), std::string::npos);
  }
  {
    ReplayOptions o;
    o.engine_shards = 4;  // shards without any engine runs to shard
    const Status st = validate(o);
    ASSERT_FALSE(st.is_ok());
    EXPECT_NE(st.message().find("engine_shards"), std::string::npos);
    o.engine_validate = true;  // now the shards mean something
    EXPECT_TRUE(validate(o).is_ok());
    o.engine_validate = false;
    o.adaptive = true;  // adaptive runs the engine too
    EXPECT_TRUE(validate(o).is_ok());
  }
  {
    ReplayOptions o;
    o.perturb_network = 0.0;
    EXPECT_FALSE(validate(o).is_ok());
    o.perturb_network = 1.0;
    o.perturb_compute = -2.0;
    EXPECT_FALSE(validate(o).is_ok());
  }
  {
    ReplayOptions o;
    o.evaluator_slots = 0;
    EXPECT_FALSE(validate(o).is_ok());
  }
  // replay() enforces the same contract by throwing (the CLIs catch the
  // validate() Status up front instead).
  const auto jobs = small_trace(2);
  ReplayOptions bad;
  bad.sweeps = 0;
  EXPECT_THROW(replay(jobs, bad), CheckError);
}

}  // namespace
}  // namespace ds::trace
