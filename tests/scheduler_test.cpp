// The online multi-job scheduler service (service/scheduler.h and friends):
//
//  * the whole service is bit-identical for any SchedulerOptions::threads
//    (all decisions happen inside sequential simulator events; the planner
//    is thread-invariant by contract);
//  * the ClusterLedger can never over-commit — by unit contract and while
//    the scheduler is live under load;
//  * admission stays fair under priority inversion: a big job that cannot
//    backfill blocks further backfill once it ages one delay-budget
//    quantum, so small-job streams cannot starve it;
//  * drain() after a burst terminates with every job terminal;
//  * arrival processes and the NDJSON v1 submission protocol are
//    deterministic and version-checked.
#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "dag/serialize.h"
#include "service/arrivals.h"
#include "service/ledger.h"
#include "service/ndjson.h"
#include "service/policy.h"
#include "trace/synthetic.h"
#include "util/check.h"
#include "workloads/workloads.h"

namespace ds {
namespace {

// A job whose widest stage wants `tasks` slots; `gb` scales the volumes so
// bigger jobs also run longer.
dag::JobDag wide_job(const std::string& name, int tasks, double gb) {
  std::ostringstream spec;
  spec << "job," << name << "\n"
       << "stage,work," << tasks << ',' << gb << ",4.0," << gb / 4 << ",0.1\n";
  return dag::load_job_spec_text(spec.str());
}

SchedulerOptions small_cluster_options() {
  SchedulerOptions opt;
  opt.cluster = sim::ClusterSpec::paper_prototype();
  opt.cluster.num_workers = 6;  // 12 slots: contention without long runtimes
  opt.seed = 7;
  return opt;
}

// Fingerprint every per-job field that downstream consumers read. Exact
// double equality is intentional: the service promises bit-identical
// results, not merely close ones.
struct JobPrint {
  Seconds admitted, finish, wait, jct, planned_delay;
  int grant_slots;
  bool operator==(const JobPrint&) const = default;
};

std::vector<JobPrint> run_fleet(int threads) {
  SchedulerOptions opt = small_cluster_options();
  opt.threads = threads;
  Scheduler sched(opt);
  const auto suite = workloads::benchmark_suite(0.25);
  const auto arrivals = service::poisson_arrivals(8, 0.01, opt.seed);
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    sched.submit_at(arrivals[i], suite[i % suite.size()].dag,
                    static_cast<int>(i % 2));
  sched.drain();
  std::vector<JobPrint> out;
  for (service::JobId id = 1; id <= arrivals.size(); ++id) {
    const JobStatus& s = sched.poll(id);
    EXPECT_EQ(s.state, JobState::kFinished) << "job " << id;
    out.push_back({s.admitted, s.finish, s.wait, s.jct, s.planned_delay,
                   s.grant.slots});
  }
  return out;
}

TEST(Scheduler, BitIdenticalAcrossThreadCounts) {
  const std::vector<JobPrint> one = run_fleet(1);
  for (int threads : {2, 8}) {
    const std::vector<JobPrint> many = run_fleet(threads);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i)
      EXPECT_EQ(many[i], one[i]) << "job " << i + 1 << " diverged at "
                                 << threads << " threads";
  }
}

TEST(Scheduler, DrainAfterBurstTerminatesWithAllJobsFinished) {
  SchedulerOptions opt = small_cluster_options();
  Scheduler sched(opt);
  const auto suite = workloads::benchmark_suite(0.2);
  // A burst: everything arrives at t = 0, far more demand than the cluster.
  for (int i = 0; i < 12; ++i)
    sched.submit(suite[static_cast<std::size_t>(i) % suite.size()].dag);
  sched.drain();
  const FleetStats fs = sched.fleet();
  EXPECT_EQ(fs.submitted, 12u);
  EXPECT_EQ(fs.finished, 12u);
  EXPECT_EQ(fs.failed, 0u);
  EXPECT_EQ(fs.queued, 0u);
  EXPECT_EQ(fs.running, 0u);
  EXPECT_GT(fs.makespan, 0.0);
  EXPECT_GT(fs.mean_wait, 0.0);  // the burst must actually have queued
  EXPECT_EQ(sched.ledger().active_jobs(), 0u);
  EXPECT_EQ(sched.ledger().committed_slots(), 0);
}

TEST(Scheduler, LedgerNeverOvercommitsWhileLive) {
  SchedulerOptions opt = small_cluster_options();
  Scheduler sched(opt);
  const auto suite = workloads::benchmark_suite(0.2);
  for (int i = 0; i < 10; ++i)
    sched.submit_at(5.0 * i, suite[static_cast<std::size_t>(i) % suite.size()].dag);
  // Step simulated time and audit the ledger invariant throughout the run.
  const auto& ledger = sched.ledger();
  for (Seconds t = 10; sched.fleet().finished < 10; t += 10) {
    sched.run_until(t);
    EXPECT_LE(ledger.committed_slots(), ledger.total_slots());
    EXPECT_LE(ledger.committed_bandwidth(),
              ledger.total_bandwidth() + 1e-6);
    EXPECT_GE(ledger.free_slots(), 0);
    ASSERT_LT(t, 1e7) << "run did not converge";
  }
  EXPECT_LE(sched.fleet().peak_slot_occupancy, 1.0);
  EXPECT_GT(sched.fleet().peak_slot_occupancy, 0.0);
}

TEST(Scheduler, AgedBigJobBlocksBackfillUnderPriorityInversion) {
  SchedulerOptions opt = small_cluster_options();
  opt.max_share = 1.0;        // the big job wants the whole cluster
  opt.delay_budget = 60.0;    // ages to "urgent" quickly
  Scheduler sched(opt);
  const int total = sched.ledger().total_slots();

  // One small job holds slots from t = 0; the big (whole-cluster,
  // high-priority-class number = worse) job arrives at t = 1 and cannot
  // fit; a steady stream of small, *better*-priority jobs keeps arriving.
  // Without aging + backfill blocking, the small stream would hold the
  // cluster indefinitely; with them, the big job must run before the
  // stream's tail.
  const dag::JobDag small = wide_job("small", total / 3, 1.5);
  const dag::JobDag big = wide_job("big", total, 6.0);
  sched.submit_at(0.0, small, /*priority=*/0);
  const service::JobId big_id = sched.submit_at(1.0, big, /*priority=*/2);
  std::vector<service::JobId> stream;
  for (int i = 0; i < 14; ++i)
    stream.push_back(sched.submit_at(2.0 + 20.0 * i, small, /*priority=*/0));
  sched.drain();

  const JobStatus& bs = sched.poll(big_id);
  EXPECT_EQ(bs.state, JobState::kFinished);
  // Fairness: the big job was not pushed to the very end — some of the
  // later, nominally better-priority small jobs were admitted after it.
  Seconds last_small_admitted = 0;
  for (service::JobId id : stream)
    last_small_admitted = std::max(last_small_admitted,
                                   sched.poll(id).admitted);
  EXPECT_LT(bs.admitted, last_small_admitted)
      << "big job starved behind the small-job stream";
  // And aging really did the work: it waited at least one budget quantum
  // (it could not fit immediately) but far less than the whole stream.
  EXPECT_GE(bs.wait, opt.delay_budget - 1.0);
}

TEST(Scheduler, PriorityClassesOrderAdmissionAheadOfArrival) {
  SchedulerOptions opt = small_cluster_options();
  opt.max_share = 1.0;
  opt.delay_budget = 0;  // no aging: strict class order
  Scheduler sched(opt);
  const int total = sched.ledger().total_slots();
  // Occupy the whole cluster, then queue a worse-class job *before* a
  // better-class one. The better class must be admitted first.
  sched.submit_at(0.0, wide_job("occupier", total, 4.0), 0);
  const auto low = sched.submit_at(1.0, wide_job("low", total / 2, 1.0), 5);
  const auto high = sched.submit_at(2.0, wide_job("high", total / 2, 1.0), 1);
  sched.drain();
  EXPECT_LE(sched.poll(high).admitted, sched.poll(low).admitted);
  EXPECT_LT(sched.poll(high).wait, sched.poll(low).wait + 1e-9);
}

TEST(Scheduler, SjfAdmitsShortJobFirst) {
  SchedulerOptions opt = small_cluster_options();
  opt.policy = service::OrderPolicy::kSjf;
  opt.max_share = 1.0;
  opt.delay_budget = 0;
  Scheduler sched(opt);
  const int total = sched.ledger().total_slots();
  sched.submit_at(0.0, wide_job("occupier", total, 4.0));
  // The long job arrives first; SJF must still admit the short one earlier.
  // Both want 2/3 of the cluster, so only one fits at a time.
  const auto longer =
      sched.submit_at(1.0, wide_job("long", 2 * total / 3, 8.0));
  const auto shorter =
      sched.submit_at(2.0, wide_job("short", 2 * total / 3, 1.0));
  sched.drain();
  EXPECT_LT(sched.poll(shorter).admitted, sched.poll(longer).admitted);
}

TEST(Scheduler, QueueLongJobsLoseTheirPlannedDelays) {
  // Delay rebalancing: wait >= budget scales planned delays to zero.
  SchedulerOptions opt = small_cluster_options();
  opt.max_share = 1.0;
  opt.delay_budget = 30.0;
  Scheduler sched(opt);
  const int total = sched.ledger().total_slots();
  sched.submit_at(0.0, wide_job("occupier", total, 6.0));
  const auto queued =
      sched.submit_at(1.0, workloads::triangle_count(0.25), 0);
  sched.drain();
  const JobStatus& qs = sched.poll(queued);
  ASSERT_EQ(qs.state, JobState::kFinished);
  EXPECT_GT(qs.wait, opt.delay_budget);  // occupier ran well past the budget
  EXPECT_EQ(qs.planned_delay, 0.0);
}

TEST(ClusterLedger, FitsCommitReleaseAndPeaks) {
  service::ClusterLedger ledger(10, 100.0);
  service::ClusterLedger::Grant a{6, 60.0};
  service::ClusterLedger::Grant b{4, 40.0};
  service::ClusterLedger::Grant too_big{5, 10.0};
  EXPECT_TRUE(ledger.fits(a));
  ledger.commit(1, a);
  EXPECT_EQ(ledger.committed_slots(), 6);
  EXPECT_EQ(ledger.free_slots(), 4);
  EXPECT_FALSE(ledger.fits(too_big));
  EXPECT_TRUE(ledger.fits(b));
  ledger.commit(2, b);
  EXPECT_EQ(ledger.free_slots(), 0);
  EXPECT_DOUBLE_EQ(ledger.slot_occupancy(), 1.0);
  EXPECT_DOUBLE_EQ(ledger.bandwidth_occupancy(), 1.0);
  EXPECT_EQ(ledger.active_jobs(), 2u);
  ASSERT_NE(ledger.grant(1), nullptr);
  EXPECT_EQ(ledger.grant(1)->slots, 6);
  ledger.release(1);
  EXPECT_EQ(ledger.free_slots(), 6);
  ledger.release(2);
  EXPECT_EQ(ledger.committed_slots(), 0);
  EXPECT_DOUBLE_EQ(ledger.committed_bandwidth(), 0.0);
  // Peaks remember the high-water mark after everything drained.
  EXPECT_EQ(ledger.peak_slots(), 10);
  EXPECT_DOUBLE_EQ(ledger.peak_bandwidth(), 100.0);
}

TEST(ClusterLedger, OvercommitAndDoubleGrantAreBugs) {
  service::ClusterLedger ledger(4, 50.0);
  ledger.commit(1, {3, 30.0});
  EXPECT_THROW(ledger.commit(2, {2, 10.0}), CheckError);   // slots over
  EXPECT_THROW(ledger.commit(3, {1, 30.0}), CheckError);   // bandwidth over
  EXPECT_THROW(ledger.commit(1, {1, 1.0}), CheckError);    // double grant
  EXPECT_THROW(ledger.release(99), CheckError);            // unknown id
}

TEST(Arrivals, PoissonDeterministicAndRateMatched) {
  const auto a = service::poisson_arrivals(500, 0.5, 21);
  const auto b = service::poisson_arrivals(500, 0.5, 21);
  EXPECT_EQ(a, b);
  const auto c = service::poisson_arrivals(500, 0.5, 22);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // Mean inter-arrival gap ~ 1/rate = 2 s.
  EXPECT_NEAR(a.back() / 500.0, 2.0, 0.4);
}

TEST(Arrivals, TraceGapsPreservedAndRescalable) {
  trace::SyntheticTraceOptions topt;
  topt.num_jobs = 50;
  topt.seed = 4;
  const auto jobs = trace::synthetic_trace(topt);
  auto arrivals = service::trace_arrivals(jobs, jobs.size());
  ASSERT_EQ(arrivals.size(), jobs.size());
  EXPECT_DOUBLE_EQ(arrivals.front(), 0.0);
  // Same gap structure as the trace (which is sorted by submit time).
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_NEAR(arrivals[i] - arrivals[i - 1],
                jobs[i].submit_time - jobs[i - 1].submit_time, 1e-9);
  }
  // Cycling past the end keeps producing nondecreasing times.
  const auto doubled = service::trace_arrivals(jobs, 2 * jobs.size());
  EXPECT_TRUE(std::is_sorted(doubled.begin(), doubled.end()));
  // Rescaling pins the mean gap at 1/rate while keeping the shape.
  service::rescale_to_rate(arrivals, 0.25);
  const double mean_gap =
      arrivals.back() / static_cast<double>(arrivals.size() - 1);
  EXPECT_NEAR(mean_gap, 4.0, 1e-9);
}

TEST(SchedNdjson, ParsesWorkloadAndSpecRequests) {
  service::SchedRequest r;
  ASSERT_TRUE(service::parse_sched_request(
                  R"({"v": 1, "workload": "lda", "scale": 0.5,)"
                  R"( "arrival": 12.5, "priority": 3, "future_field": true})",
                  &r)
                  .is_ok());
  EXPECT_EQ(r.dag.name(), "LDA");
  EXPECT_DOUBLE_EQ(r.arrival, 12.5);
  EXPECT_EQ(r.priority, 3);

  ASSERT_TRUE(service::parse_sched_request(
                  R"({"spec": "job,inline\nstage,s,4,1.0,2.0,0.5,0.1\n"})",
                  &r)
                  .is_ok());
  EXPECT_EQ(r.dag.name(), "inline");
  EXPECT_EQ(r.dag.num_stages(), 1);
  EXPECT_DOUBLE_EQ(r.arrival, -1);  // absent = caller decides
}

TEST(SchedNdjson, RejectsBadVersionAndMalformedRequests) {
  service::SchedRequest r;
  const Status v2 = service::parse_sched_request(
      R"({"v": 2, "workload": "lda"})", &r);
  EXPECT_FALSE(v2.is_ok());
  EXPECT_NE(v2.message().find("unsupported protocol version"),
            std::string::npos);
  EXPECT_FALSE(service::parse_sched_request("not json", &r).is_ok());
  EXPECT_FALSE(service::parse_sched_request("[1, 2]", &r).is_ok());
  EXPECT_FALSE(service::parse_sched_request(R"({"v": 1})", &r).is_ok());
  EXPECT_FALSE(service::parse_sched_request(
                   R"({"workload": "lda", "spec": "x"})", &r)
                   .is_ok());
  EXPECT_FALSE(service::parse_sched_request(
                   R"({"workload": "nope"})", &r)
                   .is_ok());
  EXPECT_FALSE(service::parse_sched_request(
                   R"({"workload": "lda", "scale": -1})", &r)
                   .is_ok());
}

TEST(SchedNdjson, ResponseLinesCarryVersionAndNewline) {
  JobStatus s;
  s.id = 3;
  s.name = "j";
  s.state = JobState::kFinished;
  std::ostringstream os;
  service::write_job_status(os, s);
  const std::string line = os.str();
  EXPECT_EQ(line.find(R"({"v": 1, "id": 3)"), 0u);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(Policy, ParseAndScores) {
  service::OrderPolicy p;
  ASSERT_TRUE(service::parse_order_policy("fifo", &p).is_ok());
  EXPECT_EQ(p, service::OrderPolicy::kFifo);
  ASSERT_TRUE(service::parse_order_policy("sjf", &p).is_ok());
  EXPECT_EQ(p, service::OrderPolicy::kSjf);
  ASSERT_TRUE(service::parse_order_policy("hard-first", &p).is_ok());
  EXPECT_EQ(p, service::OrderPolicy::kHardFirst);
  EXPECT_FALSE(service::parse_order_policy("lifo", &p).is_ok());

  // FIFO is score-blind; SJF prefers the shorter job; HardFirst the longer
  // critical path.
  EXPECT_EQ(service::policy_score(service::OrderPolicy::kFifo, 10, 99),
            service::policy_score(service::OrderPolicy::kFifo, 99, 10));
  EXPECT_LT(service::policy_score(service::OrderPolicy::kSjf, 10, 0),
            service::policy_score(service::OrderPolicy::kSjf, 99, 0));
  EXPECT_LT(service::policy_score(service::OrderPolicy::kHardFirst, 0, 99),
            service::policy_score(service::OrderPolicy::kHardFirst, 0, 10));
}

TEST(SchedulerOptions, ValidateRejectsBadFields) {
  SchedulerOptions opt;
  EXPECT_TRUE(validate(opt).is_ok());
  opt.max_share = 0;
  EXPECT_FALSE(validate(opt).is_ok());
  opt = {};
  opt.max_share = 1.5;
  EXPECT_FALSE(validate(opt).is_ok());
  opt = {};
  opt.min_slots_per_job = 0;
  EXPECT_FALSE(validate(opt).is_ok());
  opt = {};
  opt.interference = -0.1;
  EXPECT_FALSE(validate(opt).is_ok());
  opt = {};
  opt.cluster.num_workers = 0;
  EXPECT_FALSE(validate(opt).is_ok());
}

}  // namespace
}  // namespace ds
