// Online model recalibration and the quantile-aware perf model:
// workload signatures, EWMA correction factors, the bit-exact identity
// contracts, and the validated-options error paths.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.h"
#include "core/delay_calculator.h"
#include "core/perf_model.h"
#include "core/profile.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/status.h"
#include "util/units.h"

namespace ds::core {
namespace {

using namespace ds;  // literals

dag::Stage mk(const std::string& name, int tasks, Bytes in, BytesPerSec rate,
              Bytes out, double skew = 0.2) {
  dag::Stage s;
  s.name = name;
  s.num_tasks = tasks;
  s.input_bytes = in;
  s.process_rate = rate;
  s.output_bytes = out;
  s.task_skew = skew;
  return s;
}

dag::JobDag diamond() {
  dag::JobDag j("diamond");
  j.add_stage(mk("a", 8, 2_GB, 4_MBps, 1_GB));
  j.add_stage(mk("b", 8, 1_GB, 2_MBps, 500_MB));
  j.add_stage(mk("c", 8, 1.5_GB, 3_MBps, 200_MB));
  j.add_edge(0, 1);
  j.add_edge(0, 2);
  return j;
}

// ---------- workload signatures ----------

TEST(WorkloadSignature, StableAcrossInstancesSensitiveToShape) {
  const dag::JobDag a = diamond();
  const dag::JobDag b = diamond();  // distinct instance, same workload
  EXPECT_EQ(workload_signature(a), workload_signature(b));

  dag::JobDag c = diamond();
  c.mutable_stage(1).input_bytes += 1;  // one byte of volume difference
  EXPECT_NE(workload_signature(a), workload_signature(c));

  dag::JobDag d("diamond");  // same stages, one edge fewer
  d.add_stage(mk("a", 8, 2_GB, 4_MBps, 1_GB));
  d.add_stage(mk("b", 8, 1_GB, 2_MBps, 500_MB));
  d.add_stage(mk("c", 8, 1.5_GB, 3_MBps, 200_MB));
  d.add_edge(0, 1);
  EXPECT_NE(workload_signature(a), workload_signature(d));
}

// ---------- EWMA calibration ----------

TEST(ModelCalibrator, ConvergesTowardTheObservedRatio) {
  ModelCalibrator cal;
  const std::uint64_t sig = 42;
  PhaseObservation obs;
  obs.predicted_network = 10;
  obs.actual_network = 20;  // network ran 2× the prediction
  obs.predicted_compute = 10;
  obs.actual_compute = 10;  // compute was spot-on
  obs.predicted_write = 10;
  obs.actual_write = 5;  // write ran at half
  for (int i = 0; i < 20; ++i) cal.observe(sig, obs);
  const CalibrationFactors f = cal.factors(sig);
  EXPECT_EQ(f.observations, 20);
  EXPECT_NEAR(f.network, 2.0, 1e-3);
  EXPECT_NEAR(f.compute, 1.0, 1e-9);
  EXPECT_NEAR(f.write, 0.5, 1e-3);
}

TEST(ModelCalibrator, FirstObservationMovesByAlpha) {
  CalibrationOptions copt;
  copt.ewma_alpha = 0.4;
  ModelCalibrator cal(copt);
  PhaseObservation obs;
  obs.predicted_compute = 10;
  obs.actual_compute = 20;
  cal.observe(7, obs);
  // f ← 0.6·1.0 + 0.4·2.0 = 1.4; the unobserved terms keep their factor.
  const CalibrationFactors f = cal.factors(7);
  EXPECT_DOUBLE_EQ(f.compute, 0.6 * 1.0 + 0.4 * 2.0);
  EXPECT_DOUBLE_EQ(f.network, 1.0);
  EXPECT_DOUBLE_EQ(f.write, 1.0);
}

TEST(ModelCalibrator, ClampBoundsWildRuns) {
  CalibrationOptions copt;
  copt.ewma_alpha = 1.0;  // adopt each run wholesale to hit the clamp
  ModelCalibrator cal(copt);
  PhaseObservation obs;
  obs.predicted_compute = 1e-6;
  obs.actual_compute = 1e6;  // a 1e12× "ratio" — must clamp, not poison
  cal.observe(1, obs);
  EXPECT_DOUBLE_EQ(cal.factors(1).compute, copt.max_factor);
  obs.actual_compute = 1e-18;
  cal.observe(2, obs);
  EXPECT_DOUBLE_EQ(cal.factors(2).compute, copt.min_factor);
}

TEST(ModelCalibrator, UnusableAndUnknownAreIdentity) {
  ModelCalibrator cal;
  EXPECT_TRUE(cal.factors(123).is_identity());  // never observed
  cal.observe(123, PhaseObservation{});         // no predicted spans
  EXPECT_TRUE(cal.factors(123).is_identity());
  EXPECT_EQ(cal.workloads(), 0u);
}

TEST(ModelCalibrator, RejectsBadOptions) {
  CalibrationOptions bad;
  bad.ewma_alpha = 0;
  EXPECT_THROW(ModelCalibrator{bad}, CheckError);
  bad = {};
  bad.min_factor = 0;
  EXPECT_THROW(ModelCalibrator{bad}, CheckError);
  bad = {};
  bad.max_factor = 0.5;
  EXPECT_THROW(ModelCalibrator{bad}, CheckError);
}

// ---------- calibrated profiles ----------

TEST(CalibratedProfile, IdentityFactorsAreABitExactNoop) {
  const dag::JobDag dag = diamond();
  const JobProfile base =
      JobProfile::from(dag, sim::ClusterSpec::three_node());
  const JobProfile p = calibrated_profile(base, CalibrationFactors{});
  EXPECT_EQ(p.cluster.nic_bw, base.cluster.nic_bw);
  EXPECT_EQ(p.cluster.storage_net_bw, base.cluster.storage_net_bw);
  EXPECT_EQ(p.cluster.disk_bw, base.cluster.disk_bw);
  EXPECT_EQ(p.compute_time_scale, base.compute_time_scale);
  EXPECT_EQ(p.dag, base.dag);
}

TEST(CalibratedProfile, FactorsCorrectEachTerm) {
  const dag::JobDag dag = diamond();
  const JobProfile base =
      JobProfile::from(dag, sim::ClusterSpec::three_node());
  CalibrationFactors f;
  f.network = 2.0;  // fetches ran 2× as long ⇒ half the usable bandwidth
  f.compute = 1.5;
  f.write = 0.5;
  const JobProfile p = calibrated_profile(base, f);
  EXPECT_DOUBLE_EQ(p.cluster.nic_bw, base.cluster.nic_bw / 2.0);
  EXPECT_DOUBLE_EQ(p.compute_time_scale, 1.5);
  EXPECT_DOUBLE_EQ(p.cluster.disk_bw, base.cluster.disk_bw * 2.0);
  // The corrected model predicts a slower job than the trusted profile.
  const PerfModel trusted(base), corrected(p);
  EXPECT_GT(corrected.solo_time(0), trusted.solo_time(0));
}

TEST(CalibratedPerfModel, OwnsItsProfile) {
  const dag::JobDag dag = diamond();
  CalibrationFactors f;
  f.compute = 2.0;
  const CalibratedPerfModel cm(
      JobProfile::from(dag, sim::ClusterSpec::three_node()), f);
  EXPECT_DOUBLE_EQ(cm.profile().compute_time_scale, 2.0);
  EXPECT_DOUBLE_EQ(cm.factors().compute, 2.0);
  EXPECT_GT(cm.model().solo_time(0), 0);
}

// ---------- quantile-aware model ----------

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.9), 1.281552, 1e-4);
  // Monotone through the tail-branch boundaries.
  double prev = -1e30;
  for (double p = 0.001; p < 1.0; p += 0.001) {
    const double z = inverse_normal_cdf(p);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(QuantileModel, ZeroQuantileIsTheLegacyModelBitExact) {
  const dag::JobDag dag = diamond();
  const JobProfile profile =
      JobProfile::from(dag, sim::ClusterSpec::three_node());
  const PerfModel legacy(profile);
  ModelOptions m;
  m.quantile = 0.0;
  const PerfModel same(profile, m);
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    EXPECT_EQ(same.straggler_factor(s), legacy.straggler_factor(s));
    EXPECT_EQ(same.solo_time(s), legacy.solo_time(s));
  }
  EXPECT_TRUE(m.is_identity());
}

TEST(QuantileModel, HigherQuantilesBudgetMoreStragglerTime) {
  const dag::JobDag dag = diamond();
  const JobProfile profile =
      JobProfile::from(dag, sim::ClusterSpec::three_node());
  ModelOptions p50, p90, p99;
  p50.quantile = 0.5;
  p90.quantile = 0.9;
  p99.quantile = 0.99;
  const PerfModel m50(profile, p50), m90(profile, p90), m99(profile, p99);
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    EXPECT_LE(m50.straggler_factor(s), m90.straggler_factor(s));
    EXPECT_LE(m90.straggler_factor(s), m99.straggler_factor(s));
    EXPECT_LT(m99.straggler_factor(s), 1e3);  // finite, sane
  }
}

TEST(QuantileModel, SpeculationCapsTheInflation) {
  const dag::JobDag dag = diamond();
  const JobProfile profile =
      JobProfile::from(dag, sim::ClusterSpec::three_node());
  ModelOptions spec;
  spec.quantile = 0.999;  // deep tail, would inflate far past the cap
  spec.speculation = true;
  spec.speculation_threshold = 1.5;
  const PerfModel m(profile, spec);
  for (dag::StageId s = 0; s < dag.num_stages(); ++s)
    EXPECT_LE(m.straggler_factor(s), spec.speculation_threshold + 1.0);
  EXPECT_FALSE(spec.is_identity());
}

// ---------- validated options (the Status error path) ----------

TEST(Validate, CalculatorOptionsProblemsAreExplained) {
  EXPECT_TRUE(validate(CalculatorOptions{}).is_ok());
  CalculatorOptions o;
  o.model.quantile = 1.0;
  const Status bad_q = validate(o);
  ASSERT_FALSE(bad_q.is_ok());
  EXPECT_NE(bad_q.message().find("quantile"), std::string::npos);

  o = {};
  o.step = 0;
  EXPECT_FALSE(validate(o).is_ok());
  o = {};
  o.slot = -1;
  EXPECT_FALSE(validate(o).is_ok());
  o = {};
  o.coarse_candidates = 1;
  EXPECT_FALSE(validate(o).is_ok());
  o = {};
  o.model.speculation_threshold = 1.0;
  EXPECT_FALSE(validate(o).is_ok());

  // The calculator constructor enforces the same contract by throwing.
  const dag::JobDag dag = diamond();
  const JobProfile profile =
      JobProfile::from(dag, sim::ClusterSpec::three_node());
  CalculatorOptions bad;
  bad.model.quantile = 2.0;
  EXPECT_THROW(DelayCalculator(profile, bad), CheckError);
}

TEST(Validate, StatusCarriesTheFirstProblem) {
  const Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_TRUE(ok.message().empty());
  const Status err = Status::error("boom");
  EXPECT_FALSE(err.is_ok());
  EXPECT_FALSE(static_cast<bool>(err));
  EXPECT_EQ(err.message(), "boom");
}

}  // namespace
}  // namespace ds::core
