#include <gtest/gtest.h>

#include <vector>

#include "metrics/cdf.h"
#include "metrics/sampler.h"
#include "metrics/stats.h"
#include "metrics/timeseries.h"
#include "sim/cluster.h"
#include "util/check.h"

namespace ds::metrics {
namespace {

TEST(Stats, SummarizeBasics) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{3.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_NEAR(percentile(xs, 90), 37.0, 1e-9);
}

TEST(Cdf, PercentileAndFractionAreInverse) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(static_cast<double>(i));
  EXPECT_NEAR(c.percentile(50), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(c.fraction_below(50.0), 50.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(1000.0), 100.0);
  EXPECT_DOUBLE_EQ(c.mean(), 50.5);
}

TEST(Cdf, PointsAreMonotone) {
  Cdf c;
  for (int i = 0; i < 57; ++i) c.add(static_cast<double>((i * 37) % 101));
  const auto pts = c.points(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().cum_percent, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().cum_percent, 100.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].value, pts[i - 1].value);
    EXPECT_GT(pts[i].cum_percent, pts[i - 1].cum_percent);
  }
}

TEST(Cdf, EmptyQueriesThrow) {
  Cdf c;
  EXPECT_THROW(c.percentile(50), CheckError);
  EXPECT_THROW(c.mean(), CheckError);
}

TEST(TimeSeries, AppendsAndSummarizes) {
  TimeSeries ts;
  ts.push(0, 10);
  ts.push(1, 20);
  ts.push(2, 30);
  EXPECT_DOUBLE_EQ(ts.summarize().mean, 20.0);
  EXPECT_DOUBLE_EQ(ts.summarize(1.0, 2.0).mean, 25.0);
  EXPECT_THROW(ts.push(1.0, 0), CheckError);  // out of order
}

TEST(TimeSeries, RebucketAverages) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.push(i, static_cast<double>(i));
  const TimeSeries b = ts.rebucket(5.0);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.value(0), 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(b.value(1), 7.0);  // mean of 5..9
  EXPECT_DOUBLE_EQ(b.time(0), 2.5);
}

TEST(TimeSeries, RebucketFillsEmptyBucketsWithZero) {
  TimeSeries ts;
  ts.push(0.5, 4.0);
  ts.push(10.5, 8.0);
  const TimeSeries b = ts.rebucket(1.0);
  ASSERT_EQ(b.size(), 11u);
  EXPECT_DOUBLE_EQ(b.value(0), 4.0);
  EXPECT_DOUBLE_EQ(b.value(5), 0.0);
  EXPECT_DOUBLE_EQ(b.value(10), 8.0);
}

TEST(Sampler, RecordsCpuAndNetworkUtilization) {
  sim::Simulator simulator;
  sim::ClusterSpec spec = sim::ClusterSpec::three_node();
  sim::Cluster cluster(simulator, spec, 5);
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();

  // Both executors of worker 0 actively compute between t=0 and t=5.
  cluster.begin_compute(0);
  cluster.begin_compute(0);
  simulator.schedule_at(5.0, [&] {
    cluster.end_compute(0);
    cluster.end_compute(0);
  });
  // A long flow into worker 1.
  cluster.fabric().start_flow({.src = cluster.storage_node(0), .dst = 1, .bytes = 1e12});
  simulator.schedule_at(10.0, [&] {
    sampler.stop();
  });
  simulator.run_until(10.5);

  const TimeSeries& cpu0 = sampler.cpu_util(0);
  ASSERT_GE(cpu0.size(), 10u);
  // t=1..4: both slots busy -> 100%.
  EXPECT_DOUBLE_EQ(cpu0.value(2), 100.0);
  // After release: 0%.
  EXPECT_DOUBLE_EQ(cpu0.value(8), 0.0);
  // Worker 1 receives at its NIC rate (or the storage node's egress).
  const TimeSeries& net1 = sampler.net_rx_mbps(1);
  const double expect_rate =
      std::min(cluster.nic_bw(1), cluster.nic_bw(cluster.storage_node(0))) / 1e6;
  EXPECT_NEAR(net1.value(3), expect_rate, 1e-6);
  // Cluster averages exist and are bounded.
  EXPECT_LE(sampler.cluster_cpu_util().summarize().max, 100.0);
}

TEST(Sampler, StopHaltsSampling) {
  sim::Simulator simulator;
  sim::Cluster cluster(simulator, sim::ClusterSpec::three_node(), 5);
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  simulator.schedule_at(3.0, [&] { sampler.stop(); });
  simulator.run();  // must terminate (sampler no longer self-schedules)
  EXPECT_LE(sampler.cpu_util(0).size(), 5u);
}

}  // namespace
}  // namespace ds::metrics
