// Summary statistics for experiment reporting (Table 3/4 style mean(std)).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "util/check.h"

namespace ds::metrics {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;  // population standard deviation
  double min = 0;
  double max = 0;
};

inline Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return s;
}

// p in [0, 100]; linear interpolation between order statistics.
inline double percentile(std::span<const double> sorted, double p) {
  DS_CHECK(!sorted.empty());
  DS_CHECK(p >= 0 && p <= 100);
  if (sorted.size() == 1) return sorted[0];
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace ds::metrics
