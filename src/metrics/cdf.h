// Empirical CDF: accumulate samples, query percentiles, and emit the
// (value, cumulative %) rows the paper's CDF figures (2, 3, 14) plot.
#pragma once

#include <vector>

namespace ds::metrics {

class Cdf {
 public:
  void add(double v);
  void add_all(const std::vector<double>& vs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  // Value at percentile p (0..100).
  double percentile(double p) const;
  // Fraction of samples <= v, in percent.
  double fraction_below(double v) const;

  struct Point {
    double value;
    double cum_percent;
  };
  // `n` evenly spaced points in percentile space (plus the 100% point).
  std::vector<Point> points(int n = 20) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace ds::metrics
