// Periodic resource-utilization sampler, the simulator's equivalent of the
// paper's per-node monitoring (sar/netperf style). Every `dt` it records, per
// worker: CPU utilization (busy executors / slots, %) and NIC receive
// throughput (MB/s). Also keeps cluster-wide averages for Fig. 4(a).
#pragma once

#include <vector>

#include "metrics/timeseries.h"
#include "sim/cluster.h"

namespace ds::metrics {

class UtilizationSampler {
 public:
  UtilizationSampler(sim::Cluster& cluster, Seconds dt = 1.0);
  ~UtilizationSampler();
  UtilizationSampler(const UtilizationSampler&) = delete;
  UtilizationSampler& operator=(const UtilizationSampler&) = delete;

  // Begin sampling at the current sim time. stop() must be called before the
  // simulation can drain (the sampler keeps rescheduling itself).
  void start();
  void stop();

  const TimeSeries& cpu_util(sim::NodeId worker) const;     // percent
  const TimeSeries& net_rx_mbps(sim::NodeId worker) const;  // MB/s
  const TimeSeries& cluster_cpu_util() const { return cluster_cpu_; }
  const TimeSeries& cluster_net_rx() const { return cluster_net_; }

 private:
  void sample();

  sim::Cluster& cluster_;
  Seconds dt_;
  sim::EventId pending_ = sim::kInvalidEvent;
  std::vector<TimeSeries> cpu_;
  std::vector<TimeSeries> net_;
  TimeSeries cluster_cpu_;
  TimeSeries cluster_net_;
};

}  // namespace ds::metrics
