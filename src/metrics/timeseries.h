// Uniformly or irregularly sampled time series used for the utilization
// plots (Figs. 4, 5, 12, 17) and their summary rows (Tables 3, 4).
#pragma once

#include <vector>

#include "metrics/stats.h"
#include "util/units.h"

namespace ds::metrics {

class TimeSeries {
 public:
  void push(Seconds t, double v);

  std::size_t size() const { return t_.size(); }
  bool empty() const { return t_.empty(); }
  Seconds time(std::size_t i) const { return t_.at(i); }
  double value(std::size_t i) const { return v_.at(i); }
  const std::vector<double>& values() const { return v_; }
  const std::vector<Seconds>& times() const { return t_; }

  // Summary over samples with t in [t0, t1] (whole series by default).
  Summary summarize() const;
  Summary summarize(Seconds t0, Seconds t1) const;

  // Average into fixed-width buckets (for coarse plots like Fig. 4's 8-day
  // view); bucket timestamps are bucket centers. Empty buckets carry 0.
  TimeSeries rebucket(Seconds bucket_width) const;

 private:
  std::vector<Seconds> t_;
  std::vector<double> v_;
};

}  // namespace ds::metrics
