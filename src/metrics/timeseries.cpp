#include "metrics/timeseries.h"

#include <cmath>

#include "util/check.h"

namespace ds::metrics {

void TimeSeries::push(Seconds t, double v) {
  DS_CHECK_MSG(t_.empty() || t >= t_.back(), "time series must be appended in order");
  t_.push_back(t);
  v_.push_back(v);
}

Summary TimeSeries::summarize() const { return metrics::summarize(v_); }

Summary TimeSeries::summarize(Seconds t0, Seconds t1) const {
  std::vector<double> window;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    if (t_[i] >= t0 && t_[i] <= t1) window.push_back(v_[i]);
  }
  return metrics::summarize(window);
}

TimeSeries TimeSeries::rebucket(Seconds bucket_width) const {
  DS_CHECK(bucket_width > 0);
  TimeSeries out;
  if (t_.empty()) return out;
  const Seconds end = t_.back();
  const auto nbuckets =
      static_cast<std::size_t>(std::floor(end / bucket_width)) + 1;
  std::vector<double> sum(nbuckets, 0.0);
  std::vector<std::size_t> cnt(nbuckets, 0);
  for (std::size_t i = 0; i < t_.size(); ++i) {
    const auto b = static_cast<std::size_t>(std::floor(t_[i] / bucket_width));
    sum[b] += v_[i];
    ++cnt[b];
  }
  for (std::size_t b = 0; b < nbuckets; ++b) {
    const double v = cnt[b] > 0 ? sum[b] / static_cast<double>(cnt[b]) : 0.0;
    out.push((static_cast<double>(b) + 0.5) * bucket_width, v);
  }
  return out;
}

}  // namespace ds::metrics
