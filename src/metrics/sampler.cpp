#include "metrics/sampler.h"

#include "util/check.h"
#include "util/units.h"

namespace ds::metrics {

UtilizationSampler::UtilizationSampler(sim::Cluster& cluster, Seconds dt)
    : cluster_(cluster), dt_(dt) {
  DS_CHECK(dt > 0);
  cpu_.resize(static_cast<std::size_t>(cluster.num_workers()));
  net_.resize(static_cast<std::size_t>(cluster.num_workers()));
}

UtilizationSampler::~UtilizationSampler() { stop(); }

void UtilizationSampler::start() {
  DS_CHECK_MSG(pending_ == sim::kInvalidEvent, "sampler already running");
  sample();
}

void UtilizationSampler::stop() {
  if (pending_ != sim::kInvalidEvent) {
    cluster_.sim().cancel(pending_);
    pending_ = sim::kInvalidEvent;
  }
}

const TimeSeries& UtilizationSampler::cpu_util(sim::NodeId worker) const {
  return cpu_.at(static_cast<std::size_t>(worker));
}

const TimeSeries& UtilizationSampler::net_rx_mbps(sim::NodeId worker) const {
  return net_.at(static_cast<std::size_t>(worker));
}

void UtilizationSampler::sample() {
  const Seconds now = cluster_.sim().now();
  const auto& pool = cluster_.executors();
  double cpu_sum = 0;
  double net_sum = 0;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    // CPU utilization = tasks actively processing data / executors, not slot
    // occupancy: a task fetching shuffle input holds its slot but leaves the
    // CPU idle (paper Fig. 5).
    const double util =
        100.0 * static_cast<double>(cluster_.computing(w)) /
        static_cast<double>(pool.slots(w));
    const double rx = to_MBps(cluster_.fabric().node_rx_rate(w));
    cpu_[static_cast<std::size_t>(w)].push(now, util);
    net_[static_cast<std::size_t>(w)].push(now, rx);
    cpu_sum += util;
    net_sum += rx;
  }
  const auto nw = static_cast<double>(cluster_.num_workers());
  cluster_cpu_.push(now, cpu_sum / nw);
  cluster_net_.push(now, net_sum / nw);
  pending_ = cluster_.sim().schedule_after(dt_, [this] {
    pending_ = sim::kInvalidEvent;
    sample();
  });
}

}  // namespace ds::metrics
