#include "metrics/cdf.h"

#include <algorithm>

#include "metrics/stats.h"
#include "util/check.h"

namespace ds::metrics {

void Cdf::add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void Cdf::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::mean() const {
  DS_CHECK(!samples_.empty());
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Cdf::percentile(double p) const {
  DS_CHECK(!samples_.empty());
  ensure_sorted();
  return metrics::percentile(samples_, p);
}

double Cdf::fraction_below(double v) const {
  DS_CHECK(!samples_.empty());
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), v);
  return 100.0 * static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<Cdf::Point> Cdf::points(int n) const {
  DS_CHECK(n >= 2);
  DS_CHECK(!samples_.empty());
  ensure_sorted();
  std::vector<Point> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double p = 100.0 * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(Point{percentile(p), p});
  }
  return out;
}

}  // namespace ds::metrics
