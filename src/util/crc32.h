// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the profile
// store's record checksums. Table-driven, header-only; the table is built
// once on first use.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ds {

inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ds
