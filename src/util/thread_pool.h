// Small fixed-size worker pool for the planner's fan-out loops.
//
// Design goals, in order: determinism, no deadlocks under nesting, zero
// overhead at size 1. `parallel_for(n, fn)` runs fn(0..n-1) with the *caller
// participating*: the calling thread drains the same index counter as the
// workers, so a task that itself calls parallel_for (nested fan-out, e.g.
// parallel restarts each scanning a candidate grid in parallel) always makes
// progress even when every worker is busy — the pool can never deadlock on
// itself. Results must be written to per-index slots; the iteration order is
// unspecified but the index set is exactly [0, n), so any reduction done
// afterwards in index order is bit-identical for every pool size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ds {

class ThreadPool {
 public:
  // threads <= 0 means std::thread::hardware_concurrency(). A pool of size 1
  // spawns no workers at all: every call runs inline on the caller.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  // Run fn(i) for every i in [0, n). Blocks until all indices completed.
  // The caller executes indices too; workers help when free. The first
  // exception thrown by any fn is rethrown on the caller (remaining indices
  // are still consumed, so the pool stays usable).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Resolve a user-facing thread count: 0 → hardware concurrency, else max(1, t).
  static int resolve_threads(int threads);

 private:
  struct ForState;

  void worker_loop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ForState>> queue_;
  bool stop_ = false;
};

}  // namespace ds
