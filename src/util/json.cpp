#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <ostream>

namespace ds::json {

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

namespace {

// Depth cap so a hostile request ("[[[[[…") cannot blow the daemon's stack.
constexpr int kMaxDepth = 64;

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status run(Value* out) {
    skip_ws();
    if (Status st = parse_value(out, 0); !st.is_ok()) return st;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing characters after JSON value");
    return Status::ok();
  }

 private:
  Status fail(const std::string& what) const {
    return Status::error("json: " + what + " at offset " +
                         std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out->type_ = Value::Type::kString;
        return parse_string(&out->string_);
      }
      case 't':
        if (!consume_word("true")) return fail("bad literal");
        out->type_ = Value::Type::kBool;
        out->bool_ = true;
        return Status::ok();
      case 'f':
        if (!consume_word("false")) return fail("bad literal");
        out->type_ = Value::Type::kBool;
        out->bool_ = false;
        return Status::ok();
      case 'n':
        if (!consume_word("null")) return fail("bad literal");
        out->type_ = Value::Type::kNull;
        return Status::ok();
      default: return parse_number(out);
    }
  }

  Status parse_object(Value* out, int depth) {
    ++pos_;  // '{'
    out->type_ = Value::Type::kObject;
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (Status st = parse_string(&key); !st.is_ok()) return st;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      Value v;
      if (Status st = parse_value(&v, depth + 1); !st.is_ok()) return st;
      out->members_.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Status::ok();
      return fail("expected ',' or '}' in object");
    }
  }

  Status parse_array(Value* out, int depth) {
    ++pos_;  // '['
    out->type_ = Value::Type::kArray;
    skip_ws();
    if (consume(']')) return Status::ok();
    while (true) {
      skip_ws();
      Value v;
      if (Status st = parse_value(&v, depth + 1); !st.is_ok()) return st;
      out->array_.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Status::ok();
      return fail("expected ',' or ']' in array");
    }
  }

  Status parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(&code)) return fail("bad \\u escape");
          // Surrogate pairs: a high surrogate must be followed by \uDC00-DFFF.
          if (code >= 0xD800 && code <= 0xDBFF) {
            unsigned lo = 0;
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              if (!parse_hex4(&lo) || lo < 0xDC00 || lo > 0xDFFF)
                return fail("bad low surrogate");
              code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("lone high surrogate");
            }
          }
          append_utf8(out, code);
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status parse_number(Value* out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc() || ptr == begin) return fail("bad number");
    pos_ += static_cast<std::size_t>(ptr - begin);
    out->type_ = Value::Type::kNumber;
    out->number_ = v;
    return Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Status parse(std::string_view text, Value* out) {
  *out = Value();
  return Parser(text).run(out);
}

void write_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace ds::json
