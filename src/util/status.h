// ds::Status — a tiny explicit error value for options validation.
//
// DS_CHECK is the right tool for *invariants* (violations are bugs and throw
// CheckError), but user-provided configuration deserves a recoverable,
// message-first path: validators return a Status describing the first
// problem found, callers decide whether to throw, print, or repair. The
// CLIs surface Status messages verbatim as `error: <message>`.
#pragma once

#include <string>
#include <utility>

namespace ds {

class Status {
 public:
  Status() = default;  // ok

  static Status ok() { return Status(); }
  static Status error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool is_ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  // Empty for ok statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace ds
