// Minimal JSON value + recursive-descent parser for the plan daemon's
// newline-delimited request protocol (and for tests that want to poke at the
// JSON the system emits). Deliberately small: objects keep insertion order,
// numbers are doubles, \uXXXX escapes decode to UTF-8. Parsing reports the
// first problem as a ds::Status instead of throwing — a malformed request
// must produce an error *response*, not kill the daemon.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ds::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  // Typed reads with a fallback — the daemon treats absent and wrong-typed
  // fields identically (use the default).
  double num_or(double fallback) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  std::int64_t int_or(std::int64_t fallback) const {
    return type_ == Type::kNumber ? static_cast<std::int64_t>(number_)
                                  : fallback;
  }
  bool bool_or(bool fallback) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  const std::string& str_or(const std::string& fallback) const {
    return type_ == Type::kString ? string_ : fallback;
  }

  // Object member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  const std::vector<Value>& array() const { return array_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

 private:
  friend class Parser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

// Parse one JSON document (trailing whitespace allowed, anything else after
// the value is an error). On failure `out` is left null.
Status parse(std::string_view text, Value* out);

// Write `s` as a JSON string literal (quotes included, control characters
// and backslashes escaped) — the one piece every hand-rolled JSON writer in
// this repo needs to get right.
void write_string(std::ostream& os, std::string_view s);

}  // namespace ds::json
