// Unit helpers. All quantities in the library use SI base units:
//   data volume  — bytes   (double; volumes are fluid, not addressable memory)
//   bandwidth    — bytes/second
//   time         — seconds
// The helpers below exist so call sites read like the paper ("30 GB input",
// "480 Mbps NIC", "80 MB/s disk") instead of raw exponents.
#pragma once

namespace ds {

using Bytes = double;          // data volume
using BytesPerSec = double;    // bandwidth / processing rate
using Seconds = double;        // durations and absolute sim time

constexpr Bytes operator""_KB(long double v) { return static_cast<Bytes>(v) * 1e3; }
constexpr Bytes operator""_MB(long double v) { return static_cast<Bytes>(v) * 1e6; }
constexpr Bytes operator""_GB(long double v) { return static_cast<Bytes>(v) * 1e9; }
constexpr Bytes operator""_KB(unsigned long long v) { return static_cast<Bytes>(v) * 1e3; }
constexpr Bytes operator""_MB(unsigned long long v) { return static_cast<Bytes>(v) * 1e6; }
constexpr Bytes operator""_GB(unsigned long long v) { return static_cast<Bytes>(v) * 1e9; }

// Network bandwidth is quoted in bits/s (Mbps, Gbps); disk in bytes/s (MB/s).
constexpr BytesPerSec operator""_Mbps(long double v) { return static_cast<BytesPerSec>(v) * 1e6 / 8.0; }
constexpr BytesPerSec operator""_Gbps(long double v) { return static_cast<BytesPerSec>(v) * 1e9 / 8.0; }
constexpr BytesPerSec operator""_Mbps(unsigned long long v) { return static_cast<BytesPerSec>(v) * 1e6 / 8.0; }
constexpr BytesPerSec operator""_Gbps(unsigned long long v) { return static_cast<BytesPerSec>(v) * 1e9 / 8.0; }
constexpr BytesPerSec operator""_MBps(long double v) { return static_cast<BytesPerSec>(v) * 1e6; }
constexpr BytesPerSec operator""_MBps(unsigned long long v) { return static_cast<BytesPerSec>(v) * 1e6; }

constexpr double to_MB(Bytes b) { return b / 1e6; }
constexpr double to_GB(Bytes b) { return b / 1e9; }
constexpr double to_MBps(BytesPerSec r) { return r / 1e6; }
constexpr double to_Mbps(BytesPerSec r) { return r * 8.0 / 1e6; }

}  // namespace ds
