#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace ds {

// Shared bookkeeping of one parallel_for call. Workers and the caller pull
// indices from `next`; `live` counts helper lanes that still hold a reference
// to `fn`. The caller cancels helpers that never started (see parallel_for),
// so `live` can only be held up by helpers actually executing — which always
// finish — never by queue entries starved of a worker. That property makes
// nested parallel_for calls deadlock-free.
struct ThreadPool::ForState {
  std::atomic<std::size_t> next{0};
  std::atomic<int> live{0};  // helpers running or queued (pre-cancellation)
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable done;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    }
  }

  void finish_helper(int count = 1) {
    if (live.fetch_sub(count, std::memory_order_acq_rel) == count) {
      std::lock_guard<std::mutex> lock(mu);
      done.notify_all();
    }
  }
};

int ThreadPool::resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : size_(resolve_threads(threads)) {
  // size_ - 1 workers: the caller is always the size_-th lane.
  for (int i = 1; i < size_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<ForState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      state = std::move(queue_.front());
      queue_.pop_front();
    }
    state->drain();
    state->finish_helper();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  // One helper per worker lane, capped by the iteration count; the caller
  // takes the remaining lane. Helpers that find the counter exhausted exit
  // immediately, so over-provisioning is harmless.
  const int helpers =
      static_cast<int>(std::min<std::size_t>(workers_.size(), n - 1));
  state->live.store(helpers, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    DS_CHECK_MSG(!stop_, "parallel_for on a stopped pool");
    for (int h = 0; h < helpers; ++h) queue_.push_back(state);
  }
  cv_.notify_all();

  state->drain();

  // Cancel helpers still sitting in the queue (all indices are consumed, so
  // they would be no-ops anyway); then wait only for helpers that actually
  // started. This keeps nested calls from waiting on queue entries that can
  // never be scheduled while every worker is busy with an outer task.
  int cancelled = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::remove(queue_.begin(), queue_.end(), state);
    cancelled = static_cast<int>(std::distance(it, queue_.end()));
    queue_.erase(it, queue_.end());
  }
  if (cancelled > 0) state->finish_helper(cancelled);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] {
    return state->live.load(std::memory_order_acquire) == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace ds
