// Console table / CSV emission used by the bench harness. Every bench binary
// prints the rows the paper's table or figure reports; TablePrinter keeps the
// formatting uniform and CsvWriter makes the series machine-readable.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ds {

// Fixed-width, right-aligned numeric columns; left-aligned text.
class TablePrinter {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit TablePrinter(std::vector<std::string> headers);

  // Number of fractional digits for double cells (default 2).
  void set_precision(int digits);

  void add_row(std::vector<Cell> cells);

  // Render with a header rule, e.g.
  //   workload        Spark  DelayStage
  //   --------------  -----  ----------
  //   TriangleCount   780.1       458.3
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 2;
};

// Minimal CSV writer (quotes cells containing separators/quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& cells);

 private:
  std::ostream& os_;
};

// Format a double with fixed precision (helper for ad-hoc report lines).
std::string fmt(double v, int digits = 2);

}  // namespace ds
