// Deterministic random number generation. Every stochastic component of the
// library takes an explicit seed (or an Rng&) so that simulations, tests and
// benches are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

namespace ds {

// xoshiro256** with a splitmix64 seeding stage. Small, fast, and —
// unlike std::mt19937 distributions — the derived draws below are fully
// specified here, so results are identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal();
  double normal(double mean, double stddev);
  // Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  // Exponential with given rate (mean 1/rate).
  double exponential(double rate);
  // Bernoulli trial.
  bool chance(double p);
  // Pick an index in [0, weights.size()) proportional to weights.
  std::size_t weighted_index(const std::vector<double>& weights);
  // Derive an independent child generator (stable function of parent state).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace ds
