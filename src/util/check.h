// Runtime invariant checking. DS_CHECK stays on in release builds: the
// simulator's correctness depends on these invariants and their cost is
// negligible next to the event loop.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ds {

// Error type thrown by all DS_CHECK* macros. Distinct from std::logic_error
// so tests can assert on simulator-invariant violations specifically.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

// Optional process-wide hook fired (once, reentrancy-guarded) right before a
// failed DS_CHECK throws — the flight recorder installs its crash dump here
// so the audit trail of the moments leading up to an invariant violation
// survives even when the exception unwinds the process. The hook must not
// throw; a hook that itself trips a DS_CHECK is skipped, not recursed into.
using CheckFailureHook = void (*)(const std::string& what);

inline CheckFailureHook& check_failure_hook() {
  static CheckFailureHook hook = nullptr;
  return hook;
}

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  if (CheckFailureHook hook = check_failure_hook(); hook != nullptr) {
    static thread_local bool in_hook = false;
    if (!in_hook) {
      in_hook = true;
      hook(os.str());
      in_hook = false;
    }
  }
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace ds

#define DS_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::ds::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define DS_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream ds_check_os_;                                \
      ds_check_os_ << msg;                                            \
      ::ds::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                 ds_check_os_.str());                 \
    }                                                                 \
  } while (0)
