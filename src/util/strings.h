// Small string utilities shared by the trace parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ds {

// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

// Parse a non-negative integer; returns false on any non-digit content.
bool parse_u64(std::string_view s, std::uint64_t& out);

// Parse a double; returns false on malformed input.
bool parse_double(std::string_view s, double& out);

}  // namespace ds
