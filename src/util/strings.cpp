#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace ds {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; strtod on a
  // bounded copy is portable and the trace fields are short.
  std::string buf(s);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace ds
