#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace ds {

namespace {
std::string render_cell(const TablePrinter::Cell& c, int precision) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* d = std::get_if<double>(&c)) return fmt(*d, precision);
  return std::to_string(std::get<std::int64_t>(c));
}
}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DS_CHECK(!headers_.empty());
}

void TablePrinter::set_precision(int digits) { precision_ = digits; }

void TablePrinter::add_row(std::vector<Cell> cells) {
  DS_CHECK_MSG(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, table has "
                          << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(render_cell(row[i], precision_));
      width[i] = std::max(width[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  auto emit = [&](const std::vector<std::string>& cells,
                  const std::vector<std::vector<Cell>>* source,
                  std::size_t row_idx) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const bool numeric =
          source != nullptr &&
          !std::holds_alternative<std::string>((*source)[row_idx][i]);
      if (i > 0) os << "  ";
      if (numeric)
        os << std::setw(static_cast<int>(width[i])) << std::right << cells[i];
      else
        os << std::setw(static_cast<int>(width[i])) << std::left << cells[i];
    }
    os << '\n';
  };

  emit(headers_, nullptr, 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i > 0) os << "  ";
    os << std::string(width[i], '-');
  }
  os << '\n';
  for (std::size_t r = 0; r < rendered.size(); ++r) emit(rendered[r], &rows_, r);
}

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    const std::string& c = cells[i];
    if (c.find_first_of(",\"\n") != std::string::npos) {
      os_ << '"';
      for (char ch : c) {
        if (ch == '"') os_ << '"';
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << c;
    }
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << cells[i];
  }
  os_ << '\n';
}

std::string fmt(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace ds
