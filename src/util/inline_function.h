// Small-buffer-optimized move-only callable — the event core's callback type.
//
// std::function heap-allocates any capture list larger than two pointers,
// which made every simulator event an allocation (and its cancellation a
// leak into the old lazy-deletion map). InlineFunction<R(Args...), Capacity>
// stores the callable inline whenever it fits in `Capacity` bytes, is
// nothrow-move-constructible and no more than pointer-aligned — true for
// every sim/engine/fault lambda in this codebase (the largest,
// [this, s, t, req, epoch] in JobRun::enqueue_task, is 32 bytes). Callables
// that do not fit still work through a heap fallback, so correctness never
// depends on the capture size; the fallback bumps a global counter that the
// allocation-regression tests pin to zero for the hot paths.
//
// Differences from std::function, all deliberate:
//   * move-only (events are scheduled once and fired once — copying a
//     callback is always a bug here);
//   * no target_type()/target() RTTI;
//   * invoking an empty InlineFunction is undefined (the simulator checks
//     non-emptiness at push time, once, instead of per call).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ds::util {

namespace detail {
// Heap-fallback constructions since process start. A perf regression gate,
// not a correctness mechanism: tests assert the sim hot path never bumps it.
inline std::atomic<std::uint64_t> inline_function_heap_allocs{0};
}  // namespace detail

inline std::uint64_t inline_function_heap_allocs() {
  return detail::inline_function_heap_allocs.load(std::memory_order_relaxed);
}

template <typename Signature, std::size_t Capacity = 40>
class InlineFunction;  // primary template left undefined on purpose

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<F>;

 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p, Args... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(p)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        if (dst != nullptr) {  // move src -> dst
          ::new (dst) Fn(std::move(*std::launder(reinterpret_cast<Fn*>(src))));
        }
        std::launder(reinterpret_cast<Fn*>(src))->~Fn();
      };
    } else {
      detail::inline_function_heap_allocs.fetch_add(1,
                                                    std::memory_order_relaxed);
      ptr() = new Fn(std::forward<F>(f));
      invoke_ = [](void* p, Args... args) -> R {
        return (**static_cast<Fn**>(p))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        if (dst != nullptr) {
          *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
        } else {
          delete *static_cast<Fn**>(src);
        }
      };
    }
  }

  InlineFunction(InlineFunction&& o) noexcept { steal(o); }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  void*& ptr() { return *reinterpret_cast<void**>(buf_); }

  void reset() {
    if (manage_ != nullptr) manage_(nullptr, buf_);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  // Move o's target into our (empty) storage and leave o empty.
  void steal(InlineFunction& o) {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (manage_ != nullptr) manage_(buf_, o.buf_);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  using Invoke = R (*)(void*, Args...);
  // Move the target from src into dst, destroying src's copy; dst == nullptr
  // destroys only (one pointer covers both ops — keeps the footprint at two
  // words beyond the buffer).
  using Manage = void (*)(void* dst, void* src);

  alignas(void*) unsigned char buf_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace ds::util
