// Minimal leveled logger. Default level is kWarn so library code is silent in
// tests and benches; examples raise it to kInfo to narrate what the cluster
// is doing.
#pragma once

#include <sstream>
#include <string>

namespace ds {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace ds

#define DS_LOG(level, expr)                                        \
  do {                                                             \
    if (static_cast<int>(level) >= static_cast<int>(::ds::log_level())) { \
      std::ostringstream ds_log_os_;                               \
      ds_log_os_ << expr;                                          \
      ::ds::detail::log_line(level, ds_log_os_.str());             \
    }                                                              \
  } while (0)

#define DS_DEBUG(expr) DS_LOG(::ds::LogLevel::kDebug, expr)
#define DS_INFO(expr) DS_LOG(::ds::LogLevel::kInfo, expr)
#define DS_WARN(expr) DS_LOG(::ds::LogLevel::kWarn, expr)
#define DS_ERROR(expr) DS_LOG(::ds::LogLevel::kError, expr)
