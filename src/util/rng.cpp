#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace ds {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DS_CHECK_MSG(lo <= hi, "uniform(" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DS_CHECK_MSG(lo <= hi, "uniform_int(" << lo << ", " << hi << ")");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-40 for any span we use; acceptable for simulation.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  // Box–Muller; u1 is nudged away from 0 to keep log() finite.
  const double u1 = std::max(uniform(), 0x1.0p-60);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  DS_CHECK(rate > 0);
  const double u = std::max(uniform(), 0x1.0p-60);
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  DS_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    DS_CHECK(w >= 0);
    total += w;
  }
  DS_CHECK(total > 0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace ds
