#include "core/stage_delayer.h"

#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace ds::core {

namespace {
constexpr std::string_view kKeyPrefix = "spark.delaystage.stage.";
}

StageDelayer::StageDelayer(DelaySchedule schedule)
    : schedule_(std::move(schedule)) {
  for (Seconds d : schedule_.delay)
    DS_CHECK_MSG(d >= 0, "negative delay in schedule");
}

engine::SubmissionPlan StageDelayer::plan() const {
  engine::SubmissionPlan p;
  p.delay = schedule_.delay;
  return p;
}

std::string StageDelayer::to_properties() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < schedule_.delay.size(); ++k) {
    os << kKeyPrefix << k << "=" << schedule_.delay[k] << "\n";
  }
  return os.str();
}

DelaySchedule StageDelayer::from_properties(const std::string& text) {
  DelaySchedule out;
  for (const std::string& raw : split(text, '\n')) {
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (!starts_with(line, kKeyPrefix)) continue;
    const std::size_t eq = line.find('=');
    DS_CHECK_MSG(eq != std::string_view::npos, "malformed property: " << line);
    std::uint64_t stage = 0;
    DS_CHECK_MSG(parse_u64(trim(line.substr(kKeyPrefix.size(),
                                            eq - kKeyPrefix.size())),
                           stage),
                 "bad stage id in: " << line);
    double value = 0;
    DS_CHECK_MSG(parse_double(trim(line.substr(eq + 1)), value),
                 "bad delay in: " << line);
    DS_CHECK_MSG(value >= 0, "negative delay in: " << line);
    if (stage >= out.delay.size()) out.delay.resize(stage + 1, 0.0);
    out.delay[stage] = value;
  }
  return out;
}

}  // namespace ds::core
