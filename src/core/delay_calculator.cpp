#include "core/delay_calculator.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace ds::core {

const char* to_string(PathOrder order) {
  switch (order) {
    case PathOrder::kDescending: return "descending";
    case PathOrder::kRandom: return "random";
    case PathOrder::kAscending: return "ascending";
  }
  return "?";
}

DelayCalculator::DelayCalculator(const JobProfile& profile,
                                 CalculatorOptions options)
    : profile_(profile), opt_(options) {
  DS_CHECK(opt_.step > 0);
  DS_CHECK(opt_.slot > 0);
  DS_CHECK(opt_.coarse_candidates >= 2);
}

DelaySchedule DelayCalculator::compute() const {
  const dag::JobDag& dag = *profile_.dag;
  const ScheduleEvaluator eval(profile_, opt_.slot);
  const PerfModel& model = eval.model();

  DelaySchedule out;
  out.delay.assign(static_cast<std::size_t>(dag.num_stages()), 0.0);

  // Lines 1–3: execution paths, solo stage times ^t_k, initial path times.
  out.paths = dag::execution_paths(dag, opt_.max_paths);
  if (out.paths.empty()) {
    const Evaluation ev = eval.evaluate(out.delay);
    out.predicted_makespan = ev.parallel_end;
    out.predicted_jct = ev.jct;
    return out;  // no parallel stages — nothing to delay
  }
  std::vector<Seconds> path_time(out.paths.size(), 0.0);
  for (std::size_t m = 0; m < out.paths.size(); ++m) {
    path_time[m] = dag::path_time(out.paths[m],
                                  [&](dag::StageId s) { return model.solo_time(s); });
  }

  // Line 4: order the paths.
  std::vector<std::size_t> order(out.paths.size());
  std::iota(order.begin(), order.end(), 0u);
  switch (opt_.order) {
    case PathOrder::kDescending:
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return path_time[a] > path_time[b];
      });
      break;
    case PathOrder::kAscending:
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return path_time[a] < path_time[b];
      });
      break;
    case PathOrder::kRandom: {
      Rng rng(opt_.seed);
      // Fisher–Yates with our deterministic generator.
      for (std::size_t i = order.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(order[i - 1], order[j]);
      }
      break;
    }
  }

  // Objective: the makespan of the parallel region (Eq. 4), with JCT as a
  // tie-break so equal-makespan schedules still prefer the shorter job.
  struct Score {
    Seconds makespan;
    Seconds jct;
    bool better_than(const Score& o) const {
      if (makespan < o.makespan - 1e-9) return true;
      if (makespan > o.makespan + 1e-9) return false;
      return jct < o.jct - 1e-9;
    }
  };
  auto score = [&]() {
    const Evaluation ev_r = eval.evaluate(out.delay);
    return Score{ev_r.parallel_end, ev_r.jct};
  };

  std::vector<bool> scheduled(static_cast<std::size_t>(dag.num_stages()), false);
  auto try_candidates = [&](dag::StageId k, Seconds lo, Seconds hi, Seconds step,
                            Seconds& best_x, Score& best) {
    for (Seconds x = lo; x <= hi + 1e-9; x += step) {
      out.delay[static_cast<std::size_t>(k)] = x;
      const Score s = score();
      if (s.better_than(best)) {
        best = s;
        best_x = x;
      }
    }
  };

  // One greedy run of Alg. 1 (lines 5–21) plus coordinate-descent sweeps.
  // `pinned[k]` freezes a stage at zero delay.
  auto run_greedy = [&](const std::vector<bool>& pinned) {
    Score t_max = score();
    for (int sweep = 0; sweep < opt_.sweeps; ++sweep) {
      std::fill(scheduled.begin(), scheduled.end(), false);
      for (std::size_t m : order) {
        for (dag::StageId k : out.paths[m].stages) {
          if (scheduled[static_cast<std::size_t>(k)]) continue;  // lines 7–9
          scheduled[static_cast<std::size_t>(k)] = true;
          if (pinned[static_cast<std::size_t>(k)]) continue;

          const Seconds uk = std::max(t_max.makespan, opt_.step);  // line 10
          Seconds best_x = 0;
          // Re-baseline: x = 0 is always a candidate.
          out.delay[static_cast<std::size_t>(k)] = 0;
          Score best = score();

          if (opt_.coarse_to_fine) {
            const Seconds coarse = std::max(
                opt_.step, uk / static_cast<double>(opt_.coarse_candidates));
            try_candidates(k, coarse, uk, coarse, best_x, best);
            const Seconds lo = std::max(0.0, best_x - coarse);
            const Seconds hi = std::min(uk, best_x + coarse);
            try_candidates(k, lo, hi, opt_.step, best_x, best);
          } else {
            try_candidates(k, opt_.step, uk, opt_.step, best_x, best);
          }

          out.delay[static_cast<std::size_t>(k)] = best_x;  // lines 16–18
          t_max = best;
        }
      }
    }
    return t_max;
  };

  // Multi-start: the greedy scan is prone to local optima (slack stages
  // often only pay off when delayed jointly), so run it from several
  // initialisations and keep the best-scoring schedule.
  //   A — Alg. 1 verbatim: all-zero start, every parallel stage scannable.
  //   B — long path pinned at zero ("preferably schedule the stages in the
  //       long-running execution path", §4.1), all-zero start.
  //   C — long path pinned; every other parallel stage starts pushed behind
  //       the critical head's solo fetch (joint stagger).
  //   D — long path pinned; slack paths pipelined one behind another
  //       (cumulative stagger of their head fetches).
  const std::vector<bool> no_pins(static_cast<std::size_t>(dag.num_stages()),
                                  false);
  std::vector<bool> pin_longest(static_cast<std::size_t>(dag.num_stages()),
                                false);
  for (dag::StageId k : out.paths[order.front()].stages)
    pin_longest[static_cast<std::size_t>(k)] = true;
  const dag::StageId head = out.paths[order.front()].stages.front();
  const Seconds head_read = model.read_work(head) / model.read_rate_alone(head);

  auto init_zero = [&] { std::fill(out.delay.begin(), out.delay.end(), 0.0); };
  auto init_joint = [&] {
    init_zero();
    for (const auto& p : out.paths)
      for (dag::StageId k : p.stages)
        if (!pin_longest[static_cast<std::size_t>(k)])
          out.delay[static_cast<std::size_t>(k)] = head_read;
  };
  auto init_pipelined = [&] {
    init_zero();
    Seconds offset = head_read;
    for (std::size_t oi = 1; oi < order.size(); ++oi) {
      bool advanced = false;
      for (dag::StageId k : out.paths[order[oi]].stages) {
        const auto i = static_cast<std::size_t>(k);
        if (pin_longest[i] || out.delay[i] > 0) continue;
        out.delay[i] = offset;
        if (!advanced) {
          offset += model.read_work(k) / model.read_rate_alone(k);
          advanced = true;
        }
      }
    }
  };

  struct Restart {
    std::function<void()> init;
    const std::vector<bool>* pins;
  };
  const Restart restarts[] = {
      {init_zero, &no_pins},
      {init_zero, &pin_longest},
      {init_joint, &pin_longest},
      {init_pipelined, &pin_longest},
  };
  std::vector<Seconds> best_delay;
  Score best_score{0, 0};
  bool have_best = false;
  for (const Restart& r : restarts) {
    r.init();
    const Score s = run_greedy(*r.pins);
    if (!have_best || s.better_than(best_score)) {
      best_score = s;
      best_delay = out.delay;
      have_best = true;
    }
  }
  out.delay = std::move(best_delay);

  const Evaluation final_ev = eval.evaluate(out.delay);
  out.predicted_makespan = final_ev.parallel_end;
  out.predicted_jct = final_ev.jct;
  return out;
}

}  // namespace ds::core
