#include "core/delay_calculator.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "obs/obs.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ds::core {

const char* to_string(PathOrder order) {
  switch (order) {
    case PathOrder::kDescending: return "descending";
    case PathOrder::kRandom: return "random";
    case PathOrder::kAscending: return "ascending";
  }
  return "?";
}

Status validate(const CalculatorOptions& options) {
  if (!(options.step > 0))
    return Status::error("CalculatorOptions: step (candidate grid width) "
                         "must be positive");
  if (!(options.slot > 0))
    return Status::error("CalculatorOptions: slot (evaluator slot width) "
                         "must be positive");
  if (options.coarse_candidates < 2)
    return Status::error("CalculatorOptions: coarse_candidates must be >= 2 "
                         "(need at least the grid ends)");
  if (options.sweeps < 1)
    return Status::error("CalculatorOptions: sweeps must be >= 1");
  if (options.max_paths < 1)
    return Status::error("CalculatorOptions: max_paths must be >= 1");
  if (options.model.quantile < 0 || options.model.quantile >= 1.0)
    return Status::error("CalculatorOptions: model.quantile must be in "
                         "[0, 1) — 0 plans against the mean, 0.9 against p90");
  if (!(options.model.speculation_threshold > 1.0))
    return Status::error("CalculatorOptions: model.speculation_threshold "
                         "must exceed 1 (a copy only helps if the primary is "
                         "genuinely late)");
  return Status::ok();
}

DelayCalculator::DelayCalculator(const JobProfile& profile,
                                 CalculatorOptions options)
    : profile_(profile), opt_(options) {
  const Status st = validate(opt_);
  DS_CHECK_MSG(st.is_ok(), st.message());
}

DelaySchedule DelayCalculator::compute() const {
  const dag::JobDag& dag = *profile_.dag;
  const ScheduleEvaluator eval(profile_, opt_.slot, opt_.model);
  const PerfModel& model = eval.model();
  const auto n = static_cast<std::size_t>(dag.num_stages());

  // Observability: wall-clock phase spans on the planner track plus the
  // search-cost counters published once at the end (never per candidate —
  // the hot path stays contention-free). Disabled = all nullptrs/no-ops.
  obs::Tracer* const tr = obs::tracer(opt_.obs);
  const obs::WallSpan compute_span(tr, "planner", "compute", obs::kPlannerPid,
                                   0, "stages", static_cast<double>(n));
  auto publish = [&](const DelaySchedule& out) {
    obs::counter(opt_.obs, "planner.runs").inc();
    obs::counter(opt_.obs, "planner.evaluations").inc(out.evaluations);
    obs::counter(opt_.obs, "planner.memo_hits").inc(out.memo_hits);
    obs::gauge(opt_.obs, "planner.paths").set(static_cast<double>(out.paths.size()));
    // Fraction of candidate scores served by the ScoreMemo this run; the
    // evaluation counter excludes memo hits, so the denominator is the sum.
    const double looked_up =
        static_cast<double>(out.evaluations + out.memo_hits);
    obs::gauge(opt_.obs, "planner.memo_hit_rate")
        .set(looked_up > 0 ? static_cast<double>(out.memo_hits) / looked_up
                           : 0.0);
  };

  ThreadPool pool(opt_.resolved_threads());
  ScoreMemo memo;
  ScoreMemo* const memo_p = opt_.memoize ? &memo : nullptr;

  // One scratch arena per thread (the pool's and the caller's), reused for
  // every simulation this planner runs.
  auto score_of = [&](const std::vector<Seconds>& delay) {
    static thread_local EvalScratch tls;
    return eval.score(delay, tls, memo_p);
  };

  DelaySchedule out;
  out.delay.assign(n, 0.0);

  // The schedule's predicted timeline (and its makespan/JCT, which are
  // exactly what score() would report: Score is {parallel_end, jct}). The
  // per-stage breakdown is exported so drift analytics can compare each
  // model term against an executed run.
  auto finalize = [&](DelaySchedule& sched) {
    Evaluation ev = eval.evaluate(sched.delay);
    sched.predicted_makespan = ev.parallel_end;
    sched.predicted_jct = ev.jct;
    sched.predicted_stages = std::move(ev.stages);
    sched.evaluations = eval.evaluations();
    sched.memo_hits = memo.hits();
    publish(sched);
  };

  // Lines 1–3: execution paths, solo stage times ^t_k, initial path times.
  out.paths = dag::execution_paths(dag, opt_.max_paths);
  if (out.paths.empty()) {
    finalize(out);
    return out;  // no parallel stages — nothing to delay
  }
  std::vector<Seconds> path_time(out.paths.size(), 0.0);
  for (std::size_t m = 0; m < out.paths.size(); ++m) {
    path_time[m] = dag::path_time(out.paths[m],
                                  [&](dag::StageId s) { return model.solo_time(s); });
  }

  // Line 4: order the paths.
  std::vector<std::size_t> order(out.paths.size());
  std::iota(order.begin(), order.end(), 0u);
  switch (opt_.order) {
    case PathOrder::kDescending:
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return path_time[a] > path_time[b];
      });
      break;
    case PathOrder::kAscending:
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return path_time[a] < path_time[b];
      });
      break;
    case PathOrder::kRandom: {
      Rng rng(opt_.seed);
      // Fisher–Yates with our deterministic generator.
      for (std::size_t i = order.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(order[i - 1], order[j]);
      }
      break;
    }
  }

  // Scan the slotted grid [lo, hi] for stage k, all other delays fixed.
  // Candidates are scored across the pool into per-index slots; the argmin
  // reduction then walks the grid in ascending order with a strict
  // comparison, so the winner (ties → smallest x) is the one the sequential
  // scan would have kept, for any thread count.
  auto scan_candidates = [&](dag::StageId k, Seconds lo, Seconds hi,
                             Seconds step, std::vector<Seconds>& delay,
                             Seconds& best_x, Score& best, int restart) {
    std::vector<Seconds> xs;
    for (Seconds x = lo; x <= hi + 1e-9; x += step) xs.push_back(x);
    if (xs.empty()) return;
    const obs::WallSpan scan_span(tr, "planner", "scan", obs::kPlannerPid,
                                  restart, "stage", static_cast<double>(k));
    // Incremental scan: the simulation prefix before stage k's admission is
    // shared across the whole grid; only each candidate's suffix runs (and
    // those run on the pool). Scores come back in grid order.
    std::vector<Score> scores;
    eval.scan(delay, k, xs, scores, memo_p, &pool);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (scores[i].better_than(best)) {
        best = scores[i];
        best_x = xs[i];
      }
    }
  };

  // One greedy run of Alg. 1 (lines 5–21) plus coordinate-descent sweeps.
  // `pinned[k]` freezes a stage at zero delay. `delay` is this restart's
  // private state: restarts run concurrently.
  auto run_greedy = [&](std::vector<Seconds>& delay,
                        const std::vector<bool>& pinned, int restart) {
    const obs::WallSpan restart_span(tr, "planner", "restart", obs::kPlannerPid,
                                     restart);
    std::vector<bool> scheduled(n, false);
    Score t_max = score_of(delay);
    for (int sweep = 0; sweep < opt_.sweeps; ++sweep) {
      std::fill(scheduled.begin(), scheduled.end(), false);
      for (std::size_t m : order) {
        for (dag::StageId k : out.paths[m].stages) {
          if (scheduled[static_cast<std::size_t>(k)]) continue;  // lines 7–9
          scheduled[static_cast<std::size_t>(k)] = true;
          if (pinned[static_cast<std::size_t>(k)]) continue;

          const Seconds uk = std::max(t_max.makespan, opt_.step);  // line 10
          Seconds best_x = 0;
          // Re-baseline: x = 0 is always a candidate (a memo hit whenever
          // the stage already sat at zero).
          delay[static_cast<std::size_t>(k)] = 0;
          Score best = score_of(delay);

          if (opt_.coarse_to_fine) {
            const Seconds coarse = std::max(
                opt_.step, uk / static_cast<double>(opt_.coarse_candidates));
            scan_candidates(k, coarse, uk, coarse, delay, best_x, best, restart);
            // The refinement window re-visits best_x itself — a memo hit.
            const Seconds lo = std::max(0.0, best_x - coarse);
            const Seconds hi = std::min(uk, best_x + coarse);
            scan_candidates(k, lo, hi, opt_.step, delay, best_x, best, restart);
          } else {
            scan_candidates(k, opt_.step, uk, opt_.step, delay, best_x, best,
                            restart);
          }

          delay[static_cast<std::size_t>(k)] = best_x;  // lines 16–18
          t_max = best;
        }
      }
    }
    return t_max;
  };

  // Multi-start: the greedy scan is prone to local optima (slack stages
  // often only pay off when delayed jointly), so run it from several
  // initialisations and keep the best-scoring schedule.
  //   A — Alg. 1 verbatim: all-zero start, every parallel stage scannable.
  //   B — long path pinned at zero ("preferably schedule the stages in the
  //       long-running execution path", §4.1), all-zero start.
  //   C — long path pinned; every other parallel stage starts pushed behind
  //       the critical head's solo fetch (joint stagger).
  //   D — long path pinned; slack paths pipelined one behind another
  //       (cumulative stagger of their head fetches).
  const std::vector<bool> no_pins(n, false);
  std::vector<bool> pin_longest(n, false);
  for (dag::StageId k : out.paths[order.front()].stages)
    pin_longest[static_cast<std::size_t>(k)] = true;
  const dag::StageId head = out.paths[order.front()].stages.front();
  const Seconds head_read = model.read_work(head) / model.read_rate_alone(head);

  auto init_joint = [&](std::vector<Seconds>& delay) {
    for (const auto& p : out.paths)
      for (dag::StageId k : p.stages)
        if (!pin_longest[static_cast<std::size_t>(k)])
          delay[static_cast<std::size_t>(k)] = head_read;
  };
  auto init_pipelined = [&](std::vector<Seconds>& delay) {
    Seconds offset = head_read;
    for (std::size_t oi = 1; oi < order.size(); ++oi) {
      bool advanced = false;
      for (dag::StageId k : out.paths[order[oi]].stages) {
        const auto i = static_cast<std::size_t>(k);
        if (pin_longest[i] || delay[i] > 0) continue;
        delay[i] = offset;
        if (!advanced) {
          offset += model.read_work(k) / model.read_rate_alone(k);
          advanced = true;
        }
      }
    }
  };

  // The restarts share nothing but the evaluator and the memo, so they run
  // concurrently too; the winner is still chosen by a sequential pass in
  // restart order.
  struct RestartResult {
    std::vector<Seconds> delay;
    Score score;
  };
  std::array<RestartResult, 4> results;
  pool.parallel_for(results.size(), [&](std::size_t r) {
    std::vector<Seconds> delay(n, 0.0);
    const std::vector<bool>* pins = r == 0 ? &no_pins : &pin_longest;
    if (r == 2) init_joint(delay);
    if (r == 3) init_pipelined(delay);
    const Score s = run_greedy(delay, *pins, static_cast<int>(r));
    results[r] = RestartResult{std::move(delay), s};
  });
  std::size_t best_r = 0;
  for (std::size_t r = 1; r < results.size(); ++r)
    if (results[r].score.better_than(results[best_r].score)) best_r = r;
  out.delay = std::move(results[best_r].delay);

  finalize(out);
  return out;
}

}  // namespace ds::core
