// Online recalibration of the Eq. 1 coefficients from observed runs.
//
// PR 5's drift analytics measure, per stage and per term, how far the
// planner's predicted phase spans (network fetch / compute / shuffle write)
// land from what the engine actually executed. This module closes the loop:
// a ModelCalibrator folds those residuals into per-workload-signature EWMA
// correction factors, and a CalibratedPerfModel applies them to a JobProfile
// so the *next* plan for a recurrent workload starts from observed truth
// instead of the stale profile.
//
// The correction is multiplicative per Eq. 1 term:
//   network factor f_n — observed fetch spans ran f_n × the prediction, so
//     the effective NIC/storage bandwidth is divided by f_n;
//   compute factor f_c — multiplies JobProfile::compute_time_scale;
//   write factor f_w — divides the profiled disk bandwidth.
// All factors start at exactly 1.0 and an identity calibration is a bit-
// exact no-op (x · 1.0 and x / 1.0 are IEEE identities), so plans for
// never-observed workloads are unchanged down to the last bit.
//
// Layering: this lives in core and consumes plain Seconds sums extracted
// from (DelaySchedule, engine::JobResult) pairs — it cannot depend on
// obs/analytics' DriftReport (ds_analytics links *against* core), but the
// phase-boundary mapping is identical to analytics::actual_breakdown.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/delay_calculator.h"
#include "core/perf_model.h"
#include "core/profile.h"
#include "engine/records.h"

namespace ds::core {

// Structural fingerprint of a workload: stage volumes, rates, skews and the
// dependency shape. Recurrent submissions of the same job hash identically
// (whatever their JobDag instance), which is the key calibration state is
// accumulated under.
std::uint64_t workload_signature(const dag::JobDag& dag);

struct CalibrationOptions {
  // EWMA weight of the newest observation. 0.4 converges in ~3 recurrences
  // while still averaging out per-run skew noise.
  double ewma_alpha = 0.4;
  // Clamp on each per-run actual/predicted ratio and on the running
  // factors: one wild run (a crash-mangled stage, a division by a tiny
  // prediction) must not poison the profile.
  double min_factor = 0.2;
  double max_factor = 5.0;
};

// Per-term multiplicative corrections (observed time / predicted time).
struct CalibrationFactors {
  double network = 1.0;
  double compute = 1.0;
  double write = 1.0;
  int observations = 0;

  bool is_identity() const {
    return network == 1.0 && compute == 1.0 && write == 1.0;
  }
};

// One executed run's per-term evidence: predicted and measured phase spans
// summed over the stages that ran cleanly (no crash-driven reruns).
struct PhaseObservation {
  Seconds predicted_network = 0;
  Seconds predicted_compute = 0;
  Seconds predicted_write = 0;
  Seconds actual_network = 0;
  Seconds actual_compute = 0;
  Seconds actual_write = 0;

  bool usable() const {
    return predicted_network > 0 || predicted_compute > 0 ||
           predicted_write > 0;
  }
};

// Join a planned schedule against its executed run. Phase mapping matches
// obs/analytics: network = [submitted, last_read_done), compute =
// [last_read_done, last_compute_done), write = [last_compute_done, finish).
// Stages that were resubmitted or had tasks rerun (crash recovery inflates
// their spans for reasons that are not model error) are excluded.
PhaseObservation observe_run(const DelaySchedule& plan,
                             const engine::JobResult& result);
// Same join for callers that hold a raw predicted timeline (e.g. the
// adaptive trace replay, which predicts with the evaluator directly even
// for zero-delay stock plans).
PhaseObservation observe_timelines(const std::vector<StageTimeline>& predicted,
                                   const engine::JobResult& result);

// Thread-safe store of per-workload correction factors. Safe to share across
// a whole trace replay; observation order is the only thing that matters for
// determinism (the adaptive replay feeds it sequentially in arrival order).
class ModelCalibrator {
 public:
  explicit ModelCalibrator(CalibrationOptions options = {});

  // Fold one run's evidence into the workload's factors:
  //   f ← (1 − α)·f + α·clamp(actual / predicted).
  // Unusable observations (no predicted spans) are ignored.
  void observe(std::uint64_t signature, const PhaseObservation& obs);

  // Current factors; identity for never-observed signatures.
  CalibrationFactors factors(std::uint64_t signature) const;

  // Persistence hooks for the profile store (store/profile_store.h):
  // snapshot() returns every signature's factors sorted by signature (a
  // deterministic order, so saved files are byte-stable run over run);
  // restore() overwrites one signature's factors wholesale — the loaded
  // values are the bit-exact doubles snapshot() exported, never re-derived.
  std::vector<std::pair<std::uint64_t, CalibrationFactors>> snapshot() const;
  void restore(std::uint64_t signature, const CalibrationFactors& factors);

  std::size_t workloads() const;
  const CalibrationOptions& options() const { return opt_; }

 private:
  CalibrationOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, CalibrationFactors> factors_;
};

// `base` with the corrections applied (dag pointer is shared, not owned).
// Identity factors return a field-for-field copy of `base`.
JobProfile calibrated_profile(const JobProfile& base,
                              const CalibrationFactors& f);

// Convenience bundle for callers that want "the corrected model" as one
// object: owns the corrected JobProfile (so the PerfModel's reference stays
// valid) and the PerfModel built on it. The evaluator and DelayCalculator
// accept profile() wherever they accept a plain JobProfile; the
// CalibratedPerfModel must outlive them.
class CalibratedPerfModel {
 public:
  CalibratedPerfModel(const JobProfile& base, const CalibrationFactors& f,
                      ModelOptions model = {})
      : profile_(calibrated_profile(base, f)),
        factors_(f),
        model_(profile_, model) {}

  const JobProfile& profile() const { return profile_; }
  const PerfModel& model() const { return model_; }
  const CalibrationFactors& factors() const { return factors_; }

 private:
  JobProfile profile_;
  CalibrationFactors factors_;
  PerfModel model_;
};

}  // namespace ds::core
