// Analytical stage performance model — Eq. (1)–(3) of the paper.
//
// Per-task time on a worker (Eq. 1) is the sum of three resource phases:
//     max_i( s_i / B_i )        shuffle-read transfer (slowest source)
//   + Σ_i s_i / (ε · R_k)       data processing on the stage's executors
//   + d / D                     shuffle write to the local disk
// and the stage time is the slowest worker (Eq. 2). With balanced data this
// aggregates to cluster-level phase durations, which is the form both the
// solo estimate ^t_k (Alg. 1 line 2) and the slotted evaluator use. Each
// phase's duration scales with how many stages share that resource — the
// `shares` argument is f_w_τ(X) by another name.
#pragma once

#include "core/profile.h"
#include "dag/stage.h"

namespace ds::core {

// Resource-sharing factors: how many stages concurrently use each resource.
struct Shares {
  double network = 1;
  double cpu = 1;
  double disk = 1;
};

// How the model turns per-task dispersion (Stage::task_skew) into a stage
// completion estimate. The defaults reproduce the paper's point estimate
// bit-exactly; quantile/speculation are the distribution-aware extensions
// ("Towards Stochastically Optimizing Data Computing Flows", PAPERS.md).
struct ModelOptions {
  // 0 (default): legacy expected-maximum straggler estimate, numerically
  // identical to the pre-quantile model. (0, 1): plan against this quantile
  // of the stage completion distribution — the straggler inflation becomes
  // exp(σ·Φ⁻¹(q^{1/T})) for the q-quantile of the max of T lognormal(0, σ)
  // task multipliers, so p90/p95 plans budget for tail tasks the mean never
  // sees. Must be < 1.
  double quantile = 0.0;
  // Co-optimization with the engine's speculation policy: a speculative copy
  // relaunches any task running past `speculation_threshold` × the median,
  // which truncates the straggler distribution — the modeled inflation is
  // capped at threshold + 1 (original wait plus a median-speed copy).
  bool speculation = false;
  double speculation_threshold = 1.5;

  bool is_identity() const { return quantile == 0.0 && !speculation; }
};

struct PhaseTimes {
  Seconds read = 0;
  Seconds compute = 0;
  Seconds write = 0;
  Seconds total() const { return read + compute + write; }
};

class PerfModel {
 public:
  explicit PerfModel(const JobProfile& profile, ModelOptions options = {});

  // Phase durations of stage k under the given sharing factors (Eq. 1
  // aggregated over the slowest worker, Eq. 2).
  PhaseTimes stage_phases(dag::StageId k, const Shares& shares) const;

  // ^t_k: stage time as if running alone in the cluster (Alg. 1 line 2).
  Seconds solo_time(dag::StageId k) const;

  // Raw phase *work* terms used by the slotted evaluator:
  //   read: bytes to move; compute: executor-seconds; write: bytes to write.
  Bytes read_work(dag::StageId k) const;
  Seconds compute_work(dag::StageId k) const;
  Bytes write_work(dag::StageId k) const;

  // Eq. (2) takes the *slowest* worker: with skewed partitions the largest
  // task gates the stage. For lognormal(σ) multipliers over T tasks the
  // expected maximum is ≈ exp(σ·sqrt(2·ln T)); compute_work is inflated by
  // this factor (network/disk phases are bandwidth-shared, so their span
  // tracks total volume, not the largest task).
  double straggler_factor(dag::StageId k) const;

  // Compute time of the largest task — the tail that must elapse after the
  // stage's shuffle-read span before the stage can finish.
  Seconds straggler_tail(dag::StageId k) const;

  // Aggregate service rates at share 1 (the evaluator divides by the live
  // sharing count each slot).
  BytesPerSec read_rate_alone(dag::StageId k) const;
  // Executors stage k can actually use (min of task count and cluster size).
  double usable_executors(dag::StageId k) const;
  BytesPerSec write_rate_alone() const;

  const ModelOptions& options() const { return options_; }

 private:
  const JobProfile& profile_;
  ModelOptions options_;
};

// Φ⁻¹: inverse of the standard normal CDF (Acklam's rational approximation,
// |relative error| < 1.15e-9 over (0, 1)). Exposed for tests.
double inverse_normal_cdf(double p);

}  // namespace ds::core
