#include "core/adaptive.h"

#include <algorithm>

#include "util/check.h"

namespace ds::core {

AdaptivePlanner::AdaptivePlanner(const JobProfile& base,
                                 AdaptiveOptions options,
                                 ModelCalibrator* calibrator)
    : base_(base),
      calibrated_(base),
      opt_(std::move(options)),
      owned_(opt_.calibration),
      calibrator_(calibrator != nullptr ? calibrator : &owned_),
      sig_(workload_signature(*base.dag)) {
  DS_CHECK_MSG(base.dag != nullptr, "AdaptivePlanner needs a profiled DAG");
  const Status st = validate(opt_.calculator);
  DS_CHECK_MSG(st.is_ok(), st.message());
}

const DelaySchedule& AdaptivePlanner::plan() {
  calibrated_ = calibrated_profile(base_, calibrator_->factors(sig_));
  last_ = DelayCalculator(calibrated_, opt_.calculator).compute();
  planned_ = true;
  return last_;
}

void AdaptivePlanner::arm(engine::RunOptions& ro) {
  DS_CHECK_MSG(planned_, "AdaptivePlanner::arm() requires a prior plan()");
  ro.plan.delay = last_.delay;
  ro.replan = opt_.replan;
  // Predicted per-stage durations drive the engine's drift trigger.
  ro.predicted_durations.assign(last_.predicted_stages.size(), 0.0);
  for (std::size_t i = 0; i < last_.predicted_stages.size(); ++i) {
    const StageTimeline& t = last_.predicted_stages[i];
    if (t.finish >= 0 && t.submitted >= 0)
      ro.predicted_durations[i] = t.finish - t.submitted;
  }
  if (opt_.replan.enabled) {
    ro.replanner = [this](const engine::ReplanRequest& req) {
      return replan(req);
    };
  }
}

void AdaptivePlanner::observe(const engine::JobResult& result) {
  DS_CHECK_MSG(planned_, "AdaptivePlanner::observe() requires a prior plan()");
  calibrator_->observe(sig_, observe_run(last_, result));
}

engine::ReplanDecision AdaptivePlanner::replan(
    const engine::ReplanRequest& req) {
  DS_CHECK_MSG(req.plan != nullptr, "ReplanRequest carries no plan");
  const auto n = static_cast<std::size_t>(base_.dag->num_stages());

  // Re-profile against what the cluster looks like *now*: freshest
  // calibration factors, and the worker count the crash left alive.
  JobProfile prof = calibrated_profile(base_, calibrator_->factors(sig_));
  if (req.live_workers > 0 && req.live_workers < prof.cluster.num_workers)
    prof.cluster.num_workers = std::max(1, req.live_workers);

  std::vector<Seconds> current = req.plan->delay;
  current.resize(n, 0.0);

  // Fresh Alg. 1 search on the live profile, then the frozen-prefix merge:
  // pending stages adopt the new delays, submitted stages keep theirs.
  CalculatorOptions copt = opt_.calculator;
  DelaySchedule fresh = DelayCalculator(prof, copt).compute();
  std::vector<Seconds> merged = current;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < req.submitted.size() && req.submitted[i]) continue;
    merged[i] = i < fresh.delay.size() ? fresh.delay[i] : 0.0;
  }

  // Score both delay vectors under the same live model: the gain offered to
  // the engine is the predicted makespan improvement of switching.
  const ScheduleEvaluator eval(prof, copt.slot, copt.model);
  EvalScratch scratch;
  const Score before = eval.score(current, scratch);
  const Score after = eval.score(merged, scratch);

  engine::ReplanDecision d;
  d.expected_gain = before.makespan - after.makespan;
  d.apply = after.better_than(before);
  d.delay = std::move(merged);
  return d;
}

}  // namespace ds::core
