#include "core/evaluator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ds::core {

namespace {

enum class Phase { kWaiting, kDelayed, kRunning, kDone };

struct StageSim {
  Phase phase = Phase::kWaiting;
  int remaining_parents = 0;
  Seconds submit_at = -1;
  std::uint64_t submit_seq = 0;  // FIFO priority in the executor pool
  Bytes read_total = 0;
  Bytes read_left = 0;
  Seconds compute_total = 0;  // executor-seconds
  Seconds compute_left = 0;
  Bytes write_left = 0;
  double slots = 0;       // executors currently granted to this stage
  double prev_slots = 0;  // last allocation (wave size for release pacing)
  double read_share = 0;  // slots still occupied by fetching tasks
  double par_cap = 0;     // min(T_k, E): usable compute parallelism
  int num_tasks = 0;
  Seconds tail = 0;            // compute time of the largest task
  Seconds min_finish = -1;     // read_done + tail (set when read completes)

  double straggler = 1;        // expected max task-size multiplier
  Seconds read_done_at = -1;   // drain time inflated to the straggler's read

  double read_frac() const {
    return read_total > 0 ? 1.0 - read_left / read_total : 1.0;
  }
  // Still occupying the network: bytes left, or the straggler task's fetch
  // tail still running.
  bool reading(Seconds now) const {
    return read_left > sim::kFluidEps ||
           (read_total > 0 && read_done_at > now + 1e-9);
  }
  // Executor slots this stage wants. The engine releases a slot as each
  // task finishes: with a wave of `prev_slots` tasks in flight, completions
  // begin once one wave's worth of compute is done and ramp linearly until
  // the stage ends. Homogeneous single-wave stages therefore hold all their
  // slots to the very end; multi-wave stages release steadily.
  double demand() const {
    const bool bulk_done = read_left <= sim::kFluidEps &&
                           compute_left <= sim::kFluidEps &&
                           write_left <= sim::kFluidEps;
    if (bulk_done) return 1.0;
    const double t = static_cast<double>(num_tasks);
    if (compute_total <= 0) return t;
    const double frac = 1.0 - compute_left / compute_total;
    const double wave = prev_slots > 0 ? std::min(1.0, prev_slots / t) : 1.0;
    if (frac <= wave || wave >= 1.0) return t;
    const double completed = t * (frac - wave) / (1.0 - wave);
    return std::max(1.0, t - completed);
  }
};

}  // namespace

ScheduleEvaluator::ScheduleEvaluator(const JobProfile& profile, Seconds slot)
    : profile_(profile), model_(profile), slot_(slot) {
  DS_CHECK_MSG(slot > 0, "slot width must be positive");
}

Evaluation ScheduleEvaluator::evaluate(const std::vector<Seconds>& delay) const {
  const dag::JobDag& dag = *profile_.dag;
  const auto n = static_cast<std::size_t>(dag.num_stages());
  for (Seconds d : delay) DS_CHECK_MSG(d >= 0, "negative delay");

  auto delay_for = [&](dag::StageId s) {
    const auto i = static_cast<std::size_t>(s);
    return i < delay.size() ? delay[i] : 0.0;
  };

  Evaluation ev;
  ev.stages.assign(n, StageTimeline{});
  std::vector<StageSim> ss(n);
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    auto& x = ss[static_cast<std::size_t>(s)];
    x.remaining_parents = static_cast<int>(dag.parents(s).size());
    x.read_total = model_.read_work(s);
    x.read_left = x.read_total;
    x.compute_total = model_.compute_work(s);
    x.compute_left = x.compute_total;
    x.write_left = model_.write_work(s);
    x.par_cap = model_.usable_executors(s);
    x.num_tasks = dag.stage(s).num_tasks;
    x.tail = model_.straggler_tail(s);
    x.straggler = model_.straggler_factor(s);
  }

  const auto k_set = dag.parallel_stage_set();

  // Safety bound: generous multiple of the fully-serialised schedule
  // (solo_time already includes the straggler tails).
  Seconds budget = 100.0 + 10.0 * slot_;
  for (dag::StageId s = 0; s < dag.num_stages(); ++s)
    budget += (model_.solo_time(s) + model_.straggler_tail(s)) *
              (2.0 + static_cast<double>(n));
  for (Seconds d : delay) budget += d;

  int done = 0;
  const auto total = static_cast<int>(n);
  const auto& cl = profile_.cluster;
  const double cluster_execs = cl.total_executors();
  const BytesPerSec worker_net = cl.num_workers * cl.nic_bw;
  const BytesPerSec storage_net =
      cl.num_storage_nodes > 0
          ? (cl.storage_net_bw > 0 ? cl.storage_net_bw
                                   : cl.num_storage_nodes * cl.nic_bw)
          : worker_net;
  const BytesPerSec cluster_disk = cl.num_workers * cl.disk_bw;

  std::uint64_t next_seq = 0;
  auto mark_ready = [&](dag::StageId s, Seconds now) {
    auto& x = ss[static_cast<std::size_t>(s)];
    ev.stages[static_cast<std::size_t>(s)].ready = now;
    x.submit_at = now + delay_for(s);
    x.phase = Phase::kDelayed;
  };
  auto admit = [&](dag::StageId s, Seconds now) {
    auto& x = ss[static_cast<std::size_t>(s)];
    x.phase = Phase::kRunning;
    x.submit_seq = next_seq++;
    ev.stages[static_cast<std::size_t>(s)].submitted = now;
  };
  for (dag::StageId s : dag.sources()) mark_ready(s, 0.0);

  Seconds now = 0;
  while (done < total) {
    DS_CHECK_MSG(now <= budget, "evaluator failed to converge (cycle or zero rate?)");

    // 1) Admit delayed stages whose submission time has arrived. FIFO
    //    priority is submission order (ties: stage id, the order Spark
    //    enqueues ready stages).
    for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
      auto& x = ss[static_cast<std::size_t>(s)];
      if (x.phase == Phase::kDelayed && x.submit_at <= now + 1e-9)
        admit(s, now);
    }

    // 2) Retire finished stages (cascading readiness and zero-work stages).
    bool changed = true;
    while (changed) {
      changed = false;
      for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
        auto& x = ss[static_cast<std::size_t>(s)];
        auto& tl = ev.stages[static_cast<std::size_t>(s)];
        if (x.phase != Phase::kRunning) continue;
        if (x.read_left <= sim::kFluidEps && x.read_done_at < 0) {
          // Bytes are drained, but the largest task's fetch outlasts the
          // mean drain. Fair sharing self-corrects (finished flows donate
          // bandwidth to the straggler), so the observed span inflation is
          // roughly the square root of the max task multiplier.
          const Seconds sub = tl.submitted;
          x.read_done_at = sub + std::pow(x.straggler, 0.25) * (now - sub);
        }
        if (x.read_left <= sim::kFluidEps && x.read_done_at >= 0 &&
            now + 1e-9 >= x.read_done_at && tl.read_done < 0) {
          tl.read_done = now;
          // The largest task has only just finished fetching; its compute
          // still lies entirely ahead (slowest-worker term of Eq. 2).
          x.min_finish = now + x.tail;
        }
        if (x.compute_left <= sim::kFluidEps && tl.read_done >= 0 &&
            now + 1e-9 >= x.min_finish && tl.compute_done < 0)
          tl.compute_done = now;
        if (tl.read_done >= 0 && x.compute_left <= sim::kFluidEps &&
            now + 1e-9 >= x.min_finish &&
            x.write_left <= sim::kFluidEps) {
          x.phase = Phase::kDone;
          tl.finish = now;
          ++done;
          changed = true;
          for (dag::StageId c : dag.children(s)) {
            auto& cx = ss[static_cast<std::size_t>(c)];
            DS_CHECK(cx.remaining_parents > 0);
            if (--cx.remaining_parents == 0) {
              mark_ready(c, now);
              if (cx.submit_at <= now + 1e-9) admit(c, now);
            }
          }
        }
      }
    }
    if (done == total) break;

    // 3) Allocate executor slots FIFO by submission order: a task holds its
    //    slot through read, compute and write (as in Spark), so an
    //    earlier-submitted stage's queued tasks gate later stages.
    std::vector<dag::StageId> active;
    for (dag::StageId s = 0; s < dag.num_stages(); ++s)
      if (ss[static_cast<std::size_t>(s)].phase == Phase::kRunning)
        active.push_back(s);
    std::sort(active.begin(), active.end(), [&](dag::StageId a, dag::StageId b) {
      return ss[static_cast<std::size_t>(a)].submit_seq <
             ss[static_cast<std::size_t>(b)].submit_seq;
    });
    double free_execs = cluster_execs;
    for (dag::StageId s : active) {
      auto& x = ss[static_cast<std::size_t>(s)];
      x.slots = std::min(x.demand(), free_execs);
      if (x.slots > x.prev_slots) x.prev_slots = x.slots;
      free_execs -= x.slots;
      // Tasks still fetching vs tasks past their read. Tasks pipeline inside
      // a stage: early finishers compute while stragglers keep reading.
      if (x.reading(now)) {
        x.read_share = std::max(std::min(1.0, x.slots),
                                x.slots * (1.0 - x.read_frac()));
      } else {
        x.read_share = 0;
      }
    }

    // 4) Per-flow-weighted bandwidth shares (f_w_τ(X) at task granularity):
    //    the fabric's max-min allocation gives a stage bandwidth in
    //    proportion to its in-flight fetches.
    double read_tasks = 0, src_read_tasks = 0, write_tasks = 0;
    int read_stages = 0, src_read_stages = 0;
    for (dag::StageId s : active) {
      const auto& x = ss[static_cast<std::size_t>(s)];
      if (x.read_share > 0) {
        read_tasks += x.read_share;
        ++read_stages;
        if (dag.parents(s).empty()) {
          src_read_tasks += x.read_share;
          ++src_read_stages;
        }
      }
    }
    // Cross-stage contention: g stages interleaving on the network serve
    // only C / (1 + β·ln g) in aggregate (mirrors the fabric).
    const double beta = cl.congestion_penalty;
    const double net_eff =
        read_stages > 1 ? 1.0 / (1.0 + beta * std::log(read_stages)) : 1.0;
    const double src_eff =
        src_read_stages > 1
            ? 1.0 / (1.0 + beta * std::log(src_read_stages))
            : 1.0;
    for (dag::StageId s : active) {
      const auto& x = ss[static_cast<std::size_t>(s)];
      if (x.compute_left <= sim::kFluidEps && x.read_left <= sim::kFluidEps &&
          x.write_left > sim::kFluidEps)
        write_tasks += std::max(1.0, x.slots);
    }

    // 5) Advance one slot: read, compute (bounded by data already read and
    //    by T/straggler usable parallelism) and write progress concurrently
    //    across a stage's tasks.
    for (dag::StageId s : active) {
      auto& x = ss[static_cast<std::size_t>(s)];
      if (x.slots <= 0) continue;  // fully queued behind earlier stages
      if (x.read_left > sim::kFluidEps && x.read_share > 0) {
        BytesPerSec rate = worker_net * net_eff * x.read_share / read_tasks;
        if (dag.parents(s).empty())
          rate = std::min(rate,
                          storage_net * src_eff * x.read_share / src_read_tasks);
        // Per-task NIC ceiling; co-located tasks of other stages interleave
        // on the same NICs, but only part of a task's fan-in crosses
        // contended ports — apply the penalty at half strength here.
        rate = std::min(rate, x.read_share * cl.nic_bw * std::sqrt(net_eff));
        x.read_left = std::max(0.0, x.read_left - slot_ * rate);
      }
      if (x.compute_left > sim::kFluidEps) {
        const double execs =
            std::min(std::max(0.0, x.slots - x.read_share), x.par_cap);
        // Cannot process bytes that have not arrived yet.
        const Seconds computable =
            x.read_frac() * x.compute_total - (x.compute_total - x.compute_left);
        const Seconds prog = std::min(slot_ * execs, std::max(0.0, computable));
        x.compute_left -= prog;
      } else if (x.read_left <= sim::kFluidEps && x.write_left > sim::kFluidEps) {
        const double writers = std::max(1.0, x.slots);
        const BytesPerSec rate = std::min(cluster_disk * writers / write_tasks,
                                          writers * cl.disk_bw);
        x.write_left = std::max(0.0, x.write_left - slot_ * rate);
      }
    }
    now += slot_;
  }

  ev.jct = now;
  ev.parallel_end = 0;
  for (dag::StageId s : k_set)
    ev.parallel_end =
        std::max(ev.parallel_end, ev.stages[static_cast<std::size_t>(s)].finish);
  return ev;
}

}  // namespace ds::core
