#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/thread_pool.h"

namespace ds::core {

namespace {

enum class Phase { kWaiting, kDelayed, kRunning, kDone };

struct StageSim {
  Phase phase = Phase::kWaiting;
  int remaining_parents = 0;
  Seconds submit_at = -1;
  std::uint64_t submit_seq = 0;  // FIFO priority in the executor pool
  Bytes read_total = 0;
  Bytes read_left = 0;
  Seconds compute_total = 0;  // executor-seconds
  Seconds compute_left = 0;
  Bytes write_left = 0;
  double slots = 0;       // executors currently granted to this stage
  double prev_slots = 0;  // last allocation (wave size for release pacing)
  double read_share = 0;  // slots still occupied by fetching tasks
  double par_cap = 0;     // min(T_k, E): usable compute parallelism
  int num_tasks = 0;
  Seconds tail = 0;            // compute time of the largest task
  Seconds min_finish = -1;     // read_done + tail (set when read completes)

  double straggler_quarter = 1;  // straggler^0.25 (read-span inflation)
  Seconds read_done_at = -1;   // drain time inflated to the straggler's read

  // Per-slot progress applied by the last allocation step, kept so the
  // fast-forward path can repeat the identical arithmetic.
  Seconds compute_prog = 0;
  Bytes write_prog = 0;
  bool compute_exec_bound = false;  // prog == slot·execs (not data-gated)

  double read_frac() const {
    return read_total > 0 ? 1.0 - read_left / read_total : 1.0;
  }
  // Still occupying the network: bytes left, or the straggler task's fetch
  // tail still running.
  bool reading(Seconds now) const {
    return read_left > sim::kFluidEps ||
           (read_total > 0 && read_done_at > now + 1e-9);
  }
  // Executor slots this stage wants. The engine releases a slot as each
  // task finishes: with a wave of `prev_slots` tasks in flight, completions
  // begin once one wave's worth of compute is done and ramp linearly until
  // the stage ends. Homogeneous single-wave stages therefore hold all their
  // slots to the very end; multi-wave stages release steadily.
  double demand() const {
    const bool bulk_done = read_left <= sim::kFluidEps &&
                           compute_left <= sim::kFluidEps &&
                           write_left <= sim::kFluidEps;
    if (bulk_done) return 1.0;
    const double t = static_cast<double>(num_tasks);
    if (compute_total <= 0) return t;
    const double frac = 1.0 - compute_left / compute_total;
    const double wave = prev_slots > 0 ? std::min(1.0, prev_slots / t) : 1.0;
    if (frac <= wave || wave >= 1.0) return t;
    const double completed = t * (frac - wave) / (1.0 - wave);
    return std::max(1.0, t - completed);
  }
};

}  // namespace

struct EvalScratch::Impl {
  std::vector<StageSim> ss;
  std::vector<StageTimeline> tl;
  std::vector<dag::StageId> run_order;  // kRunning, sorted by submit_seq
  std::vector<dag::StageId> running_ids;  // kRunning, sorted by stage id
  std::vector<dag::StageId> delayed;    // kDelayed, sorted by stage id
  Seconds jct = -1;
  Seconds parallel_end = -1;
  // March state, persisted across a pause so a scan can snapshot/resume.
  Seconds now = 0;
  Seconds budget = 0;
  int done = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t n_stepped = 0;
  std::uint64_t n_skipped = 0;
};

EvalScratch::EvalScratch() : impl_(std::make_unique<Impl>()) {}
EvalScratch::~EvalScratch() = default;
EvalScratch::EvalScratch(EvalScratch&&) noexcept = default;
EvalScratch& EvalScratch::operator=(EvalScratch&&) noexcept = default;

std::size_t ScoreMemo::VecHash::operator()(
    const std::vector<Seconds>& v) const {
  // FNV-1a over the doubles' bit patterns (delays are produced by identical
  // arithmetic on every thread, so bit equality is the right key equality).
  std::uint64_t h = 1469598103934665603ull;
  for (const Seconds d : v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

std::optional<Score> ScoreMemo::find(const std::vector<Seconds>& delay) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(delay);
  if (it == map_.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ScoreMemo::insert(std::vector<Seconds> delay, const Score& score) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.emplace(std::move(delay), score);
}

std::size_t ScoreMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

ScheduleEvaluator::ScheduleEvaluator(const JobProfile& profile, Seconds slot,
                                     ModelOptions model)
    : profile_(profile), model_(profile, model), slot_(slot) {
  DS_CHECK_MSG(slot > 0, "slot width must be positive");
  const dag::JobDag& dag = *profile_.dag;
  const auto n = static_cast<std::size_t>(dag.num_stages());

  consts_.resize(n);
  // Safety bound: generous multiple of the fully-serialised schedule
  // (solo_time already includes the straggler tails).
  budget_base_ = 100.0 + 10.0 * slot_;
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    auto& c = consts_[static_cast<std::size_t>(s)];
    c.read_total = model_.read_work(s);
    c.compute_total = model_.compute_work(s);
    c.write_total = model_.write_work(s);
    c.par_cap = model_.usable_executors(s);
    c.num_tasks = dag.stage(s).num_tasks;
    c.tail = model_.straggler_tail(s);
    c.straggler_quarter = std::pow(model_.straggler_factor(s), 0.25);
    c.num_parents = static_cast<int>(dag.parents(s).size());
    c.is_source = dag.parents(s).empty();
    budget_base_ += (model_.solo_time(s) + c.tail) *
                    (2.0 + static_cast<double>(n));
  }
  k_set_ = dag.parallel_stage_set();

  const auto& cl = profile_.cluster;
  cluster_execs_ = cl.total_executors();
  worker_net_ = cl.num_workers * cl.nic_bw;
  storage_net_ =
      cl.num_storage_nodes > 0
          ? (cl.storage_net_bw > 0 ? cl.storage_net_bw
                                   : cl.num_storage_nodes * cl.nic_bw)
          : worker_net_;
  cluster_disk_ = cl.num_workers * cl.disk_bw;
  beta_ = cl.congestion_penalty;
}

void ScheduleEvaluator::init_run(const std::vector<Seconds>& delay,
                                 EvalScratch::Impl& sc) const {
  const dag::JobDag& dag = *profile_.dag;
  const auto n = consts_.size();
  for (Seconds d : delay) DS_CHECK_MSG(d >= 0, "negative delay");
  evals_.fetch_add(1, std::memory_order_relaxed);

  auto delay_for = [&](dag::StageId s) {
    const auto i = static_cast<std::size_t>(s);
    return i < delay.size() ? delay[i] : 0.0;
  };

  sc.tl.assign(n, StageTimeline{});
  sc.ss.assign(n, StageSim{});
  sc.run_order.clear();
  sc.running_ids.clear();
  sc.delayed.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto& x = sc.ss[i];
    const auto& c = consts_[i];
    x.remaining_parents = c.num_parents;
    x.read_total = c.read_total;
    x.read_left = c.read_total;
    x.compute_total = c.compute_total;
    x.compute_left = c.compute_total;
    x.write_left = c.write_total;
    x.par_cap = c.par_cap;
    x.num_tasks = c.num_tasks;
    x.tail = c.tail;
    x.straggler_quarter = c.straggler_quarter;
  }

  sc.budget = budget_base_;
  for (Seconds d : delay) sc.budget += d;
  sc.now = 0;
  sc.done = 0;
  sc.next_seq = 0;
  sc.n_stepped = 0;
  sc.n_skipped = 0;

  for (dag::StageId s : dag.sources()) {
    // Sources are admitted by the slot loop (FIFO over stage ids), exactly
    // like any other delayed stage whose submit time arrives.
    auto& x = sc.ss[static_cast<std::size_t>(s)];
    sc.tl[static_cast<std::size_t>(s)].ready = 0.0;
    x.submit_at = delay_for(s);
    x.phase = Phase::kDelayed;
    sc.delayed.insert(
        std::upper_bound(sc.delayed.begin(), sc.delayed.end(), s), s);
  }
}

bool ScheduleEvaluator::march(const std::vector<Seconds>& delay,
                              EvalScratch::Impl& sc,
                              dag::StageId pause_k) const {
  const dag::JobDag& dag = *profile_.dag;
  const auto n = consts_.size();

  auto delay_for = [&](dag::StageId s) {
    const auto i = static_cast<std::size_t>(s);
    return i < delay.size() ? delay[i] : 0.0;
  };

  const Seconds budget = sc.budget;
  int done = sc.done;
  const auto total = static_cast<int>(n);

  std::uint64_t next_seq = sc.next_seq;
  auto admit = [&](dag::StageId s, Seconds now) {
    auto& x = sc.ss[static_cast<std::size_t>(s)];
    x.phase = Phase::kRunning;
    x.submit_seq = next_seq++;
    sc.tl[static_cast<std::size_t>(s)].submitted = now;
    sc.run_order.push_back(s);  // seq is monotonic: stays sorted
    sc.running_ids.insert(
        std::upper_bound(sc.running_ids.begin(), sc.running_ids.end(), s), s);
  };
  auto mark_ready = [&](dag::StageId s, Seconds now) {
    auto& x = sc.ss[static_cast<std::size_t>(s)];
    sc.tl[static_cast<std::size_t>(s)].ready = now;
    x.submit_at = now + delay_for(s);
    x.phase = Phase::kDelayed;
    if (x.submit_at <= now + 1e-9) {
      admit(s, now);
    } else {
      sc.delayed.insert(
          std::upper_bound(sc.delayed.begin(), sc.delayed.end(), s), s);
    }
  };

  Seconds now = sc.now;
  std::uint64_t n_stepped = sc.n_stepped, n_skipped = sc.n_skipped;
  while (done < total) {
    if (pause_k >= 0) {
      const auto& px = sc.ss[static_cast<std::size_t>(pause_k)];
      if (px.phase == Phase::kDelayed && px.submit_at <= now + 1e-9) {
        // Park right before step 1 of the boundary that would admit
        // pause_k; the caller snapshots here and resumes with a new barrier.
        sc.now = now;
        sc.done = done;
        sc.next_seq = next_seq;
        sc.n_stepped = n_stepped;
        sc.n_skipped = n_skipped;
        return false;
      }
    }
    DS_CHECK_MSG(now <= budget,
                 "evaluator failed to converge (cycle or zero rate?)");

    // 1) Admit delayed stages whose submission time has arrived. FIFO
    //    priority is submission order (ties: stage id, the order Spark
    //    enqueues ready stages).
    if (!sc.delayed.empty()) {
      auto keep = sc.delayed.begin();
      for (auto it = sc.delayed.begin(); it != sc.delayed.end(); ++it) {
        const dag::StageId s = *it;
        if (sc.ss[static_cast<std::size_t>(s)].submit_at <= now + 1e-9) {
          admit(s, now);
        } else {
          *keep++ = s;
        }
      }
      sc.delayed.erase(keep, sc.delayed.end());
    }

    // 2) Retire finished stages (cascading readiness and zero-work stages).
    //    The scan walks the running stages in ascending id order — the same
    //    visit order as a sweep over every stage id, without paying for the
    //    waiting/done ones. Cascade admissions insert into the sorted list
    //    mid-pass; an insertion shift can only re-present an already-visited
    //    stage (all checks are idempotent at a fixed `now`) or surface a
    //    higher id later in this pass, exactly as the full sweep would, and
    //    `changed` forces another pass whenever a retirement occurred.
    bool changed = true;
    bool any_retired = false;
    while (changed) {
      changed = false;
      for (std::size_t ri = 0; ri < sc.running_ids.size(); ++ri) {
        const dag::StageId s = sc.running_ids[ri];
        auto& x = sc.ss[static_cast<std::size_t>(s)];
        auto& tl = sc.tl[static_cast<std::size_t>(s)];
        if (x.phase != Phase::kRunning) continue;
        if (x.read_left <= sim::kFluidEps && x.read_done_at < 0) {
          // Bytes are drained, but the largest task's fetch outlasts the
          // mean drain. Fair sharing self-corrects (finished flows donate
          // bandwidth to the straggler), so the observed span inflation is
          // roughly the square root of the max task multiplier.
          const Seconds sub = tl.submitted;
          x.read_done_at = sub + x.straggler_quarter * (now - sub);
        }
        if (x.read_left <= sim::kFluidEps && x.read_done_at >= 0 &&
            now + 1e-9 >= x.read_done_at && tl.read_done < 0) {
          tl.read_done = now;
          // The largest task has only just finished fetching; its compute
          // still lies entirely ahead (slowest-worker term of Eq. 2).
          x.min_finish = now + x.tail;
        }
        if (x.compute_left <= sim::kFluidEps && tl.read_done >= 0 &&
            now + 1e-9 >= x.min_finish && tl.compute_done < 0)
          tl.compute_done = now;
        if (tl.read_done >= 0 && x.compute_left <= sim::kFluidEps &&
            now + 1e-9 >= x.min_finish &&
            x.write_left <= sim::kFluidEps) {
          x.phase = Phase::kDone;
          tl.finish = now;
          ++done;
          changed = true;
          any_retired = true;
          for (dag::StageId c : dag.children(s)) {
            auto& cx = sc.ss[static_cast<std::size_t>(c)];
            DS_CHECK(cx.remaining_parents > 0);
            if (--cx.remaining_parents == 0) mark_ready(c, now);
          }
        }
      }
    }
    if (done == total) break;
    if (any_retired) {
      const auto is_done = [&](dag::StageId s) {
        return sc.ss[static_cast<std::size_t>(s)].phase == Phase::kDone;
      };
      sc.run_order.erase(
          std::remove_if(sc.run_order.begin(), sc.run_order.end(), is_done),
          sc.run_order.end());
      sc.running_ids.erase(
          std::remove_if(sc.running_ids.begin(), sc.running_ids.end(),
                         is_done),
          sc.running_ids.end());
    }

    // 3) Allocate executor slots FIFO by submission order: a task holds its
    //    slot through read, compute and write (as in Spark), so an
    //    earlier-submitted stage's queued tasks gate later stages.
    // 4) ... and accumulate the per-flow-weighted bandwidth shares (f_w_τ(X)
    //    at task granularity) in the same pass: every contribution depends
    //    only on the contributing stage's own just-finalised allocation, and
    //    the sums still accumulate in run_order order.
    double free_execs = cluster_execs_;
    double read_tasks = 0, src_read_tasks = 0, write_tasks = 0;
    int read_stages = 0, src_read_stages = 0;
    for (dag::StageId s : sc.run_order) {
      auto& x = sc.ss[static_cast<std::size_t>(s)];
      x.slots = std::min(x.demand(), free_execs);
      if (x.slots > x.prev_slots) x.prev_slots = x.slots;
      free_execs -= x.slots;
      // Tasks still fetching vs tasks past their read. Tasks pipeline inside
      // a stage: early finishers compute while stragglers keep reading.
      if (x.reading(now)) {
        x.read_share = std::max(std::min(1.0, x.slots),
                                x.slots * (1.0 - x.read_frac()));
        if (x.read_share > 0) {
          read_tasks += x.read_share;
          ++read_stages;
          if (consts_[static_cast<std::size_t>(s)].is_source) {
            src_read_tasks += x.read_share;
            ++src_read_stages;
          }
        }
      } else {
        x.read_share = 0;
      }
      if (x.compute_left <= sim::kFluidEps && x.read_left <= sim::kFluidEps &&
          x.write_left > sim::kFluidEps)
        write_tasks += std::max(1.0, x.slots);
    }
    // Cross-stage contention: g stages interleaving on the network serve
    // only C / (1 + β·ln g) in aggregate (mirrors the fabric).
    const double net_eff =
        read_stages > 1 ? 1.0 / (1.0 + beta_ * std::log(read_stages)) : 1.0;
    const double src_eff =
        src_read_stages > 1
            ? 1.0 / (1.0 + beta_ * std::log(src_read_stages))
            : 1.0;

    // 5) Advance one slot: read, compute (bounded by data already read and
    //    by T/straggler usable parallelism) and write progress concurrently
    //    across a stage's tasks.
    const double sqrt_net_eff = net_eff < 1.0 ? std::sqrt(net_eff) : 1.0;
    for (dag::StageId s : sc.run_order) {
      auto& x = sc.ss[static_cast<std::size_t>(s)];
      x.compute_prog = 0;
      x.write_prog = 0;
      x.compute_exec_bound = false;
      if (x.slots <= 0) continue;  // fully queued behind earlier stages
      if (x.read_left > sim::kFluidEps && x.read_share > 0) {
        BytesPerSec rate = worker_net_ * net_eff * x.read_share / read_tasks;
        if (consts_[static_cast<std::size_t>(s)].is_source)
          rate = std::min(
              rate, storage_net_ * src_eff * x.read_share / src_read_tasks);
        // Per-task NIC ceiling; co-located tasks of other stages interleave
        // on the same NICs, but only part of a task's fan-in crosses
        // contended ports — apply the penalty at half strength here.
        rate = std::min(rate,
                        x.read_share * profile_.cluster.nic_bw * sqrt_net_eff);
        x.read_left = std::max(0.0, x.read_left - slot_ * rate);
      }
      if (x.compute_left > sim::kFluidEps) {
        const double execs =
            std::min(std::max(0.0, x.slots - x.read_share), x.par_cap);
        // Cannot process bytes that have not arrived yet.
        const Seconds computable =
            x.read_frac() * x.compute_total - (x.compute_total - x.compute_left);
        const Seconds cap = slot_ * execs;
        const Seconds prog = std::min(cap, std::max(0.0, computable));
        x.compute_left -= prog;
        x.compute_prog = prog;
        x.compute_exec_bound = cap <= computable;
      } else if (x.read_left <= sim::kFluidEps && x.write_left > sim::kFluidEps) {
        const double writers = std::max(1.0, x.slots);
        const BytesPerSec rate = std::min(cluster_disk_ * writers / write_tasks,
                                          writers * profile_.cluster.disk_bw);
        x.write_left = std::max(0.0, x.write_left - slot_ * rate);
        x.write_prog = slot_ * rate;
      }
    }
    now += slot_;
    ++n_stepped;
    // 6) Fast-forward: count how many upcoming slots provably need no
    //    boundary processing — no admission, no retirement, no timestamp
    //    stamp, no allocation change — and replay the same per-slot
    //    arithmetic for them in a tight loop. Trajectories are bit-identical
    //    to stepping slot by slot; only the O(n) boundary bookkeeping is
    //    skipped. Two regimes qualify:
    //      * no stage has bytes in flight: every stage's progress is a
    //        constant stored in compute_prog / write_prog;
    //      * exactly one stage is draining bytes and no straggler tail holds
    //        network share elsewhere: that reader owns the whole fabric
    //        (read_tasks == its share, net_eff == 1), so its slot update
    //        depends only on its own state and can be re-applied with the
    //        exact step-3/step-5 expressions, while everyone else is in the
    //        constant regime above.
    if (!fast_forward_) continue;
    int readers = 0;
    dag::StageId reader = -1;
    bool reader_mode_ok = true;
    for (dag::StageId s : sc.run_order) {
      const auto& x = sc.ss[static_cast<std::size_t>(s)];
      if (x.read_left > sim::kFluidEps) {
        ++readers;
        reader = s;
        if (x.slots <= 0) reader_mode_ok = false;  // starved: frozen anyway
      } else if (x.reading(now)) {
        // A drained stage whose straggler fetch still occupies the network:
        // it shares read_tasks with the reader, so the reader's rate would
        // not be a pure function of its own state.
        reader_mode_ok = false;
      }
    }
    if (readers > 1 || (readers == 1 && !reader_mode_ok)) continue;
    // Extra slots that can pass before `barrier` first satisfies
    // "barrier <= boundary + 1e-9" (the retire/admission trigger form).
    auto slots_before = [&](Seconds barrier) -> long {
      const double gap = (barrier - now - 1e-9) / slot_;
      if (gap <= 0) return 0;
      return std::max<long>(0, static_cast<long>(std::ceil(gap - 1e-6)) - 1);
    };
    long skip = static_cast<long>((budget - now) / slot_) + 1;
    bool can_skip = true;
    for (dag::StageId s : sc.delayed) {
      skip = std::min(
          skip, slots_before(sc.ss[static_cast<std::size_t>(s)].submit_at));
    }
    for (dag::StageId s : sc.run_order) {
      if (s == reader) continue;  // self-checked by the tight loop below
      const auto& x = sc.ss[static_cast<std::size_t>(s)];
      const auto& tl = sc.tl[static_cast<std::size_t>(s)];
      if (x.read_left <= sim::kFluidEps && x.read_done_at < 0) {
        can_skip = false;  // drain timestamp assignment due next boundary
        break;
      }
      if (x.write_left <= sim::kFluidEps &&
          (x.write_prog > 0 || (x.compute_prog > 0 &&
                                x.compute_left <= sim::kFluidEps))) {
        // The stage's last bulk work drained during this very slot: at the
        // next boundary its demand collapses to the done-waiting residual
        // (releasing slots to later stages) and it leaves the writer set
        // (raising everyone else's disk share). Neither is representable as
        // a frozen allocation, so the boundary must be processed.
        can_skip = false;
        break;
      }
      if (tl.read_done < 0 && x.read_done_at >= 0)
        skip = std::min(skip, slots_before(x.read_done_at));
      if (x.compute_left > sim::kFluidEps) {
        if (x.compute_prog <= 0) continue;  // starved: frozen state
        if (!x.compute_exec_bound) {
          can_skip = false;  // data-gated: progress shrinks every slot
          break;
        }
        // Stay strictly inside the constant-demand, constant-rate regime:
        // above the fluid epsilon, above the wave-release threshold, and
        // with enough readable data to keep prog == slot·execs.
        const double t = static_cast<double>(x.num_tasks);
        const double wave =
            x.prev_slots > 0 && t > 0 ? std::min(1.0, x.prev_slots / t) : 1.0;
        double bound = sim::kFluidEps;
        if (wave < 1.0 && x.compute_total > 0) {
          const double frac = 1.0 - x.compute_left / x.compute_total;
          if (frac > wave) {
            can_skip = false;  // releasing slots: demand declines every slot
            break;
          }
          bound = std::max(bound, x.compute_total * (1.0 - wave));
        }
        // Data margin: computable = compute_left + A with constant A <= 0
        // while reads are quiescent.
        const Seconds slack =
            (x.read_frac() - 1.0) * x.compute_total + x.compute_left - bound;
        skip = std::min(skip, std::max<long>(
                                  0, static_cast<long>(std::floor(
                                         slack / x.compute_prog - 1e-6))));
      } else if (x.write_left > sim::kFluidEps) {
        // The compute_done stamp can fall due mid-write (min_finish passes
        // while bytes are still flushing); stop at that boundary too.
        if (tl.compute_done < 0 && tl.read_done >= 0)
          skip = std::min(skip, slots_before(x.min_finish));
        if (x.write_prog <= 0) {
          // Zero write progress is only a frozen state when the stage holds
          // no slots. With slots it means compute drained this very slot and
          // the write phase begins next boundary at a yet-unknown rate.
          if (x.slots > 0) {
            can_skip = false;
            break;
          }
          continue;
        }
        skip = std::min(
            skip,
            std::max<long>(0, static_cast<long>(std::floor(
                                  (x.write_left - sim::kFluidEps) /
                                      x.write_prog -
                                  1e-6))));
      } else if (tl.read_done >= 0) {
        // Bulk work done: the only pending event is the min_finish barrier
        // (0 slots if it is already due at the next boundary).
        skip = std::min(skip, slots_before(x.min_finish));
      }
    }
    if (!can_skip || skip <= 0) continue;
    if (readers == 1) {
      // Lone-reader tight loop: re-apply the exact allocation and progress
      // expressions of steps 3 and 5 for the reader, slot by slot, bailing
      // out the moment its own state would change the next boundary's
      // decisions (bytes drained, or multi-wave slot release beginning).
      // With a single reading stage the fabric terms collapse exactly:
      // read_tasks == read_share (a one-element sum) and net_eff == 1.
      auto& x = sc.ss[static_cast<std::size_t>(reader)];
      const bool src = consts_[static_cast<std::size_t>(reader)].is_source;
      const double t = static_cast<double>(x.num_tasks);
      const double wave =
          x.prev_slots > 0 && t > 0 ? std::min(1.0, x.prev_slots / t) : 1.0;
      const double net_eff1 = 1.0, src_eff1 = 1.0;
      long applied = 0;
      while (applied < skip) {
        if (x.compute_total > 0 && wave < 1.0 &&
            1.0 - x.compute_left / x.compute_total > wave)
          break;  // demand() starts declining: allocation changes
        x.read_share = std::max(std::min(1.0, x.slots),
                                x.slots * (1.0 - x.read_frac()));
        const double read_tasks1 = x.read_share;
        BytesPerSec rate =
            worker_net_ * net_eff1 * x.read_share / read_tasks1;
        if (src)
          rate = std::min(rate,
                          storage_net_ * src_eff1 * x.read_share / read_tasks1);
        rate = std::min(rate, x.read_share * profile_.cluster.nic_bw *
                                  std::sqrt(net_eff1));
        x.read_left = std::max(0.0, x.read_left - slot_ * rate);
        if (x.compute_left > sim::kFluidEps) {
          const double execs =
              std::min(std::max(0.0, x.slots - x.read_share), x.par_cap);
          const Seconds computable = x.read_frac() * x.compute_total -
                                     (x.compute_total - x.compute_left);
          const Seconds prog =
              std::min(slot_ * execs, std::max(0.0, computable));
          x.compute_left -= prog;
        }
        now += slot_;
        ++applied;
        if (x.read_left <= sim::kFluidEps) break;  // drain stamp due next
      }
      skip = applied;
    }
    for (dag::StageId s : sc.run_order) {
      if (s == reader) continue;
      auto& x = sc.ss[static_cast<std::size_t>(s)];
      if (x.compute_prog > 0 && x.compute_left > sim::kFluidEps) {
        for (long j = 0; j < skip; ++j) x.compute_left -= x.compute_prog;
      } else if (x.write_prog > 0 && x.write_left > sim::kFluidEps) {
        for (long j = 0; j < skip; ++j)
          x.write_left = std::max(0.0, x.write_left - x.write_prog);
      }
    }
    if (readers == 0) {
      // Accumulate, don't multiply: keeps `now` on the exact same float
      // trajectory as slot-by-slot stepping.
      for (long j = 0; j < skip; ++j) now += slot_;
    }
    n_skipped += static_cast<std::uint64_t>(skip);
  }

  stepped_.fetch_add(n_stepped, std::memory_order_relaxed);
  skipped_.fetch_add(n_skipped, std::memory_order_relaxed);
  sc.now = now;
  sc.done = done;
  sc.next_seq = next_seq;
  sc.n_stepped = 0;
  sc.n_skipped = 0;
  sc.jct = now;
  sc.parallel_end = 0;
  for (dag::StageId s : k_set_)
    sc.parallel_end = std::max(sc.parallel_end,
                               sc.tl[static_cast<std::size_t>(s)].finish);
  return true;
}

void ScheduleEvaluator::run(const std::vector<Seconds>& delay,
                            EvalScratch::Impl& sc) const {
  init_run(delay, sc);
  const bool finished = march(delay, sc, -1);
  DS_CHECK(finished);
}

void ScheduleEvaluator::scan(const std::vector<Seconds>& delay,
                             dag::StageId k, const std::vector<Seconds>& xs,
                             std::vector<Score>& out, ScoreMemo* memo,
                             ThreadPool* pool) const {
  const auto ki = static_cast<std::size_t>(k);
  DS_CHECK(ki < consts_.size());
  out.assign(xs.size(), Score{});

  // Resolve memo hits and split off candidates the incremental path cannot
  // park on (x ≈ 0 admits the stage inside the readiness cascade, before any
  // pause barrier could fire) — those run as plain full evaluations.
  static thread_local EvalScratch plain;
  static thread_local std::vector<Seconds> key;
  std::vector<std::size_t> pending;
  pending.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    DS_CHECK_MSG(i == 0 || xs[i] > xs[i - 1], "scan candidates not ascending");
    if (memo) {
      key = delay;
      key.resize(std::max(key.size(), ki + 1), 0.0);
      key[ki] = xs[i];
      if (const auto cached = memo->find(key)) {
        out[i] = *cached;
        continue;
      }
    }
    if (xs[i] <= 1e-9) {
      key = delay;
      key.resize(std::max(key.size(), ki + 1), 0.0);
      key[ki] = xs[i];
      out[i] = score(key, plain, memo);
      continue;
    }
    pending.push_back(i);
  }
  if (pending.empty()) return;

  // Shared prefix: one base simulation, paused at each candidate's admission
  // boundary in ascending order. A tighter pause barrier only shortens the
  // fast-forward windows of the prefix, and a fully processed boundary is
  // bit-identical to a skipped one, so every snapshot matches the state a
  // fresh evaluation of that candidate would reach.
  std::vector<Seconds> bd = delay;
  bd.resize(std::max(bd.size(), ki + 1), 0.0);
  bd[ki] = xs[pending.front()];
  EvalScratch base;
  auto& bs = *base.impl_;
  init_run(bd, bs);
  std::vector<EvalScratch::Impl> snaps(pending.size());
  for (std::size_t j = 0; j < pending.size(); ++j) {
    const bool finished = march(bd, bs, k);
    DS_CHECK_MSG(!finished, "scan barrier never reached");
    snaps[j] = bs;
    // The prefix's boundary counters are flushed once below; a continuation
    // accounts only for its own suffix.
    snaps[j].n_stepped = 0;
    snaps[j].n_skipped = 0;
    // The full run for candidate j sums its own delay vector into the
    // convergence budget; only the cap differs, never the trajectory.
    snaps[j].budget = bs.budget - xs[pending.front()] + xs[pending[j]];
    if (j + 1 < pending.size()) {
      auto& px = bs.ss[ki];
      px.submit_at = bs.tl[ki].ready + xs[pending[j + 1]];
    }
  }
  stepped_.fetch_add(bs.n_stepped, std::memory_order_relaxed);
  skipped_.fetch_add(bs.n_skipped, std::memory_order_relaxed);

  auto continue_one = [&](std::size_t j) {
    static thread_local EvalScratch work;
    static thread_local std::vector<Seconds> wkey;
    auto& ws = *work.impl_;
    ws = snaps[j];  // copy-assign: reuses the arena's capacity when warm
    evals_.fetch_add(1, std::memory_order_relaxed);
    const bool finished = march(bd, ws, -1);
    DS_CHECK(finished);
    const Score s{ws.parallel_end, ws.jct};
    out[pending[j]] = s;
    if (memo) {
      wkey = delay;
      wkey.resize(std::max(wkey.size(), ki + 1), 0.0);
      wkey[ki] = xs[pending[j]];
      memo->insert(wkey, s);
    }
  };
  if (pool && pending.size() > 1) {
    pool->parallel_for(pending.size(),
                       [&](std::size_t j) { continue_one(j); });
  } else {
    for (std::size_t j = 0; j < pending.size(); ++j) continue_one(j);
  }
}

Evaluation ScheduleEvaluator::evaluate(const std::vector<Seconds>& delay,
                                       EvalScratch& scratch) const {
  run(delay, *scratch.impl_);
  Evaluation ev;
  ev.stages = scratch.impl_->tl;  // copy: the arena stays warm for reuse
  ev.jct = scratch.impl_->jct;
  ev.parallel_end = scratch.impl_->parallel_end;
  return ev;
}

Evaluation ScheduleEvaluator::evaluate(const std::vector<Seconds>& delay) const {
  static thread_local EvalScratch tls;
  return evaluate(delay, tls);
}

Score ScheduleEvaluator::score(const std::vector<Seconds>& delay,
                               EvalScratch& scratch, ScoreMemo* memo) const {
  if (memo) {
    if (const auto cached = memo->find(delay)) return *cached;
  }
  run(delay, *scratch.impl_);
  const Score s{scratch.impl_->parallel_end, scratch.impl_->jct};
  if (memo) memo->insert(delay, s);
  return s;
}

}  // namespace ds::core
