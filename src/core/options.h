// ds::CommonOptions — the shared facade every options struct embeds.
//
// RunOptions, CalculatorOptions, ReplayOptions and SyntheticTraceOptions had
// drifted into duplicated, inconsistently defaulted knobs (threads in two of
// four, seed in three, 0-means-auto normalized in the CLIs only). They now
// all *inherit* CommonOptions, which:
//   * keeps the old spellings compiling (`opt.threads`, `opt.seed` are the
//     base members — the deprecated aliases DESIGN.md §9 documents);
//   * normalizes 0/negative-means-hardware-concurrency in exactly one place
//     (resolved_threads());
//   * carries the observability sink (obs) that sim/, engine/, core/ and
//     trace/ publish metrics and trace spans into.
//
// Header-only on purpose: every layer includes it without taking a link
// dependency on ds_core.
#pragma once

#include <cstdint>
#include <thread>

namespace ds {

namespace obs {
struct Observability;
}

struct CommonOptions {
  // Worker threads for whatever fan-out the consumer runs (planner candidate
  // grids, replay per-job planning). <= 0 = hardware concurrency. The
  // single-threaded engine ignores it.
  int threads = 1;
  // Deterministic seed: per-task skew and fault injection (engine),
  // PathOrder::kRandom (calculator), per-job planning (replay), trace
  // generation (synthetic).
  std::uint64_t seed = 1;
  // Observability sink (metrics + tracing); nullptr = disabled, zero
  // overhead. The sink must outlive the consumer. Purely passive: enabling
  // it never changes a simulation result bit.
  obs::Observability* obs = nullptr;

  // The one place 0-means-auto is resolved (mirrors ThreadPool's contract).
  int resolved_threads() const {
    if (threads > 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  // Explicit access to the shared slice of a derived options struct.
  CommonOptions& common() { return *this; }
  const CommonOptions& common() const { return *this; }
};

}  // namespace ds
