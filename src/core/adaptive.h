// AdaptivePlanner — the drift-closed control loop over one workload.
//
// Composes the three adaptive pieces into the object a caller actually uses
// per job submission:
//
//   plan()     runs the DelayStage search on the *calibrated* profile (the
//              base profile corrected by the workload's accumulated EWMA
//              factors — identity on first sight, observed truth for
//              recurrent jobs);
//   arm(ro)    installs the plan, the ReplanPolicy and a replanner bound to
//              this object into an engine::RunOptions, so the run can
//              replan mid-job when drift or a crash fires a trigger;
//   observe(r) folds the finished run's measured phase spans back into the
//              calibrator, closing the loop for the next recurrence.
//
// Mid-job replanning uses a frozen-prefix approximation: the fresh Alg. 1
// search runs over the full DAG on the calibrated (and crash-shrunk)
// cluster, but only the delays of not-yet-submitted stages are adopted —
// submitted stages' delays are spent and kept verbatim. The candidate plan
// is only offered to the engine if it scores strictly better than the
// current delays under the same calibrated model (the engine additionally
// applies its min_expected_gain guard). See DESIGN.md §11.
#pragma once

#include <cstdint>

#include "core/calibration.h"
#include "core/delay_calculator.h"
#include "engine/job_run.h"
#include "engine/replan.h"

namespace ds::core {

struct AdaptiveOptions {
  CalculatorOptions calculator;
  CalibrationOptions calibration;
  // Default-constructed = replanning off: arm() then installs only the plan
  // and the run is bit-identical to a plain DelayCalculator plan.
  engine::ReplanPolicy replan;
};

class AdaptivePlanner {
 public:
  // `base.dag` must outlive the planner. `calibrator` (optional) shares
  // correction state across planners — e.g. one store for a whole trace
  // replay; null = the planner owns a private calibrator.
  explicit AdaptivePlanner(const JobProfile& base, AdaptiveOptions options = {},
                           ModelCalibrator* calibrator = nullptr);

  // Plan on the calibrated profile. Identity calibration (never-observed
  // workload) makes this bit-identical to DelayCalculator on `base`.
  const DelaySchedule& plan();

  // Install plan + replan policy + replanner into `ro`. Requires plan();
  // this object must outlive the JobRun (the replanner captures `this`).
  void arm(engine::RunOptions& ro);

  // Feed a finished run back into the calibrator.
  void observe(const engine::JobResult& result);

  // The engine-facing replan callback (arm() installs it; exposed for
  // tests). Snapshots in `req`, answer per the frozen-prefix search above.
  engine::ReplanDecision replan(const engine::ReplanRequest& req);

  const DelaySchedule& last_plan() const { return last_; }
  CalibrationFactors factors() const { return calibrator_->factors(sig_); }
  std::uint64_t signature() const { return sig_; }
  ModelCalibrator& calibrator() { return *calibrator_; }

 private:
  JobProfile base_;        // field copy; shares base.dag
  JobProfile calibrated_;  // rebuilt by plan(); referenced by last_
  AdaptiveOptions opt_;
  ModelCalibrator owned_;  // used when no shared calibrator was given
  ModelCalibrator* calibrator_;
  std::uint64_t sig_;
  DelaySchedule last_;
  bool planned_ = false;
};

}  // namespace ds::core
