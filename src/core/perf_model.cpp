#include "core/perf_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace ds::core {

PerfModel::PerfModel(const JobProfile& profile) : profile_(profile) {
  DS_CHECK_MSG(profile.dag != nullptr, "profile has no DAG");
  DS_CHECK(profile.cluster.num_workers > 0);
  DS_CHECK(profile.cluster.executors_per_worker > 0);
  DS_CHECK(profile.cluster.nic_bw > 0);
  DS_CHECK(profile.cluster.disk_bw > 0);
}

Bytes PerfModel::read_work(dag::StageId k) const {
  return profile_.dag->stage(k).input_bytes;
}

Seconds PerfModel::compute_work(dag::StageId k) const {
  const dag::Stage& s = profile_.dag->stage(k);
  if (s.process_rate <= 0) return 0.0;
  return s.input_bytes / s.process_rate;
}

double PerfModel::straggler_factor(dag::StageId k) const {
  const dag::Stage& s = profile_.dag->stage(k);
  if (s.task_skew <= 0 || s.num_tasks < 2) return 1.0;
  // Expected maximum of T lognormal(0, σ) multipliers ≈ exp(σ·z) with
  // z = Φ⁻¹(T/(T+1)), using the asymptotic inverse-normal expansion
  // z ≈ sqrt(2 ln T) − (ln 4π + ln ln T) / (2 sqrt(2 ln T)).
  const double t = static_cast<double>(s.num_tasks);
  const double l = std::sqrt(2.0 * std::log(t));
  const double z =
      std::max(0.5, l - (std::log(4.0 * std::numbers::pi) +
                         std::log(std::log(t))) /
                            (2.0 * l));
  return std::exp(s.task_skew * z);
}

Bytes PerfModel::write_work(dag::StageId k) const {
  return profile_.dag->stage(k).output_bytes;
}

BytesPerSec PerfModel::read_rate_alone(dag::StageId k) const {
  const auto& c = profile_.cluster;
  // Shuffle reads are bounded by the workers' aggregate ingress; source-stage
  // reads additionally by the HDFS nodes' aggregate egress (3 storage nodes
  // feeding 30 workers bottleneck on the storage side, as in the prototype).
  const BytesPerSec worker_side = c.num_workers * c.nic_bw;
  if (profile_.dag->parents(k).empty() && c.num_storage_nodes > 0) {
    const BytesPerSec storage_side = c.storage_net_bw > 0
                                         ? c.storage_net_bw
                                         : c.num_storage_nodes * c.nic_bw;
    return std::min(worker_side, storage_side);
  }
  return worker_side;
}

double PerfModel::usable_executors(dag::StageId k) const {
  return std::min(static_cast<double>(profile_.dag->stage(k).num_tasks),
                  static_cast<double>(profile_.cluster.total_executors()));
}

Seconds PerfModel::straggler_tail(dag::StageId k) const {
  const dag::Stage& s = profile_.dag->stage(k);
  if (s.num_tasks <= 0) return 0.0;
  // The largest task is the last to finish reading, and its whole compute
  // happens after the stage's read span ends (Eq. 2's slowest worker).
  return compute_work(k) / static_cast<double>(s.num_tasks) *
         straggler_factor(k);
}

BytesPerSec PerfModel::write_rate_alone() const {
  return profile_.cluster.num_workers * profile_.cluster.disk_bw;
}

PhaseTimes PerfModel::stage_phases(dag::StageId k, const Shares& shares) const {
  DS_CHECK(shares.network >= 1 && shares.cpu >= 1 && shares.disk >= 1);
  PhaseTimes t;
  t.read = read_work(k) / (read_rate_alone(k) / shares.network);
  const double execs =
      std::max(1.0, std::min(usable_executors(k),
                             profile_.cluster.total_executors() / shares.cpu));
  t.compute = compute_work(k) / execs;
  t.write = write_work(k) / (write_rate_alone() / shares.disk);
  return t;
}

Seconds PerfModel::solo_time(dag::StageId k) const {
  // The compute span cannot undercut the largest task (Eq. 2); the straggler
  // tail replaces the bulk span when it dominates.
  const PhaseTimes t = stage_phases(k, Shares{});
  return t.read + std::max(t.compute, straggler_tail(k)) + t.write;
}

}  // namespace ds::core
