#include "core/perf_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace ds::core {

PerfModel::PerfModel(const JobProfile& profile, ModelOptions options)
    : profile_(profile), options_(options) {
  DS_CHECK_MSG(profile.dag != nullptr, "profile has no DAG");
  DS_CHECK(profile.cluster.num_workers > 0);
  DS_CHECK(profile.cluster.executors_per_worker > 0);
  DS_CHECK(profile.cluster.nic_bw > 0);
  DS_CHECK(profile.cluster.disk_bw > 0);
  DS_CHECK_MSG(profile.compute_time_scale > 0,
               "compute_time_scale must be positive");
  DS_CHECK_MSG(options_.quantile >= 0 && options_.quantile < 1.0,
               "model quantile must be in [0, 1)");
  DS_CHECK_MSG(options_.speculation_threshold > 1.0,
               "speculation threshold must exceed 1");
}

double inverse_normal_cdf(double p) {
  DS_CHECK_MSG(p > 0 && p < 1, "inverse_normal_cdf needs p in (0, 1)");
  // Acklam's rational approximation: a central rational fit plus matching
  // tail fits below/above the break points.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

Bytes PerfModel::read_work(dag::StageId k) const {
  return profile_.dag->stage(k).input_bytes;
}

Seconds PerfModel::compute_work(dag::StageId k) const {
  const dag::Stage& s = profile_.dag->stage(k);
  if (s.process_rate <= 0) return 0.0;
  // compute_time_scale defaults to 1.0 — a bit-exact multiplicative
  // identity — so uncalibrated profiles reproduce the legacy numbers.
  return profile_.compute_time_scale * (s.input_bytes / s.process_rate);
}

double PerfModel::straggler_factor(dag::StageId k) const {
  const dag::Stage& s = profile_.dag->stage(k);
  if (s.task_skew <= 0 || s.num_tasks < 2) return 1.0;
  const double t = static_cast<double>(s.num_tasks);
  double z;
  if (options_.quantile == 0.0) {
    // Legacy point estimate — expected maximum of T lognormal(0, σ)
    // multipliers ≈ exp(σ·z) with z = Φ⁻¹(T/(T+1)), using the asymptotic
    // inverse-normal expansion
    // z ≈ sqrt(2 ln T) − (ln 4π + ln ln T) / (2 sqrt(2 ln T)).
    const double l = std::sqrt(2.0 * std::log(t));
    z = std::max(0.5, l - (std::log(4.0 * std::numbers::pi) +
                           std::log(std::log(t))) /
                              (2.0 * l));
  } else {
    // Quantile target: P(max of T iid ≤ m) = q ⇔ per-task CDF = q^{1/T},
    // so the q-quantile of the stage's slowest task is exp(σ·Φ⁻¹(q^{1/T})).
    // Floored at 0.5 like the legacy z so low quantiles of small stages do
    // not undercut the deterministic bulk estimate.
    z = std::max(0.5, inverse_normal_cdf(std::pow(options_.quantile, 1.0 / t)));
  }
  double factor = std::exp(s.task_skew * z);
  if (options_.speculation) {
    // A copy launches once the primary runs speculation_threshold × the
    // median; the median-speed copy then finishes ~1 median later, so the
    // effective straggler multiplier is truncated at threshold + 1.
    factor = std::min(factor, options_.speculation_threshold + 1.0);
  }
  return factor;
}

Bytes PerfModel::write_work(dag::StageId k) const {
  return profile_.dag->stage(k).output_bytes;
}

BytesPerSec PerfModel::read_rate_alone(dag::StageId k) const {
  const auto& c = profile_.cluster;
  // Shuffle reads are bounded by the workers' aggregate ingress; source-stage
  // reads additionally by the HDFS nodes' aggregate egress (3 storage nodes
  // feeding 30 workers bottleneck on the storage side, as in the prototype).
  const BytesPerSec worker_side = c.num_workers * c.nic_bw;
  if (profile_.dag->parents(k).empty() && c.num_storage_nodes > 0) {
    const BytesPerSec storage_side = c.storage_net_bw > 0
                                         ? c.storage_net_bw
                                         : c.num_storage_nodes * c.nic_bw;
    return std::min(worker_side, storage_side);
  }
  return worker_side;
}

double PerfModel::usable_executors(dag::StageId k) const {
  return std::min(static_cast<double>(profile_.dag->stage(k).num_tasks),
                  static_cast<double>(profile_.cluster.total_executors()));
}

Seconds PerfModel::straggler_tail(dag::StageId k) const {
  const dag::Stage& s = profile_.dag->stage(k);
  if (s.num_tasks <= 0) return 0.0;
  // The largest task is the last to finish reading, and its whole compute
  // happens after the stage's read span ends (Eq. 2's slowest worker).
  return compute_work(k) / static_cast<double>(s.num_tasks) *
         straggler_factor(k);
}

BytesPerSec PerfModel::write_rate_alone() const {
  return profile_.cluster.num_workers * profile_.cluster.disk_bw;
}

PhaseTimes PerfModel::stage_phases(dag::StageId k, const Shares& shares) const {
  DS_CHECK(shares.network >= 1 && shares.cpu >= 1 && shares.disk >= 1);
  PhaseTimes t;
  t.read = read_work(k) / (read_rate_alone(k) / shares.network);
  const double execs =
      std::max(1.0, std::min(usable_executors(k),
                             profile_.cluster.total_executors() / shares.cpu));
  t.compute = compute_work(k) / execs;
  t.write = write_work(k) / (write_rate_alone() / shares.disk);
  return t;
}

Seconds PerfModel::solo_time(dag::StageId k) const {
  // The compute span cannot undercut the largest task (Eq. 2); the straggler
  // tail replaces the bulk span when it dominates.
  const PhaseTimes t = stage_phases(k, Shares{});
  return t.read + std::max(t.compute, straggler_tail(k)) + t.write;
}

}  // namespace ds::core
