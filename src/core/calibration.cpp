#include "core/calibration.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace ds::core {

namespace {

inline void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a step (same constants as ScoreMemo's vector hash).
  h ^= v;
  h *= 1099511628211ull;
}

inline std::uint64_t bits_of(double d) {
  std::uint64_t b;
  static_assert(sizeof(b) == sizeof(d));
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

}  // namespace

std::uint64_t workload_signature(const dag::JobDag& dag) {
  std::uint64_t h = 1469598103934665603ull;
  hash_mix(h, static_cast<std::uint64_t>(dag.num_stages()));
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    const dag::Stage& spec = dag.stage(s);
    hash_mix(h, static_cast<std::uint64_t>(spec.num_tasks));
    hash_mix(h, bits_of(spec.input_bytes));
    hash_mix(h, bits_of(spec.output_bytes));
    hash_mix(h, bits_of(spec.process_rate));
    hash_mix(h, bits_of(spec.task_skew));
    for (dag::StageId p : dag.parents(s))
      hash_mix(h, static_cast<std::uint64_t>(p));
    hash_mix(h, 0x5eedull);  // stage separator
  }
  return h;
}

PhaseObservation observe_run(const DelaySchedule& plan,
                             const engine::JobResult& result) {
  return observe_timelines(plan.predicted_stages, result);
}

PhaseObservation observe_timelines(const std::vector<StageTimeline>& predicted,
                                   const engine::JobResult& result) {
  PhaseObservation obs;
  const std::size_t n = std::min(predicted.size(), result.stages.size());
  for (std::size_t i = 0; i < n; ++i) {
    const StageTimeline& p = predicted[i];
    const engine::StageRecord& a = result.stages[i];
    // Skip stages the prediction or the run never completed, and stages the
    // fault machinery reopened (recovery time is not model error).
    if (p.finish < 0 || a.finish < 0) continue;
    if (a.resubmissions > 0 || a.tasks_rerun > 0) continue;
    if (p.submitted < 0 || a.submitted < 0) continue;
    const Seconds p_net = std::max(0.0, p.read_done - p.submitted);
    const Seconds p_cpu = std::max(0.0, p.compute_done - p.read_done);
    const Seconds p_wr = std::max(0.0, p.finish - p.compute_done);
    // A stage may finish without distinct phase marks (zero-volume phases);
    // fall back to collapsing the span into the phases that do exist.
    const Seconds a_read =
        a.last_read_done >= 0 ? a.last_read_done : a.submitted;
    const Seconds a_comp =
        a.last_compute_done >= 0 ? a.last_compute_done : a_read;
    const Seconds a_net = std::max(0.0, a_read - a.submitted);
    const Seconds a_cpu = std::max(0.0, a_comp - a_read);
    const Seconds a_wr = std::max(0.0, a.finish - a_comp);
    obs.predicted_network += p_net;
    obs.predicted_compute += p_cpu;
    obs.predicted_write += p_wr;
    obs.actual_network += a_net;
    obs.actual_compute += a_cpu;
    obs.actual_write += a_wr;
  }
  return obs;
}

ModelCalibrator::ModelCalibrator(CalibrationOptions options) : opt_(options) {
  DS_CHECK_MSG(opt_.ewma_alpha > 0 && opt_.ewma_alpha <= 1.0,
               "calibration ewma_alpha must be in (0, 1]");
  DS_CHECK_MSG(opt_.min_factor > 0 && opt_.min_factor <= 1.0,
               "calibration min_factor must be in (0, 1]");
  DS_CHECK_MSG(opt_.max_factor >= 1.0, "calibration max_factor must be >= 1");
}

void ModelCalibrator::observe(std::uint64_t signature,
                              const PhaseObservation& obs) {
  if (!obs.usable()) return;
  auto ratio = [&](Seconds actual, Seconds predicted, double current) {
    // No predicted span for this term (e.g. a job with zero shuffle write):
    // there is no evidence either way, keep the current factor.
    if (predicted <= 0) return current;
    return std::clamp(actual / predicted, opt_.min_factor, opt_.max_factor);
  };
  std::lock_guard<std::mutex> lock(mu_);
  CalibrationFactors& f = factors_[signature];
  const double a = opt_.ewma_alpha;
  f.network = (1.0 - a) * f.network +
              a * ratio(obs.actual_network, obs.predicted_network, f.network);
  f.compute = (1.0 - a) * f.compute +
              a * ratio(obs.actual_compute, obs.predicted_compute, f.compute);
  f.write = (1.0 - a) * f.write +
            a * ratio(obs.actual_write, obs.predicted_write, f.write);
  f.network = std::clamp(f.network, opt_.min_factor, opt_.max_factor);
  f.compute = std::clamp(f.compute, opt_.min_factor, opt_.max_factor);
  f.write = std::clamp(f.write, opt_.min_factor, opt_.max_factor);
  ++f.observations;
}

CalibrationFactors ModelCalibrator::factors(std::uint64_t signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = factors_.find(signature);
  return it != factors_.end() ? it->second : CalibrationFactors{};
}

std::vector<std::pair<std::uint64_t, CalibrationFactors>>
ModelCalibrator::snapshot() const {
  std::vector<std::pair<std::uint64_t, CalibrationFactors>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(factors_.size());
    for (const auto& [sig, f] : factors_) out.emplace_back(sig, f);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void ModelCalibrator::restore(std::uint64_t signature,
                              const CalibrationFactors& factors) {
  DS_CHECK_MSG(factors.network > 0 && factors.compute > 0 && factors.write > 0,
               "restored calibration factors must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  factors_[signature] = factors;
}

std::size_t ModelCalibrator::workloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return factors_.size();
}

JobProfile calibrated_profile(const JobProfile& base,
                              const CalibrationFactors& f) {
  DS_CHECK_MSG(f.network > 0 && f.compute > 0 && f.write > 0,
               "calibration factors must be positive");
  JobProfile p = base;
  // Observed fetches ran f.network × the prediction ⇒ the usable bandwidth
  // is the profiled figure divided by f.network (both the worker NICs and
  // the storage tier scale — the slowdown is in the fabric, not one side).
  p.cluster.nic_bw = base.cluster.nic_bw / f.network;
  if (base.cluster.storage_net_bw > 0)
    p.cluster.storage_net_bw = base.cluster.storage_net_bw / f.network;
  p.compute_time_scale = base.compute_time_scale * f.compute;
  p.cluster.disk_bw = base.cluster.disk_bw / f.write;
  return p;
}

}  // namespace ds::core
