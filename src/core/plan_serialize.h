// DelaySchedule persistence: a versioned text record (plan + predicted
// per-stage timeline) so cached plans can outlive the process, plus a JSON
// rendering for the plan daemon's responses.
//
// Layering note: ISSUE 8 sketched this next to dag/serialize, but
// DelaySchedule is a core type and dag sits *below* core in the link order —
// so the round trip lives here, spelled like dag/serialize's job-spec format
// (comma records, one per line, # comments).
//
// Format (version 1):
//   plan,v1
//   delay,<stage>,<seconds>
//   stage,<stage>,<ready>,<submitted>,<read_done>,<compute_done>,<finish>
//   makespan,<seconds>
//   jct,<seconds>
//   search,<evaluations>,<memo_hits>
//
// Doubles are printed with 17 significant digits, which round-trips IEEE
// binary64 exactly: load(save(s)) reproduces every field bit for bit (the
// paths decomposition is derivable from the DAG and is not persisted).
// Unknown versions and malformed records come back as a ds::Status error —
// a stale cache file must never crash the daemon that finds it.
#pragma once

#include <iosfwd>
#include <string>

#include "core/delay_calculator.h"
#include "util/json.h"
#include "util/status.h"

namespace ds::core {

inline constexpr int kPlanFormatVersion = 1;

void save_plan(const DelaySchedule& plan, std::ostream& out);
std::string save_plan_text(const DelaySchedule& plan);

// Parses a plan record; `out` is only modified on success.
Status load_plan(std::istream& in, DelaySchedule* out);
Status load_plan_text(const std::string& text, DelaySchedule* out);

// The same schedule as a JSON object (delays, timeline, makespan/JCT,
// search counters) — what `delaystage_cli serve` embeds in its responses.
void plan_to_json(const DelaySchedule& plan, std::ostream& out);

// --- NDJSON request protocol (version 1) ------------------------------------
//
// `delaystage_cli serve` and `delaystage_cli sched --jobs-in` both consume
// newline-delimited JSON requests, one object per line. Every request MAY
// carry a "v" version field:
//   * absent          → treated as version 1 (the first shipped protocol)
//   * "v": 1          → version 1
//   * anything else   → the request is rejected with a ds::Status error,
//     surfaced as an {"v": 1, "id": …, "error": "…"} response line; the
//     stream keeps going (one bad request never kills the server).
// Unknown fields are ignored (forward tolerance): clients may attach extra
// metadata without breaking older servers. Every response line carries
// "v": 1.
//
// serve — plan requests (store/daemon.cpp):
//   {"v": 1, "id": …, "spec": "<job-spec text>", "cluster": "three_node",
//    "workers": N, "executors": N, "storage_nodes": N, "congestion": β,
//    "quantile": q}
//   {"v": 1, "id": …, "cmd": "stats" | "save"}
// sched — job submissions (service/ndjson.h):
//   {"v": 1, "workload": "lda" | "spec": "<job-spec text>", "scale": 1.0,
//    "arrival": 12.5, "priority": 0}
inline constexpr int kNdjsonProtocolVersion = 1;

// Validates a parsed request's "v" field against kNdjsonProtocolVersion
// (absent = version 1, non-numeric or unsupported = error).
Status check_ndjson_version(const json::Value& request);

}  // namespace ds::core
