// Algorithm 1 — the DelayStage stage delay scheduling strategy.
//
// Organise the parallel stages into execution paths, visit paths in
// descending order of (solo) path time, and for each not-yet-scheduled stage
// scan candidate delays x̂_k ∈ [l_k, u_k] on a slotted grid, keeping the
// delay that minimises the makespan of the parallel-stage region as computed
// by the interference-aware ScheduleEvaluator.
//
// Delays here are *relative to stage readiness* (all parents complete),
// matching the prototype's sleep inside submitStage(). This makes
// constraints (5)–(7) hold by construction: x_k >= 0 is the grid's lower
// bound, and a stage physically cannot be submitted before its parents
// finish. l_k = 0 therefore corresponds to the paper's l_k = x_j + t_j, and
// u_k is the current makespan T_max exactly as in line 10.
#pragma once

#include <cstdint>

#include "core/evaluator.h"
#include "core/options.h"
#include "dag/paths.h"
#include "util/status.h"

namespace ds::core {

enum class PathOrder { kDescending, kRandom, kAscending };

// CommonOptions supplies:
//   threads — planner workers: candidate grids and the multi-start restarts
//     are evaluated concurrently; <= 0 = hardware concurrency. The result is
//     bit-identical for every thread count: candidates land in per-index
//     slots and every argmin reduction runs sequentially in grid order (ties
//     break towards the smallest x, exactly like the sequential scan).
//   seed — used by PathOrder::kRandom only.
//   obs — planner search counters (planner.evaluations, planner.memo_hits)
//     and wall-clock phase spans (compute/restart/scan).
struct CalculatorOptions : CommonOptions {
  PathOrder order = PathOrder::kDescending;
  // Candidate-delay grid width (the paper's "one second per slot").
  Seconds step = 1.0;
  // Evaluator slot width.
  Seconds slot = 1.0;
  // Bound the candidate count per stage: scan a coarse grid of at most
  // `coarse_candidates` points, then refine around the best with `step`.
  // Keeps the per-stage work constant, preserving Alg. 1's ~linear scaling
  // in |K| (Fig. 15). Set false for the paper's exhaustive slotted scan.
  bool coarse_to_fine = true;
  int coarse_candidates = 32;
  std::size_t max_paths = 512;
  // Number of passes over the path list. Pass 1 is Alg. 1 verbatim; further
  // passes re-scan each stage with the others fixed (coordinate descent),
  // catching joint delays the single greedy pass cannot see.
  int sweeps = 2;
  // Cache delay-vector scores across the search. Alg. 1 re-baselines each
  // stage at x = 0 (an already-scored vector) and the fine-refinement pass
  // re-visits its own coarse best; the memo answers both without
  // re-simulating. Scores are pure in the delay vector, so this never
  // changes the result.
  bool memoize = true;
  // Risk posture of the evaluator's perf model (quantile target, speculation
  // truncation). Defaults reproduce the legacy mean estimates bit-exactly.
  ModelOptions model;
};

// Validates field combinations (positive grid widths, a sane candidate
// budget, a model quantile in range, …). The DelayCalculator constructor
// enforces this (throwing CheckError with the same message); CLIs call it
// up front to print a friendly `error: …` instead.
Status validate(const CalculatorOptions& options);

struct DelaySchedule {
  // x_k per stage (0 for sequential stages and undelayed parallel stages).
  std::vector<Seconds> delay;
  Seconds predicted_makespan = -1;  // parallel-region end under this X
  Seconds predicted_jct = -1;
  // Per-stage predicted timeline under `delay` (the evaluator's slotted
  // simulation of the chosen schedule, indexed by StageId). Each entry
  // carries the model's per-term breakdown — network fetch is
  // [submitted, read_done), compute is [read_done, compute_done), shuffle
  // write is [compute_done, finish) — which is what the model-drift
  // analytics (obs/analytics) compare against an executed run.
  std::vector<StageTimeline> predicted_stages;
  std::vector<dag::ExecutionPath> paths;  // the decomposition used
  // Search-cost counters: slotted simulations actually run, and candidate
  // scores answered from the memo instead.
  std::uint64_t evaluations = 0;
  std::uint64_t memo_hits = 0;
};

class DelayCalculator {
 public:
  explicit DelayCalculator(const JobProfile& profile,
                           CalculatorOptions options = {});

  DelaySchedule compute() const;

 private:
  const JobProfile& profile_;
  CalculatorOptions opt_;
};

const char* to_string(PathOrder order);

}  // namespace ds::core
