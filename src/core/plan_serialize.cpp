#include "core/plan_serialize.h"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace ds::core {

namespace {

// 17 significant digits round-trip any binary64 exactly.
constexpr int kRoundTripDigits = std::numeric_limits<double>::max_digits10;

Status bad(int lineno, const std::string& what) {
  return Status::error("plan record line " + std::to_string(lineno) + ": " +
                       what);
}

bool field_double(const std::vector<std::string>& f, std::size_t i,
                  double& out) {
  return i < f.size() && parse_double(trim(f[i]), out);
}

bool field_index(const std::vector<std::string>& f, std::size_t i,
                 std::uint64_t& out) {
  return i < f.size() && parse_u64(trim(f[i]), out);
}

}  // namespace

void save_plan(const DelaySchedule& plan, std::ostream& out) {
  out.precision(kRoundTripDigits);
  out << "plan,v" << kPlanFormatVersion << '\n';
  for (std::size_t k = 0; k < plan.delay.size(); ++k)
    out << "delay," << k << ',' << plan.delay[k] << '\n';
  for (std::size_t k = 0; k < plan.predicted_stages.size(); ++k) {
    const StageTimeline& t = plan.predicted_stages[k];
    out << "stage," << k << ',' << t.ready << ',' << t.submitted << ','
        << t.read_done << ',' << t.compute_done << ',' << t.finish << '\n';
  }
  out << "makespan," << plan.predicted_makespan << '\n';
  out << "jct," << plan.predicted_jct << '\n';
  out << "search," << plan.evaluations << ',' << plan.memo_hits << '\n';
}

std::string save_plan_text(const DelaySchedule& plan) {
  std::ostringstream os;
  save_plan(plan, os);
  return os.str();
}

Status load_plan(std::istream& in, DelaySchedule* out) {
  DelaySchedule plan;
  std::string line;
  int lineno = 0;
  bool versioned = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto f = split(t, ',');
    const std::string_view kind = trim(f[0]);

    if (!versioned) {
      // The header must come first; anything else is not a plan record.
      if (kind != "plan" || f.size() != 2)
        return bad(lineno, "expected 'plan,v" +
                               std::to_string(kPlanFormatVersion) +
                               "' header");
      const std::string_view v = trim(f[1]);
      std::uint64_t version = 0;
      if (v.size() < 2 || v[0] != 'v' || !parse_u64(v.substr(1), version))
        return bad(lineno, "malformed version '" + std::string(v) + "'");
      if (version != static_cast<std::uint64_t>(kPlanFormatVersion))
        return Status::error(
            "plan record is format version " + std::to_string(version) +
            " but this build reads version " +
            std::to_string(kPlanFormatVersion) + " — refusing to guess");
      versioned = true;
      continue;
    }

    if (kind == "delay") {
      std::uint64_t k = 0;
      double x = 0;
      if (f.size() != 3 || !field_index(f, 1, k) || !field_double(f, 2, x))
        return bad(lineno, "delay,<stage>,<seconds>");
      if (plan.delay.size() <= k) plan.delay.resize(k + 1, 0.0);
      plan.delay[k] = x;
    } else if (kind == "stage") {
      std::uint64_t k = 0;
      StageTimeline tl;
      if (f.size() != 7 || !field_index(f, 1, k) ||
          !field_double(f, 2, tl.ready) || !field_double(f, 3, tl.submitted) ||
          !field_double(f, 4, tl.read_done) ||
          !field_double(f, 5, tl.compute_done) ||
          !field_double(f, 6, tl.finish))
        return bad(lineno, "stage,<stage>,<ready>,<submitted>,<read_done>,"
                           "<compute_done>,<finish>");
      if (plan.predicted_stages.size() <= k)
        plan.predicted_stages.resize(k + 1);
      plan.predicted_stages[k] = tl;
    } else if (kind == "makespan") {
      if (f.size() != 2 || !field_double(f, 1, plan.predicted_makespan))
        return bad(lineno, "makespan,<seconds>");
    } else if (kind == "jct") {
      if (f.size() != 2 || !field_double(f, 1, plan.predicted_jct))
        return bad(lineno, "jct,<seconds>");
    } else if (kind == "search") {
      if (f.size() != 3 || !field_index(f, 1, plan.evaluations) ||
          !field_index(f, 2, plan.memo_hits))
        return bad(lineno, "search,<evaluations>,<memo_hits>");
    } else {
      return bad(lineno, "unknown record '" + std::string(kind) + "'");
    }
  }
  if (!versioned) return Status::error("plan record is empty (no header)");
  *out = std::move(plan);
  return Status::ok();
}

Status load_plan_text(const std::string& text, DelaySchedule* out) {
  std::istringstream is(text);
  return load_plan(is, out);
}

void plan_to_json(const DelaySchedule& plan, std::ostream& out) {
  out.precision(kRoundTripDigits);
  out << "{\"version\": " << kPlanFormatVersion << ", \"delays\": [";
  for (std::size_t k = 0; k < plan.delay.size(); ++k)
    out << (k ? ", " : "") << plan.delay[k];
  out << "], \"stages\": [";
  for (std::size_t k = 0; k < plan.predicted_stages.size(); ++k) {
    const StageTimeline& t = plan.predicted_stages[k];
    out << (k ? ", " : "") << "{\"ready\": " << t.ready
        << ", \"submitted\": " << t.submitted
        << ", \"read_done\": " << t.read_done
        << ", \"compute_done\": " << t.compute_done
        << ", \"finish\": " << t.finish << "}";
  }
  out << "], \"predicted_makespan_s\": " << plan.predicted_makespan
      << ", \"predicted_jct_s\": " << plan.predicted_jct
      << ", \"evaluations\": " << plan.evaluations
      << ", \"memo_hits\": " << plan.memo_hits << "}";
}

Status check_ndjson_version(const json::Value& request) {
  const json::Value* v = request.find("v");
  if (v == nullptr) return Status::ok();  // absent = version 1
  if (!v->is_number())
    return Status::error("\"v\" must be a number (protocol version)");
  const auto version = v->int_or(-1);
  if (version != kNdjsonProtocolVersion) {
    std::ostringstream os;
    os << "unsupported protocol version " << version << " (this server speaks v"
       << kNdjsonProtocolVersion << ")";
    return Status::error(os.str());
  }
  return Status::ok();
}

}  // namespace ds::core
