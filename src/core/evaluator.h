// Slotted, interference-aware schedule evaluation.
//
// §3.2 shows the completion times under a delay assignment X have no usable
// closed form because the sharing factors f_w_τ(X) depend on the very
// completion times being computed. Algorithm 1 sidesteps this by assuming
// slotted time ("e.g., one second per slot"): this evaluator marches the
// whole stage set through its read/compute/write phases slot by slot,
// dividing each resource equally among the stages occupying it in that slot.
// One evaluation yields every stage's completion time — exactly the "update
// the completion time of the subsequent stages and of the scheduled stages
// interfering with stage k" step (Alg. 1 line 14).
//
// This is the planner's innermost loop (Alg. 1 runs it for every candidate
// delay), so it is built as a fast path:
//   * every per-stage model constant (read/compute/write work, straggler
//     factor and tail, usable parallelism) is computed once at construction;
//   * all per-evaluation state lives in a reusable EvalScratch arena — a
//     warm evaluate()/score() call allocates nothing;
//   * slots in which no stage's allocation can change (delay gaps, straggler
//     barriers, long constant-rate compute/write stretches) are fast-
//     forwarded by applying the identical per-slot arithmetic in a tight
//     loop instead of re-deriving the whole allocation, so results stay
//     bit-identical to the naive slot-by-slot march;
//   * a ScoreMemo lets callers skip re-simulating a delay vector they have
//     already scored (Alg. 1 re-baselines at x=0 and its refinement pass
//     re-visits coarse-grid points constantly).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/perf_model.h"
#include "core/profile.h"

namespace ds {
class ThreadPool;
}

namespace ds::core {

struct StageTimeline {
  Seconds ready = -1;      // all parents finished
  Seconds submitted = -1;  // ready + x_k (quantised to the slot grid)
  Seconds read_done = -1;
  Seconds compute_done = -1;
  Seconds finish = -1;
};

struct Evaluation {
  std::vector<StageTimeline> stages;  // indexed by StageId
  Seconds jct = -1;
  // End of the parallel-stage region: max finish over K (the quantity
  // Alg. 1 greedily minimises).
  Seconds parallel_end = -1;
};

// Model-score of a delay assignment: the parallel-region makespan Alg. 1
// minimises (Eq. 4), with JCT as a tie-break so equal-makespan schedules
// still prefer the shorter job.
struct Score {
  Seconds makespan = -1;
  Seconds jct = -1;
  bool better_than(const Score& o) const {
    if (makespan < o.makespan - 1e-9) return true;
    if (makespan > o.makespan + 1e-9) return false;
    return jct < o.jct - 1e-9;
  }
};

// Reusable per-evaluation arena. One instance per thread: evaluate()/score()
// reuse its buffers call over call, so a warm evaluation performs no heap
// allocation. Not thread-safe; cheap to default-construct.
class EvalScratch {
 public:
  EvalScratch();
  ~EvalScratch();
  EvalScratch(EvalScratch&&) noexcept;
  EvalScratch& operator=(EvalScratch&&) noexcept;

 private:
  friend class ScheduleEvaluator;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Thread-safe delay-vector → Score cache. Scores depend only on the
// (evaluator, delay) pair, so a hit returns exactly what a fresh simulation
// would; sharing one memo across planner threads therefore never changes
// results, it only removes duplicate work. Keyed by the full delay vector.
class ScoreMemo {
 public:
  std::optional<Score> find(const std::vector<Seconds>& delay) const;
  // Inserts (moves the key); keeps the existing entry if one appeared
  // concurrently.
  void insert(std::vector<Seconds> delay, const Score& score);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t size() const;

 private:
  struct VecHash {
    std::size_t operator()(const std::vector<Seconds>& v) const;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::vector<Seconds>, Score, VecHash> map_;
  mutable std::atomic<std::uint64_t> hits_{0};
};

class ScheduleEvaluator {
 public:
  // `model` selects the risk posture of the underlying PerfModel (mean vs
  // quantile target, speculation truncation); the default reproduces the
  // legacy mean-of-max estimates bit-exactly.
  explicit ScheduleEvaluator(const JobProfile& profile, Seconds slot = 1.0,
                             ModelOptions model = {});

  // `delay[k]` = x_k relative to stage readiness; missing entries are 0.
  // Sequential stages may carry delays too (Alg. 1 never assigns them any).
  // The scratch-less overload uses a per-thread arena, so it is safe to call
  // concurrently from many threads on one evaluator.
  Evaluation evaluate(const std::vector<Seconds>& delay) const;
  Evaluation evaluate(const std::vector<Seconds>& delay,
                      EvalScratch& scratch) const;

  // Score-only evaluation: no Evaluation is materialised and a warm scratch
  // makes the call allocation-free. With a memo, an already-scored vector is
  // answered from the cache without simulating.
  Score score(const std::vector<Seconds>& delay, EvalScratch& scratch,
              ScoreMemo* memo = nullptr) const;

  // Incremental candidate scan (the planner's inner grid, Alg. 1 lines
  // 10–15): scores `delay` with `delay[k] = x` for every x in `xs`
  // (ascending). The simulation prefix before stage k's admission is
  // identical for every candidate, so one base simulation advances with a
  // pause barrier at each successive admission boundary and snapshots there;
  // each candidate then only simulates its suffix (in parallel when a pool
  // is given). Scores are bit-identical to scoring each vector with score(),
  // for any pool size, and the memo is consulted/filled per candidate.
  void scan(const std::vector<Seconds>& delay, dag::StageId k,
            const std::vector<Seconds>& xs, std::vector<Score>& out,
            ScoreMemo* memo = nullptr, ThreadPool* pool = nullptr) const;

  Seconds slot() const { return slot_; }
  const PerfModel& model() const { return model_; }

  // Testing hook: disable the fast-forward path so the equivalence of the
  // event-driven march and the naive slot-by-slot march can be asserted.
  void set_fast_forward(bool on) { fast_forward_ = on; }

  // Slotted simulations actually run on this evaluator (memo hits and other
  // cache shortcuts excluded). Cumulative across threads.
  std::uint64_t evaluations() const {
    return evals_.load(std::memory_order_relaxed);
  }
  // Slot boundaries fully processed vs fast-forwarded. Cumulative across
  // threads; their sum is the slot count a naive march would have paid.
  std::uint64_t slots_stepped() const {
    return stepped_.load(std::memory_order_relaxed);
  }
  std::uint64_t slots_skipped() const {
    return skipped_.load(std::memory_order_relaxed);
  }

 private:
  // Per-stage model constants, hoisted out of the per-evaluation loop.
  struct StageConst {
    Bytes read_total = 0;
    Seconds compute_total = 0;
    Bytes write_total = 0;
    double par_cap = 0;
    int num_tasks = 0;
    Seconds tail = 0;
    double straggler_quarter = 1;  // straggler^0.25 (read-span inflation)
    int num_parents = 0;
    bool is_source = false;
  };

  void run(const std::vector<Seconds>& delay, EvalScratch::Impl& sc) const;
  void init_run(const std::vector<Seconds>& delay,
                EvalScratch::Impl& sc) const;
  // Advances the simulation until completion (returns true, finalising jct /
  // parallel_end and flushing counters) or — when pause_k >= 0 — until the
  // boundary that would admit stage pause_k (returns false with the state
  // parked right before step 1 of that boundary).
  bool march(const std::vector<Seconds>& delay, EvalScratch::Impl& sc,
             dag::StageId pause_k) const;

  const JobProfile& profile_;
  PerfModel model_;
  Seconds slot_;
  std::vector<StageConst> consts_;
  std::vector<dag::StageId> k_set_;
  Seconds budget_base_ = 0;
  // Cluster-level rates (identical every evaluation).
  double cluster_execs_ = 0;
  BytesPerSec worker_net_ = 0;
  BytesPerSec storage_net_ = 0;
  BytesPerSec cluster_disk_ = 0;
  double beta_ = 0;
  bool fast_forward_ = true;
  mutable std::atomic<std::uint64_t> evals_{0};
  mutable std::atomic<std::uint64_t> stepped_{0};
  mutable std::atomic<std::uint64_t> skipped_{0};
};

}  // namespace ds::core
