// Slotted, interference-aware schedule evaluation.
//
// §3.2 shows the completion times under a delay assignment X have no usable
// closed form because the sharing factors f_w_τ(X) depend on the very
// completion times being computed. Algorithm 1 sidesteps this by assuming
// slotted time ("e.g., one second per slot"): this evaluator marches the
// whole stage set through its read/compute/write phases slot by slot,
// dividing each resource equally among the stages occupying it in that slot.
// One evaluation yields every stage's completion time — exactly the "update
// the completion time of the subsequent stages and of the scheduled stages
// interfering with stage k" step (Alg. 1 line 14).
#pragma once

#include <vector>

#include "core/perf_model.h"
#include "core/profile.h"

namespace ds::core {

struct StageTimeline {
  Seconds ready = -1;      // all parents finished
  Seconds submitted = -1;  // ready + x_k (quantised to the slot grid)
  Seconds read_done = -1;
  Seconds compute_done = -1;
  Seconds finish = -1;
};

struct Evaluation {
  std::vector<StageTimeline> stages;  // indexed by StageId
  Seconds jct = -1;
  // End of the parallel-stage region: max finish over K (the quantity
  // Alg. 1 greedily minimises).
  Seconds parallel_end = -1;
};

class ScheduleEvaluator {
 public:
  explicit ScheduleEvaluator(const JobProfile& profile, Seconds slot = 1.0);

  // `delay[k]` = x_k relative to stage readiness; missing entries are 0.
  // Sequential stages may carry delays too (Alg. 1 never assigns them any).
  Evaluation evaluate(const std::vector<Seconds>& delay) const;

  Seconds slot() const { return slot_; }
  const PerfModel& model() const { return model_; }

 private:
  const JobProfile& profile_;
  PerfModel model_;
  Seconds slot_;
};

}  // namespace ds::core
