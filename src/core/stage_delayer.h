// Stage delayer — the prototype's second module (§4.2).
//
// The delay-time calculator stores X in Spark's metrics.properties file; the
// delayer reads it back and sleeps each stage's submission inside
// DAGScheduler.submitStage(). Here the round-trip is reproduced literally
// (properties serialisation included, so a schedule can be persisted and
// reloaded), and "sleeping the submission" becomes an engine SubmissionPlan.
#pragma once

#include <string>

#include "core/delay_calculator.h"
#include "engine/plan.h"

namespace ds::core {

class StageDelayer {
 public:
  explicit StageDelayer(DelaySchedule schedule);

  const DelaySchedule& schedule() const { return schedule_; }

  // The plan the execution engine applies: postpone each stage's submission
  // by x_k after readiness.
  engine::SubmissionPlan plan() const;

  // metrics.properties-style round trip:
  //   spark.delaystage.stage.<id>=<seconds>
  std::string to_properties() const;
  static DelaySchedule from_properties(const std::string& text);

 private:
  DelaySchedule schedule_;
};

}  // namespace ds::core
