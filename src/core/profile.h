// Job profile: the model parameters DelayStage's calculator consumes.
//
// In the paper's prototype these come from profiling a 10% sample of the job
// on one executor (iSpot-style) plus netperf/iotop measurements of the
// cluster (§4.2). Here the same quantities are extracted from the volumetric
// workload description and the cluster spec — i.e., the calculator sees only
// what a real profiler would give it, never the engine's internals.
#pragma once

#include <algorithm>

#include "dag/job.h"
#include "sim/cluster.h"

namespace ds::core {

struct ClusterProfile {
  int num_workers = 0;
  int executors_per_worker = 0;      // ε_w
  BytesPerSec nic_bw = 0;            // B: measured average NIC bandwidth
  BytesPerSec disk_bw = 0;           // D
  int num_storage_nodes = 0;         // HDFS nodes serving source-stage input
  // Measured aggregate egress of the storage tier; 0 means "estimate as
  // num_storage_nodes × nic_bw" (nominal provisioning).
  BytesPerSec storage_net_bw = 0;
  // Cross-stage contention penalty β (measured, like B, by profiling
  // concurrent transfers): g stages interleaving on a port see aggregate
  // capacity C / (1 + β·(g − 1)).
  double congestion_penalty = 0.0;

  int total_executors() const { return num_workers * executors_per_worker; }
};

struct JobProfile {
  const dag::JobDag* dag = nullptr;  // not owned; must outlive the profile
  ClusterProfile cluster;
  // Multiplicative correction on every stage's compute time (Eq. 1's
  // processing term). 1.0 = the profiled process rates are trusted as-is;
  // online calibration (core/calibration.h) raises it when observed compute
  // phases run consistently longer than predicted. Multiplying by exactly
  // 1.0 is a bit-exact identity, so an uncalibrated profile plans exactly
  // as before.
  double compute_time_scale = 1.0;

  // "Profile" a job against a cluster spec: the NIC figure is the mean of
  // the provisioned range (what repeated netperf probes would average to).
  static JobProfile from(const dag::JobDag& dag, const sim::ClusterSpec& spec) {
    JobProfile p;
    p.dag = &dag;
    p.cluster.num_workers = spec.num_workers;
    p.cluster.executors_per_worker = spec.executors_per_worker;
    p.cluster.nic_bw = 0.5 * (spec.nic_bw_min + spec.nic_bw_max);
    p.cluster.disk_bw = spec.disk_bw;
    p.cluster.num_storage_nodes = spec.num_storage_nodes;
    p.cluster.congestion_penalty = spec.congestion_penalty;
    return p;
  }

  // Profile against a *live* cluster: use the bandwidths netperf would
  // actually measure (the per-node draws) instead of nominal provisioning.
  static JobProfile from_measured(const dag::JobDag& dag,
                                  const sim::Cluster& cluster) {
    JobProfile p = from(dag, cluster.spec());
    BytesPerSec worker_sum = 0;
    for (int w = 0; w < cluster.num_workers(); ++w)
      worker_sum += cluster.nic_bw(cluster.worker(w));
    p.cluster.nic_bw = worker_sum / cluster.num_workers();
    // HDFS stripes blocks in proportion to node capacity, so the tier's
    // effective service is the measured egress sum (the max_i(s_i/B_i) term
    // of Eq. 1 balances out across proportional stripes).
    BytesPerSec storage_sum = 0;
    for (int i = 0; i < cluster.num_storage_nodes(); ++i)
      storage_sum += cluster.nic_bw(cluster.storage_node(i));
    p.cluster.storage_net_bw = storage_sum;
    return p;
  }
};

}  // namespace ds::core
