#include "engine/job_run.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "metrics/stats.h"
#include "util/check.h"

namespace ds::engine {

namespace {
// Upper bound on node ids packed into push keys.
constexpr std::uint64_t kMaxNodes = 1u << 20;
}  // namespace

JobRun::JobRun(sim::Cluster& cluster, const dag::JobDag& dag, RunOptions opt)
    : cluster_(cluster),
      dag_(dag),
      opt_(std::move(opt)),
      rng_(opt_.seed),
      trace_(obs::tracer(opt_.obs)),
      flight_(obs::flight(opt_.obs)),
      m_tasks_launched_(obs::counter(opt_.obs, "engine.tasks_launched")),
      m_tasks_finished_(obs::counter(opt_.obs, "engine.tasks_finished")),
      m_task_aborts_(obs::counter(opt_.obs, "engine.task_aborts")),
      m_fetch_failures_(obs::counter(opt_.obs, "engine.fetch_failures")),
      m_node_crashes_(obs::counter(opt_.obs, "engine.node_crashes")),
      m_resubmissions_(obs::counter(opt_.obs, "engine.stage_resubmissions")),
      m_speculative_(obs::counter(opt_.obs, "engine.speculative_copies")),
      m_stages_finished_(obs::counter(opt_.obs, "engine.stages_finished")),
      m_replans_(obs::counter(opt_.obs, "engine.replans")),
      m_task_seconds_(obs::histogram(opt_.obs, "engine.task_seconds",
                                     obs::exponential_buckets(1.0, 1.6, 24))) {
  DS_CHECK_MSG(static_cast<std::uint64_t>(cluster.total_nodes()) < kMaxNodes,
               "cluster too large for push keys");
  DS_CHECK_MSG(opt_.task_failure_rate >= 0 && opt_.task_failure_rate < 1.0,
               "task_failure_rate must be in [0, 1)");
  DS_CHECK_MSG(opt_.max_attempts >= 1, "max_attempts must be >= 1");
  DS_CHECK_MSG(opt_.max_stage_resubmissions >= 0,
               "max_stage_resubmissions must be >= 0");
  DS_CHECK_MSG(!(opt_.plan.pipelined_shuffle && opt_.task_failure_rate > 0),
               "fault injection is incompatible with pipelined shuffle");
  DS_CHECK_MSG(!(opt_.plan.pipelined_shuffle && opt_.faults != nullptr),
               "node fault injection is incompatible with pipelined shuffle");
  DS_CHECK_MSG(!(opt_.plan.pipelined_shuffle && opt_.speculation),
               "speculation is incompatible with pipelined shuffle");
  DS_CHECK_MSG(opt_.speculation_threshold > 1.0,
               "speculation threshold must exceed 1");
  DS_CHECK_MSG(!opt_.replan.enabled || opt_.replanner,
               "replanning enabled but no replanner installed");
  DS_CHECK_MSG(opt_.replan.max_replans >= 0, "max_replans must be >= 0");
  DS_CHECK_MSG(opt_.replan.cooldown >= 0, "replan cooldown must be >= 0");
  if (opt_.faults != nullptr) {
    DS_CHECK_MSG(&opt_.faults->cluster() == &cluster_,
                 "fault injector drives a different cluster");
  }
  const auto n = static_cast<std::size_t>(dag_.num_stages());
  DS_CHECK_MSG(n > 0, "empty job");
  st_.resize(n);
  result_.stages.resize(n);
  task_base_.resize(n);
  occupancy_.resize(n);
  int total_tasks = 0;
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    const dag::Stage& spec = dag_.stage(s);
    auto& state = st(s);
    const auto nt = static_cast<std::size_t>(spec.num_tasks);
    state.remaining_parents = static_cast<int>(dag_.parents(s).size());
    state.remaining_tasks = spec.num_tasks;
    state.output_at_node.assign(static_cast<std::size_t>(cluster.total_nodes()), 0.0);
    state.inflight_push.assign(nt, 0);
    state.read_started.assign(nt, false);
    state.read_finished.assign(nt, false);
    state.launched.assign(nt, false);
    state.task_done.assign(nt, false);
    state.spec_requested.assign(nt, false);
    state.needs_requeue.assign(nt, false);
    state.lost.assign(nt, false);
    state.enqueue_epoch.assign(nt, 0);
    state.aborts.assign(nt, 0);
    state.success_span.assign(nt, -1.0);
    state.attempts.assign(nt, {});

    // Per-task skew multipliers: lognormal(sigma), renormalised to mean
    // exactly 1 so stage totals always match the spec volumes.
    state.mult.assign(nt, 1.0);
    if (spec.task_skew > 0 && spec.num_tasks > 1) {
      double sum = 0;
      for (auto& m : state.mult) {
        m = rng_.lognormal(0.0, spec.task_skew);
        sum += m;
      }
      const double scale = static_cast<double>(spec.num_tasks) / sum;
      for (auto& m : state.mult) m *= scale;
    }

    // AggShuffle pre-assignment: round-robin over workers, offset by stage id
    // so concurrent stages do not all pile onto worker 0 first.
    if (opt_.plan.pipelined_shuffle) {
      state.planned_node.resize(nt);
      for (int t = 0; t < spec.num_tasks; ++t) {
        state.planned_node[static_cast<std::size_t>(t)] =
            cluster_.worker((t + s) % cluster_.num_workers());
      }
    }

    result_.stages[static_cast<std::size_t>(s)].stage = s;
    task_base_[static_cast<std::size_t>(s)] = total_tasks;
    total_tasks += spec.num_tasks;
  }
  result_.tasks.resize(static_cast<std::size_t>(total_tasks));
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    for (int t = 0; t < dag_.stage(s).num_tasks; ++t) {
      auto& tr = task(s, t);
      tr.stage = s;
      tr.index = t;
    }
  }
  stages_remaining_ = dag_.num_stages();
  if (trace_ != nullptr) {
    // Track layout (see obs.h): stage lifecycle on pid 0 (one tid per
    // stage), each worker node's slot lanes on pid 1+n.
    trace_->set_process_name(obs::kJobPid, "stages");
    stage_trace_names_.resize(n);
    for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
      stage_trace_names_[static_cast<std::size_t>(s)] =
          trace_->intern(dag_.stage(s).name);
      trace_->set_thread_name(obs::kJobPid, s, dag_.stage(s).name);
    }
    lanes_.resize(static_cast<std::size_t>(cluster_.num_workers()));
    for (int w = 0; w < cluster_.num_workers(); ++w)
      trace_->set_process_name(node_pid(w), "worker " + std::to_string(w));
  }
  if (opt_.faults != nullptr) {
    fault_sub_ = opt_.faults->subscribe(
        [this](sim::NodeId w) { on_node_crashed(w); });
  }
}

JobRun::~JobRun() {
  if (occupancy_event_ != sim::kInvalidEvent) cluster_.sim().cancel(occupancy_event_);
  if (opt_.faults != nullptr) opt_.faults->unsubscribe(fault_sub_);
}

void JobRun::start() {
  DS_CHECK_MSG(!started_, "JobRun::start() called twice");
  started_ = true;
  dag_.topo_order();  // validates acyclicity up front
  flight_record(obs::FlightKind::kRunStart, dag::kNoStage,
                static_cast<double>(dag_.num_stages()),
                static_cast<double>(result_.tasks.size()));
  for (dag::StageId s : dag_.sources()) on_ready(s);
  if (opt_.record_occupancy) sample_occupancy();
}

void JobRun::flight_record(obs::FlightKind kind, dag::StageId s, double value,
                           double aux, const char* label) {
  if (flight_ == nullptr) return;
  obs::FlightRecord r;
  r.t = cluster_.sim().now();
  r.kind = kind;
  r.job = opt_.flight_job_id;
  r.stage = s == dag::kNoStage ? -1 : static_cast<std::int32_t>(s);
  r.label = label;
  r.value = value;
  r.aux = aux;
  flight_->record(r);
}

const JobResult& JobRun::result() const {
  DS_CHECK_MSG(result_.finished(), "job has not finished");
  return result_;
}

const metrics::TimeSeries& JobRun::occupancy(dag::StageId s) const {
  DS_CHECK_MSG(opt_.record_occupancy, "occupancy recording was not enabled");
  return occupancy_.at(static_cast<std::size_t>(s));
}

TaskRecord& JobRun::task(dag::StageId s, int t) {
  return result_.tasks[static_cast<std::size_t>(
      task_base_[static_cast<std::size_t>(s)] + t)];
}

std::uint64_t JobRun::push_key(int task, sim::NodeId src) {
  return static_cast<std::uint64_t>(task) * kMaxNodes +
         static_cast<std::uint64_t>(src);
}

int JobRun::acquire_lane(sim::NodeId w) {
  auto& lanes = lanes_[static_cast<std::size_t>(w)];
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (!lanes[i]) {
      lanes[i] = true;
      return static_cast<int>(i);
    }
  }
  // Speculative copies can briefly exceed executors_per_worker rows; grow.
  lanes.push_back(true);
  return static_cast<int>(lanes.size()) - 1;
}

void JobRun::release_lane(sim::NodeId w, int lane) {
  lanes_[static_cast<std::size_t>(w)][static_cast<std::size_t>(lane)] = false;
}

void JobRun::trace_phase(dag::StageId s, Attempt& at, const char* name) {
  const Seconds now = cluster_.sim().now();
  trace_->complete("task", name, at.phase_started, now - at.phase_started,
                   node_pid(at.node), at.lane, "stage",
                   static_cast<double>(s));
  at.phase_started = now;
}

void JobRun::on_ready(dag::StageId s) {
  if (failed_) return;
  rec(s).ready = cluster_.sim().now();
  const Seconds delay = opt_.plan.delay_for(s);
  DS_CHECK_MSG(delay >= 0, "negative delay for stage " << s);
  if (trace_ != nullptr)
    trace_->instant("stage", "ready", rec(s).ready, obs::kJobPid, s);
  // The event id is kept so a mid-job replan can cancel the pending
  // submission and reschedule it under the new delay.
  st(s).submit_event =
      cluster_.sim().schedule_after(delay, [this, s] { submit_stage(s); });
}

void JobRun::submit_stage(dag::StageId s) {
  if (failed_) return;
  auto& state = st(s);
  DS_CHECK(!state.submitted);
  state.submitted = true;
  state.submit_event = sim::kInvalidEvent;
  rec(s).submitted = cluster_.sim().now();
  if (trace_ != nullptr) {
    const Seconds delay = rec(s).submitted - rec(s).ready;
    if (delay > 0)
      trace_->complete("stage", "delay", rec(s).ready, delay, obs::kJobPid, s,
                       "delay_s", delay);
    trace_->instant("stage", "submit", rec(s).submitted, obs::kJobPid, s);
  }
  // A crash during the submission delay may have invalidated parent output
  // this stage was about to read: park everything and demand the re-run.
  if (!parents_data_ready(s)) {
    for (int t = 0; t < dag_.stage(s).num_tasks; ++t) park_task(s, t);
    demand_parents(s);
    return;
  }
  for (int t = 0; t < dag_.stage(s).num_tasks; ++t) enqueue_task(s, t);
}

sim::NodeId JobRun::preferred_node(dag::StageId s) const {
  if (dag_.parents(s).empty()) return -1;  // HDFS input: no worker is local
  Bytes best = 0;
  sim::NodeId node = -1;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    Bytes here = 0;
    for (dag::StageId p : dag_.parents(s))
      here += st_[static_cast<std::size_t>(p)]
                  .output_at_node[static_cast<std::size_t>(w)];
    if (here > best) {
      best = here;
      node = cluster_.worker(w);
    }
  }
  return node;
}

void JobRun::enqueue_task(dag::StageId s, int t) {
  auto& state = st(s);
  const int epoch = ++state.enqueue_epoch[static_cast<std::size_t>(t)];
  if (opt_.plan.pipelined_shuffle) {
    cluster_.executors().request(
        [this, s, t](sim::NodeId w) { launch_attempt(s, t, 0, w); },
        state.planned_node[static_cast<std::size_t>(t)],
        opt_.plan.priority_for(s));
    return;
  }
  const sim::NodeId pref = opt_.locality_wait > 0 ? preferred_node(s) : -1;
  if (pref < 0) {
    cluster_.executors().request(
        [this, s, t](sim::NodeId w) { launch_attempt(s, t, 0, w); }, -1,
        opt_.plan.priority_for(s));
    return;
  }
  // Delay scheduling (task level): wait for the preferred node, then give
  // up and take any slot. The epoch guard retires this fallback if a fault
  // re-queued the task in the meantime (the retry has its own request).
  const sim::SlotRequestId req = cluster_.executors().request(
      [this, s, t](sim::NodeId w) { launch_attempt(s, t, 0, w); }, pref,
      opt_.plan.priority_for(s));
  cluster_.sim().schedule_after(opt_.locality_wait, [this, s, t, req, epoch] {
    if (failed_) return;
    auto& state2 = st(s);
    if (state2.enqueue_epoch[static_cast<std::size_t>(t)] != epoch) return;
    if (state2.launched[static_cast<std::size_t>(t)]) return;
    cluster_.executors().cancel(req);
    cluster_.executors().request(
        [this, s, t](sim::NodeId w) { launch_attempt(s, t, 0, w); }, -1,
        opt_.plan.priority_for(s));
  });
}

void JobRun::requeue_task(dag::StageId s, int t) {
  auto& state = st(s);
  ++state.enqueue_epoch[static_cast<std::size_t>(t)];
  cluster_.executors().request(
      [this, s, t](sim::NodeId w) { launch_attempt(s, t, 0, w); }, -1,
      opt_.plan.priority_for(s));
}

void JobRun::launch_attempt(dag::StageId s, int t, int a, sim::NodeId w) {
  auto& state = st(s);
  if (failed_ || state.task_done[static_cast<std::size_t>(t)]) {
    // Terminal job, or a speculative grant arriving after completion.
    cluster_.executors().release(w);
    return;
  }
  // A crash may have invalidated parent output between the slot request and
  // this grant. Give the slot back; a primary parks until the lost parent
  // partitions are regenerated, a speculative copy is simply abandoned.
  if (!parents_data_ready(s)) {
    cluster_.executors().release(w);
    if (a == 0) {
      if (!state.needs_requeue[static_cast<std::size_t>(t)]) park_task(s, t);
      demand_parents(s);
    } else {
      state.spec_requested[static_cast<std::size_t>(t)] = false;
    }
    return;
  }
  state.launched[static_cast<std::size_t>(t)] = true;
  auto& at = attempt(s, t, a);
  DS_CHECK(!at.live);
  at = Attempt{};
  at.live = true;
  at.node = w;
  at.started = cluster_.sim().now();
  m_tasks_launched_.inc();
  if (trace_ != nullptr) {
    at.lane = acquire_lane(w);
    at.phase_started = at.started;
  }

  auto& tr = task(s, t);
  tr.node = w;
  if (tr.attempts == 0) tr.launch = at.started;
  ++tr.attempts;
  auto& sr = rec(s);
  if (sr.first_launch < 0) sr.first_launch = tr.launch;
  ++state.slots_held;
  begin_read(s, t, a, w);
}

void JobRun::begin_read(dag::StageId s, int t, int a, sim::NodeId w) {
  auto& state = st(s);
  auto& at = attempt(s, t, a);
  if (a == 0) state.read_started[static_cast<std::size_t>(t)] = true;
  const dag::Stage& spec = dag_.stage(s);
  const double mult = state.mult[static_cast<std::size_t>(t)];

  // Per-source volumes this task must fetch.
  std::vector<std::pair<sim::NodeId, Bytes>> sources;
  if (dag_.parents(s).empty()) {
    // Source stage: input striped across the storage nodes (HDFS) in
    // proportion to their bandwidth — block placement balances load, so a
    // slow replica node holds correspondingly less of the hot data. With no
    // storage tier, the input lives striped across the workers; job input is
    // durable (replicated), so under fault injection it is re-striped over
    // whichever workers are currently alive.
    const int ns = cluster_.num_storage_nodes();
    const Bytes want = spec.input_per_task() * mult;
    if (ns > 0) {
      BytesPerSec total_bw = 0;
      for (int i = 0; i < ns; ++i)
        total_bw += cluster_.nic_bw(cluster_.storage_node(i));
      for (int i = 0; i < ns; ++i) {
        const sim::NodeId node = cluster_.storage_node(i);
        sources.emplace_back(node, want * cluster_.nic_bw(node) / total_bw);
      }
    } else {
      std::vector<sim::NodeId> holders;
      for (int i = 0; i < cluster_.num_workers(); ++i) {
        const sim::NodeId node = cluster_.worker(i);
        if (opt_.faults == nullptr || opt_.faults->alive(node))
          holders.push_back(node);
      }
      DS_CHECK_MSG(!holders.empty(), "no live input holders");
      for (const sim::NodeId node : holders)
        sources.emplace_back(node, want / static_cast<double>(holders.size()));
    }
  } else {
    // Shuffle read: this task's partition of every parent's output, located
    // where the parent tasks wrote it, minus anything AggShuffle already
    // pushed here (primary attempts only; speculation excludes pipelining).
    const double frac = mult / static_cast<double>(spec.num_tasks);
    for (dag::StageId p : dag_.parents(s)) {
      const auto& out = st(p).output_at_node;
      for (sim::NodeId i = 0; i < static_cast<sim::NodeId>(out.size()); ++i) {
        Bytes b = out[static_cast<std::size_t>(i)] * frac;
        if (b <= 0) continue;
        if (a == 0) {
          const auto it = state.push_committed.find(push_key(t, i));
          if (it != state.push_committed.end()) {
            const Bytes credit = std::min(b, it->second);
            b -= credit;
          }
        }
        if (b > sim::kFluidEps) sources.emplace_back(i, b);
      }
    }
  }

  int pending = static_cast<int>(sources.size());
  if (a == 0) pending += state.inflight_push[static_cast<std::size_t>(t)];
  at.pending_flows = pending;
  if (pending == 0) {
    finish_read(s, t, a);
    return;
  }
  for (const auto& [src, bytes] : sources) {
    const auto fi = at.flows.size();
    at.flows.push_back({0, src, false});
    at.flows[fi].id = cluster_.fabric().start_flow(
        {src, w, bytes, s, [this, s, t, a, fi] {
           auto& a2 = attempt(s, t, a);
           if (!a2.live) return;  // raced with a cancellation
           if (fi < a2.flows.size()) a2.flows[fi].done = true;
           flow_arrived(s, t, a);
         }});
  }
}

void JobRun::flow_arrived(dag::StageId s, int t, int a) {
  auto& at = attempt(s, t, a);
  if (!at.live) return;  // raced with a cancellation
  DS_CHECK_MSG(at.pending_flows > 0,
               "stray flow arrival for stage " << s << " task " << t);
  if (--at.pending_flows == 0) finish_read(s, t, a);
}

void JobRun::finish_read(dag::StageId s, int t, int a) {
  auto& state = st(s);
  auto& at = attempt(s, t, a);
  DS_CHECK(!at.read_done);
  at.read_done = true;
  at.flows.clear();
  if (a == 0) state.read_finished[static_cast<std::size_t>(t)] = true;
  auto& tr = task(s, t);
  tr.read_done = cluster_.sim().now();
  rec(s).last_read_done = std::max(rec(s).last_read_done, tr.read_done);
  if (trace_ != nullptr) trace_phase(s, at, "fetch");

  const dag::Stage& spec = dag_.stage(s);
  const Seconds compute = spec.compute_per_task() *
                          state.mult[static_cast<std::size_t>(t)] /
                          cluster_.speed(at.node);
  cluster_.begin_compute(at.node);
  at.computing = true;

  // Fault injection, task domain: every attempt (primary or speculative)
  // independently rolls the dice and may abort partway through its compute.
  // A task whose attempts abort max_attempts times fails the job.
  if (opt_.task_failure_rate > 0 && rng_.chance(opt_.task_failure_rate)) {
    const Seconds abort_at = compute * rng_.uniform(0.1, 0.9);
    at.compute_event = cluster_.sim().schedule_after(
        abort_at, [this, s, t, a] { on_attempt_failed(s, t, a); });
    return;
  }
  at.compute_event = cluster_.sim().schedule_after(
      compute, [this, s, t, a] { on_compute_done(s, t, a); });
}

void JobRun::on_attempt_failed(dag::StageId s, int t, int a) {
  auto& state = st(s);
  auto& at = attempt(s, t, a);
  DS_CHECK(at.live && at.computing);
  at.compute_event = sim::kInvalidEvent;  // the abort event just fired
  m_task_aborts_.inc();
  const int aborts = ++state.aborts[static_cast<std::size_t>(t)];
  kill_attempt(s, t, a, /*node_lost=*/false);
  if (a == 1) state.spec_requested[static_cast<std::size_t>(t)] = false;
  if (aborts >= opt_.max_attempts) {
    fail_job("stage " + std::to_string(s) + " task " + std::to_string(t) +
             " aborted " + std::to_string(aborts) + " times (max_attempts)");
    return;
  }
  // Re-run unless a sibling attempt is still carrying the task.
  if (!state.task_done[static_cast<std::size_t>(t)] &&
      !attempt(s, t, 0).live && !attempt(s, t, 1).live &&
      !state.needs_requeue[static_cast<std::size_t>(t)]) {
    park_task(s, t);
    pump_requeues(s);
  }
}

void JobRun::on_compute_done(dag::StageId s, int t, int a) {
  auto& at = attempt(s, t, a);
  DS_CHECK(at.live && at.computing);
  at.computing = false;
  at.compute_event = sim::kInvalidEvent;
  auto& tr = task(s, t);
  tr.compute_done = cluster_.sim().now();
  rec(s).last_compute_done = std::max(rec(s).last_compute_done, tr.compute_done);
  cluster_.end_compute(at.node);
  if (trace_ != nullptr) trace_phase(s, at, "compute");
  const dag::Stage& spec = dag_.stage(s);
  const Bytes out =
      spec.output_per_task() * st(s).mult[static_cast<std::size_t>(t)];
  at.writing = true;
  at.disk_claim = cluster_.disk(at.node).submit(
      out, [this, s, t, a] { on_write_done(s, t, a); });
}

void JobRun::on_write_done(dag::StageId s, int t, int a) {
  auto& state = st(s);
  auto& at = attempt(s, t, a);
  DS_CHECK(at.live);
  at.writing = false;
  state.task_done[static_cast<std::size_t>(t)] = true;

  auto& tr = task(s, t);
  tr.finish = cluster_.sim().now();
  tr.node = at.node;  // the winning attempt's node
  state.finished_durations.push_back(tr.finish - at.started);
  state.success_span[static_cast<std::size_t>(t)] = tr.finish - at.started;
  m_tasks_finished_.inc();
  m_task_seconds_.observe(tr.finish - at.started);
  if (trace_ != nullptr) {
    trace_phase(s, at, "write");
    release_lane(at.node, at.lane);
  }

  const dag::Stage& spec = dag_.stage(s);
  const Bytes out = spec.output_per_task() * state.mult[static_cast<std::size_t>(t)];
  state.output_at_node[static_cast<std::size_t>(at.node)] += out;
  --state.slots_held;
  cluster_.executors().release(at.node);
  at.live = false;

  // A losing sibling attempt is cancelled outright (its burn is wasted work).
  const int sibling = 1 - a;
  if (attempt(s, t, sibling).live)
    kill_attempt(s, t, sibling, /*node_lost=*/false);

  if (opt_.plan.pipelined_shuffle && out > 0) push_map_output(s, at.node, out);

  DS_CHECK(state.remaining_tasks > 0);
  if (--state.remaining_tasks == 0) {
    finish_stage(s);
  } else if (opt_.speculation) {
    maybe_speculate(s);
  }
}

void JobRun::kill_attempt(dag::StageId s, int t, int a, bool node_lost) {
  auto& state = st(s);
  auto& at = attempt(s, t, a);
  DS_CHECK(at.live);
  if (trace_ != nullptr) {
    trace_phase(s, at,
                at.writing ? "write (killed)"
                           : (at.computing ? "compute (killed)"
                                           : "fetch (killed)"));
    release_lane(at.node, at.lane);
  }
  for (const auto& f : at.flows)
    if (!f.done) cluster_.fabric().cancel(f.id);
  if (at.compute_event != sim::kInvalidEvent)
    cluster_.sim().cancel(at.compute_event);
  if (at.computing) cluster_.end_compute(at.node);
  if (at.writing) cluster_.disk(at.node).cancel(at.disk_claim);
  rec(s).wasted_seconds += cluster_.sim().now() - at.started;
  --state.slots_held;
  // A crashed node's slots are forfeited by the pool wholesale; only kills
  // on live nodes hand their slot back.
  if (!node_lost) cluster_.executors().release(at.node);
  at = Attempt{};
}

void JobRun::maybe_speculate(dag::StageId s) {
  if (failed_) return;
  auto& state = st(s);
  const auto total = static_cast<std::size_t>(dag_.stage(s).num_tasks);
  if (state.finished_durations.size() * 2 < total) return;
  std::vector<double> sorted = state.finished_durations;
  std::sort(sorted.begin(), sorted.end());
  const double median = metrics::percentile(sorted, 50);
  const Seconds now = cluster_.sim().now();

  for (int t = 0; t < dag_.stage(s).num_tasks; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (state.task_done[ti]) continue;
    const Attempt& primary = attempt(s, t, 0);
    if (!primary.live) continue;                 // queued, parked or re-queued
    if (state.spec_requested[ti]) continue;      // copy queued or running
    if (now - primary.started <= opt_.speculation_threshold * median) continue;
    state.spec_requested[ti] = true;
    ++speculative_attempts_;
    m_speculative_.inc();
    cluster_.executors().request(
        [this, s, t](sim::NodeId w) { launch_attempt(s, t, 1, w); }, -1,
        opt_.plan.priority_for(s));
  }
}

void JobRun::push_map_output(dag::StageId parent, sim::NodeId src, Bytes bytes) {
  for (dag::StageId c : dag_.children(parent)) {
    auto& cs = st(c);
    const dag::Stage& cspec = dag_.stage(c);
    for (int u = 0; u < cspec.num_tasks; ++u) {
      // This reduce task's partition of the freshly written map output.
      const Bytes share = bytes * cs.mult[static_cast<std::size_t>(u)] /
                          static_cast<double>(cspec.num_tasks);
      if (share <= sim::kFluidEps) continue;
      // If the reduce task already fetched, the pushed bytes are wasted —
      // never push behind a completed read.
      if (cs.read_finished[static_cast<std::size_t>(u)]) continue;
      const sim::NodeId dst = cs.planned_node[static_cast<std::size_t>(u)];
      ++cs.inflight_push[static_cast<std::size_t>(u)];
      cs.push_committed[push_key(u, src)] += share;
      if (cs.read_started[static_cast<std::size_t>(u)])
        ++attempt(c, u, 0).pending_flows;
      // Pushes carry the parent's group: they are stage `parent`'s output
      // stream, not a new contender on the fabric.
      cluster_.fabric().start_flow(
          {src, dst, share, parent, [this, c, u] {
             auto& state = st(c);
             --state.inflight_push[static_cast<std::size_t>(u)];
             if (state.read_started[static_cast<std::size_t>(u)] &&
                 !state.read_finished[static_cast<std::size_t>(u)]) {
               flow_arrived(c, u, 0);
             }
           }});
    }
  }
}

bool JobRun::parents_data_ready(dag::StageId s) const {
  for (dag::StageId p : dag_.parents(s)) {
    const auto& ps = st(p);
    if (ps.remaining_tasks != 0 || ps.lost_count > 0) return false;
  }
  return true;
}

void JobRun::park_task(dag::StageId s, int t) {
  auto& state = st(s);
  const auto ti = static_cast<std::size_t>(t);
  DS_CHECK(!state.needs_requeue[ti]);
  state.needs_requeue[ti] = true;
  state.launched[ti] = false;
  state.read_started[ti] = false;
  state.read_finished[ti] = false;
}

void JobRun::pump_requeues(dag::StageId s) {
  if (failed_) return;
  auto& state = st(s);
  if (!state.submitted) return;
  bool any_parked = false;
  for (int t = 0; t < dag_.stage(s).num_tasks; ++t) {
    if (state.needs_requeue[static_cast<std::size_t>(t)]) {
      any_parked = true;
      break;
    }
  }
  if (!any_parked) return;
  if (!parents_data_ready(s)) {
    // Inputs are missing upstream: leave the tasks parked and demand the
    // parent re-runs; the refinishing parent pumps this stage again.
    demand_parents(s);
    return;
  }
  for (int t = 0; t < dag_.stage(s).num_tasks; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (!state.needs_requeue[ti]) continue;
    state.needs_requeue[ti] = false;
    requeue_task(s, t);
  }
}

void JobRun::demand_parents(dag::StageId s) {
  if (failed_) return;
  const Seconds now = cluster_.sim().now();
  for (dag::StageId p : dag_.parents(s)) {
    auto& ps = st(p);
    if (ps.lost_count > 0) {
      // Reopen the finished parent: exactly the lost tasks re-run (Spark's
      // stage resubmission on fetch failure), bounded per stage.
      auto& r = rec(p);
      DS_CHECK(r.finish >= 0);
      r.finish = -1;
      ++stages_remaining_;
      ++r.resubmissions;
      m_resubmissions_.inc();
      if (trace_ != nullptr)
        trace_->instant("stage", "resubmit", now, obs::kJobPid, p);
      ps.reopened_at = now;
      int reopened_tasks = 0;
      for (int t = 0; t < dag_.stage(p).num_tasks; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        if (!ps.lost[ti]) continue;
        ps.lost[ti] = false;
        ps.task_done[ti] = false;
        ps.spec_requested[ti] = false;
        ++ps.remaining_tasks;
        ++r.tasks_rerun;
        ++reopened_tasks;
        park_task(p, t);
      }
      ps.lost_count = 0;
      flight_record(obs::FlightKind::kRecovery, p,
                    static_cast<double>(reopened_tasks),
                    static_cast<double>(r.resubmissions), "stage_resubmit");
      if (r.resubmissions > opt_.max_stage_resubmissions) {
        fail_job("stage " + std::to_string(p) + " resubmitted " +
                 std::to_string(r.resubmissions) +
                 " times (max_stage_resubmissions)");
        return;
      }
    }
    if (ps.remaining_tasks > 0) pump_requeues(p);
  }
}

void JobRun::on_node_crashed(sim::NodeId w) {
  if (!started_ || result_.finished()) return;
  ++result_.node_crashes;
  m_node_crashes_.inc();
  if (trace_ != nullptr)
    trace_->instant("fault", "node_crash", cluster_.sim().now(), node_pid(w), 0);

  // Pass 1 — the node's storage dies with it: invalidate the shuffle output
  // of every completed task that wrote on w. Tasks of still-running stages
  // re-run immediately (the stage must finish anyway); tasks of finished
  // stages are only marked lost and re-run lazily, when (and if) a
  // downstream consumer demands the data. Zeroing output_at_node *before*
  // killing attempts keeps any re-read from fetching ghost bytes.
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    auto& state = st(s);
    if (!state.submitted) continue;
    if (dag_.stage(s).output_per_task() <= 0) continue;
    const bool was_finished = rec(s).finish >= 0;
    bool invalidated = false;
    for (int t = 0; t < dag_.stage(s).num_tasks; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      if (!state.task_done[ti] || task(s, t).node != w) continue;
      invalidated = true;
      rec(s).wasted_seconds += state.success_span[ti];
      if (was_finished) {
        state.lost[ti] = true;
        ++state.lost_count;
      } else {
        state.task_done[ti] = false;
        state.spec_requested[ti] = false;
        ++state.remaining_tasks;
        ++rec(s).tasks_rerun;
        park_task(s, t);
      }
    }
    if (invalidated)
      state.output_at_node[static_cast<std::size_t>(w)] = 0;
  }

  // Pass 2 — kill live attempts: anything running on w dies with its slot;
  // anything elsewhere still fetching from w takes a fetch failure. A task
  // left with no live attempt parks for re-queueing.
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    auto& state = st(s);
    if (!state.submitted) continue;
    for (int t = 0; t < dag_.stage(s).num_tasks; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      bool killed_any = false;
      for (int a = 0; a < 2; ++a) {
        auto& at = attempt(s, t, a);
        if (!at.live) continue;
        bool killed = false;
        if (at.node == w) {
          kill_attempt(s, t, a, /*node_lost=*/true);
          killed = true;
        } else if (!at.read_done) {
          bool fetching = false;
          for (const auto& f : at.flows)
            if (!f.done && f.src == w) fetching = true;
          if (fetching) {
            ++result_.fetch_failures;
            m_fetch_failures_.inc();
            if (trace_ != nullptr)
              trace_->instant("fault", "fetch_failure", cluster_.sim().now(),
                              obs::kJobPid, s, "task", t);
            kill_attempt(s, t, a, /*node_lost=*/false);
            killed = true;
          }
        }
        if (killed) {
          killed_any = true;
          if (a == 1) state.spec_requested[ti] = false;
        }
      }
      if (killed_any && !state.task_done[ti] && !attempt(s, t, 0).live &&
          !attempt(s, t, 1).live && !state.needs_requeue[ti]) {
        park_task(s, t);
      }
    }
  }

  // Pass 3 — put every stage with parked work back in motion (demanding
  // lost parent partitions recursively where inputs are gone).
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    if (failed_) return;
    pump_requeues(s);
  }

  // Crash trigger: the cluster the plan was computed for no longer exists
  // (a worker and its shuffle output are gone, stages may be resubmitting).
  // Let the replanner re-stagger what has not been submitted yet.
  consider_replan(dag::kNoStage, "crash");
}

void JobRun::consider_replan(dag::StageId trigger, const char* reason) {
  const ReplanPolicy& pol = opt_.replan;
  if (!pol.enabled || !opt_.replanner || failed_ || result_.finished()) return;
  if (result_.replans >= pol.max_replans) return;
  const Seconds now = cluster_.sim().now();
  // Cooldown anchors on *attempts*, not applications: a burst of drifting
  // finishes costs at most one planner invocation per window (the thrash
  // guard faults_test pins down).
  if (last_replan_attempt_ >= 0 && now - last_replan_attempt_ < pol.cooldown)
    return;

  const auto n = static_cast<std::size_t>(dag_.num_stages());
  ReplanRequest req;
  req.now = now;
  req.trigger_stage = trigger;
  req.reason = reason;
  req.submitted.resize(n);
  bool any_pending = false;
  for (std::size_t i = 0; i < n; ++i) {
    req.submitted[i] = st_[i].submitted;
    if (!st_[i].submitted) any_pending = true;
  }
  if (!any_pending) return;  // nothing left to reschedule
  req.live_workers = 0;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    const sim::NodeId node = cluster_.worker(w);
    if (opt_.faults == nullptr || opt_.faults->alive(node)) ++req.live_workers;
  }
  req.progress = &result_;
  req.plan = &opt_.plan;

  last_replan_attempt_ = now;
  ReplanDecision d = opt_.replanner(req);
  if (!d.apply || d.expected_gain < pol.min_expected_gain) return;

  ++result_.replans;
  m_replans_.inc();
  if (trace_ != nullptr)
    trace_->instant("replan", reason, now, obs::kJobPid,
                    trigger == dag::kNoStage ? 0 : trigger);
  flight_record(obs::FlightKind::kReplan, trigger, d.expected_gain,
                static_cast<double>(result_.replans), reason);

  // Install the new delays for every pending stage. A stage already sitting
  // in its delay window has its submission event rescheduled to
  // ready + new_delay (never before now — elapsed waiting is sunk).
  if (opt_.plan.delay.size() < n) opt_.plan.delay.resize(n, 0.0);
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    const auto i = static_cast<std::size_t>(s);
    if (req.submitted[i]) continue;
    const Seconds nd = i < d.delay.size() ? std::max(0.0, d.delay[i]) : 0.0;
    opt_.plan.delay[i] = nd;
    auto& state = st(s);
    if (state.submit_event != sim::kInvalidEvent) {
      cluster_.sim().cancel(state.submit_event);
      const Seconds target = std::max(now, rec(s).ready + nd);
      state.submit_event = cluster_.sim().schedule_after(
          target - now, [this, s] { submit_stage(s); });
    }
  }
}

void JobRun::fail_job(const std::string& reason) {
  if (failed_ || result_.complete()) return;
  failed_ = true;
  result_.failed = true;
  result_.failed_at = cluster_.sim().now();
  result_.failure_reason = reason;
  if (flight_ != nullptr) {
    flight_record(obs::FlightKind::kFail, dag::kNoStage, 0, 0,
                  flight_->intern(reason));
    // A terminal job failure is exactly what the audit trail exists for:
    // dump it while the evidence is still in the ring.
    flight_->on_anomaly(("job_failed: " + reason).c_str());
  }
  // Unwind every live attempt; their burn counts as wasted work. Queued slot
  // requests drain harmlessly (launch_attempt releases grants once failed_).
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    for (int t = 0; t < dag_.stage(s).num_tasks; ++t) {
      for (int a = 0; a < 2; ++a) {
        if (attempt(s, t, a).live) kill_attempt(s, t, a, /*node_lost=*/false);
      }
    }
  }
  if (occupancy_event_ != sim::kInvalidEvent) {
    cluster_.sim().cancel(occupancy_event_);
    occupancy_event_ = sim::kInvalidEvent;
  }
  notify_finished();
}

void JobRun::notify_finished() {
  if (finish_notified_ || !result_.finished()) return;
  finish_notified_ = true;
  if (opt_.on_finished) opt_.on_finished(result_);
}

void JobRun::finish_stage(dag::StageId s) {
  auto& state = st(s);
  auto& r = rec(s);
  r.finish = cluster_.sim().now();
  m_stages_finished_.inc();
  flight_record(obs::FlightKind::kStageFinish, s, r.duration(),
                static_cast<double>(dag_.stage(s).num_tasks));
  if (trace_ != nullptr)
    trace_->complete("stage", stage_trace_names_[static_cast<std::size_t>(s)],
                     r.submitted, r.finish - r.submitted, obs::kJobPid, s);
  if (state.reopened_at >= 0) {
    r.recovery_seconds += r.finish - state.reopened_at;
    state.reopened_at = -1;
  }
  // Drift trigger: a first finish whose measured duration misses the plan's
  // prediction beyond the warning threshold requests a replan *before*
  // children readiness propagates, so stages becoming ready right now
  // already pick up the corrected delays.
  if (!state.finished_once && opt_.replan.enabled) {
    const auto i = static_cast<std::size_t>(s);
    const Seconds predicted = i < opt_.predicted_durations.size()
                                  ? opt_.predicted_durations[i]
                                  : 0.0;
    if (predicted > 0) {
      const double rel = std::abs(r.duration() - predicted) / predicted;
      if (rel > opt_.replan.trigger_rel_error) consider_replan(s, "drift");
    }
  }
  if (!state.finished_once) {
    state.finished_once = true;
    for (dag::StageId c : dag_.children(s)) {
      auto& cs = st(c);
      DS_CHECK(cs.remaining_parents > 0);
      if (--cs.remaining_parents == 0) on_ready(c);
    }
  } else {
    // Re-finish after a reopening: children already consumed their
    // remaining_parents; wake any of their tasks parked on our lost data.
    for (dag::StageId c : dag_.children(s)) {
      if (st(c).submitted) pump_requeues(c);
    }
  }
  DS_CHECK(stages_remaining_ > 0);
  if (--stages_remaining_ == 0) {
    result_.jct = cluster_.sim().now();
    if (occupancy_event_ != sim::kInvalidEvent) {
      cluster_.sim().cancel(occupancy_event_);
      occupancy_event_ = sim::kInvalidEvent;
    }
    notify_finished();
  }
}

void JobRun::sample_occupancy() {
  const Seconds now = cluster_.sim().now();
  for (dag::StageId s = 0; s < dag_.num_stages(); ++s) {
    occupancy_[static_cast<std::size_t>(s)].push(
        now, static_cast<double>(st(s).slots_held));
  }
  occupancy_event_ = cluster_.sim().schedule_after(opt_.occupancy_dt, [this] {
    occupancy_event_ = sim::kInvalidEvent;
    sample_occupancy();
  });
}

}  // namespace ds::engine
