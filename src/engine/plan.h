// A submission plan is everything a stage-scheduling strategy may decide in
// this system: per-stage submission delays (DelayStage's X) and whether the
// shuffle is pipelined (AggShuffle's proactive push). The engine is strategy-
// agnostic; strategies produce plans (see sched/).
#pragma once

#include <vector>

#include "dag/stage.h"
#include "util/units.h"

namespace ds::engine {

struct SubmissionPlan {
  // delay[k] postpones stage k's submission by that many seconds after it
  // becomes ready (all parents complete). Missing/short vector means zero
  // delay — the stock Spark behaviour.
  std::vector<Seconds> delay;
  // AggShuffle: map outputs are pushed toward the (pre-assigned) reduce-task
  // nodes as each map task finishes, overlapping shuffle transfer with the
  // parent stage's remaining compute.
  bool pipelined_shuffle = false;
  // Executor-queue priority per stage (lower = served first; default 0 =
  // plain FIFO). Lets Graphene/critical-path-first style baselines reorder
  // which stage's tasks win contended slots without delaying submissions.
  std::vector<int> priority;

  Seconds delay_for(dag::StageId s) const {
    const auto i = static_cast<std::size_t>(s);
    return i < delay.size() ? delay[i] : 0.0;
  }
  int priority_for(dag::StageId s) const {
    const auto i = static_cast<std::size_t>(s);
    return i < priority.size() ? priority[i] : 0;
  }
};

}  // namespace ds::engine
