// Execution records produced by a job run — the raw material for every
// prototype figure: stage breakdowns (Fig. 11/16), JCTs (Fig. 10),
// occupancy (Fig. 13).
#pragma once

#include <vector>

#include "dag/stage.h"
#include "sim/network.h"
#include "util/units.h"

namespace ds::engine {

struct TaskRecord {
  dag::StageId stage = dag::kNoStage;
  int index = -1;
  sim::NodeId node = -1;      // node of the successful attempt
  Seconds launch = -1;        // first attempt's slot grant
  Seconds read_done = -1;     // successful attempt: input fetched
  Seconds compute_done = -1;  // successful attempt: processing finished
  Seconds finish = -1;        // write complete; slot released
  int attempts = 0;           // 1 = no retries (fault injection, RunOptions)
};

struct StageRecord {
  dag::StageId stage = dag::kNoStage;
  Seconds ready = -1;      // all parents complete
  Seconds submitted = -1;  // ready + delay x_k
  Seconds first_launch = -1;
  Seconds last_read_done = -1;  // end of the stage's shuffle-read span
  Seconds finish = -1;

  // Fig. 11's grey/white split: shuffle-read span vs processing+write span.
  Seconds read_span() const { return last_read_done - first_launch; }
  Seconds process_span() const { return finish - last_read_done; }
  Seconds duration() const { return finish - submitted; }
};

struct JobResult {
  Seconds jct = -1;
  std::vector<StageRecord> stages;  // indexed by StageId
  std::vector<TaskRecord> tasks;

  bool complete() const { return jct >= 0; }
};

}  // namespace ds::engine
