// Execution records produced by a job run — the raw material for every
// prototype figure: stage breakdowns (Fig. 11/16), JCTs (Fig. 10),
// occupancy (Fig. 13) — plus the recovery observability the fault-injection
// subsystem adds (resubmissions, wasted work, recovery time).
#pragma once

#include <string>
#include <vector>

#include "dag/stage.h"
#include "sim/network.h"
#include "util/units.h"

namespace ds::engine {

struct TaskRecord {
  dag::StageId stage = dag::kNoStage;
  int index = -1;
  sim::NodeId node = -1;      // node of the successful attempt
  Seconds launch = -1;        // first attempt's slot grant
  Seconds read_done = -1;     // successful attempt: input fetched
  Seconds compute_done = -1;  // successful attempt: processing finished
  Seconds finish = -1;        // write complete; slot released
  int attempts = 0;           // 1 = no retries (faults, crashes, speculation)
};

struct StageRecord {
  dag::StageId stage = dag::kNoStage;
  Seconds ready = -1;      // all parents complete
  Seconds submitted = -1;  // ready + delay x_k
  Seconds first_launch = -1;
  Seconds last_read_done = -1;     // end of the stage's shuffle-read span
  Seconds last_compute_done = -1;  // end of the stage's processing span
  Seconds finish = -1;

  // --- recovery observability (fault injection) ---
  // Times a *finished* stage was reopened because a node crash invalidated
  // shuffle output it had stored (Spark's stage resubmission on fetch
  // failure). Bounded by RunOptions::max_stage_resubmissions.
  int resubmissions = 0;
  // Completed tasks whose output was lost and had to run again.
  int tasks_rerun = 0;
  // Seconds of discarded attempt time: mid-compute aborts, attempts killed
  // by node crashes or fetch failures, losing speculative copies, and the
  // full span of completed tasks whose output was later invalidated.
  Seconds wasted_seconds = 0;
  // Time the stage spent re-finishing after being reopened (crash →
  // re-completion), summed over reopen incidents.
  Seconds recovery_seconds = 0;

  // Fig. 11's grey/white split: shuffle-read span vs processing+write span.
  Seconds read_span() const { return last_read_done - first_launch; }
  Seconds process_span() const { return finish - last_read_done; }
  Seconds duration() const { return finish - submitted; }
};

struct JobResult {
  Seconds jct = -1;
  std::vector<StageRecord> stages;  // indexed by StageId
  std::vector<TaskRecord> tasks;

  // Terminal failure: a task exceeded max_attempts or a stage exceeded
  // max_stage_resubmissions. jct stays -1; failed_at records when the job
  // gave up.
  bool failed = false;
  Seconds failed_at = -1;
  std::string failure_reason;

  // Recovery summary.
  int node_crashes = 0;    // crashes that landed while this job ran
  int fetch_failures = 0;  // attempts killed because a shuffle source died
  // Mid-job replans actually applied (RunOptions::replan; 0 when disabled —
  // and with replanning disabled the run is bit-identical to a build
  // without the feature).
  int replans = 0;

  bool complete() const { return jct >= 0; }
  // The run reached a terminal state — successfully or not.
  bool finished() const { return complete() || failed; }

  Seconds wasted_seconds() const {
    Seconds w = 0;
    for (const auto& s : stages) w += s.wasted_seconds;
    return w;
  }
  int resubmissions() const {
    int n = 0;
    for (const auto& s : stages) n += s.resubmissions;
    return n;
  }
  int tasks_rerun() const {
    int n = 0;
    for (const auto& s : stages) n += s.tasks_rerun;
    return n;
  }
};

}  // namespace ds::engine
