// Spark-like job execution on the cluster simulator.
//
// Lifecycle per task (paper Fig. 8): acquire an executor slot → shuffle-read
// input from every source node in parallel (network flows; read blocks
// compute) → process data on the executor (CPU) → shuffle-write output to
// the local disk → release the slot. A stage finishes when its slowest task
// finishes (Eq. 2); a stage becomes ready when all parents finished, and is
// *submitted* `delay[k]` seconds later (DelayStage's knob; stock Spark is
// all-zeros).
//
// Data placement: source stages read their input from the storage (HDFS)
// nodes in proportion to node bandwidth; shuffle stages read each parent's
// output from wherever that parent's tasks actually ran.
//
// AggShuffle (pipelined_shuffle): reduce tasks of every stage are
// pre-assigned to workers round-robin; whenever a map task finishes, its
// output is immediately pushed to the reduce tasks' nodes. Bytes that arrive
// (or are in flight) before a reduce task reads are never fetched twice —
// the benefit is the transfer/compute overlap, which grows with the
// intra-stage task-duration variance (Stage::task_skew) exactly as the
// paper observes.
//
// Each task runs as one or two *attempts*: the primary, plus (with
// RunOptions::speculation) a speculative copy launched when the primary
// lags the stage's finished tasks. The first attempt to complete wins; the
// loser's flows, compute and disk write are cancelled and its slot freed.
//
// Failure model. Two failure domains compose:
//
//  * Task aborts (task_failure_rate): every attempt independently aborts
//    partway through its compute with this probability and is retried from
//    scratch. A task that aborts max_attempts times fails the *job*
//    terminally (JobResult::failed) — there is no "final attempt always
//    succeeds" fiction.
//  * Node crashes (RunOptions::faults → sim::FaultInjector): a crash kills
//    every live attempt on the node, forfeits its slots, and invalidates the
//    shuffle output it stored. Attempts elsewhere that were mid-fetch from
//    the dead node take a *fetch failure* and re-queue. Lost parent output
//    is regenerated lazily and recursively: only when (and if) a downstream
//    task actually needs the missing partitions are the producing tasks
//    re-submitted, reopening finished stages Spark-style. Reopenings per
//    stage are capped by max_stage_resubmissions; exceeding the cap fails
//    the job. Crash-driven re-runs do not count against max_attempts (like
//    Spark, which exempts fetch failures from spark.task.maxFailures).
//
// Fault injection composes with speculation and locality waits; only
// pipelined_shuffle (AggShuffle's eager pushes) remains incompatible with
// both failure domains and with speculation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/options.h"
#include "dag/job.h"
#include "engine/plan.h"
#include "engine/records.h"
#include "engine/replan.h"
#include "metrics/timeseries.h"
#include "obs/obs.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "util/rng.h"

namespace ds::engine {

// CommonOptions supplies `seed` (per-task skew multipliers and fault
// injection) and `obs` (task/stage metrics and the per-slot span trace);
// `threads` is ignored — the engine is single-threaded by design.
struct RunOptions : CommonOptions {
  SubmissionPlan plan;
  // Record per-stage executor occupancy (Fig. 13).
  bool record_occupancy = false;
  Seconds occupancy_dt = 1.0;
  // Fault injection, task domain: each attempt independently aborts
  // mid-compute with this probability (must be in [0, 1)) and is retried
  // Spark-style (slot released, re-queued, input re-fetched). A task whose
  // attempts abort max_attempts times fails the job (JobResult::failed).
  // Incompatible with pipelined_shuffle; composes with speculation.
  double task_failure_rate = 0.0;
  int max_attempts = 4;
  // Fault injection, node domain: subscribe this run to a fault injector
  // driving whole-node crashes, recoveries and link degradation on the same
  // cluster. The injector must outlive the run (and FaultInjector::start()
  // must be called for faults to actually fire). Incompatible with
  // pipelined_shuffle.
  sim::FaultInjector* faults = nullptr;
  // How many times a *finished* stage may be reopened because a crash
  // invalidated its stored shuffle output (Spark's
  // spark.stage.maxConsecutiveAttempts analogue). Exceeding it fails the
  // job terminally.
  int max_stage_resubmissions = 4;
  // Task-level delay scheduling (Zaharia et al., EuroSys'10 — the technique
  // the paper contrasts DelayStage with in §1): a shuffle task first waits
  // up to this long for a slot on the worker holding most of its input
  // (which it then reads over loopback), falling back to any free slot.
  // 0 disables; Spark's default is ~3 s.
  Seconds locality_wait = 0.0;
  // Speculative execution: once half a stage's tasks have finished, a task
  // whose current attempt has run longer than speculation_threshold × the
  // median finished duration gets a parallel copy on another executor; the
  // first finisher wins. Fixes machine-level stragglers (slow nodes, see
  // ClusterSpec::node_speed_*). Incompatible with pipelined_shuffle.
  bool speculation = false;
  double speculation_threshold = 1.5;
  // Mid-job replanning (see engine/replan.h). Both pieces must be set for
  // the engine to ever replan: `replan.enabled` arms the triggers, and
  // `replanner` is invoked with a live-state snapshot when one fires. The
  // default (disabled policy, empty replanner) is a guaranteed no-op.
  ReplanPolicy replan;
  Replanner replanner;
  // Planner-predicted stage durations (submitted → finish), indexed by
  // StageId: the drift trigger compares each finished stage against its
  // entry. Empty (or a missing/non-positive entry) disables the drift
  // trigger for that stage; crash triggers work regardless.
  std::vector<Seconds> predicted_durations;
  // Flight-recorder job id: stamps every audit record this run emits (run
  // start, stage finishes, replans, recoveries, failures) so a host
  // scheduling many runs can correlate the trail. 0 = standalone run.
  std::uint64_t flight_job_id = 0;
  // Terminal-state hook: invoked exactly once, at the sim time the run
  // reaches a terminal state (result().complete() or result().failed), with
  // the finalised result. This is how a host scheduling many concurrent runs
  // on one simulator (ds::Scheduler) reacts to completions without polling.
  // The callback may start new runs / schedule new events; it must not
  // destroy this JobRun while the engine is still on the stack.
  std::function<void(const JobResult&)> on_finished;
};

class JobRun {
 public:
  // The dag, cluster and fault injector (if any) must outlive the run.
  JobRun(sim::Cluster& cluster, const dag::JobDag& dag, RunOptions opt);
  ~JobRun();
  JobRun(const JobRun&) = delete;
  JobRun& operator=(const JobRun&) = delete;

  // Schedule the job at the current sim time; drive with cluster.sim().run().
  void start();

  // Terminal: completed successfully or failed (see result().failed).
  bool finished() const { return result_.finished(); }
  // Valid once finished().
  const JobResult& result() const;
  // Executor slots held by stage `s` over time (record_occupancy only).
  const metrics::TimeSeries& occupancy(dag::StageId s) const;
  // Number of speculative copies launched (speculation only).
  int speculative_attempts() const { return speculative_attempts_; }

 private:
  // A flow an attempt is waiting on, with the node it pulls from (needed to
  // detect fetch failures when a source node dies mid-transfer).
  struct AttemptFlow {
    sim::FlowId id = 0;
    sim::NodeId src = -1;
    bool done = false;  // delivered; no longer at risk from a source crash
  };

  // One running execution of a task. index 0 = primary, 1 = speculative.
  struct Attempt {
    bool live = false;
    sim::NodeId node = -1;
    Seconds started = -1;
    int pending_flows = 0;
    bool read_done = false;
    bool computing = false;
    std::vector<AttemptFlow> flows;
    sim::EventId compute_event = sim::kInvalidEvent;
    bool writing = false;
    sim::ClaimId disk_claim = 0;
    // Tracing only (trace_ != nullptr): the slot lane this attempt occupies
    // on its node's trace track, and when its current phase began.
    int lane = -1;
    Seconds phase_started = -1;
  };

  struct StageState {
    int remaining_parents = 0;
    int remaining_tasks = 0;
    bool submitted = false;
    // Pending submission event while the stage sits in its delay window
    // (ready, not yet submitted). A replan cancels and reschedules it.
    sim::EventId submit_event = sim::kInvalidEvent;
    bool finished_once = false;  // children's remaining_parents consumed
    Seconds reopened_at = -1;                // for recovery_seconds
    std::vector<double> mult;                // per-task skew, mean 1
    std::vector<sim::NodeId> planned_node;   // AggShuffle pre-assignment
    std::vector<Bytes> output_at_node;       // filled as tasks write
    // AggShuffle bookkeeping: bytes pushed toward (task, src) — committed at
    // push *start*, so a task's remainder fetch never re-requests bytes that
    // are still in flight (completion waits on them via pending_flows).
    std::unordered_map<std::uint64_t, Bytes> push_committed;
    std::vector<int> inflight_push;          // pushes racing toward each task
    std::vector<bool> read_started;          // primary attempt, for pushes
    std::vector<bool> read_finished;
    std::vector<bool> launched;              // granted a slot (locality wait)
    std::vector<bool> task_done;
    std::vector<bool> spec_requested;        // a copy is queued or running
    std::vector<bool> needs_requeue;         // parked, awaiting re-enqueue
    // Completed tasks of a *finished* stage whose output a crash destroyed.
    // They stay done until a downstream consumer actually demands the data,
    // at which point the stage is reopened and they are re-run (lazy,
    // recursive resubmission — Spark's fetch-failure path).
    std::vector<bool> lost;
    int lost_count = 0;
    std::vector<int> enqueue_epoch;          // guards stale locality fallbacks
    std::vector<int> aborts;                 // dice failures, vs max_attempts
    std::vector<Seconds> success_span;       // winning attempt's span
    std::vector<std::array<Attempt, 2>> attempts;
    std::vector<Seconds> finished_durations;  // attempt spans, for speculation
    int slots_held = 0;                      // for occupancy sampling
  };

  static std::uint64_t push_key(int task, sim::NodeId src);

  void on_ready(dag::StageId s);
  void submit_stage(dag::StageId s);
  void enqueue_task(dag::StageId s, int t);
  // Re-enqueue after an abort, crash kill or fetch failure: no locality wait
  // (the retry should start as soon as any slot frees up).
  void requeue_task(dag::StageId s, int t);
  // Worker holding the largest share of this task's shuffle input, or -1.
  sim::NodeId preferred_node(dag::StageId s) const;
  void launch_attempt(dag::StageId s, int t, int a, sim::NodeId w);
  void begin_read(dag::StageId s, int t, int a, sim::NodeId w);
  void flow_arrived(dag::StageId s, int t, int a);
  void finish_read(dag::StageId s, int t, int a);
  void on_attempt_failed(dag::StageId s, int t, int a);
  void on_compute_done(dag::StageId s, int t, int a);
  void on_write_done(dag::StageId s, int t, int a);
  // Tear down a live attempt (flows, compute, write, slot accounting).
  // node_lost: the attempt's node crashed, so its slot is forfeited rather
  // than released back to the pool.
  void kill_attempt(dag::StageId s, int t, int a, bool node_lost);
  void maybe_speculate(dag::StageId s);
  void finish_stage(dag::StageId s);
  // AggShuffle: push `bytes` of freshly-written map output of `parent` from
  // `src` toward each child's pre-assigned reduce nodes.
  void push_map_output(dag::StageId parent, sim::NodeId src, Bytes bytes);
  void sample_occupancy();

  // --- failure-domain recovery ---
  // Every parent's data is materialized (no lost/unfinished tasks upstream).
  bool parents_data_ready(dag::StageId s) const;
  // Park task t until its stage is pumped (attempt gone or output lost).
  void park_task(dag::StageId s, int t);
  // Re-enqueue every parked task of `s` whose inputs are available; demands
  // missing parent output (recursively) otherwise.
  void pump_requeues(dag::StageId s);
  // A consumer needs `s`'s parents' output: reopen finished parents with
  // lost partitions (re-running just those tasks) and pump parked ones.
  void demand_parents(dag::StageId s);
  void on_node_crashed(sim::NodeId w);
  void fail_job(const std::string& reason);
  // Fire opt_.on_finished exactly once, after result_ is terminal.
  void notify_finished();

  // --- mid-job replanning (no-op unless opt_.replan.enabled) ---
  // Evaluate the ReplanPolicy guards, snapshot live state, invoke the
  // replanner, and — if the decision clears min_expected_gain — install the
  // new delays for every not-yet-submitted stage (rescheduling pending
  // submission events in place).
  void consider_replan(dag::StageId trigger, const char* reason);

  // --- observability (passive; no-ops when opt_.obs is null) ---
  // Chrome-trace pid of worker w's slot track.
  static std::int32_t node_pid(sim::NodeId w) {
    return obs::kNodePidBase + static_cast<std::int32_t>(w);
  }
  // Claim/return a per-node trace lane so concurrent attempts on one worker
  // render as separate rows (the Fig. 12/13 occupancy timeline).
  int acquire_lane(sim::NodeId w);
  void release_lane(sim::NodeId w, int lane);
  // Emit the attempt's current phase as a complete span ending now.
  void trace_phase(dag::StageId s, Attempt& at, const char* name);

  StageState& st(dag::StageId s) { return st_[static_cast<std::size_t>(s)]; }
  const StageState& st(dag::StageId s) const {
    return st_[static_cast<std::size_t>(s)];
  }
  Attempt& attempt(dag::StageId s, int t, int a) {
    return st(s).attempts[static_cast<std::size_t>(t)][static_cast<std::size_t>(a)];
  }
  TaskRecord& task(dag::StageId s, int t);
  StageRecord& rec(dag::StageId s) {
    return result_.stages[static_cast<std::size_t>(s)];
  }

  sim::Cluster& cluster_;
  const dag::JobDag& dag_;
  RunOptions opt_;
  Rng rng_;
  std::vector<StageState> st_;
  std::vector<int> task_base_;  // index of stage s's task 0 in result_.tasks
  JobResult result_;
  int stages_remaining_ = 0;
  bool started_ = false;
  bool failed_ = false;
  bool finish_notified_ = false;
  int speculative_attempts_ = 0;
  Seconds last_replan_attempt_ = -1;  // cooldown anchor (sim time)
  std::vector<metrics::TimeSeries> occupancy_;
  sim::EventId occupancy_event_ = sim::kInvalidEvent;
  sim::FaultInjector::SubscriptionId fault_sub_ = 0;

  // Append one audit record (no-op when the recorder is off). Fills t, job
  // and the caller's kind-specific fields.
  void flight_record(obs::FlightKind kind, dag::StageId s, double value,
                     double aux = 0, const char* label = nullptr);

  // Observability handles (disabled when opt_.obs is null).
  obs::Tracer* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::vector<const char*> stage_trace_names_;  // interned, tracing only
  std::vector<std::vector<bool>> lanes_;        // per worker, tracing only
  obs::Counter m_tasks_launched_;
  obs::Counter m_tasks_finished_;
  obs::Counter m_task_aborts_;
  obs::Counter m_fetch_failures_;
  obs::Counter m_node_crashes_;
  obs::Counter m_resubmissions_;
  obs::Counter m_speculative_;
  obs::Counter m_stages_finished_;
  obs::Counter m_replans_;
  obs::Histogram m_task_seconds_;
};

}  // namespace ds::engine
