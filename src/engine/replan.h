// Mid-job replanning contract between the engine and a planner.
//
// A running job's measured phase boundaries can drift away from the plan's
// predictions (stale profile), or a node crash can invalidate the cluster
// state the plan was computed for. When that happens the engine snapshots
// its live state into a ReplanRequest and hands it to an installed
// Replanner, which may answer with a fresh delay vector for the stages that
// have not been submitted yet (already-submitted stages are frozen — their
// delays are spent). The ReplanPolicy bounds how often this can happen so
// replanning itself cannot thrash the run.
//
// The engine knows nothing about *how* a new plan is produced: the Replanner
// is an opaque callable (core::AdaptivePlanner provides the standard one,
// re-running the calibrated DelayStage search over the pending stages). This
// keeps the dependency arrow intact — engine never includes core headers.
#pragma once

#include <functional>
#include <vector>

#include "dag/stage.h"
#include "util/units.h"

namespace ds::engine {

struct JobResult;
struct SubmissionPlan;

// Guard rails on mid-job replanning. Default-constructed = disabled, and
// ReplanPolicy::off() spells that out; a disabled policy is a guaranteed
// no-op (the engine never invokes the replanner, results are bit-identical
// to a build without the feature).
struct ReplanPolicy {
  bool enabled = false;
  // Hard cap on applied replans per job run.
  int max_replans = 2;
  // Minimum sim-time between replan *attempts* (applied or not): a burst of
  // drifting stage finishes triggers at most one planner invocation per
  // window.
  Seconds cooldown = 30.0;
  // A candidate plan is only adopted if its predicted makespan improvement
  // clears this bar — swapping delay vectors for noise-level gains churns
  // the submission timeline for nothing.
  Seconds min_expected_gain = 1.0;
  // Drift trigger: a finished stage whose measured duration misses the
  // prediction by more than this relative error requests a replan. Matches
  // the default obs/analytics warning threshold
  // (DriftOptions::warn_stage_rel_error).
  double trigger_rel_error = 0.5;

  static ReplanPolicy off() { return ReplanPolicy{}; }
};

// Live-state snapshot the engine hands to the replanner.
struct ReplanRequest {
  Seconds now = 0;
  // Stage whose finish triggered the drift check; kNoStage for crash
  // triggers.
  dag::StageId trigger_stage = dag::kNoStage;
  const char* reason = "";  // "drift" or "crash"
  // submitted[s]: stage s's delay is already spent — the replanner must keep
  // its entry of the returned vector equal to the current plan's.
  std::vector<bool> submitted;
  // Workers currently alive (crashed-and-not-recovered nodes excluded).
  int live_workers = 0;
  // Read-only views of the run so far; valid only during the call.
  const JobResult* progress = nullptr;
  const SubmissionPlan* plan = nullptr;
};

struct ReplanDecision {
  bool apply = false;
  // Full per-stage delay vector; entries for submitted stages are ignored.
  std::vector<Seconds> delay;
  // Predicted makespan improvement of `delay` over the current plan, under
  // the replanner's (calibrated) model. Compared against
  // ReplanPolicy::min_expected_gain.
  Seconds expected_gain = 0;
};

using Replanner = std::function<ReplanDecision(const ReplanRequest&)>;

}  // namespace ds::engine
