#include "service/ndjson.h"

#include <exception>
#include <ostream>

#include "core/plan_serialize.h"
#include "dag/serialize.h"
#include "util/json.h"
#include "workloads/workloads.h"

namespace ds::service {

namespace {

Status build_workload(const std::string& name, double scale,
                      dag::JobDag* out) {
  if (name == "als") {
    *out = workloads::als(scale);
  } else if (name == "connected_components") {
    *out = workloads::connected_components(scale);
  } else if (name == "cosine_similarity") {
    *out = workloads::cosine_similarity(scale);
  } else if (name == "lda") {
    *out = workloads::lda(scale);
  } else if (name == "triangle_count") {
    *out = workloads::triangle_count(scale);
  } else {
    return Status::error(
        "unknown workload \"" + name +
        "\" (expected als, connected_components, cosine_similarity, lda or "
        "triangle_count)");
  }
  return Status::ok();
}

}  // namespace

Status parse_sched_request(const std::string& line, SchedRequest* out) {
  json::Value req;
  if (const Status st = json::parse(line, &req); !st.is_ok()) return st;
  if (!req.is_object())
    return Status::error("request must be a JSON object");
  if (const Status st = core::check_ndjson_version(req); !st.is_ok())
    return st;

  SchedRequest r;
  if (const json::Value* cmd = req.find("cmd"); cmd != nullptr) {
    if (cmd->str_or("") != "stats")
      return Status::error("unknown \"cmd\" (expected \"stats\")");
    r.kind = SchedRequest::Kind::kStats;
    *out = std::move(r);
    return Status::ok();
  }
  const json::Value* workload = req.find("workload");
  const json::Value* spec = req.find("spec");
  if ((workload != nullptr) == (spec != nullptr))
    return Status::error(
        "request needs exactly one of \"workload\" or \"spec\"");
  if (workload != nullptr) {
    double scale = 1.0;
    if (const json::Value* v = req.find("scale"); v != nullptr)
      scale = v->num_or(scale);
    if (scale <= 0) return Status::error("\"scale\" must be positive");
    if (const Status st =
            build_workload(workload->str_or(""), scale, &r.dag);
        !st.is_ok())
      return st;
  } else {
    try {
      r.dag = dag::load_job_spec_text(spec->str_or(""));
    } catch (const std::exception& e) {
      return Status::error(e.what());
    }
  }
  if (const json::Value* v = req.find("arrival"); v != nullptr)
    r.arrival = v->num_or(-1);
  if (const json::Value* v = req.find("priority"); v != nullptr)
    r.priority = static_cast<int>(v->int_or(0));
  *out = std::move(r);
  return Status::ok();
}

void write_job_status(std::ostream& os, const JobStatus& status) {
  os.precision(12);
  os << "{\"v\": " << core::kNdjsonProtocolVersion
     << ", \"id\": " << status.id << ", \"name\": ";
  json::write_string(os, status.name);
  os << ", \"state\": \"" << to_string(status.state)
     << "\", \"priority\": " << status.priority
     << ", \"arrival\": " << status.arrival << ", \"wait\": " << status.wait
     << ", \"jct\": " << status.jct << ", \"slowdown\": " << status.slowdown
     << ", \"planned_delay\": " << status.planned_delay << ", \"cache\": \""
     << (status.plan_cache_hit ? "hit" : "miss") << "\"}\n";
}

}  // namespace ds::service
