// NDJSON job-submission protocol for `delaystage_cli sched --jobs-in`
// (version 1 — the shared protocol rules, version field semantics and
// unknown-field tolerance are documented in core/plan_serialize.h next to
// the plan JSON).
//
// One request per line:
//   {"v": 1, "workload": "lda", "scale": 1.0, "arrival": 12.5, "priority": 0}
//   {"v": 1, "spec": "<job-spec text>", "arrival": 30}
//   {"v": 1, "cmd": "stats"}
// Exactly one of "workload" (a built-in benchmark name: als,
// connected_components, cosine_similarity, lda, triangle_count) or "spec"
// (inline dag/serialize job-spec text) selects the job. "arrival" is the
// absolute submit time in seconds (absent/negative = back-to-back with the
// previous job), "priority" the class (lower = more important).
//
// A {"cmd": "stats"} line is not a submission: the CLI answers it in stream
// order with one live {"ev": "stats"} state line (queue depth, ledger
// occupancy, fleet quantiles, SLO verdicts — Scheduler::write_stats),
// evaluated after the preceding submissions have been processed.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/job.h"
#include "service/scheduler.h"
#include "util/status.h"
#include "util/units.h"

namespace ds::service {

struct SchedRequest {
  enum class Kind { kSubmit, kStats };
  Kind kind = Kind::kSubmit;
  dag::JobDag dag;       // kSubmit only
  Seconds arrival = -1;  // < 0: caller decides (arrive immediately)
  int priority = 0;
};

// Parses one submission line (version check included). `out` is only
// modified on success; unknown fields are ignored.
Status parse_sched_request(const std::string& line, SchedRequest* out);

// One completed job as an NDJSON response line ({"v": 1, "id": …, "name",
// "state", "arrival", "wait", "jct", "slowdown", "planned_delay",
// "cache": "hit"|"miss"}).
void write_job_status(std::ostream& os, const JobStatus& status);

}  // namespace ds::service
