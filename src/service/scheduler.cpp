#include "service/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "core/evaluator.h"
#include "util/check.h"

namespace ds {

namespace {

// The scheduler's CommonOptions (threads/seed/obs) govern the whole
// service, including the admission planner inside PlanService.
store::PlanServiceOptions with_common(store::PlanServiceOptions p,
                                      const SchedulerOptions& o) {
  p.calculator.threads = o.threads;
  p.calculator.seed = o.seed;
  p.calculator.obs = o.obs;
  return p;
}

// Nearest-rank percentile of a sorted sample (empty → 0).
double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string fmt_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

Status validate(const SchedulerOptions& o) {
  if (o.cluster.num_workers <= 0 || o.cluster.executors_per_worker <= 0)
    return Status::error("cluster needs at least one worker and executor");
  if (!(o.max_share > 0 && o.max_share <= 1.0))
    return Status::error("max_share must be in (0, 1]");
  if (o.min_slots_per_job < 1)
    return Status::error("min_slots_per_job must be >= 1");
  if (o.interference < 0)
    return Status::error("interference must be >= 0");
  if (o.estimate_slot <= 0)
    return Status::error("estimate_slot must be positive");
  for (const obs::SloRule& r : o.slo) {
    if (!(r.quantile > 0 && r.quantile < 1) || !(r.threshold > 0))
      return Status::error("bad SLO rule: " + r.spec);
  }
  if (!(o.slo_accuracy > 0 && o.slo_accuracy < 0.5))
    return Status::error("slo_accuracy must be in (0, 0.5)");
  if (o.telemetry != nullptr) {
    if (o.obs == nullptr)
      return Status::error("telemetry requires an Observability sink");
    if (o.telemetry_period <= 0)
      return Status::error("telemetry_period must be positive");
  }
  if (!(o.task_failure_rate >= 0 && o.task_failure_rate < 1.0))
    return Status::error("task_failure_rate must be in [0, 1)");
  if (o.max_attempts < 1)
    return Status::error("max_attempts must be >= 1");
  if (Status s = core::validate(o.plan.calculator); !s) return s;
  return Status::ok();
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

Scheduler::Scheduler(SchedulerOptions options)
    : opt_(std::move(options)),
      cluster_(std::make_unique<sim::Cluster>(sim_, opt_.cluster, opt_.seed,
                                              opt_.obs)),
      ledger_(opt_.cluster.total_executors(),
              [&] {
                BytesPerSec sum = 0;
                for (int w = 0; w < cluster_->num_workers(); ++w)
                  sum += cluster_->nic_bw(cluster_->worker(w));
                return sum;
              }()),
      plans_(with_common(opt_.plan, opt_), opt_.obs),
      m_submitted_(obs::counter(opt_.obs, "sched.submitted")),
      m_admitted_(obs::counter(opt_.obs, "sched.admitted")),
      m_finished_(obs::counter(opt_.obs, "sched.finished")),
      m_failed_(obs::counter(opt_.obs, "sched.failed")),
      m_cache_hits_(obs::counter(opt_.obs, "sched.plan_cache_hits")),
      m_queue_depth_(obs::gauge(opt_.obs, "sched.queue_depth")),
      m_active_jobs_(obs::gauge(opt_.obs, "sched.active_jobs")),
      m_slot_occupancy_(obs::gauge(opt_.obs, "sched.slot_occupancy")),
      m_ledger_slots_busy_(obs::gauge(opt_.obs, "sched.ledger_slots_busy")),
      m_wait_seconds_(obs::histogram(opt_.obs, "sched.wait_seconds",
                                     obs::exponential_buckets(1.0, 2.0, 20))),
      m_jct_seconds_(obs::histogram(opt_.obs, "sched.jct_seconds",
                                    obs::exponential_buckets(1.0, 1.6, 28))),
      m_slowdown_(obs::histogram(opt_.obs, "sched.slowdown",
                                 obs::exponential_buckets(1.0, 1.3, 24))),
      m_plan_wall_(obs::histogram(opt_.obs, "planner.plan_wall_seconds",
                                  obs::exponential_buckets(1e-6, 4.0, 16))) {
  if (Status s = validate(opt_); !s) DS_CHECK_MSG(false, s.message());
  mean_worker_bw_ = ledger_.total_bandwidth() / cluster_->num_workers();
  flight_ = obs::flight(opt_.obs);
  slo_ = std::make_unique<obs::SloTracker>(
      obs::SloOptions{opt_.slo, opt_.slo_accuracy}, opt_.obs, flight_);
}

Scheduler::~Scheduler() = default;

service::JobId Scheduler::submit(const dag::JobDag& dag, int priority) {
  return submit_at(sim_.now(), dag, priority);
}

service::JobId Scheduler::submit_at(Seconds arrival, const dag::JobDag& dag,
                                    int priority) {
  auto j = std::make_unique<Job>(Job{JobStatus{}, dag, next_seq_++, 0, {}, {}});
  const service::JobId id = static_cast<service::JobId>(jobs_.size()) + 1;
  j->status.id = id;
  j->status.name = dag.name();
  j->status.priority = priority;
  j->status.arrival = std::max(arrival, sim_.now());

  // Dedicated-cluster baseline (slowdown denominator, SJF key) and the
  // critical-path score, both on the full measured cluster profile.
  core::JobProfile full = core::JobProfile::from_measured(j->dag, *cluster_);
  j->status.dedicated_estimate =
      service::predicted_dedicated_jct(full, opt_.estimate_slot);
  j->critical_path = service::critical_path_time(full);

  jobs_.push_back(std::move(j));
  m_submitted_.inc();
  sim_.schedule_at(job(id).status.arrival, [this, id] { arrive(id); });
  return id;
}

void Scheduler::flight_event(obs::FlightKind kind, service::JobId id,
                             double value, double aux) {
  if (flight_ == nullptr) return;
  obs::FlightRecord r;
  r.t = sim_.now();
  r.kind = kind;
  r.job = id;
  r.priority = job(id).status.priority;
  r.queue_depth = static_cast<double>(queue_.size());
  r.occupancy = ledger_.slot_occupancy();
  r.value = value;
  r.aux = aux;
  flight_->record(r);
}

void Scheduler::arrive(service::JobId id) {
  queue_.push_back(id);
  m_queue_depth_.set(static_cast<double>(queue_.size()));
  flight_event(obs::FlightKind::kSubmit, id,
               job(id).status.dedicated_estimate);
  maybe_start_telemetry();
  try_admit();
}

bool Scheduler::all_terminal() const {
  for (const auto& j : jobs_) {
    if (j->status.state == JobState::kQueued ||
        j->status.state == JobState::kRunning)
      return false;
  }
  return true;
}

void Scheduler::maybe_start_telemetry() {
  if (opt_.telemetry == nullptr || telemetry_running_) return;
  telemetry_running_ = true;
  sim_.schedule_after(opt_.telemetry_period, [this] { telemetry_tick(); });
}

void Scheduler::telemetry_tick() {
  opt_.telemetry->snapshot(*opt_.obs, sim_.now());
  // Keep ticking while any job is live; otherwise stop, so drain()
  // terminates (a later arrival restarts the chain).
  if (all_terminal()) {
    telemetry_running_ = false;
    return;
  }
  sim_.schedule_after(opt_.telemetry_period, [this] { telemetry_tick(); });
}

int Scheduler::effective_priority(const Job& j, Seconds now) const {
  int eff = j.status.priority;
  if (opt_.delay_budget > 0) {
    const Seconds wait = now - j.status.arrival;
    eff -= static_cast<int>(std::floor(wait / opt_.delay_budget));
  }
  return eff;
}

bool Scheduler::urgent(const Job& j, Seconds now) const {
  return opt_.delay_budget > 0 &&
         now - j.status.arrival >= opt_.delay_budget;
}

service::ClusterLedger::Grant Scheduler::size_grant(const Job& j) const {
  int demand = 1;
  for (int s = 0; s < j.dag.num_stages(); ++s)
    demand = std::max(demand, j.dag.stage(s).num_tasks);
  const int total = ledger_.total_slots();
  const int cap = std::max(opt_.min_slots_per_job,
                           static_cast<int>(opt_.max_share * total));
  int slots = std::clamp(demand, opt_.min_slots_per_job, cap);
  slots = std::min(slots, total);  // idle cluster always fits any job

  service::ClusterLedger::Grant g;
  g.slots = slots;
  const int workers = static_cast<int>(std::ceil(
      static_cast<double>(slots) / opt_.cluster.executors_per_worker));
  g.bandwidth = std::min(workers * mean_worker_bw_, ledger_.total_bandwidth());
  return g;
}

void Scheduler::try_admit() {
  const Seconds now = sim_.now();
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;
    // Rank the queue: effective priority class, then the policy score, then
    // arrival order. Sorting ids (stable key set) keeps this deterministic.
    std::vector<service::JobId> order = queue_;
    std::sort(order.begin(), order.end(),
              [&](service::JobId a, service::JobId b) {
                const Job& ja = job(a);
                const Job& jb = job(b);
                const int ea = effective_priority(ja, now);
                const int eb = effective_priority(jb, now);
                if (ea != eb) return ea < eb;
                const double sa =
                    service::policy_score(opt_.policy,
                                          ja.status.dedicated_estimate,
                                          ja.critical_path);
                const double sb =
                    service::policy_score(opt_.policy,
                                          jb.status.dedicated_estimate,
                                          jb.critical_path);
                if (sa != sb) return sa < sb;
                return ja.seq < jb.seq;
              });
    for (service::JobId id : order) {
      const auto grant = size_grant(job(id));
      if (ledger_.fits(grant)) {
        admit(id, grant);
        progress = true;  // capacity changed; re-rank and rescan
        break;
      }
      // Head job does not fit. Backfill past it — unless it has aged a full
      // budget quantum, in which case the cluster drains for it.
      if (urgent(job(id), now)) return;
    }
  }
}

core::JobProfile Scheduler::residual_profile(
    const Job& j, const service::ClusterLedger::Grant& g) const {
  core::JobProfile p = core::JobProfile::from_measured(j.dag, *cluster_);
  const int workers = std::clamp(
      static_cast<int>(std::ceil(static_cast<double>(g.slots) /
                                 opt_.cluster.executors_per_worker)),
      1, cluster_->num_workers());
  p.cluster.num_workers = workers;
  // Occupancy discount: the share of worker bandwidth other jobs have
  // committed is (mostly) unavailable, so the planner's f_w_τ(X) factors
  // operate on the residual link capacity. Floored well above zero — even a
  // saturated ledger leaves some capacity (commitments are admission-time
  // grants, not instantaneous usage).
  const double factor = std::max(
      0.05, 1.0 - opt_.interference * ledger_.bandwidth_occupancy());
  p.cluster.nic_bw *= factor;
  p.cluster.storage_net_bw *= factor;
  return p;
}

void Scheduler::admit(service::JobId id, const service::ClusterLedger::Grant& g) {
  Job& j = job(id);
  const Seconds now = sim_.now();
  const Seconds wait = now - j.status.arrival;

  engine::RunOptions run;
  run.seed = opt_.seed + id;
  run.obs = opt_.obs;
  run.flight_job_id = id;
  run.task_failure_rate = opt_.task_failure_rate;
  run.max_attempts = opt_.max_attempts;
  if (opt_.plan_delays) {
    const core::JobProfile residual = residual_profile(j, g);
    const auto plan_started = std::chrono::steady_clock::now();
    auto planned = plans_.plan(j.dag, residual);
    const double plan_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      plan_started)
            .count();
    m_plan_wall_.observe(plan_wall);
    slo_->observe_plan_latency(j.status.priority, plan_wall);
    j.plan = planned.plan;
    j.status.plan_cache_hit = planned.cache_hit;
    if (planned.cache_hit) m_cache_hits_.inc();
    run.plan.delay = planned.plan->delay;
    // Delay-budget rebalancing: a job that queued long has already been
    // staggered relative to the fleet — shrink its planned delays so it
    // does not pay twice.
    if (opt_.delay_budget > 0 && wait > 0) {
      const double scale = std::max(0.0, 1.0 - wait / opt_.delay_budget);
      for (Seconds& d : run.plan.delay) d *= scale;
    }
    for (Seconds d : run.plan.delay) j.status.planned_delay += d;
  }
  // Priority classes flow into execution: the executor queue serves lower
  // class values first, so an important job's tasks win contended slots.
  run.plan.priority.assign(static_cast<std::size_t>(j.dag.num_stages()),
                           j.status.priority);
  run.on_finished = [this, id](const engine::JobResult& r) {
    on_job_finished(id, r);
  };

  ledger_.commit(id, g);
  queue_.erase(std::find(queue_.begin(), queue_.end(), id));
  j.status.state = JobState::kRunning;
  j.status.admitted = now;
  j.status.wait = wait;
  j.status.grant = g;

  // Audit trail: admit (how long it queued), grant (what it was promised,
  // and the ledger state after committing), plan (the delay budget chosen
  // and whether the plan cache already had it).
  flight_event(obs::FlightKind::kAdmit, id, wait);
  flight_event(obs::FlightKind::kGrant, id, static_cast<double>(g.slots),
               g.bandwidth);
  if (opt_.plan_delays && flight_ != nullptr) {
    obs::FlightRecord r;
    r.t = now;
    r.kind = obs::FlightKind::kPlan;
    r.job = id;
    r.priority = j.status.priority;
    r.queue_depth = static_cast<double>(queue_.size());
    r.occupancy = ledger_.slot_occupancy();
    r.value = j.status.planned_delay;
    r.cache = j.status.plan_cache_hit ? 1 : 0;
    flight_->record(r);
  }
  slo_->observe_queue_wait(j.status.priority, wait);
  slo_->evaluate(now);

  j.run = std::make_unique<engine::JobRun>(*cluster_, j.dag, std::move(run));
  j.run->start();

  m_admitted_.inc();
  m_wait_seconds_.observe(wait);
  m_queue_depth_.set(static_cast<double>(queue_.size()));
  m_active_jobs_.set(static_cast<double>(ledger_.active_jobs()));
  m_slot_occupancy_.set(ledger_.slot_occupancy());
  m_ledger_slots_busy_.set(static_cast<double>(ledger_.committed_slots()));
}

void Scheduler::on_job_finished(service::JobId id,
                                const engine::JobResult& result) {
  Job& j = job(id);
  const Seconds now = sim_.now();
  j.status.state = result.failed ? JobState::kFailed : JobState::kFinished;
  j.status.finish = now;
  j.status.jct = now - j.status.arrival;
  if (j.status.dedicated_estimate > 0)
    j.status.slowdown = j.status.jct / j.status.dedicated_estimate;

  if (j.plan && !result.failed) plans_.observe(j.dag, *j.plan, result);
  const double released_slots = static_cast<double>(j.status.grant.slots);
  ledger_.release(id);

  if (result.failed) {
    m_failed_.inc();
    flight_event(obs::FlightKind::kFail, id, j.status.jct);
  } else {
    m_finished_.inc();
    m_jct_seconds_.observe(j.status.jct);
    m_slowdown_.observe(j.status.slowdown);
    slo_->observe_finish(j.status.priority, j.status.jct, j.status.slowdown);
    flight_event(obs::FlightKind::kFinish, id, j.status.jct,
                 j.status.slowdown);
  }
  flight_event(obs::FlightKind::kRelease, id, released_slots,
               j.status.grant.bandwidth);
  slo_->evaluate(now);
  m_active_jobs_.set(static_cast<double>(ledger_.active_jobs()));
  m_slot_occupancy_.set(ledger_.slot_occupancy());
  m_ledger_slots_busy_.set(static_cast<double>(ledger_.committed_slots()));

  // Freed capacity: run admission immediately, at this completion's time.
  try_admit();
}

void Scheduler::drain() {
  sim_.run();
  for (const auto& j : jobs_)
    DS_CHECK_MSG(j->status.state == JobState::kFinished ||
                     j->status.state == JobState::kFailed,
                 "job " << j->status.id << " (" << j->status.name
                        << ") not terminal after drain");
}

void Scheduler::run_until(Seconds t) { sim_.run_until(t); }

const JobStatus& Scheduler::poll(service::JobId id) const {
  DS_CHECK_MSG(id >= 1 && id <= jobs_.size(), "unknown job id " << id);
  return job(id).status;
}

FleetStats Scheduler::fleet() const {
  FleetStats f;
  f.submitted = jobs_.size();
  std::vector<double> jcts, slowdowns;
  double wait_sum = 0, jct_sum = 0, slow_sum = 0, delay_sum = 0;
  std::size_t admitted = 0, cache_hits = 0;
  for (const auto& jp : jobs_) {
    const JobStatus& s = jp->status;
    switch (s.state) {
      case JobState::kQueued: ++f.queued; break;
      case JobState::kRunning: ++f.running; break;
      case JobState::kFailed: ++f.failed; break;
      case JobState::kFinished: ++f.finished; break;
    }
    if (s.state == JobState::kQueued) continue;
    ++admitted;
    wait_sum += s.wait;
    f.max_wait = std::max(f.max_wait, s.wait);
    delay_sum += s.planned_delay;
    if (s.plan_cache_hit) ++cache_hits;
    if (s.state == JobState::kFinished) {
      f.makespan = std::max(f.makespan, s.finish);
      jct_sum += s.jct;
      slow_sum += s.slowdown;
      jcts.push_back(s.jct);
      slowdowns.push_back(s.slowdown);
    }
  }
  if (admitted > 0) {
    f.mean_wait = wait_sum / static_cast<double>(admitted);
    f.mean_planned_delay = delay_sum / static_cast<double>(admitted);
    f.plan_cache_hit_rate =
        static_cast<double>(cache_hits) / static_cast<double>(admitted);
  }
  if (f.finished > 0) {
    f.mean_jct = jct_sum / static_cast<double>(f.finished);
    f.mean_slowdown = slow_sum / static_cast<double>(f.finished);
    f.p99_jct = percentile(jcts, 0.99);
    f.p99_slowdown = percentile(slowdowns, 0.99);
  }
  f.peak_slot_occupancy =
      static_cast<double>(ledger_.peak_slots()) / ledger_.total_slots();
  return f;
}

void Scheduler::write_stats(std::ostream& os) const {
  const FleetStats f = fleet();
  os << "{\"v\": 1, \"ev\": \"stats\", \"t\": " << fmt_number(sim_.now())
     << ", \"submitted\": " << f.submitted << ", \"queued\": " << f.queued
     << ", \"running\": " << f.running << ", \"finished\": " << f.finished
     << ", \"failed\": " << f.failed
     << ", \"queue_depth\": " << queue_.size()
     << ", \"ledger_slots_busy\": " << ledger_.committed_slots()
     << ", \"slot_occupancy\": " << fmt_number(ledger_.slot_occupancy())
     << ", \"bandwidth_occupancy\": "
     << fmt_number(ledger_.bandwidth_occupancy())
     << ", \"plan_cache_hit_rate\": " << fmt_number(f.plan_cache_hit_rate)
     << ", \"mean_wait\": " << fmt_number(f.mean_wait)
     << ", \"mean_jct\": " << fmt_number(f.mean_jct)
     << ", \"p99_jct\": " << fmt_number(f.p99_jct)
     << ", \"mean_slowdown\": " << fmt_number(f.mean_slowdown)
     << ", \"p99_slowdown\": " << fmt_number(f.p99_slowdown)
     << ", \"slo_violations\": " << slo_->violations() << "}\n";
  if (!slo_->empty()) slo_->write_ndjson(os, sim_.now());
}

}  // namespace ds
