// Job arrival processes for the scheduler service.
//
// Two sources, matching how the paper's §5.3 trace experiments are driven:
//   * Poisson — i.i.d. exponential inter-arrival gaps at a target rate, the
//     standard open-loop load generator ("arrival intensity" in the
//     bench_multijob ablation is this rate).
//   * Trace-driven — inter-arrival gaps replayed from real submit
//     timestamps (e.g. the Alibaba batch_task table via
//     trace::parse_batch_task_file, or the calibrated synthetic trace),
//     preserving the burstiness a Poisson process smooths away.
//
// Both return absolute submit times starting at 0, deterministic for a
// given seed / trace. `rescale_to_rate` maps a trace's gaps onto a target
// mean rate so the same burst structure can be swept across intensities.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/units.h"

namespace ds::service {

// `rate` is jobs per second (> 0). First arrival at the first sampled gap.
std::vector<Seconds> poisson_arrivals(std::size_t n, double rate,
                                      std::uint64_t seed);

// Inter-arrival structure of `jobs`' submit_time fields (sorted, shifted to
// start at 0), cycled if n exceeds the trace length. Jobs with identical
// timestamps arrive back-to-back, exactly as recorded.
std::vector<Seconds> trace_arrivals(const std::vector<trace::TraceJob>& jobs,
                                    std::size_t n);

// Uniformly rescale arrival times so the mean inter-arrival gap is 1/rate.
// No-op for fewer than two arrivals or a degenerate (all-equal) trace.
void rescale_to_rate(std::vector<Seconds>& arrivals, double rate);

}  // namespace ds::service
