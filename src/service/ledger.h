// ClusterLedger — live resource commitments of the multi-job scheduler.
//
// The ledger is the scheduler's single source of truth for "what is already
// promised": every admitted job charges the executor slots and worker NIC
// bandwidth it was granted, and releases them when it reaches a terminal
// state. Admission control asks `fits()` before launching anything, and
// `commit()` enforces the no-over-commit invariant with a DS_CHECK — the
// scheduler can *never* promise more slots or bandwidth than the cluster
// has, by construction rather than by convention.
//
// Commitments are admission-time grants (the planner's residual-capacity
// view), not instantaneous usage: a job's tasks may momentarily hold fewer
// slots than its grant while stages hand over, but the grant is what the
// next job's plan must assume is gone. Peak trackers record the high-water
// marks for the fleet report.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/check.h"
#include "util/units.h"

namespace ds::service {

using JobId = std::uint64_t;

class ClusterLedger {
 public:
  struct Grant {
    int slots = 0;
    BytesPerSec bandwidth = 0;
  };

  ClusterLedger(int total_slots, BytesPerSec total_bandwidth)
      : total_slots_(total_slots), total_bw_(total_bandwidth) {
    DS_CHECK(total_slots_ > 0);
    DS_CHECK(total_bw_ > 0);
  }

  // Would this grant fit in the remaining capacity? A small epsilon absorbs
  // floating-point dust on the bandwidth side; slots are exact integers.
  bool fits(const Grant& g) const {
    return g.slots <= free_slots() &&
           g.bandwidth <= free_bandwidth() + kBwEpsilon;
  }

  // Charge a grant to `job`. The job must not already hold a grant, and the
  // grant must fit — admission control checks fits() first, so a violation
  // here is a scheduler bug, not a load condition.
  void commit(JobId job, const Grant& g);

  // Return a job's grant to the pool. No-op for unknown ids (a job that was
  // never admitted, or released twice, is a bug — checked).
  void release(JobId job);

  int total_slots() const { return total_slots_; }
  BytesPerSec total_bandwidth() const { return total_bw_; }
  int committed_slots() const { return committed_slots_; }
  BytesPerSec committed_bandwidth() const { return committed_bw_; }
  int free_slots() const { return total_slots_ - committed_slots_; }
  BytesPerSec free_bandwidth() const { return total_bw_ - committed_bw_; }
  std::size_t active_jobs() const { return grants_.size(); }
  // Fraction of executor slots currently promised, in [0, 1].
  double slot_occupancy() const {
    return static_cast<double>(committed_slots_) / total_slots_;
  }
  double bandwidth_occupancy() const { return committed_bw_ / total_bw_; }
  const Grant* grant(JobId job) const {
    auto it = grants_.find(job);
    return it == grants_.end() ? nullptr : &it->second;
  }

  // High-water marks since construction.
  int peak_slots() const { return peak_slots_; }
  BytesPerSec peak_bandwidth() const { return peak_bw_; }

 private:
  static constexpr BytesPerSec kBwEpsilon = 1e-6;

  int total_slots_;
  BytesPerSec total_bw_;
  int committed_slots_ = 0;
  BytesPerSec committed_bw_ = 0;
  int peak_slots_ = 0;
  BytesPerSec peak_bw_ = 0;
  std::unordered_map<JobId, Grant> grants_;
};

}  // namespace ds::service
