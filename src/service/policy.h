// Cross-job ordering policies for the multi-job scheduler's admission queue.
//
// Three orderings from the literature the paper positions itself against:
//   * FIFO — arrival order, the stock Spark/YARN queue.
//   * SJF — shortest predicted JCT first (predicted by the same analytic
//     evaluator the DelayStage planner uses, at zero delays on the job's
//     residual profile), the classic mean-JCT optimiser.
//   * HardFirst — a DAGPS-style "do the hard stuff first" score: jobs with
//     the longest critical path (the hard-to-overlap spine of the DAG) are
//     admitted first, so their long dependency chains start ticking while
//     lighter jobs backfill around them.
//
// Policies only produce a *score*; the scheduler combines it with priority
// classes and aging (see scheduler.h) so no policy can starve a job.
#pragma once

#include <string>

#include "core/profile.h"
#include "util/status.h"
#include "util/units.h"

namespace ds::service {

enum class OrderPolicy { kFifo, kSjf, kHardFirst };

// "fifo" | "sjf" | "hard-first" (case-sensitive, the CLI spelling).
Status parse_order_policy(const std::string& name, OrderPolicy* out);
const char* to_string(OrderPolicy policy);

// Predicted dedicated-cluster JCT of `profile`'s job at zero delays — the
// SJF key. Uses the interference-aware slotted evaluator, so it is the same
// estimate the planner's x = 0 baseline scores.
Seconds predicted_dedicated_jct(const core::JobProfile& profile, Seconds slot);

// Length of the DAG's critical path in solo stage times (Alg. 1 line 2's
// ^t_k summed along the longest dependency chain) — the HardFirst key.
Seconds critical_path_time(const core::JobProfile& profile);

// Policy sort key for one queued job: smaller = admit earlier. FIFO ignores
// both estimates (the scheduler's arrival sequence breaks ties).
double policy_score(OrderPolicy policy, Seconds predicted_jct,
                    Seconds critical_path);

}  // namespace ds::service
