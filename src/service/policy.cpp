#include "service/policy.h"

#include <algorithm>
#include <vector>

#include "core/evaluator.h"
#include "core/perf_model.h"
#include "dag/job.h"

namespace ds::service {

Status parse_order_policy(const std::string& name, OrderPolicy* out) {
  if (name == "fifo") {
    *out = OrderPolicy::kFifo;
  } else if (name == "sjf") {
    *out = OrderPolicy::kSjf;
  } else if (name == "hard-first") {
    *out = OrderPolicy::kHardFirst;
  } else {
    return Status::error("unknown ordering policy '" + name +
                         "' (expected fifo, sjf or hard-first)");
  }
  return Status::ok();
}

const char* to_string(OrderPolicy policy) {
  switch (policy) {
    case OrderPolicy::kFifo: return "fifo";
    case OrderPolicy::kSjf: return "sjf";
    case OrderPolicy::kHardFirst: return "hard-first";
  }
  return "?";
}

Seconds predicted_dedicated_jct(const core::JobProfile& profile,
                                Seconds slot) {
  core::ScheduleEvaluator eval(profile, slot);
  return eval.evaluate({}).jct;
}

Seconds critical_path_time(const core::JobProfile& profile) {
  const dag::JobDag& dag = *profile.dag;
  core::PerfModel model(profile);
  std::vector<Seconds> longest(static_cast<std::size_t>(dag.num_stages()), 0);
  Seconds best = 0;
  for (dag::StageId s : dag.topo_order()) {
    const auto i = static_cast<std::size_t>(s);
    Seconds from_parents = 0;
    for (dag::StageId p : dag.parents(s))
      from_parents =
          std::max(from_parents, longest[static_cast<std::size_t>(p)]);
    longest[i] = from_parents + model.solo_time(s);
    best = std::max(best, longest[i]);
  }
  return best;
}

double policy_score(OrderPolicy policy, Seconds predicted_jct,
                    Seconds critical_path) {
  switch (policy) {
    case OrderPolicy::kFifo: return 0;  // arrival sequence decides
    case OrderPolicy::kSjf: return predicted_jct;
    // Longest critical path first — negate so smaller still means earlier.
    case OrderPolicy::kHardFirst: return -critical_path;
  }
  return 0;
}

}  // namespace ds::service
