#include "service/arrivals.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace ds::service {

std::vector<Seconds> poisson_arrivals(std::size_t n, double rate,
                                      std::uint64_t seed) {
  DS_CHECK_MSG(rate > 0, "arrival rate must be positive");
  Rng rng(seed);
  std::vector<Seconds> out;
  out.reserve(n);
  Seconds t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(rate);
    out.push_back(t);
  }
  return out;
}

std::vector<Seconds> trace_arrivals(const std::vector<trace::TraceJob>& jobs,
                                    std::size_t n) {
  std::vector<Seconds> submits;
  submits.reserve(jobs.size());
  for (const auto& j : jobs) submits.push_back(j.submit_time);
  std::sort(submits.begin(), submits.end());
  DS_CHECK_MSG(!submits.empty(), "trace_arrivals needs at least one job");

  // Gap sequence of the recorded trace; a single-job trace degenerates to
  // simultaneous arrivals (gap 0).
  std::vector<Seconds> gaps;
  for (std::size_t i = 1; i < submits.size(); ++i)
    gaps.push_back(submits[i] - submits[i - 1]);
  if (gaps.empty()) gaps.push_back(0);

  std::vector<Seconds> out;
  out.reserve(n);
  Seconds t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(t);
    t += gaps[i % gaps.size()];
  }
  return out;
}

void rescale_to_rate(std::vector<Seconds>& arrivals, double rate) {
  DS_CHECK_MSG(rate > 0, "arrival rate must be positive");
  if (arrivals.size() < 2) return;
  const Seconds span = arrivals.back() - arrivals.front();
  if (span <= 0) return;
  const Seconds target_span =
      static_cast<Seconds>(arrivals.size() - 1) / rate;
  const double scale = target_span / span;
  const Seconds base = arrivals.front();
  for (Seconds& a : arrivals) a = (a - base) * scale;
}

}  // namespace ds::service
