#include "service/ledger.h"

namespace ds::service {

void ClusterLedger::commit(JobId job, const Grant& g) {
  DS_CHECK_MSG(g.slots > 0, "grant must hold at least one slot");
  DS_CHECK_MSG(g.bandwidth >= 0, "negative bandwidth grant");
  DS_CHECK_MSG(grants_.find(job) == grants_.end(),
               "job " << job << " already holds a grant");
  DS_CHECK_MSG(fits(g), "over-commit: " << g.slots << " slots / "
                                        << g.bandwidth << " B/s requested, "
                                        << free_slots() << " slots / "
                                        << free_bandwidth() << " B/s free");
  grants_.emplace(job, g);
  committed_slots_ += g.slots;
  committed_bw_ += g.bandwidth;
  if (committed_bw_ > total_bw_) committed_bw_ = total_bw_;  // absorb fp dust
  if (committed_slots_ > peak_slots_) peak_slots_ = committed_slots_;
  if (committed_bw_ > peak_bw_) peak_bw_ = committed_bw_;
}

void ClusterLedger::release(JobId job) {
  auto it = grants_.find(job);
  DS_CHECK_MSG(it != grants_.end(), "release of unknown job " << job);
  committed_slots_ -= it->second.slots;
  committed_bw_ -= it->second.bandwidth;
  if (committed_bw_ < 0) committed_bw_ = 0;  // fp dust from repeated releases
  DS_CHECK(committed_slots_ >= 0);
  grants_.erase(it);
}

}  // namespace ds::service
