// ds::Scheduler — the online multi-job scheduler service, and the library's
// canonical public entry point.
//
// Where trace::replay approximates cross-job contention with processor
// sharing (§5.3's simplification), the Scheduler hosts many concurrent
// engine::JobRuns on ONE simulated cluster: jobs arrive as a stream
// (submit / submit_at, fed by service::poisson_arrivals or trace-driven
// gaps), wait in an admission queue, and execute side by side on the shared
// ExecutorPool / NetworkFabric, contending for slots and links exactly as
// the discrete-event engine resolves them.
//
// Admission pipeline per job:
//   1. Sizing — the job's slot demand (widest stage, clamped to
//      [min_slots_per_job, max_share × cluster]) and the matching worker
//      NIC bandwidth become a ClusterLedger grant. The ledger can never
//      over-commit: admission waits until the grant fits.
//   2. Ordering — queued jobs are ranked by effective priority (priority
//      class minus ⌊wait / delay_budget⌋ aging, so no class starves), then
//      by the OrderPolicy score (FIFO / SJF-by-predicted-JCT / DAGPS-style
//      hard-stuff-first), then arrival order. Smaller jobs may backfill
//      around a job that does not fit — until that job has aged a full
//      budget quantum, at which point backfill stops and the cluster drains
//      for it (admission fairness under priority inversion).
//   3. Planning — the DelayStage planner (via store::PlanService, so plans
//      are cached and profiles calibrate across recurrent jobs) runs
//      against the job's *residual* capacity: a profile whose worker count
//      is the granted share and whose bandwidths are discounted by the
//      other jobs' committed occupancy — inter-job interference folded into
//      the same f_w_τ(X) sharing factors Eq. 1 already models. Jobs that
//      waited long have their planned delays scaled down by
//      max(0, 1 − wait/delay_budget): queueing already staggered them.
//   4. Execution — an engine::JobRun on the shared cluster, stage
//      priorities set to the job's class so the executor queue serves
//      important jobs first; completion releases the grant, feeds the run
//      back into the PlanService (profile calibration + drift
//      invalidation), and immediately re-runs admission.
//
// Determinism: arrivals, admissions and completions are all simulator
// events processed in deterministic order, and the planner is bit-identical
// for any thread count — so the whole service is bit-identical for any
// SchedulerOptions::threads (scheduler_test pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "engine/job_run.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "service/ledger.h"
#include "service/policy.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "store/plan_service.h"
#include "util/status.h"

namespace ds {

// CommonOptions supplies:
//   threads — planner workers on the admission path (the DelayCalculator's
//     candidate fan-out). Results are bit-identical for any value.
//   seed — cluster bandwidth draws, per-job engine seeds (job i runs with
//     seed + i) and the Poisson arrival generator convention.
//   obs — fleet metrics (sched.* counters/gauges/histograms) plus everything
//     the engine, planner and plan service publish.
struct SchedulerOptions : CommonOptions {
  sim::ClusterSpec cluster = sim::ClusterSpec::paper_prototype();
  // Cross-job ordering policy for the admission queue.
  service::OrderPolicy policy = service::OrderPolicy::kFifo;
  // DelayStage planning on admission; false = zero-delay stock baseline
  // (the bench_multijob ablation's control arm).
  bool plan_delays = true;
  // Plan-service backing the admission planner (cache shards/capacity,
  // profile store path, calculator tuning). threads/seed/obs inside
  // plan.calculator are overridden from this struct's CommonOptions.
  store::PlanServiceOptions plan;
  // Admission sizing: one job may hold at most max_share of the cluster's
  // executor slots, and always at least min_slots_per_job (clamped to the
  // cluster size) — so an idle cluster can admit any job and drain() always
  // terminates.
  double max_share = 0.5;
  int min_slots_per_job = 2;
  // How strongly other jobs' committed bandwidth discounts the residual
  // profile the planner sees (0 = plan as if alone; 1 = committed bandwidth
  // is fully unavailable).
  double interference = 1.0;
  // Aging quantum: a queued job's effective priority improves by one class
  // per delay_budget seconds waited, a job aged past one full quantum
  // blocks backfill, and planned delays scale by max(0, 1 − wait/budget).
  // <= 0 disables aging and delay rebalancing (strict class order).
  Seconds delay_budget = 120.0;
  // Slot width of the analytic evaluator used for the dedicated-JCT
  // estimate (the slowdown baseline and the SJF key).
  Seconds estimate_slot = 1.0;
  // Online SLO rules (parse_slo_rule's "p99_slowdown<=2.5" grammar),
  // evaluated after every admission and completion over exact-merge quantile
  // sketches. Each ok→violated transition records a slo_violation flight
  // event and bumps the slo.violations counter; the live quantile is the
  // slo.<spec> gauge. A plan_latency rule observes planner *wall* time and
  // is therefore not bit-reproducible; the other metrics are.
  std::vector<obs::SloRule> slo;
  double slo_accuracy = 0.01;  // sketch relative accuracy (see quantile_sketch.h)
  // Streaming telemetry: snapshot obs's registry into this sink every
  // telemetry_period *simulated* seconds while any job is non-terminal
  // (requires obs; the sink must outlive the scheduler). Ticks are ordinary
  // sim events at fixed times, so the stream is bit-identical for any
  // `threads` — filter out the wall-clock metric prefixes (planner.,
  // tracer.) for a byte-reproducible file.
  obs::TelemetrySink* telemetry = nullptr;
  Seconds telemetry_period = 10.0;
  // Fault injection forwarded to every admitted run (see
  // engine::RunOptions): each task attempt aborts with this probability;
  // a task aborting max_attempts times fails its job terminally — which
  // auto-dumps the flight recorder, the audit path sched_cli exercises
  // with --fail-rate.
  double task_failure_rate = 0.0;
  int max_attempts = 4;
};

// Validates field combinations (share in (0, 1], positive sizing, a sane
// cluster). The Scheduler constructor enforces this (throwing CheckError
// with the same message); CLIs call it up front for a friendly `error: …`.
Status validate(const SchedulerOptions& options);

enum class JobState { kQueued, kRunning, kFinished, kFailed };
const char* to_string(JobState state);

// Snapshot of one submitted job, returned by poll().
struct JobStatus {
  service::JobId id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  int priority = 0;  // lower = more important (executor-pool convention)
  Seconds arrival = -1;
  Seconds admitted = -1;  // -1 while queued
  Seconds finish = -1;    // -1 until terminal
  Seconds wait = 0;       // admitted − arrival (final once running)
  Seconds jct = -1;       // finish − arrival, queueing included
  // Analytic zero-delay JCT on the whole (idle) cluster — the denominator
  // of the slowdown metric and the SJF ordering key.
  Seconds dedicated_estimate = 0;
  double slowdown = 0;  // jct / dedicated_estimate, once finished
  Seconds planned_delay = 0;  // Σ_k x_k actually applied (after rebalancing)
  bool plan_cache_hit = false;
  service::ClusterLedger::Grant grant;  // zero until admitted
};

// Fleet-level queueing metrics over everything submitted so far.
struct FleetStats {
  std::size_t submitted = 0;
  std::size_t finished = 0;
  std::size_t failed = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
  Seconds makespan = 0;  // latest finish time
  Seconds mean_wait = 0;
  Seconds max_wait = 0;
  Seconds mean_jct = 0;
  Seconds p99_jct = 0;  // nearest-rank over finished jobs
  double mean_slowdown = 0;
  double p99_slowdown = 0;
  double peak_slot_occupancy = 0;  // ledger high-water mark, in [0, 1]
  double plan_cache_hit_rate = 0;  // over admitted jobs with planning on
  Seconds mean_planned_delay = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Submit a job arriving now (or at `arrival`; past times clamp to now).
  // The dag is copied — the caller's copy need not outlive the scheduler.
  // Lower `priority` = more important, default 0; ids start at 1.
  service::JobId submit(const dag::JobDag& dag, int priority = 0);
  service::JobId submit_at(Seconds arrival, const dag::JobDag& dag,
                           int priority = 0);

  // Status snapshot; valid until the next submit. Ids are dense from 1.
  const JobStatus& poll(service::JobId id) const;

  // Advance simulated time. drain() runs until every submitted job reached
  // a terminal state (guaranteed to terminate: grants are clamped to the
  // cluster, so an idle cluster admits any head-of-queue job).
  void drain();
  void run_until(Seconds t);
  Seconds now() const { return sim_.now(); }

  FleetStats fleet() const;
  const service::ClusterLedger& ledger() const { return ledger_; }
  sim::Cluster& cluster() { return *cluster_; }
  store::PlanService& plans() { return plans_; }
  const SchedulerOptions& options() const { return opt_; }
  // Live SLO state (sketches, rule verdicts, violation count).
  const obs::SloTracker& slo() const { return *slo_; }

  // One {"v": 1, "ev": "stats", …} NDJSON line with the live queue / ledger
  // / fleet state (plus an "ev": "slo" line when rules are configured) — the
  // stats command of the jobs-in protocol and `serve` both answer with this.
  void write_stats(std::ostream& os) const;

 private:
  struct Job {
    JobStatus status;
    dag::JobDag dag;  // owned copy; JobRun and profiles reference it
    std::uint64_t seq = 0;  // arrival sequence (FIFO key, global tie-break)
    Seconds critical_path = 0;  // HardFirst key
    std::shared_ptr<const core::DelaySchedule> plan;
    std::unique_ptr<engine::JobRun> run;
  };

  Job& job(service::JobId id) { return *jobs_[id - 1]; }
  const Job& job(service::JobId id) const { return *jobs_[id - 1]; }

  void arrive(service::JobId id);
  // Admit every queued job that fits, honouring ordering + backfill rules.
  void try_admit();
  // Effective priority of a queued job at sim time `now`.
  int effective_priority(const Job& j, Seconds now) const;
  // Aged past a full budget quantum — blocks backfill behind it.
  bool urgent(const Job& j, Seconds now) const;
  service::ClusterLedger::Grant size_grant(const Job& j) const;
  void admit(service::JobId id, const service::ClusterLedger::Grant& g);
  // Residual-capacity profile: granted worker share, occupancy-discounted
  // bandwidth (computed against the ledger *before* this job commits).
  core::JobProfile residual_profile(const Job& j,
                                    const service::ClusterLedger::Grant& g)
      const;
  void on_job_finished(service::JobId id, const engine::JobResult& result);
  // Append one audit record stamped with sim-now and the job's priority.
  void flight_event(obs::FlightKind kind, service::JobId id, double value,
                    double aux = 0);
  // Start the telemetry cadence if a sink is configured and the chain is
  // not already running (restarted by arrivals after a quiescent period;
  // stops itself when every job is terminal, so drain() terminates).
  void maybe_start_telemetry();
  void telemetry_tick();
  bool all_terminal() const;

  SchedulerOptions opt_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Cluster> cluster_;
  service::ClusterLedger ledger_;
  store::PlanService plans_;
  BytesPerSec mean_worker_bw_ = 0;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<service::JobId> queue_;  // ids awaiting admission
  std::uint64_t next_seq_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
  std::unique_ptr<obs::SloTracker> slo_;
  bool telemetry_running_ = false;

  obs::Counter m_submitted_;
  obs::Counter m_admitted_;
  obs::Counter m_finished_;
  obs::Counter m_failed_;
  obs::Counter m_cache_hits_;
  obs::Gauge m_queue_depth_;
  obs::Gauge m_active_jobs_;
  obs::Gauge m_slot_occupancy_;
  obs::Gauge m_ledger_slots_busy_;
  obs::Histogram m_wait_seconds_;
  obs::Histogram m_jct_seconds_;
  obs::Histogram m_slowdown_;
  // Wall-clock admission-planning latency (nondeterministic by nature —
  // excluded from the reproducible telemetry surface via its planner.
  // prefix).
  obs::Histogram m_plan_wall_;
};

}  // namespace ds
