#include "store/plan_service.h"

#include "util/check.h"
#include "util/log.h"

namespace ds::store {

PlanService::PlanService(PlanServiceOptions options, obs::Observability* obs)
    : opt_(options),
      profiles_(options.profile, obs),
      cache_(options.cache, obs),
      plans_(obs::counter(obs, "plan_service.requests")),
      cold_plans_(obs::counter(obs, "plan_service.cold_plans")) {
  if (!opt_.store_path.empty()) {
    const Status st = profiles_.load(opt_.store_path, &load_info_);
    // A bad header is a real misconfiguration (wrong file), but it must not
    // take the service down: log and run cold, exactly like a first boot.
    if (!st.is_ok()) {
      DS_WARN(st.message() << " — starting with an empty profile store");
      load_info_ = ProfileStore::LoadInfo{};
      load_info_.missing = true;
    } else if (load_info_.truncated) {
      DS_WARN("profile store " << opt_.store_path
                               << " had a corrupt tail; recovered "
                               << load_info_.records << " record(s)");
    }
  }
}

PlanService::Planned PlanService::plan(const dag::JobDag& dag,
                                       const core::JobProfile& profile) {
  return plan(dag, profile, opt_.calculator);
}

PlanService::Planned PlanService::plan(
    const dag::JobDag& dag, const core::JobProfile& profile,
    const core::CalculatorOptions& options) {
  DS_CHECK_MSG(profile.dag == &dag, "profile must be built from this dag");
  plans_.inc();

  Planned out;
  out.signature = core::workload_signature(dag);
  out.epoch = profiles_.epoch(out.signature);

  PlanKey key;
  key.signature = out.signature;
  key.bucket = bucket_of(profile.cluster);
  key.options = options_digest(options);

  if (auto hit = cache_.find(key, out.epoch); hit != nullptr) {
    out.plan = std::move(hit);
    out.cache_hit = true;
    return out;
  }

  // Miss: plan against the calibrated profile. Identity factors (every
  // never-observed workload, every cold start) use the caller's profile
  // object untouched — the bit-exact pre-store path.
  cold_plans_.inc();
  const core::CalibrationFactors factors = profiles_.factors(out.signature);
  core::DelaySchedule schedule;
  if (factors.is_identity()) {
    schedule = core::DelayCalculator(profile, options).compute();
  } else {
    const core::JobProfile calibrated =
        core::calibrated_profile(profile, factors);
    schedule = core::DelayCalculator(calibrated, options).compute();
  }
  auto plan = std::make_shared<const core::DelaySchedule>(std::move(schedule));
  cache_.insert(key, out.epoch, plan);
  out.plan = std::move(plan);
  return out;
}

void PlanService::observe(const dag::JobDag& dag,
                          const core::DelaySchedule& plan,
                          const engine::JobResult& result) {
  observe(core::workload_signature(dag), core::observe_run(plan, result));
}

void PlanService::observe(std::uint64_t signature,
                          const core::PhaseObservation& obs) {
  if (profiles_.observe(signature, obs)) cache_.invalidate_signature(signature);
}

Status PlanService::save() const {
  if (opt_.store_path.empty()) return Status::ok();
  return profiles_.save(opt_.store_path);
}

}  // namespace ds::store
