#include "store/profile_store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/check.h"
#include "util/crc32.h"

namespace ds::store {

namespace {

// File layout: kMagic, u32 version, then records of
//   u32 payload_len | u32 crc32(payload) | payload
// Payload v1 is 22 host-endian 8-byte words (see encode_record). The store
// file is a node-local artifact (like the bench JSONs), not a wire format,
// so host endianness is fine.
constexpr char kMagic[4] = {'D', 'S', 'P', 'S'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kPayloadWords = 22;
constexpr std::size_t kPayloadBytes = kPayloadWords * 8;

inline std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

inline double double_of(std::uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

struct Writer {
  unsigned char buf[kPayloadBytes];
  std::size_t at = 0;
  void u64(std::uint64_t v) {
    DS_CHECK(at + 8 <= kPayloadBytes);
    std::memcpy(buf + at, &v, 8);
    at += 8;
  }
  void f64(double v) { u64(bits_of(v)); }
};

struct Reader {
  const unsigned char* buf;
  std::size_t size;
  std::size_t at = 0;
  std::uint64_t u64() {
    DS_CHECK(at + 8 <= size);
    std::uint64_t v;
    std::memcpy(&v, buf + at, 8);
    at += 8;
    return v;
  }
  double f64() { return double_of(u64()); }
};

struct FileRecord {
  std::uint64_t signature = 0;
  core::CalibrationFactors factors;
  std::uint64_t epoch = 0;
  std::uint64_t runs = 0;
  core::PhaseObservation window;
  core::PhaseObservation totals;
  core::CalibrationFactors anchor;
};

void encode_record(const FileRecord& r, Writer& w) {
  w.u64(r.signature);
  w.u64(r.epoch);
  w.u64(r.runs);
  w.f64(r.factors.network);
  w.f64(r.factors.compute);
  w.f64(r.factors.write);
  w.u64(static_cast<std::uint64_t>(r.factors.observations));
  w.f64(r.anchor.network);
  w.f64(r.anchor.compute);
  w.f64(r.anchor.write);
  w.f64(r.window.predicted_network);
  w.f64(r.window.predicted_compute);
  w.f64(r.window.predicted_write);
  w.f64(r.window.actual_network);
  w.f64(r.window.actual_compute);
  w.f64(r.window.actual_write);
  w.f64(r.totals.predicted_network);
  w.f64(r.totals.predicted_compute);
  w.f64(r.totals.predicted_write);
  w.f64(r.totals.actual_network);
  w.f64(r.totals.actual_compute);
  w.f64(r.totals.actual_write);
  DS_CHECK(w.at == kPayloadBytes);
}

FileRecord decode_record(Reader& r) {
  FileRecord out;
  out.signature = r.u64();
  out.epoch = r.u64();
  out.runs = r.u64();
  out.factors.network = r.f64();
  out.factors.compute = r.f64();
  out.factors.write = r.f64();
  out.factors.observations = static_cast<int>(r.u64());
  out.anchor.network = r.f64();
  out.anchor.compute = r.f64();
  out.anchor.write = r.f64();
  out.window.predicted_network = r.f64();
  out.window.predicted_compute = r.f64();
  out.window.predicted_write = r.f64();
  out.window.actual_network = r.f64();
  out.window.actual_compute = r.f64();
  out.window.actual_write = r.f64();
  out.totals.predicted_network = r.f64();
  out.totals.predicted_compute = r.f64();
  out.totals.predicted_write = r.f64();
  out.totals.actual_network = r.f64();
  out.totals.actual_compute = r.f64();
  out.totals.actual_write = r.f64();
  return out;
}

void decay_into(core::PhaseObservation& window,
                const core::PhaseObservation& obs, double decay,
                std::uint64_t prior_runs) {
  // First observation seeds the window; later ones blend in with weight
  // `decay` so the window tracks the recent regime without forgetting it
  // all on one noisy run.
  const double a = prior_runs == 0 ? 1.0 : decay;
  auto mix = [a](Seconds& w, Seconds v) { w = (1.0 - a) * w + a * v; };
  mix(window.predicted_network, obs.predicted_network);
  mix(window.predicted_compute, obs.predicted_compute);
  mix(window.predicted_write, obs.predicted_write);
  mix(window.actual_network, obs.actual_network);
  mix(window.actual_compute, obs.actual_compute);
  mix(window.actual_write, obs.actual_write);
}

void sum_into(core::PhaseObservation& totals,
              const core::PhaseObservation& obs) {
  totals.predicted_network += obs.predicted_network;
  totals.predicted_compute += obs.predicted_compute;
  totals.predicted_write += obs.predicted_write;
  totals.actual_network += obs.actual_network;
  totals.actual_compute += obs.actual_compute;
  totals.actual_write += obs.actual_write;
}

double max_relative_shift(const core::CalibrationFactors& a,
                          const core::CalibrationFactors& b) {
  auto shift = [](double from, double to) {
    return from > 0 ? std::abs(to - from) / from : 0.0;
  };
  return std::max({shift(a.network, b.network), shift(a.compute, b.compute),
                   shift(a.write, b.write)});
}

}  // namespace

ProfileStore::ProfileStore(ProfileStoreOptions options, obs::Observability* obs)
    : opt_(options),
      calibrator_(std::make_unique<core::ModelCalibrator>(
          options.calibration)),
      observations_(obs::counter(obs, "profile_store.observations")),
      drifts_(obs::counter(obs, "profile_store.drifts")),
      workloads_gauge_(obs::gauge(obs, "profile_store.workloads")) {
  DS_CHECK_MSG(opt_.drift_threshold > 0,
               "profile store drift_threshold must be positive");
  DS_CHECK_MSG(opt_.window_decay > 0 && opt_.window_decay <= 1.0,
               "profile store window_decay must be in (0, 1]");
}

bool ProfileStore::observe(std::uint64_t signature,
                           const core::PhaseObservation& obs) {
  if (!obs.usable()) return false;
  observations_.inc();
  calibrator_->observe(signature, obs);
  const core::CalibrationFactors now = calibrator_->factors(signature);
  std::lock_guard<std::mutex> lock(mu_);
  Record& rec = records_[signature];
  decay_into(rec.window, obs, opt_.window_decay, rec.runs);
  sum_into(rec.totals, obs);
  ++rec.runs;
  workloads_gauge_.set(static_cast<double>(records_.size()));
  if (max_relative_shift(rec.anchor, now) > opt_.drift_threshold) {
    ++rec.epoch;
    rec.anchor = now;
    drifts_.inc();
    return true;
  }
  return false;
}

core::CalibrationFactors ProfileStore::factors(std::uint64_t signature) const {
  return calibrator_->factors(signature);
}

std::uint64_t ProfileStore::epoch(std::uint64_t signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(signature);
  return it != records_.end() ? it->second.epoch : 0;
}

WorkloadStats ProfileStore::stats(std::uint64_t signature) const {
  WorkloadStats out;
  out.factors = calibrator_->factors(signature);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(signature);
  if (it != records_.end()) {
    out.epoch = it->second.epoch;
    out.runs = it->second.runs;
    out.window = it->second.window;
    out.totals = it->second.totals;
  }
  return out;
}

std::size_t ProfileStore::workloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void ProfileStore::export_to(core::ModelCalibrator& calibrator) const {
  for (const auto& [sig, f] : calibrator_->snapshot())
    calibrator.restore(sig, f);
}

void ProfileStore::import_from(const core::ModelCalibrator& calibrator) {
  for (const auto& [sig, f] : calibrator.snapshot()) {
    calibrator_->restore(sig, f);
    std::lock_guard<std::mutex> lock(mu_);
    Record& rec = records_[sig];
    if (rec.runs == 0) rec.anchor = f;  // fresh entry: anchor at import
  }
}

Status ProfileStore::save(const std::string& path) const {
  std::vector<FileRecord> recs;
  {
    const auto factors = calibrator_->snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    recs.reserve(factors.size());
    for (const auto& [sig, f] : factors) {
      FileRecord r;
      r.signature = sig;
      r.factors = f;
      if (const auto it = records_.find(sig); it != records_.end()) {
        r.epoch = it->second.epoch;
        r.runs = it->second.runs;
        r.window = it->second.window;
        r.totals = it->second.totals;
        r.anchor = it->second.anchor;
      }
      recs.push_back(r);
    }
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::error("profile store: cannot write " + tmp);
    out.write(kMagic, sizeof(kMagic));
    const std::uint32_t version = kFormatVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    for (const FileRecord& r : recs) {
      Writer w;
      encode_record(r, w);
      const auto len = static_cast<std::uint32_t>(w.at);
      const std::uint32_t crc = crc32(w.buf, w.at);
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
      out.write(reinterpret_cast<const char*>(w.buf),
                static_cast<std::streamsize>(w.at));
    }
    if (!out) return Status::error("profile store: failed writing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return Status::error("profile store: cannot rename " + tmp + " over " +
                         path);
  return Status::ok();
}

Status ProfileStore::load(const std::string& path, LoadInfo* info) {
  LoadInfo local;
  LoadInfo& li = info != nullptr ? *info : local;
  li = LoadInfo{};

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Cold start: an absent store is the normal first-boot state.
    li.missing = true;
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    calibrator_ = std::make_unique<core::ModelCalibrator>(opt_.calibration);
    return Status::ok();
  }

  char magic[4] = {};
  std::uint32_t version = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return Status::error("profile store: " + path +
                         " is not a profile store file (bad magic)");
  if (version != kFormatVersion)
    return Status::error("profile store: " + path + " is format version " +
                         std::to_string(version) + " but this build reads " +
                         std::to_string(kFormatVersion));

  std::vector<FileRecord> recs;
  std::vector<unsigned char> payload;
  while (true) {
    std::uint32_t len = 0, crc = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (in.gcount() == 0) break;  // clean EOF between records
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    if (!in || len != kPayloadBytes) {
      // A short/garbled length prefix: an interrupted append. Keep the
      // prefix read so far.
      li.truncated = true;
      ++li.discarded;
      break;
    }
    payload.resize(len);
    in.read(reinterpret_cast<char*>(payload.data()), len);
    if (in.gcount() != static_cast<std::streamsize>(len) ||
        crc32(payload.data(), payload.size()) != crc) {
      li.truncated = true;
      ++li.discarded;
      break;
    }
    Reader r{payload.data(), payload.size()};
    FileRecord rec = decode_record(r);
    // Reject records a corrupted-but-crc-colliding file could smuggle in:
    // factors must be usable by calibrated_profile().
    if (!(rec.factors.network > 0) || !(rec.factors.compute > 0) ||
        !(rec.factors.write > 0)) {
      li.truncated = true;
      ++li.discarded;
      break;
    }
    recs.push_back(rec);
    ++li.records;
  }

  auto fresh = std::make_unique<core::ModelCalibrator>(opt_.calibration);
  std::unordered_map<std::uint64_t, Record> loaded;
  for (const FileRecord& r : recs) {  // append-only: last record wins
    fresh->restore(r.signature, r.factors);
    Record& rec = loaded[r.signature];
    rec.epoch = r.epoch;
    rec.runs = r.runs;
    rec.window = r.window;
    rec.totals = r.totals;
    rec.anchor = r.anchor;
  }
  std::lock_guard<std::mutex> lock(mu_);
  calibrator_ = std::move(fresh);
  records_ = std::move(loaded);
  workloads_gauge_.set(static_cast<double>(records_.size()));
  return Status::ok();
}

}  // namespace ds::store
