#include "store/daemon.h"

#include <exception>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/plan_serialize.h"
#include "dag/serialize.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/json.h"

namespace ds::store {

namespace {

// Echo a request id into a response. Only scalar ids round-trip (the
// protocol never needs structured ids); anything else is echoed as null.
void write_id(std::ostream& os, const json::Value* id) {
  if (id == nullptr) {
    os << "null";
    return;
  }
  switch (id->type()) {
    case json::Value::Type::kString:
      json::write_string(os, id->str_or(""));
      return;
    case json::Value::Type::kNumber: {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << id->num_or(0);
      os << tmp.str();
      return;
    }
    case json::Value::Type::kBool:
      os << (id->bool_or(false) ? "true" : "false");
      return;
    default:
      os << "null";
      return;
  }
}

// Every response line leads with the protocol version (see the NDJSON
// protocol notes in core/plan_serialize.h).
void open_response(std::ostream& os, const json::Value* id) {
  os << "{\"v\": " << core::kNdjsonProtocolVersion << ", \"id\": ";
  write_id(os, id);
}

std::string error_response(const json::Value* id, const std::string& message) {
  std::ostringstream os;
  open_response(os, id);
  os << ", \"error\": ";
  json::write_string(os, message);
  os << "}";
  return os.str();
}

sim::ClusterSpec preset_for(const std::string& name) {
  if (name == "three_node") return sim::ClusterSpec::three_node();
  return sim::ClusterSpec::paper_prototype();
}

}  // namespace

PlanDaemon::PlanDaemon(DaemonOptions options, obs::Observability* obs)
    : opt_(options),
      obs_(obs),
      service_(options.service, obs),
      pool_(options.threads),
      requests_metric_(obs::counter(obs, "daemon.requests")),
      errors_metric_(obs::counter(obs, "daemon.errors")),
      flight_(obs::flight(obs)),
      epoch_(std::chrono::steady_clock::now()) {
  if (opt_.batch == 0) opt_.batch = 1;
  DS_CHECK_MSG(opt_.telemetry == nullptr || obs_ != nullptr,
               "daemon telemetry requires an Observability sink");
  DS_CHECK_MSG(opt_.telemetry == nullptr || opt_.telemetry_period > 0,
               "telemetry_period must be positive");
}

double PlanDaemon::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::string PlanDaemon::handle_line(const std::string& line, bool* is_error) {
  if (is_error != nullptr) *is_error = true;  // cleared on the success paths
  json::Value req;
  if (const Status st = json::parse(line, &req); !st.is_ok())
    return error_response(nullptr, st.message());
  if (!req.is_object())
    return error_response(nullptr, "request must be a JSON object");
  const json::Value* id = req.find("id");
  if (const Status st = core::check_ndjson_version(req); !st.is_ok())
    return error_response(id, st.message());

  if (const json::Value* cmd = req.find("cmd"); cmd != nullptr) {
    const std::string name = cmd->str_or("");
    if (name == "save") {
      const Status st = service_.save();
      std::ostringstream os;
      open_response(os, id);
      if (st.is_ok()) {
        os << ", \"ok\": true, \"workloads\": "
           << service_.profiles().workloads() << "}";
        if (is_error != nullptr) *is_error = false;
        return os.str();
      }
      return error_response(id, st.message());
    }
    if (name == "stats") {
      // stats_ is only written in serve()'s serial accounting loop after each
      // batch, so a stats request sees counters through the *previous* batch
      // (a stats line batched with plan requests does not count them yet).
      const PlanCache& c = service_.cache();
      std::ostringstream os;
      open_response(os, id);
      os << ", \"cache\": {\"size\": " << service_.cache().size()
         << ", \"hits\": " << c.hits() << ", \"misses\": " << c.misses()
         << ", \"evictions\": " << c.evictions() << ", \"stale\": " << c.stale()
         << ", \"invalidations\": " << c.invalidations()
         << "}, \"workloads\": " << service_.profiles().workloads()
         << ", \"daemon\": {\"requests\": " << stats_.requests
         << ", \"plans\": " << stats_.plans
         << ", \"errors\": " << stats_.errors << ", \"uptime_s\": ";
      std::ostringstream up;
      up.precision(6);
      up << uptime_s();
      os << up.str() << "}}";
      if (is_error != nullptr) *is_error = false;
      return os.str();
    }
    return error_response(id, "unknown cmd \"" + name + "\"");
  }

  const json::Value* spec_field = req.find("spec");
  if (spec_field == nullptr || !spec_field->is_string())
    return error_response(id, "request needs a \"spec\" string (job-spec text)");

  try {
    const dag::JobDag job = dag::load_job_spec_text(spec_field->str_or(""));

    sim::ClusterSpec spec = opt_.cluster;
    if (const json::Value* c = req.find("cluster"); c != nullptr)
      spec = preset_for(c->str_or(""));
    if (const json::Value* v = req.find("workers"); v != nullptr)
      spec.num_workers = static_cast<int>(v->int_or(spec.num_workers));
    if (const json::Value* v = req.find("executors"); v != nullptr)
      spec.executors_per_worker =
          static_cast<int>(v->int_or(spec.executors_per_worker));
    if (const json::Value* v = req.find("storage_nodes"); v != nullptr)
      spec.num_storage_nodes =
          static_cast<int>(v->int_or(spec.num_storage_nodes));
    if (const json::Value* v = req.find("congestion"); v != nullptr)
      spec.congestion_penalty = v->num_or(spec.congestion_penalty);
    if (spec.num_workers <= 0 || spec.executors_per_worker <= 0)
      return error_response(id, "cluster must have workers and executors");

    core::CalculatorOptions copt = service_.options().calculator;
    if (const json::Value* v = req.find("quantile"); v != nullptr)
      copt.model.quantile = v->num_or(copt.model.quantile);
    if (const Status st = core::validate(copt); !st.is_ok())
      return error_response(id, st.message());

    const core::JobProfile profile = core::JobProfile::from(job, spec);
    const PlanService::Planned planned = service_.plan(job, profile, copt);

    if (flight_ != nullptr) {
      // Audit every served plan (wall time base; record() is thread-safe, so
      // concurrent batch workers interleave by completion order).
      obs::FlightRecord r;
      r.t = uptime_s();
      r.kind = obs::FlightKind::kPlan;
      r.label = flight_->intern(job.name());
      double total_delay = 0;
      for (const Seconds d : planned.plan->delay) total_delay += d;
      r.value = total_delay;
      r.cache = planned.cache_hit ? 1 : 0;
      flight_->record(r);
    }

    std::ostringstream os;
    open_response(os, id);
    os << ", \"cache\": \"" << (planned.cache_hit ? "hit" : "miss")
       << "\", \"signature\": \"" << planned.signature
       << "\", \"epoch\": " << planned.epoch << ", \"plan\": ";
    core::plan_to_json(*planned.plan, os);
    os << "}";
    if (is_error != nullptr) *is_error = false;
    return os.str();
  } catch (const std::exception& e) {
    // load_job_spec_text throws CheckError with a line number on malformed
    // specs; a bad request must come back as an error response.
    return error_response(id, e.what());
  }
}

DaemonStats PlanDaemon::serve(std::istream& in, std::ostream& out) {
  std::vector<std::string> lines;
  std::vector<std::string> responses;
  lines.reserve(opt_.batch);
  bool eof = false;
  while (!eof) {
    lines.clear();
    std::string line;
    while (lines.size() < opt_.batch) {
      if (!std::getline(in, line)) {
        eof = true;
        break;
      }
      if (line.empty()) continue;
      lines.push_back(line);
    }
    if (lines.empty()) continue;

    responses.assign(lines.size(), std::string());
    std::vector<char> failed(lines.size(), 0);
    pool_.parallel_for(lines.size(), [&](std::size_t i) {
      bool err = false;
      responses[i] = handle_line(lines[i], &err);
      failed[i] = err ? 1 : 0;
    });
    for (std::size_t i = 0; i < responses.size(); ++i) {
      out << responses[i] << "\n";
      stats_.requests += 1;
      requests_metric_.inc();
      if (failed[i] != 0) {
        stats_.errors += 1;
        errors_metric_.inc();
      } else {
        stats_.plans += 1;
      }
    }
    out.flush();

    // Wall-cadence telemetry: at most one snapshot per period, checked
    // between dispatch rounds (a blocked stdin does not tick).
    if (opt_.telemetry != nullptr) {
      const double now = uptime_s();
      if (last_telemetry_ < 0 || now - last_telemetry_ >= opt_.telemetry_period) {
        opt_.telemetry->snapshot(*obs_, now);
        last_telemetry_ = now;
      }
    }
  }
  if (opt_.telemetry != nullptr) opt_.telemetry->snapshot(*obs_, uptime_s());
  return stats_;
}

}  // namespace ds::store
