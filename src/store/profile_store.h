// Persistent, concurrent per-workload profile store — the memory a
// plan-as-a-service deployment accumulates across processes.
//
// Recurrent jobs hash to a stable core::workload_signature; the store keeps,
// per signature, the ModelCalibrator's EWMA correction factors (the PR 7
// drift loop), decaying-window and lifetime phase-span statistics, and a
// *calibration epoch* that advances whenever the factors move beyond a
// configurable threshold since plans were last anchored. The epoch is the
// drift signal the PlanCache invalidates on: a cached plan carries the epoch
// it was computed under, and a signature whose model has drifted makes every
// older plan stale.
//
// Persistence is an append-only versioned binary format: a magic+version
// header followed by length-prefixed, CRC-32-checked records (last record
// for a signature wins, so an interrupted append leaves a loadable valid
// prefix). save() writes the whole snapshot to `<path>.tmp` and atomically
// renames it over `path`; load() tolerates a truncated or corrupted tail by
// keeping the valid prefix, and treats a missing file as a cold start. A
// cold start carries identity factors, so planning through an empty store is
// bit-identical to planning with no store at all.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/calibration.h"
#include "obs/obs.h"
#include "util/status.h"

namespace ds::store {

struct ProfileStoreOptions {
  core::CalibrationOptions calibration;
  // Relative movement of any calibration factor (vs the factors current when
  // the signature's epoch was last anchored) that advances the epoch and
  // invalidates cached plans. 0.1 = a 10% model shift re-plans.
  double drift_threshold = 0.10;
  // Decay of the per-signature statistics window: the newest run's spans
  // enter with this weight (EWMA over runs, like the calibrator's alpha).
  double window_decay = 0.25;
};

// Accumulated statistics for one workload signature.
struct WorkloadStats {
  core::CalibrationFactors factors;   // current correction factors
  std::uint64_t epoch = 0;            // bumps on drift beyond the threshold
  std::uint64_t runs = 0;             // observations folded in
  core::PhaseObservation window;      // EWMA-decayed phase spans
  core::PhaseObservation totals;      // lifetime sums
};

class ProfileStore {
 public:
  struct LoadInfo {
    bool missing = false;       // no file — cold start
    bool truncated = false;     // corrupt/short tail dropped
    std::size_t records = 0;    // records recovered
    std::size_t discarded = 0;  // records dropped (bad CRC / short read)
  };

  explicit ProfileStore(ProfileStoreOptions options = {},
                        obs::Observability* obs = nullptr);

  // Fold one run's evidence into the signature's factors and statistics.
  // Returns true when the factors moved beyond drift_threshold relative to
  // the epoch anchor — the caller should invalidate that signature's cached
  // plans (PlanService does).
  bool observe(std::uint64_t signature, const core::PhaseObservation& obs);

  // Identity for never-observed signatures (bit-exact cold-start contract).
  core::CalibrationFactors factors(std::uint64_t signature) const;
  // 0 for never-observed signatures.
  std::uint64_t epoch(std::uint64_t signature) const;
  WorkloadStats stats(std::uint64_t signature) const;
  std::size_t workloads() const;

  // Snapshot every signature into / out of a ModelCalibrator (bit-exact
  // factors) — the bridge to PR 7's adaptive planning stack.
  void export_to(core::ModelCalibrator& calibrator) const;
  void import_from(const core::ModelCalibrator& calibrator);

  // Atomic snapshot: write to `path + ".tmp"`, fsync-free rename over
  // `path`. Records are sorted by signature, so identical state produces an
  // identical file.
  Status save(const std::string& path) const;
  // Replace this store's contents with the file's records (last record per
  // signature wins). Missing file → empty store, ok. Bad header → error, the
  // store is left empty. Corrupt tail → valid prefix kept, ok with
  // info->truncated set.
  Status load(const std::string& path, LoadInfo* info = nullptr);

  const ProfileStoreOptions& options() const { return opt_; }

 private:
  // Bookkeeping beyond the calibrator's factors; `anchor` is the factor
  // vector the current epoch was opened with (drift is measured against it).
  struct Record {
    std::uint64_t epoch = 0;
    std::uint64_t runs = 0;
    core::PhaseObservation window;
    core::PhaseObservation totals;
    core::CalibrationFactors anchor;
  };

  ProfileStoreOptions opt_;
  mutable std::mutex mu_;
  // Factor EWMA math lives in core; held by pointer because the calibrator
  // owns a mutex (not movable) and load() swaps in a fresh instance.
  std::unique_ptr<core::ModelCalibrator> calibrator_;
  std::unordered_map<std::uint64_t, Record> records_;
  obs::Counter observations_;
  obs::Counter drifts_;
  obs::Gauge workloads_gauge_;
};

}  // namespace ds::store
