#include "store/plan_cache.h"

#include <cmath>
#include <cstring>

namespace ds::store {

namespace {

inline void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a step, same constants as core::workload_signature.
  h ^= v;
  h *= 1099511628211ull;
}

inline std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::int32_t bandwidth_class(BytesPerSec bw) {
  if (!(bw > 0)) return -1;
  return static_cast<std::int32_t>(std::lround(4.0 * std::log2(bw)));
}

ClusterBucket bucket_of(const core::ClusterProfile& cluster) {
  ClusterBucket b;
  b.workers = cluster.num_workers;
  b.executors_per_worker = cluster.executors_per_worker;
  b.storage_nodes = cluster.num_storage_nodes;
  b.nic_class = bandwidth_class(cluster.nic_bw);
  b.disk_class = bandwidth_class(cluster.disk_bw);
  b.storage_class = bandwidth_class(cluster.storage_net_bw);
  b.congestion_class =
      static_cast<std::int32_t>(std::lround(cluster.congestion_penalty / 0.05));
  return b;
}

std::uint64_t options_digest(const core::CalculatorOptions& options) {
  std::uint64_t h = 1469598103934665603ull;
  hash_mix(h, static_cast<std::uint64_t>(options.order));
  hash_mix(h, bits_of(options.step));
  hash_mix(h, bits_of(options.slot));
  hash_mix(h, options.coarse_to_fine ? 1 : 0);
  hash_mix(h, static_cast<std::uint64_t>(options.coarse_candidates));
  hash_mix(h, static_cast<std::uint64_t>(options.max_paths));
  hash_mix(h, static_cast<std::uint64_t>(options.sweeps));
  hash_mix(h, options.memoize ? 1 : 0);
  hash_mix(h, bits_of(options.model.quantile));
  hash_mix(h, bits_of(options.model.speculation_threshold));
  hash_mix(h, options.model.speculation ? 1 : 0);
  // The seed only reaches the planner through PathOrder::kRandom; digesting
  // it unconditionally would needlessly split cache lines per client seed.
  if (options.order == core::PathOrder::kRandom) hash_mix(h, options.seed);
  return h;
}

std::uint64_t PlanKey::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  hash_mix(h, signature);
  hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  bucket.workers)));
  hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  bucket.executors_per_worker)));
  hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  bucket.storage_nodes)));
  hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  bucket.nic_class)));
  hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  bucket.disk_class)));
  hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  bucket.storage_class)));
  hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  bucket.congestion_class)));
  hash_mix(h, options);
  return h;
}

PlanCache::PlanCache(Options options, obs::Observability* obs)
    : capacity_per_shard_(options.capacity_per_shard > 0
                              ? options.capacity_per_shard
                              : 1),
      hits_metric_(obs::counter(obs, "plancache.hits")),
      misses_metric_(obs::counter(obs, "plancache.misses")),
      evictions_metric_(obs::counter(obs, "plancache.evictions")),
      stale_metric_(obs::counter(obs, "plancache.stale")),
      invalidations_metric_(obs::counter(obs, "plancache.invalidations")),
      hit_rate_(obs::gauge(obs, "plancache.hit_rate")) {
  const std::size_t n = round_up_pow2(options.shards > 0 ? options.shards : 1);
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const core::DelaySchedule> PlanCache::find(
    const PlanKey& key, std::uint64_t epoch) {
  const std::uint64_t h = key.hash();
  std::shared_ptr<const core::DelaySchedule> out;
  bool stale = false;
  {
    Shard& s = shard_of(h);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(h);
    if (it != s.map.end() && it->second->key == key) {
      if (it->second->epoch == epoch) {
        s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
        out = it->second->plan;
      } else {
        // Cached under an older calibration epoch: the model has drifted
        // since this plan was computed — drop it.
        s.lru.erase(it->second);
        s.map.erase(it);
        stale = true;
      }
    }
  }
  if (out != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits_metric_.inc();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric_.inc();
    if (stale) {
      stale_.fetch_add(1, std::memory_order_relaxed);
      stale_metric_.inc();
    }
  }
  if (hit_rate_.enabled()) {
    const double hv = static_cast<double>(hits());
    const double total = hv + static_cast<double>(misses());
    hit_rate_.set(total > 0 ? hv / total : 0.0);
  }
  return out;
}

void PlanCache::insert(const PlanKey& key, std::uint64_t epoch,
                       std::shared_ptr<const core::DelaySchedule> plan) {
  const std::uint64_t h = key.hash();
  std::uint64_t evicted = 0;
  {
    Shard& s = shard_of(h);
    std::lock_guard<std::mutex> lock(s.mu);
    if (const auto it = s.map.find(h); it != s.map.end()) {
      // Replace in place (covers both a re-plan for the same key and the
      // astronomically unlikely 64-bit hash collision — last writer wins).
      it->second->key = key;
      it->second->epoch = epoch;
      it->second->plan = std::move(plan);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.push_front(Entry{key, epoch, std::move(plan)});
    s.map.emplace(h, s.lru.begin());
    while (s.map.size() > capacity_per_shard_) {
      const Entry& back = s.lru.back();
      s.map.erase(back.key.hash());
      s.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    evictions_metric_.inc(evicted);
  }
}

std::size_t PlanCache::invalidate_signature(std::uint64_t signature) {
  std::size_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.signature == signature) {
        shard->map.erase(it->key.hash());
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    invalidations_metric_.inc(dropped);
  }
  return dropped;
}

std::size_t PlanCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

}  // namespace ds::store
