// PlanService — the plan-as-a-service front: workload signature → profile
// calibration (ProfileStore) → sharded plan memoization (PlanCache) →
// DelayCalculator on miss.
//
// The cold-start contract: with an empty (or absent) store, factors are
// identity and the service hands the DelayCalculator exactly the caller's
// profile, so the first plan for any workload is bit-identical to calling
// DelayCalculator directly. Warm hits return the very DelaySchedule object
// computed on the cold path (a shared_ptr copy), so they are bit-identical
// by construction.
//
// Thread safety: plan() and observe() may be called from any number of
// threads. Two concurrent misses on one key both compute (the calculator is
// deterministic, so they compute the same plan) and the last insert wins —
// no lock is held around the planner itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "engine/records.h"
#include "store/plan_cache.h"
#include "store/profile_store.h"

namespace ds::store {

struct PlanServiceOptions {
  // Planner configuration shared by every request (threads/seed/obs ride in
  // via CommonOptions). Per-request model quantile overrides are part of the
  // cache key, so mixed-quantile clients coexist.
  core::CalculatorOptions calculator;
  PlanCache::Options cache;
  ProfileStoreOptions profile;
  // When set, the ctor loads this store file (missing file = cold start)
  // and save() persists back to it.
  std::string store_path;
};

class PlanService {
 public:
  struct Planned {
    std::shared_ptr<const core::DelaySchedule> plan;
    bool cache_hit = false;
    std::uint64_t signature = 0;
    std::uint64_t epoch = 0;
  };

  explicit PlanService(PlanServiceOptions options = {},
                       obs::Observability* obs = nullptr);

  // Plan `dag` against `profile` (which must point at `dag`). `options`
  // overrides the service-wide calculator config for this request.
  Planned plan(const dag::JobDag& dag, const core::JobProfile& profile);
  Planned plan(const dag::JobDag& dag, const core::JobProfile& profile,
               const core::CalculatorOptions& options);

  // Fold an executed run back into the profile store; on drift the
  // signature's cached plans are dropped.
  void observe(const dag::JobDag& dag, const core::DelaySchedule& plan,
               const engine::JobResult& result);
  void observe(std::uint64_t signature, const core::PhaseObservation& obs);

  // Persist the profile store to options().store_path (no-op Status::ok()
  // when no path is configured).
  Status save() const;

  ProfileStore& profiles() { return profiles_; }
  PlanCache& cache() { return cache_; }
  const PlanServiceOptions& options() const { return opt_; }
  // The LoadInfo of the constructor's store load (all-defaults when no
  // store_path was configured).
  const ProfileStore::LoadInfo& load_info() const { return load_info_; }

 private:
  PlanServiceOptions opt_;
  ProfileStore profiles_;
  PlanCache cache_;
  ProfileStore::LoadInfo load_info_;
  obs::Counter plans_;
  obs::Counter cold_plans_;
};

}  // namespace ds::store
