// PlanDaemon — the `delaystage_cli serve` loop: newline-delimited JSON plan
// requests on an istream, responses (one JSON object per line, in request
// order) on an ostream.
//
// Request shapes:
//   {"id": 7, "spec": "job,x\nstage,...", "cluster": "prototype",
//    "workers": 30, "executors": 2, "storage_nodes": 3, "quantile": 0.9}
//   {"cmd": "stats"}         → cache/profile counters
//   {"cmd": "save"}          → persist the profile store now
//
// `spec` is the dag/serialize job-spec text (newlines escaped as \n inside
// the JSON string). `cluster` names a preset (prototype | three_node);
// workers/executors/storage_nodes/congestion override individual fields of
// it, so a client can describe the live cluster it sees. Every other field
// is optional and defaults to the daemon's configuration.
//
// Responses echo the request `id` and carry "cache": "hit" | "miss" plus the
// full plan (core::plan_to_json). A malformed line produces
// {"id": ..., "error": "..."} — never a crash, never a dropped line.
//
// Dispatch is batched: up to `batch` lines are read, planned concurrently on
// a util/ThreadPool (the stores are thread-safe; responses land in
// per-index slots), then written in arrival order. Ordering is therefore
// preserved even though planning is parallel.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/telemetry.h"
#include "sim/cluster.h"
#include "store/plan_service.h"
#include "util/thread_pool.h"

namespace ds::store {

struct DaemonOptions {
  PlanServiceOptions service;
  // Preset used when a request names no cluster.
  sim::ClusterSpec cluster = sim::ClusterSpec::paper_prototype();
  int threads = 0;          // ThreadPool size; 0 = hardware concurrency
  std::size_t batch = 32;   // max requests planned per dispatch round
  // Streaming telemetry on a *wall-clock* cadence: serve() snapshots the
  // Observability registry into this sink at least telemetry_period seconds
  // apart, checked between dispatch rounds (a daemon blocked on stdin does
  // not tick). Requires a non-null obs. The sink must outlive the daemon.
  obs::TelemetrySink* telemetry = nullptr;
  double telemetry_period = 10.0;
};

struct DaemonStats {
  std::uint64_t requests = 0;
  std::uint64_t plans = 0;
  std::uint64_t errors = 0;
};

class PlanDaemon {
 public:
  explicit PlanDaemon(DaemonOptions options, obs::Observability* obs = nullptr);

  // Serve until EOF on `in`. Blank lines are skipped. Returns totals.
  DaemonStats serve(std::istream& in, std::ostream& out);

  // Handle one request line; returns the response JSON (no trailing
  // newline). Exposed for tests — serve() is this plus batching. `is_error`
  // (optional) reports whether the response is an error response.
  std::string handle_line(const std::string& line, bool* is_error = nullptr);

  PlanService& service() { return service_; }
  const DaemonStats& stats() const { return stats_; }

 private:
  // Wall seconds since construction (the daemon's telemetry/audit time base).
  double uptime_s() const;

  DaemonOptions opt_;
  obs::Observability* obs_;
  PlanService service_;
  ThreadPool pool_;
  DaemonStats stats_;
  obs::Counter requests_metric_;
  obs::Counter errors_metric_;
  obs::FlightRecorder* flight_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  double last_telemetry_ = -1;
};

}  // namespace ds::store
