// Sharded, bounded memoization of DelaySchedule by (workload signature,
// cluster-state bucket, planner-options digest) — the warm path of
// plan-as-a-service.
//
// Keys deliberately quantize cluster state: worker/executor/storage counts
// enter exactly, bandwidths as quarter-octave log2 classes (~19% wide) and
// the congestion penalty in 0.05 steps, so the slowly-moving measured
// bandwidths of a live cluster keep hitting the same plan until the cluster
// *meaningfully* changes. A cached plan also carries the ProfileStore
// calibration epoch it was computed under; a lookup presenting a newer epoch
// drops the entry (counted as `stale`) — that is the PR 7 drift signal
// invalidating plans whose model moved.
//
// Concurrency: striped locks — the key hash picks a shard, each shard is an
// independent mutex + hash map + intrusive LRU list with its own capacity
// bound. Hits move the entry to the front; eviction pops the back. Values
// are shared_ptr<const DelaySchedule>, so a hit is a pointer copy and plans
// stay alive for callers even if evicted mid-flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/delay_calculator.h"
#include "core/profile.h"
#include "obs/obs.h"

namespace ds::store {

// Quantized cluster state. Equal buckets ⇒ the planner would be handed an
// equivalent-enough profile that one plan serves both.
struct ClusterBucket {
  std::int32_t workers = 0;
  std::int32_t executors_per_worker = 0;
  std::int32_t storage_nodes = 0;
  std::int32_t nic_class = -1;      // quarter-octave log2 of nic_bw
  std::int32_t disk_class = -1;
  std::int32_t storage_class = -1;  // storage_net_bw (measured tier egress)
  std::int32_t congestion_class = 0;  // β in 0.05 steps

  bool operator==(const ClusterBucket&) const = default;
};

// Quarter-octave bandwidth class: round(4·log2(bw)); -1 for "unset" (<= 0).
std::int32_t bandwidth_class(BytesPerSec bw);
ClusterBucket bucket_of(const core::ClusterProfile& cluster);

// Digest of the CalculatorOptions fields that change the planner's output
// (grid widths, search shape, model posture, seed when the order is random).
// Plans computed under different options never alias.
std::uint64_t options_digest(const core::CalculatorOptions& options);

struct PlanKey {
  std::uint64_t signature = 0;  // core::workload_signature of the DAG
  ClusterBucket bucket;
  std::uint64_t options = 0;  // options_digest

  bool operator==(const PlanKey&) const = default;
  std::uint64_t hash() const;
};

class PlanCache {
 public:
  struct Options {
    // Rounded up to a power of two. One mutex per shard.
    std::size_t shards = 16;
    // LRU bound per shard; total capacity = shards × capacity_per_shard.
    std::size_t capacity_per_shard = 64;
  };

  // (No `= {}` default for `options`: GCC rejects brace-init default args of
  // nested aggregates with member initializers — pass Options{} explicitly.)
  explicit PlanCache(Options options, obs::Observability* obs = nullptr);

  // Returns the cached plan iff present *and* cached under `epoch`; an
  // entry from an older epoch is dropped (stale) and reported as a miss.
  std::shared_ptr<const core::DelaySchedule> find(const PlanKey& key,
                                                  std::uint64_t epoch);
  // Inserts (front of LRU), evicting the shard's least-recently-used entry
  // when full. An existing entry for the key is replaced.
  void insert(const PlanKey& key, std::uint64_t epoch,
              std::shared_ptr<const core::DelaySchedule> plan);

  // Drop every plan cached for a workload signature (drift invalidation
  // independent of epoch bookkeeping). Returns the number dropped.
  std::size_t invalidate_signature(std::uint64_t signature);

  std::size_t size() const;
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t stale() const { return stale_.load(std::memory_order_relaxed); }
  std::uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    PlanKey key;
    std::uint64_t epoch = 0;
    std::shared_ptr<const core::DelaySchedule> plan;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map;
  };

  Shard& shard_of(std::uint64_t hash) {
    return *shards_[hash & shard_mask_];
  }

  std::size_t capacity_per_shard_;
  std::uint64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> stale_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  obs::Counter hits_metric_;
  obs::Counter misses_metric_;
  obs::Counter evictions_metric_;
  obs::Counter stale_metric_;
  obs::Counter invalidations_metric_;
  obs::Gauge hit_rate_;
};

}  // namespace ds::store
