// Parser for the Alibaba cluster trace v2018 `batch_task` table.
//
// Each CSV row is
//   task_name,instance_num,job_name,task_type,status,start_time,end_time,
//   plan_cpu,plan_mem
// where DAG-bearing task names encode the dependency structure:
//   "M1"        task 1, no parents
//   "R3_1"      task 3, depends on task 1
//   "J5_3_4"    task 5, depends on tasks 3 and 4
// (the leading letters are operator types; only the numbers matter for the
// DAG). Independent tasks with non-conforming names (e.g. "task_NKJzSmvg")
// are kept as single parentless stages. Rows whose job lacks timestamps are
// dropped, mirroring the paper's exclusion of jobs that are incomplete
// within the 8-day span (§2.1 footnote).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace ds::trace {

struct AlibabaParseStats {
  std::size_t rows = 0;
  std::size_t bad_rows = 0;
  std::size_t jobs = 0;
  std::size_t dropped_jobs = 0;  // incomplete or cyclic
};

// Parse a batch_task CSV stream into trace jobs. Stage phase times are
// derived from the recorded task durations with the given network/compute/
// disk split (a trace records only wall time per task; the split matches
// the shuffle-read/process/write anatomy of Fig. 8).
std::vector<TraceJob> parse_batch_task(std::istream& in,
                                       AlibabaParseStats* stats = nullptr,
                                       double read_frac = 0.25,
                                       double write_frac = 0.10);

// Convenience: parse from a string (tests) or a file path.
std::vector<TraceJob> parse_batch_task_text(const std::string& text,
                                            AlibabaParseStats* stats = nullptr);
std::vector<TraceJob> parse_batch_task_file(const std::string& path,
                                            AlibabaParseStats* stats = nullptr);

// Emit trace jobs in batch_task CSV form (task names encode the DAG, e.g.
// "J3_1_2"). parse(write(jobs)) reproduces the jobs' structure and timing,
// so synthetic traces can be exported for any batch_task-compatible tool.
void write_batch_task(const std::vector<TraceJob>& jobs, std::ostream& out);
std::string write_batch_task_text(const std::vector<TraceJob>& jobs);

}  // namespace ds::trace
