#include "trace/alibaba.h"

#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "util/check.h"
#include "util/log.h"
#include "util/strings.h"

namespace ds::trace {

namespace {

struct RawTask {
  int task_num = -1;           // -1: independent task without DAG encoding
  std::vector<int> parents;    // task numbers
  std::string name;
  int instances = 1;
  Seconds start = 0;
  Seconds end = 0;
};

// Decode "R3_1" style names: leading letters, a task number, then parent
// numbers separated by underscores. Returns false for non-conforming names.
bool decode_task_name(std::string_view name, int& task_num,
                      std::vector<int>& parents) {
  std::size_t i = 0;
  while (i < name.size() && std::isalpha(static_cast<unsigned char>(name[i])))
    ++i;
  if (i == 0 || i >= name.size()) return false;
  const auto fields = split(name.substr(i), '_');
  std::uint64_t v = 0;
  if (!parse_u64(fields[0], v)) return false;
  task_num = static_cast<int>(v);
  parents.clear();
  for (std::size_t f = 1; f < fields.size(); ++f) {
    // Some task names carry trailing non-numeric annotations; stop there.
    if (!parse_u64(fields[f], v)) return false;
    parents.push_back(static_cast<int>(v));
  }
  return true;
}

}  // namespace

std::vector<TraceJob> parse_batch_task(std::istream& in,
                                       AlibabaParseStats* stats,
                                       double read_frac, double write_frac) {
  DS_CHECK(read_frac >= 0 && write_frac >= 0 && read_frac + write_frac < 1.0);
  AlibabaParseStats local;
  std::map<std::string, std::vector<RawTask>> jobs;

  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    ++local.rows;
    const auto f = split(trimmed, ',');
    if (f.size() < 7) {
      ++local.bad_rows;
      continue;
    }
    RawTask t;
    t.name = f[0];
    std::uint64_t inst = 1;
    if (parse_u64(trim(f[1]), inst)) t.instances = static_cast<int>(inst);
    const std::string& job_name = f[2];
    double start = 0, end = 0;
    if (!parse_double(trim(f[5]), start) || !parse_double(trim(f[6]), end)) {
      ++local.bad_rows;
      continue;
    }
    t.start = start;
    t.end = end;
    if (!decode_task_name(t.name, t.task_num, t.parents)) {
      t.task_num = -1;
      t.parents.clear();
    }
    jobs[job_name].push_back(std::move(t));
  }

  std::vector<TraceJob> out;
  out.reserve(jobs.size());
  for (auto& [job_name, tasks] : jobs) {
    ++local.jobs;
    // Drop jobs with missing timestamps (incomplete within the trace span).
    bool ok = true;
    Seconds submit = -1;
    for (const auto& t : tasks) {
      if (t.end <= 0 || t.start <= 0 || t.end < t.start) ok = false;
      if (submit < 0 || t.start < submit) submit = t.start;
    }
    if (!ok) {
      ++local.dropped_jobs;
      continue;
    }

    TraceJob job;
    job.name = job_name;
    job.submit_time = submit;
    // Map task numbers to stage indices (independent tasks get fresh ids).
    std::map<int, int> num_to_idx;
    for (const auto& t : tasks) {
      const int idx = static_cast<int>(job.stages.size());
      if (t.task_num >= 0) num_to_idx[t.task_num] = idx;
      TraceStage s;
      s.name = t.name;
      s.num_tasks = std::max(1, t.instances);
      const Seconds dur = t.end - t.start;
      s.read_solo = dur * read_frac;
      s.write_solo = dur * write_frac;
      s.compute_solo = dur - s.read_solo - s.write_solo;
      job.stages.push_back(std::move(s));
    }
    bool edges_ok = true;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      for (int p : tasks[i].parents) {
        const auto it = num_to_idx.find(p);
        if (it == num_to_idx.end()) {
          edges_ok = false;  // dangling dependency
          break;
        }
        job.stages[i].parents.push_back(it->second);
      }
    }
    if (!edges_ok) {
      ++local.dropped_jobs;
      continue;
    }
    // Reject cyclic dependency encodings (Kahn's algorithm).
    {
      const auto n = job.stages.size();
      std::vector<int> indeg(n, 0);
      std::vector<std::vector<int>> kids(n);
      for (std::size_t c = 0; c < n; ++c) {
        indeg[c] = static_cast<int>(job.stages[c].parents.size());
        for (int p : job.stages[c].parents)
          kids[static_cast<std::size_t>(p)].push_back(static_cast<int>(c));
      }
      std::vector<int> ready_q;
      for (std::size_t i = 0; i < n; ++i)
        if (indeg[i] == 0) ready_q.push_back(static_cast<int>(i));
      std::size_t seen = 0;
      while (!ready_q.empty()) {
        const int s = ready_q.back();
        ready_q.pop_back();
        ++seen;
        for (int c : kids[static_cast<std::size_t>(s)])
          if (--indeg[static_cast<std::size_t>(c)] == 0) ready_q.push_back(c);
      }
      if (seen != n) {
        ++local.dropped_jobs;
        continue;
      }
    }
    out.push_back(std::move(job));
  }

  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<TraceJob> parse_batch_task_text(const std::string& text,
                                            AlibabaParseStats* stats) {
  std::istringstream is(text);
  return parse_batch_task(is, stats);
}

std::vector<TraceJob> parse_batch_task_file(const std::string& path,
                                            AlibabaParseStats* stats) {
  std::ifstream is(path);
  DS_CHECK_MSG(is.good(), "cannot open trace file " << path);
  return parse_batch_task(is, stats);
}

void write_batch_task(const std::vector<TraceJob>& jobs, std::ostream& out) {
  const auto old_precision = out.precision(15);
  for (const TraceJob& job : jobs) {
    for (std::size_t s = 0; s < job.stages.size(); ++s) {
      const TraceStage& st = job.stages[s];
      // Task name: operator letter + 1-based task number + parent numbers.
      out << (st.parents.empty() ? 'M' : 'J') << (s + 1);
      for (int p : st.parents) out << '_' << (p + 1);
      const Seconds dur = st.read_solo + st.compute_solo + st.write_solo;
      // The writer serialises each stage at the job's submit time; relative
      // stage timing is reconstructed by any replayer from the DAG anyway.
      out << ',' << st.num_tasks << ',' << job.name << ",ODPS,Terminated,"
          << job.submit_time << ',' << job.submit_time + dur << ",100,0.5\n";
    }
  }
  out.precision(old_precision);
}

std::string write_batch_task_text(const std::vector<TraceJob>& jobs) {
  std::ostringstream os;
  write_batch_task(jobs, os);
  return os.str();
}

}  // namespace ds::trace
