#include "trace/replay.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "core/evaluator.h"
#include "core/profile.h"
#include "engine/job_run.h"
#include "sim/sharded.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ds::trace {

namespace {

core::PathOrder order_for(const std::string& strategy) {
  if (strategy == "random DelayStage") return core::PathOrder::kRandom;
  if (strategy == "ascending DelayStage") return core::PathOrder::kAscending;
  return core::PathOrder::kDescending;
}

bool is_delaystage(const std::string& strategy) {
  return strategy.find("DelayStage") != std::string::npos;
}

struct JobModel {
  Seconds dedicated = 0;   // R_i: completion time on its own sub-cluster
  double exec_demand = 0;  // average executors busy while running dedicated
  double net_demand = 0;   // average bytes/s on the network while running
  double cpu_util = 0;     // exec_demand / sub-cluster executors
  double net_util = 0;
  Seconds planned_delay = 0;  // Σ_k x_k from the planner (0 for stock)
  std::vector<Seconds> delay;  // the planner's X (engine validation reuses it)
  // The evaluator's predicted per-stage timeline under `delay` — what the
  // adaptive pass joins against the engine's measurements to calibrate.
  std::vector<core::StageTimeline> predicted;
  // Correction factors this job planned with (identity unless adaptive).
  core::CalibrationFactors factors;
  // Phase texture for the per-machine view (Fig. 4b): fraction of the run
  // spent fetching over the network, and the typical stage cycle length.
  double read_frac = 0.3;
  Seconds phase_cycle = 60;
};

// The job's own sub-cluster (even partitioning, §5.3) and the reference
// rates that normalize the trace into DAG work volumes on it.
std::pair<sim::ClusterSpec, ReferenceRates> sub_cluster_for(
    const ReplayOptions& opt) {
  sim::ClusterSpec cs = opt.cluster;
  cs.num_workers = std::min(cs.num_workers, opt.machines_per_job);
  ReferenceRates ref;
  ref.nic_bw = 0.5 * (cs.nic_bw_min + cs.nic_bw_max);
  ref.disk_bw = cs.disk_bw;
  ref.num_workers = cs.num_workers;
  ref.executors = static_cast<double>(cs.total_executors());
  ref.tasks_per_node = cs.executors_per_worker;
  return {cs, ref};
}

JobModel model_job(const TraceJob& tj, const ReplayOptions& opt,
                   std::uint64_t seed,
                   const core::CalibrationFactors* factors = nullptr) {
  const auto [cs, ref] = sub_cluster_for(opt);
  const dag::JobDag dag = to_job_dag(tj, ref);
  core::JobProfile profile = core::JobProfile::from(dag, cs);
  // Planner-side model-error injection: the planner believes these scaled
  // figures while the engine executes the unscaled truth. The defaults are
  // exact multiplicative identities, so an unperturbed replay is
  // bit-identical to the pre-adaptive code path.
  profile.cluster.nic_bw *= opt.perturb_network;
  if (profile.cluster.storage_net_bw > 0)
    profile.cluster.storage_net_bw *= opt.perturb_network;
  profile.compute_time_scale /= opt.perturb_compute;
  if (factors != nullptr)
    profile = core::calibrated_profile(profile, *factors);

  // Adapt the slot width to the job's magnitude so every evaluation costs
  // roughly `evaluator_slots` steps regardless of job size.
  Seconds span = 1.0;
  for (const auto& s : tj.stages)
    span += s.read_solo + s.compute_solo + s.write_solo;
  const Seconds slot =
      std::max(1.0, span / static_cast<double>(opt.evaluator_slots));

  std::vector<Seconds> delay;
  if (is_delaystage(opt.strategy)) {
    core::CalculatorOptions copt;
    copt.order = order_for(opt.strategy);
    copt.slot = slot;
    copt.step = slot;
    copt.coarse_candidates = opt.coarse_candidates;
    copt.sweeps = opt.sweeps;
    copt.seed = seed;
    // Parallelism lives at the job fan-out level; each planner runs
    // single-threaded so replay threads compose instead of oversubscribing.
    copt.threads = 1;
    copt.obs = opt.obs;
    delay = core::DelayCalculator(profile, copt).compute().delay;
  }

  const core::ScheduleEvaluator eval(profile, slot);
  core::Evaluation ev = eval.evaluate(delay);
  JobModel m;
  m.dedicated = std::max(ev.jct, slot);
  for (Seconds x : delay) m.planned_delay += x;
  m.delay = std::move(delay);
  m.predicted = std::move(ev.stages);
  if (factors != nullptr) m.factors = *factors;

  const core::PerfModel& pm = eval.model();
  double exec_seconds = 0;
  Bytes read_bytes = 0;
  for (dag::StageId s = 0; s < dag.num_stages(); ++s) {
    exec_seconds += pm.compute_work(s);
    read_bytes += pm.read_work(s);
  }
  m.exec_demand = exec_seconds / m.dedicated;
  m.net_demand = read_bytes / m.dedicated;
  m.cpu_util = std::min(1.0, m.exec_demand / ref.executors);
  m.net_util =
      std::min(1.0, m.net_demand / (ref.num_workers * ref.nic_bw));
  Seconds read_time = 0, all_time = 0;
  for (const auto& s : tj.stages) {
    read_time += s.read_solo;
    all_time += s.read_solo + s.compute_solo + s.write_solo;
  }
  m.read_frac = all_time > 0 ? read_time / all_time : 0.3;
  m.phase_cycle =
      std::max<Seconds>(30.0, m.dedicated /
                                  static_cast<double>(tj.stages.size() + 1));
  return m;
}

}  // namespace

Status validate(const ReplayOptions& options) {
  if (options.machines_per_job < 1)
    return Status::error("ReplayOptions: machines_per_job must be >= 1 "
                         "(every job needs at least one machine)");
  if (options.evaluator_slots < 1)
    return Status::error("ReplayOptions: evaluator_slots must be >= 1");
  if (options.coarse_candidates < 2)
    return Status::error("ReplayOptions: coarse_candidates must be >= 2 "
                         "(need at least the grid ends)");
  if (options.sweeps < 1)
    return Status::error("ReplayOptions: sweeps must be >= 1");
  if (options.engine_shards != 1 && !options.engine_validate &&
      !options.adaptive)
    return Status::error(
        "ReplayOptions: engine_shards is set but engine_validate is off — "
        "no engine runs would use the shards (enable engine_validate, or "
        "leave engine_shards at 1)");
  if (!(options.perturb_network > 0) || !(options.perturb_compute > 0))
    return Status::error("ReplayOptions: perturbation scales must be "
                         "positive (1.0 = accurate profile)");
  return Status::ok();
}

double ReplayResult::mean_jct() const {
  DS_CHECK(!jobs.empty());
  double sum = 0;
  for (const auto& j : jobs) sum += j.jct;
  return sum / static_cast<double>(jobs.size());
}

double ReplayResult::mean_dedicated() const {
  DS_CHECK(!jobs.empty());
  double sum = 0;
  for (const auto& j : jobs) sum += j.dedicated_time;
  return sum / static_cast<double>(jobs.size());
}

double ReplayResult::mean_cpu_util() const { return cluster_cpu.summarize().mean; }
double ReplayResult::mean_net_util() const { return cluster_net.summarize().mean; }

double ReplayResult::mean_job_cpu_util() const {
  double weighted = 0, weight = 0;
  for (const auto& j : jobs) {
    weighted += j.cpu_util * j.dedicated_time;
    weight += j.dedicated_time;
  }
  return weight > 0 ? 100.0 * weighted / weight : 0.0;
}

double ReplayResult::mean_job_net_util() const {
  double weighted = 0, weight = 0;
  for (const auto& j : jobs) {
    weighted += j.net_util * j.dedicated_time;
    weight += j.dedicated_time;
  }
  return weight > 0 ? 100.0 * weighted / weight : 0.0;
}

ReplayResult replay(const std::vector<TraceJob>& jobs,
                    const ReplayOptions& options) {
  DS_CHECK(!jobs.empty());
  {
    const Status st = validate(options);
    DS_CHECK_MSG(st.is_ok(), st.message());
  }

  std::vector<JobModel> models(jobs.size());
  std::vector<Seconds> engine_jcts;
  if (options.adaptive) {
    // 1-adaptive) Closed loop, strictly sequential in arrival order: plan on
    // the workload's calibrated profile, execute through the engine for
    // ground truth, fold the measured phase spans back into the shared
    // calibrator. Sequencing (not the thread count) fixes the observation
    // order, so the result is deterministic for any `threads` setting.
    std::vector<std::size_t> order(jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (jobs[a].submit_time != jobs[b].submit_time)
        return jobs[a].submit_time < jobs[b].submit_time;
      return a < b;
    });
    core::ModelCalibrator calibrator;
    engine_jcts.assign(jobs.size(), 0.0);
    const auto [cs, ref] = sub_cluster_for(options);
    for (std::size_t i : order) {
      const dag::JobDag dag = to_job_dag(jobs[i], ref);
      const std::uint64_t sig = core::workload_signature(dag);
      const core::CalibrationFactors f = calibrator.factors(sig);
      models[i] = model_job(jobs[i], options, options.seed + i, &f);
      sim::Simulator sim;
      sim::Cluster cluster(sim, cs, options.seed + i);
      engine::RunOptions ro;
      ro.seed = options.seed + i;
      ro.plan.delay = models[i].delay;
      engine::JobRun run(cluster, dag, std::move(ro));
      run.start();
      sim.run();
      engine_jcts[i] = run.result().jct;
      calibrator.observe(
          sig, core::observe_timelines(models[i].predicted, run.result()));
    }
  } else {
    // 1) Dedicated-sub-cluster model per job. Jobs are planned independently
    //    (seeded by index, written to per-index slots), so the fan-out across
    //    the pool is bit-identical to the sequential loop for any thread
    //    count.
    ThreadPool pool(options.resolved_threads());
    pool.parallel_for(jobs.size(), [&](std::size_t i) {
      models[i] = model_job(jobs[i], options, options.seed + i);
    });

    // 1b) Engine validation: replay each job's planned schedule through the
    //     real discrete-event engine on its dedicated sub-cluster. Every
    //     index is a self-contained world (own Simulator, Cluster, JobRun),
    //     so the ShardedRunner fan-out is bit-identical for any shard count.
    if (options.engine_validate) {
      sim::ShardedRunner runner(options.engine_shards);
      engine_jcts = runner.run<Seconds>(jobs.size(), [&](std::size_t i) {
        const auto [cs, ref] = sub_cluster_for(options);
        sim::Simulator sim;
        sim::Cluster cluster(sim, cs, options.seed + i);
        const dag::JobDag dag = to_job_dag(jobs[i], ref);
        engine::RunOptions ro;
        ro.seed = options.seed + i;
        ro.plan.delay = models[i].delay;
        engine::JobRun run(cluster, dag, std::move(ro));
        run.start();
        sim.run();
        return run.result().jct;
      });
    }
  }

  // Whole-cluster capacities for the sharing/utilization accounting.
  const auto& cs = options.cluster;
  const double exec_capacity = static_cast<double>(cs.total_executors());
  const double net_capacity =
      cs.num_workers * 0.5 * (cs.nic_bw_min + cs.nic_bw_max);
  const double cores_per_machine = cs.executors_per_worker;

  // 2) Event timeline. Active jobs all progress at rate 1/D where
  // D = max(1, aggregate demand / capacity): the cluster dilates everyone
  // uniformly only when it is actually saturated.
  struct Arrival {
    Seconds at;
    std::size_t idx;
  };
  std::vector<Arrival> arrivals(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    arrivals[i] = {jobs[i].submit_time, i};
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.at < b.at; });

  struct Completion {
    Seconds v_target;
    std::size_t idx;
    bool operator>(const Completion& o) const { return v_target > o.v_target; }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;

  ReplayResult res;
  res.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < engine_jcts.size(); ++i)
    res.jobs[i].engine_jct = engine_jcts[i];
  std::set<std::size_t> active;
  double sum_exec_demand = 0;
  double sum_net_demand = 0;

  Seconds now = 0;
  Seconds v = 0;  // virtual (dedicated-pace) time
  std::size_t next_arrival = 0;

  auto dilation = [&] {
    return std::max({1.0, sum_exec_demand / exec_capacity,
                     sum_net_demand / net_capacity});
  };

  auto record_sample = [&](Seconds t) {
    const double d = dilation();
    // The demand sums accumulate float residue as jobs come and go.
    const double busy_exec = std::max(0.0, sum_exec_demand) / d;
    const double busy_net = std::max(0.0, sum_net_demand) / d;
    res.cluster_cpu.push(t, 100.0 * busy_exec / exec_capacity);
    res.cluster_net.push(t, 100.0 * busy_net / net_capacity);
    // Representative machine (Fig. 4b): follow one active job. A machine
    // hosting that job's tasks alternates between a fetch phase (network
    // busy, CPU near idle) and a processing phase (CPU near full) — the
    // fully-used-or-idle swing the paper measures on machine m_2077.
    (void)cores_per_machine;
    if (active.empty()) {
      res.machine_cpu.push(t, 0.0);
      res.machine_net.push(t, 0.0);
    } else {
      const JobModel& m = models[*active.begin()];
      const double phase =
          std::fmod(t, m.phase_cycle) / std::max<Seconds>(m.phase_cycle, 1e-9);
      const bool fetching = phase < m.read_frac;
      res.machine_cpu.push(t, fetching ? 4.0 : 95.0);
      res.machine_net.push(t, fetching ? std::min(95.0, 130.0 * m.net_util + 40.0)
                                       : 2.0);
    }
  };

  while (next_arrival < arrivals.size() || !completions.empty()) {
    const double d = dilation();
    Seconds t_completion = -1;
    if (!completions.empty())
      t_completion = now + (completions.top().v_target - v) * d;
    const Seconds t_arrival =
        next_arrival < arrivals.size() ? arrivals[next_arrival].at : -1;

    const bool take_arrival =
        t_arrival >= 0 && (t_completion < 0 || t_arrival <= t_completion);
    const Seconds t_next = take_arrival ? t_arrival : t_completion;
    DS_CHECK_MSG(t_next >= now - 1e-6, "replay time went backwards");

    if (!active.empty()) v += (t_next - now) / d;
    now = std::max(now, t_next);

    if (take_arrival) {
      const std::size_t idx = arrivals[next_arrival++].idx;
      active.insert(idx);
      sum_exec_demand += models[idx].exec_demand;
      sum_net_demand += models[idx].net_demand;
      completions.push({v + models[idx].dedicated, idx});
      res.jobs[idx].submit = now;
    } else {
      const std::size_t idx = completions.top().idx;
      completions.pop();
      active.erase(idx);
      sum_exec_demand -= models[idx].exec_demand;
      sum_net_demand -= models[idx].net_demand;
      auto& jr = res.jobs[idx];
      jr.finish = now;
      jr.jct = now - jobs[idx].submit_time;
      jr.dedicated_time = models[idx].dedicated;
      jr.cpu_util = models[idx].cpu_util;
      jr.net_util = models[idx].net_util;
      jr.planned_delay = models[idx].planned_delay;
      jr.calibration = models[idx].factors;
    }
    record_sample(now);
  }
  return res;
}

}  // namespace ds::trace
