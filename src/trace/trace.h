// Common trace job representation shared by the Alibaba batch_task parser
// and the synthetic generator.
//
// Trace stages are described by their *solo phase times* (what the stage
// would take on a dedicated cluster), because that is what a trace records
// (start/end timestamps) and what the stage-granular replay consumes. The
// conversion to the volumetric JobDag the core library uses is mechanical:
// pick reference rates and turn seconds back into bytes.
#pragma once

#include <string>
#include <vector>

#include "dag/job.h"
#include "util/units.h"

namespace ds::trace {

struct TraceStage {
  std::string name;
  int num_tasks = 1;
  Seconds read_solo = 0;     // network phase on a dedicated cluster
  Seconds compute_solo = 0;  // CPU phase
  Seconds write_solo = 0;    // disk phase
  double task_skew = 0;
  std::vector<int> parents;  // indices into TraceJob::stages
};

struct TraceJob {
  std::string name;
  Seconds submit_time = 0;
  std::vector<TraceStage> stages;

  Seconds total_solo_time() const {
    Seconds t = 0;
    for (const auto& s : stages)
      t += s.read_solo + s.compute_solo + s.write_solo;
    return t;
  }
};

// Reference cluster used to convert solo phase times into the volumetric
// stages the core library plans with. A stage of T tasks can use at most
// min(T, num_workers) NICs/disks and min(T, executors) executors, so the
// conversion is per-stage capacity-aware; the absolute rates cancel out in
// planning (only ratios matter), so any consistent choice works.
struct ReferenceRates {
  BytesPerSec nic_bw = 100e6;   // per-node network bandwidth
  BytesPerSec disk_bw = 80e6;   // per-node disk bandwidth
  int num_workers = 100;
  double executors = 1000;
  // Tasks co-located per machine (executors per worker): a T-task stage
  // reaches ~T/tasks_per_node NICs/disks, not T of them.
  double tasks_per_node = 1;
};

// Build the volumetric JobDag for a trace job.
dag::JobDag to_job_dag(const TraceJob& job, const ReferenceRates& ref = {});

}  // namespace ds::trace
