// Trace-scale cluster replay (the paper's §5.3 simulation).
//
// The paper states its simplification explicitly: "the resources are evenly
// partitioned among multiple jobs that are concurrently running in the
// cluster". With every resource divided by the number of active jobs J(t),
// a job's internal dynamics are exactly its dedicated-cluster schedule with
// time dilated by J(t) — i.e. the cluster is a processor-sharing server.
// The replay therefore:
//   1. evaluates each job's dedicated-cluster completion time R_i under the
//      chosen strategy (stock/Fuxi: zero delays; DelayStage: Alg. 1), using
//      the same interference-aware evaluator the calculator plans with;
//   2. runs a processor-sharing timeline over the job arrivals, which is
//      O(n log n) because all active jobs progress at the same rate.
// Per-job resource utilizations (work / capacity·R) aggregate into the
// cluster/machine utilization series of Fig. 4 and Table 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/delay_calculator.h"
#include "metrics/timeseries.h"
#include "sim/cluster.h"
#include "trace/trace.h"
#include "util/status.h"

namespace ds::trace {

// CommonOptions supplies:
//   threads — workers for the per-job planning fan-out (stage 1 of the
//     replay). Each job's model is an independent computation seeded by
//     (seed + index) and written to its own slot, so the result is
//     bit-identical for any thread count. <= 0 = hardware concurrency.
//   seed — base seed; job i plans with seed + i.
//   obs — forwarded into every per-job DelayCalculator.
struct ReplayOptions : CommonOptions {
  // "Fuxi", "DelayStage", "random DelayStage", or "ascending DelayStage".
  std::string strategy = "Fuxi";
  sim::ClusterSpec cluster = sim::ClusterSpec::paper_simulation();
  // Allocation granularity: with resources evenly partitioned among jobs
  // (§5.3), an individual job effectively runs on a sub-cluster of this many
  // machines — which is where its parallel stages contend with one another.
  // The processor-sharing timeline then dilates for cross-job sharing.
  int machines_per_job = 2;
  // Calculator tuning for the DelayStage variants. The slot width adapts to
  // each job's magnitude; these bound the search effort per job.
  int coarse_candidates = 12;
  int sweeps = 1;
  int evaluator_slots = 150;  // target #slots per evaluation
  // Engine validation: additionally run every job's planned schedule through
  // the real discrete-event engine (engine::JobRun) on its dedicated
  // sub-cluster, fanned out across `engine_shards` worker threads via
  // sim::ShardedRunner (each job is a fully independent simulated world).
  // The engine-measured JCT lands in ReplayJobResult::engine_jct. Results
  // are bit-identical for any shard count, including 1.
  bool engine_validate = false;
  int engine_shards = 1;  // <= 0 = hardware concurrency
  // Adaptive replay: jobs are processed *sequentially in arrival order*;
  // each is planned on its workload's calibrated profile (a shared
  // ModelCalibrator keyed by workload signature), executed through the
  // discrete-event engine for ground truth (engine_jct), and its measured
  // phase spans are folded back into the calibrator — so recurrent jobs
  // plan from observed truth. Deterministic for a fixed seed regardless of
  // the thread count (the adaptive pass never fans out).
  bool adaptive = false;
  // Planner-side model-error injection for the drift ablation: the planner
  // believes network bandwidth is `perturb_network` × and process rates are
  // `perturb_compute` × the truth the engine executes. 1.0 (exact
  // multiplicative identity) = an accurate profile.
  double perturb_network = 1.0;
  double perturb_compute = 1.0;
};

// Validates field combinations (positive machine/slot/candidate counts,
// engine_shards only meaningful under engine_validate or adaptive, sane
// perturbation scales). replay() enforces this (throwing CheckError with
// the same message); CLIs call it up front for a friendly `error: …`.
Status validate(const ReplayOptions& options);

struct ReplayJobResult {
  Seconds submit = 0;
  Seconds finish = 0;
  Seconds jct = 0;            // finish - submit (includes sharing dilation)
  Seconds dedicated_time = 0; // R_i: JCT on a dedicated cluster
  double cpu_util = 0;        // average utilization of the job's share (0..1)
  double net_util = 0;
  // Σ_k x_k the planner injected into this job (0 for stock strategies) —
  // the stagger budget the fleet-level analytics aggregate.
  Seconds planned_delay = 0;
  // Dedicated-sub-cluster JCT measured by the discrete-event engine
  // (ReplayOptions::engine_validate or adaptive; 0 otherwise). Comparing
  // against dedicated_time quantifies the analytic evaluator's model error.
  Seconds engine_jct = 0;
  // Correction factors the planner applied to this job's profile
  // (ReplayOptions::adaptive only; identity otherwise). Watching these
  // converge toward the injected perturbation is the calibration ablation.
  core::CalibrationFactors calibration;
};

struct ReplayResult {
  std::vector<ReplayJobResult> jobs;
  // Cluster-average utilization (percent) sampled at every arrival/finish.
  metrics::TimeSeries cluster_cpu;
  metrics::TimeSeries cluster_net;
  // One representative machine: follows a single active job's utilization
  // (a machine predominantly serves one job's tasks at a time) — Fig. 4(b).
  metrics::TimeSeries machine_cpu;
  metrics::TimeSeries machine_net;

  double mean_jct() const;
  double mean_dedicated() const;  // mean R_i (no cross-job sharing)
  double mean_cpu_util() const;   // percent, cluster-occupancy time average
  double mean_net_util() const;
  // Utilization of the resources actually allocated to jobs (Table 4's
  // "worker running production jobs" view), weighted by job runtime. Unlike
  // the occupancy average, this rises when a strategy packs the same work
  // into a shorter run.
  double mean_job_cpu_util() const;  // percent
  double mean_job_net_util() const;
};

ReplayResult replay(const std::vector<TraceJob>& jobs,
                    const ReplayOptions& options);

// Back-compat spelling from before seeds lived in CommonOptions: the trailing
// seed overrides options.seed. Deprecated for one release (set options.seed
// and call the CommonOptions-only overload); no in-repo caller remains.
[[deprecated("set ReplayOptions::seed and call replay(jobs, options)")]]
inline ReplayResult replay(const std::vector<TraceJob>& jobs,
                           ReplayOptions options, std::uint64_t seed) {
  options.seed = seed;
  return replay(jobs, options);
}

}  // namespace ds::trace
