#include "trace/stats.h"

#include <algorithm>
#include <functional>

#include "util/check.h"

namespace ds::trace {

namespace {

Seconds stage_solo(const TraceStage& s) {
  return s.read_solo + s.compute_solo + s.write_solo;
}

// Longest path over a filtered stage set (all stages when filter empty).
Seconds longest_chain(const TraceJob& job, const std::vector<bool>* in_set) {
  const auto n = job.stages.size();
  std::vector<Seconds> best(n, -1);
  // Stage indices are not guaranteed topological; iterate to fixpoint via
  // memoized DFS instead.
  std::vector<int> state(n, 0);  // 0 unvisited, 1 visiting, 2 done
  std::vector<Seconds> memo(n, 0);
  std::function<Seconds(std::size_t)> visit = [&](std::size_t s) -> Seconds {
    if (state[s] == 2) return memo[s];
    DS_CHECK_MSG(state[s] != 1, "cycle in trace job " << job.name);
    state[s] = 1;
    Seconds up = 0;
    for (int p : job.stages[s].parents)
      up = std::max(up, visit(static_cast<std::size_t>(p)));
    const bool counted = in_set == nullptr || (*in_set)[s];
    memo[s] = up + (counted ? stage_solo(job.stages[s]) : 0.0);
    state[s] = 2;
    return memo[s];
  };
  Seconds total = 0;
  for (std::size_t s = 0; s < n; ++s) total = std::max(total, visit(s));
  return total;
}

// Parallel-stage membership flags (the K set) for a trace job.
std::vector<bool> parallel_flags(const TraceJob& job) {
  const dag::JobDag j = to_job_dag(job);
  std::vector<bool> flags(job.stages.size(), false);
  for (dag::StageId s : j.parallel_stage_set())
    flags[static_cast<std::size_t>(s)] = true;
  return flags;
}

}  // namespace

Seconds critical_path_time(const TraceJob& job) {
  return longest_chain(job, nullptr);
}

Seconds parallel_region_time(const TraceJob& job) {
  const std::vector<bool> flags = parallel_flags(job);
  return longest_chain(job, &flags);
}

TraceStats analyze(const std::vector<TraceJob>& jobs) {
  TraceStats st;
  for (const TraceJob& job : jobs) {
    ++st.total_jobs;
    const std::vector<bool> flags = parallel_flags(job);
    const auto parallel =
        static_cast<std::size_t>(std::count(flags.begin(), flags.end(), true));
    st.total_stages += job.stages.size();
    st.total_parallel_stages += parallel;
    if (parallel > 0) ++st.jobs_with_parallel_stages;
    st.stages_per_job.add(static_cast<double>(job.stages.size()));
    st.parallel_stages_per_job.add(static_cast<double>(parallel));
    const Seconds jct = critical_path_time(job);
    if (jct > 0 && parallel > 0) {
      st.parallel_makespan_share.add(100.0 * parallel_region_time(job) / jct);
    }
  }
  return st;
}

}  // namespace ds::trace
