// Trace-level statistics backing the motivation figures:
//   Fig. 2 — CDFs of #stages and #parallel stages per job,
//   Fig. 3 — CDF of the parallel-stage makespan share of the JCT,
// plus the §2.1 headline aggregates (fraction of jobs with parallel stages,
// parallel-stage share of all stages).
#pragma once

#include <vector>

#include "metrics/cdf.h"
#include "trace/trace.h"

namespace ds::trace {

struct TraceStats {
  metrics::Cdf stages_per_job;
  metrics::Cdf parallel_stages_per_job;
  metrics::Cdf parallel_makespan_share;  // percent of JCT (Fig. 3)
  std::size_t total_jobs = 0;
  std::size_t jobs_with_parallel_stages = 0;
  std::size_t total_stages = 0;
  std::size_t total_parallel_stages = 0;

  double parallel_job_fraction() const {
    return total_jobs == 0 ? 0.0
                           : static_cast<double>(jobs_with_parallel_stages) /
                                 static_cast<double>(total_jobs);
  }
  double parallel_stage_fraction() const {
    return total_stages == 0 ? 0.0
                             : static_cast<double>(total_parallel_stages) /
                                   static_cast<double>(total_stages);
  }
};

// Analyse a set of trace jobs (topological analysis per job, critical-path
// times from the solo stage durations).
TraceStats analyze(const std::vector<TraceJob>& jobs);

// Critical-path execution time of a job from solo durations; the paper's
// "job execution time" in Fig. 3's denominator.
Seconds critical_path_time(const TraceJob& job);

// Makespan of the parallel-stage region on the critical path (numerator of
// Fig. 3): the longest chain restricted to the parallel-stage set.
Seconds parallel_region_time(const TraceJob& job);

}  // namespace ds::trace
