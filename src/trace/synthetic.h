// Synthetic trace generator calibrated to the Alibaba cluster trace v2018
// statistics the paper reports (§2.1, Fig. 2-3, §5.3):
//   * 68.6% of jobs contain parallel stages; parallel stages are ~79% of all
//     stages on average.
//   * stage counts: mostly small (90% of jobs < 15 stages), long tail up to
//     186 stages (log-normal body, clipped).
//   * stage runtimes span 10 s - 3000 s (log-uniform).
//   * the parallel-stage makespan dominates: ≈82% of JCT on average.
// The real trace is a 270 GB download we cannot ship; any batch_task CSV can
// be substituted via trace::parse_batch_task_file and flows through the same
// pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "trace/trace.h"

namespace ds::trace {

// CommonOptions supplies the generator seed (threads/obs are unused here —
// generation is a single deterministic pass).
struct SyntheticTraceOptions : CommonOptions {
  std::size_t num_jobs = 2000;
  // Job submissions are Poisson over this horizon (the trace spans 8 days).
  Seconds horizon = 8 * 24 * 3600.0;
  // Fraction of jobs that are pure chains (no parallel stages): 1 - 0.686.
  double chain_fraction = 0.314;
  // Stage-count lognormal body (median exp(mu)), clipped to [min, max].
  double stages_mu = 1.6;
  double stages_sigma = 0.85;
  int min_stages = 2;
  int max_stages = 186;
  // Stage runtime: log-uniform over [min, max] seconds.
  Seconds min_stage_time = 10;
  Seconds max_stage_time = 3000;
};

// Deterministic for a given opt.seed.
std::vector<TraceJob> synthetic_trace(const SyntheticTraceOptions& opt);

// Back-compat spelling from before seeds lived in CommonOptions: the trailing
// seed overrides opt.seed. Deprecated for one release (set opt.seed and call
// the CommonOptions-only overload); no in-repo caller remains.
[[deprecated(
    "set SyntheticTraceOptions::seed and call synthetic_trace(opt)")]]
inline std::vector<TraceJob> synthetic_trace(SyntheticTraceOptions opt,
                                             std::uint64_t seed) {
  opt.seed = seed;
  return synthetic_trace(opt);
}

}  // namespace ds::trace
