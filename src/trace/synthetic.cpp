#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace ds::trace {

namespace {

TraceStage make_stage(Rng& rng, const SyntheticTraceOptions& opt, int index) {
  TraceStage s;
  s.name = "stage" + std::to_string(index + 1);
  // Task counts follow a broad log body; exact values only matter for skew
  // and slot pressure at replay granularity.
  s.num_tasks = static_cast<int>(std::clamp(rng.lognormal(3.5, 0.9), 1.0, 2000.0));
  s.task_skew = rng.uniform(0.0, 0.4);
  const Seconds dur = std::exp(
      rng.uniform(std::log(opt.min_stage_time), std::log(opt.max_stage_time)));
  const double read_frac = rng.uniform(0.15, 0.45);
  const double write_frac = rng.uniform(0.03, 0.12);
  s.read_solo = dur * read_frac;
  s.write_solo = dur * write_frac;
  s.compute_solo = dur - s.read_solo - s.write_solo;
  return s;
}

}  // namespace

std::vector<TraceJob> synthetic_trace(const SyntheticTraceOptions& opt) {
  DS_CHECK(opt.num_jobs > 0);
  DS_CHECK(opt.min_stages >= 1 && opt.max_stages >= opt.min_stages);
  DS_CHECK(opt.min_stage_time > 0 && opt.max_stage_time >= opt.min_stage_time);
  DS_CHECK(opt.chain_fraction >= 0 && opt.chain_fraction <= 1);

  Rng rng(opt.seed);
  std::vector<TraceJob> jobs;
  jobs.reserve(opt.num_jobs);

  for (std::size_t i = 0; i < opt.num_jobs; ++i) {
    TraceJob job;
    job.name = "job-" + std::to_string(i);
    job.submit_time = rng.uniform(0.0, opt.horizon);

    int n = static_cast<int>(
        std::clamp(std::round(rng.lognormal(opt.stages_mu, opt.stages_sigma)),
                   static_cast<double>(opt.min_stages),
                   static_cast<double>(opt.max_stages)));
    const bool chain = rng.chance(opt.chain_fraction);
    // Chain jobs in the trace are short ETL pipelines; keeping them small
    // also keeps the global parallel-stage share at the reported ~79%.
    if (chain) n = std::min(n, static_cast<int>(rng.uniform_int(2, 4)));
    for (int s = 0; s < n; ++s) job.stages.push_back(make_stage(rng, opt, s));

    if (chain) {
      // Pure chain: no parallel stages at all.
      for (int s = 1; s < n; ++s) job.stages[static_cast<std::size_t>(s)].parents = {s - 1};
    } else {
      // Layered parallel body (widths >= 2 so most stages have a parallel
      // peer — the trace's ~79% parallel-stage share) followed, usually, by
      // a short sequential tail that funnels the body (Fig. 3's parallel
      // makespan share averages ~82%, not 100%).
      int tail = 0;
      if (n >= 4 && rng.chance(0.8))
        tail = static_cast<int>(rng.uniform_int(1, std::min(2, n - 3)));
      const int body = n - tail;

      std::vector<std::vector<int>> layers;
      int next = 0;
      while (next < body) {
        const int remaining = body - next;
        int width;
        if (remaining <= 3) {
          width = remaining;
        } else {
          width = std::min(remaining - 2,
                           static_cast<int>(rng.uniform_int(2, 5)));
        }
        width = std::max(width, 1);
        std::vector<int> layer;
        for (int k = 0; k < width; ++k) layer.push_back(next++);
        layers.push_back(std::move(layer));
      }
      for (std::size_t l = 1; l < layers.size(); ++l) {
        const auto& prev = layers[l - 1];
        for (int stage : layers[l]) {
          auto& parents = job.stages[static_cast<std::size_t>(stage)].parents;
          const auto pick = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(prev.size()) - 1));
          parents.push_back(prev[pick]);
          if (prev.size() > 1 && rng.chance(0.3))
            parents.push_back(prev[(pick + 1) % prev.size()]);
        }
      }
      // Sequential tail: the first tail stage funnels every childless body
      // stage (dangling sources included, or they would stay parallel with
      // the whole tail).
      if (tail > 0) {
        std::vector<bool> has_child(static_cast<std::size_t>(body), false);
        for (int s = 0; s < body; ++s)
          for (int p : job.stages[static_cast<std::size_t>(s)].parents)
            has_child[static_cast<std::size_t>(p)] = true;
        auto& funnel = job.stages[static_cast<std::size_t>(body)].parents;
        for (int s = 0; s < body; ++s)
          if (!has_child[static_cast<std::size_t>(s)]) funnel.push_back(s);
        for (int s = body + 1; s < n; ++s)
          job.stages[static_cast<std::size_t>(s)].parents = {s - 1};
      }
    }
    jobs.push_back(std::move(job));
  }

  std::sort(jobs.begin(), jobs.end(), [](const TraceJob& a, const TraceJob& b) {
    return a.submit_time < b.submit_time;
  });
  return jobs;
}

}  // namespace ds::trace
