#include "trace/trace.h"

#include <algorithm>

#include "util/check.h"

namespace ds::trace {

dag::JobDag to_job_dag(const TraceJob& job, const ReferenceRates& ref) {
  DS_CHECK(ref.nic_bw > 0 && ref.disk_bw > 0 && ref.executors >= 1 &&
           ref.num_workers >= 1);
  dag::JobDag j(job.name);
  for (const auto& ts : job.stages) {
    dag::Stage s;
    s.name = ts.name;
    s.num_tasks = std::max(1, ts.num_tasks);
    s.task_skew = ts.task_skew;
    // Capacity actually reachable by this stage when running alone: tasks
    // pack tasks_per_node to a machine, so a T-task stage spans about
    // T / tasks_per_node machines' NICs and disks.
    const double net_nodes = std::clamp(
        static_cast<double>(s.num_tasks) / std::max(1.0, ref.tasks_per_node),
        1.0, static_cast<double>(ref.num_workers));
    const double disk_nodes = net_nodes;
    s.input_bytes = ts.read_solo * net_nodes * ref.nic_bw;
    if (s.input_bytes <= 0 && ts.compute_solo > 0) {
      // Compute-only stages still need a nonzero volume to carry the
      // compute-work term (Eq. 1's Σs / (ε·R)).
      s.input_bytes = 1e6;
    }
    const double execs =
        std::min(static_cast<double>(s.num_tasks), ref.executors);
    s.process_rate = ts.compute_solo > 0
                         ? s.input_bytes / (ts.compute_solo * execs)
                         : 0.0;
    s.output_bytes = ts.write_solo * disk_nodes * ref.disk_bw;
    j.add_stage(s);
  }
  for (std::size_t c = 0; c < job.stages.size(); ++c) {
    for (int p : job.stages[c].parents) {
      DS_CHECK_MSG(p >= 0 && static_cast<std::size_t>(p) < job.stages.size(),
                   "bad parent index " << p << " in job " << job.name);
      j.add_edge(p, static_cast<dag::StageId>(c));
    }
  }
  j.topo_order();  // validate acyclicity eagerly
  return j;
}

}  // namespace ds::trace
