// Volumetric models of the paper's benchmark workloads (Table 2) plus the
// ALS motivation job (Figs. 1, 5, 6).
//
// Each builder returns a JobDag whose stage volumes/rates were calibrated so
// that the *stock Spark* run on the corresponding paper cluster lands near
// the paper's reported job completion time, and whose DAG shape matches the
// stage counts and execution-path structure the paper describes. DelayStage
// sees only this profile-level information — exactly what its Spark
// prototype extracts from event logs.
//
// `scale` multiplies all data volumes (1.0 = the paper's dataset sizes).
#pragma once

#include <string>
#include <vector>

#include "dag/job.h"

namespace ds::workloads {

// ALS, 6 stages (Fig. 1): the motivation example run on the three-node
// cluster (Figs. 5-6; 3 GB input).
dag::JobDag als(double scale = 1.0);

// ConnectedComponents (Spark GraphX), 5 stages, 10 GB synthetic input.
// Sequential stages dominate (~55% of JCT) — the least-improved workload.
dag::JobDag connected_components(double scale = 1.0);

// CosineSimilarity (Spark MLlib), 5 stages, 30 GB synthetic input.
dag::JobDag cosine_similarity(double scale = 1.0);

// LDA (Spark MLlib), 5 stages, 140M Wikipedia documents. Nearly homogeneous
// task partitions (the workload where AggShuffle gains nothing).
dag::JobDag lda(double scale = 1.0);

// TriangleCount (Spark GraphX), 11 stages, 100M connections.
dag::JobDag triangle_count(double scale = 1.0);

struct Workload {
  std::string name;
  dag::JobDag dag;
};

// The four workloads of the §5 prototype evaluation, in the paper's order.
std::vector<Workload> benchmark_suite(double scale = 1.0);

}  // namespace ds::workloads
