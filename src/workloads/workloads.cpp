#include "workloads/workloads.h"

#include "util/units.h"

namespace ds::workloads {

using namespace ds;  // unit literals

namespace {

// Shorthand: a stage with `tasks` partitions reading `in_gb` (scaled),
// processing at `rate_mbps` per executor, writing `out_gb`, with lognormal
// task skew `skew`.
dag::Stage stage(std::string name, int tasks, double in_gb, double rate_mbps,
                 double out_gb, double skew, double scale) {
  dag::Stage s;
  s.name = std::move(name);
  s.num_tasks = tasks;
  s.input_bytes = in_gb * scale * 1e9;
  s.process_rate = rate_mbps * 1e6;
  s.output_bytes = out_gb * scale * 1e9;
  s.task_skew = skew;
  return s;
}

}  // namespace

dag::JobDag als(double scale) {
  // Runs on ClusterSpec::three_node() (6 executors, 1 HDFS node; storage
  // egress ≈ 36 MB/s is the scarce resource). Stock Spark JCT target
  // ≈ 133 s; delaying stages 2 and 3 lands ≈ 104 s (Fig. 6). Stages 1-3
  // shuffle-read together at t = 0 under stock Spark.
  dag::JobDag j("ALS");
  const auto s1 = j.add_stage(stage("stage1", 2, 0.33, 7.5, 0.16, 0.15, scale));
  const auto s2 = j.add_stage(stage("stage2", 2, 0.20, 7.0, 0.10, 0.15, scale));
  const auto s3 = j.add_stage(stage("stage3", 2, 0.35, 7.5, 0.17, 0.15, scale));
  const auto s4 = j.add_stage(stage("stage4", 2, 0.27, 6.0, 0.13, 0.15, scale));
  const auto s5 = j.add_stage(stage("stage5", 2, 0.30, 7.5, 0.09, 0.15, scale));
  const auto s6 = j.add_stage(stage("stage6", 2, 0.09, 4.0, 0.02, 0.15, scale));
  j.add_edge(s1, s4);
  j.add_edge(s2, s4);
  j.add_edge(s3, s5);
  j.add_edge(s4, s5);
  j.add_edge(s5, s6);
  return j;
}

dag::JobDag connected_components(double scale) {
  // 10 GB input. K = {1, 2, 3} with the long path {2, 3}; stages 4-5 are
  // sequential and hold roughly half the JCT, capping the gain near 17.5%
  // (§5.2). DelayStage delays stage 1 (appendix Fig. 16).
  dag::JobDag j("ConnectedComponents");
  const auto s1 = j.add_stage(stage("stage1", 24, 3.6, 1.7, 1.8, 0.2, scale));
  const auto s2 = j.add_stage(stage("stage2", 30, 4.8, 2.4, 2.4, 0.2, scale));
  const auto s3 = j.add_stage(stage("stage3", 30, 2.4, 1.3, 2.0, 0.2, scale));
  const auto s4 = j.add_stage(stage("stage4", 40, 3.8, 1.1, 1.0, 0.2, scale));
  const auto s5 = j.add_stage(stage("stage5", 24, 1.0, 0.8, 0.2, 0.2, scale));
  j.add_edge(s2, s3);
  j.add_edge(s1, s4);
  j.add_edge(s3, s4);
  j.add_edge(s4, s5);
  return j;
}

dag::JobDag cosine_similarity(double scale) {
  // 30 GB input across three source stages that read from HDFS together in
  // stock Spark (Fig. 13); the long path is {3, 4} and does not depend on
  // the slack stages 1-2, which DelayStage postpones (~110 s for stage 1,
  // §5.2) so stage 3 fetches and computes at full speed.
  dag::JobDag j("CosineSimilarity");
  const auto s1 = j.add_stage(stage("stage1", 30, 6.0, 2.0, 2.0, 0.2, scale));
  const auto s2 = j.add_stage(stage("stage2", 30, 5.3, 2.0, 1.5, 0.2, scale));
  const auto s3 = j.add_stage(stage("stage3", 40, 13.0, 4.6, 5.4, 0.2, scale));
  const auto s4 = j.add_stage(stage("stage4", 40, 5.3, 2.0, 2.3, 0.2, scale));
  const auto s5 = j.add_stage(stage("stage5", 30, 5.9, 3.2, 0.4, 0.2, scale));
  j.add_edge(s3, s4);
  j.add_edge(s1, s5);
  j.add_edge(s2, s5);
  j.add_edge(s4, s5);
  return j;
}

dag::JobDag lda(double scale) {
  // 140M documents, 10 training iterations folded into stage volumes.
  // Paths {1}, {2,3}, {4}; stage 5 is the sequential sink (Fig. 11).
  // Near-homogeneous partitions (skew 0.03): AggShuffle gains nothing here.
  dag::JobDag j("LDA");
  const auto s1 = j.add_stage(stage("stage1", 24, 3.6, 3.0, 1.8, 0.03, scale));
  const auto s2 = j.add_stage(stage("stage2", 20, 3.0, 3.5, 1.5, 0.03, scale));
  const auto s3 = j.add_stage(stage("stage3", 30, 1.5, 2.0, 0.9, 0.03, scale));
  const auto s4 = j.add_stage(stage("stage4", 40, 5.2, 3.5, 1.2, 0.03, scale));
  const auto s5 = j.add_stage(stage("stage5", 30, 3.9, 3.0, 0.3, 0.03, scale));
  j.add_edge(s2, s3);
  j.add_edge(s1, s5);
  j.add_edge(s3, s5);
  j.add_edge(s4, s5);
  return j;
}

dag::JobDag triangle_count(double scale) {
  // 10M users / 100M connections (~11 GB). Eleven stages: four sources
  // contending hard for the HDFS egress in stock Spark, two join diamonds,
  // and a two-stage sequential tail. The widest parallel region of the four
  // workloads — and the largest DelayStage gain (41.3%, Fig. 10; Fig. 16).
  dag::JobDag j("TriangleCount");
  const auto s1 = j.add_stage(stage("stage1", 30, 4.2, 1.8, 1.7, 0.2, scale));
  const auto s2 = j.add_stage(stage("stage2", 20, 3.6, 3.4, 1.4, 0.2, scale));
  const auto s3 = j.add_stage(stage("stage3", 24, 3.4, 3.0, 1.3, 0.2, scale));
  const auto s4 = j.add_stage(stage("stage4", 24, 3.0, 1.8, 1.1, 0.2, scale));
  const auto s5 = j.add_stage(stage("stage5", 30, 1.4, 2.6, 0.8, 0.2, scale));
  const auto s6 = j.add_stage(stage("stage6", 30, 1.3, 2.6, 0.7, 0.2, scale));
  const auto s7 = j.add_stage(stage("stage7", 24, 0.8, 1.8, 0.5, 0.2, scale));
  const auto s8 = j.add_stage(stage("stage8", 24, 2.8, 1.4, 0.9, 0.2, scale));
  const auto s9 = j.add_stage(stage("stage9", 30, 1.5, 2.2, 0.8, 0.2, scale));
  const auto s10 = j.add_stage(stage("stage10", 40, 2.2, 1.8, 0.5, 0.2, scale));
  const auto s11 = j.add_stage(stage("stage11", 16, 0.5, 1.2, 0.1, 0.2, scale));
  // Long path {2,5,9}; slack paths {1,8}, {4,8}, {3,6}; stages 10-11 form
  // the sequential tail.
  j.add_edge(s2, s5);   // critical chain
  j.add_edge(s3, s6);
  j.add_edge(s5, s7);
  j.add_edge(s5, s9);
  j.add_edge(s6, s9);
  j.add_edge(s1, s8);   // slack diamond
  j.add_edge(s4, s8);
  j.add_edge(s7, s10);
  j.add_edge(s8, s10);
  j.add_edge(s9, s10);
  j.add_edge(s10, s11);
  return j;
}

std::vector<Workload> benchmark_suite(double scale) {
  std::vector<Workload> out;
  out.push_back({"ConnectedComponents", connected_components(scale)});
  out.push_back({"LDA", lda(scale)});
  out.push_back({"CosineSimilarity", cosine_similarity(scale)});
  out.push_back({"TriangleCount", triangle_count(scale)});
  return out;
}

}  // namespace ds::workloads
