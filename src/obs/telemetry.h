// TelemetrySink — streaming metric time series, replacing exit-only dumps.
//
// Each snapshot() appends ONE NDJSON line to the sink's stream: a versioned
// record stamping the full MetricsRegistry state (counters, gauges, and
// per-histogram {count, sum, mean, p50, p90, p99}) at a caller-supplied
// timestamp. The Scheduler drives it on a sim-time cadence (so for the
// deterministic sched/sim metrics the series is bit-identical for any
// --threads), while the plan daemon drives it on a wall-time cadence.
//
// The include/exclude prefix filters carve the deterministic surface out of
// a registry that also holds wall-clock and thread-racy metrics (planner.*
// memo counters, tracer.* ring drops): the sched CLI excludes those so its
// telemetry stream stays byte-reproducible, while the daemon streams
// everything.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ds::obs {

struct Observability;

struct TelemetryOptions {
  // Keep only metrics whose name starts with one of these prefixes
  // (empty = keep everything)...
  std::vector<std::string> include_prefixes;
  // ...then drop metrics whose name starts with one of these. Exclude wins.
  std::vector<std::string> exclude_prefixes;
};

class TelemetrySink {
 public:
  // The stream must outlive the sink. Not owned, not closed.
  explicit TelemetrySink(std::ostream& os, TelemetryOptions opt = {});
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  // Append one {"v": 1, "seq": …, "t": …, "counters": …, "gauges": …,
  // "histograms": …} line for the registry state at time `t` (sim or wall
  // seconds — the caller's cadence defines the time base). Refreshes the
  // registry's derived metrics (tracer.dropped_spans, …) first, then
  // flushes the stream so a live `tail -f` sees every tick.
  void snapshot(Observability& obs, double t);

  std::uint64_t snapshots() const { return seq_; }

 private:
  bool keep(const std::string& name) const;

  std::ostream& os_;
  const TelemetryOptions opt_;
  std::uint64_t seq_ = 0;
};

}  // namespace ds::obs
