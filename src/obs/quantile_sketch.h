// Deterministic, mergeable streaming quantile sketch (DDSketch-style).
//
// Values land in logarithmic buckets with a fixed relative accuracy α:
// bucket i covers (γ^(i-1), γ^i] with γ = (1+α)/(1-α), so quantile(q) is
// within a factor (1 ± α) of the true sample quantile. All state is integer
// bucket counts plus order-independent min/max — observing the same multiset
// of samples in ANY order, or merging any partition of it in any grouping,
// yields bit-identical counts and therefore bit-identical quantiles. That is
// the property the online SLO tracker leans on: per-shard sketches merge
// associatively, and the scheduler's live p99s cannot depend on thread
// count (quantile_sketch_test pins both).
//
// Memory is fixed at construction (one bounded bucket array, no allocation
// per observe/merge); the representable range is [kMinTracked, kMaxTracked]
// — smaller samples count into the zero bucket, larger ones saturate into
// the top bucket (both still counted, so count() is exact).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace ds::obs {

class QuantileSketch {
 public:
  // α in (0, 0.5]: the guaranteed relative accuracy of quantile().
  explicit QuantileSketch(double relative_accuracy = 0.01)
      : alpha_(relative_accuracy),
        gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
        inv_log_gamma_(1.0 / std::log(gamma_)) {
    DS_CHECK_MSG(relative_accuracy > 0 && relative_accuracy <= 0.5,
                 "relative_accuracy must be in (0, 0.5]");
    const int buckets = static_cast<int>(std::ceil(
        std::log(kMaxTracked / kMinTracked) / std::log(gamma_))) + 2;
    counts_.assign(static_cast<std::size_t>(buckets), 0);
  }

  double relative_accuracy() const { return alpha_; }

  void observe(double v) {
    ++total_;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    if (!(v > kMinTracked)) {  // non-positive, tiny, or NaN → zero bucket
      ++zero_count_;
      return;
    }
    ++counts_[static_cast<std::size_t>(index_of(v))];
  }

  // Fold another sketch in. Exactly associative and commutative: counts add
  // as integers, min/max as order-independent extrema. Both sketches must
  // share the accuracy (and therefore the bucket layout).
  void merge(const QuantileSketch& other) {
    DS_CHECK_MSG(counts_.size() == other.counts_.size() &&
                     alpha_ == other.alpha_,
                 "merging sketches with different accuracy");
    total_ += other.total_;
    zero_count_ += other.zero_count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
  }

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  double min() const { return total_ > 0 ? min_ : 0.0; }
  double max() const { return total_ > 0 ? max_ : 0.0; }

  // q in [0, 1]. Nearest-rank walk over the integer counts; the returned
  // bucket midpoint is within (1 ± α) of the true sample quantile, clamped
  // to the observed [min, max] so tails stay inside the sample range.
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(std::max<double>(
        1.0, std::ceil(std::clamp(q, 0.0, 1.0) *
                       static_cast<double>(total_))));
    std::uint64_t cum = zero_count_;
    if (rank <= cum) return std::clamp(0.0, min_, max_);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += counts_[i];
      if (rank <= cum) {
        // Midpoint of (γ^(i-1), γ^i] in the multiplicative sense:
        // 2γ^i / (γ+1), computed identically for identical counts.
        const double upper =
            kMinTracked * std::pow(gamma_, static_cast<double>(i + 1));
        return std::clamp(2.0 * upper / (gamma_ + 1.0), min_, max_);
      }
    }
    return max_;  // unreachable: cum reaches total_
  }

  std::uint64_t zero_count() const { return zero_count_; }

 private:
  // Tracked dynamic range: nanoseconds-ish to ~32 years in seconds terms.
  static constexpr double kMinTracked = 1e-9;
  static constexpr double kMaxTracked = 1e9;

  int index_of(double v) const {
    const double clamped = std::min(v, kMaxTracked);
    const int i = static_cast<int>(
        std::ceil(std::log(clamped / kMinTracked) * inv_log_gamma_));
    return std::clamp(i, 0, static_cast<int>(counts_.size()) - 1);
  }

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t total_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ds::obs
