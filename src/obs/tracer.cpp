#include "obs/tracer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace ds::obs {

namespace {

std::atomic<std::uint64_t> g_tracer_ids{1};

void write_number(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  os << buf;
}

void write_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Tracer::Tracer(TracerOptions opt)
    : opt_(opt),
      id_(g_tracer_ids.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  DS_CHECK_MSG(opt_.ring_capacity >= 2, "tracer ring too small");
}

double Tracer::wall_now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Tracer::ThreadLog& Tracer::local() {
  // One cache slot per thread: hits are two loads. A miss (first record from
  // this thread, or the thread last recorded into a different tracer) takes
  // the registry lock once.
  struct Cache {
    std::uint64_t tracer = 0;
    ThreadLog* log = nullptr;
  };
  thread_local Cache cache;
  if (cache.tracer == id_) return *cache.log;
  std::lock_guard<std::mutex> lock(mu_);
  const auto me = std::this_thread::get_id();
  for (const auto& l : logs_) {
    if (l->owner == me) {
      cache = {id_, l.get()};
      return *l;
    }
  }
  auto log = std::make_unique<ThreadLog>();
  log->owner = me;
  log->ring.resize(opt_.ring_capacity);
  logs_.push_back(std::move(log));
  cache = {id_, logs_.back().get()};
  return *cache.log;
}

void Tracer::record(const TraceEvent& ev) {
  ThreadLog& log = local();
  TraceEvent& slot = log.ring[log.head % log.ring.size()];
  slot = ev;
  slot.seq = log.head;
  ++log.head;
}

void Tracer::complete(const char* cat, const char* name, double ts_s,
                      double dur_s, std::int32_t pid, std::int32_t tid,
                      const char* arg_name, double arg_value) {
  if (!opt_.enabled) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'X';
  ev.ts_us = ts_s * 1e6;
  ev.dur_us = dur_s * 1e6;
  ev.pid = pid;
  ev.tid = tid;
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
  record(ev);
}

void Tracer::instant(const char* cat, const char* name, double ts_s,
                     std::int32_t pid, std::int32_t tid, const char* arg_name,
                     double arg_value) {
  if (!opt_.enabled) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.ts_us = ts_s * 1e6;
  ev.pid = pid;
  ev.tid = tid;
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
  record(ev);
}

void Tracer::counter(const char* cat, const char* name, double ts_s,
                     std::int32_t pid, double value) {
  if (!opt_.enabled) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'C';
  ev.ts_us = ts_s * 1e6;
  ev.pid = pid;
  ev.tid = 0;
  ev.arg_value = value;
  record(ev);
}

const char* Tracer::intern(const std::string& s) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = intern_index_.find(s);
  if (it != intern_index_.end()) return it->second;
  interned_.push_back(s);  // deque: element addresses are stable
  const char* p = interned_.back().c_str();
  intern_index_.emplace(s, p);
  return p;
}

void Tracer::set_process_name(std::int32_t pid, const std::string& name) {
  if (!opt_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  meta_.push_back(Meta{pid, 0, false, name});
}

void Tracer::set_thread_name(std::int32_t pid, std::int32_t tid,
                             const std::string& name) {
  if (!opt_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  meta_.push_back(Meta{pid, tid, true, name});
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& l : logs_) n += std::min<std::uint64_t>(l->head, l->ring.size());
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& l : logs_)
    n += l->head > l->ring.size() ? l->head - l->ring.size() : 0;
  return n;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& l : logs_) {
      const std::uint64_t kept = std::min<std::uint64_t>(l->head, l->ring.size());
      const std::uint64_t first = l->head - kept;
      for (std::uint64_t i = first; i < l->head; ++i)
        out.push_back(l->ring[i % l->ring.size()]);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.seq < b.seq;
  });
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  std::vector<Meta> meta;
  std::uint64_t dropped_events = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    meta = meta_;
    for (const auto& l : logs_)
      dropped_events += l->head > l->ring.size() ? l->head - l->ring.size() : 0;
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& m : meta) {
    os << (first ? "\n" : ",\n")
       << R"({"ph":"M","name":")" << (m.thread ? "thread_name" : "process_name")
       << R"(","pid":)" << m.pid << R"(,"tid":)" << m.tid
       << R"(,"args":{"name":)";
    write_string(os, m.name.c_str());
    os << "}}";
    first = false;
  }
  for (const auto& ev : events) {
    os << (first ? "\n" : ",\n") << R"({"ph":")" << ev.phase << R"(","name":)";
    write_string(os, ev.name);
    os << R"(,"cat":)";
    write_string(os, ev.cat[0] != '\0' ? ev.cat : "trace");
    os << R"(,"ts":)";
    write_number(os, ev.ts_us);
    if (ev.phase == 'X') {
      os << R"(,"dur":)";
      write_number(os, ev.dur_us);
    }
    if (ev.phase == 'i') os << R"(,"s":"t")";
    os << R"(,"pid":)" << ev.pid << R"(,"tid":)" << ev.tid;
    if (ev.phase == 'C') {
      os << R"(,"args":{"value":)";
      write_number(os, ev.arg_value);
      os << "}";
    } else if (ev.arg_name != nullptr) {
      os << R"(,"args":{)";
      write_string(os, ev.arg_name);
      os << ':';
      write_number(os, ev.arg_value);
      os << '}';
    }
    os << '}';
    first = false;
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":"
     << dropped_events << "}}\n";
}

}  // namespace ds::obs
