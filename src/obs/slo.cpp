#include "obs/slo.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/json.h"

namespace ds::obs {

namespace {

std::string fmt_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

Status bad_rule(std::string_view text, const char* why) {
  return Status::error("bad SLO rule '" + std::string(text) + "': " + why +
                       " (expected p<quantile>_<metric><=<threshold>, e.g. "
                       "p99_slowdown<=2.5)");
}

}  // namespace

const char* to_string(SloMetric metric) {
  switch (metric) {
    case SloMetric::kJct: return "jct";
    case SloMetric::kSlowdown: return "slowdown";
    case SloMetric::kQueueWait: return "queue_wait";
    case SloMetric::kPlanLatency: return "plan_latency";
  }
  return "?";
}

Status parse_slo_rule(std::string_view text, SloRule* out) {
  DS_CHECK(out != nullptr);
  if (text.empty() || text[0] != 'p') return bad_rule(text, "must start with p");
  const std::size_t underscore = text.find('_');
  if (underscore == std::string_view::npos)
    return bad_rule(text, "missing _ after the quantile");
  const std::string qtext(text.substr(1, underscore - 1));
  char* end = nullptr;
  const double percent = std::strtod(qtext.c_str(), &end);
  if (end == qtext.c_str() || *end != '\0' || percent <= 0 || percent >= 100)
    return bad_rule(text, "quantile must be in (0, 100)");
  const std::size_t le = text.find("<=", underscore);
  if (le == std::string_view::npos) return bad_rule(text, "missing <=");
  const std::string_view metric = text.substr(underscore + 1,
                                              le - underscore - 1);
  SloRule rule;
  if (metric == "jct") {
    rule.metric = SloMetric::kJct;
  } else if (metric == "slowdown") {
    rule.metric = SloMetric::kSlowdown;
  } else if (metric == "queue_wait") {
    rule.metric = SloMetric::kQueueWait;
  } else if (metric == "plan_latency") {
    rule.metric = SloMetric::kPlanLatency;
  } else {
    return bad_rule(text, "unknown metric (jct | slowdown | queue_wait | "
                          "plan_latency)");
  }
  const std::string ttext(text.substr(le + 2));
  end = nullptr;
  const double threshold = std::strtod(ttext.c_str(), &end);
  if (end == ttext.c_str() || *end != '\0' || threshold <= 0)
    return bad_rule(text, "threshold must be a positive number");
  rule.quantile = percent / 100.0;
  rule.threshold = threshold;
  rule.spec = std::string(text);
  *out = std::move(rule);
  return Status::ok();
}

SloTracker::SloTracker(SloOptions opt, Observability* obs,
                       FlightRecorder* flight)
    : opt_(std::move(opt)), flight_(flight) {
  violated_.resize(opt_.rules.size(), false);
  rule_gauges_.reserve(opt_.rules.size());
  for (const SloRule& rule : opt_.rules) {
    DS_CHECK_MSG(rule.quantile > 0 && rule.quantile < 1,
                 "SLO quantile out of range: " << rule.spec);
    DS_CHECK_MSG(rule.threshold > 0,
                 "SLO threshold must be positive: " << rule.spec);
    rule_gauges_.push_back(gauge(obs, "slo." + rule.spec));
  }
  if (!opt_.rules.empty()) m_violations_ = counter(obs, "slo.violations");
}

QuantileSketch& SloTracker::sketch(SloMetric metric, int priority) {
  const auto key = std::make_pair(static_cast<int>(metric), priority);
  auto it = sketches_.find(key);
  if (it == sketches_.end())
    it = sketches_.emplace(key, QuantileSketch(opt_.relative_accuracy)).first;
  return it->second;
}

void SloTracker::observe_queue_wait(int priority, double seconds) {
  sketch(SloMetric::kQueueWait, priority).observe(seconds);
}

void SloTracker::observe_plan_latency(int priority, double seconds) {
  sketch(SloMetric::kPlanLatency, priority).observe(seconds);
}

void SloTracker::observe_finish(int priority, double jct, double slowdown) {
  sketch(SloMetric::kJct, priority).observe(jct);
  sketch(SloMetric::kSlowdown, priority).observe(slowdown);
}

QuantileSketch SloTracker::merged(SloMetric metric) const {
  QuantileSketch out(opt_.relative_accuracy);
  for (const auto& [key, s] : sketches_)
    if (key.first == static_cast<int>(metric)) out.merge(s);
  return out;
}

void SloTracker::evaluate(double t) {
  for (std::size_t i = 0; i < opt_.rules.size(); ++i) {
    const SloRule& rule = opt_.rules[i];
    const QuantileSketch fleet = merged(rule.metric);
    if (fleet.empty()) continue;
    const double value = fleet.quantile(rule.quantile);
    rule_gauges_[i].set(value);
    const bool bad = value > rule.threshold;
    if (bad && !violated_[i]) {
      ++violations_;
      m_violations_.inc();
      if (flight_ != nullptr) {
        FlightRecord r;
        r.t = t;
        r.kind = FlightKind::kSloViolation;
        r.label = flight_->intern(rule.spec);
        r.value = value;
        r.aux = rule.threshold;
        flight_->record(r);
      }
    }
    violated_[i] = bad;
  }
}

bool SloTracker::violated(std::size_t rule_index) const {
  DS_CHECK(rule_index < violated_.size());
  return violated_[rule_index];
}

void SloTracker::write_ndjson(std::ostream& os, double t) const {
  os << "{\"v\": 1, \"ev\": \"slo\", \"t\": " << fmt_number(t)
     << ", \"violations\": " << violations_ << ", \"rules\": [";
  for (std::size_t i = 0; i < opt_.rules.size(); ++i) {
    const SloRule& rule = opt_.rules[i];
    const QuantileSketch fleet = merged(rule.metric);
    os << (i == 0 ? "" : ", ") << "{\"spec\": ";
    json::write_string(os, rule.spec);
    os << ", \"metric\": \"" << to_string(rule.metric)
       << "\", \"quantile\": " << fmt_number(rule.quantile)
       << ", \"threshold\": " << fmt_number(rule.threshold)
       << ", \"count\": " << fleet.count() << ", \"value\": "
       << fmt_number(fleet.empty() ? 0.0 : fleet.quantile(rule.quantile))
       << ", \"violated\": " << (violated_[i] ? "true" : "false") << '}';
  }
  os << "]}\n";
}

}  // namespace ds::obs
