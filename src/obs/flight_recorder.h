// FlightRecorder — the always-on scheduler audit trail.
//
// A bounded ring of fixed-size structured records, one per scheduler /
// engine lifecycle transition (submit → admit → size/grant → plan → run →
// stage finishes → replan/recovery → release → finish/fail, plus
// slo_violation marks), each stamped with the *simulated* time it happened
// and the queueing context that explains it (queue depth, ledger occupancy,
// plan-cache hit/miss, chosen delay budget). Because every record is
// emitted from inside a simulator event, the trail is bit-identical for any
// planner thread count — the same determinism contract the scheduler itself
// makes (flight_recorder_test pins it).
//
// Cost model: recording is one branch when disabled; when enabled it is a
// short critical section copying ~100 bytes into a preallocated ring — no
// allocation in the steady state (dynamic labels go through intern(), which
// deduplicates into recorder-owned storage, bounded by the number of
// *distinct* labels). The ring wraps, counting what it overwrote in
// dropped(), so memory stays bounded no matter how long the service runs —
// the flight-recorder idiom: you keep the last N transitions, which is what
// you want when something just went wrong.
//
// Dumps are versioned NDJSON ({"v": 1, "t": …, "ev": "admit", …}, one
// record per line, ring order): on demand (write_ndjson / dump_now),
// automatically when a job reaches a terminal failure (the engine calls
// on_anomaly), and on any DS_CHECK violation once install_crash_dump()
// has registered the recorder with the util/check.h failure hook.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ds::obs {

enum class FlightKind : std::uint8_t {
  kSubmit,        // job entered the admission queue
  kAdmit,         // job left the queue (value = wait seconds)
  kGrant,         // ledger commitment (value = slots, aux = bandwidth B/s)
  kPlan,          // admission planning done (value = Σ delay, cache hit/miss)
  kRunStart,      // engine::JobRun launched
  kStageFinish,   // one stage finished (value = duration seconds)
  kReplan,        // mid-job replan applied (label = trigger reason)
  kRecovery,      // crash recovery: stage reopened (value = tasks re-run)
  kRelease,       // ledger grant returned
  kFinish,        // job finished (value = JCT, aux = slowdown)
  kFail,          // job failed terminally (label = reason)
  kSloViolation,  // an SLO rule crossed its threshold (label = rule)
  kMark,          // free-form structured annotation
};

// Stable NDJSON "ev" spelling for each kind.
const char* to_string(FlightKind kind);

struct FlightRecord {
  double t = 0;                  // sim seconds (wall for sim-less hosts)
  FlightKind kind = FlightKind::kMark;
  std::uint64_t job = 0;         // service job id; 0 = none
  std::int32_t stage = -1;       // stage id; -1 = job-level
  std::int32_t priority = 0;     // job priority class
  const char* label = nullptr;   // static or interned detail string
  double queue_depth = -1;       // admission queue length; -1 = not sampled
  double occupancy = -1;         // ledger slot occupancy in [0,1]; -1 = n/a
  double value = 0;              // kind-specific (see enum comments)
  double aux = 0;                // kind-specific secondary value
  std::int8_t cache = -1;        // 1 = plan-cache hit, 0 = miss, -1 = n/a
  std::uint64_t seq = 0;         // filled by record(): total records so far
};

struct FlightRecorderOptions {
  bool enabled = false;
  // Records retained; older records are overwritten (and counted).
  std::size_t capacity = std::size_t{1} << 14;
  // Auto-dump target for on_anomaly() and the crash hook. Empty = no
  // auto-dump ("-" = stderr). Overwritten on every dump: the file always
  // holds the most recent trail.
  std::string dump_path;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions opt = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  bool enabled() const { return opt_.enabled; }

  // Append one record (seq is assigned here). One branch when disabled.
  void record(FlightRecord r);

  // Copy a dynamic string into recorder-owned storage; the pointer stays
  // valid for the recorder's lifetime. Deduplicates, so steady-state use
  // with a bounded label vocabulary allocates nothing.
  const char* intern(const std::string& s);

  std::uint64_t recorded() const;  // total records ever accepted
  std::uint64_t dropped() const;   // overwritten by ring wraparound
  std::size_t size() const;        // records currently retained

  // Retained records in ring (= seq) order.
  std::vector<FlightRecord> snapshot() const;

  // Versioned NDJSON dump of the retained trail, ring order, one record per
  // line. Deterministic for a deterministic record stream.
  void write_ndjson(std::ostream& os) const;

  // Write the trail to opt.dump_path now, prefixed with one {"ev": "dump"}
  // header line naming `reason`. No-op (returns false) when disabled or no
  // dump_path is configured; never throws (an audit dump must not take the
  // process down with it).
  bool dump_now(const char* reason);

  // Anomaly entry point (job failure, invariant violation): records a kMark
  // with the reason, then dump_now(reason).
  void on_anomaly(const char* reason);

 private:
  const FlightRecorderOptions opt_;
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;
  std::uint64_t head_ = 0;  // total records ever written
  std::deque<std::string> interned_;
  std::map<std::string, const char*> intern_index_;
};

// Register `rec` with the DS_CHECK failure hook: any failed check dumps the
// trail (on_anomaly) before the CheckError propagates. One recorder at a
// time; install_crash_dump(nullptr) uninstalls (the recorder's destructor
// uninstalls itself automatically if still registered).
void install_crash_dump(FlightRecorder* rec);

}  // namespace ds::obs
