// Serialization of the analytics reports: the `report` CLI subcommand and the
// --report-out flag on run/replay both funnel through here, so the JSON/CSV
// schema is defined once and pinned by the golden test.
//
// JSON layout (stable keys; values use the registry's %.10g number format so
// dumps are deterministic across platforms):
//
//   JobReport  — {"job", "strategy", "jct_s", "predicted_makespan_s",
//                 "drift": {"stages": [{"stage", "name", "delay_s",
//                     "network"/"compute"/"write"/"duration":
//                         {"predicted_s", "actual_s", "residual_s",
//                          "rel_error"}}, ...],
//                   "network"/"compute"/"write"/"duration":
//                       {"count", "mean", "p50", "p90", "max"},
//                   "warnings": [...]},
//                 "interleaving": {"horizon_s", "workers": [...],
//                   "cluster": {"pid", "network"/"cpu"/"disk":
//                       {"busy_s", "idle_s", "busy_fraction",
//                        "idle_fraction"},
//                     "overlap_s", "overlap_fraction",
//                     "interleaving_score"}}}
//
//   FleetReport — {"trace", "strategies": [{"strategy", <FleetUtilization
//                  fields>, "jobs_detail": [...optional per-job rows...]}]}
//
// CSV is section-based: a `# <section>` comment line, a header row, data rows,
// then a blank line between sections.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/analytics/analytics.h"

namespace ds::obs::analytics {

// One executed job: planner predictions vs engine spans.
struct JobReport {
  std::string job;       // DAG/workload name
  std::string strategy;  // scheduling strategy that produced the run
  Seconds jct_s = 0;
  Seconds predicted_makespan_s = 0;
  DriftReport drift;
  InterleavingReport interleaving;
};

// Per-job sharing outcome inside a fleet replay (compact row form).
struct FleetJobRow {
  Seconds submit = 0;
  Seconds jct = 0;
  Seconds dedicated = 0;
  double cpu_util_pct = 0;
  double net_util_pct = 0;
  Seconds planned_delay = 0;
};

struct FleetStrategyReport {
  std::string strategy;
  FleetUtilization util;
  std::vector<FleetJobRow> jobs;  // optional detail (may be empty)
};

// Trace replay aggregated per strategy (and per job when detail is kept).
struct FleetReport {
  std::string trace;  // source description (file / synthetic params)
  std::vector<FleetStrategyReport> strategies;
};

FleetJobRow to_row(const trace::ReplayJobResult& j);
FleetStrategyReport fleet_strategy_report(const std::string& strategy,
                                          const trace::ReplayResult& result,
                                          bool keep_jobs = false);

void write_json(std::ostream& os, const JobReport& report);
void write_json(std::ostream& os, const FleetReport& report);
void write_csv(std::ostream& os, const JobReport& report);
void write_csv(std::ostream& os, const FleetReport& report);

// Write to `path`, choosing CSV when the extension is .csv and JSON
// otherwise. Returns false (with a note on stderr) when the file cannot be
// opened; never throws.
bool write_report_file(const std::string& path, const JobReport& report);
bool write_report_file(const std::string& path, const FleetReport& report);

}  // namespace ds::obs::analytics
