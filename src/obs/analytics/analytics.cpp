#include "obs/analytics/analytics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>

#include "obs/obs.h"
#include "util/check.h"

namespace ds::obs::analytics {

namespace {

constexpr double kEps = 1e-9;

double rel_of(Seconds residual, Seconds scale) {
  return std::abs(residual) / std::max(scale, kEps);
}

DriftSummary summarize_rel(std::vector<double>& rel) {
  DriftSummary s;
  s.count = static_cast<int>(rel.size());
  if (rel.empty()) return s;
  double sum = 0;
  for (double r : rel) sum += r;
  s.mean = sum / static_cast<double>(rel.size());
  std::sort(rel.begin(), rel.end());
  s.p50 = metrics::percentile(rel, 50);
  s.p90 = metrics::percentile(rel, 90);
  s.max = rel.back();
  return s;
}

std::string fmt1(double v) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << v;
  return os.str();
}

// Merge raw intervals into a disjoint ascending timeline clipped to
// [0, horizon], then derive the busy/idle partition.
ResourceTimeline build_timeline(std::vector<Interval> raw, Seconds horizon) {
  ResourceTimeline tl;
  std::vector<Interval> clipped;
  clipped.reserve(raw.size());
  for (const Interval& iv : raw) {
    const Seconds a = std::max<Seconds>(iv.start, 0);
    const Seconds b = std::min(iv.end, horizon);
    if (b > a) clipped.push_back({a, b});
  }
  std::sort(clipped.begin(), clipped.end(),
            [](const Interval& x, const Interval& y) {
              return x.start < y.start || (x.start == y.start && x.end < y.end);
            });
  for (const Interval& iv : clipped) {
    if (!tl.busy.empty() && iv.start <= tl.busy.back().end) {
      tl.busy.back().end = std::max(tl.busy.back().end, iv.end);
    } else {
      tl.busy.push_back(iv);
    }
  }
  for (const Interval& iv : tl.busy) tl.busy_seconds += iv.end - iv.start;
  tl.idle_seconds = horizon - tl.busy_seconds;
  if (horizon > 0) {
    tl.busy_fraction = tl.busy_seconds / horizon;
    tl.idle_fraction = tl.idle_seconds / horizon;
  }
  return tl;
}

// Seconds during which both (merged, ascending) timelines are busy.
Seconds overlap_seconds(const std::vector<Interval>& a,
                        const std::vector<Interval>& b) {
  Seconds overlap = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Seconds lo = std::max(a[i].start, b[j].start);
    const Seconds hi = std::min(a[i].end, b[j].end);
    if (hi > lo) overlap += hi - lo;
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

// Raw (unmerged) busy intervals of one worker, per resource class.
struct RawWorker {
  std::vector<Interval> network, cpu, disk;
};

WorkerInterleaving finish_worker(std::int32_t pid, RawWorker&& raw,
                                 Seconds horizon) {
  WorkerInterleaving w;
  w.pid = pid;
  w.network = build_timeline(std::move(raw.network), horizon);
  w.cpu = build_timeline(std::move(raw.cpu), horizon);
  w.disk = build_timeline(std::move(raw.disk), horizon);
  w.net_cpu_overlap = overlap_seconds(w.network.busy, w.cpu.busy);
  const Seconds scarcer =
      std::min(w.network.busy_seconds, w.cpu.busy_seconds);
  w.overlap_fraction = scarcer > 0 ? w.net_cpu_overlap / scarcer : 0.0;
  w.interleaving_score = horizon > 0 ? w.net_cpu_overlap / horizon : 0.0;
  return w;
}

std::vector<Interval>* resource_of(RawWorker& w, const char* name) {
  if (std::strncmp(name, "fetch", 5) == 0) return &w.network;
  if (std::strncmp(name, "compute", 7) == 0) return &w.cpu;
  if (std::strncmp(name, "write", 5) == 0) return &w.disk;
  return nullptr;
}

}  // namespace

// --- model drift -----------------------------------------------------------

PhaseBreakdown predicted_breakdown(const core::StageTimeline& t) {
  PhaseBreakdown b;
  b.network = t.read_done - t.submitted;
  b.compute = t.compute_done - t.read_done;
  b.write = t.finish - t.compute_done;
  return b;
}

PhaseBreakdown actual_breakdown(const engine::StageRecord& r) {
  DS_CHECK_MSG(r.finish >= 0, "actual_breakdown wants a finished stage");
  PhaseBreakdown b;
  b.network = r.last_read_done - r.submitted;
  b.compute = r.last_compute_done - r.last_read_done;
  b.write = r.finish - r.last_compute_done;
  return b;
}

DriftReport model_drift(const std::vector<core::StageTimeline>& predicted,
                        const std::vector<Seconds>& delay,
                        const dag::JobDag& dag,
                        const engine::JobResult& actual,
                        const DriftOptions& opt) {
  DS_CHECK_MSG(predicted.size() >= actual.stages.size(),
               "predicted timeline shorter than the executed stage set");
  DriftReport rep;
  std::vector<double> rel_net, rel_cpu, rel_wr, rel_dur;
  for (std::size_t i = 0; i < actual.stages.size(); ++i) {
    const engine::StageRecord& rec = actual.stages[i];
    if (rec.finish < 0) continue;  // never ran (failed job)
    const PhaseBreakdown pred = predicted_breakdown(predicted[i]);
    const PhaseBreakdown act = actual_breakdown(rec);

    StageDrift d;
    d.stage = static_cast<dag::StageId>(i);
    d.name = dag.stage(d.stage).name;
    d.delay = i < delay.size() ? delay[i] : 0.0;
    const Seconds scale = pred.total();
    auto term = [&](Seconds p, Seconds a) {
      TermDrift t;
      t.predicted = p;
      t.actual = a;
      t.rel_error = rel_of(a - p, scale);
      return t;
    };
    d.network = term(pred.network, act.network);
    d.compute = term(pred.compute, act.compute);
    d.write = term(pred.write, act.write);
    d.duration = term(pred.total(), act.total());

    rel_net.push_back(d.network.rel_error);
    rel_cpu.push_back(d.compute.rel_error);
    rel_wr.push_back(d.write.rel_error);
    rel_dur.push_back(d.duration.rel_error);
    if (d.duration.rel_error > opt.warn_stage_rel_error) {
      rep.warnings.push_back(
          "stage " + d.name + ": predicted " + fmt1(d.duration.predicted) +
          " s vs actual " + fmt1(d.duration.actual) + " s (rel error " +
          fmt1(100.0 * d.duration.rel_error) + " % > " +
          fmt1(100.0 * opt.warn_stage_rel_error) + " %)");
    }
    rep.stages.push_back(std::move(d));
  }
  rep.network = summarize_rel(rel_net);
  rep.compute = summarize_rel(rel_cpu);
  rep.write = summarize_rel(rel_wr);
  rep.duration = summarize_rel(rel_dur);
  const auto check_term = [&](const char* name, const DriftSummary& s) {
    if (s.count > 0 && s.p90 > opt.warn_p90_rel_error) {
      rep.warnings.push_back(
          std::string(name) + " term: p90 relative error " +
          fmt1(100.0 * s.p90) + " % exceeds bound " +
          fmt1(100.0 * opt.warn_p90_rel_error) + " %");
    }
  };
  check_term("network", rep.network);
  check_term("compute", rep.compute);
  check_term("write", rep.write);
  return rep;
}

// --- interleaving ----------------------------------------------------------

InterleavingReport interleaving_from_spans(
    const std::vector<TraceEvent>& events, Seconds horizon) {
  // Engine task spans live on the worker pid tracks; their ts/dur are
  // sim-time microseconds.
  std::map<std::int32_t, RawWorker> raw;
  RawWorker cluster_raw;
  Seconds last_end = 0;
  for (const TraceEvent& ev : events) {
    if (ev.phase != 'X' || std::strcmp(ev.cat, "task") != 0) continue;
    if (ev.pid < kNodePidBase || ev.pid >= kPlannerPid) continue;
    RawWorker& w = raw[ev.pid];
    std::vector<Interval>* res = resource_of(w, ev.name);
    if (res == nullptr) continue;
    const Interval iv{ev.ts_us * 1e-6, (ev.ts_us + ev.dur_us) * 1e-6};
    res->push_back(iv);
    resource_of(cluster_raw, ev.name)->push_back(iv);
    last_end = std::max(last_end, iv.end);
  }
  InterleavingReport rep;
  rep.horizon = horizon > 0 ? horizon : last_end;
  for (auto& [pid, w] : raw)
    rep.workers.push_back(finish_worker(pid, std::move(w), rep.horizon));
  rep.cluster = finish_worker(-1, std::move(cluster_raw), rep.horizon);
  return rep;
}

InterleavingReport interleaving(const Tracer& tracer, Seconds horizon) {
  return interleaving_from_spans(tracer.snapshot(), horizon);
}

// --- series-based views ----------------------------------------------------

double percent_below(const metrics::TimeSeries& series, double threshold) {
  if (series.empty()) return 0.0;
  double below = 0;
  for (double v : series.values()) below += (v < threshold);
  return 100.0 * below / static_cast<double>(series.size());
}

WorkerUtilization worker_utilization(const metrics::UtilizationSampler& sampler,
                                     sim::NodeId worker, Seconds horizon) {
  WorkerUtilization u;
  u.cpu = sampler.cpu_util(worker);
  u.net = sampler.net_rx_mbps(worker);
  u.cpu_summary = u.cpu.summarize(0, horizon);
  u.net_summary = u.net.summarize(0, horizon);
  return u;
}

FleetUtilization fleet_utilization(const trace::ReplayResult& result) {
  FleetUtilization f;
  f.jobs = result.jobs.size();
  if (f.jobs == 0) return f;
  f.mean_jct_s = result.mean_jct();
  f.mean_dedicated_s = result.mean_dedicated();
  f.cluster_cpu_pct = result.mean_cpu_util();
  f.cluster_net_pct = result.mean_net_util();
  f.job_cpu_pct = result.mean_job_cpu_util();
  f.job_net_pct = result.mean_job_net_util();
  f.job_cpu_idle_pct = 100.0 - f.job_cpu_pct;
  f.job_net_idle_pct = 100.0 - f.job_net_pct;

  std::vector<double> cpu, net;
  cpu.reserve(f.jobs);
  net.reserve(f.jobs);
  Seconds delay_sum = 0;
  for (const auto& j : result.jobs) {
    cpu.push_back(100.0 * j.cpu_util);
    net.push_back(100.0 * j.net_util);
    delay_sum += j.planned_delay;
  }
  std::sort(cpu.begin(), cpu.end());
  std::sort(net.begin(), net.end());
  f.job_cpu_p50 = metrics::percentile(cpu, 50);
  f.job_cpu_p90 = metrics::percentile(cpu, 90);
  f.job_net_p50 = metrics::percentile(net, 50);
  f.job_net_p90 = metrics::percentile(net, 90);
  f.mean_planned_delay_s = delay_sum / static_cast<double>(f.jobs);
  return f;
}

}  // namespace ds::obs::analytics
