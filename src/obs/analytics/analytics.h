// Derived analytics over the observability layer: the paper's evaluation
// methodology (§2 motivation, §3 model validation, §5 utilization studies)
// as a library instead of per-bench arithmetic.
//
// Two report families:
//
//  * Model drift (Figs. 9–11): per-stage, per-term residuals between the
//    analytical model's predicted phase breakdown (Eq. 1–3, exported by the
//    planner as DelaySchedule::predicted_stages) and the engine's executed
//    StageRecords — network fetch vs [submitted, last_read_done), compute vs
//    [last_read_done, last_compute_done), shuffle write vs
//    [last_compute_done, finish). Residuals aggregate into per-term
//    percentile summaries with configurable thresholds that turn model decay
//    into explicit warnings.
//
//  * Interleaving efficiency (Figs. 4/5/12/13, Tables 3/4): per-resource
//    busy/idle timelines derived online from the Tracer's engine task spans
//    (fetch → network, compute → CPU, write → disk), idle fractions, the
//    pairwise network×CPU overlap, and a makespan-normalized interleaving
//    score — the quantity DelayStage exists to raise. Series-based helpers
//    cover the sampler/replay views the bench binaries print so Fig. 4/12/13
//    and Table 3/4 all consume one implementation.
//
// Everything here is read-only over snapshots: computing a report never
// touches a live simulation, so analytics inherit the obs layer's passivity
// guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "dag/job.h"
#include "engine/records.h"
#include "metrics/sampler.h"
#include "metrics/stats.h"
#include "metrics/timeseries.h"
#include "obs/tracer.h"
#include "trace/replay.h"

namespace ds::obs::analytics {

// --- model drift -----------------------------------------------------------

// The three model terms of Eq. 1, as spans of one stage's timeline.
struct PhaseBreakdown {
  Seconds network = 0;  // shuffle-read transfer: max_i(s_i / B_i)
  Seconds compute = 0;  // data processing: Σ_i s_i / (ε · R_k)
  Seconds write = 0;    // shuffle write: d / D
  Seconds total() const { return network + compute + write; }
};

// Predicted breakdown of one stage under the planner's slotted simulation.
PhaseBreakdown predicted_breakdown(const core::StageTimeline& t);

// Executed breakdown from the engine's stage record. Requires a finished
// stage (finish >= 0); the write term absorbs any tail between the last
// compute completion and stage finish, mirroring the model's phase order.
PhaseBreakdown actual_breakdown(const engine::StageRecord& r);

struct TermDrift {
  Seconds predicted = 0;
  Seconds actual = 0;
  Seconds residual() const { return actual - predicted; }
  // |residual| normalized by the stage's *predicted total* duration, so a
  // near-zero individual term (e.g. a tiny write phase) cannot blow the
  // ratio up while a genuinely mis-modelled stage still registers.
  double rel_error = 0;
};

struct StageDrift {
  dag::StageId stage = dag::kNoStage;
  std::string name;
  Seconds delay = 0;  // planned x_k
  TermDrift network, compute, write;
  TermDrift duration;  // whole-stage span (submitted → finish)
};

// Percentile summary of one term's |relative error| across stages.
struct DriftSummary {
  int count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double max = 0;
};

struct DriftOptions {
  // Per-stage: warn when a stage's whole-duration relative error exceeds
  // this bound.
  double warn_stage_rel_error = 0.5;
  // Aggregate: warn when a term's p90 relative error exceeds this bound.
  double warn_p90_rel_error = 0.25;
};

struct DriftReport {
  std::vector<StageDrift> stages;  // finished stages only
  DriftSummary network, compute, write, duration;
  std::vector<std::string> warnings;
  bool within_bounds() const { return warnings.empty(); }
};

// Compare the planner's exported predictions against an executed run.
// `predicted` is DelaySchedule::predicted_stages (or any evaluator output
// for the same delay vector); `delay` is the planned X (short vectors mean
// zero, like SubmissionPlan). Unfinished stages are skipped.
DriftReport model_drift(const std::vector<core::StageTimeline>& predicted,
                        const std::vector<Seconds>& delay,
                        const dag::JobDag& dag,
                        const engine::JobResult& actual,
                        const DriftOptions& opt = {});

// --- interleaving efficiency (span-based) ----------------------------------

struct Interval {
  Seconds start = 0;
  Seconds end = 0;
};

// One resource's busy timeline over [0, horizon]: merged disjoint intervals
// in ascending order. busy + idle == horizon by construction.
struct ResourceTimeline {
  std::vector<Interval> busy;
  Seconds busy_seconds = 0;
  Seconds idle_seconds = 0;
  double busy_fraction = 0;
  double idle_fraction = 0;
};

struct WorkerInterleaving {
  // Chrome-trace pid of the worker track (kNodePidBase + node id); -1 for
  // the cluster-level union row.
  std::int32_t pid = -1;
  ResourceTimeline network, cpu, disk;
  // Seconds during which the network and the CPU are busy *simultaneously* —
  // the overlap DelayStage converts alternation into (Figs. 5/12).
  Seconds net_cpu_overlap = 0;
  // overlap / min(network busy, CPU busy): 1 means the scarcer resource is
  // always interleaved with the other; 0 means strict alternation.
  double overlap_fraction = 0;
  // overlap / horizon: the makespan-normalized interleaving score.
  double interleaving_score = 0;
};

struct InterleavingReport {
  Seconds horizon = 0;
  // Per worker node, ascending pid, only workers that recorded task spans.
  std::vector<WorkerInterleaving> workers;
  // Union across workers: a resource class is busy when any worker uses it.
  WorkerInterleaving cluster;
};

// Derive the report from engine task spans (category "task": names starting
// with fetch/compute/write, killed variants included — the resource was held
// either way). Spans are clipped to [0, horizon]; horizon <= 0 means "end of
// the last span" (pass the JCT for the paper's makespan-relative fractions).
InterleavingReport interleaving_from_spans(
    const std::vector<TraceEvent>& events, Seconds horizon = -1);
InterleavingReport interleaving(const Tracer& tracer, Seconds horizon = -1);

// --- series-based utilization views (Fig. 4/12/13, Tables 3/4) -------------

// Percent of samples strictly below `threshold` (Fig. 4's "below 10% CPU
// for 39.1% of the time"). Empty series → 0.
double percent_below(const metrics::TimeSeries& series, double threshold);

// A worker's sampled utilization over [0, horizon] — the series and
// mean(std) rows of Fig. 12 and Table 3.
struct WorkerUtilization {
  metrics::TimeSeries cpu;  // percent
  metrics::TimeSeries net;  // MB/s received
  metrics::Summary cpu_summary;
  metrics::Summary net_summary;
};
WorkerUtilization worker_utilization(const metrics::UtilizationSampler& sampler,
                                     sim::NodeId worker, Seconds horizon);

// Fleet-level aggregation of a trace replay: the Table 4 / Fig. 4 numbers
// plus idle fractions and per-job utilization percentiles.
struct FleetUtilization {
  std::size_t jobs = 0;
  double mean_jct_s = 0;
  double mean_dedicated_s = 0;
  // Cluster-occupancy time averages (percent) — Fig. 4(a).
  double cluster_cpu_pct = 0;
  double cluster_net_pct = 0;
  // Runtime-weighted utilization of the resources allocated to jobs
  // (percent) — Table 4's view — and the complementary idle fractions.
  double job_cpu_pct = 0;
  double job_net_pct = 0;
  double job_cpu_idle_pct = 0;
  double job_net_idle_pct = 0;
  // Per-job utilization spread (percent, unweighted percentiles).
  double job_cpu_p50 = 0;
  double job_cpu_p90 = 0;
  double job_net_p50 = 0;
  double job_net_p90 = 0;
  // Mean total planned delay Σ_k x_k per job (0 for stock strategies).
  Seconds mean_planned_delay_s = 0;
};
FleetUtilization fleet_utilization(const trace::ReplayResult& result);

}  // namespace ds::obs::analytics
