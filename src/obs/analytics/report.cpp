#include "obs/analytics/report.h"

#include <cstdio>
#include <fstream>
#include <iostream>

namespace ds::obs::analytics {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void term_json(std::ostream& os, const char* key, const TermDrift& t) {
  os << '"' << key << "\": {\"predicted_s\": " << num(t.predicted)
     << ", \"actual_s\": " << num(t.actual)
     << ", \"residual_s\": " << num(t.residual())
     << ", \"rel_error\": " << num(t.rel_error) << '}';
}

void summary_json(std::ostream& os, const char* key, const DriftSummary& s) {
  os << '"' << key << "\": {\"count\": " << s.count
     << ", \"mean\": " << num(s.mean) << ", \"p50\": " << num(s.p50)
     << ", \"p90\": " << num(s.p90) << ", \"max\": " << num(s.max) << '}';
}

void timeline_json(std::ostream& os, const char* key,
                   const ResourceTimeline& t) {
  os << '"' << key << "\": {\"busy_s\": " << num(t.busy_seconds)
     << ", \"idle_s\": " << num(t.idle_seconds)
     << ", \"busy_fraction\": " << num(t.busy_fraction)
     << ", \"idle_fraction\": " << num(t.idle_fraction) << '}';
}

void worker_json(std::ostream& os, const WorkerInterleaving& w,
                 const char* indent) {
  os << "{\n" << indent << "  \"pid\": " << w.pid << ",\n" << indent << "  ";
  timeline_json(os, "network", w.network);
  os << ",\n" << indent << "  ";
  timeline_json(os, "cpu", w.cpu);
  os << ",\n" << indent << "  ";
  timeline_json(os, "disk", w.disk);
  os << ",\n"
     << indent << "  \"overlap_s\": " << num(w.net_cpu_overlap) << ",\n"
     << indent << "  \"overlap_fraction\": " << num(w.overlap_fraction)
     << ",\n"
     << indent << "  \"interleaving_score\": " << num(w.interleaving_score)
     << "\n" << indent << '}';
}

void drift_json(std::ostream& os, const DriftReport& d) {
  os << "{\n    \"stages\": [";
  for (std::size_t i = 0; i < d.stages.size(); ++i) {
    const StageDrift& s = d.stages[i];
    os << (i == 0 ? "" : ",") << "\n      {\"stage\": " << s.stage
       << ", \"name\": " << quoted(s.name)
       << ", \"delay_s\": " << num(s.delay) << ",\n       ";
    term_json(os, "network", s.network);
    os << ",\n       ";
    term_json(os, "compute", s.compute);
    os << ",\n       ";
    term_json(os, "write", s.write);
    os << ",\n       ";
    term_json(os, "duration", s.duration);
    os << '}';
  }
  os << (d.stages.empty() ? "" : "\n    ") << "],\n    ";
  summary_json(os, "network", d.network);
  os << ",\n    ";
  summary_json(os, "compute", d.compute);
  os << ",\n    ";
  summary_json(os, "write", d.write);
  os << ",\n    ";
  summary_json(os, "duration", d.duration);
  os << ",\n    \"warnings\": [";
  for (std::size_t i = 0; i < d.warnings.size(); ++i)
    os << (i == 0 ? "" : ", ") << quoted(d.warnings[i]);
  os << "]\n  }";
}

void interleaving_json(std::ostream& os, const InterleavingReport& r) {
  os << "{\n    \"horizon_s\": " << num(r.horizon)
     << ",\n    \"workers\": [";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n      ";
    worker_json(os, r.workers[i], "      ");
  }
  os << (r.workers.empty() ? "" : "\n    ") << "],\n    \"cluster\": ";
  worker_json(os, r.cluster, "    ");
  os << "\n  }";
}

void fleet_util_json(std::ostream& os, const FleetUtilization& f) {
  os << "\"jobs\": " << f.jobs << ",\n      \"mean_jct_s\": "
     << num(f.mean_jct_s)
     << ",\n      \"mean_dedicated_s\": " << num(f.mean_dedicated_s)
     << ",\n      \"cluster_cpu_pct\": " << num(f.cluster_cpu_pct)
     << ",\n      \"cluster_net_pct\": " << num(f.cluster_net_pct)
     << ",\n      \"job_cpu_pct\": " << num(f.job_cpu_pct)
     << ",\n      \"job_net_pct\": " << num(f.job_net_pct)
     << ",\n      \"job_cpu_idle_pct\": " << num(f.job_cpu_idle_pct)
     << ",\n      \"job_net_idle_pct\": " << num(f.job_net_idle_pct)
     << ",\n      \"job_cpu_p50\": " << num(f.job_cpu_p50)
     << ",\n      \"job_cpu_p90\": " << num(f.job_cpu_p90)
     << ",\n      \"job_net_p50\": " << num(f.job_net_p50)
     << ",\n      \"job_net_p90\": " << num(f.job_net_p90)
     << ",\n      \"mean_planned_delay_s\": " << num(f.mean_planned_delay_s);
}

// CSV field orders are part of the pinned schema — keep in sync with the
// header comments below and the golden test.
void worker_csv_row(std::ostream& os, const WorkerInterleaving& w) {
  os << w.pid << ',' << num(w.network.busy_seconds) << ','
     << num(w.network.idle_fraction) << ',' << num(w.cpu.busy_seconds) << ','
     << num(w.cpu.idle_fraction) << ',' << num(w.disk.busy_seconds) << ','
     << num(w.disk.idle_fraction) << ',' << num(w.net_cpu_overlap) << ','
     << num(w.overlap_fraction) << ',' << num(w.interleaving_score) << '\n';
}

}  // namespace

FleetJobRow to_row(const trace::ReplayJobResult& j) {
  FleetJobRow r;
  r.submit = j.submit;
  r.jct = j.jct;
  r.dedicated = j.dedicated_time;
  r.cpu_util_pct = 100.0 * j.cpu_util;
  r.net_util_pct = 100.0 * j.net_util;
  r.planned_delay = j.planned_delay;
  return r;
}

FleetStrategyReport fleet_strategy_report(const std::string& strategy,
                                          const trace::ReplayResult& result,
                                          bool keep_jobs) {
  FleetStrategyReport rep;
  rep.strategy = strategy;
  rep.util = fleet_utilization(result);
  if (keep_jobs) {
    rep.jobs.reserve(result.jobs.size());
    for (const auto& j : result.jobs) rep.jobs.push_back(to_row(j));
  }
  return rep;
}

void write_json(std::ostream& os, const JobReport& report) {
  os << "{\n  \"job\": " << quoted(report.job)
     << ",\n  \"strategy\": " << quoted(report.strategy)
     << ",\n  \"jct_s\": " << num(report.jct_s)
     << ",\n  \"predicted_makespan_s\": " << num(report.predicted_makespan_s)
     << ",\n  \"drift\": ";
  drift_json(os, report.drift);
  os << ",\n  \"interleaving\": ";
  interleaving_json(os, report.interleaving);
  os << "\n}\n";
}

void write_json(std::ostream& os, const FleetReport& report) {
  os << "{\n  \"trace\": " << quoted(report.trace)
     << ",\n  \"strategies\": [";
  for (std::size_t i = 0; i < report.strategies.size(); ++i) {
    const FleetStrategyReport& s = report.strategies[i];
    os << (i == 0 ? "" : ",") << "\n    {\n      \"strategy\": "
       << quoted(s.strategy) << ",\n      ";
    fleet_util_json(os, s.util);
    os << ",\n      \"jobs_detail\": [";
    for (std::size_t j = 0; j < s.jobs.size(); ++j) {
      const FleetJobRow& r = s.jobs[j];
      os << (j == 0 ? "" : ",") << "\n        {\"submit_s\": " << num(r.submit)
         << ", \"jct_s\": " << num(r.jct)
         << ", \"dedicated_s\": " << num(r.dedicated)
         << ", \"cpu_util_pct\": " << num(r.cpu_util_pct)
         << ", \"net_util_pct\": " << num(r.net_util_pct)
         << ", \"planned_delay_s\": " << num(r.planned_delay) << '}';
    }
    os << (s.jobs.empty() ? "" : "\n      ") << "]\n    }";
  }
  os << (report.strategies.empty() ? "" : "\n  ") << "]\n}\n";
}

void write_csv(std::ostream& os, const JobReport& report) {
  os << "# drift\n"
     << "job,strategy,stage,name,delay_s,term,predicted_s,actual_s,"
        "residual_s,rel_error\n";
  for (const StageDrift& s : report.drift.stages) {
    const struct {
      const char* name;
      const TermDrift* t;
    } terms[] = {{"network", &s.network},
                 {"compute", &s.compute},
                 {"write", &s.write},
                 {"duration", &s.duration}};
    for (const auto& [tname, t] : terms) {
      os << report.job << ',' << report.strategy << ',' << s.stage << ','
         << s.name << ',' << num(s.delay) << ',' << tname << ','
         << num(t->predicted) << ',' << num(t->actual) << ','
         << num(t->residual()) << ',' << num(t->rel_error) << '\n';
    }
  }
  os << "\n# interleaving\n"
     << "pid,net_busy_s,net_idle_fraction,cpu_busy_s,cpu_idle_fraction,"
        "disk_busy_s,disk_idle_fraction,overlap_s,overlap_fraction,"
        "interleaving_score\n";
  for (const WorkerInterleaving& w : report.interleaving.workers)
    worker_csv_row(os, w);
  worker_csv_row(os, report.interleaving.cluster);
}

void write_csv(std::ostream& os, const FleetReport& report) {
  os << "# fleet\n"
     << "strategy,jobs,mean_jct_s,mean_dedicated_s,cluster_cpu_pct,"
        "cluster_net_pct,job_cpu_pct,job_net_pct,job_cpu_idle_pct,"
        "job_net_idle_pct,job_cpu_p50,job_cpu_p90,job_net_p50,job_net_p90,"
        "mean_planned_delay_s\n";
  for (const FleetStrategyReport& s : report.strategies) {
    const FleetUtilization& f = s.util;
    os << s.strategy << ',' << f.jobs << ',' << num(f.mean_jct_s) << ','
       << num(f.mean_dedicated_s) << ',' << num(f.cluster_cpu_pct) << ','
       << num(f.cluster_net_pct) << ',' << num(f.job_cpu_pct) << ','
       << num(f.job_net_pct) << ',' << num(f.job_cpu_idle_pct) << ','
       << num(f.job_net_idle_pct) << ',' << num(f.job_cpu_p50) << ','
       << num(f.job_cpu_p90) << ',' << num(f.job_net_p50) << ','
       << num(f.job_net_p90) << ',' << num(f.mean_planned_delay_s) << '\n';
  }
  bool any_jobs = false;
  for (const FleetStrategyReport& s : report.strategies)
    any_jobs = any_jobs || !s.jobs.empty();
  if (!any_jobs) return;
  os << "\n# jobs\n"
     << "strategy,submit_s,jct_s,dedicated_s,cpu_util_pct,net_util_pct,"
        "planned_delay_s\n";
  for (const FleetStrategyReport& s : report.strategies) {
    for (const FleetJobRow& r : s.jobs) {
      os << s.strategy << ',' << num(r.submit) << ',' << num(r.jct) << ','
         << num(r.dedicated) << ',' << num(r.cpu_util_pct) << ','
         << num(r.net_util_pct) << ',' << num(r.planned_delay) << '\n';
    }
  }
}

namespace {

bool is_csv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

template <typename Report>
bool write_file(const std::string& path, const Report& report) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not open report file " << path << "\n";
    return false;
  }
  if (is_csv(path)) {
    write_csv(out, report);
  } else {
    write_json(out, report);
  }
  return true;
}

}  // namespace

bool write_report_file(const std::string& path, const JobReport& report) {
  return write_file(path, report);
}

bool write_report_file(const std::string& path, const FleetReport& report) {
  return write_file(path, report);
}

}  // namespace ds::obs::analytics
