// Structured span tracer with per-thread ring buffers and Chrome trace_event
// export.
//
// Record calls append one fixed-size TraceEvent to the calling thread's ring
// buffer — no locking, no allocation after the ring is built, and bounded
// memory per thread (the ring wraps, counting what it overwrote in
// dropped()). Disabled tracers (the default) reject every record with one
// branch; callers that resolve their Tracer* through obs::tracer() hold
// nullptr instead and pay nothing at all.
//
// Export (write_chrome_json) merges all rings into one deterministically
// ordered Chrome `trace_event` array loadable by chrome://tracing or
// https://ui.perfetto.dev. Timestamps are microseconds; callers pass seconds
// (sim-time for engine spans, wall-clock via wall_now_s() for planner
// phases — the two live on different pid tracks, see obs.h).
//
// Event names must outlive the tracer: pass string literals, or intern()
// dynamic names (stage names, etc.).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ds::obs {

struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char phase = 'i';       // 'X' complete, 'i' instant, 'C' counter
  double ts_us = 0;
  double dur_us = 0;      // 'X' only
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  const char* arg_name = nullptr;  // optional single numeric argument
  double arg_value = 0;
  std::uint64_t seq = 0;  // per-thread record index (stable sort tiebreak)
};

struct TracerOptions {
  bool enabled = false;
  // Events retained per recording thread; older events are overwritten.
  std::size_t ring_capacity = std::size_t{1} << 15;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions opt = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return opt_.enabled; }

  // ts/dur in seconds (converted to µs on record).
  void complete(const char* cat, const char* name, double ts_s, double dur_s,
                std::int32_t pid, std::int32_t tid,
                const char* arg_name = nullptr, double arg_value = 0);
  void instant(const char* cat, const char* name, double ts_s,
               std::int32_t pid, std::int32_t tid,
               const char* arg_name = nullptr, double arg_value = 0);
  // A counter-track sample ('C'): one series per name, value at ts.
  void counter(const char* cat, const char* name, double ts_s,
               std::int32_t pid, double value);

  // Wall-clock seconds since this tracer was constructed (steady clock) —
  // the time base for host-side (planner) spans.
  double wall_now_s() const;

  // Copy a dynamic string into tracer-owned storage and return a pointer
  // valid for the tracer's lifetime. Deduplicates.
  const char* intern(const std::string& s);

  // chrome://tracing metadata: names for the pid/tid tracks.
  void set_process_name(std::int32_t pid, const std::string& name);
  void set_thread_name(std::int32_t pid, std::int32_t tid,
                       const std::string& name);

  // Events currently retained across all rings / overwritten by wraparound.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  // All retained events merged and sorted by (ts, pid, tid, seq) — the order
  // write_chrome_json emits. Deterministic for single-threaded recorders.
  std::vector<TraceEvent> snapshot() const;
  void write_chrome_json(std::ostream& os) const;

 private:
  struct ThreadLog {
    std::thread::id owner;
    std::vector<TraceEvent> ring;
    std::uint64_t head = 0;  // total events ever written by this thread
  };
  struct Meta {
    std::int32_t pid = 0;
    std::int32_t tid = 0;
    bool thread = false;  // false: process_name, true: thread_name
    std::string name;
  };

  void record(const TraceEvent& ev);
  ThreadLog& local();

  const TracerOptions opt_;
  const std::uint64_t id_;  // globally unique, keys the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::deque<std::string> interned_;
  std::map<std::string, const char*> intern_index_;
  std::vector<Meta> meta_;
};

}  // namespace ds::obs
