#include "obs/obs.h"

namespace ds::obs {

void Observability::refresh_derived() {
  const auto bump_to = [this](const char* name, std::uint64_t total) {
    if (total == 0) return;
    Counter c = metrics.counter(name);
    if (total > c.value()) c.inc(total - c.value());
  };
  if (tracer.enabled()) bump_to("tracer.dropped_spans", tracer.dropped());
  if (flight.enabled()) bump_to("flight.dropped_records", flight.dropped());
}

WallSpan::WallSpan(Tracer* tracer, const char* cat, const char* name,
                   std::int32_t pid, std::int32_t tid, const char* arg_name,
                   double arg_value)
    : tracer_(tracer),
      cat_(cat),
      name_(name),
      pid_(pid),
      tid_(tid),
      arg_name_(arg_name),
      arg_value_(arg_value) {
  if (tracer_ != nullptr) start_s_ = tracer_->wall_now_s();
}

WallSpan::~WallSpan() {
  if (tracer_ == nullptr) return;
  tracer_->complete(cat_, name_, start_s_, tracer_->wall_now_s() - start_s_,
                    pid_, tid_, arg_name_, arg_value_);
}

}  // namespace ds::obs
