#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace ds::obs {

namespace {

// Snapshot of a histogram cell, taken once per query so the derived numbers
// (percentile, fraction_below) are internally consistent.
struct HistSnapshot {
  const std::vector<double>* bounds = nullptr;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;

  explicit HistSnapshot(const detail::HistogramCell& c) : bounds(&c.bounds) {
    counts.reserve(c.counts.size());
    for (const auto& n : c.counts)
      counts.push_back(n.load(std::memory_order_relaxed));
    total = c.total.load(std::memory_order_relaxed);
  }

  double lower_edge(std::size_t b) const {
    return b == 0 ? 0.0 : (*bounds)[b - 1];
  }
  double upper_edge(std::size_t b) const {
    // The overflow bucket has no real upper edge; report the top bound so
    // percentiles stay finite (documented saturation).
    return b < bounds->size() ? (*bounds)[b] : bounds->back();
  }

  double percentile(double p) const {
    if (total == 0) return 0.0;
    const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                          static_cast<double>(total);
    double cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      const double next = cum + static_cast<double>(counts[b]);
      if (next >= target && counts[b] > 0) {
        const double frac =
            (target - cum) / static_cast<double>(counts[b]);
        return lower_edge(b) +
               std::clamp(frac, 0.0, 1.0) * (upper_edge(b) - lower_edge(b));
      }
      cum = next;
    }
    return upper_edge(counts.size() - 1);
  }

  double fraction_below(double v) const {
    if (total == 0) return 0.0;
    double cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      const double lo = lower_edge(b);
      const double hi = upper_edge(b);
      if (v >= hi && b < counts.size() - 1) {
        cum += static_cast<double>(counts[b]);
        continue;
      }
      const double width = hi - lo;
      const double frac =
          width > 0 ? std::clamp((v - lo) / width, 0.0, 1.0) : (v >= lo ? 1.0 : 0.0);
      cum += frac * static_cast<double>(counts[b]);
      break;
    }
    return 100.0 * cum / static_cast<double>(total);
  }
};

std::string fmt_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

void Histogram::observe(double v) const {
  if (cell_ == nullptr) return;
  const auto& bounds = cell_->bounds;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds.begin());
  cell_->counts[b].fetch_add(1, std::memory_order_relaxed);
  cell_->total.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(cell_->sum, v);
}

std::uint64_t Histogram::count() const {
  return cell_ != nullptr ? cell_->total.load(std::memory_order_relaxed) : 0;
}

double Histogram::sum() const {
  return cell_ != nullptr ? cell_->sum.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const {
  if (cell_ == nullptr) return 0.0;
  return HistSnapshot(*cell_).percentile(p);
}

double Histogram::fraction_below(double v) const {
  if (cell_ == nullptr) return 0.0;
  return HistSnapshot(*cell_).fraction_below(v);
}

std::vector<Histogram::Point> Histogram::points(int n) const {
  DS_CHECK(n >= 2);
  std::vector<Point> out;
  out.reserve(static_cast<std::size_t>(n));
  if (cell_ == nullptr) return out;
  const HistSnapshot snap(*cell_);
  for (int i = 0; i < n; ++i) {
    const double p = 100.0 * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(Point{snap.percentile(p), p});
  }
  return out;
}

std::vector<double> linear_buckets(double width, int count) {
  DS_CHECK(width > 0 && count >= 1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 1; i <= count; ++i) out.push_back(width * i);
  return out;
}

std::vector<double> exponential_buckets(double start, double factor, int count) {
  DS_CHECK(start > 0 && factor > 1 && count >= 1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<detail::CounterCell>();
  return Counter(cell.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<detail::GaugeCell>();
  return Gauge(cell.get());
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  DS_CHECK_MSG(!bounds.empty(), "histogram needs at least one bucket bound");
  DS_CHECK_MSG(std::is_sorted(bounds.begin(), bounds.end()),
               "histogram bounds must ascend: " << name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = histograms_[name];
  if (cell == nullptr) {
    cell = std::make_unique<detail::HistogramCell>(std::move(bounds));
  } else {
    DS_CHECK_MSG(cell->bounds == bounds,
                 "histogram " << name << " re-resolved with different bounds");
  }
  return Histogram(cell.get());
}

Counter MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? Counter(it->second.get()) : Counter();
}

Gauge MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? Gauge(it->second.get()) : Gauge();
}

Histogram MetricsRegistry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? Histogram(it->second.get()) : Histogram();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << cell->value.load(std::memory_order_relaxed);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": "
       << fmt_number(cell->value.load(std::memory_order_relaxed));
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, cell] : histograms_) {
    const HistSnapshot snap(*cell);
    const double sum = cell->sum.load(std::memory_order_relaxed);
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\n"
       << "      \"count\": " << snap.total << ",\n"
       << "      \"sum\": " << fmt_number(sum) << ",\n"
       << "      \"mean\": "
       << fmt_number(snap.total > 0 ? sum / static_cast<double>(snap.total) : 0.0)
       << ",\n      \"buckets\": [";
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      os << (b == 0 ? "" : ", ") << "{\"le\": ";
      if (b < cell->bounds.size())
        os << fmt_number(cell->bounds[b]);
      else
        os << "\"inf\"";
      os << ", \"count\": " << snap.counts[b] << '}';
    }
    os << "],\n      \"cdf\": [";
    if (snap.total > 0) {
      constexpr int kPoints = 20;
      for (int i = 0; i < kPoints; ++i) {
        const double p =
            100.0 * static_cast<double>(i) / static_cast<double>(kPoints - 1);
        os << (i == 0 ? "" : ", ") << "{\"value\": "
           << fmt_number(snap.percentile(p)) << ", \"cum_percent\": "
           << fmt_number(p) << '}';
      }
    }
    os << "]\n    }";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_)
    snap.counters.emplace_back(name,
                               cell->value.load(std::memory_order_relaxed));
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_)
    snap.gauges.emplace_back(name,
                             cell->value.load(std::memory_order_relaxed));
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    const HistSnapshot hs(*cell);
    HistogramStat stat;
    stat.name = name;
    stat.count = hs.total;
    stat.sum = cell->sum.load(std::memory_order_relaxed);
    stat.mean = hs.total > 0 ? stat.sum / static_cast<double>(hs.total) : 0.0;
    stat.p50 = hs.percentile(50.0);
    stat.p90 = hs.percentile(90.0);
    stat.p99 = hs.percentile(99.0);
    snap.histograms.push_back(std::move(stat));
  }
  return snap;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted names
// map onto underscores ("sched.queue_depth" → "sched_queue_depth").
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cell] : counters_) {
    const std::string p = prom_name(name) + "_total";
    os << "# TYPE " << p << " counter\n"
       << p << ' ' << cell->value.load(std::memory_order_relaxed) << '\n';
  }
  for (const auto& [name, cell] : gauges_) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n"
       << p << ' '
       << fmt_number(cell->value.load(std::memory_order_relaxed)) << '\n';
  }
  for (const auto& [name, cell] : histograms_) {
    const std::string p = prom_name(name);
    const HistSnapshot snap(*cell);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      cum += snap.counts[b];
      os << p << "_bucket{le=\"";
      if (b < cell->bounds.size())
        os << fmt_number(cell->bounds[b]);
      else
        os << "+Inf";
      os << "\"} " << cum << '\n';
    }
    os << p << "_sum " << fmt_number(cell->sum.load(std::memory_order_relaxed))
       << '\n'
       << p << "_count " << snap.total << '\n';
  }
}

}  // namespace ds::obs
