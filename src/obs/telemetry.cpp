#include "obs/telemetry.h"

#include <cstdio>
#include <ostream>

#include "obs/obs.h"
#include "util/json.h"

namespace ds::obs {

namespace {

std::string fmt_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

bool has_prefix(const std::string& name, const std::string& prefix) {
  return name.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

TelemetrySink::TelemetrySink(std::ostream& os, TelemetryOptions opt)
    : os_(os), opt_(std::move(opt)) {}

bool TelemetrySink::keep(const std::string& name) const {
  if (!opt_.include_prefixes.empty()) {
    bool included = false;
    for (const std::string& p : opt_.include_prefixes)
      if (has_prefix(name, p)) {
        included = true;
        break;
      }
    if (!included) return false;
  }
  for (const std::string& p : opt_.exclude_prefixes)
    if (has_prefix(name, p)) return false;
  return true;
}

void TelemetrySink::snapshot(Observability& obs, double t) {
  obs.refresh_derived();
  const MetricsSnapshot snap = obs.metrics.snapshot();
  os_ << "{\"v\": 1, \"seq\": " << seq_++ << ", \"t\": " << fmt_number(t)
      << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!keep(name)) continue;
    os_ << (first ? "" : ", ");
    json::write_string(os_, name);
    os_ << ": " << value;
    first = false;
  }
  os_ << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!keep(name)) continue;
    os_ << (first ? "" : ", ");
    json::write_string(os_, name);
    os_ << ": " << fmt_number(value);
    first = false;
  }
  os_ << "}, \"histograms\": {";
  first = true;
  for (const HistogramStat& h : snap.histograms) {
    if (!keep(h.name)) continue;
    os_ << (first ? "" : ", ");
    json::write_string(os_, h.name);
    os_ << ": {\"count\": " << h.count << ", \"sum\": " << fmt_number(h.sum)
        << ", \"mean\": " << fmt_number(h.mean)
        << ", \"p50\": " << fmt_number(h.p50)
        << ", \"p90\": " << fmt_number(h.p90)
        << ", \"p99\": " << fmt_number(h.p99) << '}';
    first = false;
  }
  os_ << "}}\n";
  os_.flush();
}

}  // namespace ds::obs
