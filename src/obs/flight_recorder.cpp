#include "obs/flight_recorder.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "util/check.h"
#include "util/json.h"

namespace ds::obs {

namespace {

// The recorder registered for crash dumps (at most one per process).
std::atomic<FlightRecorder*> g_crash_recorder{nullptr};

void crash_hook(const std::string& what) {
  if (FlightRecorder* rec = g_crash_recorder.load(std::memory_order_acquire))
    rec->on_anomaly(what.c_str());
}

std::string fmt_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void write_record(std::ostream& os, const FlightRecord& r) {
  os << "{\"v\": 1, \"seq\": " << r.seq << ", \"t\": " << fmt_number(r.t)
     << ", \"ev\": \"" << to_string(r.kind) << '"';
  if (r.job != 0) os << ", \"job\": " << r.job;
  if (r.stage >= 0) os << ", \"stage\": " << r.stage;
  os << ", \"priority\": " << r.priority;
  if (r.label != nullptr && r.label[0] != '\0') {
    os << ", \"label\": ";
    json::write_string(os, r.label);
  }
  if (r.queue_depth >= 0)
    os << ", \"queue_depth\": " << fmt_number(r.queue_depth);
  if (r.occupancy >= 0) os << ", \"occupancy\": " << fmt_number(r.occupancy);
  os << ", \"value\": " << fmt_number(r.value)
     << ", \"aux\": " << fmt_number(r.aux);
  if (r.cache >= 0) os << ", \"cache\": \"" << (r.cache ? "hit" : "miss")
                       << '"';
  os << "}\n";
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kSubmit: return "submit";
    case FlightKind::kAdmit: return "admit";
    case FlightKind::kGrant: return "grant";
    case FlightKind::kPlan: return "plan";
    case FlightKind::kRunStart: return "run";
    case FlightKind::kStageFinish: return "stage";
    case FlightKind::kReplan: return "replan";
    case FlightKind::kRecovery: return "recovery";
    case FlightKind::kRelease: return "release";
    case FlightKind::kFinish: return "finish";
    case FlightKind::kFail: return "fail";
    case FlightKind::kSloViolation: return "slo_violation";
    case FlightKind::kMark: return "mark";
  }
  return "?";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions opt)
    : opt_(std::move(opt)) {
  if (opt_.enabled) {
    DS_CHECK_MSG(opt_.capacity > 0, "flight recorder needs capacity >= 1");
    ring_.resize(opt_.capacity);
  }
}

FlightRecorder::~FlightRecorder() {
  FlightRecorder* expected = this;
  g_crash_recorder.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel);
}

void FlightRecorder::record(FlightRecord r) {
  if (!opt_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  r.seq = head_;
  if (r.label == nullptr) r.label = "";
  ring_[static_cast<std::size_t>(head_ % ring_.size())] = r;
  ++head_;
}

const char* FlightRecorder::intern(const std::string& s) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = intern_index_.find(s);
  if (it != intern_index_.end()) return it->second;
  interned_.push_back(s);
  const char* p = interned_.back().c_str();
  intern_index_.emplace(s, p);
  return p;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ > ring_.size() ? head_ - ring_.size() : 0;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      head_ < ring_.size() ? head_ : ring_.size());
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  if (!opt_.enabled || head_ == 0) return out;
  const std::uint64_t n =
      head_ < ring_.size() ? head_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head_ - n; i < head_; ++i)
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  return out;
}

void FlightRecorder::write_ndjson(std::ostream& os) const {
  for (const FlightRecord& r : snapshot()) write_record(os, r);
}

bool FlightRecorder::dump_now(const char* reason) {
  if (!opt_.enabled || opt_.dump_path.empty()) return false;
  const auto trail = snapshot();
  auto write_all = [&](std::ostream& os) {
    os << "{\"v\": 1, \"ev\": \"dump\", \"reason\": ";
    json::write_string(os, reason != nullptr ? reason : "");
    std::uint64_t total = 0, lost = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      total = head_;
      lost = head_ > ring_.size() ? head_ - ring_.size() : 0;
    }
    os << ", \"recorded\": " << total << ", \"dropped\": " << lost << "}\n";
    for (const FlightRecord& r : trail) write_record(os, r);
  };
  if (opt_.dump_path == "-") {
    write_all(std::cerr);
    return true;
  }
  std::ofstream out(opt_.dump_path);
  if (!out) return false;  // a failed audit dump must not throw
  write_all(out);
  return static_cast<bool>(out);
}

void FlightRecorder::on_anomaly(const char* reason) {
  if (!opt_.enabled) return;
  FlightRecord r;
  r.kind = FlightKind::kMark;
  r.label = intern(std::string("anomaly: ") +
                   (reason != nullptr ? reason : ""));
  record(r);
  dump_now(reason);
}

void install_crash_dump(FlightRecorder* rec) {
  g_crash_recorder.store(rec, std::memory_order_release);
  check_failure_hook() = rec != nullptr ? &crash_hook : nullptr;
}

}  // namespace ds::obs
