// The observability sink every subsystem publishes into, plus the null-safe
// resolvers instrumented code uses at construction time.
//
// One Observability instance bundles a MetricsRegistry and a Tracer. Code
// takes an `Observability*` (almost always via ds::CommonOptions::obs) and
// resolves typed handles once:
//
//   obs::Counter events_ = obs::counter(opts.obs, "sim.events");
//   obs::Tracer* trace_  = obs::tracer(opts.obs);   // nullptr when disabled
//
// A null sink yields disabled handles — each hot-path update is one branch,
// and no trace call is ever made (callers guard span emission on the
// nullptr). Crucially, instrumentation never schedules simulator events and
// never feeds back into any decision, so enabling observability cannot
// change a simulation result bit (obs_test pins this).
//
// Chrome-trace track layout (shared by every instrumented layer):
//   pid 0                 stage lifecycle; tid = stage id
//   pid 1+n               worker node n;   tid = executor slot lane
//   pid kPlannerPid       planner phases (wall clock); tid = restart index
#pragma once

#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace ds::obs {

constexpr std::int32_t kJobPid = 0;
constexpr std::int32_t kNodePidBase = 1;
constexpr std::int32_t kPlannerPid = 1 << 20;

struct Observability {
  Observability() = default;
  explicit Observability(TracerOptions trace_options) : tracer(trace_options) {}
  Observability(TracerOptions trace_options,
                FlightRecorderOptions flight_options)
      : tracer(trace_options), flight(flight_options) {}
  MetricsRegistry metrics;
  Tracer tracer;
  FlightRecorder flight;

  // Fold ring-buffer loss counts into the registry (tracer.dropped_spans,
  // flight.dropped_records) so exporters see them as ordinary counters.
  // Counters only move forward, so this applies the delta since the last
  // refresh. Called by TelemetrySink::snapshot and the CLIs' exit flush.
  void refresh_derived();
};

inline Counter counter(Observability* obs, const std::string& name) {
  return obs != nullptr ? obs->metrics.counter(name) : Counter();
}

inline Gauge gauge(Observability* obs, const std::string& name) {
  return obs != nullptr ? obs->metrics.gauge(name) : Gauge();
}

inline Histogram histogram(Observability* obs, const std::string& name,
                           std::vector<double> bounds) {
  return obs != nullptr ? obs->metrics.histogram(name, std::move(bounds))
                        : Histogram();
}

inline Tracer* tracer(Observability* obs) {
  return obs != nullptr && obs->tracer.enabled() ? &obs->tracer : nullptr;
}

inline FlightRecorder* flight(Observability* obs) {
  return obs != nullptr && obs->flight.enabled() ? &obs->flight : nullptr;
}

// RAII wall-clock span for host-side phases (planner scans, restarts). No-op
// when constructed with a null tracer.
class WallSpan {
 public:
  WallSpan(Tracer* tracer, const char* cat, const char* name, std::int32_t pid,
           std::int32_t tid, const char* arg_name = nullptr,
           double arg_value = 0);
  ~WallSpan();
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* cat_;
  const char* name_;
  std::int32_t pid_;
  std::int32_t tid_;
  const char* arg_name_;
  double arg_value_;
  double start_s_ = 0;
};

}  // namespace ds::obs
