// Online SLO tracking over mergeable quantile sketches.
//
// An SloTracker holds one QuantileSketch per (metric, priority class) —
// JCT, slowdown, queue wait and plan latency — fed live by the Scheduler as
// jobs move through the pipeline. Rules like "p99_slowdown<=2.5" are
// evaluated against the fleet-wide sketch (all priority classes merged;
// merging is exact, see quantile_sketch.h, so the evaluated quantile is
// bit-identical for any observation order or planner thread count). Each
// ok→violated transition emits a structured slo_violation flight-recorder
// event and bumps the slo.violations counter; the per-rule current value is
// published as the slo.<spec> gauge so telemetry streams the SLO state on
// every cadence tick.
//
// Rule grammar (parse_slo_rule):  p<quantile>_<metric><=<threshold>
//   quantile  integer 1..99 or decimal ("p99", "p99.9", "p50")
//   metric    jct | slowdown | queue_wait | plan_latency
//   threshold positive double (seconds, or a ratio for slowdown)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/quantile_sketch.h"
#include "obs/registry.h"
#include "util/status.h"

namespace ds::obs {

class FlightRecorder;
struct Observability;

enum class SloMetric : std::uint8_t {
  kJct,          // finish − arrival, seconds (queueing included)
  kSlowdown,     // jct / dedicated-cluster estimate, dimensionless
  kQueueWait,    // admitted − arrival, seconds
  kPlanLatency,  // admission planning wall seconds (nondeterministic!)
};

const char* to_string(SloMetric metric);

struct SloRule {
  SloMetric metric = SloMetric::kSlowdown;
  double quantile = 0.99;   // in (0, 1)
  double threshold = 0;     // violated when quantile value exceeds this
  std::string spec;         // original "p99_slowdown<=2.5" spelling
};

// Parse one rule from its CLI spelling. On error `out` is untouched.
Status parse_slo_rule(std::string_view text, SloRule* out);

struct SloOptions {
  std::vector<SloRule> rules;
  // Relative accuracy of the underlying sketches (see QuantileSketch).
  double relative_accuracy = 0.01;
};

class SloTracker {
 public:
  // `obs` and `flight` may be null (gauges/events silently disabled); the
  // tracker still answers quantile queries and write_ndjson.
  SloTracker(SloOptions opt, Observability* obs, FlightRecorder* flight);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  bool empty() const { return opt_.rules.empty(); }
  const std::vector<SloRule>& rules() const { return opt_.rules; }

  // Feed points as the scheduler learns them (admission → queue wait + plan
  // latency, completion → jct + slowdown).
  void observe_queue_wait(int priority, double seconds);
  void observe_plan_latency(int priority, double seconds);
  void observe_finish(int priority, double jct, double slowdown);

  // Re-evaluate every rule at time `t`: update the slo.<spec> gauges and,
  // on each ok→violated transition, record a kSloViolation flight event
  // (value = observed quantile, aux = threshold) and bump slo.violations.
  // A rule with no observations yet evaluates as ok.
  void evaluate(double t);

  // Fleet-wide sketch for a metric (all priority classes merged — exact).
  QuantileSketch merged(SloMetric metric) const;

  std::uint64_t violations() const { return violations_; }
  bool violated(std::size_t rule_index) const;

  // One {"v": 1, "ev": "slo", "t": …, "rules": [...]} NDJSON line with each
  // rule's current value / threshold / violation state — the stats command's
  // SLO section.
  void write_ndjson(std::ostream& os, double t) const;

 private:
  QuantileSketch& sketch(SloMetric metric, int priority);

  const SloOptions opt_;
  FlightRecorder* flight_;
  // (metric, priority class) → sketch. std::map keeps merge order (and thus
  // nothing — merges are order-independent anyway) stable for readers.
  std::map<std::pair<int, int>, QuantileSketch> sketches_;
  std::vector<bool> violated_;      // per rule, current state
  std::vector<Gauge> rule_gauges_;  // slo.<spec>
  Counter m_violations_;
  std::uint64_t violations_ = 0;
};

}  // namespace ds::obs
