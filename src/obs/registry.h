// Lock-cheap metrics registry: counters, gauges and fixed-bucket histograms.
//
// Instrumented code resolves *typed handles* once, at construction, and
// updates them on hot paths with a single relaxed atomic op — never a string
// lookup, never a lock. The registry's mutex only guards handle creation and
// export. A default-constructed handle is *disabled*: every update is one
// null-pointer branch, which is what every subsystem holds when the caller
// passed no Observability sink (the compiled-in-but-off path measured by
// bench_obs_overhead).
//
// Histograms use fixed ascending bucket upper bounds (choose them with
// linear_buckets/exponential_buckets); samples are assumed non-negative
// (durations, bytes). Percentiles interpolate linearly within a bucket, so
// they agree with metrics::Cdf to within one bucket width — the contract
// obs_test pins.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ds::obs {

namespace detail {

inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

struct HistogramCell {
  explicit HistogramCell(std::vector<double> b)
      : bounds(std::move(b)), counts(bounds.size() + 1) {}
  const std::vector<double> bounds;                 // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> counts;   // + overflow bucket
  std::atomic<std::uint64_t> total{0};
  std::atomic<double> sum{0.0};
};

}  // namespace detail

class MetricsRegistry;

class Counter {
 public:
  Counter() = default;  // disabled: inc() is a no-op
  void inc(std::uint64_t delta = 1) const {
    if (cell_ != nullptr) cell_->value.fetch_add(delta, std::memory_order_relaxed);
  }
  bool enabled() const { return cell_ != nullptr; }
  std::uint64_t value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;  // disabled
  void set(double v) const {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  void add(double d) const {
    if (cell_ != nullptr) detail::atomic_add(cell_->value, d);
  }
  bool enabled() const { return cell_ != nullptr; }
  double value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0.0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

class Histogram {
 public:
  struct Point {
    double value = 0;
    double cum_percent = 0;
  };

  Histogram() = default;  // disabled
  void observe(double v) const;
  bool enabled() const { return cell_ != nullptr; }

  std::uint64_t count() const;
  double sum() const;
  double mean() const;
  // p in [0, 100]; linear interpolation within the containing bucket (the
  // first bucket's lower edge is 0, the overflow bucket reports the top
  // bound). Matches metrics::Cdf to within one bucket width.
  double percentile(double p) const;
  // Percent of samples <= v, interpolated within v's bucket (cf.
  // metrics::Cdf::fraction_below).
  double fraction_below(double v) const;
  // n evenly spaced CDF points, like metrics::Cdf::points.
  std::vector<Point> points(int n = 20) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

// Handy bucket layouts. linear_buckets(w, n) = {w, 2w, ..., nw};
// exponential_buckets(s, f, n) = {s, s·f, ..., s·f^(n-1)}.
std::vector<double> linear_buckets(double width, int count);
std::vector<double> exponential_buckets(double start, double factor, int count);

// One histogram's derived summary inside a MetricsSnapshot.
struct HistogramStat {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

// A point-in-time copy of every metric, names sorted — what the streaming
// telemetry sink serializes on each cadence tick. Values are read relaxed;
// for the deterministic (sim-event-driven) metrics a snapshot taken at a
// fixed sim time is bit-reproducible.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStat> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve (creating on first use) the named metric. Handles stay valid for
  // the registry's lifetime; resolving the same name again returns a handle
  // to the same cell. A histogram's bounds are fixed by its first resolution.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  // Read-only lookups for export and tests; a missing name yields a disabled
  // handle (value() == 0).
  Counter find_counter(const std::string& name) const;
  Gauge find_gauge(const std::string& name) const;
  Histogram find_histogram(const std::string& name) const;

  // Dump every metric as JSON, names sorted, histograms with bucket table +
  // 20-point CDF. Values are read relaxed: quiesce writers for exact totals.
  void write_json(std::ostream& os) const;

  // Point-in-time copy of every metric (see MetricsSnapshot).
  MetricsSnapshot snapshot() const;

  // Prometheus text exposition (version 0.0.4): dots become underscores,
  // counters get a _total suffix, histograms emit cumulative _bucket{le=…}
  // series plus _sum and _count — ready for a scrape endpoint or promtool.
  void write_prometheus(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<detail::CounterCell>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>> histograms_;
};

}  // namespace ds::obs
