#include "dag/paths.h"

#include <algorithm>

#include "util/check.h"

namespace ds::dag {

namespace {

// Restriction of the DAG to K: adjacency within the parallel-stage set.
struct Subgraph {
  std::vector<StageId> members;                 // K in topo order
  std::vector<int> index;                       // stage id -> position in K, or -1
  std::vector<std::vector<int>> kids;           // positions
  std::vector<std::vector<int>> pars;           // positions
};

Subgraph induce(const JobDag& dag) {
  Subgraph g;
  g.members = dag.parallel_stage_set();
  g.index.assign(static_cast<std::size_t>(dag.num_stages()), -1);
  for (std::size_t i = 0; i < g.members.size(); ++i)
    g.index[static_cast<std::size_t>(g.members[i])] = static_cast<int>(i);
  g.kids.resize(g.members.size());
  g.pars.resize(g.members.size());
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    for (StageId c : dag.children(g.members[i])) {
      const int j = g.index[static_cast<std::size_t>(c)];
      if (j >= 0) {
        g.kids[i].push_back(j);
        g.pars[static_cast<std::size_t>(j)].push_back(static_cast<int>(i));
      }
    }
  }
  return g;
}

// Longest chain length (in stages) from each position, following kids.
std::vector<int> depth_below(const Subgraph& g) {
  std::vector<int> depth(g.members.size(), 1);
  // members are in topological order, so iterate in reverse.
  for (std::size_t i = g.members.size(); i-- > 0;) {
    for (int c : g.kids[i])
      depth[i] = std::max(depth[i], 1 + depth[static_cast<std::size_t>(c)]);
  }
  return depth;
}

void enumerate(const Subgraph& g, int pos, std::vector<int>& chain,
               std::vector<ExecutionPath>& out, std::size_t max_paths) {
  chain.push_back(pos);
  if (g.kids[static_cast<std::size_t>(pos)].empty()) {
    if (out.size() < max_paths) {
      ExecutionPath p;
      p.stages.reserve(chain.size());
      for (int q : chain) p.stages.push_back(g.members[static_cast<std::size_t>(q)]);
      out.push_back(std::move(p));
    }
  } else {
    for (int c : g.kids[static_cast<std::size_t>(pos)]) {
      if (out.size() >= max_paths) break;
      enumerate(g, c, chain, out, max_paths);
    }
  }
  chain.pop_back();
}

}  // namespace

std::vector<ExecutionPath> execution_paths(const JobDag& dag,
                                           std::size_t max_paths) {
  DS_CHECK(max_paths > 0);
  const Subgraph g = induce(dag);
  std::vector<ExecutionPath> out;
  if (g.members.empty()) return out;

  std::vector<int> chain;
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    if (!g.pars[i].empty()) continue;  // not a source within K
    if (out.size() >= max_paths) break;
    enumerate(g, static_cast<int>(i), chain, out, max_paths);
  }

  // Verify coverage; if enumeration was truncated, add one longest chain
  // through every uncovered stage (front-extended via parents, back-extended
  // via the deepest child).
  std::vector<bool> covered(g.members.size(), false);
  for (const auto& p : out)
    for (StageId s : p.stages)
      covered[static_cast<std::size_t>(g.index[static_cast<std::size_t>(s)])] = true;

  const std::vector<int> depth = depth_below(g);
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    if (covered[i]) continue;
    std::vector<int> back;  // from i upward to a source
    int cur = static_cast<int>(i);
    back.push_back(cur);
    while (!g.pars[static_cast<std::size_t>(cur)].empty()) {
      cur = g.pars[static_cast<std::size_t>(cur)].front();
      back.push_back(cur);
    }
    std::reverse(back.begin(), back.end());
    cur = static_cast<int>(i);
    while (!g.kids[static_cast<std::size_t>(cur)].empty()) {
      const auto& kids = g.kids[static_cast<std::size_t>(cur)];
      cur = *std::max_element(kids.begin(), kids.end(), [&](int a, int b) {
        return depth[static_cast<std::size_t>(a)] < depth[static_cast<std::size_t>(b)];
      });
      back.push_back(cur);
    }
    ExecutionPath p;
    p.stages.reserve(back.size());
    for (int q : back) {
      p.stages.push_back(g.members[static_cast<std::size_t>(q)]);
      covered[static_cast<std::size_t>(q)] = true;
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace ds::dag
