#include "dag/job.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace ds::dag {

JobDag::JobDag(std::string name) : name_(std::move(name)) {}

StageId JobDag::add_stage(Stage spec) {
  DS_CHECK_MSG(spec.num_tasks > 0, "stage '" << spec.name << "' needs tasks");
  DS_CHECK_MSG(spec.input_bytes >= 0 && spec.output_bytes >= 0,
               "negative volume in stage '" << spec.name << "'");
  DS_CHECK_MSG(spec.process_rate >= 0,
               "negative process rate in stage '" << spec.name << "'");
  const StageId id = num_stages();
  stages_.push_back(std::move(spec));
  parents_.emplace_back();
  children_.emplace_back();
  analyzed_ = false;
  return id;
}

void JobDag::add_edge(StageId parent, StageId child) {
  DS_CHECK_MSG(parent >= 0 && parent < num_stages(), "bad parent " << parent);
  DS_CHECK_MSG(child >= 0 && child < num_stages(), "bad child " << child);
  DS_CHECK_MSG(parent != child, "self edge on stage " << parent);
  // Ignore duplicate edges: trace DAGs repeat dependencies freely.
  auto& kids = children_[static_cast<std::size_t>(parent)];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) return;
  kids.push_back(child);
  parents_[static_cast<std::size_t>(child)].push_back(parent);
  analyzed_ = false;
}

const Stage& JobDag::stage(StageId id) const {
  DS_CHECK_MSG(id >= 0 && id < num_stages(), "bad stage id " << id);
  return stages_[static_cast<std::size_t>(id)];
}

Stage& JobDag::mutable_stage(StageId id) {
  DS_CHECK_MSG(id >= 0 && id < num_stages(), "bad stage id " << id);
  analyzed_ = false;  // volumes don't affect structure, but stay conservative
  return stages_[static_cast<std::size_t>(id)];
}

const std::vector<StageId>& JobDag::parents(StageId id) const {
  DS_CHECK_MSG(id >= 0 && id < num_stages(), "bad stage id " << id);
  return parents_[static_cast<std::size_t>(id)];
}

const std::vector<StageId>& JobDag::children(StageId id) const {
  DS_CHECK_MSG(id >= 0 && id < num_stages(), "bad stage id " << id);
  return children_[static_cast<std::size_t>(id)];
}

void JobDag::ensure_analysis() const {
  if (analyzed_) return;
  const auto n = static_cast<std::size_t>(num_stages());

  // Kahn topological sort (also detects cycles).
  std::vector<int> indeg(n, 0);
  for (std::size_t c = 0; c < n; ++c)
    indeg[c] = static_cast<int>(parents_[c].size());
  std::deque<StageId> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(static_cast<StageId>(i));
  topo_.clear();
  topo_.reserve(n);
  while (!ready.empty()) {
    const StageId s = ready.front();
    ready.pop_front();
    topo_.push_back(s);
    for (StageId c : children_[static_cast<std::size_t>(s)]) {
      if (--indeg[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
  }
  DS_CHECK_MSG(topo_.size() == n, "job '" << name_ << "' DAG has a cycle");

  // Ancestor closure in topological order:
  // ancestors(c) = union over parents p of {p} ∪ ancestors(p).
  ancestor_.assign(n, std::vector<bool>(n, false));
  for (StageId s : topo_) {
    for (StageId p : parents_[static_cast<std::size_t>(s)]) {
      auto& row = ancestor_[static_cast<std::size_t>(s)];
      row[static_cast<std::size_t>(p)] = true;
      const auto& prow = ancestor_[static_cast<std::size_t>(p)];
      for (std::size_t a = 0; a < n; ++a)
        if (prow[a]) row[a] = true;
    }
  }
  analyzed_ = true;
}

std::vector<StageId> JobDag::topo_order() const {
  ensure_analysis();
  return topo_;
}

bool JobDag::is_ancestor(StageId a, StageId b) const {
  DS_CHECK(a >= 0 && a < num_stages() && b >= 0 && b < num_stages());
  ensure_analysis();
  return ancestor_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)];
}

bool JobDag::can_run_in_parallel(StageId a, StageId b) const {
  if (a == b) return false;
  return !is_ancestor(a, b) && !is_ancestor(b, a);
}

std::vector<StageId> JobDag::parallel_stage_set() const {
  ensure_analysis();
  std::vector<StageId> k;
  for (StageId s : topo_) {
    for (StageId t = 0; t < num_stages(); ++t) {
      if (can_run_in_parallel(s, t)) {
        k.push_back(s);
        break;
      }
    }
  }
  return k;
}

std::vector<StageId> JobDag::sequential_stages() const {
  ensure_analysis();
  const auto k = parallel_stage_set();
  std::vector<bool> in_k(static_cast<std::size_t>(num_stages()), false);
  for (StageId s : k) in_k[static_cast<std::size_t>(s)] = true;
  std::vector<StageId> seq;
  for (StageId s : topo_)
    if (!in_k[static_cast<std::size_t>(s)]) seq.push_back(s);
  return seq;
}

std::vector<StageId> JobDag::sources() const {
  std::vector<StageId> out;
  for (StageId s = 0; s < num_stages(); ++s)
    if (parents(s).empty()) out.push_back(s);
  return out;
}

std::vector<StageId> JobDag::sinks() const {
  std::vector<StageId> out;
  for (StageId s = 0; s < num_stages(); ++s)
    if (children(s).empty()) out.push_back(s);
  return out;
}

Bytes JobDag::total_input_bytes() const {
  Bytes total = 0;
  for (const auto& s : stages_) total += s.input_bytes;
  return total;
}

}  // namespace ds::dag
