// Job DAG: stages plus parent→child dependencies, with the derived structure
// the paper's analysis needs — topological order, ancestor relation,
// the parallel-stage set K (§2.1's definition: stages that can execute in
// parallel with at least one other stage) and its complement, the sequential
// stages.
#pragma once

#include <string>
#include <vector>

#include "dag/stage.h"

namespace ds::dag {

class JobDag {
 public:
  explicit JobDag(std::string name = "job");

  // Building. add_edge(parent, child) means `child` shuffle-reads the output
  // of `parent` and may start only after `parent` completes.
  StageId add_stage(Stage spec);
  void add_edge(StageId parent, StageId child);

  // Structure queries. All derived structure is computed lazily and cached;
  // the cache is invalidated by add_stage/add_edge. Cyclic graphs are
  // rejected (CheckError) at the first derived query.
  const std::string& name() const { return name_; }
  int num_stages() const { return static_cast<int>(stages_.size()); }
  const Stage& stage(StageId id) const;
  Stage& mutable_stage(StageId id);
  const std::vector<StageId>& parents(StageId id) const;
  const std::vector<StageId>& children(StageId id) const;

  std::vector<StageId> topo_order() const;
  // True if `a` precedes `b` on some dependency chain (strict: a != b).
  bool is_ancestor(StageId a, StageId b) const;
  // Neither is an ancestor of the other — they may overlap in time.
  bool can_run_in_parallel(StageId a, StageId b) const;
  // K: stages with at least one parallel peer, in topological order.
  std::vector<StageId> parallel_stage_set() const;
  // Complement of K, in topological order.
  std::vector<StageId> sequential_stages() const;
  std::vector<StageId> sources() const;  // no parents
  std::vector<StageId> sinks() const;    // no children

  // Sum over all stages of input/output volume (used by trace statistics).
  Bytes total_input_bytes() const;

 private:
  void ensure_analysis() const;

  std::string name_;
  std::vector<Stage> stages_;
  std::vector<std::vector<StageId>> parents_;
  std::vector<std::vector<StageId>> children_;

  // Lazy analysis cache.
  mutable bool analyzed_ = false;
  mutable std::vector<StageId> topo_;
  mutable std::vector<std::vector<bool>> ancestor_;  // ancestor_[a][b]: a precedes b
};

}  // namespace ds::dag
