// Volumetric stage description. This is exactly the information DelayStage's
// profiler extracts from a Spark event log (paper §4.2): per-stage shuffle
// input volume s_k, data processing rate R_k, and shuffle output volume d_k,
// plus the task count. No record-level data is needed anywhere in the system.
#pragma once

#include <string>

#include "util/units.h"

namespace ds::dag {

using StageId = int;
inline constexpr StageId kNoStage = -1;

struct Stage {
  std::string name;
  // Number of tasks (partitions). Input is split evenly across tasks.
  int num_tasks = 1;
  // Total bytes this stage shuffle-reads (from parents, or from HDFS for a
  // source stage).
  Bytes input_bytes = 0;
  // Data processing rate per executor, bytes/second (R_k in Table 1).
  BytesPerSec process_rate = 0;
  // Total bytes this stage shuffle-writes to local disks (d_k).
  Bytes output_bytes = 0;
  // Intra-stage task-size heterogeneity: per-task volumes are scaled by
  // lognormal multipliers with this sigma (0 = perfectly even partitions,
  // like LDA; graph workloads are skewed). AggShuffle's benefit comes from
  // exactly this variance (§5.2).
  double task_skew = 0;

  Bytes input_per_task() const {
    return input_bytes / static_cast<double>(num_tasks);
  }
  Bytes output_per_task() const {
    return output_bytes / static_cast<double>(num_tasks);
  }
  // Pure compute time of one task on a dedicated executor.
  Seconds compute_per_task() const {
    return process_rate > 0 ? input_per_task() / process_rate : 0.0;
  }
};

}  // namespace ds::dag
