// Textual job-spec format, so jobs can be authored and planned outside C++:
//
//   # comment
//   job,my-etl
//   stage,<name>,<tasks>,<input_gb>,<rate_mbps>,<output_gb>,<skew>
//   edge,<parent_index>,<child_index>
//
// Stage indices are assignment order (0-based). This is exactly the
// information DelayStage's profiler extracts from a Spark event log, in a
// form a shell script can emit.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/job.h"

namespace ds::dag {

// Parse a job spec; throws CheckError with a line number on malformed input.
JobDag load_job_spec(std::istream& in);
JobDag load_job_spec_text(const std::string& text);
JobDag load_job_spec_file(const std::string& path);

// Emit the spec (load(save(j)) reproduces the job).
void save_job_spec(const JobDag& job, std::ostream& out);
std::string save_job_spec_text(const JobDag& job);

}  // namespace ds::dag
