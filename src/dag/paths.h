// Execution-path decomposition (paper §3.1, Fig. 7).
//
// The parallel-stage set K is organised into execution paths: maximal chains
// of dependent stages within the subgraph induced by K. A stage may appear
// in several paths (Fig. 7's Stage 3 lies in both P1 and P2); Algorithm 1
// handles the overlap by skipping stages already scheduled by an earlier
// path. Stages of K that are isolated in the subgraph form singleton paths
// (Fig. 7's Stage 4 / P3).
#pragma once

#include <cstddef>
#include <vector>

#include "dag/job.h"

namespace ds::dag {

struct ExecutionPath {
  std::vector<StageId> stages;  // in dependency order
};

// Enumerate maximal chains within K. Full enumeration can be exponential on
// dense DAGs, so once `max_paths` is reached the enumerator switches to a
// cover: one longest-chain path through every not-yet-covered stage. The
// result always covers every stage of K at least once.
std::vector<ExecutionPath> execution_paths(const JobDag& dag,
                                           std::size_t max_paths = 512);

// Sum of per-stage durations along a path, given any per-stage duration
// lookup (used with ^t_k from the performance model for the initial path
// ordering of Alg. 1 line 3).
template <typename DurationFn>
Seconds path_time(const ExecutionPath& p, DurationFn&& dur) {
  Seconds t = 0;
  for (StageId s : p.stages) t += dur(s);
  return t;
}

}  // namespace ds::dag
