#include "dag/serialize.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace ds::dag {

JobDag load_job_spec(std::istream& in) {
  JobDag job("job");
  std::string line;
  int lineno = 0;
  bool renamed = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto f = split(t, ',');
    const std::string_view kind = trim(f[0]);

    if (kind == "job") {
      DS_CHECK_MSG(f.size() == 2, "line " << lineno << ": job,<name>");
      DS_CHECK_MSG(!renamed, "line " << lineno << ": duplicate job line");
      job = JobDag(std::string(trim(f[1])));
      renamed = true;
    } else if (kind == "stage") {
      DS_CHECK_MSG(f.size() == 7,
                   "line " << lineno
                           << ": stage,<name>,<tasks>,<input_gb>,<rate_mbps>,"
                              "<output_gb>,<skew>");
      Stage s;
      s.name = std::string(trim(f[1]));
      std::uint64_t tasks = 0;
      DS_CHECK_MSG(parse_u64(trim(f[2]), tasks) && tasks > 0,
                   "line " << lineno << ": bad task count");
      s.num_tasks = static_cast<int>(tasks);
      double in_gb = 0, rate = 0, out_gb = 0, skew = 0;
      DS_CHECK_MSG(parse_double(trim(f[3]), in_gb) && in_gb >= 0,
                   "line " << lineno << ": bad input_gb");
      DS_CHECK_MSG(parse_double(trim(f[4]), rate) && rate >= 0,
                   "line " << lineno << ": bad rate_mbps");
      DS_CHECK_MSG(parse_double(trim(f[5]), out_gb) && out_gb >= 0,
                   "line " << lineno << ": bad output_gb");
      DS_CHECK_MSG(parse_double(trim(f[6]), skew) && skew >= 0,
                   "line " << lineno << ": bad skew");
      s.input_bytes = in_gb * 1e9;
      s.process_rate = rate * 1e6;
      s.output_bytes = out_gb * 1e9;
      s.task_skew = skew;
      job.add_stage(std::move(s));
    } else if (kind == "edge") {
      DS_CHECK_MSG(f.size() == 3, "line " << lineno << ": edge,<parent>,<child>");
      std::uint64_t p = 0, c = 0;
      DS_CHECK_MSG(parse_u64(trim(f[1]), p) && parse_u64(trim(f[2]), c),
                   "line " << lineno << ": bad edge indices");
      DS_CHECK_MSG(p < static_cast<std::uint64_t>(job.num_stages()) &&
                       c < static_cast<std::uint64_t>(job.num_stages()),
                   "line " << lineno << ": edge references unknown stage");
      job.add_edge(static_cast<StageId>(p), static_cast<StageId>(c));
    } else {
      DS_CHECK_MSG(false, "line " << lineno << ": unknown record '" << kind << "'");
    }
  }
  job.topo_order();  // validate before handing out
  return job;
}

JobDag load_job_spec_text(const std::string& text) {
  std::istringstream is(text);
  return load_job_spec(is);
}

JobDag load_job_spec_file(const std::string& path) {
  std::ifstream is(path);
  DS_CHECK_MSG(is.good(), "cannot open job spec " << path);
  return load_job_spec(is);
}

void save_job_spec(const JobDag& job, std::ostream& out) {
  out << "job," << job.name() << '\n';
  for (StageId s = 0; s < job.num_stages(); ++s) {
    const Stage& st = job.stage(s);
    out << "stage," << st.name << ',' << st.num_tasks << ','
        << st.input_bytes / 1e9 << ',' << st.process_rate / 1e6 << ','
        << st.output_bytes / 1e9 << ',' << st.task_skew << '\n';
  }
  for (StageId s = 0; s < job.num_stages(); ++s)
    for (StageId c : job.children(s)) out << "edge," << s << ',' << c << '\n';
}

std::string save_job_spec_text(const JobDag& job) {
  std::ostringstream os;
  save_job_spec(job, os);
  return os.str();
}

}  // namespace ds::dag
