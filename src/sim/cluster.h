// Cluster assembly: a spec (matching the paper's experimental setups) plus a
// live Cluster binding the network fabric, per-node disks and the executor
// pool to one simulator.
//
// Node numbering: worker nodes are [0, num_workers); dedicated storage
// (HDFS) nodes follow at [num_workers, num_workers + num_storage_nodes).
// Storage nodes have NICs and disks but no executors — they only serve the
// initial input reads, like the paper's "3 dedicated instances" for HDFS.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/executor_pool.h"
#include "sim/fair_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ds::sim {

struct ClusterSpec {
  int num_workers = 30;
  int executors_per_worker = 2;
  // Worker/storage NIC bandwidth drawn uniformly per node from this range
  // (the m4.large "100–480 Mbps" of §5.1; §5.3 uses 100 Mbps–2 Gbps).
  BytesPerSec nic_bw_min = 0;
  BytesPerSec nic_bw_max = 0;
  BytesPerSec disk_bw = 0;
  BytesPerSec loopback_bw = 0;
  int num_storage_nodes = 3;
  // Cross-stage contention penalty β (see NetworkFabric): ports interleaving
  // g distinct stages' flows serve C / (1 + β·(g − 1)). Calibrated so the
  // stock scheduler's synchronized fetch phases lose throughput the way the
  // paper's EC2 measurements show; 0 = ideal work-conserving fabric.
  double congestion_penalty = 0.0;
  // Geo-distributed deployment (§6 future work): nodes are spread round-
  // robin over `num_sites` sites; cross-site flows share a per-site-pair
  // WAN link of `wan_bw`.
  int num_sites = 1;
  BytesPerSec wan_bw = 0;
  // Per-worker compute speed factor drawn uniformly from this range
  // (1.0/1.0 = homogeneous). Slow machines create the machine-level
  // stragglers that speculative execution (RunOptions::speculation) fixes.
  double node_speed_min = 1.0;
  double node_speed_max = 1.0;

  int total_nodes() const { return num_workers + num_storage_nodes; }
  int total_executors() const { return num_workers * executors_per_worker; }

  // §5.1: 30× m4.large, 2 executors each, NIC 100–480 Mbps, SSD, 3 HDFS nodes.
  static ClusterSpec paper_prototype();
  // §2.1 motivation: the three-node cluster used for the ALS Fig. 5 trace.
  static ClusterSpec three_node();
  // §5.3 trace simulation: 4000 machines, B in [100 Mbps, 2 Gbps],
  // D = 80 MB/s, executors = cores.
  static ClusterSpec paper_simulation();
  // Two-datacenter variant of the prototype cluster (§6's geo-distributed
  // extension): same nodes, split across sites joined by a thin WAN pipe.
  static ClusterSpec geo_two_sites();
};

class Cluster {
 public:
  // `seed` fixes the per-node NIC bandwidth draw. `obs` (optional) is the
  // observability sink the fabric and executor pool publish into; it must
  // outlive the cluster and is passive (never changes simulation results).
  Cluster(Simulator& sim, const ClusterSpec& spec, std::uint64_t seed,
          obs::Observability* obs = nullptr);

  Simulator& sim() { return sim_; }
  const ClusterSpec& spec() const { return spec_; }

  int num_workers() const { return spec_.num_workers; }
  int num_storage_nodes() const { return spec_.num_storage_nodes; }
  int total_nodes() const { return spec_.total_nodes(); }
  NodeId worker(int i) const;
  NodeId storage_node(int i) const;
  bool is_worker(NodeId n) const { return n >= 0 && n < spec_.num_workers; }
  // Site of a node under the round-robin geo layout (0 when single-site).
  int site_of(NodeId n) const {
    return spec_.num_sites > 1 ? n % spec_.num_sites : 0;
  }
  // Compute speed factor of a worker (task compute time divides by this).
  double speed(NodeId n) const;

  NetworkFabric& fabric() { return *fabric_; }
  const NetworkFabric& fabric() const { return *fabric_; }
  ExecutorPool& executors() { return *executors_; }
  const ExecutorPool& executors() const { return *executors_; }
  FairQueue& disk(NodeId n) { return *disks_.at(static_cast<std::size_t>(n)); }

  BytesPerSec nic_bw(NodeId n) const { return fabric_->nic_bw(n); }

  // CPU accounting. An executor slot being *held* is not the same as the CPU
  // being *used*: Spark tasks occupy their executor while shuffle-reading and
  // shuffle-writing with the CPU nearly idle (the effect Fig. 5 shows). The
  // engine brackets actual data processing with begin/end_compute; the
  // utilization sampler reads computing().
  void begin_compute(NodeId n);
  void end_compute(NodeId n);
  int computing(NodeId n) const;

 private:
  Simulator& sim_;
  ClusterSpec spec_;
  std::unique_ptr<NetworkFabric> fabric_;
  std::unique_ptr<ExecutorPool> executors_;
  std::vector<std::unique_ptr<FairQueue>> disks_;
  std::vector<int> computing_;
  std::vector<double> speeds_;
};

}  // namespace ds::sim
