#include "sim/event_queue.h"

#include <utility>

#include "util/check.h"

namespace ds::sim {

namespace {

constexpr std::size_t kArity = 4;  // shallow heap, 24-byte entries: 4 wins

inline EventId encode(std::uint32_t slot, std::uint32_t gen) {
  // Low word = slot + 1 so a valid id can never collide with kInvalidEvent.
  return (static_cast<EventId>(gen) << 32) | (slot + 1);
}

}  // namespace

EventId EventQueue::push(SimTime t, EventFn fn) {
  DS_CHECK_MSG(static_cast<bool>(fn), "scheduling a null event callback");
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Node& n = slab_[slot];
  n.fn = std::move(fn);
  n.heap_pos = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
  return encode(slot, n.gen);
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t low = id & 0xffffffffu;
  if (low == 0) return false;  // kInvalidEvent or malformed
  const auto slot = static_cast<std::uint32_t>(low - 1);
  if (slot >= slab_.size()) return false;
  Node& n = slab_[slot];
  if (n.heap_pos < 0 || n.gen != static_cast<std::uint32_t>(id >> 32))
    return false;  // already fired/cancelled, or the slot was recycled
  remove_at(static_cast<std::size_t>(n.heap_pos));
  return true;
}

SimTime EventQueue::next_time() const {
  DS_CHECK_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().t;
}

EventFn EventQueue::pop(SimTime& t) {
  DS_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  const HeapEntry top = heap_.front();
  EventFn fn = std::move(slab_[top.slot].fn);
  t = top.t;
  remove_at(0);
  return fn;
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slab_[heap_[pos].slot].heap_pos = static_cast<std::int32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  slab_[e.slot].heap_pos = static_cast<std::int32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    slab_[heap_[pos].slot].heap_pos = static_cast<std::int32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  slab_[e.slot].heap_pos = static_cast<std::int32_t>(pos);
}

void EventQueue::remove_at(std::size_t pos) {
  Node& n = slab_[heap_[pos].slot];
  n.fn = nullptr;  // destroy the callback now (pop already moved it out)
  n.heap_pos = -1;
  ++n.gen;  // retire every outstanding handle to this slot
  free_.push_back(heap_[pos].slot);

  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slab_[heap_[pos].slot].heap_pos = static_cast<std::int32_t>(pos);
    heap_.pop_back();
    // The moved tail entry may belong above or below `pos`. After
    // sift_down, whatever sits at `pos` (the tail entry, or a promoted
    // child — which by the heap property already satisfies its parent) can
    // only violate upward, so the follow-up sift_up is a no-op in all but
    // the moved-up case.
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

}  // namespace ds::sim
