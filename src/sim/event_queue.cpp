#include "sim/event_queue.h"

#include "util/check.h"

namespace ds::sim {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  DS_CHECK_MSG(fn != nullptr, "scheduling a null event callback");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  live_.emplace(id, std::move(fn));
  return id;
}

void EventQueue::cancel(EventId id) { live_.erase(id); }

void EventQueue::skip_dead() const {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::next_time() const {
  skip_dead();
  DS_CHECK_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().t;
}

std::function<void()> EventQueue::pop(SimTime& t) {
  skip_dead();
  DS_CHECK_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry e = heap_.top();
  heap_.pop();
  auto it = live_.find(e.id);
  std::function<void()> fn = std::move(it->second);
  live_.erase(it);
  t = e.t;
  return fn;
}

}  // namespace ds::sim
