#include "sim/simulator.h"

#include "util/check.h"

namespace ds::sim {

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  // Allow a hair of backwards slop from floating-point arithmetic but clamp
  // to now(): time never runs backwards.
  DS_CHECK_MSG(t >= now_ - 1e-9, "scheduling into the past: t=" << t
                                                                << " now=" << now_);
  return queue_.push(std::max(t, now_), std::move(fn));
}

EventId Simulator::schedule_after(Seconds dt, EventFn fn) {
  DS_CHECK_MSG(dt >= -1e-9, "negative delay " << dt);
  return schedule_at(now_ + std::max(dt, 0.0), std::move(fn));
}

void Simulator::cancel(EventId id) { queue_.cancel(id); }

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

bool Simulator::run_until(SimTime t) {
  bool fired = false;
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
    fired = true;
  }
  now_ = std::max(now_, t);
  return fired;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  SimTime t = 0;
  EventFn fn = queue_.pop(t);
  DS_CHECK(t >= now_ - 1e-9);
  now_ = std::max(now_, t);
  ++processed_;
  events_counter_.inc();
  fn();
  return true;
}

}  // namespace ds::sim
