#include "sim/sharded.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ds::sim {

ShardedSimulation::ShardedSimulation(Options opt)
    : opt_(opt), pool_(opt.threads) {
  DS_CHECK_MSG(opt_.shards >= 1, "need at least one shard");
  DS_CHECK_MSG(opt_.lookahead > 0, "lookahead must be positive");
  sims_.reserve(static_cast<std::size_t>(opt_.shards));
  outbox_.resize(static_cast<std::size_t>(opt_.shards));
  for (int s = 0; s < opt_.shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
}

void ShardedSimulation::post(int from, int to, SimTime t, EventFn fn) {
  DS_CHECK_MSG(from >= 0 && from < shards(), "post: bad source shard");
  DS_CHECK_MSG(to >= 0 && to < shards(), "post: bad destination shard");
  DS_CHECK_MSG(static_cast<bool>(fn), "post: null callback");
  Outbox& ob = outbox_[static_cast<std::size_t>(from)];
  if (in_window_) {
    // Conservative safety: while windows run in parallel the destination may
    // already have advanced up to window_end <= sender-now + lookahead, so
    // anything earlier could land in its past.
    const SimTime horizon =
        shard(from).now() + opt_.lookahead - 1e-9;  // FP slop
    DS_CHECK_MSG(t >= horizon, "cross-shard post below lookahead horizon: t="
                                   << t << " sender now=" << shard(from).now()
                                   << " lookahead=" << opt_.lookahead);
  }
  ob.msgs.push_back(Message{t, from, to, ob.next_seq++, std::move(fn)});
}

SimTime ShardedSimulation::next_work_time() const {
  SimTime t = -1;
  for (const auto& sim : sims_) {
    if (sim->events_pending() == 0) continue;
    const SimTime nt = sim->next_event_time();
    if (t < 0 || nt < t) t = nt;
  }
  for (const auto& ob : outbox_) {
    for (const auto& m : ob.msgs) {
      if (t < 0 || m.t < t) t = m.t;
    }
  }
  return t;
}

void ShardedSimulation::deliver_all() {
  // Gather every undelivered message, order by (time, from-shard, sequence),
  // then append to the destination queues in that order. The destination's
  // own tie-break is insertion sequence, so equal-time messages fire in
  // exactly this order — independent of which thread ran which shard.
  std::vector<Message> all = std::move(deliver_scratch_);
  all.clear();
  for (auto& ob : outbox_) {
    for (auto& m : ob.msgs) all.push_back(std::move(m));
    ob.msgs.clear();
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end(), [](const Message& a, const Message& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.from != b.from) return a.from < b.from;
      return a.seq < b.seq;
    });
    for (auto& m : all) {
      // Delivery runs before the window advances, so m.t >= destination now
      // always holds (lookahead for in-window posts, construction for setup
      // posts); schedule_at's past-check enforces it.
      sims_[static_cast<std::size_t>(m.to)]->schedule_at(m.t, std::move(m.fn));
    }
  }
  all.clear();
  deliver_scratch_ = std::move(all);
}

void ShardedSimulation::run_window(SimTime window_end) {
  // Drain mailboxes BEFORE advancing: a pending message may be the earliest
  // work in the whole system (its time defined this window), and no shard
  // has passed it yet. Messages posted during the window stay in their
  // outboxes until the next barrier — lookahead guarantees they are not due
  // inside this window.
  deliver_all();
  in_window_ = true;
  pool_.parallel_for(sims_.size(), [&](std::size_t s) {
    sims_[s]->run_until(window_end);
  });
  in_window_ = false;
}

void ShardedSimulation::run_until(SimTime t) {
  for (;;) {
    const SimTime nw = next_work_time();
    if (nw < 0 || nw > t) break;
    run_window(std::min(nw + opt_.lookahead, t));
  }
  // Bring every shard's clock up to t even if it went idle early.
  for (auto& sim : sims_) sim->run_until(t);
}

SimTime ShardedSimulation::run() {
  for (;;) {
    const SimTime nw = next_work_time();
    if (nw < 0) break;
    run_window(nw + opt_.lookahead);
  }
  SimTime end = 0;
  for (const auto& sim : sims_) end = std::max(end, sim->now());
  return end;
}

std::size_t ShardedSimulation::events_processed() const {
  std::size_t n = 0;
  for (const auto& sim : sims_) n += sim->events_processed();
  return n;
}

}  // namespace ds::sim
