// A fluid resource of fixed capacity shared *equally* among active claims —
// the paper's model for disk bandwidth (D^w / #writers). Progress is advanced
// lazily; a single pending completion event is kept per queue.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/units.h"

namespace ds::sim {

using ClaimId = std::uint64_t;

class FairQueue {
 public:
  // `capacity` in bytes/second, shared equally among concurrent claims.
  FairQueue(Simulator& sim, BytesPerSec capacity);
  ~FairQueue();
  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  // Submit `volume` bytes of work; `on_complete` fires when they have been
  // fully serviced. Zero-volume claims complete on the next event.
  ClaimId submit(Bytes volume, std::function<void()> on_complete);

  // Abort a pending claim (no completion callback). Unknown id: no-op.
  void cancel(ClaimId id);

  std::size_t active() const { return claims_.size(); }
  BytesPerSec capacity() const { return capacity_; }
  // Aggregate service rate right now (capacity if busy, else 0).
  BytesPerSec current_rate() const;
  // Per-claim share right now.
  BytesPerSec share() const;
  // Total bytes serviced since construction (advanced lazily; callers that
  // sample should call `sync()` first).
  Bytes total_serviced() const { return serviced_; }
  void sync() { advance_to_now(); }

 private:
  struct Claim {
    Bytes remaining;
    std::function<void()> on_complete;
  };

  void advance_to_now();
  void reschedule();
  void on_completion_event();

  Simulator& sim_;
  const BytesPerSec capacity_;
  std::unordered_map<ClaimId, Claim> claims_;
  ClaimId next_id_ = 1;
  SimTime last_advance_ = 0;
  EventId pending_event_ = kInvalidEvent;
  Bytes serviced_ = 0;
};

}  // namespace ds::sim
