// A fluid resource of fixed capacity shared *equally* among active claims —
// the paper's model for disk bandwidth (D^w / #writers). Progress is advanced
// lazily; a single pending completion event is kept per queue.
//
// Claims live in a slab with an intrusive submission-ordered list and
// generation-tagged handles (same layout as the event core and the network
// fabric): submit/cancel/complete allocate nothing in steady state, and
// completion callbacks fire in submission order by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/units.h"

namespace ds::sim {

using ClaimId = std::uint64_t;

class FairQueue {
 public:
  // `capacity` in bytes/second, shared equally among concurrent claims.
  FairQueue(Simulator& sim, BytesPerSec capacity);
  ~FairQueue();
  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  // Submit `volume` bytes of work; `on_complete` fires when they have been
  // fully serviced. Zero-volume claims complete on the next event.
  ClaimId submit(Bytes volume, EventFn on_complete);

  // Abort a pending claim (no completion callback). Stale or unknown id:
  // no-op.
  void cancel(ClaimId id);

  std::size_t active() const { return num_active_; }
  BytesPerSec capacity() const { return capacity_; }
  // Aggregate service rate right now (capacity if busy, else 0).
  BytesPerSec current_rate() const;
  // Per-claim share right now.
  BytesPerSec share() const;
  // Total bytes serviced since construction (advanced lazily; callers that
  // sample should call `sync()` first).
  Bytes total_serviced() const { return serviced_; }
  void sync() { advance_to_now(); }

 private:
  struct Claim {
    Bytes remaining = 0;
    EventFn on_complete;
    std::uint32_t gen = 1;
    std::int32_t prev = -1;
    std::int32_t next = -1;
    bool active = false;
  };

  std::int32_t lookup(ClaimId id) const;
  std::int32_t alloc_slot();
  void free_slot(std::int32_t slot);

  void advance_to_now();
  void reschedule();
  void on_completion_event();

  Simulator& sim_;
  const BytesPerSec capacity_;

  std::vector<Claim> slab_;
  std::vector<std::int32_t> free_slots_;
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::size_t num_active_ = 0;

  SimTime last_advance_ = 0;
  EventId pending_event_ = kInvalidEvent;
  Bytes serviced_ = 0;
  std::vector<EventFn> done_scratch_;
};

}  // namespace ds::sim
