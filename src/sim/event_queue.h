// Cancellable time-ordered event queue (min-heap with lazy deletion).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace ds::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  // Schedule `fn` at absolute time `t`. Events at equal times fire in
  // insertion order. Returns a handle usable with cancel().
  EventId push(SimTime t, std::function<void()> fn);

  // Cancel a pending event. Cancelling an already-fired or unknown id is a
  // no-op (callers commonly cancel their "next completion" event eagerly).
  void cancel(EventId id);

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  // Time of the earliest pending event; only valid when !empty().
  SimTime next_time() const;

  // Remove and return the earliest event's callback, setting `t` to its time.
  std::function<void()> pop(SimTime& t);

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  void skip_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> live_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace ds::sim
