// Allocation-free cancellable event core.
//
// The previous queue was a binary priority_queue of ids next to an
// unordered_map<id, std::function> with lazy deletion: every push heap-
// allocated a map node (and usually a std::function control block), every
// cancel left a dead entry in the heap until its time drained past, and
// size() counted only the map — the heap could grow without bound under
// schedule/cancel churn (exactly what the fabric's reschedule() produces:
// roughly half of all pushed events are cancelled before firing).
//
// This core keeps three flat arrays instead:
//
//   * a slab of cache-line-aligned Nodes (callback + generation + heap
//     position), recycled through a free list — steady state allocates
//     nothing per event, and slab capacity is bounded by the peak number of
//     *concurrently pending* events, not by total churn;
//   * an indexed 4-ary min-heap of 24-byte (time, seq, slot) entries —
//     sift comparisons touch only this dense array, never the slab;
//   * a free list of slab slots.
//
// Handles are generation-tagged: an EventId encodes (slot, generation), and
// cancel() on a stale handle (already fired, already cancelled, or a
// recycled slot) is a safe no-op. cancel() *truly removes* the entry (swap
// with the heap tail and re-sift), so size() is exact and a cancelled
// event's callback is destroyed immediately.
//
// Ordering contract (unchanged, bit-exact vs the old queue): events fire in
// ascending time, ties broken by insertion order via a monotonically
// increasing sequence number.
//
// Callbacks are InlineFunction (see util/inline_function.h): any capture
// list up to kEventFnCapacity bytes — all of sim/engine/fault — is stored
// inline in the node.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/inline_function.h"

namespace ds::sim {

// Sized so every scheduling lambda in sim/, engine/ and the fault injector
// fits inline (largest today: 32 bytes); bigger callables fall back to the
// heap without losing correctness (tests pin the fallback count to zero).
inline constexpr std::size_t kEventFnCapacity = 40;
using EventFn = util::InlineFunction<void(), kEventFnCapacity>;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedule `fn` at absolute time `t`. Events at equal times fire in
  // insertion order. Returns a handle usable with cancel().
  EventId push(SimTime t, EventFn fn);

  // Cancel a pending event: removed from the heap immediately, callback
  // destroyed, slot recycled. Cancelling an already-fired, already-cancelled
  // or unknown id is a no-op (callers commonly cancel their "next
  // completion" event eagerly). Returns whether the event was live.
  bool cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  // Exact: cancelled events leave the queue the moment they are cancelled.
  std::size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; only valid when !empty().
  SimTime next_time() const;

  // Remove and return the earliest event's callback, setting `t` to its time.
  EventFn pop(SimTime& t);

  // Slab capacity in nodes — bounded by the peak number of concurrently
  // pending events, never by schedule/cancel churn (regression-tested).
  std::size_t slab_capacity() const { return slab_.size(); }

 private:
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // One cache line: 40-byte inline callback + 2 words of dispatch + tag.
  struct alignas(64) Node {
    EventFn fn;
    std::uint32_t gen = 1;      // bumped on every free; tags handles
    std::int32_t heap_pos = -1; // -1 = free
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  // Detach heap_[pos] (the caller already consumed it) and free its slot.
  void remove_at(std::size_t pos);

  std::vector<HeapEntry> heap_;
  std::vector<Node> slab_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ds::sim
