// Simulated time. Continuous (fluid-flow) time as double seconds; ties in the
// event queue are broken by insertion sequence, so identical runs replay in
// identical order.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace ds::sim {

using SimTime = ds::Seconds;

// Tolerance for "this fluid volume / interval has been fully consumed".
// Volumes are >= kilobytes and times >= milliseconds; 1e-6 is far below
// anything observable but far above accumulated double error.
inline constexpr double kFluidEps = 1e-6;

inline bool approx_done(double remaining) { return remaining <= kFluidEps; }

// Completion test for fluid work being serviced at `rate`. The byte-absolute
// epsilon alone is not enough: accumulated float error can leave a residue
// slightly above kFluidEps whose drain time at a high rate is *below double
// time resolution*, freezing the event loop at a fixed timestamp (a Zeno
// loop). Anything that would drain within a nanosecond of simulated time is
// therefore also complete.
inline constexpr double kTimeEps = 1e-9;

inline bool fluid_done(double remaining, double rate) {
  return remaining <= kFluidEps || remaining <= rate * kTimeEps;
}

inline bool approx_eq(SimTime a, SimTime b, double eps = 1e-9) {
  return std::abs(a - b) <= eps * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace ds::sim
